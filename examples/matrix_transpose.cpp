// Distributed matrix transpose using derived datatypes — the feature the
// paper listed as future work ("We plan to implement MPI data types").
//
// An N x N matrix is row-partitioned across ranks. Each rank sends, to every
// peer, the *column block* that peer will own after the transpose — described
// as a strided vector datatype, so no manual packing appears in user code.
//
//   $ ./matrix_transpose
#include <cstdio>
#include <vector>

#include "mpi/machine.hpp"

int main() {
  using namespace sp;
  sim::MachineConfig cfg;
  const int nodes = 4;
  constexpr std::size_t N = 32;  // global matrix edge (divisible by nodes)

  mpi::Machine machine(cfg, nodes, mpi::Backend::kLapiEnhanced);
  bool ok = true;

  machine.run([&](mpi::Mpi& mpi) {
    mpi::Comm& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    const std::size_t rows = N / n;  // my row block
    const auto me = static_cast<std::size_t>(w.rank());

    // a[i][j] = global_row * N + j, rows [me*rows, (me+1)*rows).
    std::vector<long> a(rows * N), t(rows * N, -1);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < N; ++j) a[i * N + j] = static_cast<long>((me * rows + i) * N + j);
    }

    // The block of columns [r*rows, (r+1)*rows) over all my rows, as a
    // derived datatype: `rows` blocks of `rows` longs, stride N.
    const auto colblock = mpi::DerivedDatatype::vector(rows, rows, N, mpi::Datatype::kLong);

    std::vector<mpi::Request> reqs;
    std::vector<std::vector<long>> inbox(n);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == me) continue;
      inbox[r].resize(rows * rows);
      reqs.push_back(mpi.irecv(inbox[r].data(), rows * rows, mpi::Datatype::kLong,
                               static_cast<int>(r), 0, w));
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == me) continue;
      // One derived-datatype send replaces a manual pack loop.
      reqs.push_back(mpi.isend(&a[r * rows], 1, colblock, static_cast<int>(r), 0, w));
    }
    mpi.waitall(reqs.data(), reqs.size());

    // Assemble my block of the transposed matrix: t[i][j] = a_global[j][i].
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t bi = 0; bi < rows; ++bi) {      // row within peer block
        for (std::size_t bj = 0; bj < rows; ++bj) {    // column within my block
          const long v = r == me ? a[bi * N + me * rows + bj]
                                 : inbox[r][bi * rows + bj];
          // v lives at global (r*rows+bi, me*rows+bj); transposed it goes to
          // my local row bj, global column r*rows+bi.
          t[bj * N + r * rows + bi] = v;
        }
      }
    }

    // Verify t[i][j] == original[j][i].
    bool mine_ok = true;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        const long expect = static_cast<long>(j * N + (me * rows + i));
        if (t[i * N + j] != expect) mine_ok = false;
      }
    }
    int local = mine_ok ? 1 : 0, all = 0;
    mpi.allreduce(&local, &all, 1, mpi::Datatype::kInt, mpi::Op::kMin, w);
    if (w.rank() == 0) {
      std::printf("transpose of %zux%zu over %d ranks: %s (%.1f us simulated)\n", N, N,
                  w.size(), all == 1 ? "VERIFIED" : "WRONG", mpi.wtime() * 1e6);
    }
    if (all != 1) throw std::runtime_error("transpose verification failed");
  });

  return ok ? 0 : 1;
}
