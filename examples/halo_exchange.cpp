// Halo exchange: a 1-D-decomposed Jacobi iteration — the canonical HPC
// communication pattern — run on both protocol stacks for comparison.
//
//   $ ./halo_exchange
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpi/machine.hpp"

namespace {

double jacobi_run(sp::mpi::Backend backend, int nodes, std::size_t cells_per_rank,
                  int iters, double* out_norm) {
  using namespace sp;
  sim::MachineConfig cfg;
  mpi::Machine machine(cfg, nodes, backend);
  double norm = 0.0;

  machine.run([&](mpi::Mpi& mpi) {
    mpi::Comm& w = mpi.world();
    const int me = w.rank();
    const int n = w.size();
    std::vector<double> u(cells_per_rank + 2, 0.0), next(cells_per_rank + 2, 0.0);
    // Dirichlet boundary on the global domain edges.
    if (me == 0) u[0] = 1.0;
    if (me == n - 1) u[cells_per_rank + 1] = 2.0;

    for (int it = 0; it < iters; ++it) {
      // Exchange one-cell halos with neighbours.
      if (me + 1 < n) {
        mpi.sendrecv(&u[cells_per_rank], 1, me + 1, 0, &u[cells_per_rank + 1], 1, me + 1, 1,
                     mpi::Datatype::kDouble, w);
      }
      if (me > 0) {
        mpi.sendrecv(&u[1], 1, me - 1, 1, &u[0], 1, me - 1, 0, mpi::Datatype::kDouble, w);
      }
      for (std::size_t i = 1; i <= cells_per_rank; ++i) {
        next[i] = 0.5 * (u[i - 1] + u[i + 1]);
      }
      mpi.compute(static_cast<sim::TimeNs>(cells_per_rank) * 12);
      if (me == 0) next[0] = 1.0;
      if (me == n - 1) next[cells_per_rank + 1] = 2.0;
      std::swap(u, next);
    }

    double local = 0.0;
    for (std::size_t i = 1; i <= cells_per_rank; ++i) local += u[i] * u[i];
    mpi.allreduce(&local, &norm, 1, mpi::Datatype::kDouble, mpi::Op::kSum, w);
  });

  *out_norm = norm;
  return sp::sim::to_us(machine.elapsed());
}

}  // namespace

int main() {
  using namespace sp;
  const int nodes = 8;
  const std::size_t cells = 2048;
  const int iters = 50;

  double norm_native = 0.0, norm_lapi = 0.0;
  const double t_native =
      jacobi_run(mpi::Backend::kNativePipes, nodes, cells, iters, &norm_native);
  const double t_lapi =
      jacobi_run(mpi::Backend::kLapiEnhanced, nodes, cells, iters, &norm_lapi);

  std::printf("Jacobi %dx%zu cells, %d iterations, %d nodes\n", nodes, cells, iters, nodes);
  std::printf("  native MPI : %10.1f us  (norm %.6f)\n", t_native, norm_native);
  std::printf("  MPI-LAPI   : %10.1f us  (norm %.6f)\n", t_lapi, norm_lapi);
  std::printf("  identical results: %s, speedup %.2fx\n",
              norm_native == norm_lapi ? "yes" : "NO", t_native / t_lapi);
  return norm_native == norm_lapi ? 0 : 1;
}
