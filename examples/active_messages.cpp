// Raw LAPI programming (Fig. 2 of the paper): header handlers, completion
// handlers, counters, one-sided Put/Get and fetch-and-add — the model the
// MPI-LAPI implementation is built on.
//
//   $ ./active_messages
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpi/machine.hpp"

int main() {
  using namespace sp;
  using lapi::Cntr;
  using lapi::Lapi;

  sim::MachineConfig cfg;
  mpi::Machine machine(cfg, 2, mpi::Backend::kLapiEnhanced);

  machine.run_lapi([](Lapi& l) {
    const int me = l.task_id();
    const int peer = 1 - me;

    // --- Active message with header + completion handler ---------------
    std::vector<char> inbox(64, '\0');
    Cntr tgt_cntr;
    int completions = 0;

    // The header handler decides where the payload lands; the completion
    // handler runs once every packet has been assembled there.
    const int greet_handler = l.register_header_handler(
        [&inbox, &completions](int origin, const std::byte* uhdr, std::size_t uhdr_len,
                               std::size_t total) {
          std::printf("[header handler] got: %zu B from %d (uhdr %zu B)\n", total,
                      origin, uhdr_len);
          (void)uhdr;
          Lapi::HeaderHandlerResult res;
          res.buffer = reinterpret_cast<std::byte*>(inbox.data());
          res.completion = [&completions](void*) { ++completions; };
          res.inline_completion = true;  // Enhanced-LAPI predefined handler
          return res;
        });

    // Exchange counter addresses up front (LAPI_Address_init).
    auto cntrs = l.address_init(/*exchange_id=*/1, Lapi::token_of(&tgt_cntr));

    if (me == 0) {
      const char msg[] = "greetings via LAPI_Amsend";
      const char hdr[] = "hdr";
      Cntr org;
      l.amsend(peer, greet_handler, hdr, sizeof hdr, msg, sizeof msg,
               cntrs[static_cast<std::size_t>(peer)], &org, nullptr);
      l.waitcntr(org, 1);  // origin buffer reusable
    } else {
      l.waitcntr(tgt_cntr, 1);  // bumped after the completion handler ran
      std::printf("task 1 received: \"%s\" (completions=%d)\n", inbox.data(), completions);
    }

    // --- One-sided Put / Get -------------------------------------------
    std::int64_t window = 1000 + me;
    auto windows = l.address_init(2, Lapi::token_of(&window));
    l.gfence();

    if (me == 0) {
      std::int64_t value = 42;
      Cntr org, cmpl;
      l.put(peer, windows[1], &value, sizeof value, 0, &org, &cmpl);
      l.waitcntr(cmpl, 1);  // remote completion confirmed

      std::int64_t fetched = 0;
      Cntr got;
      l.get(peer, windows[1], &fetched, sizeof fetched, 0, &got);
      l.waitcntr(got, 1);
      std::printf("task 0 put 42, got back %lld\n", static_cast<long long>(fetched));

      // --- Remote fetch-and-add (LAPI_Rmw) ---------------------------
      std::int64_t prev = -1;
      Cntr rmw_done;
      l.rmw(peer, lapi::RmwOp::kFetchAndAdd, windows[1], 8, 0, &prev, &rmw_done);
      l.waitcntr(rmw_done, 1);
      std::printf("fetch-and-add: previous=%lld\n", static_cast<long long>(prev));
    }
    l.gfence();
    if (me == 1) {
      std::printf("task 1 window value now %lld (expected 50)\n",
                  static_cast<long long>(window));
    }
  });

  std::printf("done in %.1f simulated us\n", sim::to_us(machine.elapsed()));
  return 0;
}
