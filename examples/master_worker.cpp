// Master/worker task farm: wildcard receives, all four send modes, buffered
// sends and communicator splitting on the simulated SP.
//
//   $ ./master_worker
#include <cstdio>
#include <vector>

#include "mpi/machine.hpp"

int main() {
  using namespace sp;
  sim::MachineConfig cfg;
  const int nodes = 6;
  mpi::Machine machine(cfg, nodes, mpi::Backend::kLapiEnhanced);

  constexpr int kTagWork = 1;
  constexpr int kTagResult = 2;
  constexpr int kTagStop = 3;
  constexpr int kTasks = 24;

  machine.run([](mpi::Mpi& mpi) {
    mpi::Comm& world = mpi.world();
    const int me = world.rank();
    const int n = world.size();

    // Split the workers into their own communicator (the master keeps ctx 0).
    mpi::Comm workers = mpi.split(world, me == 0 ? 0 : 1, me);

    if (me == 0) {
      // Master: deal tasks to whoever returns a result first.
      std::vector<char> bsend_pool(1 << 16);
      mpi.buffer_attach(bsend_pool.data(), bsend_pool.size());

      int next_task = 0, done = 0;
      long total = 0;
      for (int w = 1; w < n && next_task < kTasks; ++w) {
        long task = next_task++;
        mpi.bsend(&task, 1, mpi::Datatype::kLong, w, kTagWork, world);
      }
      while (done < kTasks) {
        long result = 0;
        mpi::Status st;
        mpi.recv(&result, 1, mpi::Datatype::kLong, mpi::kAnySource, kTagResult, world, &st);
        total += result;
        ++done;
        if (next_task < kTasks) {
          long task = next_task++;
          mpi.bsend(&task, 1, mpi::Datatype::kLong, st.source, kTagWork, world);
        } else {
          long stop = -1;
          mpi.send(&stop, 1, mpi::Datatype::kLong, st.source, kTagStop, world);
        }
      }
      mpi.buffer_detach();
      long expect = 0;
      for (int t = 0; t < kTasks; ++t) expect += static_cast<long>(t) * t;
      std::printf("master: total = %ld (expected %ld) after %.1f us\n", total, expect,
                  mpi.wtime() * 1e6);
    } else {
      int handled = 0;
      for (;;) {
        long task = 0;
        mpi::Status st;
        mpi.recv(&task, 1, mpi::Datatype::kLong, 0, mpi::kAnyTag, world, &st);
        if (st.tag == kTagStop) break;
        mpi.compute(200 * sim::kUs);  // do the "work"
        long result = task * task;
        mpi.send(&result, 1, mpi::Datatype::kLong, 0, kTagResult, world);
        ++handled;
      }
      // Workers agree on how many tasks they saw in total.
      long mine = handled, all = 0;
      mpi.allreduce(&mine, &all, 1, mpi::Datatype::kLong, mpi::Op::kSum, workers);
      if (workers.rank() == 0) {
        std::printf("workers: handled %ld tasks collectively\n", all);
      }
    }
  });

  std::printf("simulated time: %.1f us\n", sim::to_us(machine.elapsed()));
  return 0;
}
