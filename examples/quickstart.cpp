// Quickstart: build a simulated 4-node SP machine, run an SPMD MPI program on
// the MPI-LAPI stack, and print what happened.
//
//   $ ./quickstart
//
// The program is ordinary blocking MPI-style code: each rank sends a greeting
// around a ring and rank 0 reduces a checksum at the end. Swap the Backend to
// kNativePipes to run the same program on the original Pipes-based stack.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mpi/machine.hpp"

int main() {
  using namespace sp;

  sim::MachineConfig cfg;        // the calibrated RS/6000 SP cost model
  const int nodes = 4;
  mpi::Machine machine(cfg, nodes, mpi::Backend::kLapiEnhanced);

  machine.run([](mpi::Mpi& mpi) {
    mpi::Comm& world = mpi.world();
    const int me = world.rank();
    const int n = world.size();

    // Pass a growing message around the ring.
    char buf[256] = {0};
    if (me == 0) {
      std::snprintf(buf, sizeof buf, "hello from 0");
      mpi.send(buf, sizeof buf, mpi::Datatype::kByte, 1 % n, 0, world);
      mpi.recv(buf, sizeof buf, mpi::Datatype::kByte, n - 1, 0, world);
      std::printf("ring result: \"%s\" (t = %.1f us)\n", buf, mpi.wtime() * 1e6);
    } else {
      mpi.recv(buf, sizeof buf, mpi::Datatype::kByte, me - 1, 0, world);
      char mine[32];
      std::snprintf(mine, sizeof mine, " + %d", me);
      std::strncat(buf, mine, sizeof buf - std::strlen(buf) - 1);
      mpi.send(buf, sizeof buf, mpi::Datatype::kByte, (me + 1) % n, 0, world);
    }

    // Everyone contributes to a reduction.
    long local = (me + 1) * 100;
    long sum = 0;
    mpi.allreduce(&local, &sum, 1, mpi::Datatype::kLong, mpi::Op::kSum, world);
    if (me == 0) {
      std::printf("allreduce sum = %ld (expected %d)\n", sum, 100 * n * (n + 1) / 2);
    }
  });

  std::printf("simulated run took %.1f us on %s\n", sim::to_us(machine.elapsed()),
              mpi::backend_name(machine.backend()));
  return 0;
}
