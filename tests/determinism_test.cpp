// Determinism golden tests: the simulator's (time, seq) total order.
//
// Every protocol decision in the simulator hangs off the event queue's
// processing order, which is required to be a total order over (timestamp,
// insertion sequence) — independent of heap arity, pooling, or any other
// implementation detail of the queue. These tests run full workloads twice
// with tracing on, hash the complete event timeline, and require identical
// digests; two of the digests are additionally pinned to golden values so a
// queue or packet-path rework that silently perturbs event order fails here
// rather than in a subtly-shifted benchmark figure.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mpi/machine.hpp"
#include "test_harness.hpp"

namespace {

using sp::mpi::Backend;
using sp::mpi::Machine;
using sp::mpi::Mpi;
using sp::sim::MachineConfig;
using sp::test::trace_digest;

/// Fig. 11 ping-pong: 64 iterations of an 8 KiB bounce between two ranks.
std::uint64_t pingpong_digest(Backend backend) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  const auto m = sp::test::run_pingpong(cfg, backend, 64, 8 * 1024);
  return trace_digest(*m->trace());
}

/// Eight ranks, twelve rounds of MPI_Alltoall with 2 KiB blocks: a storm of
/// crossing messages exercising out-of-order arrival across all four routes.
std::uint64_t alltoall_digest(Backend backend) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  Machine m(cfg, 8, backend);
  m.run([](Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    std::vector<double> src(256 * n, 0.5), dst(256 * n, 0.0);
    for (int r = 0; r < 12; ++r) {
      mpi.alltoall(src.data(), 256, dst.data(), sp::mpi::Datatype::kDouble, w);
    }
  });
  return trace_digest(*m.trace());
}

// Golden digests captured from the seed event engine (std::function +
// std::push_heap). Any change to the event queue or packet path must leave
// the processing order — and therefore these digests — bit-identical. If a
// *cost model* change legitimately moves timestamps, re-capture via
// --gtest_filter=Determinism.* (the test logs the measured values).
constexpr std::uint64_t kGoldenPingPongEnhanced = 0xdbcf285952ec3da0ULL;
constexpr std::uint64_t kGoldenAlltoallEnhanced = 0xc3c38118293de855ULL;

TEST(Determinism, PingPongTraceIsReproducible) {
  const std::uint64_t first = pingpong_digest(Backend::kLapiEnhanced);
  const std::uint64_t second = pingpong_digest(Backend::kLapiEnhanced);
  SCOPED_TRACE(testing::Message() << "digest=0x" << std::hex << first);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, kGoldenPingPongEnhanced)
      << "event order changed: 0x" << std::hex << first;
}

TEST(Determinism, AlltoallTraceIsReproducible) {
  const std::uint64_t first = alltoall_digest(Backend::kLapiEnhanced);
  const std::uint64_t second = alltoall_digest(Backend::kLapiEnhanced);
  SCOPED_TRACE(testing::Message() << "digest=0x" << std::hex << first);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, kGoldenAlltoallEnhanced)
      << "event order changed: 0x" << std::hex << first;
}

TEST(Determinism, NativePipesTraceIsReproducible) {
  EXPECT_EQ(pingpong_digest(Backend::kNativePipes), pingpong_digest(Backend::kNativePipes));
  EXPECT_EQ(alltoall_digest(Backend::kNativePipes), alltoall_digest(Backend::kNativePipes));
}

}  // namespace
