// RDMA/NIC-offload channel tests (DESIGN.md §14): the eager-ring credit
// protocol, the RDMA-read rendezvous, receiver-NACK failover, and the
// adapter-resident collectives — including a regression for the binomial
// release-tree parent formula the NIC bcast/allreduce share.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/coll.hpp"
#include "mpi/datatype.hpp"
#include "mpi/machine.hpp"
#include "test_harness.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;
using sp::test::expect_bounded_recovery;
using sp::test::lossy_config;

TEST(RdmaChannel, RendezvousGoesThroughRdmaRead) {
  // Above the eager limit the channel must pull the payload with an RDMA
  // read — no sender data phase, no host copies — and FIN with kRecvDone.
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kRdma);
  m.run([](Mpi& mpi) { sp::test::pingpong_workload(mpi, 4, 256 * 1024); });
  const auto s = m.stats();
  EXPECT_EQ(s.rendezvous_sends, 8);
  EXPECT_GT(s.rdma_reads, 0);
  EXPECT_EQ(s.ea_nacks, 0);
  // NIC-resident protocols bypass host interrupt delivery entirely.
  EXPECT_EQ(s.interrupts, 0);
}

TEST(RdmaChannel, RingCreditExhaustionDemotesEagersToRendezvous) {
  // With a tiny eager ring and a receiver that refuses to post, the sender
  // must run out of slot credits and demote further eagers to rendezvous
  // (counted in ea_fallbacks) rather than overrunning the ring. Every byte
  // still has to land intact once the receiver finally drains.
  MachineConfig cfg;
  cfg.rdma_ring_slots = 4;
  Machine m(cfg, 2, Backend::kRdma);
  long mismatches = 0;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    constexpr int kMsgs = 24;
    if (w.rank() == 0) {
      std::vector<char> chunk(2048, 'r');
      for (int i = 0; i < kMsgs; ++i) {
        mpi.send(chunk.data(), chunk.size(), Datatype::kByte, 1, i, w);
      }
    } else {
      mpi.compute(50 * sim::kMs);  // let the unexpected pile-up happen first
      char sink[2048];
      for (int i = 0; i < kMsgs; ++i) {
        std::memset(sink, 0, sizeof sink);
        mpi.recv(sink, sizeof sink, Datatype::kByte, 0, i, w);
        for (char c : sink) {
          if (c != 'r') ++mismatches;
        }
      }
    }
  });
  EXPECT_EQ(mismatches, 0);
  const auto s = m.stats();
  EXPECT_GT(s.ea_fallbacks, 0) << "credit exhaustion never demoted a send";
  EXPECT_GT(s.rdma_reads, 0) << "demoted sends must complete as rendezvous reads";
}

TEST(RdmaChannel, ReceiverNackFailsOverToSenderServedRendezvous) {
  // Overriding the sender-side fair share lets eagers race into a receiver
  // whose early-arrival pool cannot admit them; the receiver must NACK and
  // the sender serve the retained copy as rendezvous data, losing nothing.
  MachineConfig cfg;
  cfg.early_arrival_bytes = 8 * 1024;
  cfg.ea_sender_limit_bytes = 1024 * 1024;  // defeat the provably-safe share
  Machine m(cfg, 2, Backend::kRdma);
  long mismatches = 0;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    constexpr int kMsgs = 16;
    if (w.rank() == 0) {
      std::vector<char> chunk(4096, 'n');  // at the eager limit
      for (int i = 0; i < kMsgs; ++i) {
        mpi.send(chunk.data(), chunk.size(), Datatype::kByte, 1, i, w);
      }
    } else {
      mpi.compute(50 * sim::kMs);
      char sink[4096];
      for (int i = 0; i < kMsgs; ++i) {
        std::memset(sink, 0, sizeof sink);
        mpi.recv(sink, sizeof sink, Datatype::kByte, 0, i, w);
        for (char c : sink) {
          if (c != 'n') ++mismatches;
        }
      }
    }
  });
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(m.stats().ea_nacks, 0) << "the EA pool never refused an eager";
}

TEST(RdmaChannel, NicCollectivesMatchTheSequentialReference) {
  // Barrier, bcast and integer allreduce pinned to the adapter, across node
  // counts straddling powers of two. n=4 is the regression for the release
  // tree: the parent of vrank v is v with its LOWEST set bit cleared, and
  // the first formula divergence (vrank 3) deadlocked exactly at four nodes.
  for (int nodes : {2, 3, 4, 5, 8}) {
    MachineConfig cfg;
    std::string err;
    ASSERT_TRUE(coll::apply_algo_spec(cfg, "barrier=nic,bcast=nic,allreduce=nic", &err))
        << err;
    Machine m(cfg, nodes, Backend::kRdma);
    long bad = 0;
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      const int n = w.size();
      const int me = w.rank();
      mpi.barrier(w);
      constexpr std::size_t kCount = 128;  // 1 KiB of longs: inside the NIC cap
      std::vector<long> buf(kCount);
      if (me == n - 1) {
        for (std::size_t i = 0; i < kCount; ++i) {
          buf[i] = static_cast<long>(i) * 13 + 5;
        }
      }
      mpi.bcast(buf.data(), kCount, Datatype::kLong, n - 1, w);
      for (std::size_t i = 0; i < kCount; ++i) {
        if (buf[i] != static_cast<long>(i) * 13 + 5) ++bad;
      }
      std::vector<long> in(kCount), out(kCount);
      for (std::size_t i = 0; i < kCount; ++i) {
        in[i] = static_cast<long>(me + 1) * 1000003L + static_cast<long>(i) * 97;
      }
      mpi.allreduce(in.data(), out.data(), kCount, Datatype::kLong, Op::kSum, w);
      for (std::size_t i = 0; i < kCount; ++i) {
        long want = 0;
        for (int r = 0; r < n; ++r) {
          want += static_cast<long>(r + 1) * 1000003L + static_cast<long>(i) * 97;
        }
        if (out[i] != want) ++bad;
      }
      mpi.barrier(w);
    });
    EXPECT_EQ(bad, 0) << "n=" << nodes;
    EXPECT_GT(m.stats().nic_collectives, 0) << "n=" << nodes << ": nothing offloaded";
  }
}

TEST(RdmaChannel, NicAllreducePreservesNonCommutativeOrder) {
  // kMat2x2 is associative but NOT commutative: the NIC's reduce tree must
  // fold contributions in communicator rank order, exactly like the host
  // algorithms and the sequential reference.
  constexpr int kNodes = 7;
  constexpr std::size_t kCount = 64;  // 16 mat2x2 ops of 4 longs each
  auto gen = [](int r, std::size_t i) {
    return static_cast<long>((r + 2) * 7 + static_cast<int>(i % 5) - 2);
  };
  std::vector<long> ref(kCount), in(kCount);
  for (std::size_t i = 0; i < kCount; ++i) ref[i] = gen(0, i);
  for (int r = 1; r < kNodes; ++r) {
    for (std::size_t i = 0; i < kCount; ++i) in[i] = gen(r, i);
    reduce_apply(Op::kMat2x2, Datatype::kLong, in.data(), ref.data(), kCount);
  }
  MachineConfig cfg;
  std::string err;
  ASSERT_TRUE(coll::apply_algo_spec(cfg, "allreduce=nic", &err)) << err;
  Machine m(cfg, kNodes, Backend::kRdma);
  long bad = 0;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<long> mine(kCount), out(kCount);
    for (std::size_t i = 0; i < kCount; ++i) mine[i] = gen(w.rank(), i);
    mpi.allreduce(mine.data(), out.data(), kCount, Datatype::kLong, Op::kMat2x2, w);
    for (std::size_t i = 0; i < kCount; ++i) {
      if (out[i] != ref[i]) ++bad;
    }
  });
  EXPECT_EQ(bad, 0);
  EXPECT_GT(m.stats().nic_collectives, 0);
}

TEST(RdmaChannel, NicCollectivesSurviveFabricLoss) {
  // The adapter's collective packets ride the same reliable RC-QP links as
  // point-to-point traffic: under 3% loss the offloaded collectives must
  // still complete with exact results and bounded retransmits.
  MachineConfig cfg = lossy_config(0.03);
  Machine m(cfg, 4, Backend::kRdma);
  long bad = 0;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<long> blk(128);
    for (int round = 0; round < 48; ++round) {
      long mine = (w.rank() + 1) * (round + 1), sum = 0;
      mpi.allreduce(&mine, &sum, 1, Datatype::kLong, Op::kSum, w);
      if (sum != static_cast<long>(n) * (n + 1) / 2 * (round + 1)) ++bad;
      if (w.rank() == round % n) {
        for (std::size_t i = 0; i < blk.size(); ++i) {
          blk[i] = static_cast<long>(i) + round;
        }
      }
      mpi.bcast(blk.data(), blk.size(), Datatype::kLong, round % n, w);
      for (std::size_t i = 0; i < blk.size(); ++i) {
        if (blk[i] != static_cast<long>(i) + round) ++bad;
      }
      mpi.barrier(w);
    }
  });
  EXPECT_EQ(bad, 0);
  const auto s = m.stats();
  EXPECT_GT(s.nic_collectives, 0);
  EXPECT_GT(s.fabric_dropped, 0) << "fault injection never fired";
  EXPECT_GT(s.rdma_retransmits, 0) << "loss never hit the RDMA links";
  expect_bounded_recovery(m);
}

}  // namespace
}  // namespace sp::mpi
