// Systematic schedule exploration (DESIGN.md §15): pinned certificates,
// sleep-set non-redundancy, replay determinism, and the random-schedule
// cross-check against the enumerated outcome set.
//
// The pinned constants below are the certificate values for the tbmx-332
// cost model with the default 4096-byte eager limit — the same configuration
// `spsim explore --systematic` runs. They are deterministic: any drift means
// either the scheduler semantics or the independence relation changed, and
// the new value must be re-derived and justified, not just re-pinned.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sim/systematic.hpp"
#include "test_harness.hpp"

namespace {

using sp::sim::MachineConfig;
using sp::sim::SystematicOptions;
using sp::sim::SystematicReport;
using sp::sim::SystematicRunResult;
using sp::sim::systematic_expected_invariant;
using sp::sim::systematic_explore;
using sp::sim::systematic_replay;

SystematicOptions base_opts(sp::mpi::Backend backend, int ranks, int msgs = 1) {
  SystematicOptions so;
  so.base_config = MachineConfig::tbmx_332();
  so.base_config.eager_limit = 4096;
  so.backend = backend;
  so.ranks = ranks;
  so.msgs_per_rank = msgs;
  return so;
}

// The 2-rank/1-message wildcard workload enumerates exhaustively on every
// channel and every channel must produce the *same* certificate: the
// interleaving structure below the MPI layer differs (hence the differing
// redundant-run counts), but the set of distinguishable MPI outcomes cannot.
constexpr std::uint64_t kCert2Rank = 0x2265cf4272d772b7ULL;
constexpr std::uint64_t kInvariant2Rank = 0x7b0288a824fbdcaeULL;
constexpr std::uint64_t kCert3Rank = 0xde0a036cf4cff0f9ULL;

TEST(Systematic, PinnedCertificateTwoRankPipes) {
  const SystematicReport rep = systematic_explore(base_opts(sp::mpi::Backend::kNativePipes, 2));
  ASSERT_TRUE(rep.mismatches.empty()) << rep.mismatches[0].reason
                                      << " token=" << rep.mismatches[0].token;
  EXPECT_TRUE(rep.complete);
  EXPECT_FALSE(rep.depth_limited);
  EXPECT_EQ(rep.fanout_capped, 0);
  EXPECT_EQ(rep.interleavings, 4);
  EXPECT_EQ(rep.distinct_outcomes, 1u);
  EXPECT_EQ(rep.certificate_digest, kCert2Rank);
  EXPECT_EQ(rep.invariant_digest, kInvariant2Rank);
  // Budget accounting: every machine execution is either a certificate
  // interleaving or a sleep-set-pruned redundant run.
  EXPECT_EQ(rep.runs, rep.interleavings + rep.redundant);
}

TEST(Systematic, CertificateIsChannelInvariant) {
  for (const auto backend : {sp::mpi::Backend::kLapiEnhanced, sp::mpi::Backend::kRdma}) {
    const SystematicReport rep = systematic_explore(base_opts(backend, 2));
    ASSERT_TRUE(rep.mismatches.empty()) << rep.mismatches[0].reason;
    EXPECT_TRUE(rep.complete);
    EXPECT_EQ(rep.interleavings, 4) << static_cast<int>(backend);
    EXPECT_EQ(rep.certificate_digest, kCert2Rank) << static_cast<int>(backend);
    EXPECT_EQ(rep.invariant_digest, kInvariant2Rank) << static_cast<int>(backend);
  }
}

TEST(Systematic, PinnedCertificateThreeRank) {
  // 144 non-equivalent interleavings, 4 distinguishable wildcard match
  // orders — identical on the native and offloaded channels.
  const SystematicReport native = systematic_explore(base_opts(sp::mpi::Backend::kNativePipes, 3));
  ASSERT_TRUE(native.mismatches.empty()) << native.mismatches[0].reason;
  EXPECT_TRUE(native.complete);
  EXPECT_EQ(native.interleavings, 144);
  EXPECT_EQ(native.distinct_outcomes, 4u);
  EXPECT_EQ(native.certificate_digest, kCert3Rank);

  if (sp::test::soak_mode()) {
    const SystematicReport rdma = systematic_explore(base_opts(sp::mpi::Backend::kRdma, 3));
    ASSERT_TRUE(rdma.mismatches.empty());
    EXPECT_TRUE(rdma.complete);
    EXPECT_EQ(rdma.certificate_digest, kCert3Rank);
  }
}

// ---------------------------------------------------------------------------
// In-network combining certificates (DESIGN.md §16). The coll_spec option
// appends barrier + non-commutative kMat2x2 allreduce + bcast — all pinned
// through the switch combining tables — after the wildcard storm, and checks
// each against the exact sequential reference on EVERY interleaving. A single
// distinct outcome is the stash-then-fold determinism claim in certificate
// form: no arrival interleaving below the MPI layer can change what the
// tables deliver.
// ---------------------------------------------------------------------------

constexpr const char* kInNetworkSpec = "bcast=in_network,allreduce=in_network,barrier=in_network";
constexpr std::uint64_t kCertInNetwork2Rank = 0x485505051df207bfULL;
constexpr std::uint64_t kCertInNetwork3RankPrefix = 0xe016609bb9068d79ULL;

SystematicOptions innet_opts(sp::mpi::Backend backend, int ranks) {
  SystematicOptions so = base_opts(backend, ranks);
  so.coll_spec = kInNetworkSpec;
  return so;
}

TEST(Systematic, PinnedInNetworkCertificateTwoRankIsChannelInvariant) {
  // Exhaustive at 2 ranks on all three channels: 256 non-equivalent
  // interleavings (the combining engine's opaque events widen the space from
  // the plain workload's 4), every one conformant, and exactly one
  // distinguishable outcome — bit-identical across native, LAPI and RDMA.
  for (const auto backend : {sp::mpi::Backend::kNativePipes, sp::mpi::Backend::kLapiEnhanced,
                             sp::mpi::Backend::kRdma}) {
    const SystematicReport rep = systematic_explore(innet_opts(backend, 2));
    ASSERT_TRUE(rep.mismatches.empty())
        << rep.mismatches[0].reason << " token=" << rep.mismatches[0].token;
    EXPECT_TRUE(rep.complete) << static_cast<int>(backend);
    EXPECT_EQ(rep.interleavings, 256) << static_cast<int>(backend);
    EXPECT_EQ(rep.distinct_outcomes, 1u) << static_cast<int>(backend);
    EXPECT_EQ(rep.certificate_digest, kCertInNetwork2Rank) << static_cast<int>(backend);
    // The collective phase folds into the outcome digest only; the wildcard
    // message-set invariant is untouched by it.
    EXPECT_EQ(rep.invariant_digest, kInvariant2Rank) << static_cast<int>(backend);
  }
}

TEST(Systematic, PinnedInNetworkCertificateThreeRankPrefix) {
  // The 3-rank space with the collective phase is too large to drain in a
  // tier-1 test (~10^5+ interleavings), so pin a deterministic DFS prefix:
  // the first 1500 non-equivalent interleavings, all conformant, still one
  // distinct outcome. Completeness is explicitly not claimed.
  SystematicOptions so = innet_opts(sp::mpi::Backend::kLapiEnhanced, 3);
  so.max_interleavings = 1500;
  const SystematicReport rep = systematic_explore(so);
  ASSERT_TRUE(rep.mismatches.empty())
      << rep.mismatches[0].reason << " token=" << rep.mismatches[0].token;
  EXPECT_FALSE(rep.complete);
  EXPECT_EQ(rep.interleavings, 1500);
  EXPECT_EQ(rep.distinct_outcomes, 1u);
  EXPECT_EQ(rep.certificate_digest, kCertInNetwork3RankPrefix);
}

TEST(Systematic, InNetworkReplayMatchesHostReference) {
  // Replay determinism with the collective phase on: identical decision
  // prefixes reproduce identical digests, and a divergent prefix still
  // passes every in-fiber collective check (violations stay empty on
  // arbitrary schedules, not just the canonical one).
  const SystematicOptions so = innet_opts(sp::mpi::Backend::kRdma, 2);
  for (const std::vector<std::uint8_t>& decisions :
       {std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{1},
        std::vector<std::uint8_t>{1, 0, 1, 1}}) {
    const SystematicRunResult a = systematic_replay(so, decisions);
    const SystematicRunResult b = systematic_replay(so, decisions);
    ASSERT_TRUE(a.completed) << a.error;
    EXPECT_TRUE(a.violations.empty()) << a.violations[0];
    EXPECT_EQ(a.outcome_digest, b.outcome_digest);
    EXPECT_EQ(a.invariant_digest, systematic_expected_invariant(2, 1, 24));
  }
}

TEST(Systematic, SleepSetPruningIsNonRedundant) {
  // With canonical trace digests enabled, no two executed interleavings may
  // reduce to the same canonical order — sleep sets must prune *exactly* the
  // equivalent reorderings, never execute one twice.
  for (const auto backend : {sp::mpi::Backend::kNativePipes, sp::mpi::Backend::kLapiEnhanced}) {
    SystematicOptions so = base_opts(backend, 2);
    so.canonical_check = true;
    const SystematicReport rep = systematic_explore(so);
    ASSERT_TRUE(rep.complete);
    EXPECT_EQ(rep.duplicate_traces, 0) << static_cast<int>(backend);
  }
  SystematicOptions so3 = base_opts(sp::mpi::Backend::kNativePipes, 3);
  so3.canonical_check = true;
  const SystematicReport rep3 = systematic_explore(so3);
  ASSERT_TRUE(rep3.complete);
  EXPECT_EQ(rep3.duplicate_traces, 0);
}

TEST(Systematic, ReplayIsDeterministic) {
  const SystematicOptions so = base_opts(sp::mpi::Backend::kLapiEnhanced, 3);
  const std::vector<std::uint8_t> decisions{1, 0, 1};
  const SystematicRunResult a = systematic_replay(so, decisions);
  const SystematicRunResult b = systematic_replay(so, decisions);
  ASSERT_TRUE(a.completed) << a.error;
  EXPECT_TRUE(a.violations.empty());
  EXPECT_EQ(a.outcome_digest, b.outcome_digest);
  EXPECT_EQ(a.invariant_digest, b.invariant_digest);
  EXPECT_EQ(a.choice_points, b.choice_points);
}

TEST(Systematic, AnalyticInvariantMatchesExecution) {
  // The schedule-invariant is computed without running any machine; every
  // actual execution must reproduce it bit-exactly.
  for (int ranks : {2, 3}) {
    const SystematicRunResult run =
        systematic_replay(base_opts(sp::mpi::Backend::kNativePipes, ranks), {});
    ASSERT_TRUE(run.completed) << run.error;
    EXPECT_EQ(run.invariant_digest, systematic_expected_invariant(ranks, 1, 24)) << ranks;
  }
}

TEST(Systematic, RandomSchedulesFallInsideEnumeratedOutcomes) {
  // Cross-check between the sampling and enumerating modes: arbitrary
  // decision strings (indices past the recorded frontier take the canonical
  // branch) must land on outcomes the complete enumeration already covers,
  // and must always satisfy the analytic invariant. With the complete 2-rank
  // certificate reporting exactly one distinct outcome, every random replay
  // must reproduce that single outcome digest.
  const SystematicOptions so = base_opts(sp::mpi::Backend::kNativePipes, 2);
  const SystematicRunResult canonical = systematic_replay(so, {});
  ASSERT_TRUE(canonical.completed) << canonical.error;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<std::uint8_t> decisions;
    for (int d = 0; d < 6; ++d) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      // Keep indices small so most stay in range; an in-range forced index
      // is always honored, a past-the-end position falls back to canonical.
      decisions.push_back(static_cast<std::uint8_t>((lcg >> 60) & 1));
    }
    const SystematicRunResult run = systematic_replay(so, decisions);
    ASSERT_TRUE(run.completed) << run.error;
    EXPECT_TRUE(run.violations.empty());
    EXPECT_EQ(run.invariant_digest, kInvariant2Rank);
    EXPECT_EQ(run.outcome_digest, canonical.outcome_digest) << "trial " << trial;
  }
}

TEST(Systematic, BudgetBoundsAreRespected) {
  // max_runs is a hard ceiling; an exhausted budget voids completeness
  // without crashing or mis-counting.
  SystematicOptions so = base_opts(sp::mpi::Backend::kNativePipes, 3);
  so.max_runs = 20;
  const SystematicReport rep = systematic_explore(so);
  EXPECT_FALSE(rep.complete);
  EXPECT_LE(rep.runs, 20);
  EXPECT_GT(rep.interleavings, 0);
  EXPECT_TRUE(rep.mismatches.empty());

  SystematicOptions capped = base_opts(sp::mpi::Backend::kNativePipes, 2);
  capped.max_interleavings = 2;
  const SystematicReport rep2 = systematic_explore(capped);
  EXPECT_FALSE(rep2.complete);
  EXPECT_EQ(rep2.interleavings, 2);
}

TEST(Systematic, RendezvousSoakStaysConformant) {
  // Above the eager limit the schedule space explodes (per-packet decision
  // points), so rendezvous runs as a budget-bounded soak rather than an
  // exhaustive certificate: no mismatch and a single distinct outcome within
  // the budget, completeness not claimed.
  SystematicOptions so = base_opts(sp::mpi::Backend::kLapiEnhanced, 2);
  so.msg_bytes = 8192;
  so.max_runs = sp::test::soak_mode() ? 5000 : 400;
  const SystematicReport rep = systematic_explore(so);
  EXPECT_TRUE(rep.mismatches.empty());
  EXPECT_GT(rep.interleavings, 0);
  EXPECT_EQ(rep.distinct_outcomes, 1u);
  EXPECT_EQ(rep.invariant_digest, systematic_expected_invariant(2, 1, 8192));
}

}  // namespace
