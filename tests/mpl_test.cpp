// MPL compatibility facade tests — the classic mpc_* call set over both
// transports (§1's "common transport layer" motivation).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/machine.hpp"
#include "mpi/mpl.hpp"

namespace sp::mpl {
namespace {

using mpi::Backend;
using mpi::Machine;
using sim::MachineConfig;

class MplBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(MplBackends, EnvironReportsTaskLayout) {
  MachineConfig cfg;
  Machine m(cfg, 3, GetParam());
  m.run([](mpi::Mpi& mpi) {
    Mpl mpl(mpi);
    int numtask = 0, taskid = -1;
    mpl.environ(&numtask, &taskid);
    EXPECT_EQ(numtask, 3);
    EXPECT_EQ(taskid, mpi.world().rank());
  });
}

TEST_P(MplBackends, BlockingSendRecvWithWildcards) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](mpi::Mpi& mpi) {
    Mpl mpl(mpi);
    if (mpi.world().rank() == 0) {
      const char msg[] = "mpl says hi";
      mpl.bsend(msg, sizeof msg, 1, 42);
    } else {
      char buf[64] = {};
      int source = kDontCare, type = kDontCare;
      std::size_t nbytes = 0;
      mpl.brecv(buf, sizeof buf, &source, &type, &nbytes);
      EXPECT_EQ(source, 0);
      EXPECT_EQ(type, 42);
      EXPECT_EQ(nbytes, sizeof("mpl says hi"));
      EXPECT_STREQ(buf, "mpl says hi");
    }
  });
}

TEST_P(MplBackends, NonblockingMessageIds) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](mpi::Mpi& mpi) {
    Mpl mpl(mpi);
    if (mpi.world().rank() == 0) {
      std::vector<int> a(100), b(50);
      std::iota(a.begin(), a.end(), 0);
      std::iota(b.begin(), b.end(), 1000);
      const int id1 = mpl.send(a.data(), a.size() * 4, 1, 1);
      const int id2 = mpl.send(b.data(), b.size() * 4, 1, 2);
      std::size_t n1 = 0, n2 = 0;
      mpl.wait(id2, &n2);
      mpl.wait(id1, &n1);
    } else {
      std::vector<int> a(100, -1), b(50, -1);
      const int r1 = mpl.recv(a.data(), a.size() * 4, 0, 1);
      const int r2 = mpl.recv(b.data(), b.size() * 4, 0, 2);
      // mpc_status polls without blocking.
      int spins = 0;
      while (!mpl.status(r1) || !mpl.status(r2)) {
        mpi.compute(20 * sim::kUs);
        ASSERT_LT(++spins, 100000);
      }
      for (int i = 0; i < 100; ++i) ASSERT_EQ(a[static_cast<std::size_t>(i)], i);
      for (int i = 0; i < 50; ++i) ASSERT_EQ(b[static_cast<std::size_t>(i)], 1000 + i);
    }
  });
}

TEST_P(MplBackends, SyncBcastCombineIndex) {
  MachineConfig cfg;
  Machine m(cfg, 4, GetParam());
  m.run([](mpi::Mpi& mpi) {
    Mpl mpl(mpi);
    const int me = mpi.world().rank();
    mpl.sync();

    long v = me == 1 ? 777 : 0;
    mpl.bcast(&v, sizeof v, 1);
    EXPECT_EQ(v, 777);

    long mine = me + 1, sum = 0;
    mpl.combine(&mine, &sum, 1, mpi::Datatype::kLong, mpi::Op::kSum);
    EXPECT_EQ(sum, 10);

    std::vector<std::int32_t> out_blocks(4), in_blocks(4);
    for (int d = 0; d < 4; ++d) out_blocks[static_cast<std::size_t>(d)] = me * 10 + d;
    mpl.index(out_blocks.data(), in_blocks.data(), 4);
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(in_blocks[static_cast<std::size_t>(s)], s * 10 + me);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(BothStacks, MplBackends,
                         ::testing::Values(Backend::kNativePipes, Backend::kLapiEnhanced),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kNativePipes ? "NativePipes"
                                                                      : "LapiEnhanced";
                         });

}  // namespace
}  // namespace sp::mpl
