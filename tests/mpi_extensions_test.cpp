// Tests for the MPI extensions beyond the paper's implementation: derived
// datatypes (the paper's declared future work), probe/iprobe, waitany /
// testall, get_count, scan/exscan, gatherv/scatterv, persistent requests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

// --- DerivedDatatype unit tests (no machine needed) -------------------------

TEST(DerivedDatatype, ContiguousPackRoundTrip) {
  auto t = DerivedDatatype::contiguous(5, Datatype::kInt);
  EXPECT_EQ(t.packed_bytes(), 20u);
  EXPECT_EQ(t.extent_bytes(), 20u);
  int src[5] = {1, 2, 3, 4, 5};
  std::vector<std::byte> packed(t.packed_bytes());
  t.pack(src, packed.data());
  int dst[5] = {};
  t.unpack(packed.data(), dst);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(DerivedDatatype, VectorExtractsAColumn) {
  // A 4x6 row-major int matrix; column = vector(count=4, blocklen=1, stride=6).
  auto col = DerivedDatatype::vector(4, 1, 6, Datatype::kInt);
  EXPECT_EQ(col.packed_bytes(), 16u);
  EXPECT_EQ(col.extent_bytes(), (3 * 6 + 1) * 4u);
  int m[4][6];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) m[i][j] = i * 10 + j;
  }
  std::vector<std::byte> packed(col.packed_bytes());
  col.pack(&m[0][2], packed.data());  // column 2
  int out[4];
  std::memcpy(out, packed.data(), sizeof out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i * 10 + 2);

  // Unpack into a zeroed matrix: only column 2 must be touched.
  int z[4][6] = {};
  col.unpack(packed.data(), &z[0][2]);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_EQ(z[i][j], j == 2 ? i * 10 + 2 : 0);
    }
  }
}

TEST(DerivedDatatype, IndexedIrregularBlocks) {
  auto t = DerivedDatatype::indexed({{0, 2}, {5, 1}, {9, 3}}, Datatype::kLong);
  EXPECT_EQ(t.packed_bytes(), 6 * 8u);
  EXPECT_EQ(t.extent_bytes(), 12 * 8u);
  long src[12];
  std::iota(src, src + 12, 100);
  std::vector<std::byte> packed(t.packed_bytes());
  t.pack(src, packed.data());
  long flat[6];
  std::memcpy(flat, packed.data(), sizeof flat);
  const long expect[6] = {100, 101, 105, 109, 110, 111};
  for (int i = 0; i < 6; ++i) EXPECT_EQ(flat[i], expect[i]);
}

TEST(DerivedDatatype, MultipleInstancesUseExtent) {
  // vector(2,1,2): elements {0,2}; MPI extent = ((count-1)*stride + blocklen)
  // elements = 3, so the second instance starts at element 3 and reads {3,5}.
  auto t = DerivedDatatype::vector(2, 1, 2, Datatype::kInt);
  EXPECT_EQ(t.extent_bytes(), 3 * 4u);
  int src[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<std::byte> packed(t.packed_bytes() * 2);
  t.pack(src, packed.data(), 2);
  int out[4];
  std::memcpy(out, packed.data(), sizeof out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(out[3], 5);
}

// --- end-to-end typed transfers ---------------------------------------------

class ExtBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ExtBackends, StridedColumnExchange) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    constexpr int R = 8, C = 10;
    auto col = DerivedDatatype::vector(R, 1, C, Datatype::kInt);
    int grid[R][C] = {};
    if (w.rank() == 0) {
      for (int i = 0; i < R; ++i) {
        for (int j = 0; j < C; ++j) grid[i][j] = i * 100 + j;
      }
      // Ship column 7 as a derived datatype.
      mpi.send(&grid[0][7], 1, col, 1, 0, w);
    } else {
      mpi.recv(&grid[0][7], 1, col, 0, 0, w);
      for (int i = 0; i < R; ++i) {
        for (int j = 0; j < C; ++j) {
          ASSERT_EQ(grid[i][j], j == 7 ? i * 100 + 7 : 0) << i << "," << j;
        }
      }
    }
  });
}

TEST_P(ExtBackends, NonblockingTypedRoundTrip) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    auto t = DerivedDatatype::vector(16, 2, 4, Datatype::kDouble);
    std::vector<double> src(64), dst(64, -1.0);
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i);
    if (w.rank() == 0) {
      Request r = mpi.isend(src.data(), 1, t, 1, 0, w);
      mpi.wait(r);
    } else {
      Request r = mpi.irecv(dst.data(), 1, t, 0, 0, w);
      mpi.wait(r);
      for (std::size_t i = 0; i < 64; ++i) {
        const bool in_block = (i % 4) < 2 && i / 4 < 16;
        ASSERT_EQ(dst[i], in_block ? static_cast<double>(i) : -1.0) << i;
      }
    }
  });
}

// --- probe -------------------------------------------------------------------

TEST_P(ExtBackends, ProbeSeesPendingMessageWithoutConsuming) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      std::vector<int> v(25, 3);
      mpi.send(v.data(), v.size(), Datatype::kInt, 1, 9, w);
    } else {
      Status st;
      mpi.probe(kAnySource, kAnyTag, w, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(Mpi::get_count(st, Datatype::kInt), 25u);
      // Allocate exactly the probed size, then receive.
      std::vector<int> v(Mpi::get_count(st, Datatype::kInt), 0);
      mpi.recv(v.data(), v.size(), Datatype::kInt, st.source, st.tag, w);
      for (int x : v) EXPECT_EQ(x, 3);
    }
  });
}

TEST_P(ExtBackends, IprobeIsNonBlocking) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 1) {
      Status st;
      EXPECT_FALSE(mpi.iprobe(kAnySource, kAnyTag, w, &st)) << "nothing sent yet";
      mpi.barrier(w);
      // Rank 0 sends after the barrier; poll until visible.
      int spins = 0;
      while (!mpi.iprobe(0, 4, w, &st)) {
        mpi.compute(20 * sim::kUs);
        ASSERT_LT(++spins, 100000);
      }
      int v = 0;
      mpi.recv(&v, 1, Datatype::kInt, 0, 4, w);
      EXPECT_EQ(v, 77);
    } else {
      mpi.barrier(w);
      int v = 77;
      mpi.send(&v, 1, Datatype::kInt, 1, 4, w);
    }
  });
}

// --- waitany / testall --------------------------------------------------------

TEST_P(ExtBackends, WaitanyReturnsTheCompletedOne) {
  MachineConfig cfg;
  Machine m(cfg, 3, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      int a = 0, b = 0;
      Request rs[2];
      rs[0] = mpi.irecv(&a, 1, Datatype::kInt, 1, 0, w);
      rs[1] = mpi.irecv(&b, 1, Datatype::kInt, 2, 0, w);
      Status st;
      const std::size_t first = mpi.waitany(rs, 2, &st);
      EXPECT_EQ(first, 1u) << "rank 2 sends first";
      EXPECT_EQ(b, 22);
      const std::size_t second = mpi.waitany(rs, 2, &st);
      EXPECT_EQ(second, 0u);
      EXPECT_EQ(a, 11);
      EXPECT_EQ(mpi.waitany(rs, 2, &st), 2u) << "no active requests left";
    } else if (w.rank() == 1) {
      mpi.compute(5 * sim::kMs);
      int v = 11;
      mpi.send(&v, 1, Datatype::kInt, 0, 0, w);
    } else {
      int v = 22;
      mpi.send(&v, 1, Datatype::kInt, 0, 0, w);
    }
  });
}

TEST_P(ExtBackends, TestallCompletesAllOrNothing) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      int a = 0, b = 0;
      Request rs[2];
      rs[0] = mpi.irecv(&a, 1, Datatype::kInt, 1, 0, w);
      rs[1] = mpi.irecv(&b, 1, Datatype::kInt, 1, 1, w);
      int spins = 0;
      while (!mpi.testall(rs, 2)) {
        EXPECT_TRUE(rs[0].valid() || rs[1].valid()) << "testall must not consume partially";
        mpi.compute(20 * sim::kUs);
        ASSERT_LT(++spins, 100000);
      }
      EXPECT_FALSE(rs[0].valid());
      EXPECT_FALSE(rs[1].valid());
      EXPECT_EQ(a + b, 30);
    } else {
      int x = 10, y = 20;
      mpi.send(&x, 1, Datatype::kInt, 0, 0, w);
      mpi.compute(2 * sim::kMs);
      mpi.send(&y, 1, Datatype::kInt, 0, 1, w);
    }
  });
}

TEST_P(ExtBackends, TestallStatusArrayOnOutOfOrderCompletions) {
  MachineConfig cfg;
  Machine m(cfg, 3, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      // Senders complete out of posting order (rank 1 delays), and the array
      // mixes receives with a send: statuses must line up index-by-index.
      int a[2] = {0, 0}, b = 0;
      int out = 99;
      Request rs[3];
      rs[0] = mpi.irecv(a, 2, Datatype::kInt, 1, 5, w);
      rs[1] = mpi.irecv(&b, 1, Datatype::kInt, 2, 7, w);
      rs[2] = mpi.isend(&out, 1, Datatype::kInt, 2, 9, w);
      Status sts[3];
      int spins = 0;
      while (!mpi.testall(rs, 3, sts)) {
        mpi.compute(20 * sim::kUs);
        ASSERT_LT(++spins, 100000);
      }
      EXPECT_EQ(sts[0].source, 1);
      EXPECT_EQ(sts[0].tag, 5);
      EXPECT_EQ(Mpi::get_count(sts[0], Datatype::kInt), 2u);
      EXPECT_EQ(a[0] + a[1], 33);
      EXPECT_EQ(sts[1].source, 2);
      EXPECT_EQ(sts[1].tag, 7);
      EXPECT_EQ(Mpi::get_count(sts[1], Datatype::kInt), 1u);
      EXPECT_EQ(b, 44);
      // The send slot gets an empty status, not a stale or garbage one.
      EXPECT_EQ(sts[2].source, mpci::kAnySource);
      EXPECT_EQ(sts[2].tag, mpci::kAnyTag);
      EXPECT_EQ(sts[2].len, 0u);
    } else if (w.rank() == 1) {
      mpi.compute(5 * sim::kMs);  // rank 2's message arrives first
      int v[2] = {11, 22};
      mpi.send(v, 2, Datatype::kInt, 0, 5, w);
    } else {
      int v = 44;
      mpi.send(&v, 1, Datatype::kInt, 0, 7, w);
      int in = 0;
      mpi.recv(&in, 1, Datatype::kInt, 0, 9, w);
      EXPECT_EQ(in, 99);
    }
  });
}

TEST_P(ExtBackends, WaitallStatusArrayOnOutOfOrderCompletions) {
  MachineConfig cfg;
  Machine m(cfg, 3, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      int a = 0;
      long b[3] = {0, 0, 0};
      Request rs[3];
      rs[0] = mpi.irecv(&a, 1, Datatype::kInt, 1, 3, w);
      rs[1] = mpi.irecv(b, 3, Datatype::kLong, 2, 4, w);
      rs[2] = Request{};  // inactive slot must yield an empty status
      Status sts[3];
      mpi.waitall(rs, 3, sts);
      EXPECT_EQ(sts[0].source, 1);
      EXPECT_EQ(sts[0].tag, 3);
      EXPECT_EQ(Mpi::get_count(sts[0], Datatype::kInt), 1u);
      EXPECT_EQ(a, 7);
      EXPECT_EQ(sts[1].source, 2);
      EXPECT_EQ(sts[1].tag, 4);
      EXPECT_EQ(Mpi::get_count(sts[1], Datatype::kLong), 3u);
      EXPECT_EQ(b[0] + b[1] + b[2], 60);
      EXPECT_EQ(sts[2].source, mpci::kAnySource);
      EXPECT_EQ(sts[2].len, 0u);
      EXPECT_FALSE(rs[0].valid());
      EXPECT_FALSE(rs[1].valid());
    } else if (w.rank() == 1) {
      mpi.compute(5 * sim::kMs);  // completes after rank 2
      int v = 7;
      mpi.send(&v, 1, Datatype::kInt, 0, 3, w);
    } else {
      long v[3] = {10, 20, 30};
      mpi.send(v, 3, Datatype::kLong, 0, 4, w);
    }
  });
}

// --- scan / exscan / gatherv / scatterv ---------------------------------------

TEST_P(ExtBackends, ScanComputesInclusivePrefix) {
  MachineConfig cfg;
  Machine m(cfg, 5, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    long mine = w.rank() + 1;
    long out = 0;
    mpi.scan(&mine, &out, 1, Datatype::kLong, Op::kSum, w);
    long expect = 0;
    for (int r = 0; r <= w.rank(); ++r) expect += r + 1;
    EXPECT_EQ(out, expect);
  });
}

TEST_P(ExtBackends, ExscanComputesExclusivePrefix) {
  MachineConfig cfg;
  Machine m(cfg, 5, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    long mine = w.rank() + 1;
    long out = -999;
    mpi.exscan(&mine, &out, 1, Datatype::kLong, Op::kSum, w);
    if (w.rank() == 0) {
      EXPECT_EQ(out, -999) << "rank 0's exscan result is undefined / untouched";
    } else {
      long expect = 0;
      for (int r = 0; r < w.rank(); ++r) expect += r + 1;
      EXPECT_EQ(out, expect);
    }
  });
}

TEST_P(ExtBackends, GathervVariableContributions) {
  MachineConfig cfg;
  Machine m(cfg, 4, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    // Rank r contributes r+1 ints.
    std::vector<int> mine(static_cast<std::size_t>(w.rank()) + 1, w.rank() * 5);
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(static_cast<std::size_t>(r) + 1);
      displs.push_back(total);
      total += static_cast<std::size_t>(r) + 1;
    }
    std::vector<int> all(total, -1);
    mpi.gatherv(mine.data(), mine.size(), all.data(), counts.data(), displs.data(),
                Datatype::kInt, 2, w);
    if (w.rank() == 2) {
      for (int r = 0; r < n; ++r) {
        for (std::size_t k = 0; k < counts[static_cast<std::size_t>(r)]; ++k) {
          ASSERT_EQ(all[displs[static_cast<std::size_t>(r)] + k], r * 5);
        }
      }
    }
    // Scatter it back out with the same layout.
    std::vector<int> back(static_cast<std::size_t>(w.rank()) + 1, -1);
    mpi.scatterv(all.data(), counts.data(), displs.data(), back.data(), back.size(),
                 Datatype::kInt, 2, w);
    for (int x : back) EXPECT_EQ(x, w.rank() * 5);
  });
}

// --- persistent requests --------------------------------------------------------

TEST_P(ExtBackends, PersistentPingPong) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  constexpr int kIters = 12;
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    int sbuf = 0, rbuf = -1;
    const int peer = 1 - w.rank();
    Request sreq = mpi.send_init(&sbuf, 1, Datatype::kInt, peer, 0, w);
    Request rreq = mpi.recv_init(&rbuf, 1, Datatype::kInt, peer, 0, w);
    for (int i = 0; i < kIters; ++i) {
      if (w.rank() == 0) {
        sbuf = i * 2;
        mpi.start(sreq);
        mpi.wait(sreq);
        mpi.start(rreq);
        mpi.wait(rreq);
        EXPECT_EQ(rbuf, i * 2 + 1);
      } else {
        mpi.start(rreq);
        mpi.wait(rreq);
        sbuf = rbuf + 1;
        mpi.start(sreq);
        mpi.wait(sreq);
      }
    }
    // Waiting on the now-inactive persistent requests is a no-op.
    mpi.wait(sreq);
    mpi.wait(rreq);
    EXPECT_TRUE(sreq.persistent());
  });
}

TEST_P(ExtBackends, StartallLaunchesABatch) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      int vals[3] = {7, 8, 9};
      Request rs[3];
      for (int k = 0; k < 3; ++k) {
        rs[k] = mpi.send_init(&vals[k], 1, Datatype::kInt, 1, k, w);
      }
      mpi.startall(rs, 3);
      mpi.waitall(rs, 3);
    } else {
      for (int k = 0; k < 3; ++k) {
        int v = 0;
        mpi.recv(&v, 1, Datatype::kInt, 0, k, w);
        EXPECT_EQ(v, 7 + k);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ExtBackends,
                         ::testing::Values(Backend::kNativePipes, Backend::kLapiBase,
                                           Backend::kLapiCounters, Backend::kLapiEnhanced,
                                           Backend::kRdma),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kNativePipes: return "NativePipes";
                             case Backend::kLapiBase: return "LapiBase";
                             case Backend::kLapiCounters: return "LapiCounters";
                             case Backend::kLapiEnhanced: return "LapiEnhanced";
                             case Backend::kRdma: return "Rdma";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace sp::mpi
