// Sweep batch-server tests: the work-stealing queue's invariants, the quick
// matrix's shape, single-job execution, and a concurrent mini-sweep whose
// per-job checksums must be independent of worker count (DESIGN.md §17).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sweep/sweep.hpp"
#include "sweep/work_queue.hpp"

namespace sp::sweep {
namespace {

TEST(WorkQueue, OwnerPopsLifo) {
  WorkStealingQueue q(2);
  q.push(0, 10);
  q.push(0, 11);
  q.push(0, 12);
  std::size_t j = 0;
  ASSERT_TRUE(q.pop(0, &j));
  EXPECT_EQ(j, 12u);  // own shard drains newest-first
  ASSERT_TRUE(q.pop(0, &j));
  EXPECT_EQ(j, 11u);
  EXPECT_EQ(q.remaining(), 1u);
  EXPECT_EQ(q.steals(), 0u);
}

TEST(WorkQueue, ThiefStealsFifo) {
  WorkStealingQueue q(3);
  q.push(0, 20);
  q.push(0, 21);
  std::size_t j = 0;
  ASSERT_TRUE(q.pop(2, &j));  // worker 2 owns nothing; must steal
  EXPECT_EQ(j, 20u);          // victims lose their oldest job
  EXPECT_EQ(q.steals(), 1u);
  ASSERT_TRUE(q.pop(0, &j));
  EXPECT_EQ(j, 21u);
  EXPECT_EQ(q.steals(), 1u);
}

TEST(WorkQueue, DrainedQueueTerminates) {
  WorkStealingQueue q(4);
  q.push(1, 7);
  std::size_t j = 0;
  ASSERT_TRUE(q.pop(3, &j));
  EXPECT_EQ(j, 7u);
  for (int w = 0; w < 4; ++w) {
    EXPECT_FALSE(q.pop(w, &j)) << "worker " << w;
  }
  EXPECT_EQ(q.remaining(), 0u);
}

TEST(WorkQueue, ConcurrentDrainSeesEveryJobOnce) {
  constexpr int kWorkers = 4;
  constexpr std::size_t kJobs = 2000;
  WorkStealingQueue q(kWorkers);
  for (std::size_t i = 0; i < kJobs; ++i) q.push(static_cast<int>(i % kWorkers), i);
  std::vector<std::vector<std::size_t>> got(kWorkers);
  std::vector<std::thread> pool;
  for (int w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&, w] {
      std::size_t j = 0;
      while (q.pop(w, &j)) got[static_cast<std::size_t>(w)].push_back(j);
    });
  }
  for (auto& t : pool) t.join();
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& v : got) {
    total += v.size();
    seen.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, kJobs);       // nothing ran twice...
  EXPECT_EQ(seen.size(), kJobs); // ...and nothing was dropped
  EXPECT_EQ(q.remaining(), 0u);
}

TEST(QuickMatrix, ShapeAndCoverage) {
  const std::vector<SweepJob> jobs = quick_matrix(3);
  EXPECT_EQ(jobs.size(), 252u);  // 7 workloads x 3 channels x 2 eager x 2 loss x 3 seeds
  EXPECT_GE(jobs.size(), 200u);  // the CI floor
  std::set<std::string> workloads;
  std::set<std::string> backends;
  std::set<double> drops;
  for (const auto& j : jobs) {
    workloads.insert(j.workload);
    backends.insert(backend_token(j.backend));
    drops.insert(j.drop);
    EXPECT_EQ(j.nodes, 4);
  }
  EXPECT_EQ(workloads.size(), 7u);
  EXPECT_EQ(backends, (std::set<std::string>{"native", "enhanced", "rdma"}));
  EXPECT_EQ(drops, (std::set<double>{0.0, 0.01}));
}

TEST(RunJob, PingpongVerifies) {
  SweepJob j;
  j.workload = "pingpong";
  j.backend = mpi::Backend::kLapiEnhanced;
  const JobResult r = run_job(j, 0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.verified);
  EXPECT_NE(r.checksum, 0u);
  EXPECT_GT(r.elapsed_ns, 0);
  EXPECT_GT(r.sim_events, 0u);
}

TEST(RunJob, ChecksumDependsOnSeedNotChannel) {
  SweepJob j;
  j.workload = "allreduce";
  j.seed = 5;
  j.backend = mpi::Backend::kNativePipes;
  const JobResult a = run_job(j, 0);
  j.backend = mpi::Backend::kRdma;
  const JobResult b = run_job(j, 1);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.checksum, b.checksum);  // same data, different fabric
  j.seed = 6;
  const JobResult c = run_job(j, 2);
  ASSERT_TRUE(c.ok);
  EXPECT_NE(c.checksum, b.checksum);  // different data
}

TEST(RunJob, AbiMatchesNativeKernelChecksum) {
  SweepJob j;
  j.workload = "nas_ep";
  const JobResult native = run_job(j, 0);
  j.workload = "abi_ep";
  const JobResult abi = run_job(j, 1);
  ASSERT_TRUE(native.ok) << native.error;
  ASSERT_TRUE(abi.ok) << abi.error;
  EXPECT_TRUE(native.verified && abi.verified);
  EXPECT_EQ(native.checksum, abi.checksum);
}

TEST(RunJob, UnknownWorkloadFailsCleanly) {
  SweepJob j;
  j.workload = "fizzbuzz";
  const JobResult r = run_job(j, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.verified);
  EXPECT_NE(r.error.find("fizzbuzz"), std::string::npos);
}

TEST(Sweep, MiniSweepConcurrentAndOrdered) {
  // One seed per cell: 7 workloads x 3 channels x 2 eager x 2 loss = 84 jobs,
  // across 4 workers. Results must come back in job-id order regardless of
  // completion order.
  const std::vector<SweepJob> jobs = quick_matrix(1);
  ASSERT_EQ(jobs.size(), 84u);
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  SweepOptions opt;
  opt.workers = 4;
  opt.stream = stream;
  const SweepReport rep = run_sweep(jobs, opt);
  EXPECT_EQ(rep.workers, 4);
  ASSERT_EQ(rep.results.size(), jobs.size());
  for (std::size_t i = 0; i < rep.results.size(); ++i) {
    EXPECT_EQ(rep.results[i].id, static_cast<int>(i));
    EXPECT_TRUE(rep.results[i].ok) << i << ": " << rep.results[i].error;
    EXPECT_TRUE(rep.results[i].verified) << i;
    EXPECT_GE(rep.results[i].worker, 0);
    EXPECT_LT(rep.results[i].worker, 4);
  }
  EXPECT_TRUE(rep.all_ok());
  EXPECT_TRUE(rep.all_verified());
  EXPECT_EQ(rep.rows.size(), 21u);  // 7 workloads x 3 channels
  for (const auto& row : rep.rows) {
    EXPECT_EQ(row.jobs, 4);  // 2 eager x 2 loss
    EXPECT_LE(row.min_ms, row.p50_ms);
    EXPECT_LE(row.p50_ms, row.p90_ms);
    EXPECT_LE(row.p90_ms, row.p99_ms);
    EXPECT_LE(row.p99_ms, row.max_ms);
  }
  // The stream got one JSON line per job.
  std::rewind(stream);
  int lines = 0;
  for (int ch; (ch = std::fgetc(stream)) != EOF;) {
    if (ch == '\n') ++lines;
  }
  std::fclose(stream);
  EXPECT_EQ(lines, 84);
}

TEST(Sweep, ResultsIdenticalAcrossWorkerCounts) {
  // Worker count is a host-side concern: the simulated results must not
  // change. Compare a small slice run serially vs. on 3 workers.
  std::vector<SweepJob> jobs;
  const char* wl[] = {"pingpong", "ring", "allreduce"};
  for (const char* w : wl) {
    for (int s = 1; s <= 3; ++s) {
      SweepJob j;
      j.workload = w;
      j.seed = static_cast<unsigned long long>(s);
      jobs.push_back(j);
    }
  }
  SweepOptions serial;
  serial.workers = 1;
  SweepOptions wide;
  wide.workers = 3;
  const SweepReport a = run_sweep(jobs, serial);
  const SweepReport b = run_sweep(jobs, wide);
  ASSERT_TRUE(a.all_ok() && b.all_ok());
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].checksum, b.results[i].checksum) << i;
    EXPECT_EQ(a.results[i].elapsed_ns, b.results[i].elapsed_ns) << i;
    EXPECT_EQ(a.results[i].sim_events, b.results[i].sim_events) << i;
  }
}

TEST(Sweep, FailFastStopsDispatch) {
  std::vector<SweepJob> jobs;
  for (int i = 0; i < 40; ++i) {
    SweepJob j;
    // A single worker pops its own shard LIFO, so the highest-index job runs
    // first — make that the poisoned one.
    j.workload = i == 39 ? "bogus" : "ring";
    jobs.push_back(j);
  }
  SweepOptions opt;
  opt.workers = 1;
  opt.fail_fast = true;
  const SweepReport rep = run_sweep(jobs, opt);
  EXPECT_FALSE(rep.all_ok());
  int ran = 0;
  for (const auto& r : rep.results) ran += r.id >= 0 ? 1 : 0;
  EXPECT_LT(ran, 40);  // dispatch stopped early
}

TEST(Sweep, BenchJsonWellFormed) {
  const std::vector<SweepJob> jobs = {[] {
    SweepJob j;
    j.workload = "ring";
    return j;
  }()};
  SweepOptions opt;
  opt.workers = 1;
  const SweepReport rep = run_sweep(jobs, opt);
  const std::string path = ::testing::TempDir() + "/bench_sweep_test.json";
  ASSERT_TRUE(write_bench_json(rep, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  for (int ch; (ch = std::fgetc(f)) != EOF;) content.push_back(static_cast<char>(ch));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"total_jobs\": 1"), std::string::npos);
  EXPECT_NE(content.find("\"all_ok\": true"), std::string::npos);
  EXPECT_NE(content.find("\"all_verified\": true"), std::string::npos);
  EXPECT_NE(content.find("\"workload\": \"ring\""), std::string::npos);
}

}  // namespace
}  // namespace sp::sweep
