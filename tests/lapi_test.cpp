// LAPI library tests: the full Table-1 function set, counter semantics,
// header/completion handler behaviour, out-of-order reassembly, loss
// recovery and the §5.3 "Enhanced LAPI" inline completion switch.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::lapi {
namespace {

using mpi::Backend;
using mpi::Machine;
using sim::MachineConfig;

TEST(Lapi, AmsendDeliversUhdrAndData) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    std::vector<char> inbox(64, 0);
    std::string got_uhdr;
    Cntr tgt;
    const int h = l.register_header_handler(
        [&](int origin, const std::byte* uhdr, std::size_t uhdr_len, std::size_t total) {
          EXPECT_EQ(origin, 0);
          EXPECT_EQ(total, 6u);
          got_uhdr.assign(reinterpret_cast<const char*>(uhdr), uhdr_len);
          Lapi::HeaderHandlerResult r;
          r.buffer = reinterpret_cast<std::byte*>(inbox.data());
          return r;
        });
    auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      Cntr org;
      l.amsend(1, h, "HDR", 3, "hello", 6, cntrs[1], &org, nullptr);
      l.waitcntr(org, 1);
    } else {
      l.waitcntr(tgt, 1);
      EXPECT_STREQ(inbox.data(), "hello");
      EXPECT_EQ(got_uhdr, "HDR");
    }
  });
}

TEST(Lapi, AmsendMultiPacketReassembly) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  static constexpr std::size_t kLen = 100'000;  // ~100 packets
  m.run_lapi([](Lapi& l) {
    std::vector<std::uint8_t> inbox(kLen, 0);
    Cntr tgt;
    const int h = l.register_header_handler(
        [&](int, const std::byte*, std::size_t, std::size_t total) {
          EXPECT_EQ(total, kLen);
          Lapi::HeaderHandlerResult r;
          r.buffer = reinterpret_cast<std::byte*>(inbox.data());
          return r;
        });
    auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::vector<std::uint8_t> data(kLen);
      for (std::size_t i = 0; i < kLen; ++i) data[i] = static_cast<std::uint8_t>(i * 7 + 3);
      Cntr org;
      l.amsend(1, h, nullptr, 0, data.data(), kLen, cntrs[1], &org, nullptr);
      l.waitcntr(org, 1);
      l.fence(1);  // data must be fully delivered before `data` dies
    } else {
      l.waitcntr(tgt, 1);
      for (std::size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(inbox[i], static_cast<std::uint8_t>(i * 7 + 3)) << "offset " << i;
      }
    }
  });
}

TEST(Lapi, ReassemblyAtOffsetsUnderSevereRouteSkew) {
  MachineConfig cfg;
  cfg.route_skew_ns = 400'000;  // strongly out-of-order packets
  Machine m(cfg, 2, Backend::kLapiBase);
  static constexpr std::size_t kLen = 32'000;
  m.run_lapi([](Lapi& l) {
    std::vector<std::uint8_t> inbox(kLen, 0);
    Cntr tgt;
    const int h = l.register_header_handler(
        [&](int, const std::byte*, std::size_t, std::size_t) {
          Lapi::HeaderHandlerResult r;
          r.buffer = reinterpret_cast<std::byte*>(inbox.data());
          return r;
        });
    auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::vector<std::uint8_t> data(kLen);
      for (std::size_t i = 0; i < kLen; ++i) data[i] = static_cast<std::uint8_t>(i % 251);
      Cntr org;
      l.amsend(1, h, nullptr, 0, data.data(), kLen, cntrs[1], &org, nullptr);
      l.waitcntr(org, 1);
      l.fence(1);
    } else {
      l.waitcntr(tgt, 1);
      for (std::size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(inbox[i], static_cast<std::uint8_t>(i % 251)) << "offset " << i;
      }
    }
  });
}

TEST(Lapi, CompletionHandlerRunsAfterAllDataAndCmplCntrFires) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    std::vector<std::uint8_t> inbox(5000, 0);
    bool complete_saw_all = false;
    Cntr tgt;
    const int h = l.register_header_handler(
        [&](int, const std::byte*, std::size_t, std::size_t) {
          Lapi::HeaderHandlerResult r;
          r.buffer = reinterpret_cast<std::byte*>(inbox.data());
          r.cookie = &inbox;
          r.completion = [&complete_saw_all, &inbox](void* cookie) {
            EXPECT_EQ(cookie, &inbox);
            complete_saw_all = inbox[0] == 1 && inbox[4999] == 1;
          };
          return r;
        });
    auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::vector<std::uint8_t> ones(5000, 1);
      Cntr org, cmpl;
      l.amsend(1, h, nullptr, 0, ones.data(), 5000, cntrs[1], &org, &cmpl);
      l.waitcntr(cmpl, 1);  // completion counter: remote handler has run
    } else {
      l.waitcntr(tgt, 1);
      EXPECT_TRUE(complete_saw_all);
    }
    EXPECT_GE(l.completion_thread_dispatches() + l.completion_inline_runs(), 0);
  });
  // Base LAPI: the completion handler must have gone to the handler thread.
  EXPECT_EQ(m.lapi(1).completion_inline_runs(), 0);
  EXPECT_GE(m.lapi(1).completion_thread_dispatches(), 1);
}

TEST(Lapi, EnhancedRunsPredefinedCompletionInline) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run_lapi([](Lapi& l) {
    std::vector<std::uint8_t> inbox(128, 0);
    Cntr tgt;
    const int h = l.register_header_handler(
        [&](int, const std::byte*, std::size_t, std::size_t) {
          Lapi::HeaderHandlerResult r;
          r.buffer = reinterpret_cast<std::byte*>(inbox.data());
          r.completion = [](void*) {};
          r.inline_completion = true;
          return r;
        });
    auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::uint8_t v = 9;
      Cntr org;
      l.amsend(1, h, nullptr, 0, &v, 1, cntrs[1], &org, nullptr);
      l.waitcntr(org, 1);
    } else {
      l.waitcntr(tgt, 1);
    }
  });
  EXPECT_EQ(m.lapi(1).completion_thread_dispatches(), 0);
  EXPECT_GE(m.lapi(1).completion_inline_runs(), 1);
}

TEST(Lapi, InlineCompletionFallsBackToThreadOnStockLapi) {
  // The same inline request on a non-enhanced LAPI must use the thread.
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    std::vector<std::uint8_t> inbox(8, 0);
    Cntr tgt;
    const int h = l.register_header_handler(
        [&](int, const std::byte*, std::size_t, std::size_t) {
          Lapi::HeaderHandlerResult r;
          r.buffer = reinterpret_cast<std::byte*>(inbox.data());
          r.completion = [](void*) {};
          r.inline_completion = true;  // requested, but not allowed
          return r;
        });
    auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::uint8_t v = 1;
      Cntr org;
      l.amsend(1, h, nullptr, 0, &v, 1, cntrs[1], &org, nullptr);
      l.waitcntr(org, 1);
    } else {
      l.waitcntr(tgt, 1);
    }
  });
  EXPECT_GE(m.lapi(1).completion_thread_dispatches(), 1);
  EXPECT_EQ(m.lapi(1).completion_inline_runs(), 0);
}

TEST(Lapi, PutGetRoundTrip) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    std::int64_t window = 100 + l.task_id();
    Cntr tgt;
    auto wins = l.address_init(1, Lapi::token_of(&window));
    auto cntrs = l.address_init(2, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::int64_t v = 4242;
      Cntr org, cmpl;
      l.put(1, wins[1], &v, sizeof v, cntrs[1], &org, &cmpl);
      l.waitcntr(org, 1);
      l.waitcntr(cmpl, 1);
      std::int64_t fetched = 0;
      Cntr got;
      l.get(1, wins[1], &fetched, sizeof fetched, 0, &got);
      l.waitcntr(got, 1);
      EXPECT_EQ(fetched, 4242);
    } else {
      l.waitcntr(tgt, 1);
      EXPECT_EQ(window, 4242);
    }
    l.gfence();
  });
}

TEST(Lapi, GetBumpsTargetCounterAtSource) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    std::int64_t window = 7777;
    Cntr sourced;
    auto wins = l.address_init(1, Lapi::token_of(&window));
    auto cnts = l.address_init(2, Lapi::token_of(&sourced));
    if (l.task_id() == 0) {
      std::int64_t out = 0;
      Cntr got;
      l.get(1, wins[1], &out, sizeof out, cnts[1], &got);
      l.waitcntr(got, 1);
      EXPECT_EQ(out, 7777);
    } else {
      l.waitcntr(sourced, 1);  // fires when the target has sourced the data
    }
    l.gfence();
  });
}

TEST(Lapi, RmwAllFourOperations) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    std::int64_t var = 10;
    auto vars = l.address_init(1, Lapi::token_of(&var));
    l.gfence();
    if (l.task_id() == 0) {
      std::int64_t prev = 0;
      Cntr c;
      l.rmw(1, RmwOp::kFetchAndAdd, vars[1], 5, 0, &prev, &c);
      l.waitcntr(c, 1);
      EXPECT_EQ(prev, 10);

      l.rmw(1, RmwOp::kFetchAndOr, vars[1], 0x40, 0, &prev, &c);
      l.waitcntr(c, 1);
      EXPECT_EQ(prev, 15);

      l.rmw(1, RmwOp::kCompareAndSwap, vars[1], 999, /*compare=*/0x4f, &prev, &c);
      l.waitcntr(c, 1);
      EXPECT_EQ(prev, 0x4f);

      l.rmw(1, RmwOp::kSwap, vars[1], 1, 0, &prev, &c);
      l.waitcntr(c, 1);
      EXPECT_EQ(prev, 999);
    }
    l.gfence();
    if (l.task_id() == 1) EXPECT_EQ(var, 1);
  });
}

TEST(Lapi, WaitcntrDecrementsByValue) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    if (l.task_id() != 0) return;
    Cntr c;
    l.setcntr(c, 5);
    EXPECT_EQ(l.getcntr(c), 5);
    l.waitcntr(c, 3);  // must not block: already satisfied; decrements by 3
    EXPECT_EQ(l.getcntr(c), 2);
    l.waitcntr(c, 2);
    EXPECT_EQ(l.getcntr(c), 0);
  });
}

TEST(Lapi, FenceWaitsForDelivery) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run_lapi([](Lapi& l) {
    std::vector<std::int64_t> window(1000, 0);
    auto wins = l.address_init(1, Lapi::token_of(window.data()));
    if (l.task_id() == 0) {
      std::vector<std::int64_t> vals(1000, 3);
      l.put(1, wins[1], vals.data(), vals.size() * 8, 0, nullptr, nullptr);
      l.fence(1);  // all packets transport-acknowledged
    }
    l.gfence();
    if (l.task_id() == 1) {
      EXPECT_EQ(window.front(), 3);
      EXPECT_EQ(window.back(), 3);
    }
  });
}

TEST(Lapi, GfenceIsABarrier) {
  MachineConfig cfg;
  Machine m(cfg, 4, Backend::kLapiBase);
  std::vector<sim::TimeNs> after(4);
  m.run_lapi([&after](Lapi& l) {
    // Task i "works" for (i+1)*100us, then everyone fences.
    l.runtime().app_charge((l.task_id() + 1) * 100 * sim::kUs);
    l.gfence();
    after[static_cast<std::size_t>(l.task_id())] = l.runtime().sim.now();
  });
  // No task may leave the barrier before the slowest task reached it.
  for (int t = 0; t < 4; ++t) EXPECT_GE(after[static_cast<std::size_t>(t)], 400 * sim::kUs);
}

TEST(Lapi, HeaderHandlerMayNotCallLapi) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);
  EXPECT_THROW(
      m.run_lapi([](Lapi& l) {
        Cntr tgt;
        const int h = l.register_header_handler(
            [&l](int, const std::byte*, std::size_t, std::size_t) {
              Cntr c;
              l.setcntr(c, 0);                               // allowed (utility)
              l.amsend(0, 0, nullptr, 0, nullptr, 0, 0, nullptr, nullptr);  // forbidden
              return Lapi::HeaderHandlerResult{};
            });
        auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
        if (l.task_id() == 0) {
          Cntr org;
          l.amsend(1, h, nullptr, 0, nullptr, 0, cntrs[1], &org, nullptr);
          l.waitcntr(org, 1);
          l.fence(1);
        } else {
          l.waitcntr(tgt, 1);
        }
      }),
      LapiError);
}

TEST(Lapi, TransportRecoversFromLoss) {
  MachineConfig cfg;
  cfg.packet_drop_rate = 0.08;
  cfg.retransmit_timeout_ns = 250'000;
  Machine m(cfg, 2, Backend::kLapiBase);
  static constexpr std::size_t kLen = 40'000;
  m.run_lapi([](Lapi& l) {
    std::vector<std::uint8_t> inbox(kLen, 0);
    Cntr tgt;
    const int h = l.register_header_handler(
        [&](int, const std::byte*, std::size_t, std::size_t) {
          Lapi::HeaderHandlerResult r;
          r.buffer = reinterpret_cast<std::byte*>(inbox.data());
          return r;
        });
    auto cntrs = l.address_init(1, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::vector<std::uint8_t> data(kLen);
      for (std::size_t i = 0; i < kLen; ++i) data[i] = static_cast<std::uint8_t>(i % 241);
      Cntr org;
      l.amsend(1, h, nullptr, 0, data.data(), kLen, cntrs[1], &org, nullptr);
      l.waitcntr(org, 1);
      l.fence(1);
    } else {
      l.waitcntr(tgt, 1);
      for (std::size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(inbox[i], static_cast<std::uint8_t>(i % 241));
      }
    }
  });
  EXPECT_GT(m.lapi(0).retransmits() + m.lapi(1).retransmits(), 0);
}

TEST(Lapi, PutvScattersBlocksRemotely) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run_lapi([](Lapi& l) {
    // Target window: three disjoint regions of one array.
    std::vector<std::int64_t> window(64, 0);
    Cntr tgt;
    auto wins = l.address_init(1, Lapi::token_of(window.data()));
    auto cnts = l.address_init(2, Lapi::token_of(&tgt));
    if (l.task_id() == 0) {
      std::vector<std::int64_t> a(4, 11), b(2, 22), c(8, 33);
      const void* srcs[3] = {a.data(), b.data(), c.data()};
      const std::size_t lens[3] = {4 * 8, 2 * 8, 8 * 8};
      const Token base = wins[1];
      const Token addrs[3] = {base, base + 20 * 8, base + 50 * 8};
      Cntr org, cmpl;
      l.putv(1, 3, addrs, srcs, lens, cnts[1], &org, &cmpl);
      l.waitcntr(org, 1);
      l.waitcntr(cmpl, 1);
    } else {
      l.waitcntr(tgt, 1);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(window[static_cast<std::size_t>(i)], 11);
      for (int i = 20; i < 22; ++i) EXPECT_EQ(window[static_cast<std::size_t>(i)], 22);
      for (int i = 50; i < 58; ++i) EXPECT_EQ(window[static_cast<std::size_t>(i)], 33);
      EXPECT_EQ(window[10], 0);
      EXPECT_EQ(window[40], 0);
    }
    l.gfence();
  });
}

TEST(Lapi, GetvGathersBlocksFromRemote) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiBase);  // also exercises the thread path
  m.run_lapi([](Lapi& l) {
    std::vector<std::int64_t> window(32);
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<std::int64_t>(l.task_id() * 1000 + static_cast<int>(i));
    }
    auto wins = l.address_init(1, Lapi::token_of(window.data()));
    l.gfence();
    if (l.task_id() == 0) {
      std::int64_t d1[3] = {}, d2[5] = {};
      void* dsts[2] = {d1, d2};
      const std::size_t lens[2] = {3 * 8, 5 * 8};
      const Token addrs[2] = {wins[1] + 2 * 8, wins[1] + 20 * 8};
      Cntr org;
      l.getv(1, 2, addrs, dsts, lens, &org);
      l.waitcntr(org, 1);
      for (int i = 0; i < 3; ++i) EXPECT_EQ(d1[i], 1000 + 2 + i);
      for (int i = 0; i < 5; ++i) EXPECT_EQ(d2[i], 1000 + 20 + i);
    }
    l.gfence();
  });
}

TEST(Lapi, QenvReportsEnvironment) {
  MachineConfig cfg;
  Machine m(cfg, 3, Backend::kLapiEnhanced);
  m.run_lapi([](Lapi& l) {
    const auto env = l.qenv();
    EXPECT_EQ(env.task_id, l.task_id());
    EXPECT_EQ(env.num_tasks, 3);
    EXPECT_FALSE(env.interrupt_on);
    EXPECT_TRUE(env.inline_completion_allowed);
    l.senv_interrupt(true);
    EXPECT_TRUE(l.qenv().interrupt_on);
    l.senv_interrupt(false);
  });
}

TEST(Lapi, ManyConcurrentMessagesBetweenAllPairs) {
  MachineConfig cfg;
  Machine m(cfg, 4, Backend::kLapiEnhanced);
  m.run_lapi([](Lapi& l) {
    const int n = 4;
    const int me = l.task_id();
    std::vector<std::int64_t> inbox(static_cast<std::size_t>(n) * 8, -1);
    Cntr tgt;
    auto boxes = l.address_init(1, Lapi::token_of(inbox.data()));
    auto cntrs = l.address_init(2, Lapi::token_of(&tgt));
    std::vector<std::vector<std::int64_t>> payloads;
    Cntr org;
    int sent = 0;
    for (int peer = 0; peer < n; ++peer) {
      if (peer == me) continue;
      payloads.emplace_back(8, me * 100 + peer);
      l.put(peer, boxes[static_cast<std::size_t>(peer)] + static_cast<Token>(me) * 64,
            payloads.back().data(), 64, cntrs[static_cast<std::size_t>(peer)], &org, nullptr);
      ++sent;
    }
    l.waitcntr(org, sent);
    l.waitcntr(tgt, n - 1);
    for (int peer = 0; peer < n; ++peer) {
      if (peer == me) continue;
      for (int k = 0; k < 8; ++k) {
        EXPECT_EQ(inbox[static_cast<std::size_t>(peer) * 8 + static_cast<std::size_t>(k)],
                  peer * 100 + me);
      }
    }
    l.gfence();
  });
}

}  // namespace
}  // namespace sp::lapi
