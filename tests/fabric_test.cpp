// Unit tests for the SP switch fabric: routing, serialization/queuing,
// multipath spraying, out-of-order arrival and drop injection.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "net/switch_fabric.hpp"

namespace sp::net {
namespace {

using sim::MachineConfig;
using sim::Simulator;
using sim::TimeNs;

Packet make_packet(int src, int dst, std::size_t bytes) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.frame.assign(bytes, std::byte{0xab});
  return p;
}

TEST(SwitchFabric, DeliversToAttachedNode) {
  Simulator sim;
  MachineConfig cfg;
  SwitchFabric fab(sim, cfg, 4);
  std::vector<Packet> got;
  for (int n = 0; n < 4; ++n) {
    fab.attach(n, [&got](Packet&& p) { got.push_back(std::move(p)); });
  }
  sim.at(0, [&] { fab.inject(make_packet(0, 2, 512)); });
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, 0);
  EXPECT_EQ(got[0].dst, 2);
  EXPECT_EQ(got[0].frame.size(), 512u);
  EXPECT_EQ(fab.packets_delivered(), 1);
  EXPECT_EQ(fab.bytes_carried(), 512);
}

TEST(SwitchFabric, LatencyMatchesHopsPlusSerialization) {
  Simulator sim;
  MachineConfig cfg;
  cfg.hop_latency_ns = 100;
  cfg.link_ns_per_byte = 10.0;
  SwitchFabric fab(sim, cfg, 8);
  TimeNs arrival = -1;
  fab.attach(5, [&](Packet&&) { arrival = sim.now(); });
  sim.at(0, [&] { fab.inject(make_packet(1, 5, 100)); });
  sim.run();
  // 4 hops x 100ns + one end-to-end serialization of 100 B x 10 ns/B.
  EXPECT_EQ(arrival, 4 * 100 + 1000);
}

TEST(SwitchFabric, SpraysAcrossAllRoutes) {
  Simulator sim;
  MachineConfig cfg;
  SwitchFabric fab(sim, cfg, 4);
  std::set<int> routes;
  fab.attach(1, [&](Packet&& p) { routes.insert(p.route); });
  fab.attach(0, [](Packet&&) {});
  sim.at(0, [&] {
    for (int i = 0; i < 8; ++i) fab.inject(make_packet(0, 1, 64));
  });
  sim.run();
  EXPECT_EQ(routes.size(), 4u) << "all four routes must be used";
}

TEST(SwitchFabric, CongestionDelaysSharedLink) {
  Simulator sim;
  MachineConfig cfg;
  cfg.link_ns_per_byte = 10.0;
  SwitchFabric fab(sim, cfg, 8);
  std::vector<TimeNs> arrivals;
  fab.attach(2, [&](Packet&&) { arrivals.push_back(sim.now()); });
  // Two packets injected back-to-back from the same source serialize on the
  // source's node->leaf link.
  sim.at(0, [&] {
    fab.inject(make_packet(0, 2, 1000));
    fab.inject(make_packet(0, 2, 1000));
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], static_cast<TimeNs>(1000 * 10))
      << "second packet must wait for the first one's serialization";
}

TEST(SwitchFabric, RouteSkewForcesOutOfOrderArrival) {
  Simulator sim;
  MachineConfig cfg;
  cfg.route_skew_ns = 500'000;  // make higher routes dramatically slower
  SwitchFabric fab(sim, cfg, 4);
  std::vector<int> order;  // payload ids in arrival order
  fab.attach(1, [&](Packet&& p) { order.push_back(static_cast<int>(p.frame[0])); });
  sim.at(0, [&] {
    for (int i = 0; i < 4; ++i) {
      Packet p = make_packet(0, 1, 64);
      p.frame[0] = static_cast<std::byte>(i);
      fab.inject(std::move(p));
    }
  });
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "skewed routes must reorder consecutive packets";
}

TEST(SwitchFabric, DropInjection) {
  Simulator sim;
  MachineConfig cfg;
  cfg.packet_drop_rate = 0.5;
  SwitchFabric fab(sim, cfg, 2);
  int got = 0;
  fab.attach(1, [&](Packet&&) { ++got; });
  sim.at(0, [&] {
    for (int i = 0; i < 200; ++i) fab.inject(make_packet(0, 1, 64));
  });
  sim.run();
  EXPECT_EQ(got + fab.packets_dropped(), 200);
  EXPECT_GT(fab.packets_dropped(), 50);
  EXPECT_LT(fab.packets_dropped(), 150);
}

TEST(SwitchFabric, DropsAreSeedDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    MachineConfig cfg;
    cfg.packet_drop_rate = 0.3;
    cfg.fabric_seed = seed;
    SwitchFabric fab(sim, cfg, 2);
    fab.attach(1, [](Packet&&) {});
    sim.at(0, [&] {
      for (int i = 0; i < 100; ++i) fab.inject(make_packet(0, 1, 64));
    });
    sim.run();
    return fab.packets_dropped();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));  // overwhelmingly likely
}

TEST(SwitchFabric, ManyNodesAllPairs) {
  Simulator sim;
  MachineConfig cfg;
  const int n = 16;
  SwitchFabric fab(sim, cfg, n);
  std::map<int, int> received;
  for (int i = 0; i < n; ++i) {
    fab.attach(i, [&received, i](Packet&&) { ++received[i]; });
  }
  sim.at(0, [&] {
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        if (s != d) fab.inject(make_packet(s, d, 128));
      }
    }
  });
  sim.run();
  for (int i = 0; i < n; ++i) EXPECT_EQ(received[i], n - 1) << "node " << i;
  EXPECT_EQ(fab.packets_delivered(), n * (n - 1));
}

TEST(SwitchFabric, PeekRouteAdvancesRoundRobin) {
  Simulator sim;
  MachineConfig cfg;
  SwitchFabric fab(sim, cfg, 4);
  fab.attach(1, [](Packet&&) {});
  const int first = fab.peek_route(0, 1);
  sim.at(0, [&] { fab.inject(make_packet(0, 1, 64)); });
  sim.run();
  EXPECT_EQ(fab.peek_route(0, 1), (first + 1) % fab.num_routes());
}

TEST(SwitchFabric, ConstructionAllocatesNoPairState) {
  // The per-(src,dst) round-robin/burst table used to be an eager O(N^2)
  // allocation — 4 MiB of counters at 1024 nodes before the first packet.
  // Rows must now materialize lazily, and only for sources that transmit.
  Simulator sim;
  MachineConfig cfg;
  SwitchFabric fab(sim, cfg, 1024);
  EXPECT_EQ(fab.pair_rows_allocated(), 0);
  EXPECT_EQ(fab.peek_route(3, 997), (3 * 7 + 997 * 13) % cfg.num_routes);
  EXPECT_EQ(fab.pair_rows_allocated(), 0) << "peek_route must not materialize a row";

  for (int i = 0; i < 1024; ++i) {
    fab.attach(i, [](Packet&&) {});
  }
  sim.at(0, [&] {
    fab.inject(make_packet(0, 1, 64));
    fab.inject(make_packet(0, 2, 64));
    fab.inject(make_packet(7, 3, 64));
  });
  sim.run();
  EXPECT_EQ(fab.pair_rows_allocated(), 2) << "one row per transmitting source";
}

TEST(SwitchFabric, LazyRowsKeepRoundRobinStagger) {
  // The lazily-built row must stagger each pair exactly like the old eager
  // table: first route of (s, d) is (s*7 + d*13) % num_routes.
  Simulator sim;
  MachineConfig cfg;
  SwitchFabric fab(sim, cfg, 8);
  std::vector<int> routes;
  fab.attach(6, [&](Packet&& p) { routes.push_back(p.route); });
  sim.at(0, [&] { fab.inject(make_packet(3, 6, 64)); });
  sim.run();
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0], (3 * 7 + 6 * 13) % cfg.num_routes);
}

}  // namespace
}  // namespace sp::net
