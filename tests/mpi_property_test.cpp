// Property-style tests: randomized message soups, cross-backend result
// equivalence, non-overtaking order, wildcard matching, eager-limit sweeps,
// fault injection and interrupt-mode end-to-end runs.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <numeric>
#include <vector>

#include "mpi/coll.hpp"
#include "mpi/derived_datatype.hpp"
#include "mpi/machine.hpp"
#include "sim/explorer.hpp"
#include "sim/rng.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;
using sim::Pcg32;

constexpr Backend kAllBackends[] = {Backend::kNativePipes, Backend::kLapiBase,
                                    Backend::kLapiCounters, Backend::kLapiEnhanced,
                                    Backend::kRdma};

/// A randomized all-pairs message soup: every rank sends a schedule of
/// messages with random sizes/tags to random peers; every payload byte is a
/// deterministic function of (src, dst, msg index, offset); receivers post
/// matching receives in-order per source and verify every byte. Returns a
/// checksum that must be identical for every backend and config variation.
std::uint64_t message_soup(const MachineConfig& cfg, Backend backend, int nodes,
                           std::uint64_t seed, int msgs_per_rank, bool interrupt_mode = false) {
  // Build the global send schedule deterministically up front.
  struct Msg {
    int src, dst, tag;
    std::size_t len;
  };
  Pcg32 rng(seed);
  std::vector<Msg> schedule;
  for (int s = 0; s < nodes; ++s) {
    for (int k = 0; k < msgs_per_rank; ++k) {
      Msg msg;
      msg.src = s;
      msg.dst = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(nodes)));
      msg.tag = static_cast<int>(rng.next_below(5));
      // Mix of eager and rendezvous sizes.
      const std::uint32_t cls = rng.next_below(4);
      msg.len = cls == 0 ? rng.next_below(64)
                : cls == 1 ? 64 + rng.next_below(1024)
                : cls == 2 ? 1024 + rng.next_below(8192)
                           : 8192 + rng.next_below(32768);
      schedule.push_back(msg);
    }
  }

  auto fill = [](std::vector<std::uint8_t>& buf, const Msg& m, int idx) {
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::uint8_t>(m.src * 7 + m.dst * 13 + idx * 31 + i);
    }
  };

  std::uint64_t checksum = 0;
  Machine machine(cfg, nodes, backend);
  machine.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int me = w.rank();
    if (interrupt_mode) mpi.set_interrupt_mode(true);
    // Post receives for everything destined to me in global schedule order;
    // per (src,tag) that is exactly send order, so any non-overtaking
    // violation shows up as a payload mismatch below.
    std::vector<Request> recvs;
    std::vector<std::unique_ptr<std::vector<std::uint8_t>>> rbufs;
    std::vector<int> ridx;
    for (int i = 0; i < static_cast<int>(schedule.size()); ++i) {
      const Msg& m = schedule[static_cast<std::size_t>(i)];
      if (m.dst != me) continue;
      rbufs.push_back(std::make_unique<std::vector<std::uint8_t>>(m.len + 1, 0));
      recvs.push_back(mpi.irecv(rbufs.back()->data(), m.len, Datatype::kByte, m.src, m.tag, w));
      ridx.push_back(i);
    }
    std::vector<std::unique_ptr<std::vector<std::uint8_t>>> sbufs;
    std::vector<Request> sends;
    for (int i = 0; i < static_cast<int>(schedule.size()); ++i) {
      const Msg& m = schedule[static_cast<std::size_t>(i)];
      if (m.src != me) continue;
      sbufs.push_back(std::make_unique<std::vector<std::uint8_t>>(m.len));
      fill(*sbufs.back(), m, i);
      sends.push_back(mpi.isend(sbufs.back()->data(), m.len, Datatype::kByte, m.dst, m.tag, w));
    }
    mpi.waitall(sends.data(), sends.size());
    mpi.waitall(recvs.data(), recvs.size());
    // Verify payloads and fold into a checksum.
    std::uint64_t local = 0;
    for (std::size_t k = 0; k < ridx.size(); ++k) {
      const Msg& m = schedule[static_cast<std::size_t>(ridx[k])];
      std::vector<std::uint8_t> expect(m.len);
      fill(expect, m, ridx[k]);
      expect.push_back(0);
      ASSERT_EQ(*rbufs[k], expect) << "message " << ridx[k] << " corrupted";
      for (auto b : *rbufs[k]) local = local * 1099511628211ULL + b;
    }
    std::uint64_t total = 0;
    mpi.allreduce(&local, &total, 1, Datatype::kLong, Op::kSum, w);
    if (me == 0) checksum = total;
    mpi.barrier(w);
  });
  return checksum;
}

TEST(PropertySoup, AllBackendsProduceIdenticalResults) {
  MachineConfig cfg;
  std::map<std::uint64_t, std::uint64_t> sums;
  for (Backend b : kAllBackends) {
    const std::uint64_t c = message_soup(cfg, b, 4, /*seed=*/1234, /*msgs=*/20);
    sums[1234] = sums.count(1234) ? sums[1234] : c;
    EXPECT_EQ(c, sums[1234]) << backend_name(b);
  }
}

class SoupSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoupSeeds, EnhancedBackendSoup) {
  MachineConfig cfg;
  (void)message_soup(cfg, Backend::kLapiEnhanced, 5, GetParam(), 16);
}

TEST_P(SoupSeeds, NativeBackendSoup) {
  MachineConfig cfg;
  (void)message_soup(cfg, Backend::kNativePipes, 5, GetParam(), 16);
}

TEST_P(SoupSeeds, CountersBackendSoup) {
  MachineConfig cfg;
  (void)message_soup(cfg, Backend::kLapiCounters, 5, GetParam(), 16);
}

TEST_P(SoupSeeds, RdmaBackendSoup) {
  MachineConfig cfg;
  (void)message_soup(cfg, Backend::kRdma, 5, GetParam(), 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoupSeeds, ::testing::Values(1u, 7u, 42u, 1999u, 31337u));

TEST(PropertySoup, SurvivesPacketLoss) {
  MachineConfig cfg;
  cfg.packet_drop_rate = 0.05;
  cfg.retransmit_timeout_ns = 300'000;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced}) {
    (void)message_soup(cfg, b, 3, 99, 12);
  }
}

TEST(PropertySoup, SurvivesSevereRouteSkew) {
  MachineConfig cfg;
  cfg.route_skew_ns = 350'000;
  for (Backend b : kAllBackends) {
    (void)message_soup(cfg, b, 3, 7, 12);
  }
}

TEST(PropertySoup, ChecksumIndependentOfEagerLimit) {
  // The eager/rendezvous switchover must never change results.
  std::uint64_t ref = 0;
  bool first = true;
  for (std::size_t limit : {0ul, 64ul, 1024ul, 4096ul, 65536ul}) {
    MachineConfig cfg;
    cfg.eager_limit = limit;
    const std::uint64_t c = message_soup(cfg, Backend::kLapiEnhanced, 4, 555, 14);
    if (first) {
      ref = c;
      first = false;
    }
    EXPECT_EQ(c, ref) << "eager limit " << limit;
  }
}

TEST(PropertySoup, ChecksumIndependentOfInterruptMode) {
  MachineConfig cfg;
  const std::uint64_t polling = message_soup(cfg, Backend::kLapiEnhanced, 3, 777, 10);
  const std::uint64_t interrupt =
      message_soup(cfg, Backend::kLapiEnhanced, 3, 777, 10, /*interrupt_mode=*/true);
  EXPECT_EQ(polling, interrupt) << "delivery mode must not change results";
  const std::uint64_t again = message_soup(cfg, Backend::kLapiEnhanced, 3, 777, 10);
  EXPECT_EQ(polling, again) << "simulation must be bit-deterministic";
}

TEST(Ordering, NonOvertakingSameTag) {
  // 50 same-(src,tag) messages must arrive in send order on every backend.
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (w.rank() == 0) {
        for (int i = 0; i < 50; ++i) {
          mpi.send(&i, 1, Datatype::kInt, 1, 0, w);
        }
      } else {
        for (int i = 0; i < 50; ++i) {
          int got = -1;
          mpi.recv(&got, 1, Datatype::kInt, 0, 0, w);
          ASSERT_EQ(got, i) << backend_name(b);
        }
      }
    });
  }
}

TEST(Ordering, NonOvertakingUnderRouteSkew) {
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    cfg.route_skew_ns = 300'000;
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (w.rank() == 0) {
        for (int i = 0; i < 40; ++i) {
          std::vector<int> v(100, i);
          mpi.send(v.data(), v.size(), Datatype::kInt, 1, 3, w);
        }
      } else {
        for (int i = 0; i < 40; ++i) {
          std::vector<int> v(100, -1);
          mpi.recv(v.data(), v.size(), Datatype::kInt, 0, 3, w);
          for (int x : v) ASSERT_EQ(x, i) << backend_name(b);
        }
      }
    });
  }
}

TEST(Wildcards, AnySourceAnyTagCollectsEverything) {
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    Machine m(cfg, 4, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (w.rank() == 0) {
        long seen = 0;
        for (int i = 0; i < 3 * 5; ++i) {
          long v = 0;
          Status st;
          mpi.recv(&v, 1, Datatype::kLong, kAnySource, kAnyTag, w, &st);
          EXPECT_EQ(v, st.source * 100 + st.tag);
          seen += v;
        }
        long expect = 0;
        for (int s = 1; s <= 3; ++s) {
          for (int t = 0; t < 5; ++t) expect += s * 100 + t;
        }
        EXPECT_EQ(seen, expect) << backend_name(b);
      } else {
        for (int t = 0; t < 5; ++t) {
          long v = w.rank() * 100 + t;
          mpi.send(&v, 1, Datatype::kLong, 0, t, w);
          mpi.compute(50 * sim::kUs);
        }
      }
    });
  }
}

TEST(Wildcards, AnySourceWithSpecificTagFilters) {
  MachineConfig cfg;
  Machine m(cfg, 3, Backend::kLapiEnhanced);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      // Two messages per peer: tag 1 then tag 2. Receive all tag-2 first.
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        Status st;
        mpi.recv(&v, 1, Datatype::kInt, kAnySource, 2, w, &st);
        EXPECT_EQ(v, st.source * 10 + 2);
      }
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        Status st;
        mpi.recv(&v, 1, Datatype::kInt, kAnySource, 1, w, &st);
        EXPECT_EQ(v, st.source * 10 + 1);
      }
    } else {
      int a = w.rank() * 10 + 1, b = w.rank() * 10 + 2;
      mpi.send(&a, 1, Datatype::kInt, 0, 1, w);
      mpi.send(&b, 1, Datatype::kInt, 0, 2, w);
    }
  });
}

// The seed treated this unexpected pile-up as fatal (EA buffer overflow).
// Now the sender's fair-share credit check demotes the overflow to
// rendezvous and every byte still arrives intact.
TEST(Wildcards, ProbeThenRecvMatchesTheProbedMessageOnEveryChannel) {
  // Satellite of the RDMA PR: a wildcard probe pins a message; the recv
  // issued from the returned Status must deliver *that* message, not a
  // different one that arrived in between — per channel, the iprobe
  // front-runner selection must agree with post_recv matching. Mixed eager
  // and rendezvous sizes exercise both protocol paths, and draining by
  // probed (src, tag) ensures per-source non-overtaking survives the
  // indirection.
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    Machine m(cfg, 4, b);
    long errors = 0;
    m.run([&errors](Mpi& mpi) {
      Comm& w = mpi.world();
      const int me = w.rank();
      constexpr int kPerSender = 6;
      // Sizes alternate across the eager limit; payload encodes (src, k).
      auto len_of = [](int src, int k) {
        return static_cast<std::size_t>(k % 2 == 0 ? 256 + src * 16 + k
                                                   : 6000 + src * 128 + k);
      };
      if (me != 0) {
        std::vector<std::uint8_t> buf;
        for (int k = 0; k < kPerSender; ++k) {
          buf.assign(len_of(me, k), static_cast<std::uint8_t>(me * 31 + k));
          mpi.send(buf.data(), buf.size(), Datatype::kByte, 0, /*tag=*/k % 3, w);
        }
      } else {
        const int total = (w.size() - 1) * kPerSender;
        std::map<int, std::vector<bool>> seen;  // src -> message k consumed
        for (int i = 0; i < total; ++i) {
          Status probed;
          mpi.probe(kAnySource, kAnyTag, w, &probed);
          std::vector<std::uint8_t> buf(probed.len + 1, 0xEE);
          Status got;
          mpi.recv(buf.data(), probed.len, Datatype::kByte, probed.source, probed.tag, w,
                   &got);
          if (got.source != probed.source || got.tag != probed.tag ||
              got.len != probed.len) {
            ++errors;
            continue;
          }
          // Lengths are unique per (src, k): identify which message this is.
          int k = -1;
          for (int c = 0; c < kPerSender; ++c) {
            if (len_of(probed.source, c) == probed.len) k = c;
          }
          auto& used = seen[probed.source];
          used.resize(kPerSender, false);
          if (k < 0 || used[static_cast<std::size_t>(k)] || probed.tag != k % 3) {
            ++errors;  // unknown length, delivered twice, or wrong tag
            continue;
          }
          used[static_cast<std::size_t>(k)] = true;
          const auto want = static_cast<std::uint8_t>(probed.source * 31 + k);
          for (std::size_t off = 0; off < probed.len; ++off) {
            if (buf[off] != want) {
              ++errors;
              break;
            }
          }
          if (buf[probed.len] != 0xEE) ++errors;  // wrote past probed len
        }
      }
    });
    EXPECT_EQ(errors, 0) << backend_name(b);
  }
}

TEST(FaultInjection, EarlyArrivalOverflowFailsOverToRendezvous) {
  MachineConfig cfg;
  cfg.early_arrival_bytes = 16 * 1024;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  long mismatches = 0;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      std::vector<char> chunk(4096, 'x');  // at the eager limit
      for (int i = 0; i < 16; ++i) {
        mpi.send(chunk.data(), chunk.size(), Datatype::kByte, 1, i, w);
      }
    } else {
      mpi.compute(50 * sim::kMs);  // never post: unexpected pile-up
      char sink[4096];
      for (int i = 0; i < 16; ++i) {
        for (char& c : sink) c = '\0';
        mpi.recv(sink, sizeof sink, Datatype::kByte, 0, i, w);
        for (char c : sink) {
          if (c != 'x') ++mismatches;
        }
      }
    }
  });
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(m.stats().ea_fallbacks, 0);
  // The auto fair share provably cannot lose the receiver-side admission
  // race, so no eager is ever NACKed in this mode.
  EXPECT_EQ(m.stats().ea_nacks, 0);
}

TEST(Protocol, ZeroByteAndEagerLimitChooseTheSameProtocolOnEveryChannel) {
  // Satellite of the RDMA PR: the eager/rendezvous decision at the boundary
  // sizes (0 bytes, exactly eager_limit, one past) must be identical across
  // all channels, so a program tuned against one channel's protocol split
  // sees the same split — and the same completion semantics — on the others.
  // protocol_for is the single source of truth; the counters verify each
  // channel actually honors it rather than special-casing empty messages.
  using mpci::Protocol;
  using mpci::protocol_for;
  const MachineConfig base;
  static_assert(protocol_for(mpci::Mode::kStandard, 0, 4096) == Protocol::kEager);
  EXPECT_EQ(protocol_for(mpci::Mode::kStandard, base.eager_limit, base.eager_limit),
            Protocol::kEager);
  EXPECT_EQ(protocol_for(mpci::Mode::kStandard, base.eager_limit + 1, base.eager_limit),
            Protocol::kRendezvous);

  for (Backend b : kAllBackends) {
    for (std::size_t len : {std::size_t{0}, base.eager_limit, base.eager_limit + 1}) {
      MachineConfig cfg;
      Machine m(cfg, 2, b);
      m.run([len](Mpi& mpi) {
        Comm& w = mpi.world();
        std::vector<std::uint8_t> buf(len + 1, 0x5A);
        if (w.rank() == 0) {
          mpi.send(buf.data(), len, Datatype::kByte, 1, 0, w);
        } else {
          Status st;
          mpi.recv(buf.data(), len, Datatype::kByte, 0, 0, w, &st);
          ASSERT_EQ(st.len, len);
        }
      });
      const auto s = m.stats();
      const bool expect_eager = len <= cfg.eager_limit;
      EXPECT_EQ(s.eager_sends, expect_eager ? 1 : 0)
          << backend_name(b) << " len=" << len;
      EXPECT_EQ(s.rendezvous_sends, expect_eager ? 0 : 1)
          << backend_name(b) << " len=" << len;
    }
  }
}

TEST(InterruptMode, PingPongWorksOnAllBackends) {
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      mpi.set_interrupt_mode(true);
      std::vector<int> v(200, 0);
      if (w.rank() == 0) {
        std::iota(v.begin(), v.end(), 5);
        mpi.send(v.data(), v.size(), Datatype::kInt, 1, 0, w);
        mpi.recv(v.data(), v.size(), Datatype::kInt, 1, 1, w);
        EXPECT_EQ(v[0], 6);
      } else {
        mpi.recv(v.data(), v.size(), Datatype::kInt, 0, 0, w);
        EXPECT_EQ(v[199], 204);
        for (auto& x : v) x += 1;
        mpi.send(v.data(), v.size(), Datatype::kInt, 0, 1, w);
      }
    });
    const std::int64_t taken = m.hal(0).interrupts_taken() + m.hal(1).interrupts_taken();
    if (b == Backend::kRdma) {
      // NIC-resident protocols complete without host interrupt delivery;
      // MP_CSS_INTERRUPT must be a harmless no-op on this channel.
      EXPECT_EQ(taken, 0) << backend_name(b);
    } else {
      EXPECT_GT(taken, 0) << backend_name(b);
    }
  }
}

// --- derived datatypes + Status arrays under explorer perturbation ----------

/// Machine configs drawn from real explorer perturbation vectors (fault +
/// schedule knobs), so the orderings below run under the same schedule space
/// the fuzzer sweeps — not just the clean default timeline.
struct PerturbedCase {
  MachineConfig cfg;
  bool interrupt_mode = false;
};

std::vector<PerturbedCase> perturbed_cases() {
  std::vector<PerturbedCase> cases;
  cases.push_back({MachineConfig{}, false});  // clean baseline
  const sim::Explorer ex{sim::Explorer::Options{}};
  for (std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
    const sim::Perturbation p = ex.perturbation_for(seed);
    cases.push_back({p.apply(MachineConfig{}),
                     (p.flags & sim::Perturbation::kFlagInterruptMode) != 0});
  }
  return cases;
}

constexpr std::size_t status_len(int src, int tag) {
  return static_cast<std::size_t>(64 * src + 256 * tag + 8);
}

constexpr std::uint8_t status_byte(int src, int tag, std::size_t k) {
  return static_cast<std::uint8_t>(src * 11 + tag * 3 + k);
}

TEST(StatusArrays, WaitallFillsPerRequestStatusOutOfOrder) {
  // Rank 0 posts nine receives in (src, tag) order; the senders emit their
  // tags in reverse with staggered start times, so completions land out of
  // posting order. sts[i] must still describe reqs[i] — per-request, not
  // per-completion — under every perturbation vector.
  for (const auto& [cfg, irq] : perturbed_cases()) {
    for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced}) {
      Machine m(cfg, 4, b);
      m.run([&](Mpi& mpi) {
        Comm& w = mpi.world();
        if (irq) mpi.set_interrupt_mode(true);
        if (w.rank() == 0) {
          struct Slot {
            int src, tag;
          };
          std::vector<Slot> slots;
          for (int src = 1; src <= 3; ++src) {
            for (int tag = 0; tag < 3; ++tag) slots.push_back({src, tag});
          }
          std::vector<std::vector<std::uint8_t>> bufs;
          std::vector<Request> reqs;
          for (const Slot& s : slots) {
            bufs.emplace_back(status_len(s.src, s.tag), 0);
            reqs.push_back(mpi.irecv(bufs.back().data(), bufs.back().size(), Datatype::kByte,
                                     s.src, s.tag, w));
          }
          std::vector<Status> sts(reqs.size());
          mpi.waitall(reqs.data(), reqs.size(), sts.data());
          for (std::size_t i = 0; i < slots.size(); ++i) {
            EXPECT_EQ(sts[i].source, slots[i].src) << backend_name(b) << " req " << i;
            EXPECT_EQ(sts[i].tag, slots[i].tag);
            EXPECT_EQ(sts[i].len, status_len(slots[i].src, slots[i].tag));
            for (std::size_t k = 0; k < bufs[i].size(); ++k) {
              ASSERT_EQ(bufs[i][k], status_byte(slots[i].src, slots[i].tag, k))
                  << "req " << i << " byte " << k;
            }
          }
        } else {
          mpi.compute((4 - w.rank()) * 30 * sim::kUs);
          for (int tag = 2; tag >= 0; --tag) {
            std::vector<std::uint8_t> v(status_len(w.rank(), tag));
            for (std::size_t k = 0; k < v.size(); ++k) v[k] = status_byte(w.rank(), tag, k);
            mpi.send(v.data(), v.size(), Datatype::kByte, 0, tag, w);
            mpi.compute(25 * sim::kUs);
          }
        }
      });
    }
  }
}

TEST(StatusArrays, TestallFillsStatusesOnlyOnCompletion) {
  for (const auto& [cfg, irq] : perturbed_cases()) {
    Machine m(cfg, 2, Backend::kLapiEnhanced);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (irq) mpi.set_interrupt_mode(true);
      if (w.rank() == 0) {
        std::vector<std::vector<std::uint8_t>> bufs;
        std::vector<Request> reqs;
        for (int tag = 0; tag < 6; ++tag) {
          bufs.emplace_back(status_len(1, tag), 0);
          reqs.push_back(
              mpi.irecv(bufs.back().data(), bufs.back().size(), Datatype::kByte, 1, tag, w));
        }
        std::vector<Status> sts(reqs.size());
        while (!mpi.testall(reqs.data(), reqs.size(), sts.data())) {
          mpi.compute(10 * sim::kUs);
        }
        for (int tag = 0; tag < 6; ++tag) {
          const auto i = static_cast<std::size_t>(tag);
          EXPECT_EQ(sts[i].source, 1);
          EXPECT_EQ(sts[i].tag, tag);
          EXPECT_EQ(sts[i].len, status_len(1, tag));
          for (std::size_t k = 0; k < bufs[i].size(); ++k) {
            ASSERT_EQ(bufs[i][k], status_byte(1, tag, k));
          }
        }
      } else {
        // Reverse tag order + pauses: completions cross the poll loop.
        for (int tag = 5; tag >= 0; --tag) {
          std::vector<std::uint8_t> v(status_len(1, tag));
          for (std::size_t k = 0; k < v.size(); ++k) v[k] = status_byte(1, tag, k);
          mpi.send(v.data(), v.size(), Datatype::kByte, 0, tag, w);
          mpi.compute(40 * sim::kUs);
        }
      }
    });
  }
}

TEST(DerivedTypes, StridedColumnsSurviveEveryBackendUnderPerturbation) {
  // A matrix-column exchange (MPI_Type_vector shape): rank 0 sends column j
  // of an 8x8 int matrix; rank 1 scatters it into a zeroed matrix through
  // the same layout. Byte-exact on all four backends under each vector.
  constexpr int kDim = 8;
  const DerivedDatatype column =
      DerivedDatatype::vector(kDim, 1, kDim, Datatype::kInt);
  for (const auto& [cfg, irq] : perturbed_cases()) {
    for (Backend b : kAllBackends) {
      Machine m(cfg, 2, b);
      m.run([&](Mpi& mpi) {
        Comm& w = mpi.world();
        if (irq) mpi.set_interrupt_mode(true);
        constexpr int kCol = 3;
        if (w.rank() == 0) {
          std::vector<int> mat(kDim * kDim);
          for (int i = 0; i < kDim * kDim; ++i) mat[static_cast<std::size_t>(i)] = i * 17 + 1;
          mpi.send(&mat[kCol], 1, column, 1, 0, w);
        } else {
          std::vector<int> mat(kDim * kDim, 0);
          Status st;
          mpi.recv(&mat[kCol], 1, column, 0, 0, w, &st);
          EXPECT_EQ(st.source, 0);
          EXPECT_EQ(st.len, column.packed_bytes());
          for (int r = 0; r < kDim; ++r) {
            for (int c = 0; c < kDim; ++c) {
              const int got = mat[static_cast<std::size_t>(r * kDim + c)];
              if (c == kCol) {
                EXPECT_EQ(got, (r * kDim + c) * 17 + 1)
                    << backend_name(b) << " r" << r << " c" << c;
              } else {
                EXPECT_EQ(got, 0) << "stride gap written: r" << r << " c" << c;
              }
            }
          }
        }
      });
    }
  }
}

TEST(DerivedTypes, IndexedNonblockingCompletesOutOfOrderWithStatuses) {
  // Derived-datatype isend/irecv mixed with a plain eager message, completed
  // through the Status-array waitall: the indexed gather/scatter must land in
  // the right holes and sts[i] must describe reqs[i] even when the plain
  // message (sent first, tiny) completes before the big indexed one.
  constexpr std::pair<std::size_t, std::size_t> kHoles[] = {{0, 2}, {5, 1}, {9, 4}, {20, 3}};
  const DerivedDatatype holes = DerivedDatatype::indexed(
      {std::begin(kHoles), std::end(kHoles)}, Datatype::kInt);
  const std::size_t extent = holes.extent_bytes() / sizeof(int);
  for (const auto& [cfg, irq] : perturbed_cases()) {
    Machine m(cfg, 2, Backend::kLapiEnhanced);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (irq) mpi.set_interrupt_mode(true);
      if (w.rank() == 0) {
        std::vector<int> layout(4 * extent, -1);
        int small = 0;
        Request reqs[2];
        reqs[0] = mpi.irecv(layout.data(), 4, holes, 1, 1, w);  // 4 instances
        reqs[1] = mpi.irecv(&small, 1, Datatype::kInt, 1, 2, w);
        Status sts[2];
        mpi.waitall(reqs, 2, sts);
        EXPECT_EQ(sts[0].tag, 1);
        EXPECT_EQ(sts[0].len, 4 * holes.packed_bytes());
        EXPECT_EQ(sts[1].tag, 2);
        EXPECT_EQ(sts[1].len, sizeof(int));
        EXPECT_EQ(small, 424242);
        int expect = 1000;
        std::vector<bool> hole(extent, false);
        for (auto [d, l] : kHoles) {
          for (std::size_t k = 0; k < l; ++k) hole[d + k] = true;
        }
        for (std::size_t inst = 0; inst < 4; ++inst) {
          for (std::size_t e = 0; e < extent; ++e) {
            const int got = layout[inst * extent + e];
            if (hole[e]) {
              EXPECT_EQ(got, expect++) << "instance " << inst << " elem " << e;
            } else {
              EXPECT_EQ(got, -1) << "gap overwritten at instance " << inst << " elem " << e;
            }
          }
        }
      } else {
        const int small = 424242;
        mpi.send(&small, 1, Datatype::kInt, 0, 2, w);  // tiny, eager, lands first
        std::vector<int> layout(4 * extent, -7);
        int v = 1000;
        for (std::size_t inst = 0; inst < 4; ++inst) {
          for (auto [d, l] : kHoles) {
            for (std::size_t k = 0; k < l; ++k) layout[inst * extent + d + k] = v++;
          }
        }
        mpi.send(layout.data(), 4, holes, 0, 1, w);
      }
    });
  }
}

// --- collective algorithm engine properties (DESIGN.md §12) -----------------

/// Run one allreduce with the algorithm pins in `spec`; every rank's result
/// must agree bit-for-bit, and the returned vector is that shared result.
std::vector<long> pinned_allreduce(const std::string& spec, Op op,
                                   const std::vector<std::vector<long>>& in) {
  const int nodes = static_cast<int>(in.size());
  const std::size_t count = in[0].size();
  MachineConfig cfg;
  std::string err;
  EXPECT_TRUE(coll::apply_algo_spec(cfg, spec, &err)) << err;
  Machine m(cfg, nodes, Backend::kLapiEnhanced);
  std::vector<std::vector<long>> out(in.size(), std::vector<long>(count, -1));
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const auto me = static_cast<std::size_t>(w.rank());
    mpi.allreduce(in[me].data(), out[me].data(), count, Datatype::kLong, op, w);
  });
  for (std::size_t r = 1; r < out.size(); ++r) {
    EXPECT_EQ(out[r], out[0]) << spec << ": rank " << r << " disagrees with rank 0";
  }
  return out[0];
}

/// Same for scan: returns each rank's inclusive prefix.
std::vector<std::vector<long>> pinned_scan(const std::string& spec, Op op,
                                           const std::vector<std::vector<long>>& in) {
  const int nodes = static_cast<int>(in.size());
  const std::size_t count = in[0].size();
  MachineConfig cfg;
  std::string err;
  EXPECT_TRUE(coll::apply_algo_spec(cfg, spec, &err)) << err;
  Machine m(cfg, nodes, Backend::kLapiEnhanced);
  std::vector<std::vector<long>> out(in.size(), std::vector<long>(count, -1));
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const auto me = static_cast<std::size_t>(w.rank());
    mpi.scan(in[me].data(), out[me].data(), count, Datatype::kLong, op, w);
  });
  return out;
}

/// Sequential single-rank reference over ranks [0, upto].
std::vector<long> seq_fold(Op op, const std::vector<std::vector<long>>& in, std::size_t upto) {
  std::vector<long> acc = in[0];
  for (std::size_t r = 1; r <= upto; ++r) {
    reduce_apply(op, Datatype::kLong, in[r].data(), acc.data(), acc.size());
  }
  return acc;
}

TEST(CollAlgoProperties, NonCommutativeOrderPreservedByEveryAlgorithm) {
  // Random chains of wrapping 2x2 matrix products: any algorithm that merges
  // operands out of communicator rank order produces different bits. Checked
  // for every allreduce and scan algorithm over several sizes and seeds.
  for (const std::uint64_t seed : {5ULL, 17ULL, 123ULL}) {
    for (const int nodes : {3, 6, 8}) {
      Pcg32 rng(seed + static_cast<std::uint64_t>(nodes));
      const std::size_t count = 4 * (1 + rng.next_below(24));  // 4..96, % 4 == 0
      std::vector<std::vector<long>> in(static_cast<std::size_t>(nodes),
                                        std::vector<long>(count));
      for (auto& v : in) {
        for (auto& x : v) {
          x = static_cast<long>(rng.next_below(0x7fffffffu)) * 2654435761L + 1;
        }
      }
      const std::vector<long> ref =
          seq_fold(Op::kMat2x2, in, static_cast<std::size_t>(nodes) - 1);
      for (const char* spec : {"allreduce=reduce_bcast", "allreduce=recursive_doubling",
                               "allreduce=rabenseifner", "allreduce=in_network"}) {
        EXPECT_EQ(pinned_allreduce(spec, Op::kMat2x2, in), ref)
            << spec << " seed=" << seed << " n=" << nodes << " count=" << count;
      }
      for (const char* spec : {"scan=linear", "scan=binomial"}) {
        const auto prefixes = pinned_scan(spec, Op::kMat2x2, in);
        for (std::size_t r = 0; r < prefixes.size(); ++r) {
          EXPECT_EQ(prefixes[r], seq_fold(Op::kMat2x2, in, r))
              << spec << " seed=" << seed << " n=" << nodes << " rank=" << r;
        }
      }
    }
  }
}

TEST(CollAlgoProperties, IntegerWrapIsBitIdenticalAcrossAlgorithms) {
  // kSum/kProd near the int64 overflow boundary: every algorithm must wrap
  // identically (unsigned arithmetic), so all pins agree bit-for-bit with the
  // sequential reference no matter how the tree regroups the operands.
  for (const std::uint64_t seed : {2ULL, 71ULL}) {
    for (const int nodes : {5, 8, 13}) {
      Pcg32 rng(seed * 1000003ULL + static_cast<std::uint64_t>(nodes));
      const std::size_t count = 1 + rng.next_below(64);
      std::vector<std::vector<long>> in(static_cast<std::size_t>(nodes),
                                        std::vector<long>(count));
      for (auto& v : in) {
        for (auto& x : v) {
          // Large odd magnitudes: sums and products overflow immediately.
          x = (static_cast<long>(rng.next_below(0xffffffffu)) << 31) | 0x5aa51L;
        }
      }
      for (const Op op : {Op::kSum, Op::kProd}) {
        const std::vector<long> ref =
            seq_fold(op, in, static_cast<std::size_t>(nodes) - 1);
        for (const char* spec : {"allreduce=reduce_bcast", "allreduce=recursive_doubling",
                                 "allreduce=rabenseifner", "allreduce=in_network"}) {
          EXPECT_EQ(pinned_allreduce(spec, op, in), ref)
              << spec << " op=" << static_cast<int>(op) << " seed=" << seed << " n=" << nodes;
        }
      }
    }
  }
}

TEST(Determinism, ElapsedTimeIsBitIdenticalAcrossRuns) {
  auto run_once = [] {
    MachineConfig cfg;
    Machine m(cfg, 4, Backend::kLapiEnhanced);
    m.run([](Mpi& mpi) {
      Comm& w = mpi.world();
      std::vector<double> v(512, w.rank());
      std::vector<double> out(512);
      for (int i = 0; i < 5; ++i) {
        mpi.allreduce(v.data(), out.data(), 512, Datatype::kDouble, Op::kSum, w);
        mpi.alltoall(v.data(), 128, out.data(), Datatype::kDouble, w);
      }
    });
    return m.elapsed();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

}  // namespace
}  // namespace sp::mpi
