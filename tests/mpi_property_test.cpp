// Property-style tests: randomized message soups, cross-backend result
// equivalence, non-overtaking order, wildcard matching, eager-limit sweeps,
// fault injection and interrupt-mode end-to-end runs.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "mpi/machine.hpp"
#include "sim/rng.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;
using sim::Pcg32;

constexpr Backend kAllBackends[] = {Backend::kNativePipes, Backend::kLapiBase,
                                    Backend::kLapiCounters, Backend::kLapiEnhanced};

/// A randomized all-pairs message soup: every rank sends a schedule of
/// messages with random sizes/tags to random peers; every payload byte is a
/// deterministic function of (src, dst, msg index, offset); receivers post
/// matching receives in-order per source and verify every byte. Returns a
/// checksum that must be identical for every backend and config variation.
std::uint64_t message_soup(const MachineConfig& cfg, Backend backend, int nodes,
                           std::uint64_t seed, int msgs_per_rank, bool interrupt_mode = false) {
  // Build the global send schedule deterministically up front.
  struct Msg {
    int src, dst, tag;
    std::size_t len;
  };
  Pcg32 rng(seed);
  std::vector<Msg> schedule;
  for (int s = 0; s < nodes; ++s) {
    for (int k = 0; k < msgs_per_rank; ++k) {
      Msg msg;
      msg.src = s;
      msg.dst = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(nodes)));
      msg.tag = static_cast<int>(rng.next_below(5));
      // Mix of eager and rendezvous sizes.
      const std::uint32_t cls = rng.next_below(4);
      msg.len = cls == 0 ? rng.next_below(64)
                : cls == 1 ? 64 + rng.next_below(1024)
                : cls == 2 ? 1024 + rng.next_below(8192)
                           : 8192 + rng.next_below(32768);
      schedule.push_back(msg);
    }
  }

  auto fill = [](std::vector<std::uint8_t>& buf, const Msg& m, int idx) {
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::uint8_t>(m.src * 7 + m.dst * 13 + idx * 31 + i);
    }
  };

  std::uint64_t checksum = 0;
  Machine machine(cfg, nodes, backend);
  machine.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int me = w.rank();
    if (interrupt_mode) mpi.set_interrupt_mode(true);
    // Post receives for everything destined to me in global schedule order;
    // per (src,tag) that is exactly send order, so any non-overtaking
    // violation shows up as a payload mismatch below.
    std::vector<Request> recvs;
    std::vector<std::unique_ptr<std::vector<std::uint8_t>>> rbufs;
    std::vector<int> ridx;
    for (int i = 0; i < static_cast<int>(schedule.size()); ++i) {
      const Msg& m = schedule[static_cast<std::size_t>(i)];
      if (m.dst != me) continue;
      rbufs.push_back(std::make_unique<std::vector<std::uint8_t>>(m.len + 1, 0));
      recvs.push_back(mpi.irecv(rbufs.back()->data(), m.len, Datatype::kByte, m.src, m.tag, w));
      ridx.push_back(i);
    }
    std::vector<std::unique_ptr<std::vector<std::uint8_t>>> sbufs;
    std::vector<Request> sends;
    for (int i = 0; i < static_cast<int>(schedule.size()); ++i) {
      const Msg& m = schedule[static_cast<std::size_t>(i)];
      if (m.src != me) continue;
      sbufs.push_back(std::make_unique<std::vector<std::uint8_t>>(m.len));
      fill(*sbufs.back(), m, i);
      sends.push_back(mpi.isend(sbufs.back()->data(), m.len, Datatype::kByte, m.dst, m.tag, w));
    }
    mpi.waitall(sends.data(), sends.size());
    mpi.waitall(recvs.data(), recvs.size());
    // Verify payloads and fold into a checksum.
    std::uint64_t local = 0;
    for (std::size_t k = 0; k < ridx.size(); ++k) {
      const Msg& m = schedule[static_cast<std::size_t>(ridx[k])];
      std::vector<std::uint8_t> expect(m.len);
      fill(expect, m, ridx[k]);
      expect.push_back(0);
      ASSERT_EQ(*rbufs[k], expect) << "message " << ridx[k] << " corrupted";
      for (auto b : *rbufs[k]) local = local * 1099511628211ULL + b;
    }
    std::uint64_t total = 0;
    mpi.allreduce(&local, &total, 1, Datatype::kLong, Op::kSum, w);
    if (me == 0) checksum = total;
    mpi.barrier(w);
  });
  return checksum;
}

TEST(PropertySoup, AllBackendsProduceIdenticalResults) {
  MachineConfig cfg;
  std::map<std::uint64_t, std::uint64_t> sums;
  for (Backend b : kAllBackends) {
    const std::uint64_t c = message_soup(cfg, b, 4, /*seed=*/1234, /*msgs=*/20);
    sums[1234] = sums.count(1234) ? sums[1234] : c;
    EXPECT_EQ(c, sums[1234]) << backend_name(b);
  }
}

class SoupSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoupSeeds, EnhancedBackendSoup) {
  MachineConfig cfg;
  (void)message_soup(cfg, Backend::kLapiEnhanced, 5, GetParam(), 16);
}

TEST_P(SoupSeeds, NativeBackendSoup) {
  MachineConfig cfg;
  (void)message_soup(cfg, Backend::kNativePipes, 5, GetParam(), 16);
}

TEST_P(SoupSeeds, CountersBackendSoup) {
  MachineConfig cfg;
  (void)message_soup(cfg, Backend::kLapiCounters, 5, GetParam(), 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoupSeeds, ::testing::Values(1u, 7u, 42u, 1999u, 31337u));

TEST(PropertySoup, SurvivesPacketLoss) {
  MachineConfig cfg;
  cfg.packet_drop_rate = 0.05;
  cfg.retransmit_timeout_ns = 300'000;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced}) {
    (void)message_soup(cfg, b, 3, 99, 12);
  }
}

TEST(PropertySoup, SurvivesSevereRouteSkew) {
  MachineConfig cfg;
  cfg.route_skew_ns = 350'000;
  for (Backend b : kAllBackends) {
    (void)message_soup(cfg, b, 3, 7, 12);
  }
}

TEST(PropertySoup, ChecksumIndependentOfEagerLimit) {
  // The eager/rendezvous switchover must never change results.
  std::uint64_t ref = 0;
  bool first = true;
  for (std::size_t limit : {0ul, 64ul, 1024ul, 4096ul, 65536ul}) {
    MachineConfig cfg;
    cfg.eager_limit = limit;
    const std::uint64_t c = message_soup(cfg, Backend::kLapiEnhanced, 4, 555, 14);
    if (first) {
      ref = c;
      first = false;
    }
    EXPECT_EQ(c, ref) << "eager limit " << limit;
  }
}

TEST(PropertySoup, ChecksumIndependentOfInterruptMode) {
  MachineConfig cfg;
  const std::uint64_t polling = message_soup(cfg, Backend::kLapiEnhanced, 3, 777, 10);
  const std::uint64_t interrupt =
      message_soup(cfg, Backend::kLapiEnhanced, 3, 777, 10, /*interrupt_mode=*/true);
  EXPECT_EQ(polling, interrupt) << "delivery mode must not change results";
  const std::uint64_t again = message_soup(cfg, Backend::kLapiEnhanced, 3, 777, 10);
  EXPECT_EQ(polling, again) << "simulation must be bit-deterministic";
}

TEST(Ordering, NonOvertakingSameTag) {
  // 50 same-(src,tag) messages must arrive in send order on every backend.
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (w.rank() == 0) {
        for (int i = 0; i < 50; ++i) {
          mpi.send(&i, 1, Datatype::kInt, 1, 0, w);
        }
      } else {
        for (int i = 0; i < 50; ++i) {
          int got = -1;
          mpi.recv(&got, 1, Datatype::kInt, 0, 0, w);
          ASSERT_EQ(got, i) << backend_name(b);
        }
      }
    });
  }
}

TEST(Ordering, NonOvertakingUnderRouteSkew) {
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    cfg.route_skew_ns = 300'000;
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (w.rank() == 0) {
        for (int i = 0; i < 40; ++i) {
          std::vector<int> v(100, i);
          mpi.send(v.data(), v.size(), Datatype::kInt, 1, 3, w);
        }
      } else {
        for (int i = 0; i < 40; ++i) {
          std::vector<int> v(100, -1);
          mpi.recv(v.data(), v.size(), Datatype::kInt, 0, 3, w);
          for (int x : v) ASSERT_EQ(x, i) << backend_name(b);
        }
      }
    });
  }
}

TEST(Wildcards, AnySourceAnyTagCollectsEverything) {
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    Machine m(cfg, 4, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (w.rank() == 0) {
        long seen = 0;
        for (int i = 0; i < 3 * 5; ++i) {
          long v = 0;
          Status st;
          mpi.recv(&v, 1, Datatype::kLong, kAnySource, kAnyTag, w, &st);
          EXPECT_EQ(v, st.source * 100 + st.tag);
          seen += v;
        }
        long expect = 0;
        for (int s = 1; s <= 3; ++s) {
          for (int t = 0; t < 5; ++t) expect += s * 100 + t;
        }
        EXPECT_EQ(seen, expect) << backend_name(b);
      } else {
        for (int t = 0; t < 5; ++t) {
          long v = w.rank() * 100 + t;
          mpi.send(&v, 1, Datatype::kLong, 0, t, w);
          mpi.compute(50 * sim::kUs);
        }
      }
    });
  }
}

TEST(Wildcards, AnySourceWithSpecificTagFilters) {
  MachineConfig cfg;
  Machine m(cfg, 3, Backend::kLapiEnhanced);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      // Two messages per peer: tag 1 then tag 2. Receive all tag-2 first.
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        Status st;
        mpi.recv(&v, 1, Datatype::kInt, kAnySource, 2, w, &st);
        EXPECT_EQ(v, st.source * 10 + 2);
      }
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        Status st;
        mpi.recv(&v, 1, Datatype::kInt, kAnySource, 1, w, &st);
        EXPECT_EQ(v, st.source * 10 + 1);
      }
    } else {
      int a = w.rank() * 10 + 1, b = w.rank() * 10 + 2;
      mpi.send(&a, 1, Datatype::kInt, 0, 1, w);
      mpi.send(&b, 1, Datatype::kInt, 0, 2, w);
    }
  });
}

TEST(FaultInjection, EarlyArrivalBufferOverflowIsFatal) {
  MachineConfig cfg;
  cfg.early_arrival_bytes = 16 * 1024;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  EXPECT_THROW(m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      std::vector<char> chunk(4096, 'x');  // at the eager limit
      for (int i = 0; i < 16; ++i) {
        mpi.send(chunk.data(), chunk.size(), Datatype::kByte, 1, i, w);
      }
    } else {
      mpi.compute(50 * sim::kMs);  // never post: unexpected pile-up
      char sink[4096];
      for (int i = 0; i < 16; ++i) mpi.recv(sink, sizeof sink, Datatype::kByte, 0, i, w);
    }
  }),
               mpci::FatalMpiError);
}

TEST(InterruptMode, PingPongWorksOnAllBackends) {
  for (Backend b : kAllBackends) {
    MachineConfig cfg;
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      mpi.set_interrupt_mode(true);
      std::vector<int> v(200, 0);
      if (w.rank() == 0) {
        std::iota(v.begin(), v.end(), 5);
        mpi.send(v.data(), v.size(), Datatype::kInt, 1, 0, w);
        mpi.recv(v.data(), v.size(), Datatype::kInt, 1, 1, w);
        EXPECT_EQ(v[0], 6);
      } else {
        mpi.recv(v.data(), v.size(), Datatype::kInt, 0, 0, w);
        EXPECT_EQ(v[199], 204);
        for (auto& x : v) x += 1;
        mpi.send(v.data(), v.size(), Datatype::kInt, 0, 1, w);
      }
    });
    EXPECT_GT(m.hal(0).interrupts_taken() + m.hal(1).interrupts_taken(), 0)
        << backend_name(b);
  }
}

TEST(Determinism, ElapsedTimeIsBitIdenticalAcrossRuns) {
  auto run_once = [] {
    MachineConfig cfg;
    Machine m(cfg, 4, Backend::kLapiEnhanced);
    m.run([](Mpi& mpi) {
      Comm& w = mpi.world();
      std::vector<double> v(512, w.rank());
      std::vector<double> out(512);
      for (int i = 0; i < 5; ++i) {
        mpi.allreduce(v.data(), out.data(), 512, Datatype::kDouble, Op::kSum, w);
        mpi.alltoall(v.data(), 128, out.data(), Datatype::kDouble, w);
      }
    });
    return m.elapsed();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

}  // namespace
}  // namespace sp::mpi
