// Unit tests for the discrete-event engine: queue ordering, determinism,
// rank-thread baton handshake, conditions and the wake gate.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rank_thread.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/wake_gate.hpp"

namespace sp::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, a] = q.pop();
    a();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(42, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    auto [t, a] = q.pop();
    EXPECT_EQ(t, 42);
    a();
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator sim;
  TimeNs last = -1;
  for (TimeNs t : {50, 10, 30, 10, 90}) {
    sim.at(t, [&sim, &last] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(sim.now(), 90);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, NestedSchedulingFromEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] {
    sim.after(5, [&] {
      EXPECT_EQ(sim.now(), 15);
      ++fired;
    });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  int fired = 0;
  sim.at(100, [&] {
    sim.at(5, [&] {
      EXPECT_EQ(sim.now(), 100);
      ++fired;
    });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(NodeCpu, SerializesWork) {
  Simulator sim;
  NodeCpu cpu;
  std::vector<TimeNs> done;
  sim.at(0, [&] {
    cpu.run(sim, 100, [&] { done.push_back(sim.now()); });
    cpu.run(sim, 50, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 150);  // queued behind the first
}

TEST(NodeCpu, IdleGapsSkipAhead) {
  Simulator sim;
  NodeCpu cpu;
  TimeNs done = 0;
  sim.at(0, [&] { cpu.charge(sim, 10); });
  sim.at(1000, [&] { cpu.run(sim, 10, [&] { done = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done, 1010);  // CPU was idle; starts at now, not at 10
}

TEST(RankThread, RunsBodyAndAdvancesTime) {
  Simulator sim;
  std::vector<TimeNs> stamps;
  RankThread rt(sim, 0, [&] {
    stamps.push_back(sim.now());
    rt.advance(100);
    stamps.push_back(sim.now());
    rt.advance(50);
    stamps.push_back(sim.now());
  });
  sim.after(0, [&] { rt.resume_from_sim(); });
  sim.run();
  EXPECT_TRUE(rt.finished());
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0);
  EXPECT_EQ(stamps[1], 100);
  EXPECT_EQ(stamps[2], 150);
}

TEST(RankThread, TwoThreadsInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> trace;
  RankThread a(sim, 0, [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back(0);
      a.advance(10);
    }
  });
  RankThread b(sim, 1, [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back(1);
      b.advance(10);
    }
  });
  sim.after(0, [&] { a.resume_from_sim(); });
  sim.after(0, [&] { b.resume_from_sim(); });
  sim.run();
  // Identical advance steps -> strict alternation by scheduling order.
  EXPECT_EQ(trace, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(RankThread, ConditionWakeup) {
  Simulator sim;
  SimCondition cond;
  bool flag = false;
  TimeNs woke_at = -1;
  RankThread rt(sim, 0, [&] {
    cond.wait_until(rt, [&] { return flag; });
    woke_at = sim.now();
  });
  sim.after(0, [&] { rt.resume_from_sim(); });
  sim.at(500, [&] {
    flag = true;
    cond.notify_all(sim);
  });
  sim.run();
  EXPECT_TRUE(rt.finished());
  EXPECT_EQ(woke_at, 500);
}

TEST(RankThread, AbortOnDestructionDoesNotHang) {
  Simulator sim;
  SimCondition cond;
  {
    RankThread rt(sim, 0, [&] {
      cond.wait(rt);  // never notified
      FAIL() << "should not resume normally";
    });
    sim.after(0, [&] { rt.resume_from_sim(); });
    sim.run();
    EXPECT_FALSE(rt.finished());
  }  // destructor aborts the blocked thread
  SUCCEED();
}

TEST(RankThread, BodyExceptionIsCaptured) {
  Simulator sim;
  RankThread rt(sim, 0, [] { throw std::runtime_error("boom"); });
  sim.after(0, [&] { rt.resume_from_sim(); });
  sim.run();
  EXPECT_TRUE(rt.finished());
  ASSERT_TRUE(rt.error());
  EXPECT_THROW(std::rethrow_exception(rt.error()), std::runtime_error);
}

TEST(WakeGate, OpenRunsImmediately) {
  WakeGate g;
  int ran = 0;
  g.apply([&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(WakeGate, ClosedDefersUntilOpenInOrder) {
  WakeGate g;
  std::vector<int> order;
  g.close();
  g.apply([&] { order.push_back(1); });
  g.apply([&] { order.push_back(2); });
  EXPECT_TRUE(order.empty());
  g.open();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WakeGate, NestedCloseNeedsMatchingOpens) {
  WakeGate g;
  int ran = 0;
  g.close();
  g.close();
  g.apply([&] { ++ran; });
  g.open();
  EXPECT_EQ(ran, 0);
  g.open();
  EXPECT_EQ(ran, 1);
}

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(123), b(123), c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Pcg32, BoundedAndUnitInterval) {
  Pcg32 r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_sec(2 * kSec), 2.0);
  EXPECT_DOUBLE_EQ(to_mb_per_sec(1'000'000, kSec), 1.0);
  EXPECT_DOUBLE_EQ(to_mb_per_sec(100, 0), 0.0);
}

}  // namespace
}  // namespace sp::sim
