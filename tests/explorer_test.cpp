// Schedule-space explorer tests (DESIGN.md §11): repro-token round-trips,
// per-channel digest determinism, cross-run machine isolation, the clean
// 256-seed differential sweep from the acceptance criteria, and the
// self-test that re-introduces the PR 2 re-ack coalescing bug and requires
// the explorer to catch it and shrink it to a replayable token.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/explorer.hpp"
#include "test_harness.hpp"

namespace sp::sim {
namespace {

using mpi::Backend;

/// A hand-built vector with every knob away from its default, so a token
/// round-trip exercises every field.
Perturbation busy_vector() {
  Perturbation p;
  p.seed = 0xdeadbeefcafe1234ULL;
  p.nodes = 6;
  p.msgs_per_rank = 9;
  p.workload_seed = 0x1122334455667788ULL;
  p.fabric_seed = 0x99aabbccddeeff00ULL;
  p.drop_ppm = 12'345;
  p.dup_ppm = 6'789;
  p.route_bias_ppm = 250'000;
  p.jitter_ns = 54'321;
  p.route_skew_ns = 2'222;
  p.burst = 3;
  p.tie_break_salt = 0xfeedf00d5eedULL;
  p.flags = Perturbation::kFlagInterruptMode;
  // Pin every primitive: scan=2, reduce_scatter=1, alltoall=2, allreduce=4
  // (NIC offload), bcast=2 — all in range for their nibbles.
  p.coll_algos = 0x21242;
  p.topology = 3;  // torus3d
  p.channels = 3;  // full pipes/lapi/rdma trio
  return p;
}

TEST(ExplorerToken, RoundTripsEveryField) {
  const Perturbation p = busy_vector();
  const std::optional<Perturbation> back = Perturbation::parse(p.token());
  ASSERT_TRUE(back.has_value()) << p.token();
  EXPECT_EQ(*back, p);

  // Defaults round-trip too (the all-neutral vector).
  const Perturbation neutral;
  const auto back2 = Perturbation::parse(neutral.token());
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(*back2, neutral);
}

TEST(ExplorerToken, RejectsMalformed) {
  const std::string good = busy_vector().token();
  EXPECT_TRUE(Perturbation::parse(good).has_value());

  EXPECT_FALSE(Perturbation::parse("").has_value());
  EXPECT_FALSE(Perturbation::parse("x2").has_value());
  EXPECT_FALSE(Perturbation::parse("x1" + good.substr(2)).has_value());  // old version
  EXPECT_FALSE(Perturbation::parse(good.substr(0, good.rfind('-'))).has_value());  // field missing
  EXPECT_FALSE(Perturbation::parse(good + "-0").has_value());                      // field extra
  EXPECT_FALSE(Perturbation::parse(good + "zz").has_value());                      // trailing junk

  // Out-of-bounds values parse as hex but fail validation.
  auto reject = [](Perturbation p) {
    EXPECT_FALSE(Perturbation::parse(p.token()).has_value()) << p.token();
  };
  Perturbation p = busy_vector();
  p.nodes = 1;
  reject(p);
  p = busy_vector();
  p.nodes = 65;
  reject(p);
  p = busy_vector();
  p.msgs_per_rank = 0;
  reject(p);
  p = busy_vector();
  p.burst = 0;
  reject(p);
  p = busy_vector();
  p.drop_ppm = 600'000;  // > 50% loss is not survivable
  reject(p);
  p = busy_vector();
  p.route_bias_ppm = 1'000'001;
  reject(p);
  p = busy_vector();
  p.coll_algos = 0x6;  // bcast nibble past the in-network combining id
  reject(p);
  p = busy_vector();
  p.coll_algos = 0x60;  // allreduce nibble past the in-network combining id
  reject(p);
  p = busy_vector();
  p.coll_algos = 0x30000;  // scan nibble past its last algorithm
  reject(p);
  p = busy_vector();
  p.coll_algos = 0x100000;  // bits above the scan nibble
  reject(p);
  p = busy_vector();
  p.topology = 5;  // past kDragonfly
  reject(p);
  p = busy_vector();
  p.channels = 4;  // past the trio
  reject(p);
}

TEST(ExplorerToken, LegacyTokenVersionsParseWithDefaults) {
  // Tokens minted before the topology field ("x2", 14 data fields) and
  // before the channel-pairing field ("x3", 15 fields) must keep replaying
  // with those fields at their defaults (SP multistage, legacy pipes<->lapi
  // differential pair).
  Perturbation p = busy_vector();
  p.topology = 0;
  p.channels = 0;
  std::string tok = p.token();
  ASSERT_EQ(tok.substr(0, 3), "x4-");
  const std::string x3 = "x3-" + tok.substr(3, tok.rfind('-') - 3);
  const auto back3 = Perturbation::parse(x3);
  ASSERT_TRUE(back3.has_value()) << x3;
  EXPECT_EQ(*back3, p);
  const std::string x2 = "x2-" + x3.substr(3, x3.rfind('-') - 3);
  const auto back2 = Perturbation::parse(x2);
  ASSERT_TRUE(back2.has_value()) << x2;
  EXPECT_EQ(*back2, p);
  // A token with an extra field for its version (or one missing a field) is
  // malformed.
  EXPECT_FALSE(Perturbation::parse(x2 + "-0").has_value());
  EXPECT_FALSE(Perturbation::parse(x3 + "-0").has_value());
  EXPECT_FALSE(Perturbation::parse(tok.substr(0, tok.rfind('-'))).has_value());
}

TEST(ExplorerConformance, TopologyChoiceNeverChangesMpiResults) {
  // The topology field perturbs packet schedules only: the differential
  // check (Pipes vs LAPI, plus sequential references) must stay conformant
  // on every fabric with an otherwise-clean vector.
  Explorer::Options eo;
  eo.nodes = 6;
  eo.msgs_per_rank = 6;
  Explorer ex(eo);
  for (std::uint32_t topo = 0; topo < static_cast<std::uint32_t>(kTopologyKinds); ++topo) {
    Perturbation p;
    p.seed = 77;
    p.nodes = 6;
    p.msgs_per_rank = 6;
    p.topology = topo;
    const auto failure = ex.check(p);
    EXPECT_FALSE(failure.has_value())
        << "topology " << topo << " diverged: " << failure.value_or("");
  }
}

TEST(ExplorerDeterminism, SeedExpandsToTheSameVectorEveryTime) {
  Explorer::Options opts;
  const Explorer ex(opts);
  for (std::uint64_t seed : {1ULL, 42ULL, 0xabcdefULL}) {
    const Perturbation a = ex.perturbation_for(seed);
    const Perturbation b = ex.perturbation_for(seed);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.seed, seed);
  }
  EXPECT_NE(ex.perturbation_for(1), ex.perturbation_for(2));
}

TEST(ExplorerDeterminism, RunChannelDigestIsReproducible) {
  // Same seed + same perturbation vector => identical digest (acceptance
  // criterion), on both channels, under active fault + schedule knobs.
  Explorer::Options opts;
  const Explorer ex(opts);
  Perturbation p;
  p.nodes = 4;
  p.msgs_per_rank = 8;
  p.drop_ppm = 20'000;
  p.dup_ppm = 5'000;
  p.jitter_ns = 50'000;
  p.burst = 2;
  p.tie_break_salt = 0x5a17;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced}) {
    const auto first = ex.run_channel(p, b);
    const auto second = ex.run_channel(p, b);
    ASSERT_TRUE(first.completed) << first.error;
    EXPECT_TRUE(first.ok()) << (first.invariant_violations.empty()
                                    ? ""
                                    : first.invariant_violations[0]);
    EXPECT_EQ(first.conformance_digest, second.conformance_digest);
    EXPECT_EQ(first.telemetry_digest, second.telemetry_digest);
    EXPECT_EQ(first.elapsed, second.elapsed);
  }
}

TEST(ExplorerIsolation, BackToBackMachineRunsMatchFreshRuns) {
  // The explorer re-runs many Machines inside one process; any residual
  // static/global state (telemetry ring, stats baselines, fabric PRNG) would
  // make a run's digest depend on what ran before it. Observe vector B
  // first, then run two unrelated perturbed machines, then B again: every
  // observable must be bit-identical.
  Explorer::Options opts;
  const Explorer ex(opts);
  Perturbation b;
  b.nodes = 4;
  b.msgs_per_rank = 6;
  b.drop_ppm = 15'000;
  b.tie_break_salt = 7;
  Perturbation a;
  a.nodes = 3;
  a.msgs_per_rank = 10;
  a.workload_seed = 99;
  a.fabric_seed = 0xf00d;
  a.dup_ppm = 30'000;
  a.jitter_ns = 80'000;

  const auto fresh = ex.run_channel(b, Backend::kNativePipes);
  (void)ex.run_channel(a, Backend::kNativePipes);
  (void)ex.run_channel(a, Backend::kLapiEnhanced);
  const auto again = ex.run_channel(b, Backend::kNativePipes);

  ASSERT_TRUE(fresh.completed) << fresh.error;
  EXPECT_EQ(fresh.conformance_digest, again.conformance_digest);
  EXPECT_EQ(fresh.telemetry_digest, again.telemetry_digest);
  EXPECT_EQ(fresh.elapsed, again.elapsed);
  EXPECT_EQ(fresh.stats.packets_sent, again.stats.packets_sent);
  EXPECT_EQ(fresh.stats.fabric_dropped, again.stats.fabric_dropped);
}

TEST(ExplorerConformance, TieBreakSaltPermutesTimelineNotResults) {
  // The tie-break salt reorders same-timestamp event processing — a pure
  // schedule perturbation. Conformance observables must not move.
  Explorer::Options opts;
  Explorer ex(opts);
  Perturbation p;
  p.nodes = 4;
  p.msgs_per_rank = 8;
  const auto base = ex.run_channel(p, Backend::kLapiEnhanced);
  ASSERT_TRUE(base.ok());
  for (std::uint64_t salt : {0x1111ULL, 0x222222ULL}) {
    Perturbation q = p;
    q.tie_break_salt = salt;
    const auto salted = ex.run_channel(q, Backend::kLapiEnhanced);
    ASSERT_TRUE(salted.completed) << salted.error;
    EXPECT_EQ(salted.conformance_digest, base.conformance_digest) << "salt " << salt;
    // And the full differential check passes under the salt.
    EXPECT_EQ(ex.check(q), std::nullopt);
  }
}

TEST(ExplorerConformance, AlgorithmChoiceNeverChangesCollectiveResults) {
  // The collective-engine observable: pinning any algorithm combination
  // reroutes the wire traffic (so the match digest legitimately moves) but
  // must leave the user-visible collective results — and therefore the
  // cross-rank checksum — bit-identical to auto selection, and each pinned
  // vector must still pass the full Pipes/LAPI differential check.
  Explorer::Options opts;
  Explorer ex(opts);
  Perturbation p;
  p.nodes = 5;  // non-power-of-two: exercises the pre-fold paths
  p.msgs_per_rank = 6;
  const auto base = ex.run_channel(p, Backend::kLapiEnhanced);
  ASSERT_TRUE(base.ok()) << (base.invariant_violations.empty()
                                 ? base.error
                                 : base.invariant_violations[0]);
  for (std::uint32_t pins : {0x11111u,   // binomial/reduce_bcast/pairwise/via-reduce/linear
                             0x21232u,   // the "new" algorithms for every primitive
                             0x02222u,   // pipelined/rec-doubling/bruck/halving, auto scan
                             0x00030u,   // only allreduce pinned (Rabenseifner)
                             0x00055u}) {  // bcast+allreduce through the switch tables
    Perturbation q = p;
    q.coll_algos = pins;
    if (pins == 0x00055u) q.coll_ext = 5;  // and the in-network barrier
    const auto pinned = ex.run_channel(q, Backend::kLapiEnhanced);
    ASSERT_TRUE(pinned.ok()) << "pins=0x" << std::hex << pins << ": "
                             << (pinned.invariant_violations.empty()
                                     ? pinned.error
                                     : pinned.invariant_violations[0]);
    EXPECT_EQ(pinned.coll_digest, base.coll_digest) << "pins=0x" << std::hex << pins;
    EXPECT_EQ(pinned.checksum, base.checksum) << "pins=0x" << std::hex << pins;
    EXPECT_EQ(ex.check(q), std::nullopt) << "pins=0x" << std::hex << pins;
  }
}

TEST(ExplorerConformance, CleanSweepFindsNoMismatches) {
  // Acceptance criterion: 256 seeds on the 4-node mixed eager/rendezvous
  // workload across the channel pairings each vector selects, zero
  // conformance mismatches. The soak tier widens the sweep.
  Explorer::Options opts;
  opts.nodes = 4;
  opts.msgs_per_rank = 12;
  opts.seeds = sp::test::soak_mode() ? 1024 : 256;
  Explorer ex(opts);
  const Explorer::Report rep = ex.explore();
  EXPECT_EQ(rep.seeds_run, opts.seeds);
  // Each seed costs one run per channel in its differential set (2 or 3).
  int expected_runs = 0;
  for (int s = 0; s < opts.seeds; ++s) {
    const Perturbation p = ex.perturbation_for(opts.base_seed + static_cast<std::uint64_t>(s));
    expected_runs += p.channels == 3 ? 3 : 2;
  }
  EXPECT_EQ(rep.runs, expected_runs);
  EXPECT_TRUE(rep.mismatches.empty())
      << "first mismatch: " << rep.mismatches[0].reason
      << " token=" << rep.mismatches[0].token;
}

TEST(ExplorerShrink, ReintroducedReackBugIsCaughtAndShrunk) {
  // Acceptance criterion: with the PR 2 re-ack coalescing bug re-introduced
  // via the hidden knob, the sweep must catch it in under 200 seeds and
  // shrink to a replayable minimal token.
  Explorer::Options opts;
  opts.seeds = 200;
  opts.inject_reack_bug = true;
  Explorer ex(opts);
  const Explorer::Report rep = ex.explore();
  ASSERT_EQ(rep.mismatches.size(), 1u) << "bug not caught within 200 seeds";
  const Explorer::Mismatch& mm = rep.mismatches[0];
  EXPECT_LE(rep.seeds_run, 200);

  // The shrunken vector kept the bug knob and still names a re-ack failure.
  EXPECT_NE(mm.shrunk.flags & Perturbation::kFlagReackStormBug, 0u);
  EXPECT_LE(mm.shrunk.nodes, mm.original.nodes);
  EXPECT_LE(mm.shrunk.msgs_per_rank, mm.original.msgs_per_rank);

  // The token replays standalone: parse it back, verify it still fails, and
  // verify the same vector with the bug knob cleared is conformant (so the
  // failure is attributable to the re-introduced bug, nothing else).
  const auto parsed = Perturbation::parse(mm.token);
  ASSERT_TRUE(parsed.has_value()) << mm.token;
  EXPECT_EQ(*parsed, mm.shrunk);
  Explorer replay{Explorer::Options{}};
  EXPECT_TRUE(replay.check(*parsed).has_value()) << "shrunken token no longer fails";
  Perturbation fixed = *parsed;
  fixed.flags &= ~Perturbation::kFlagReackStormBug;
  EXPECT_EQ(replay.check(fixed), std::nullopt) << "failure not attributable to the bug knob";
}

/// A systematic vector exercising every x5 field away from its default.
Perturbation systematic_vector() {
  Perturbation p;
  p.seed = 0x5c4ed;
  p.nodes = 3;
  p.msgs_per_rank = 2;
  p.flags = Perturbation::kFlagSystematic |
            (static_cast<std::uint32_t>(mpi::Backend::kLapiEnhanced)
             << Perturbation::kBackendShift);
  p.sched_window_ns = 150;
  p.sys_msg_bytes = 512;
  p.sched = "10213";
  return p;
}

TEST(ExplorerToken, SystematicTokensRoundTrip) {
  const Perturbation p = systematic_vector();
  const std::string tok = p.token();
  ASSERT_EQ(tok.substr(0, 3), "x5-") << tok;
  const auto back = Perturbation::parse(tok);
  ASSERT_TRUE(back.has_value()) << tok;
  EXPECT_EQ(*back, p);

  // The canonical-schedule vector (empty decision string) round-trips too.
  Perturbation canon = p;
  canon.sched.clear();
  canon.sched_window_ns = 0;
  const auto back2 = Perturbation::parse(canon.token());
  ASSERT_TRUE(back2.has_value()) << canon.token();
  EXPECT_EQ(*back2, canon);

  // Non-systematic vectors keep emitting byte-identical x4 tokens: the flag
  // alone gates the extended fields.
  EXPECT_EQ(busy_vector().token().substr(0, 3), "x4-");
}

TEST(ExplorerToken, RejectsMalformedSystematic) {
  const Perturbation p = systematic_vector();
  const std::string good = p.token();
  ASSERT_TRUE(Perturbation::parse(good).has_value());

  // Version/flag coherence: the x5 tail requires the systematic flag. A
  // token carrying x5 fields but flagged non-systematic is incoherent —
  // splice the x5 tail onto the flag-stripped vector's x4 token.
  {
    Perturbation noflag = p;
    noflag.flags &= ~Perturbation::kFlagSystematic;
    std::string x4_tok = noflag.token();
    ASSERT_EQ(x4_tok.substr(0, 3), "x4-");
    std::size_t tail = good.size();
    for (int cut = 0; cut < 3; ++cut) tail = good.rfind('-', tail - 1);
    const std::string spliced = "x5" + x4_tok.substr(2) + good.substr(tail);
    EXPECT_FALSE(Perturbation::parse(spliced).has_value()) << spliced;
    // And an x5 token truncated down to the x4 field count must fail: no
    // prefix of a token is a token.
    EXPECT_FALSE(Perturbation::parse(good.substr(0, tail)).has_value());
  }

  // Decision-string shape: missing 's' sentinel, uppercase, non-hex.
  auto with_tail = [&](const std::string& tail) {
    std::string tok = good;
    tok = tok.substr(0, tok.rfind('-') + 1) + tail;
    return tok;
  };
  EXPECT_FALSE(Perturbation::parse(with_tail("10213")).has_value());   // no 's'
  EXPECT_FALSE(Perturbation::parse(with_tail("S10213")).has_value());  // wrong case
  EXPECT_FALSE(Perturbation::parse(with_tail("s102G3")).has_value());  // non-hex
  EXPECT_FALSE(Perturbation::parse(with_tail("s10 13")).has_value());  // whitespace
  EXPECT_TRUE(Perturbation::parse(with_tail("s")).has_value());        // empty sched ok

  // Field validation on the extended fields.
  auto reject = [](Perturbation q) {
    EXPECT_FALSE(Perturbation::parse(q.token()).has_value()) << q.token();
  };
  Perturbation q = p;
  q.flags = (q.flags & ~Perturbation::kBackendMask) |
            (5u << Perturbation::kBackendShift);  // past kRdma
  reject(q);
  q = p;
  q.sys_msg_bytes = 0;
  reject(q);
  q = p;
  q.sys_msg_bytes = 70'000;
  reject(q);
  q = p;
  q.msgs_per_rank = 300;  // decision indices assume small workloads
  reject(q);
  q = p;
  q.sched.assign(5000, '0');  // unshrunk runaway schedule
  reject(q);
}

TEST(ExplorerToken, X6TokensRoundTripAndValidate) {
  // The barrier-pin field ("x6", appended after the systematic fields per
  // the append-only rule) round-trips for both systematic and
  // non-systematic vectors, and only when it is non-zero — an unpinned
  // barrier keeps every older token byte-identical.
  Perturbation p = busy_vector();
  p.coll_algos = 0x00055u;  // bcast and allreduce through the switch tables
  p.coll_ext = 5;           // in-network barrier
  const std::string tok = p.token();
  ASSERT_EQ(tok.substr(0, 3), "x6-") << tok;
  const auto back = Perturbation::parse(tok);
  ASSERT_TRUE(back.has_value()) << tok;
  EXPECT_EQ(*back, p);
  EXPECT_EQ(back->token(), tok);

  Perturbation sp = systematic_vector();
  sp.coll_algos = 0x55;
  sp.coll_ext = 1;  // dissemination barrier
  const std::string stok = sp.token();
  ASSERT_EQ(stok.substr(0, 3), "x6-") << stok;
  const auto sback = Perturbation::parse(stok);
  ASSERT_TRUE(sback.has_value()) << stok;
  EXPECT_EQ(*sback, sp);
  EXPECT_EQ(sback->token(), stok);

  // Every strict prefix of an x6 token fails to parse: unlike x5, the
  // decision digits are not the trailing field, so a truncation can never be
  // mistaken for a shorter valid schedule.
  for (std::size_t cut = 0; cut < stok.size(); ++cut) {
    EXPECT_FALSE(Perturbation::parse(stok.substr(0, cut)).has_value())
        << "prefix " << stok.substr(0, cut);
  }
  EXPECT_FALSE(Perturbation::parse(tok + "-0").has_value());  // field extra

  auto reject = [](Perturbation q) {
    EXPECT_FALSE(Perturbation::parse(q.token()).has_value()) << q.token();
  };
  // Barrier ids 2-3 do not exist; 6 is past the in-network id.
  for (std::uint32_t bad : {2u, 3u, 6u, 0x15u}) {
    Perturbation q = p;
    q.coll_ext = bad;
    reject(q);
  }
  // A non-systematic x6 vector must carry the systematic fields inert: a
  // decision string without the flag is a corrupted token.
  Perturbation q = p;
  q.sched = "102";
  reject(q);
}

TEST(ExplorerToken, RejectsGarbageHexFields) {
  // Perturbation::parse used to lean on strtoull, which silently accepted
  // leading whitespace, sign characters, "0x" prefixes, and values that wrap
  // past 64 bits — so corrupted tokens could replay as a *different* vector
  // instead of failing. Strict lowercase-hex parsing rejects them all.
  const std::string good = busy_vector().token();
  auto corrupt_field = [&](int field, const std::string& repl) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t dash = good.find('-'); dash != std::string::npos;
         dash = good.find('-', start)) {
      parts.push_back(good.substr(start, dash - start));
      start = dash + 1;
    }
    parts.push_back(good.substr(start));
    parts[static_cast<std::size_t>(field)] = repl;
    std::string out = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) out += "-" + parts[i];
    return out;
  };
  for (int field = 1; field <= 16; ++field) {
    EXPECT_FALSE(Perturbation::parse(corrupt_field(field, "")).has_value())
        << "empty field " << field;
    EXPECT_FALSE(Perturbation::parse(corrupt_field(field, " 1")).has_value())
        << "whitespace field " << field;
    EXPECT_FALSE(Perturbation::parse(corrupt_field(field, "0x1")).has_value())
        << "0x prefix field " << field;
    EXPECT_FALSE(Perturbation::parse(corrupt_field(field, "12345678901234567"))
                     .has_value())
        << "overlong field " << field;
  }
  // '+' and '-' signs can't survive the dash-split as part of a field, but a
  // 'g' (just past the hex alphabet) can.
  EXPECT_FALSE(Perturbation::parse(corrupt_field(3, "1g")).has_value());
}

TEST(ExplorerToken, FuzzParseTokenRoundTrip) {
  // Deterministic fuzz: random vectors must round-trip token() <-> parse()
  // exactly, and every truncation of a valid token must be rejected (no
  // prefix of a token is itself a token).
  std::uint64_t lcg = 0xabcdef1234567890ULL;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 16;
  };
  for (int trial = 0; trial < 64; ++trial) {
    Perturbation p;
    p.seed = next();
    p.nodes = 2 + static_cast<int>(next() % 7);
    p.msgs_per_rank = 1 + static_cast<int>(next() % 16);
    p.workload_seed = next();
    p.fabric_seed = next();
    p.drop_ppm = static_cast<std::uint32_t>(next() % 500'000);
    p.dup_ppm = static_cast<std::uint32_t>(next() % 500'000);
    p.route_bias_ppm = static_cast<std::uint32_t>(next() % 1'000'000);
    p.jitter_ns = static_cast<TimeNs>(next() % 100'000);
    p.route_skew_ns = static_cast<TimeNs>(next() % 10'000);
    p.burst = 1 + static_cast<int>(next() % 4);
    p.tie_break_salt = next();
    p.flags = Perturbation::kFlagInterruptMode * static_cast<std::uint32_t>(next() & 1);
    p.topology = static_cast<std::uint32_t>(next() % 5);
    p.channels = static_cast<std::uint32_t>(next() % 4);
    if (next() & 1) {
      // Any in-range pin combination, including the in-network id (5) on the
      // bcast/allreduce nibbles.
      p.coll_algos = static_cast<std::uint32_t>(next() % 6) |
                     (static_cast<std::uint32_t>(next() % 6) << 4) |
                     (static_cast<std::uint32_t>(next() % 3) << 8) |
                     (static_cast<std::uint32_t>(next() % 3) << 12) |
                     (static_cast<std::uint32_t>(next() % 3) << 16);
    }
    {
      static constexpr std::uint32_t kExt[] = {0, 0, 1, 4, 5};  // half stay x4/x5
      p.coll_ext = kExt[next() % 5];
    }
    if (next() & 1) {
      p.flags |= Perturbation::kFlagSystematic |
                 (static_cast<std::uint32_t>(next() % 5) << Perturbation::kBackendShift);
      p.nodes = 2 + static_cast<int>(next() % 3);
      p.msgs_per_rank = 1 + static_cast<int>(next() % 4);
      p.sched_window_ns = static_cast<TimeNs>(next() % 1000);
      p.sys_msg_bytes = 1 + static_cast<std::uint32_t>(next() % 10'000);
      const int len = static_cast<int>(next() % 12);
      p.sched.clear();
      for (int i = 0; i < len; ++i)
        p.sched.push_back("0123456789abcdef"[next() % 16]);
    }
    const std::string tok = p.token();
    const auto back = Perturbation::parse(tok);
    ASSERT_TRUE(back.has_value()) << tok;
    EXPECT_EQ(*back, p) << tok;
    EXPECT_EQ(back->token(), tok);

    // Truncations: a strict prefix must fail to parse — except an x5 prefix
    // cut inside the trailing decision digits, which is a structurally valid
    // shorter schedule (the shrinker relies on exactly that). x6 tokens put
    // the barrier-pin field after the digits, so no x6 prefix is a token.
    const std::size_t sched_start =
        (p.flags & Perturbation::kFlagSystematic) != 0 && p.coll_ext == 0
            ? tok.rfind('s') + 1
            : tok.size();
    for (std::size_t cut = 0; cut < tok.size(); cut += 1 + tok.size() / 23) {
      const std::string prefix = tok.substr(0, cut);
      const auto parsed = Perturbation::parse(prefix);
      if (cut >= sched_start) {
        ASSERT_TRUE(parsed.has_value()) << "prefix " << prefix;
        EXPECT_EQ(parsed->sched, p.sched.substr(0, cut - sched_start));
      } else {
        EXPECT_FALSE(parsed.has_value()) << "prefix " << prefix;
      }
    }
    // Suffix garbage must fail too.
    EXPECT_FALSE(Perturbation::parse(tok + "-ff").has_value());
    EXPECT_FALSE(Perturbation::parse(tok + "q").has_value());
  }
}

TEST(ExplorerBudget, TrioSeedBudgetIsExact) {
  // A channels==3 seed costs exactly three machine runs. The explorer used
  // to admit a seed whenever two runs fit, so a trio seed at the budget edge
  // overshot max_runs by one; admission now charges the true cost up front.
  Explorer::Options probe_opts;
  Explorer probe(probe_opts);
  std::uint64_t trio_seed = 0;
  for (std::uint64_t s = 1; s < 64; ++s) {
    if (probe.perturbation_for(s).channels == 3) {
      trio_seed = s;
      break;
    }
  }
  ASSERT_NE(trio_seed, 0u) << "no trio seed in the first 64";

  Explorer::Options opts;
  opts.base_seed = trio_seed;
  opts.seeds = 1;
  opts.max_runs = 2;  // can't afford the trio
  Explorer ex(opts);
  const Explorer::Report rep = ex.explore();
  EXPECT_EQ(rep.seeds_run, 0);
  EXPECT_EQ(rep.runs, 0);

  Explorer::Options opts3 = opts;
  opts3.max_runs = 3;  // exactly affordable
  Explorer ex3(opts3);
  const Explorer::Report rep3 = ex3.explore();
  EXPECT_EQ(rep3.seeds_run, 1);
  EXPECT_EQ(rep3.runs, 3);
}

TEST(ExplorerSystematic, ReplayTokensPassCheck) {
  // Pinned regression coverage for the sweep's hot spots: the RDMA
  // early-arrival wildcard re-match path (2 ranks, 6 messages of eager
  // pressure) and the eager->rendezvous demote path (payload above the 4096
  // eager limit), each replayed through Explorer::check as a real x5 vector.
  Explorer ex{Explorer::Options{}};

  Perturbation rdma;
  rdma.nodes = 2;
  rdma.msgs_per_rank = 6;
  rdma.flags = Perturbation::kFlagSystematic |
               (static_cast<std::uint32_t>(Backend::kRdma) << Perturbation::kBackendShift);
  rdma.sched = "1";  // diverge from the canonical schedule at the first point
  const auto rdma_tok = Perturbation::parse(rdma.token());
  ASSERT_TRUE(rdma_tok.has_value());
  EXPECT_EQ(ex.check(*rdma_tok), std::nullopt) << rdma.token();

  Perturbation demote;
  demote.nodes = 2;
  demote.msgs_per_rank = 1;
  demote.sys_msg_bytes = 8192;  // forces the rendezvous protocol
  demote.flags = Perturbation::kFlagSystematic |
                 (static_cast<std::uint32_t>(Backend::kLapiEnhanced)
                  << Perturbation::kBackendShift);
  demote.sched = "11";
  const auto demote_tok = Perturbation::parse(demote.token());
  ASSERT_TRUE(demote_tok.has_value());
  EXPECT_EQ(ex.check(*demote_tok), std::nullopt) << demote.token();

  // Each systematic check costs exactly one machine run.
  EXPECT_EQ(ex.runs(), 2);
}

TEST(ExplorerSystematic, ExplorerBudgetGatesSystematicRuns) {
  // explore_systematic draws from the same machine-run budget as the seeded
  // sweep; an exhausted budget yields an empty (incomplete) report rather
  // than unlimited enumeration.
  Explorer::Options opts;
  opts.max_runs = 10;
  Explorer ex(opts);
  SystematicOptions sopts;
  sopts.ranks = 3;  // needs ~1800 runs to complete
  const SystematicReport rep = ex.explore_systematic(sopts);
  EXPECT_FALSE(rep.complete);
  EXPECT_LE(rep.runs, 10);
  EXPECT_EQ(ex.runs(), rep.runs);

  // A second call with the budget spent runs nothing.
  Explorer::Options spent_opts;
  spent_opts.max_runs = 10;
  Explorer spent(spent_opts);
  SystematicOptions tiny;
  tiny.ranks = 2;
  (void)spent.explore_systematic(tiny);  // burns 10 runs (needs 39)
  const SystematicReport empty = spent.explore_systematic(tiny);
  EXPECT_EQ(empty.runs, 0);
  EXPECT_FALSE(empty.complete);
}

}  // namespace
}  // namespace sp::sim
