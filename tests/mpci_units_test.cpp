// Direct unit tests for MPCI support pieces: the envelope codec, the
// buffered-send pool allocator, and datatype reduction arithmetic.
#include <gtest/gtest.h>

#include <vector>

#include "mpci/bsend_pool.hpp"
#include "mpci/envelope.hpp"
#include "mpci/request.hpp"
#include "mpi/datatype.hpp"

namespace sp {
namespace {

TEST(Envelope, PackUnpackRoundTrip) {
  mpci::Envelope e;
  e.ctx = 7;
  e.src = 42;
  e.tag = -1234567;
  e.seq = 0xDEADBEEF;
  e.len = 1 << 30;
  e.sreq = 111;
  e.rreq = 222;
  e.cntr_slot = 1023;
  e.kind = static_cast<std::uint8_t>(mpci::EnvKind::kRtsData);
  e.flags = mpci::kFlagReady | mpci::kFlagNotifyDone;
  auto bytes = mpci::pack(e);
  ASSERT_EQ(bytes.size(), 32u);
  const mpci::Envelope d = mpci::unpack(bytes.data());
  EXPECT_EQ(d.ctx, e.ctx);
  EXPECT_EQ(d.src, e.src);
  EXPECT_EQ(d.tag, e.tag);
  EXPECT_EQ(d.seq, e.seq);
  EXPECT_EQ(d.len, e.len);
  EXPECT_EQ(d.sreq, e.sreq);
  EXPECT_EQ(d.rreq, e.rreq);
  EXPECT_EQ(d.cntr_slot, e.cntr_slot);
  EXPECT_EQ(d.kind, e.kind);
  EXPECT_EQ(d.flags, e.flags);
}

TEST(BsendPool, AllocatesAndReleases) {
  mpci::BsendPool pool;
  std::vector<std::byte> mem(1000);
  pool.attach(mem.data(), mem.size());
  EXPECT_TRUE(pool.attached());
  EXPECT_EQ(pool.capacity(), 1000u);

  std::byte* a = nullptr;
  std::byte* b = nullptr;
  const int s1 = pool.alloc(400, &a);
  const int s2 = pool.alloc(400, &b);
  ASSERT_GE(s1, 0);
  ASSERT_GE(s2, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_use(), 800u);

  std::byte* c = nullptr;
  EXPECT_EQ(pool.alloc(400, &c), -1) << "no space left";

  pool.release(s1);
  EXPECT_EQ(pool.in_use(), 400u);
  const int s3 = pool.alloc(300, &c);
  ASSERT_GE(s3, 0);
  EXPECT_EQ(c, mem.data()) << "first-fit must reuse the freed front gap";
  pool.release(s2);
  pool.release(s3);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.detach(), mem.data());
  EXPECT_FALSE(pool.attached());
}

TEST(BsendPool, FirstFitFillsGaps) {
  mpci::BsendPool pool;
  std::vector<std::byte> mem(100);
  pool.attach(mem.data(), mem.size());
  std::byte* p = nullptr;
  const int a = pool.alloc(30, &p);
  const int b = pool.alloc(30, &p);
  const int c = pool.alloc(30, &p);
  ASSERT_GE(c, 0);
  pool.release(b);  // gap [30,60)
  std::byte* q = nullptr;
  const int d = pool.alloc(25, &q);
  ASSERT_GE(d, 0);
  EXPECT_EQ(q, mem.data() + 30);
  // 5 bytes of the gap + 10 tail remain, split: a 12-byte alloc must fail
  // even though 15 total bytes are free (fragmentation is honest).
  EXPECT_EQ(pool.alloc(12, &q), -1);
  pool.release(a);
  pool.release(c);
  pool.release(d);
  EXPECT_TRUE(pool.empty());
}

TEST(BsendPool, UnattachedAllocFails) {
  mpci::BsendPool pool;
  std::byte* p = nullptr;
  EXPECT_EQ(pool.alloc(1, &p), -1);
}

TEST(ReduceApply, AllOpsAllTypes) {
  using mpi::Datatype;
  using mpi::Op;
  {
    std::int32_t in[3] = {5, -2, 7};
    std::int32_t io[3] = {1, 10, -7};
    mpi::reduce_apply(Op::kSum, Datatype::kInt, in, io, 3);
    EXPECT_EQ(io[0], 6);
    EXPECT_EQ(io[1], 8);
    EXPECT_EQ(io[2], 0);
  }
  {
    std::int64_t in[2] = {0xF0, 3};
    std::int64_t io[2] = {0x0F, 5};
    mpi::reduce_apply(Op::kBor, Datatype::kLong, in, io, 2);
    EXPECT_EQ(io[0], 0xFF);
    EXPECT_EQ(io[1], 7);
  }
  {
    double in[2] = {2.5, -1.0};
    double io[2] = {1.5, -3.0};
    mpi::reduce_apply(Op::kMax, Datatype::kDouble, in, io, 2);
    EXPECT_EQ(io[0], 2.5);
    EXPECT_EQ(io[1], -1.0);
    mpi::reduce_apply(Op::kMin, Datatype::kDouble, in, io, 2);
    EXPECT_EQ(io[0], 2.5);
    EXPECT_EQ(io[1], -1.0);
  }
  {
    float in[1] = {3.0f};
    float io[1] = {4.0f};
    mpi::reduce_apply(Op::kProd, Datatype::kFloat, in, io, 1);
    EXPECT_EQ(io[0], 12.0f);
  }
  {
    std::uint8_t in[2] = {1, 0};
    std::uint8_t io[2] = {1, 1};
    mpi::reduce_apply(Op::kLand, Datatype::kByte, in, io, 2);
    EXPECT_EQ(io[0], 1);
    EXPECT_EQ(io[1], 0);
    mpi::reduce_apply(Op::kLor, Datatype::kByte, in, io, 2);
    EXPECT_EQ(io[0], 1);
    EXPECT_EQ(io[1], 0);
  }
}

TEST(ReduceApply, BitwiseOnFloatThrows) {
  double in = 1.0, io = 2.0;
  EXPECT_THROW(mpi::reduce_apply(mpi::Op::kBor, mpi::Datatype::kDouble, &in, &io, 1),
               std::invalid_argument);
}

TEST(ProtocolFor, EdgeCases) {
  using mpci::Mode;
  using mpci::Protocol;
  EXPECT_EQ(mpci::protocol_for(Mode::kStandard, 0, 0), Protocol::kEager)
      << "zero-byte messages are always eager";
  EXPECT_EQ(mpci::protocol_for(Mode::kStandard, 1, 0), Protocol::kRendezvous)
      << "eager limit 0 forces rendezvous for any payload";
}

}  // namespace
}  // namespace sp
