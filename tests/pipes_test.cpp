// Unit tests for the Pipes reliable byte-stream layer: framing across packet
// boundaries, strict ordering over the multipath fabric, loss recovery,
// flow-control pacing and the first/last-16KiB copy rule's correctness.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "pipes/pipes.hpp"

namespace sp::pipes {
namespace {

using sim::MachineConfig;
using sim::NodeRuntime;
using sim::Simulator;

struct Rig {
  explicit Rig(MachineConfig c = {}, int nodes = 2) : cfg(c) {
    fabric = std::make_unique<net::SwitchFabric>(sim, cfg, nodes);
    for (int i = 0; i < nodes; ++i) {
      rts.push_back(std::make_unique<NodeRuntime>(sim, cfg, i));
      hals.push_back(std::make_unique<hal::Hal>(*rts.back(), *fabric));
      pipes.push_back(std::make_unique<Pipes>(*rts.back(), *hals.back()));
    }
  }
  MachineConfig cfg;
  Simulator sim;
  std::unique_ptr<net::SwitchFabric> fabric;
  std::vector<std::unique_ptr<NodeRuntime>> rts;
  std::vector<std::unique_ptr<hal::Hal>> hals;
  std::vector<std::unique_ptr<Pipes>> pipes;
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  return v;
}

TEST(Pipes, DeliversPrefixAndPayloadInOrder) {
  Rig rig;
  const auto prefix = pattern(32, 7);
  const auto body = pattern(100, 9);
  std::vector<std::byte> got;
  rig.pipes[1]->set_on_data([&](int src) {
    while (rig.pipes[1]->available(src) > 0) {
      std::byte b;
      rig.pipes[1]->consume(src, &b, 1);
      got.push_back(b);
    }
  });
  bool reusable = false;
  rig.sim.at(0, [&] {
    rig.pipes[0]->write(1, prefix, body.data(), body.size(), [&] { reusable = true; });
  });
  rig.sim.run();
  EXPECT_TRUE(reusable);
  ASSERT_EQ(got.size(), prefix.size() + body.size());
  EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), got.begin()));
  EXPECT_TRUE(std::equal(body.begin(), body.end(), got.begin() + 32));
}

TEST(Pipes, LargeTransferSpansManyPackets) {
  Rig rig;
  const std::size_t n = 200 * 1024;  // >> MTU, > 2x the 16 KiB copy span
  const auto body = pattern(n, 3);
  std::vector<std::byte> got;
  got.reserve(n);
  rig.pipes[1]->set_on_data([&](int src) {
    const std::size_t avail = rig.pipes[1]->available(src);
    const std::size_t old = got.size();
    got.resize(old + avail);
    rig.pipes[1]->consume(src, got.data() + old, avail);
  });
  bool reusable = false;
  rig.sim.at(0, [&] {
    rig.pipes[0]->write(1, {}, body.data(), body.size(), [&] { reusable = true; });
  });
  rig.sim.run();
  EXPECT_TRUE(reusable);
  EXPECT_EQ(got, body) << "byte stream must arrive intact and in order";
  EXPECT_GE(rig.pipes[0]->packets_sent(), static_cast<std::int64_t>(n / rig.cfg.packet_mtu));
}

TEST(Pipes, MiddleOfLargeMessagesIsSentDirectFromUserBuffer) {
  // on_reusable for a message larger than twice the copy span fires only
  // once the borrowed middle has been staged — i.e. NOT at write() time when
  // the middle exceeds what the transport window admits immediately.
  Rig rig;
  const std::size_t n = 8 * rig.cfg.pipe_copy_span_bytes;
  const auto body = pattern(n, 5);
  rig.pipes[1]->set_on_data([&](int src) {
    std::vector<std::byte> sink(rig.pipes[1]->available(src));
    rig.pipes[1]->consume(src, sink.data(), sink.size());
  });
  // `reusable` must outlive the at() event: on_reusable fires much later,
  // once acks admit the borrowed middle into the window.
  bool reusable = false;
  bool reusable_at_write = true;
  rig.sim.at(0, [&] {
    rig.pipes[0]->write(1, {}, body.data(), body.size(), [&reusable] { reusable = true; });
    reusable_at_write = reusable;
  });
  rig.sim.run();
  EXPECT_FALSE(reusable_at_write);
}

TEST(Pipes, SmallMessageReusableImmediately) {
  Rig rig;
  const auto body = pattern(1024, 5);
  rig.pipes[1]->set_on_data([&](int src) {
    std::vector<std::byte> sink(rig.pipes[1]->available(src));
    rig.pipes[1]->consume(src, sink.data(), sink.size());
  });
  bool reusable_at_write = false;
  rig.sim.at(0, [&] {
    bool reusable = false;
    rig.pipes[0]->write(1, {}, body.data(), body.size(), [&reusable] { reusable = true; });
    reusable_at_write = reusable;
  });
  rig.sim.run();
  EXPECT_TRUE(reusable_at_write) << "fully pipe-buffered message: reusable at write()";
}

TEST(Pipes, ManyMessagesKeepFraming) {
  Rig rig;
  // Stream of variable-size messages; parse [4-byte length][payload] frames.
  std::vector<std::size_t> sizes{1, 3, 1000, 1024, 1500, 17, 4096, 2, 64000};
  std::vector<std::vector<std::byte>> received;
  std::vector<std::byte> acc;
  rig.pipes[1]->set_on_data([&](int src) {
    const std::size_t old = acc.size();
    acc.resize(old + rig.pipes[1]->available(src));
    rig.pipes[1]->consume(src, acc.data() + old, acc.size() - old);
    for (;;) {
      if (acc.size() < 4) break;
      std::uint32_t len;
      std::memcpy(&len, acc.data(), 4);
      if (acc.size() < 4 + len) break;
      received.emplace_back(acc.begin() + 4, acc.begin() + 4 + len);
      acc.erase(acc.begin(), acc.begin() + 4 + len);
    }
  });
  std::vector<std::vector<std::byte>> bodies;
  for (std::size_t i = 0; i < sizes.size(); ++i) bodies.push_back(pattern(sizes[i], unsigned(i)));
  rig.sim.at(0, [&] {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::byte> prefix(4);
      const auto len = static_cast<std::uint32_t>(sizes[i]);
      std::memcpy(prefix.data(), &len, 4);
      rig.pipes[0]->write(1, std::move(prefix), bodies[i].data(), bodies[i].size(), nullptr);
    }
  });
  rig.sim.run();
  ASSERT_EQ(received.size(), sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(received[i], bodies[i]) << "message " << i;
  }
}

TEST(Pipes, RecoversFromPacketLoss) {
  MachineConfig cfg;
  cfg.packet_drop_rate = 0.10;
  cfg.retransmit_timeout_ns = 300'000;
  Rig rig(cfg);
  const std::size_t n = 64 * 1024;
  const auto body = pattern(n, 11);
  std::vector<std::byte> got;
  rig.pipes[1]->set_on_data([&](int src) {
    const std::size_t old = got.size();
    got.resize(old + rig.pipes[1]->available(src));
    rig.pipes[1]->consume(src, got.data() + old, got.size() - old);
  });
  rig.sim.at(0, [&] { rig.pipes[0]->write(1, {}, body.data(), body.size(), nullptr); });
  rig.sim.run();
  EXPECT_EQ(got, body) << "stream must survive 10% packet loss";
  EXPECT_GT(rig.pipes[0]->retransmits(), 0);
}

TEST(Pipes, OrderingHoldsUnderRouteSkew) {
  MachineConfig cfg;
  cfg.route_skew_ns = 300'000;  // strongly out-of-order fabric
  Rig rig(cfg);
  const std::size_t n = 32 * 1024;
  const auto body = pattern(n, 13);
  std::vector<std::byte> got;
  rig.pipes[1]->set_on_data([&](int src) {
    const std::size_t old = got.size();
    got.resize(old + rig.pipes[1]->available(src));
    rig.pipes[1]->consume(src, got.data() + old, got.size() - old);
  });
  rig.sim.at(0, [&] { rig.pipes[0]->write(1, {}, body.data(), body.size(), nullptr); });
  rig.sim.run();
  EXPECT_EQ(got, body) << "the pipe must reorder multipath packets";
}

TEST(Pipes, BidirectionalStreamsDoNotInterfere) {
  Rig rig;
  const auto a = pattern(10'000, 21);
  const auto b = pattern(14'000, 22);
  std::vector<std::byte> got0, got1;
  rig.pipes[0]->set_on_data([&](int src) {
    const std::size_t old = got0.size();
    got0.resize(old + rig.pipes[0]->available(src));
    rig.pipes[0]->consume(src, got0.data() + old, got0.size() - old);
  });
  rig.pipes[1]->set_on_data([&](int src) {
    const std::size_t old = got1.size();
    got1.resize(old + rig.pipes[1]->available(src));
    rig.pipes[1]->consume(src, got1.data() + old, got1.size() - old);
  });
  rig.sim.at(0, [&] {
    rig.pipes[0]->write(1, {}, a.data(), a.size(), nullptr);
    rig.pipes[1]->write(0, {}, b.data(), b.size(), nullptr);
  });
  rig.sim.run();
  EXPECT_EQ(got1, a);
  EXPECT_EQ(got0, b);
}

TEST(Pipes, ThreeWayFanInStaysPerSourceOrdered) {
  Rig rig(MachineConfig{}, 4);
  std::vector<std::vector<std::byte>> got(4);
  rig.pipes[3]->set_on_data([&](int src) {
    auto& g = got[static_cast<std::size_t>(src)];
    const std::size_t old = g.size();
    g.resize(old + rig.pipes[3]->available(src));
    rig.pipes[3]->consume(src, g.data() + old, g.size() - old);
  });
  std::vector<std::vector<std::byte>> bodies;
  for (unsigned s = 0; s < 3; ++s) bodies.push_back(pattern(20'000, s + 40));
  rig.sim.at(0, [&] {
    for (int s = 0; s < 3; ++s) {
      rig.pipes[static_cast<std::size_t>(s)]->write(3, {}, bodies[static_cast<std::size_t>(s)].data(),
                                                    bodies[static_cast<std::size_t>(s)].size(), nullptr);
    }
  });
  rig.sim.run();
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(got[s], bodies[s]) << "source " << s;
}

}  // namespace
}  // namespace sp::pipes
