// Trace record/replay determinism tests (DESIGN.md §17).
//
// A recorded op trace replays against any channel/config with a byte-exact
// delivered-payload digest; these tests lock down the digest invariance, the
// top-level-only recording rule, and the strict parser's rejection of
// truncated or corrupted trace files.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "mpi/optrace.hpp"
#include "nas/kernels.hpp"

namespace sp::mpi {
namespace {

void gnarly_workload(Mpi& mpi) {
  auto& w = mpi.world();
  const int n = w.size();
  const int me = w.rank();
  std::vector<std::int64_t> pay(24, me + 1);
  std::vector<std::int64_t> in(24, 0);
  Request r = mpi.irecv(in.data(), in.size(), Datatype::kLong, kAnySource, kAnyTag, w);
  mpi.send(pay.data(), pay.size(), Datatype::kLong, (me + 1) % n, 7, w);
  mpi.wait(r);
  mpi.compute(2'000 * (me + 1));
  Comm dup = mpi.dup(w);
  std::vector<std::int64_t> sum(24, 0);
  mpi.allreduce(pay.data(), sum.data(), pay.size(), Datatype::kLong, Op::kSum, dup);
  Comm half = mpi.split(w, me % 2, me);
  mpi.bcast(sum.data(), sum.size(), Datatype::kLong, 0, half);
  mpi.sendrecv(sum.data(), 6, (me + 1) % n, 9, in.data(), 6, (me - 1 + n) % n, 9,
               Datatype::kLong, w);
  mpi.barrier(w);
}

optrace::Trace record_gnarly() {
  sim::MachineConfig cfg = sim::MachineConfig::tbmx_332();
  Machine m(cfg, 4, Backend::kLapiEnhanced);
  optrace::Recorder rec(4);
  optrace::attach(m, &rec);
  m.run(gnarly_workload);
  return rec.take("gnarly", 1);
}

TEST(Replay, SaveLoadRoundtrip) {
  const optrace::Trace t = record_gnarly();
  ASSERT_EQ(t.ranks, 4);
  std::ostringstream os;
  optrace::save_text(t, os);
  std::istringstream is(os.str());
  optrace::Trace back;
  std::string err;
  ASSERT_TRUE(optrace::load_text(is, &back, &err)) << err;
  EXPECT_EQ(back.ranks, t.ranks);
  EXPECT_EQ(back.workload, "gnarly");
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(back.per_rank[r].size(), t.per_rank[r].size()) << "rank " << r;
    for (std::size_t i = 0; i < t.per_rank[r].size(); ++i) {
      EXPECT_EQ(back.per_rank[r][i].kind, t.per_rank[r][i].kind);
      EXPECT_EQ(back.per_rank[r][i].peer, t.per_rank[r][i].peer);
      EXPECT_EQ(back.per_rank[r][i].count, t.per_rank[r][i].count);
      EXPECT_EQ(back.per_rank[r][i].msrc, t.per_rank[r][i].msrc);
    }
  }
}

TEST(Replay, DigestInvariantAcrossChannels) {
  const optrace::Trace t = record_gnarly();
  const sim::MachineConfig cfg = sim::MachineConfig::tbmx_332();
  const auto native = optrace::replay(t, cfg, Backend::kNativePipes);
  const auto enhanced = optrace::replay(t, cfg, Backend::kLapiEnhanced);
  const auto rdma = optrace::replay(t, cfg, Backend::kRdma);
  ASSERT_TRUE(native.ok) << native.error;
  ASSERT_TRUE(enhanced.ok) << enhanced.error;
  ASSERT_TRUE(rdma.ok) << rdma.error;
  EXPECT_NE(native.digest, 0u);
  EXPECT_EQ(native.digest, enhanced.digest);
  EXPECT_EQ(native.digest, rdma.digest);
  EXPECT_GT(native.elapsed, 0);
  EXPECT_GT(native.sim_events, 0u);
}

TEST(Replay, DigestInvariantUnderWhatIfConfigs) {
  const optrace::Trace t = record_gnarly();
  const sim::MachineConfig base = sim::MachineConfig::tbmx_332();
  const std::uint64_t golden = optrace::replay(t, base, Backend::kLapiEnhanced).digest;

  sim::MachineConfig tiny_eager = base;
  tiny_eager.eager_limit = 64;  // force rendezvous everywhere
  const auto r1 = optrace::replay(t, tiny_eager, Backend::kLapiEnhanced);
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_EQ(r1.digest, golden);

  sim::MachineConfig lossy = base;
  lossy.packet_drop_rate = 0.02;
  lossy.retransmit_timeout_ns = 400'000;
  lossy.fabric_seed = 99;
  const auto r2 = optrace::replay(t, lossy, Backend::kLapiEnhanced);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.digest, golden);

  // A lossy fabric costs simulated time; the digest must not notice.
  EXPECT_GE(r2.elapsed, r1.elapsed == 0 ? 0 : 1);
}

TEST(Replay, NasKernelTraceReplays) {
  sim::MachineConfig cfg = sim::MachineConfig::tbmx_332();
  Machine m(cfg, 4, Backend::kLapiEnhanced);
  optrace::Recorder rec(4);
  optrace::attach(m, &rec);
  m.run([](Mpi& mpi) {
    const auto r = nas::run_is(mpi, 1);
    ASSERT_TRUE(r.verified);
  });
  const optrace::Trace t = rec.take("is", 1);
  const auto a = optrace::replay(t, cfg, Backend::kNativePipes);
  const auto b = optrace::replay(t, cfg, Backend::kRdma);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Replay, CollectivesRecordOnlyTopLevelOps) {
  sim::MachineConfig cfg = sim::MachineConfig::tbmx_332();
  Machine m(cfg, 4, Backend::kLapiEnhanced);
  optrace::Recorder rec(4);
  optrace::attach(m, &rec);
  m.run([](Mpi& mpi) {
    auto& w = mpi.world();
    std::int64_t x = w.rank(), y = 0;
    mpi.allreduce(&x, &y, 1, Datatype::kLong, Op::kSum, w);
    mpi.barrier(w);
  });
  const optrace::Trace t = rec.take("coll", 0);
  for (int r = 0; r < 4; ++r) {
    // The collective's internal p2p traffic must be depth-suppressed: each
    // rank's stream is exactly [allreduce, barrier].
    ASSERT_EQ(t.per_rank[r].size(), 2u) << "rank " << r;
    EXPECT_EQ(t.per_rank[r][0].kind, optrace::OpKind::kAllreduce);
    EXPECT_EQ(t.per_rank[r][1].kind, optrace::OpKind::kBarrier);
  }
}

TEST(Replay, WildcardReceivesRecordConcreteMatch) {
  const optrace::Trace t = record_gnarly();
  bool saw_irecv = false;
  for (const auto& ops : t.per_rank) {
    for (const auto& op : ops) {
      if (op.kind == optrace::OpKind::kIrecv) {
        saw_irecv = true;
        EXPECT_GE(op.msrc, 0);  // back-filled at completion
        EXPECT_GE(op.mtag, 0);
        EXPECT_GT(op.aux, 0);
      }
    }
  }
  EXPECT_TRUE(saw_irecv);
}

TEST(Replay, TruncatedTracesAreRejected) {
  const optrace::Trace t = record_gnarly();
  std::ostringstream os;
  optrace::save_text(t, os);
  const std::string full = os.str();
  ASSERT_GT(full.size(), 200u);
  int rejected = 0, total = 0;
  for (std::size_t cut = 0; cut + 1 < full.size(); cut += 97) {
    std::istringstream is(full.substr(0, cut));
    optrace::Trace out;
    std::string err;
    ++total;
    if (!optrace::load_text(is, &out, &err)) ++rejected;
  }
  EXPECT_EQ(rejected, total);  // every strict prefix must fail to parse
}

TEST(Replay, CorruptedTracesAreRejected) {
  const optrace::Trace t = record_gnarly();
  std::ostringstream os;
  optrace::save_text(t, os);
  const std::string full = os.str();
  optrace::Trace out;
  std::string err;

  std::istringstream bad_magic("sptracX 1\n" + full.substr(full.find('\n') + 1));
  EXPECT_FALSE(optrace::load_text(bad_magic, &out, &err));

  std::istringstream bad_version("sptrace 999\n" + full.substr(full.find('\n') + 1));
  EXPECT_FALSE(optrace::load_text(bad_version, &out, &err));

  std::string trailing = full + "junk after end\n";
  std::istringstream with_trailing(trailing);
  EXPECT_FALSE(optrace::load_text(with_trailing, &out, &err));

  // Blow up one op kind far out of range.
  std::string bad_kind = full;
  const auto pos = bad_kind.find("\nop ");
  ASSERT_NE(pos, std::string::npos);
  bad_kind.replace(pos, 4, "\nop 250 ");
  std::istringstream with_bad_kind(bad_kind);
  EXPECT_FALSE(optrace::load_text(with_bad_kind, &out, &err));
}

TEST(Replay, ValidateRejectsBadPrograms) {
  optrace::Trace t;
  t.ranks = 2;
  t.per_rank.resize(2);
  std::string err;

  // A wait whose target points forward.
  optrace::Op w;
  w.kind = optrace::OpKind::kWait;
  w.target = 5;
  t.per_rank[0] = {w};
  EXPECT_FALSE(optrace::validate(t, &err));

  // A wait on a blocking op.
  optrace::Op s;
  s.kind = optrace::OpKind::kSend;
  s.peer = 1;
  s.count = 1;
  w.target = 0;
  t.per_rank[0] = {s, w};
  EXPECT_FALSE(optrace::validate(t, &err));

  // A comm index the rank never created.
  optrace::Op b;
  b.kind = optrace::OpKind::kBarrier;
  b.comm = 3;
  t.per_rank[0] = {b};
  EXPECT_FALSE(optrace::validate(t, &err));
}

TEST(Replay, ReplayRejectsInvalidTraceGracefully) {
  optrace::Trace t;
  t.ranks = 2;
  t.per_rank.resize(2);
  optrace::Op w;
  w.kind = optrace::OpKind::kWait;
  w.target = 9;
  t.per_rank[1] = {w};
  const auto r = optrace::replay(t, sim::MachineConfig::tbmx_332(), Backend::kLapiEnhanced);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

}  // namespace
}  // namespace sp::mpi
