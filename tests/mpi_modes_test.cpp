// MPI communication-mode semantics across all four backends:
// Table 2 (mode -> internal protocol), blocking/nonblocking behaviour of the
// standard, synchronous, buffered and ready modes, buffer attach/detach and
// the ready-mode fatal error.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using mpci::Mode;
using mpci::Protocol;
using mpci::protocol_for;
using sim::MachineConfig;

// --- Table 2: translation of MPI communication modes to internal protocols --
TEST(Table2, StandardUsesEagerUpToTheLimit) {
  EXPECT_EQ(protocol_for(Mode::kStandard, 0, 4096), Protocol::kEager);
  EXPECT_EQ(protocol_for(Mode::kStandard, 4096, 4096), Protocol::kEager);
  EXPECT_EQ(protocol_for(Mode::kStandard, 4097, 4096), Protocol::kRendezvous);
}

TEST(Table2, ReadyIsAlwaysEager) {
  EXPECT_EQ(protocol_for(Mode::kReady, 1, 4096), Protocol::kEager);
  EXPECT_EQ(protocol_for(Mode::kReady, 1 << 20, 4096), Protocol::kEager);
}

TEST(Table2, SynchronousIsAlwaysRendezvous) {
  EXPECT_EQ(protocol_for(Mode::kSync, 1, 4096), Protocol::kRendezvous);
  EXPECT_EQ(protocol_for(Mode::kSync, 1 << 20, 4096), Protocol::kRendezvous);
}

TEST(Table2, BufferedFollowsTheEagerLimit) {
  EXPECT_EQ(protocol_for(Mode::kBuffered, 128, 4096), Protocol::kEager);
  EXPECT_EQ(protocol_for(Mode::kBuffered, 1 << 20, 4096), Protocol::kRendezvous);
}

// --- behavioural tests over every backend -----------------------------------
class ModesAllBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ModesAllBackends, SsendCompletesOnlyAfterReceiverPosts) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  constexpr sim::TimeNs kDelay = 5 * sim::kMs;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    int v = 7;
    if (w.rank() == 0) {
      mpi.ssend(&v, 1, Datatype::kInt, 1, 0, w);
      // The receive is posted only after kDelay; a synchronous send cannot
      // have returned before the rendezvous happened.
      EXPECT_GE(mpi.wtime() * 1e9, static_cast<double>(kDelay));
    } else {
      mpi.compute(kDelay);
      int got = 0;
      mpi.recv(&got, 1, Datatype::kInt, 0, 0, w);
      EXPECT_EQ(got, 7);
    }
  });
}

TEST_P(ModesAllBackends, StandardEagerReturnsBeforeReceiverPosts) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  constexpr sim::TimeNs kDelay = 5 * sim::kMs;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    int v = 7;
    if (w.rank() == 0) {
      mpi.send(&v, 1, Datatype::kInt, 1, 0, w);
      EXPECT_LT(mpi.wtime() * 1e9, static_cast<double>(kDelay))
          << "small standard send must not rendezvous";
    } else {
      mpi.compute(kDelay);
      int got = 0;
      mpi.recv(&got, 1, Datatype::kInt, 0, 0, w);
      EXPECT_EQ(got, 7);
    }
  });
}

TEST_P(ModesAllBackends, LargeStandardSendRendezvouses) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<int> v(8192, 3);  // 32 KiB > eager limit
    if (w.rank() == 0) {
      mpi.send(v.data(), v.size(), Datatype::kInt, 1, 0, w);
    } else {
      mpi.compute(2 * sim::kMs);
      mpi.recv(v.data(), v.size(), Datatype::kInt, 0, 0, w);
      for (int x : v) ASSERT_EQ(x, 3);
    }
  });
  EXPECT_GE(m.channel(0).rendezvous_sends(), 1);
}

TEST_P(ModesAllBackends, RsendSucceedsWhenReceivePosted) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    int v = 11;
    if (w.rank() == 0) {
      mpi.compute(2 * sim::kMs);  // give the receiver time to post
      mpi.rsend(&v, 1, Datatype::kInt, 1, 0, w);
    } else {
      Request r = mpi.irecv(&v, 1, Datatype::kInt, 0, 0, w);
      mpi.wait(r);
      EXPECT_EQ(v, 11);
    }
  });
}

TEST_P(ModesAllBackends, RsendWithoutPostedReceiveIsFatal) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  EXPECT_THROW(m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    int v = 11;
    if (w.rank() == 0) {
      mpi.rsend(&v, 1, Datatype::kInt, 1, 0, w);
    } else {
      mpi.compute(5 * sim::kMs);  // receive posted far too late
      mpi.recv(&v, 1, Datatype::kInt, 0, 0, w);
    }
  }),
               mpci::FatalMpiError);
}

TEST_P(ModesAllBackends, BsendReturnsImmediatelyAndDetachDrains) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      std::vector<char> pool(1 << 16);
      mpi.buffer_attach(pool.data(), pool.size());
      int v = 5;
      const double t0 = mpi.wtime();
      for (int i = 0; i < 4; ++i) {
        mpi.bsend(&v, 1, Datatype::kInt, 1, i, w);
        v = -1;  // buffer reusable the moment bsend returns
        v = 5;
      }
      EXPECT_LT((mpi.wtime() - t0) * 1e9, 2e6) << "bsend must not block on the receiver";
      void* back = mpi.buffer_detach();  // waits for all four to drain
      EXPECT_EQ(back, pool.data());
      EXPECT_TRUE(mpi.channel().bsend_pool().empty());
    } else {
      mpi.compute(3 * sim::kMs);
      for (int i = 0; i < 4; ++i) {
        int got = 0;
        mpi.recv(&got, 1, Datatype::kInt, 0, i, w);
        EXPECT_EQ(got, 5);
      }
    }
  });
}

TEST_P(ModesAllBackends, BsendOverflowIsAnError) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  EXPECT_THROW(m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      std::vector<char> pool(256);
      mpi.buffer_attach(pool.data(), pool.size());
      std::vector<char> big(10'000, 'x');
      mpi.bsend(big.data(), big.size(), Datatype::kByte, 1, 0, w);
    } else {
      char sink[10'000];
      mpi.recv(sink, sizeof sink, Datatype::kByte, 0, 0, w);
    }
  }),
               mpci::FatalMpiError);
}

TEST_P(ModesAllBackends, IbsendLargeGoesThroughRendezvousFromTheAttachBuffer) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      std::vector<char> pool(1 << 17);
      mpi.buffer_attach(pool.data(), pool.size());
      std::vector<int> data(8192);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i);
      Request r = mpi.ibsend(data.data(), data.size(), Datatype::kInt, 1, 0, w);
      // Clobber the user buffer immediately: the pool copy must be what ships.
      std::fill(data.begin(), data.end(), -1);
      mpi.wait(r);
      mpi.buffer_detach();
    } else {
      mpi.compute(2 * sim::kMs);
      std::vector<int> got(8192, 0);
      mpi.recv(got.data(), got.size(), Datatype::kInt, 0, 0, w);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], static_cast<int>(i)) << "index " << i;
      }
    }
  });
}

TEST_P(ModesAllBackends, IsendTestEventuallyCompletes) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<int> v(64, 9);
    if (w.rank() == 0) {
      Request r = mpi.isend(v.data(), v.size(), Datatype::kInt, 1, 0, w);
      int spins = 0;
      while (!mpi.test(r)) {
        mpi.compute(10 * sim::kUs);
        ++spins;
        ASSERT_LT(spins, 100'000);
      }
    } else {
      std::vector<int> got(64, 0);
      mpi.recv(got.data(), got.size(), Datatype::kInt, 0, 0, w);
      EXPECT_EQ(got, std::vector<int>(64, 9));
    }
  });
}

TEST_P(ModesAllBackends, TruncatedReceiveKeepsPrefixAndFlags) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      std::vector<int> v(100);
      for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
      mpi.send(v.data(), v.size(), Datatype::kInt, 1, 0, w);
    } else {
      std::vector<int> got(10, -1);
      Status st;
      mpi.recv(got.data(), got.size(), Datatype::kInt, 0, 0, w, &st);
      EXPECT_EQ(st.len, 40u);  // truncated to capacity
      for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ModesAllBackends,
                         ::testing::Values(Backend::kNativePipes, Backend::kLapiBase,
                                           Backend::kLapiCounters, Backend::kLapiEnhanced),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return std::string(backend_name(info.param)) == "Native MPI (Pipes)"
                                      ? "NativePipes"
                                  : info.param == Backend::kLapiBase     ? "LapiBase"
                                  : info.param == Backend::kLapiCounters ? "LapiCounters"
                                                                         : "LapiEnhanced";
                         });

}  // namespace
}  // namespace sp::mpi
