// Stress and corner-condition tests: transport window stalls under a tiny
// pipe buffer, counter-ring wraparound in the Counters variant, combined
// loss + interrupt operation, zero-byte messages and many-node fan-in.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

TEST(Stress, TinyPipeBufferStillDeliversEverything) {
  MachineConfig cfg;
  cfg.pipe_buffer_bytes = 4096;     // severe flow-control pressure
  cfg.sliding_window_packets = 4;   // and a tiny packet window
  Machine m(cfg, 2, Backend::kNativePipes);
  constexpr std::size_t kLen = 100 * 1024;
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::uint8_t> buf(kLen);
    if (w.rank() == 0) {
      for (std::size_t i = 0; i < kLen; ++i) buf[i] = static_cast<std::uint8_t>(i * 13);
      mpi.send(buf.data(), kLen, Datatype::kByte, 1, 0, w);
    } else {
      mpi.recv(buf.data(), kLen, Datatype::kByte, 0, 0, w);
      for (std::size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 13));
      }
    }
  });
}

TEST(Stress, TinyLapiWindowStillDeliversEverything) {
  MachineConfig cfg;
  cfg.sliding_window_packets = 2;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  constexpr std::size_t kLen = 64 * 1024;
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::uint8_t> buf(kLen);
    if (w.rank() == 0) {
      for (std::size_t i = 0; i < kLen; ++i) buf[i] = static_cast<std::uint8_t>(i * 29 + 1);
      mpi.send(buf.data(), kLen, Datatype::kByte, 1, 0, w);
    } else {
      mpi.recv(buf.data(), kLen, Datatype::kByte, 0, 0, w);
      for (std::size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 29 + 1));
      }
    }
  });
}

TEST(Stress, CounterRingWrapsAround) {
  // More eager messages per pair than ring slots: slots are reused; the
  // FIFO transport makes reuse safe (window << ring size).
  MachineConfig cfg;
  cfg.counter_ring_slots = 16;  // force many wraparounds
  Machine m(cfg, 2, Backend::kLapiCounters);
  constexpr int kMsgs = 200;
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    if (w.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        mpi.send(&i, 1, Datatype::kInt, 1, 0, w);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int v = -1;
        mpi.recv(&v, 1, Datatype::kInt, 0, 0, w);
        ASSERT_EQ(v, i);
      }
    }
  });
}

TEST(Stress, LossPlusInterruptMode) {
  MachineConfig cfg;
  cfg.packet_drop_rate = 0.04;
  cfg.retransmit_timeout_ns = 300'000;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced}) {
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      mpi.set_interrupt_mode(true);
      std::vector<int> v(2048);
      if (w.rank() == 0) {
        std::iota(v.begin(), v.end(), 0);
        mpi.send(v.data(), v.size(), Datatype::kInt, 1, 0, w);
        mpi.recv(v.data(), v.size(), Datatype::kInt, 1, 1, w);
        for (int i = 0; i < 2048; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i + 1);
      } else {
        mpi.recv(v.data(), v.size(), Datatype::kInt, 0, 0, w);
        for (auto& x : v) x += 1;
        mpi.send(v.data(), v.size(), Datatype::kInt, 0, 1, w);
      }
    });
  }
}

TEST(Stress, ZeroByteMessagesCarrySemantics) {
  for (Backend b : {Backend::kNativePipes, Backend::kLapiBase, Backend::kLapiCounters,
                    Backend::kLapiEnhanced}) {
    MachineConfig cfg;
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      if (w.rank() == 0) {
        for (int i = 0; i < 10; ++i) {
          mpi.send(nullptr, 0, Datatype::kByte, 1, i, w);
        }
        mpi.ssend(nullptr, 0, Datatype::kByte, 1, 99, w);
      } else {
        for (int i = 0; i < 10; ++i) {
          Status st;
          mpi.recv(nullptr, 0, Datatype::kByte, 0, i, w, &st);
          EXPECT_EQ(st.tag, i);
          EXPECT_EQ(st.len, 0u);
        }
        mpi.recv(nullptr, 0, Datatype::kByte, 0, 99, w);
      }
    });
  }
}

TEST(Stress, SixteenToOneFanIn) {
  MachineConfig cfg;
  Machine m(cfg, 16, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    constexpr int kPer = 8;
    if (w.rank() == 0) {
      long sum = 0;
      for (int i = 0; i < 15 * kPer; ++i) {
        long v = 0;
        mpi.recv(&v, 1, Datatype::kLong, kAnySource, 0, w);
        sum += v;
      }
      long expect = 0;
      for (int r = 1; r < 16; ++r) {
        for (int k = 0; k < kPer; ++k) expect += r * 100 + k;
      }
      EXPECT_EQ(sum, expect);
    } else {
      for (int k = 0; k < kPer; ++k) {
        long v = w.rank() * 100 + k;
        mpi.send(&v, 1, Datatype::kLong, 0, 0, w);
      }
    }
  });
}

TEST(Stress, BigMachineBigCollective) {
  MachineConfig cfg;
  Machine m(cfg, 32, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<long> v(64, w.rank());
    std::vector<long> out(64, 0);
    mpi.allreduce(v.data(), out.data(), 64, Datatype::kLong, Op::kSum, w);
    for (long x : out) EXPECT_EQ(x, 32 * 31 / 2);
    mpi.barrier(w);
  });
}

TEST(Stress, ManySmallMachinesNoCrosstalk) {
  // Machines are fully independent; constructing and running dozens back to
  // back must never interfere (no global state).
  for (int i = 0; i < 20; ++i) {
    MachineConfig cfg;
    cfg.fabric_seed = static_cast<std::uint64_t>(i);
    Machine m(cfg, 3, static_cast<Backend>(i % 4));
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      long mine = w.rank() + i, sum = 0;
      mpi.allreduce(&mine, &sum, 1, Datatype::kLong, Op::kSum, w);
      EXPECT_EQ(sum, 3 + 3 * i);
    });
  }
}

}  // namespace
}  // namespace sp::mpi
