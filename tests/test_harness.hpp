// Shared test fixtures (deduplicated from the individual suites).
//
// Everything here was copy-pasted across two or more of determinism_test,
// telemetry_test, fault_injection_test and the mpi_*_test files before being
// hoisted: the FNV-1a trace digest, the lossy-fabric config builder, the
// bounded-recovery assertion, the Fig. 11 ping-pong workload, and the
// two-node LinkRig that unit-tests ReliableLink through real wire traffic.
// Keep additions header-only (inline) — every test target includes this.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "lapi/reliable_link.hpp"
#include "lapi/wire.hpp"
#include "mpi/machine.hpp"

namespace sp::test {

/// FNV-1a over the full legacy-trace timeline (time, node, category, detail).
/// The golden determinism digests are computed with exactly this fold.
inline std::uint64_t trace_digest(const sim::Trace& trace) {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& e : trace.events()) {
    mix(&e.t, sizeof(e.t));
    mix(&e.node, sizeof(e.node));
    mix(e.category, std::char_traits<char>::length(e.category));
    mix(e.detail.data(), e.detail.size());
  }
  return h;
}

/// SP_FAULT_SOAK=1 (the `ctest -L soak` variant / CI nightly) scales the
/// lossy workloads up; the default keeps the tier-1 suite fast.
inline bool soak_mode() {
  static const bool on = std::getenv("SP_FAULT_SOAK") != nullptr;
  return on;
}

/// A lossy-but-survivable fabric: random drops plus burst loss, duplicate
/// deliveries and delivery jitter, with a tightened retransmit timeout so
/// recovery doesn't dominate simulated (or host) time.
inline sim::MachineConfig lossy_config(double drop) {
  sim::MachineConfig cfg;
  cfg.packet_drop_rate = drop;
  cfg.packet_dup_rate = 0.01;
  cfg.packet_jitter_ns = 2'000;
  cfg.burst_drop_len = 2;
  cfg.retransmit_timeout_ns = 400'000;
  return cfg;
}

/// Retransmits are go-back-N: one timeout resends at most a window's worth of
/// packets, and duplicated deliveries can trigger spurious-looking (but
/// correct) re-acks, so bound the total against the injected faults rather
/// than expecting a 1:1 ratio.
inline void expect_bounded_recovery(const mpi::Machine& m) {
  const auto s = m.stats();
  const std::int64_t injected = s.fabric_dropped + s.fabric_duplicated;
  const std::int64_t retx = s.lapi_retransmits + s.pipes_retransmits + s.rdma_retransmits;
  EXPECT_LE(retx, (injected + 1) * 64) << "retransmit storm: " << retx << " resends for "
                                       << injected << " injected faults";
}

/// Fig. 11 ping-pong body: `iters` bounces of a `bytes`-sized buffer between
/// ranks 0 and 1. Run it inside Machine::run on a two-rank machine.
inline void pingpong_workload(mpi::Mpi& mpi, int iters, std::size_t bytes) {
  auto& w = mpi.world();
  std::vector<std::byte> buf(bytes);
  for (int i = 0; i < iters; ++i) {
    if (w.rank() == 0) {
      mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, 1, 0, w);
      mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, 1, 0, w);
    } else {
      mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, 0, 0, w);
      mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, 0, 0, w);
    }
  }
}

/// Build a two-rank machine, run the ping-pong to completion and hand the
/// machine back for stats / trace / telemetry inspection.
inline std::unique_ptr<mpi::Machine> run_pingpong(const sim::MachineConfig& cfg,
                                                  mpi::Backend backend, int iters,
                                                  std::size_t bytes) {
  auto m = std::make_unique<mpi::Machine>(cfg, 2, backend);
  m->run([iters, bytes](mpi::Mpi& mpi) { pingpong_workload(mpi, iters, bytes); });
  return m;
}

}  // namespace sp::test

namespace sp::lapi {

/// Two HAL-connected nodes with one ReliableLink pair and a hand-rolled
/// kProtoLapi dispatch (mirroring Lapi::on_hal_packet): enough transport to
/// drive accept()/on_ack() through real wire traffic, plus surgical per-seq
/// drop control that random fabric loss can't provide.
struct LinkRig {
  explicit LinkRig(sim::MachineConfig c = {}) : cfg(c) {
    fabric = std::make_unique<net::SwitchFabric>(sim, cfg, 2);
    for (int i = 0; i < 2; ++i) {
      rts.push_back(std::make_unique<sim::NodeRuntime>(sim, cfg, i));
      hals.push_back(std::make_unique<hal::Hal>(*rts.back(), *fabric));
    }
    origin = std::make_unique<ReliableLink>(*rts[0], *hals[0], 1);
    target = std::make_unique<ReliableLink>(*rts[1], *hals[1], 0);
    hals[0]->register_protocol(hal::kProtoLapi, [this](int, std::span<const std::byte> b) {
      const PktHdr h = parse_hdr(b);
      if (h.kind == static_cast<std::uint8_t>(Kind::kAck)) origin->on_ack(h.pkt_seq);
    });
    hals[1]->register_protocol(hal::kProtoLapi, [this](int, std::span<const std::byte> b) {
      const PktHdr h = parse_hdr(b);
      if (h.kind == static_cast<std::uint8_t>(Kind::kAck)) return;
      arrivals.emplace_back(sim.now(), h.pkt_seq);
      auto it = drop_budget.find(h.pkt_seq);
      if (it != drop_budget.end() && it->second > 0) {
        --it->second;  // simulated loss of this specific delivery
        return;
      }
      if (target->accept(h.pkt_seq)) fresh_bytes += h.data_len;
    });
  }

  void submit_at(sim::TimeNs t, std::size_t len) {
    sim.at(t, [this, len] {
      ReliableLink::Message msg;
      msg.meta.kind = static_cast<std::uint8_t>(Kind::kPut);
      msg.meta.origin = 0;
      msg.owned.assign(len, std::byte{0x5a});
      origin->submit(std::move(msg));
    });
  }

  sim::MachineConfig cfg;
  sim::Simulator sim;
  std::unique_ptr<net::SwitchFabric> fabric;
  std::vector<std::unique_ptr<sim::NodeRuntime>> rts;
  std::vector<std::unique_ptr<hal::Hal>> hals;
  std::unique_ptr<ReliableLink> origin;
  std::unique_ptr<ReliableLink> target;
  std::map<std::uint32_t, int> drop_budget;  ///< wire seq -> deliveries to swallow
  std::vector<std::pair<sim::TimeNs, std::uint32_t>> arrivals;
  std::uint64_t fresh_bytes = 0;
};

}  // namespace sp::lapi
