// Torture integration: every adversity at once — multipath skew, packet
// loss, interrupt-mode delivery, mixed eager/rendezvous traffic, wildcard
// receivers and collectives interleaved — on every backend. If the stack has
// a coherence hole, this is where it surfaces.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "mpi/machine.hpp"
#include "nas/kernels.hpp"
#include "sim/rng.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

class Torture : public ::testing::TestWithParam<Backend> {};

TEST_P(Torture, EverythingAtOnce) {
  MachineConfig cfg;
  cfg.route_skew_ns = 150'000;
  cfg.packet_drop_rate = 0.02;
  cfg.retransmit_timeout_ns = 350'000;
  cfg.sliding_window_packets = 8;
  cfg.eager_limit = 2048;
  Machine m(cfg, 4, GetParam());

  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int me = w.rank();
    const int n = w.size();
    mpi.set_interrupt_mode(true);

    sim::Pcg32 rng(77u + static_cast<std::uint64_t>(me));
    std::uint64_t sent_sum = 0, recv_sum = 0;
    constexpr int kRounds = 6;

    for (int round = 0; round < kRounds; ++round) {
      // Every rank sends one eager and one rendezvous message to each peer.
      std::vector<Request> reqs;
      std::vector<std::unique_ptr<std::vector<std::uint32_t>>> bufs;
      for (int peer = 0; peer < n; ++peer) {
        if (peer == me) continue;
        for (std::size_t len : {200ul, 1500ul}) {
          auto b = std::make_unique<std::vector<std::uint32_t>>(len);
          for (auto& x : *b) {
            x = rng.next();
            sent_sum += x;
          }
          reqs.push_back(
              mpi.isend(b->data(), len, Datatype::kInt, peer, round, w));
          bufs.push_back(std::move(b));
        }
      }
      // Receive 2*(n-1) messages with a wildcard source.
      for (int k = 0; k < 2 * (n - 1); ++k) {
        std::vector<std::uint32_t> in(1500, 0);
        Status st;
        mpi.recv(in.data(), in.size(), Datatype::kInt, kAnySource, round, w, &st);
        const std::size_t words = st.len / 4;
        for (std::size_t i = 0; i < words; ++i) recv_sum += in[i];
      }
      mpi.waitall(reqs.data(), reqs.size());
      // Interleave a collective to stir the tag/ctx machinery.
      std::uint64_t pair[2] = {sent_sum, recv_sum};
      std::uint64_t tot[2] = {0, 0};
      mpi.allreduce(pair, tot, 2, Datatype::kLong, Op::kSum, w);
      if (round == kRounds - 1) {
        EXPECT_EQ(tot[0], tot[1]) << "global sent == global received";
      }
    }
  });
  EXPECT_GT(m.stats().lapi_retransmits + m.stats().pipes_retransmits +
                m.stats().rdma_retransmits,
            0)
      << "the loss injection must actually have exercised recovery";
  if (GetParam() == Backend::kRdma) {
    // The RDMA adapter bypasses host interrupts entirely (frames are
    // consumed in NIC context); interrupt mode is a no-op there.
    EXPECT_EQ(m.stats().interrupts, 0);
  } else {
    EXPECT_GT(m.stats().interrupts, 0);
  }
}

TEST_P(Torture, NasKernelsAtScaleTwoStayExact) {
  // Cross-backend checksum equality must hold at the benchmark scale too.
  static std::map<std::string, std::uint64_t> reference;
  MachineConfig cfg;
  Machine m(cfg, 4, GetParam());
  std::map<std::string, std::uint64_t> sums;
  m.run([&](Mpi& mpi) {
    for (auto& [name, fn] : nas::all_kernels()) {
      const auto r = fn(mpi, 2);
      EXPECT_TRUE(r.verified) << name;
      if (mpi.world().rank() == 0) sums[name] = r.checksum;
    }
  });
  for (auto& [name, c] : sums) {
    auto [it, inserted] = reference.emplace(name, c);
    if (!inserted) {
      EXPECT_EQ(c, it->second) << name << ": backend changed the numerics";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Torture,
                         ::testing::Values(Backend::kNativePipes, Backend::kLapiBase,
                                           Backend::kLapiCounters, Backend::kLapiEnhanced,
                                           Backend::kRdma),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kNativePipes: return "NativePipes";
                             case Backend::kLapiBase: return "LapiBase";
                             case Backend::kLapiCounters: return "LapiCounters";
                             case Backend::kLapiEnhanced: return "LapiEnhanced";
                             case Backend::kRdma: return "Rdma";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace sp::mpi
