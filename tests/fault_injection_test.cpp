// Fault-injection soak tests: the reliability layers under fabric loss.
//
// The switch fabric can drop, duplicate, jitter and burst-drop packets
// (MachineConfig fault knobs, all seeded and deterministic). These tests run
// full MPI workloads — ping-pong, collectives, the NAS mini-kernels — to
// completion under 1–5% loss on every backend, verify the delivered data,
// bound the retransmit count against the injected loss, and pin the lossy
// event timeline to be bit-identical for a fixed seed. A LinkRig section
// unit-tests the transport fixes directly: duplicate re-ack coalescing, the
// owed-ack retry after a HAL-full failure, deadline-based retransmit timing
// and 32-bit wire sequence wrap.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lapi/reliable_link.hpp"
#include "lapi/wire.hpp"
#include "mpi/coll.hpp"
#include "mpi/machine.hpp"
#include "nas/kernels.hpp"
#include "test_harness.hpp"

namespace {

using sp::mpi::Backend;
using sp::mpi::Machine;
using sp::mpi::Mpi;
using sp::sim::MachineConfig;
using sp::test::expect_bounded_recovery;
using sp::test::lossy_config;
using sp::test::soak_mode;
using sp::test::trace_digest;

struct SoakParam {
  Backend backend;
  double drop;
};

std::string soak_name(const ::testing::TestParamInfo<SoakParam>& info) {
  std::string b = info.param.backend == Backend::kNativePipes ? "Native"
                  : info.param.backend == Backend::kLapiBase  ? "Base"
                  : info.param.backend == Backend::kRdma      ? "Rdma"
                                                              : "Enhanced";
  return b + (info.param.drop < 0.03 ? "_drop1pct" : "_drop5pct");
}

class FaultSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(FaultSoak, PingPongCompletesWithDataIntact) {
  MachineConfig cfg = lossy_config(GetParam().drop);
  Machine m(cfg, 2, GetParam().backend);
  const int iters = soak_mode() ? 64 : 16;
  static constexpr std::size_t kLen = 8 * 1024;
  m.run([iters](Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::uint8_t> buf(kLen);
    for (int i = 0; i < iters; ++i) {
      if (w.rank() == 0) {
        for (std::size_t k = 0; k < kLen; ++k) {
          buf[k] = static_cast<std::uint8_t>(k + static_cast<std::size_t>(i));
        }
        mpi.send(buf.data(), kLen, sp::mpi::Datatype::kByte, 1, 0, w);
        std::fill(buf.begin(), buf.end(), 0);
        mpi.recv(buf.data(), kLen, sp::mpi::Datatype::kByte, 1, 0, w);
      } else {
        mpi.recv(buf.data(), kLen, sp::mpi::Datatype::kByte, 0, 0, w);
        mpi.send(buf.data(), kLen, sp::mpi::Datatype::kByte, 0, 0, w);
      }
      // Both ranks hold the echoed buffer: verify every byte round-tripped.
      for (std::size_t k = 0; k < kLen; ++k) {
        ASSERT_EQ(buf[k], static_cast<std::uint8_t>(k + static_cast<std::size_t>(i)))
            << "iter " << i << " offset " << k;
      }
    }
  });
  const auto s = m.stats();
  EXPECT_GT(s.fabric_dropped, 0) << "fault injection never fired";
  expect_bounded_recovery(m);
}

TEST_P(FaultSoak, AlltoallCompletesWithDataIntact) {
  MachineConfig cfg = lossy_config(GetParam().drop);
  const int nodes = soak_mode() ? 8 : 4;
  const int rounds = soak_mode() ? 8 : 3;
  Machine m(cfg, nodes, GetParam().backend);
  m.run([rounds](Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    const auto me = static_cast<std::size_t>(w.rank());
    std::vector<std::int64_t> src(512 * n), dst(512 * n);
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t k = 0; k < 512; ++k) {
          src[p * 512 + k] = static_cast<std::int64_t>(me * 1'000'000 + p * 1'000 + k + 7 *
                                                       static_cast<std::size_t>(r));
        }
      }
      std::fill(dst.begin(), dst.end(), -1);
      mpi.alltoall(src.data(), 512 * 8, dst.data(), sp::mpi::Datatype::kByte, w);
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t k = 0; k < 512; ++k) {
          ASSERT_EQ(dst[p * 512 + k],
                    static_cast<std::int64_t>(p * 1'000'000 + me * 1'000 + k + 7 *
                                              static_cast<std::size_t>(r)))
              << "round " << r << " from rank " << p << " word " << k;
        }
      }
    }
  });
  expect_bounded_recovery(m);
}

INSTANTIATE_TEST_SUITE_P(BackendsAndRates, FaultSoak,
                         ::testing::Values(SoakParam{Backend::kNativePipes, 0.01},
                                           SoakParam{Backend::kNativePipes, 0.05},
                                           SoakParam{Backend::kLapiBase, 0.05},
                                           SoakParam{Backend::kLapiEnhanced, 0.01},
                                           SoakParam{Backend::kLapiEnhanced, 0.05},
                                           SoakParam{Backend::kRdma, 0.01},
                                           SoakParam{Backend::kRdma, 0.05}),
                         soak_name);

TEST(FaultSoakNas, KernelsVerifyUnderLoss) {
  // The NAS mini-kernels self-verify, so a single lossy run checks both
  // progress (no hang) and end-to-end data integrity through collectives.
  for (double drop : {0.01, 0.05}) {
    for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced, Backend::kRdma}) {
      int ran = 0;
      for (auto& [name, fn] : sp::nas::all_kernels()) {
        if (!soak_mode() && ++ran > 2) break;  // soak runs every kernel
        MachineConfig cfg = lossy_config(drop);
        // Telemetry with a deliberately small ring: the byte cap must hold
        // however much a lossy run emits, and must not perturb recovery.
        cfg.telemetry_enabled = true;
        cfg.telemetry_ring_bytes = 64 * 1024;
        cfg.telemetry_ring_bytes_per_node = 0;  // exact cap: no node floor
        Machine m(cfg, 4, b);
        sp::nas::KernelResult res;
        m.run([&, f = fn](Mpi& mpi) {
          auto r = f(mpi, 1);
          if (mpi.world().rank() == 0) res = r;
        });
        EXPECT_TRUE(res.verified)
            << name << " on " << sp::mpi::backend_name(b) << " at drop=" << drop;
        EXPECT_LE(m.telemetry()->ring_bytes_in_use(), cfg.telemetry_ring_bytes);
        expect_bounded_recovery(m);
      }
    }
  }
}

TEST(FaultSoak, PinnedCollectiveAlgorithmsSurviveLoss) {
  // Algorithm x loss sweep: every non-default collective algorithm, pinned
  // via the same spec strings `spsim --coll-algo` accepts, must deliver
  // bit-exact results under fabric loss and stay within the retransmit
  // budget. The quick tier samples one loss rate on the enhanced backend;
  // soak crosses every spec with both rates and both transports.
  // The NIC specs pin the adapter-resident algorithms: on the RDMA channel
  // they offload (size permitting), on host channels they resolve to the host
  // auto choice — either way the results must be bit-exact under loss.
  static const char* const kSpecs[] = {
      "bcast=pipelined",       "bcast=scatter_allgather",
      "allreduce=recursive_doubling", "allreduce=rabenseifner",
      "alltoall=bruck",        "reduce_scatter=recursive_halving",
      "scan=binomial",         "bcast=nic,allreduce=nic,barrier=nic",
      // The combining-table state machine must survive drop/dup/retransmit
      // without double-combining (the element seen-flags); big vectors fall
      // back to the host engine, the small ones below go through the switch.
      "bcast=in_network,allreduce=in_network,barrier=in_network"};
  const std::vector<double> drops =
      soak_mode() ? std::vector<double>{0.01, 0.05} : std::vector<double>{0.03};
  const std::vector<Backend> backends =
      soak_mode() ? std::vector<Backend>{Backend::kNativePipes, Backend::kLapiEnhanced,
                                         Backend::kRdma}
                  : std::vector<Backend>{Backend::kLapiEnhanced, Backend::kRdma};
  const int nodes = soak_mode() ? 8 : 5;  // 5 is non-power-of-two: pre-fold under loss
  for (const char* spec : kSpecs) {
    for (double drop : drops) {
      for (Backend b : backends) {
        MachineConfig cfg = lossy_config(drop);
        std::string err;
        ASSERT_TRUE(sp::mpi::coll::apply_algo_spec(cfg, spec, &err)) << spec << ": " << err;
        Machine m(cfg, nodes, b);
        int bad = 0;  // fibers are cooperative, so plain int aggregation is safe
        m.run([&](Mpi& mpi) {
          auto& w = mpi.world();
          const int n = w.size();
          const int me = w.rank();
          auto val = [](int r, std::size_t i) {
            return (static_cast<std::uint64_t>(r) + 1) * 1000003ULL + i * 97;
          };
          // 32 KiB of longs clears every large-message cutover even on auto.
          constexpr std::size_t kBig = 4096;
          constexpr std::size_t kSmall = 64;
          std::vector<std::uint64_t> in(kBig), out(kBig), ref(kBig);

          for (std::size_t i = 0; i < kBig; ++i) {
            in[i] = val(me, i);
            ref[i] = 0;
            for (int r = 0; r < n; ++r) ref[i] += val(r, i);
          }
          mpi.allreduce(in.data(), out.data(), kBig, sp::mpi::Datatype::kLong,
                        sp::mpi::Op::kSum, w);
          if (std::memcmp(out.data(), ref.data(), kBig * 8) != 0) ++bad;
          mpi.barrier(w);  // exercises barrier=nic / barrier=in_network under loss

          // Small (512 B) allreduce + bcast: fits the NIC and combining-table
          // caps, so offloaded pins run their actual protocol under loss.
          mpi.allreduce(in.data(), out.data(), kSmall, sp::mpi::Datatype::kLong,
                        sp::mpi::Op::kSum, w);
          for (std::size_t i = 0; i < kSmall; ++i) {
            if (out[i] != ref[i]) ++bad;
          }
          if (me == 0) {
            for (std::size_t i = 0; i < kSmall; ++i) out[i] = val(0, i) * 9 + 1;
          } else {
            std::fill(out.begin(), out.begin() + kSmall, 0);
          }
          mpi.bcast(out.data(), kSmall, sp::mpi::Datatype::kLong, 0, w);
          for (std::size_t i = 0; i < kSmall; ++i) {
            if (out[i] != val(0, i) * 9 + 1) ++bad;
          }

          if (me == n - 1) {
            for (std::size_t i = 0; i < kBig; ++i) out[i] = val(n - 1, i) * 5 + 3;
          } else {
            std::fill(out.begin(), out.end(), 0);
          }
          mpi.bcast(out.data(), kBig, sp::mpi::Datatype::kLong, n - 1, w);
          for (std::size_t i = 0; i < kBig; ++i) {
            if (out[i] != val(n - 1, i) * 5 + 3) ++bad;
          }

          mpi.scan(in.data(), out.data(), kSmall, sp::mpi::Datatype::kLong,
                   sp::mpi::Op::kSum, w);
          for (std::size_t i = 0; i < kSmall; ++i) {
            std::uint64_t want = 0;
            for (int r = 0; r <= me; ++r) want += val(r, i);
            if (out[i] != want) ++bad;
          }

          std::vector<std::uint64_t> blocks(kSmall * static_cast<std::size_t>(n));
          std::vector<std::uint64_t> gathered(kSmall * static_cast<std::size_t>(n));
          for (int d = 0; d < n; ++d) {
            for (std::size_t i = 0; i < kSmall; ++i) {
              blocks[static_cast<std::size_t>(d) * kSmall + i] =
                  val(me, i + static_cast<std::size_t>(d) * 131);
            }
          }
          mpi.alltoall(blocks.data(), kSmall * 8, gathered.data(),
                       sp::mpi::Datatype::kByte, w);
          for (int s = 0; s < n; ++s) {
            for (std::size_t i = 0; i < kSmall; ++i) {
              if (gathered[static_cast<std::size_t>(s) * kSmall + i] !=
                  val(s, i + static_cast<std::size_t>(me) * 131)) {
                ++bad;
              }
            }
          }

          for (std::size_t i = 0; i < blocks.size(); ++i) blocks[i] = val(me, i);
          std::vector<std::uint64_t> mine(kSmall);
          mpi.reduce_scatter_block(blocks.data(), mine.data(), kSmall,
                                   sp::mpi::Datatype::kLong, sp::mpi::Op::kSum, w);
          for (std::size_t i = 0; i < kSmall; ++i) {
            std::uint64_t want = 0;
            for (int r = 0; r < n; ++r) {
              want += val(r, static_cast<std::size_t>(me) * kSmall + i);
            }
            if (mine[i] != want) ++bad;
          }
        });
        EXPECT_EQ(bad, 0) << spec << " drop=" << drop << " on "
                          << sp::mpi::backend_name(b);
        EXPECT_GT(m.stats().fabric_dropped, 0) << "fault injection never fired";
        expect_bounded_recovery(m);
      }
    }
  }
}

TEST(FaultSoak, StatsAccountForInjectedFaults) {
  // At 5% drop + 5% dup every counter in the chain must move: fabric-level
  // drops and duplicates, transport retransmits, duplicate deliveries
  // filtered at the receiver, and explicit acks.
  MachineConfig cfg = lossy_config(0.05);
  cfg.packet_dup_rate = 0.05;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) { sp::test::pingpong_workload(mpi, 8, 64 * 1024); });
  const auto s = m.stats();
  EXPECT_GT(s.fabric_dropped, 0);
  EXPECT_GT(s.fabric_duplicated, 0);
  EXPECT_GT(s.lapi_retransmits, 0);
  EXPECT_GT(s.lapi_duplicate_deliveries, 0);
  EXPECT_GT(s.lapi_acks, 0);
}

TEST(FaultSoak, RdmaStatsAccountForInjectedFaults) {
  // Same chain on the RDMA channel: its RC-QP transport must retransmit,
  // filter duplicates and ack, and the 64 KiB bounces must go through the
  // RDMA-read rendezvous path.
  MachineConfig cfg = lossy_config(0.05);
  cfg.packet_dup_rate = 0.05;
  Machine m(cfg, 2, Backend::kRdma);
  m.run([](Mpi& mpi) { sp::test::pingpong_workload(mpi, 8, 64 * 1024); });
  const auto s = m.stats();
  EXPECT_GT(s.fabric_dropped, 0);
  EXPECT_GT(s.fabric_duplicated, 0);
  EXPECT_GT(s.rdma_retransmits, 0);
  EXPECT_GT(s.rdma_duplicate_deliveries, 0);
  EXPECT_GT(s.rdma_acks, 0);
  EXPECT_GT(s.rdma_reads, 0);
}

// --- lossy determinism ------------------------------------------------------

std::uint64_t lossy_digest(std::uint64_t seed) {
  MachineConfig cfg = lossy_config(0.03);
  cfg.fabric_seed = seed;
  cfg.trace_enabled = true;
  Machine m(cfg, 4, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    std::vector<double> src(256 * n, 0.25), dst(256 * n, 0.0);
    for (int r = 0; r < 4; ++r) {
      mpi.alltoall(src.data(), 256, dst.data(), sp::mpi::Datatype::kDouble, w);
    }
  });
  return trace_digest(*m.trace());
}

TEST(FaultDeterminism, SameSeedSameLossyTimeline) {
  const std::uint64_t first = lossy_digest(0x100);
  const std::uint64_t second = lossy_digest(0x100);
  EXPECT_EQ(first, second) << "lossy run is not reproducible for a fixed seed";
}

TEST(FaultDeterminism, DifferentSeedDifferentLossPattern) {
  EXPECT_NE(lossy_digest(0x100), lossy_digest(0x101));
}

}  // namespace

// --- transport unit tests (the reliability fixes) ---------------------------

namespace sp::lapi {
namespace {

// LinkRig (the two-node ReliableLink fixture) now lives in test_harness.hpp.

TEST(ReliableLinkFix, DuplicateBurstEarnsOneImmediateReack) {
  // A go-back-N resend of a full window lands as a burst of duplicates at the
  // target. Each must be rejected, but re-advertising the cumulative position
  // once is enough — per-duplicate acks are the ack storm the coalescing
  // window exists to prevent.
  LinkRig rig;
  for (std::uint32_t s = 1; s <= 8; ++s) (void)rig.target->accept(s);
  const std::int64_t acks_after_fresh = rig.target->acks_sent();
  for (std::uint32_t s = 1; s <= 8; ++s) EXPECT_FALSE(rig.target->accept(s));
  EXPECT_EQ(rig.target->duplicates(), 8);
  EXPECT_EQ(rig.target->acks_sent(), acks_after_fresh + 1)
      << "a burst of 8 duplicates must trigger exactly one immediate re-ack";
  rig.sim.run();  // the rest of the burst folds into one delayed flush
  EXPECT_LE(rig.target->acks_sent(), acks_after_fresh + 2);
}

TEST(ReliableLinkFix, OwedReackRetriesAfterHalFull) {
  // A duplicate arrives with no fresh packets outstanding and the immediate
  // re-ack hits a full HAL send queue. The old code keyed the flush retry on
  // unacked_count_ (zero here), so the ack was dropped on the floor and the
  // origin spun on its retransmit timer; the pending-ack bit must survive.
  LinkRig rig;
  EXPECT_TRUE(rig.target->accept(1));
  rig.sim.run();  // delayed flush acks seq 1
  ASSERT_EQ(rig.target->acks_sent(), 1);

  // Exhaust node 1's HAL send buffers with harmless self-made ack packets.
  std::vector<std::byte> filler;
  PktHdr h;
  h.kind = static_cast<std::uint8_t>(Kind::kAck);
  h.pkt_seq = 0;
  append_hdr(filler, h);
  while (rig.hals[1]->send_buffers_in_use() < rig.cfg.hal_send_buffers) {
    ASSERT_TRUE(rig.hals[1]->send_packet(0, hal::kProtoLapi, filler));
  }

  EXPECT_FALSE(rig.target->accept(1));         // duplicate; re-ack owed
  EXPECT_EQ(rig.target->acks_sent(), 1);       // HAL full: nothing went out yet
  rig.sim.run();                               // buffers drain, flush retries
  EXPECT_EQ(rig.target->acks_sent(), 2) << "owed re-ack was lost after a HAL-full failure";
}

TEST(ReliableLinkFix, RetransmitFiresOneTimeoutAfterTheLostSend) {
  // Message A (seq 1) is delivered and acked; message B (seq 2), sent while
  // A's retransmit timer is still armed, is lost. Re-arming a full timeout
  // from the timer's fire time would delay B's resend to nearly 2x the
  // timeout; arming against the oldest unacked send must recover within ~1x.
  LinkRig rig;
  const sim::TimeNs timeout = rig.cfg.retransmit_timeout_ns;
  const sim::TimeNs sent_b = (timeout * 6) / 10;
  rig.drop_budget[2] = 1;
  rig.submit_at(0, 64);
  rig.submit_at(sent_b, 64);
  rig.sim.run();

  ASSERT_EQ(rig.origin->retransmits(), 1);
  EXPECT_TRUE(rig.origin->drained());
  sim::TimeNs second_arrival = -1;
  int seq2_seen = 0;
  for (const auto& [t, s] : rig.arrivals) {
    if (s == 2 && ++seq2_seen == 2) second_arrival = t;
  }
  ASSERT_GE(seq2_seen, 2) << "lost packet was never retransmitted";
  EXPECT_GE(second_arrival - sent_b, timeout);
  EXPECT_LE(second_arrival - sent_b, timeout + timeout / 10)
      << "retransmit lagged the timeout: lost packet lingered "
      << sim::to_us(second_arrival - sent_b) << "us";
}

TEST(ReliableLinkFix, SequenceNumbersSurviveWireWrap) {
  // Both cursors start just below 2^32; an 80-packet message crosses the
  // 32-bit wire wrap mid-stream. Every packet must be accepted exactly once
  // and acked, with no retransmits and no duplicates flagged.
  LinkRig rig;
  const std::uint64_t base = (1ULL << 32) - 40;
  rig.origin->fast_forward_seq(base);
  rig.target->fast_forward_seq(base);
  const std::size_t len = 80 * 1024;  // 80 MTU-sized packets
  rig.submit_at(0, len);
  rig.sim.run();
  EXPECT_EQ(rig.fresh_bytes, len);
  EXPECT_EQ(rig.target->duplicates(), 0);
  EXPECT_EQ(rig.origin->retransmits(), 0);
  EXPECT_TRUE(rig.origin->drained());
}

TEST(ReliableLinkFix, UnwrapSeqSerialArithmetic) {
  constexpr std::uint64_t kSpan = 1ULL << 32;
  // In-window forward references, including across the wrap.
  EXPECT_EQ(unwrap_seq(0, 1), 1u);
  EXPECT_EQ(unwrap_seq(100, 50), 50u);
  EXPECT_EQ(unwrap_seq(kSpan - 1, 5), kSpan + 5);
  EXPECT_EQ(unwrap_seq(kSpan - 1, 0xFFFFFFFEu), kSpan - 2);
  // Just past the wrap, a duplicate of the last pre-wrap packet.
  EXPECT_EQ(unwrap_seq(kSpan + 5, 0xFFFFFFFFu), kSpan - 1);
  // Deep into the second epoch both directions resolve near the cursor.
  EXPECT_EQ(unwrap_seq(3 * kSpan + 100, 90), 3 * kSpan + 90);
  EXPECT_EQ(unwrap_seq(3 * kSpan + 100, 110), 3 * kSpan + 110);
}

}  // namespace
}  // namespace sp::lapi
