// Collective operations: correctness over varying communicator sizes, roots,
// counts and element types, plus communicator dup/split — and the golden-model
// conformance matrix for the collective algorithm engine (DESIGN.md §12).
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "mpi/coll.hpp"
#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

struct CollParam {
  int nodes;
  Backend backend;
};

class Collectives : public ::testing::TestWithParam<CollParam> {
 protected:
  void run(const std::function<void(Mpi&)>& body) {
    MachineConfig cfg;
    Machine m(cfg, GetParam().nodes, GetParam().backend);
    m.run(body);
  }
  [[nodiscard]] int nodes() const { return GetParam().nodes; }
};

TEST_P(Collectives, BarrierSynchronises) {
  const int n = nodes();
  std::vector<double> exit_time(static_cast<std::size_t>(n));
  MachineConfig cfg;
  Machine m(cfg, n, GetParam().backend);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    mpi.compute((w.rank() + 1) * sim::kMs);  // staggered arrival
    mpi.barrier(w);
    exit_time[static_cast<std::size_t>(w.rank())] = mpi.wtime();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(exit_time[static_cast<std::size_t>(r)], n * 1e-3)
        << "rank " << r << " left the barrier before the slowest arrival";
  }
}

TEST_P(Collectives, BcastFromEveryRoot) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    for (int root = 0; root < w.size(); ++root) {
      std::vector<int> data(97, w.rank() == root ? root * 1000 : -1);
      mpi.bcast(data.data(), data.size(), Datatype::kInt, root, w);
      for (int x : data) ASSERT_EQ(x, root * 1000);
    }
  });
}

TEST_P(Collectives, ReduceSumToEveryRoot) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    for (int root = 0; root < n; ++root) {
      std::vector<long> mine(5);
      for (int k = 0; k < 5; ++k) mine[static_cast<std::size_t>(k)] = w.rank() + k;
      std::vector<long> out(5, -1);
      mpi.reduce(mine.data(), out.data(), 5, Datatype::kLong, Op::kSum, root, w);
      if (w.rank() == root) {
        for (int k = 0; k < 5; ++k) {
          EXPECT_EQ(out[static_cast<std::size_t>(k)], static_cast<long>(n) * (n - 1) / 2 + k * n);
        }
      }
    }
  });
}

TEST_P(Collectives, AllreduceMaxMinProd) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    int mine = w.rank() + 1;
    int mx = 0, mn = 0, pr = 0;
    mpi.allreduce(&mine, &mx, 1, Datatype::kInt, Op::kMax, w);
    mpi.allreduce(&mine, &mn, 1, Datatype::kInt, Op::kMin, w);
    mpi.allreduce(&mine, &pr, 1, Datatype::kInt, Op::kProd, w);
    EXPECT_EQ(mx, n);
    EXPECT_EQ(mn, 1);
    int fact = 1;
    for (int i = 1; i <= n; ++i) fact *= i;
    EXPECT_EQ(pr, fact);
  });
}

TEST_P(Collectives, AllreduceDoubleIsDeterministic) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    double mine = 1.0 / (w.rank() + 1);
    double a = 0, b = 0;
    mpi.allreduce(&mine, &a, 1, Datatype::kDouble, Op::kSum, w);
    mpi.allreduce(&mine, &b, 1, Datatype::kDouble, Op::kSum, w);
    EXPECT_EQ(a, b) << "fixed reduction order must give bit-identical results";
  });
}

TEST_P(Collectives, GatherScatterRoundTrip) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<int> mine(3, w.rank() * 10);
    std::vector<int> all(static_cast<std::size_t>(3 * n), -1);
    mpi.gather(mine.data(), 3, all.data(), Datatype::kInt, 0, w);
    if (w.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        for (int k = 0; k < 3; ++k) {
          ASSERT_EQ(all[static_cast<std::size_t>(r * 3 + k)], r * 10);
        }
      }
      for (auto& x : all) x += 1;
    }
    std::vector<int> back(3, -1);
    mpi.scatter(all.data(), 3, back.data(), Datatype::kInt, 0, w);
    for (int k = 0; k < 3; ++k) EXPECT_EQ(back[static_cast<std::size_t>(k)], w.rank() * 10 + 1);
  });
}

TEST_P(Collectives, AllgatherMatchesGatherBcast) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<long> mine(4);
    for (int k = 0; k < 4; ++k) mine[static_cast<std::size_t>(k)] = w.rank() * 100 + k;
    std::vector<long> all(static_cast<std::size_t>(4 * n), -1);
    mpi.allgather(mine.data(), 4, all.data(), Datatype::kLong, w);
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k < 4; ++k) {
        ASSERT_EQ(all[static_cast<std::size_t>(r * 4 + k)], r * 100 + k);
      }
    }
  });
}

TEST_P(Collectives, AlltoallPermutesBlocks) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<int> send(static_cast<std::size_t>(n) * 2), recv(static_cast<std::size_t>(n) * 2, -1);
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d * 2)] = w.rank() * 1000 + d;
      send[static_cast<std::size_t>(d * 2 + 1)] = -w.rank();
    }
    mpi.alltoall(send.data(), 2, recv.data(), Datatype::kInt, w);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s * 2)], s * 1000 + w.rank());
      ASSERT_EQ(recv[static_cast<std::size_t>(s * 2 + 1)], -s);
    }
  });
}

TEST_P(Collectives, AlltoallvVariableBlocks) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    const int me = w.rank();
    // Rank r sends (r + d + 1) ints to rank d.
    std::vector<std::size_t> scounts(static_cast<std::size_t>(n)), sdispls(static_cast<std::size_t>(n));
    std::vector<std::size_t> rcounts(static_cast<std::size_t>(n)), rdispls(static_cast<std::size_t>(n));
    std::size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < n; ++d) {
      scounts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(me + d + 1);
      sdispls[static_cast<std::size_t>(d)] = stotal;
      stotal += scounts[static_cast<std::size_t>(d)];
      rcounts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d + me + 1);
      rdispls[static_cast<std::size_t>(d)] = rtotal;
      rtotal += rcounts[static_cast<std::size_t>(d)];
    }
    std::vector<int> send(stotal), recv(rtotal, -1);
    for (int d = 0; d < n; ++d) {
      for (std::size_t k = 0; k < scounts[static_cast<std::size_t>(d)]; ++k) {
        send[sdispls[static_cast<std::size_t>(d)] + k] = me * 100 + d;
      }
    }
    mpi.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(), rcounts.data(),
                  rdispls.data(), Datatype::kInt, w);
    for (int s = 0; s < n; ++s) {
      for (std::size_t k = 0; k < rcounts[static_cast<std::size_t>(s)]; ++k) {
        ASSERT_EQ(recv[rdispls[static_cast<std::size_t>(s)] + k], s * 100 + me);
      }
    }
  });
}

TEST_P(Collectives, ReduceScatterBlock) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<long> send(static_cast<std::size_t>(n) * 2);
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d * 2)] = d;
      send[static_cast<std::size_t>(d * 2 + 1)] = w.rank();
    }
    std::vector<long> out(2, -1);
    mpi.reduce_scatter_block(send.data(), out.data(), 2, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(out[0], static_cast<long>(w.rank()) * n);
    EXPECT_EQ(out[1], static_cast<long>(n) * (n - 1) / 2);
  });
}

TEST_P(Collectives, SplitEvenOddAndCommunicateWithin) {
  if (nodes() < 2) GTEST_SKIP();
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    Comm half = mpi.split(w, w.rank() % 2, w.rank());
    // Within each half, allreduce over the members' world ranks.
    long mine = w.rank();
    long sum = 0;
    mpi.allreduce(&mine, &sum, 1, Datatype::kLong, Op::kSum, half);
    long expect = 0;
    for (int r = w.rank() % 2; r < w.size(); r += 2) expect += r;
    EXPECT_EQ(sum, expect);
    // Messages in the split communicator must not leak into the world ctx.
    EXPECT_NE(half.ctx(), w.ctx());
  });
}

TEST_P(Collectives, DupIsolatesTraffic) {
  if (nodes() < 2) GTEST_SKIP();
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    Comm d = mpi.dup(w);
    // Same tag, same peer, two communicators: matching must respect ctx.
    if (w.rank() == 0) {
      int a = 1, b = 2;
      mpi.send(&a, 1, Datatype::kInt, 1, 5, d);
      mpi.send(&b, 1, Datatype::kInt, 1, 5, w);
    } else if (w.rank() == 1) {
      int from_world = 0, from_dup = 0;
      mpi.recv(&from_world, 1, Datatype::kInt, 0, 5, w);
      mpi.recv(&from_dup, 1, Datatype::kInt, 0, 5, d);
      EXPECT_EQ(from_world, 2);
      EXPECT_EQ(from_dup, 1);
    }
    mpi.barrier(w);
  });
}

TEST_P(Collectives, SplitUnevenKeepsCollectiveTagsAligned) {
  if (nodes() < 2) GTEST_SKIP();
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    // Rank 0 sits alone in its colour. Its collectives in the size-1
    // sub-communicator must consume exactly as many collective sequence tags
    // as everyone else's in the size-(n-1) one; the seed returned early from
    // barrier/bcast/allgather before allocating a tag for n <= 1, so the
    // world allreduce afterwards deadlocked on mismatched tags.
    Comm sub = mpi.split(w, w.rank() == 0 ? 0 : 1, w.rank());
    mpi.barrier(sub);
    std::vector<int> b(3, sub.rank() == 0 ? 7 : -1);
    mpi.bcast(b.data(), 3, Datatype::kInt, 0, sub);
    for (int x : b) EXPECT_EQ(x, 7);
    std::vector<long> mine{w.rank()};
    std::vector<long> all(static_cast<std::size_t>(sub.size()), -1);
    mpi.allgather(mine.data(), 1, all.data(), Datatype::kLong, sub);
    long me = w.rank(), total = -1;
    mpi.allreduce(&me, &total, 1, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(total, static_cast<long>(w.size()) * (w.size() - 1) / 2);
  });
}

TEST_P(Collectives, ZeroCountCollectivesAreWellDefined) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    // count == 0 (null buffers) must neither crash nor desync any rank.
    mpi.bcast(nullptr, 0, Datatype::kInt, 0, w);
    mpi.reduce(nullptr, nullptr, 0, Datatype::kLong, Op::kSum, 0, w);
    mpi.allreduce(nullptr, nullptr, 0, Datatype::kLong, Op::kSum, w);
    mpi.scan(nullptr, nullptr, 0, Datatype::kLong, Op::kSum, w);
    mpi.exscan(nullptr, nullptr, 0, Datatype::kLong, Op::kSum, w);
    mpi.alltoall(nullptr, 0, nullptr, Datatype::kInt, w);
    mpi.reduce_scatter_block(nullptr, nullptr, 0, Datatype::kLong, Op::kSum, w);
    mpi.allgather(nullptr, 0, nullptr, Datatype::kLong, w);
    mpi.gather(nullptr, 0, nullptr, Datatype::kInt, 0, w);
    mpi.scatter(nullptr, 0, nullptr, Datatype::kInt, 0, w);
    // The machine is still healthy: a real allreduce works right after.
    long mine = w.rank() + 1, sum = 0;
    mpi.allreduce(&mine, &sum, 1, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(sum, static_cast<long>(w.size()) * (w.size() + 1) / 2);
  });
}

std::string coll_name(const ::testing::TestParamInfo<CollParam>& info) {
  std::string b = info.param.backend == Backend::kNativePipes ? "Native"
                  : info.param.backend == Backend::kRdma      ? "Rdma"
                                                              : "LapiEnh";
  return b + "_n" + std::to_string(info.param.nodes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Collectives,
                         ::testing::Values(CollParam{1, Backend::kLapiEnhanced},
                                           CollParam{2, Backend::kLapiEnhanced},
                                           CollParam{3, Backend::kLapiEnhanced},
                                           CollParam{4, Backend::kLapiEnhanced},
                                           CollParam{7, Backend::kLapiEnhanced},
                                           CollParam{8, Backend::kLapiEnhanced},
                                           CollParam{4, Backend::kNativePipes},
                                           CollParam{7, Backend::kNativePipes},
                                           CollParam{4, Backend::kRdma},
                                           CollParam{7, Backend::kRdma}),
                         coll_name);

// ---------------------------------------------------------------------------
// Golden-model conformance matrix (DESIGN.md §12)
//
// Every collective x every algorithm (pinned via --coll-algo specs) x comm
// sizes {1,2,3,5,8,13,16} x message sizes straddling each cutover, checked
// in-fiber against a single-rank sequential reference, on BOTH channels
// (Pipes and LAPI). Workloads use exact arithmetic (integers, wrapping
// products, 2x2 matrix products), so on top of the per-buffer value checks
// every (algorithm, channel) cell must produce the identical result digest —
// algorithm and channel choice must never change user-visible results.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ b[i]) * kFnvPrime;
  return h;
}

/// Deterministic per-(rank, slot) inputs, rank-asymmetric so any operand
/// reordering or misrouted block changes the result.
long gen_long(int rank, std::size_t i) {
  return static_cast<long>((static_cast<unsigned long>(rank) + 1) * 1000003UL +
                           i * 97UL + i % 7UL);
}
double gen_double(int rank, std::size_t i) {
  return static_cast<double>(gen_long(rank, i) % 8191) / 64.0;
}

/// Single-rank sequential reference: fold the per-rank vectors of `ranks` (in
/// the given order) with reduce_apply, exactly as MPI defines the reduction.
std::vector<long> ref_reduce(Op op, const std::vector<int>& ranks, std::size_t count) {
  std::vector<long> acc(count), in(count);
  for (std::size_t i = 0; i < count; ++i) acc[i] = gen_long(ranks[0], i);
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    for (std::size_t i = 0; i < count; ++i) in[i] = gen_long(ranks[r], i);
    if (count > 0) reduce_apply(op, Datatype::kLong, in.data(), acc.data(), count);
  }
  return acc;
}

/// One matrix cell: run `body` on `nodes` ranks with the algorithm pins in
/// `spec` applied, and combine the per-rank result digests in rank order.
std::uint64_t run_cell(int nodes, Backend be, const std::string& spec,
                       const std::function<void(Mpi&, std::uint64_t&)>& body) {
  sim::MachineConfig cfg;
  std::string err;
  EXPECT_TRUE(coll::apply_algo_spec(cfg, spec, &err)) << err;
  Machine m(cfg, nodes, be);
  std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(nodes), kFnvOffset);
  m.run([&](Mpi& mpi) {
    std::uint64_t h = kFnvOffset;
    body(mpi, h);
    per_rank[static_cast<std::size_t>(mpi.world().rank())] = h;
  });
  std::uint64_t all = kFnvOffset;
  for (std::uint64_t h : per_rank) all = (all ^ h) * kFnvPrime;
  return all;
}

class CollMatrix : public ::testing::TestWithParam<int> {
 protected:
  /// Run the workload for every algorithm spec on all three channels; every
  /// cell must match the first cell's digest bit-for-bit (the workload itself
  /// checks values against the sequential reference in-fiber). The RDMA cells
  /// route small integer collectives through the NIC-resident algorithms, so
  /// the adapter combine/release trees are held to the same golden model.
  void check(const std::vector<std::string>& specs,
             const std::function<void(Mpi&, std::uint64_t&)>& body) {
    const int n = GetParam();
    std::uint64_t first = 0;
    bool have = false;
    for (const auto& spec : specs) {
      for (const Backend be :
           {Backend::kNativePipes, Backend::kLapiEnhanced, Backend::kRdma}) {
        const std::uint64_t dig = run_cell(n, be, spec, body);
        if (!have) {
          first = dig;
          have = true;
        } else {
          EXPECT_EQ(dig, first) << "matrix cell diverges: spec='" << spec << "' channel="
                                << backend_name(be) << " n=" << n;
        }
      }
    }
  }
};

void bcast_workload(Mpi& mpi, std::uint64_t& h) {
  Comm& w = mpi.world();
  const int n = w.size();
  // 8 B / ~8 KiB / 48 KiB of doubles: straddles coll_bcast_pipeline_min_bytes
  // (32 KiB) and leaves scatter chunks uneven for every non-divisor size.
  for (const std::size_t count : {std::size_t{1}, std::size_t{1031}, std::size_t{6144}}) {
    for (const int root : {0, n / 2, n - 1}) {
      std::vector<double> buf(count, -1.0);
      if (w.rank() == root) {
        for (std::size_t i = 0; i < count; ++i) buf[i] = gen_double(root, i);
      }
      mpi.bcast(buf.data(), count, Datatype::kDouble, root, w);
      std::size_t bad = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (buf[i] != gen_double(root, i)) ++bad;
      }
      EXPECT_EQ(bad, 0u) << "bcast count=" << count << " root=" << root << " rank="
                         << w.rank();
      h = fnv_bytes(h, buf.data(), count * sizeof(double));
    }
  }
  // Derived layout: broadcast the even elements of a strided vector.
  const DerivedDatatype t = DerivedDatatype::vector(9, 1, 2, Datatype::kLong);
  std::vector<long> mat(18, -1);
  if (w.rank() == 0) {
    for (std::size_t i = 0; i < 18; i += 2) mat[i] = gen_long(0, i);
  }
  mpi.bcast(mat.data(), 1, t, 0, w);
  std::size_t bad = 0;
  for (std::size_t i = 0; i < 18; ++i) {
    const long expect = i % 2 == 0 ? gen_long(0, i) : -1;
    if (mat[i] != expect) ++bad;
  }
  EXPECT_EQ(bad, 0u) << "derived-datatype bcast, rank " << w.rank();
  h = fnv_bytes(h, mat.data(), mat.size() * sizeof(long));
}

void allreduce_workload(Mpi& mpi, std::uint64_t& h) {
  Comm& w = mpi.world();
  const int n = w.size();
  std::vector<int> everyone(static_cast<std::size_t>(n));
  std::iota(everyone.begin(), everyone.end(), 0);
  // 32 B / ~1.8 KiB / ~16 KiB of longs: straddles the 16 KiB Rabenseifner
  // cutover; counts are multiples of 4 so Op::kMat2x2 (non-commutative)
  // applies, which catches any operand-order violation bit-exactly.
  for (const std::size_t count : {std::size_t{4}, std::size_t{236}, std::size_t{2052}}) {
    for (const Op op : {Op::kSum, Op::kMat2x2}) {
      const std::vector<long> expect = ref_reduce(op, everyone, count);
      std::vector<long> in(count), out(count, -1);
      for (std::size_t i = 0; i < count; ++i) in[i] = gen_long(w.rank(), i);
      mpi.allreduce(in.data(), out.data(), count, Datatype::kLong, op, w);
      EXPECT_EQ(std::memcmp(out.data(), expect.data(), count * sizeof(long)), 0)
          << "allreduce count=" << count << " op=" << static_cast<int>(op) << " rank="
          << w.rank();
      h = fnv_bytes(h, out.data(), count * sizeof(long));
      // reduce to the last root: the seed's rotated tree reordered operands
      // for root != 0; the rank-ordered tree must agree with the reference.
      std::vector<long> rout(count, -1);
      mpi.reduce(in.data(), rout.data(), count, Datatype::kLong, op, n - 1, w);
      if (w.rank() == n - 1) {
        EXPECT_EQ(std::memcmp(rout.data(), expect.data(), count * sizeof(long)), 0)
            << "reduce-to-root count=" << count << " op=" << static_cast<int>(op);
        h = fnv_bytes(h, rout.data(), count * sizeof(long));
      }
    }
  }
}

void alltoall_workload(Mpi& mpi, std::uint64_t& h) {
  Comm& w = mpi.world();
  const int n = w.size();
  // 24 B / 768 B / 1.5 KiB blocks: straddles coll_alltoall_bruck_max_bytes.
  for (const std::size_t count : {std::size_t{3}, std::size_t{96}, std::size_t{192}}) {
    std::vector<long> send(static_cast<std::size_t>(n) * count);
    std::vector<long> recv(static_cast<std::size_t>(n) * count, -1);
    for (int d = 0; d < n; ++d) {
      for (std::size_t k = 0; k < count; ++k) {
        send[static_cast<std::size_t>(d) * count + k] =
            gen_long(w.rank(), static_cast<std::size_t>(d) * count + k);
      }
    }
    mpi.alltoall(send.data(), count, recv.data(), Datatype::kLong, w);
    std::size_t bad = 0;
    for (int s = 0; s < n; ++s) {
      for (std::size_t k = 0; k < count; ++k) {
        const long expect =
            gen_long(s, static_cast<std::size_t>(w.rank()) * count + k);
        if (recv[static_cast<std::size_t>(s) * count + k] != expect) ++bad;
      }
    }
    EXPECT_EQ(bad, 0u) << "alltoall count=" << count << " rank=" << w.rank();
    h = fnv_bytes(h, recv.data(), recv.size() * sizeof(long));
  }
}

void reduce_scatter_workload(Mpi& mpi, std::uint64_t& h) {
  Comm& w = mpi.world();
  const int n = w.size();
  std::vector<int> everyone(static_cast<std::size_t>(n));
  std::iota(everyone.begin(), everyone.end(), 0);
  // Per-block counts whose n-rank totals straddle the 8 KiB halving cutover;
  // multiples of 4 so Op::kMat2x2 exercises granule-aligned block splits.
  for (const std::size_t count : {std::size_t{4}, std::size_t{96}, std::size_t{640}}) {
    for (const Op op : {Op::kSum, Op::kMat2x2}) {
      const std::size_t total = count * static_cast<std::size_t>(n);
      const std::vector<long> expect = ref_reduce(op, everyone, total);
      std::vector<long> in(total), out(count, -1);
      for (std::size_t i = 0; i < total; ++i) in[i] = gen_long(w.rank(), i);
      mpi.reduce_scatter_block(in.data(), out.data(), count, Datatype::kLong, op, w);
      EXPECT_EQ(std::memcmp(out.data(),
                            expect.data() + static_cast<std::size_t>(w.rank()) * count,
                            count * sizeof(long)),
                0)
          << "reduce_scatter count=" << count << " op=" << static_cast<int>(op) << " rank="
          << w.rank();
      h = fnv_bytes(h, out.data(), count * sizeof(long));
    }
  }
}

void scan_workload(Mpi& mpi, std::uint64_t& h) {
  Comm& w = mpi.world();
  const int me = w.rank();
  std::vector<int> prefix(static_cast<std::size_t>(me) + 1);
  std::iota(prefix.begin(), prefix.end(), 0);
  for (const std::size_t count : {std::size_t{4}, std::size_t{1024}}) {
    for (const Op op : {Op::kSum, Op::kMat2x2}) {
      std::vector<long> in(count), out(count, -1);
      for (std::size_t i = 0; i < count; ++i) in[i] = gen_long(me, i);
      mpi.scan(in.data(), out.data(), count, Datatype::kLong, op, w);
      const std::vector<long> expect = ref_reduce(op, prefix, count);
      EXPECT_EQ(std::memcmp(out.data(), expect.data(), count * sizeof(long)), 0)
          << "scan count=" << count << " op=" << static_cast<int>(op) << " rank=" << me;
      h = fnv_bytes(h, out.data(), count * sizeof(long));

      std::vector<long> eout(count, -1);
      mpi.exscan(in.data(), eout.data(), count, Datatype::kLong, op, w);
      if (me > 0) {
        std::vector<int> excl(prefix.begin(), prefix.end() - 1);
        const std::vector<long> eexpect = ref_reduce(op, excl, count);
        EXPECT_EQ(std::memcmp(eout.data(), eexpect.data(), count * sizeof(long)), 0)
            << "exscan count=" << count << " op=" << static_cast<int>(op) << " rank=" << me;
        h = fnv_bytes(h, eout.data(), count * sizeof(long));
      }
    }
  }
}

void split_workload(Mpi& mpi, std::uint64_t& h) {
  Comm& w = mpi.world();
  const int n = w.size();
  const int color = w.rank() % 3;
  Comm sub = mpi.split(w, color, w.rank());
  std::vector<int> members;
  for (int r = 0; r < n; ++r) {
    if (r % 3 == color) members.push_back(r);
  }
  const std::size_t count = 8;
  std::vector<long> in(count), out(count, -1);
  for (std::size_t i = 0; i < count; ++i) in[i] = gen_long(w.rank(), i);
  // Non-commutative allreduce inside the (differently sized) sub-comms.
  mpi.allreduce(in.data(), out.data(), count, Datatype::kLong, Op::kMat2x2, sub);
  const std::vector<long> expect = ref_reduce(Op::kMat2x2, members, count);
  EXPECT_EQ(std::memcmp(out.data(), expect.data(), count * sizeof(long)), 0)
      << "sub-comm allreduce, world rank " << w.rank();
  h = fnv_bytes(h, out.data(), count * sizeof(long));
  // Scan within the sub-comm (prefix over members in sub-rank order).
  mpi.scan(in.data(), out.data(), count, Datatype::kLong, Op::kSum, sub);
  std::vector<int> prefix(members.begin(),
                          members.begin() + sub.rank() + 1);
  const std::vector<long> sexpect = ref_reduce(Op::kSum, prefix, count);
  EXPECT_EQ(std::memcmp(out.data(), sexpect.data(), count * sizeof(long)), 0)
      << "sub-comm scan, world rank " << w.rank();
  h = fnv_bytes(h, out.data(), count * sizeof(long));
  // The sub-comms consumed different tag sequences; a world collective still
  // matches up (the one-tag-per-call audit).
  std::vector<int> all_world(static_cast<std::size_t>(n));
  std::iota(all_world.begin(), all_world.end(), 0);
  mpi.allreduce(in.data(), out.data(), count, Datatype::kLong, Op::kMat2x2, w);
  const std::vector<long> wexpect = ref_reduce(Op::kMat2x2, all_world, count);
  EXPECT_EQ(std::memcmp(out.data(), wexpect.data(), count * sizeof(long)), 0)
      << "world allreduce after split, world rank " << w.rank();
  h = fnv_bytes(h, out.data(), count * sizeof(long));
}

TEST_P(CollMatrix, Bcast) {
  check({"bcast=binomial", "bcast=pipelined", "bcast=scatter_allgather", "bcast=nic",
         "bcast=in_network", "all=auto"},
        bcast_workload);
}

TEST_P(CollMatrix, AllreduceAndReduce) {
  check({"allreduce=reduce_bcast", "allreduce=recursive_doubling", "allreduce=rabenseifner",
         "allreduce=nic", "allreduce=in_network", "all=auto"},
        allreduce_workload);
}

TEST_P(CollMatrix, Alltoall) {
  check({"alltoall=pairwise", "alltoall=bruck", "all=auto"}, alltoall_workload);
}

TEST_P(CollMatrix, ReduceScatter) {
  check({"reduce_scatter=reduce_scatter", "reduce_scatter=recursive_halving", "all=auto"},
        reduce_scatter_workload);
}

TEST_P(CollMatrix, ScanAndExscan) {
  check({"scan=linear", "scan=binomial", "all=auto"}, scan_workload);
}

TEST_P(CollMatrix, SplitSubCommunicators) {
  check({"all=auto", "allreduce=rabenseifner,scan=binomial",
         "allreduce=recursive_doubling,scan=linear",
         "allreduce=in_network,scan=binomial"},
        split_workload);
}

// In-network cells keyed by topology: the combining tree's shape (radix,
// depth) differs per fabric, but the fixed child-port fold must keep every
// topology's digest identical to the SP multistage cell — and the engine
// must actually engage (stats, not just matching results).
TEST_P(CollMatrix, InNetworkBitIdenticalAcrossTopologies) {
  const int n = GetParam();
  std::uint64_t first = 0;
  bool have = false;
  for (const sim::TopologyKind topo :
       {sim::TopologyKind::kSpMultistage, sim::TopologyKind::kFatTree,
        sim::TopologyKind::kTorus3d, sim::TopologyKind::kDragonfly}) {
    sim::MachineConfig cfg;
    cfg.topology = topo;
    std::string err;
    ASSERT_TRUE(coll::apply_algo_spec(
        cfg, "bcast=in_network,allreduce=in_network,barrier=in_network", &err))
        << err;
    Machine m(cfg, n, Backend::kLapiEnhanced);
    std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(n), kFnvOffset);
    m.run([&](Mpi& mpi) {
      std::uint64_t h = kFnvOffset;
      mpi.barrier(mpi.world());
      allreduce_workload(mpi, h);
      bcast_workload(mpi, h);
      per_rank[static_cast<std::size_t>(mpi.world().rank())] = h;
    });
    if (n > 1) {
      EXPECT_GT(m.stats().innet_collectives, 0)
          << "engine never engaged on topology " << static_cast<int>(topo);
    }
    std::uint64_t all = kFnvOffset;
    for (std::uint64_t h : per_rank) all = (all ^ h) * kFnvPrime;
    if (!have) {
      first = all;
      have = true;
    } else {
      EXPECT_EQ(all, first) << "in_network digest diverges on topology "
                            << static_cast<int>(topo) << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CommSizes, CollMatrix, ::testing::Values(1, 2, 3, 5, 8, 13, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

// The auto selection table resolves by message and communicator size; the
// per-algorithm telemetry counters record what actually ran.
TEST(CollSelection, AutoPicksBySizeAndTelemetryCounts) {
  sim::MachineConfig cfg;
  cfg.telemetry_enabled = true;
  constexpr int kNodes = 16;
  Machine m(cfg, kNodes, Backend::kLapiEnhanced);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<double> big(6144);  // 48 KiB >= pipeline cutover, n >= 8
    mpi.bcast(big.data(), big.size(), Datatype::kDouble, 0, w);
    std::vector<double> small(16, 1.0);  // 128 B < cutover
    mpi.bcast(small.data(), small.size(), Datatype::kDouble, 0, w);
    std::vector<long> v(4096, 1), o(4096);  // 32 KiB >= Rabenseifner cutover
    mpi.allreduce(v.data(), o.data(), v.size(), Datatype::kLong, Op::kSum, w);
    long a = 1, b = 0;  // 8 B < cutover
    mpi.allreduce(&a, &b, 1, Datatype::kLong, Op::kSum, w);
    std::vector<int> s(kNodes * 8, 1), r(kNodes * 8);  // 32 B blocks <= Bruck max
    mpi.alltoall(s.data(), 8, r.data(), Datatype::kInt, w);
    std::vector<int> sbig(kNodes * 512, 1), rbig(kNodes * 512);  // 2 KiB blocks
    mpi.alltoall(sbig.data(), 512, rbig.data(), Datatype::kInt, w);
    std::vector<long> rs(kNodes * 256, 1), rout(256);  // 32 KiB total >= cutover
    mpi.reduce_scatter_block(rs.data(), rout.data(), 256, Datatype::kLong, Op::kSum, w);
    mpi.scan(&a, &b, 1, Datatype::kLong, Op::kSum, w);  // n > 2 -> binomial
  });
  const sim::Telemetry* t = m.telemetry();
  ASSERT_NE(t, nullptr);
  constexpr std::uint64_t kEach = kNodes;  // one invocation per rank
  const auto total = [&](sim::CollAlgo a) { return t->coll_count_total(a); };
  EXPECT_EQ(total(sim::CollAlgo::kBcastScatterAllgather), kEach);
  EXPECT_EQ(total(sim::CollAlgo::kBcastBinomial), kEach);
  EXPECT_EQ(total(sim::CollAlgo::kBcastPipelined), 0u);
  EXPECT_EQ(total(sim::CollAlgo::kAllreduceRabenseifner), kEach);
  EXPECT_EQ(total(sim::CollAlgo::kAllreduceRecursiveDoubling), kEach);
  EXPECT_EQ(total(sim::CollAlgo::kAlltoallBruck), kEach);
  EXPECT_EQ(total(sim::CollAlgo::kAlltoallPairwise), kEach);
  EXPECT_EQ(total(sim::CollAlgo::kReduceScatterRecursiveHalving), kEach);
  EXPECT_EQ(total(sim::CollAlgo::kScanBinomial), kEach);
}

TEST(CollSelection, AlgoSpecParsing) {
  sim::MachineConfig cfg;
  std::string err;
  EXPECT_TRUE(coll::apply_algo_spec(
      cfg, "bcast=pipelined,allreduce=rabenseifner,alltoall=bruck,scan=binomial", &err))
      << err;
  EXPECT_EQ(cfg.coll_bcast_algo, static_cast<int>(coll::BcastAlgo::kPipelined));
  EXPECT_EQ(cfg.coll_allreduce_algo, static_cast<int>(coll::AllreduceAlgo::kRabenseifner));
  EXPECT_EQ(cfg.coll_alltoall_algo, static_cast<int>(coll::AlltoallAlgo::kBruck));
  EXPECT_EQ(cfg.coll_scan_algo, static_cast<int>(coll::ScanAlgo::kBinomial));
  EXPECT_TRUE(coll::apply_algo_spec(cfg, "all=auto", &err)) << err;
  EXPECT_EQ(cfg.coll_bcast_algo, 0);
  EXPECT_EQ(cfg.coll_allreduce_algo, 0);
  EXPECT_FALSE(coll::apply_algo_spec(cfg, "bcast=unknown", &err));
  EXPECT_FALSE(coll::apply_algo_spec(cfg, "nonsense", &err));
  EXPECT_FALSE(coll::apply_algo_spec(cfg, "frobnicate=auto", &err));
}

}  // namespace
}  // namespace sp::mpi
