// Collective operations: correctness over varying communicator sizes, roots,
// counts and element types, plus communicator dup/split.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

struct CollParam {
  int nodes;
  Backend backend;
};

class Collectives : public ::testing::TestWithParam<CollParam> {
 protected:
  void run(const std::function<void(Mpi&)>& body) {
    MachineConfig cfg;
    Machine m(cfg, GetParam().nodes, GetParam().backend);
    m.run(body);
  }
  [[nodiscard]] int nodes() const { return GetParam().nodes; }
};

TEST_P(Collectives, BarrierSynchronises) {
  const int n = nodes();
  std::vector<double> exit_time(static_cast<std::size_t>(n));
  MachineConfig cfg;
  Machine m(cfg, n, GetParam().backend);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    mpi.compute((w.rank() + 1) * sim::kMs);  // staggered arrival
    mpi.barrier(w);
    exit_time[static_cast<std::size_t>(w.rank())] = mpi.wtime();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(exit_time[static_cast<std::size_t>(r)], n * 1e-3)
        << "rank " << r << " left the barrier before the slowest arrival";
  }
}

TEST_P(Collectives, BcastFromEveryRoot) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    for (int root = 0; root < w.size(); ++root) {
      std::vector<int> data(97, w.rank() == root ? root * 1000 : -1);
      mpi.bcast(data.data(), data.size(), Datatype::kInt, root, w);
      for (int x : data) ASSERT_EQ(x, root * 1000);
    }
  });
}

TEST_P(Collectives, ReduceSumToEveryRoot) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    for (int root = 0; root < n; ++root) {
      std::vector<long> mine(5);
      for (int k = 0; k < 5; ++k) mine[static_cast<std::size_t>(k)] = w.rank() + k;
      std::vector<long> out(5, -1);
      mpi.reduce(mine.data(), out.data(), 5, Datatype::kLong, Op::kSum, root, w);
      if (w.rank() == root) {
        for (int k = 0; k < 5; ++k) {
          EXPECT_EQ(out[static_cast<std::size_t>(k)], static_cast<long>(n) * (n - 1) / 2 + k * n);
        }
      }
    }
  });
}

TEST_P(Collectives, AllreduceMaxMinProd) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    int mine = w.rank() + 1;
    int mx = 0, mn = 0, pr = 0;
    mpi.allreduce(&mine, &mx, 1, Datatype::kInt, Op::kMax, w);
    mpi.allreduce(&mine, &mn, 1, Datatype::kInt, Op::kMin, w);
    mpi.allreduce(&mine, &pr, 1, Datatype::kInt, Op::kProd, w);
    EXPECT_EQ(mx, n);
    EXPECT_EQ(mn, 1);
    int fact = 1;
    for (int i = 1; i <= n; ++i) fact *= i;
    EXPECT_EQ(pr, fact);
  });
}

TEST_P(Collectives, AllreduceDoubleIsDeterministic) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    double mine = 1.0 / (w.rank() + 1);
    double a = 0, b = 0;
    mpi.allreduce(&mine, &a, 1, Datatype::kDouble, Op::kSum, w);
    mpi.allreduce(&mine, &b, 1, Datatype::kDouble, Op::kSum, w);
    EXPECT_EQ(a, b) << "fixed reduction order must give bit-identical results";
  });
}

TEST_P(Collectives, GatherScatterRoundTrip) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<int> mine(3, w.rank() * 10);
    std::vector<int> all(static_cast<std::size_t>(3 * n), -1);
    mpi.gather(mine.data(), 3, all.data(), Datatype::kInt, 0, w);
    if (w.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        for (int k = 0; k < 3; ++k) {
          ASSERT_EQ(all[static_cast<std::size_t>(r * 3 + k)], r * 10);
        }
      }
      for (auto& x : all) x += 1;
    }
    std::vector<int> back(3, -1);
    mpi.scatter(all.data(), 3, back.data(), Datatype::kInt, 0, w);
    for (int k = 0; k < 3; ++k) EXPECT_EQ(back[static_cast<std::size_t>(k)], w.rank() * 10 + 1);
  });
}

TEST_P(Collectives, AllgatherMatchesGatherBcast) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<long> mine(4);
    for (int k = 0; k < 4; ++k) mine[static_cast<std::size_t>(k)] = w.rank() * 100 + k;
    std::vector<long> all(static_cast<std::size_t>(4 * n), -1);
    mpi.allgather(mine.data(), 4, all.data(), Datatype::kLong, w);
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k < 4; ++k) {
        ASSERT_EQ(all[static_cast<std::size_t>(r * 4 + k)], r * 100 + k);
      }
    }
  });
}

TEST_P(Collectives, AlltoallPermutesBlocks) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<int> send(static_cast<std::size_t>(n) * 2), recv(static_cast<std::size_t>(n) * 2, -1);
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d * 2)] = w.rank() * 1000 + d;
      send[static_cast<std::size_t>(d * 2 + 1)] = -w.rank();
    }
    mpi.alltoall(send.data(), 2, recv.data(), Datatype::kInt, w);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s * 2)], s * 1000 + w.rank());
      ASSERT_EQ(recv[static_cast<std::size_t>(s * 2 + 1)], -s);
    }
  });
}

TEST_P(Collectives, AlltoallvVariableBlocks) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    const int me = w.rank();
    // Rank r sends (r + d + 1) ints to rank d.
    std::vector<std::size_t> scounts(static_cast<std::size_t>(n)), sdispls(static_cast<std::size_t>(n));
    std::vector<std::size_t> rcounts(static_cast<std::size_t>(n)), rdispls(static_cast<std::size_t>(n));
    std::size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < n; ++d) {
      scounts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(me + d + 1);
      sdispls[static_cast<std::size_t>(d)] = stotal;
      stotal += scounts[static_cast<std::size_t>(d)];
      rcounts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d + me + 1);
      rdispls[static_cast<std::size_t>(d)] = rtotal;
      rtotal += rcounts[static_cast<std::size_t>(d)];
    }
    std::vector<int> send(stotal), recv(rtotal, -1);
    for (int d = 0; d < n; ++d) {
      for (std::size_t k = 0; k < scounts[static_cast<std::size_t>(d)]; ++k) {
        send[sdispls[static_cast<std::size_t>(d)] + k] = me * 100 + d;
      }
    }
    mpi.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(), rcounts.data(),
                  rdispls.data(), Datatype::kInt, w);
    for (int s = 0; s < n; ++s) {
      for (std::size_t k = 0; k < rcounts[static_cast<std::size_t>(s)]; ++k) {
        ASSERT_EQ(recv[rdispls[static_cast<std::size_t>(s)] + k], s * 100 + me);
      }
    }
  });
}

TEST_P(Collectives, ReduceScatterBlock) {
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    std::vector<long> send(static_cast<std::size_t>(n) * 2);
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d * 2)] = d;
      send[static_cast<std::size_t>(d * 2 + 1)] = w.rank();
    }
    std::vector<long> out(2, -1);
    mpi.reduce_scatter_block(send.data(), out.data(), 2, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(out[0], static_cast<long>(w.rank()) * n);
    EXPECT_EQ(out[1], static_cast<long>(n) * (n - 1) / 2);
  });
}

TEST_P(Collectives, SplitEvenOddAndCommunicateWithin) {
  if (nodes() < 2) GTEST_SKIP();
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    Comm half = mpi.split(w, w.rank() % 2, w.rank());
    // Within each half, allreduce over the members' world ranks.
    long mine = w.rank();
    long sum = 0;
    mpi.allreduce(&mine, &sum, 1, Datatype::kLong, Op::kSum, half);
    long expect = 0;
    for (int r = w.rank() % 2; r < w.size(); r += 2) expect += r;
    EXPECT_EQ(sum, expect);
    // Messages in the split communicator must not leak into the world ctx.
    EXPECT_NE(half.ctx(), w.ctx());
  });
}

TEST_P(Collectives, DupIsolatesTraffic) {
  if (nodes() < 2) GTEST_SKIP();
  run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    Comm d = mpi.dup(w);
    // Same tag, same peer, two communicators: matching must respect ctx.
    if (w.rank() == 0) {
      int a = 1, b = 2;
      mpi.send(&a, 1, Datatype::kInt, 1, 5, d);
      mpi.send(&b, 1, Datatype::kInt, 1, 5, w);
    } else if (w.rank() == 1) {
      int from_world = 0, from_dup = 0;
      mpi.recv(&from_world, 1, Datatype::kInt, 0, 5, w);
      mpi.recv(&from_dup, 1, Datatype::kInt, 0, 5, d);
      EXPECT_EQ(from_world, 2);
      EXPECT_EQ(from_dup, 1);
    }
    mpi.barrier(w);
  });
}

std::string coll_name(const ::testing::TestParamInfo<CollParam>& info) {
  std::string b = info.param.backend == Backend::kNativePipes ? "Native" : "LapiEnh";
  return b + "_n" + std::to_string(info.param.nodes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Collectives,
                         ::testing::Values(CollParam{1, Backend::kLapiEnhanced},
                                           CollParam{2, Backend::kLapiEnhanced},
                                           CollParam{3, Backend::kLapiEnhanced},
                                           CollParam{4, Backend::kLapiEnhanced},
                                           CollParam{7, Backend::kLapiEnhanced},
                                           CollParam{8, Backend::kLapiEnhanced},
                                           CollParam{4, Backend::kNativePipes},
                                           CollParam{7, Backend::kNativePipes}),
                         coll_name);

}  // namespace
}  // namespace sp::mpi
