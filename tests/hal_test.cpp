// Unit tests for the HAL/adapter layer: framing, DMA pacing, the pinned
// send-buffer pool, and the interrupt controller with and without the native
// stack's hysteresis.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "hal/hal.hpp"

namespace sp::hal {
namespace {

using sim::MachineConfig;
using sim::NodeRuntime;
using sim::Simulator;
using sim::TimeNs;

struct Rig {
  explicit Rig(MachineConfig c = {}, int nodes = 2) : cfg(c), sim() {
    fabric = std::make_unique<net::SwitchFabric>(sim, cfg, nodes);
    for (int i = 0; i < nodes; ++i) {
      rts.push_back(std::make_unique<NodeRuntime>(sim, cfg, i));
      hals.push_back(std::make_unique<Hal>(*rts.back(), *fabric));
    }
  }
  MachineConfig cfg;
  Simulator sim;
  std::unique_ptr<net::SwitchFabric> fabric;
  std::vector<std::unique_ptr<NodeRuntime>> rts;
  std::vector<std::unique_ptr<Hal>> hals;
};

std::vector<std::byte> bytes(std::initializer_list<int> v) {
  std::vector<std::byte> out;
  for (int x : v) out.push_back(static_cast<std::byte>(x));
  return out;
}

TEST(Hal, RoundTripsPayloadAndProtocol) {
  Rig rig;
  std::vector<std::byte> got;
  int got_src = -1;
  rig.hals[1]->register_protocol(kProtoLapi, [&](int src, std::span<const std::byte> b) {
    got_src = src;
    got.assign(b.begin(), b.end());
  });
  rig.sim.at(0, [&] {
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1, 2, 3, 4})));
  });
  rig.sim.run();
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(got, bytes({1, 2, 3, 4}));
  EXPECT_EQ(rig.hals[0]->packets_sent(), 1);
  EXPECT_EQ(rig.hals[1]->packets_received(), 1);
}

TEST(Hal, TwoProtocolsAreDemultiplexed) {
  Rig rig;
  int lapi_got = 0, pipes_got = 0;
  rig.hals[1]->register_protocol(kProtoLapi, [&](int, std::span<const std::byte>) { ++lapi_got; });
  rig.hals[1]->register_protocol(kProtoPipes, [&](int, std::span<const std::byte>) { ++pipes_got; });
  rig.sim.at(0, [&] {
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1})));
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoPipes, bytes({2})));
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoPipes, bytes({3})));
  });
  rig.sim.run();
  EXPECT_EQ(lapi_got, 1);
  EXPECT_EQ(pipes_got, 2);
}

TEST(Hal, SendBufferPoolExhaustsAndRecovers) {
  MachineConfig cfg;
  cfg.hal_send_buffers = 4;
  Rig rig(cfg);
  rig.hals[1]->register_protocol(kProtoLapi, [](int, std::span<const std::byte>) {});
  int space_events = 0;
  bool refused_sent = false;
  rig.sim.at(0, [&] {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({i})));
    }
    EXPECT_FALSE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({9})))
        << "fifth packet must be refused: pool exhausted";
    EXPECT_EQ(rig.hals[0]->send_buffers_in_use(), 4);
    // One-shot waiter: fires once at the first freed buffer, at which point
    // the refused packet must go through.
    rig.hals[0]->wait_send_space([&] {
      ++space_events;
      refused_sent = rig.hals[0]->send_packet(1, kProtoLapi, bytes({9}));
    });
  });
  rig.sim.run();
  EXPECT_EQ(rig.hals[0]->send_buffers_in_use(), 0);
  EXPECT_EQ(space_events, 1) << "one-shot waiters fire exactly once";
  EXPECT_TRUE(refused_sent);
  EXPECT_EQ(rig.hals[0]->packets_sent(), 5);
}

TEST(Hal, SendSpaceWaitersAreNotStarvedUnderBackpressure) {
  // Two upper layers compete for a tiny send-buffer pool. Each sends as much
  // as it can, re-arming a one-shot waiter whenever it is refused — the exact
  // pattern ReliableLink and Pipes use. Swap-and-drain semantics must let
  // both complete: a re-armed waiter lands on the *next* round's list instead
  // of being swept again (and possibly monopolizing the pool) in this one.
  MachineConfig cfg;
  cfg.hal_send_buffers = 2;
  Rig rig(cfg);
  int received = 0;
  rig.hals[1]->register_protocol(kProtoLapi, [&](int, std::span<const std::byte>) { ++received; });
  rig.hals[1]->register_protocol(kProtoPipes, [&](int, std::span<const std::byte>) { ++received; });

  struct Sender {
    Hal* hal;
    ProtoId proto;
    int remaining;
    int sent = 0;
    void drive() {
      while (remaining > 0) {
        std::byte b{static_cast<unsigned char>(sent)};
        if (!hal->send_packet(1, proto, std::span<const std::byte>{&b, 1})) {
          hal->wait_send_space([this] { drive(); });
          return;
        }
        --remaining;
        ++sent;
      }
    }
  };
  Sender a{rig.hals[0].get(), kProtoLapi, 16};
  Sender b{rig.hals[0].get(), kProtoPipes, 16};
  rig.sim.at(0, [&] {
    a.drive();
    b.drive();
  });
  rig.sim.run();
  EXPECT_EQ(a.sent, 16) << "first sender must finish";
  EXPECT_EQ(b.sent, 16) << "second sender must not be starved by the first";
  EXPECT_EQ(received, 32);
}

TEST(Hal, WaiterRegisteredDuringDrainDefersToNextFreedBuffer) {
  MachineConfig cfg;
  cfg.hal_send_buffers = 1;
  Rig rig(cfg);
  rig.hals[1]->register_protocol(kProtoLapi, [](int, std::span<const std::byte>) {});
  std::vector<int> fired;  // which wakeup each waiter saw
  rig.sim.at(0, [&] {
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1})));
    rig.hals[0]->wait_send_space([&] {
      fired.push_back(1);
      // Keep the pool full and re-arm: must NOT run again in this drain.
      ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({2})));
      rig.hals[0]->wait_send_space([&] { fired.push_back(2); });
    });
  });
  rig.sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2) << "re-armed waiter fires on the next freed buffer, not recursively";
}

TEST(Hal, DmaSerializesInjections) {
  MachineConfig cfg;
  cfg.adapter_packet_setup_ns = 1000;
  cfg.adapter_ns_per_byte = 0.0;
  cfg.hal_per_packet_cpu_ns = 0;
  cfg.hop_latency_ns = 0;
  cfg.link_ns_per_byte = 0.0;
  Rig rig(cfg);
  std::vector<TimeNs> arrivals;
  rig.hals[1]->register_protocol(kProtoLapi,
                                 [&](int, std::span<const std::byte>) { arrivals.push_back(rig.sim.now()); });
  rig.sim.at(0, [&] {
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1})));
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({2})));
  });
  rig.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Send DMA engine: injections 1000ns apart; receive DMA adds 1000 each.
  EXPECT_EQ(arrivals[1] - arrivals[0], 1000);
}

TEST(Hal, PollingModeDeliversWithoutInterrupts) {
  Rig rig;
  int got = 0;
  rig.hals[1]->register_protocol(kProtoLapi, [&](int, std::span<const std::byte>) { ++got; });
  rig.sim.at(0, [&] { ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1}))); });
  rig.sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rig.hals[1]->interrupts_taken(), 0);
}

TEST(Hal, InterruptModeTakesInterruptAndDefersVisibility) {
  MachineConfig cfg;
  Rig rig(cfg);
  rig.hals[1]->set_interrupt_mode(true);
  TimeNs delivered_at = -1, visible_at = -1;
  rig.hals[1]->register_protocol(kProtoLapi, [&](int, std::span<const std::byte>) {
    delivered_at = rig.sim.now();
    rig.rts[1]->publish([&] { visible_at = rig.sim.now(); });
  });
  rig.sim.at(0, [&] { ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1}))); });
  rig.sim.run();
  EXPECT_EQ(rig.hals[1]->interrupts_taken(), 1);
  ASSERT_GE(delivered_at, 0);
  // No hysteresis configured off this path: visibility right at delivery.
  EXPECT_EQ(visible_at, delivered_at);
}

TEST(Hal, HysteresisDelaysVisibilityUntilHandlerExit) {
  MachineConfig cfg;
  cfg.interrupt_hysteresis_ns = 50'000;
  Rig rig(cfg);
  rig.hals[1]->set_interrupt_mode(true);
  rig.hals[1]->set_hysteresis_enabled(true);
  TimeNs delivered_at = -1, visible_at = -1;
  rig.hals[1]->register_protocol(kProtoLapi, [&](int, std::span<const std::byte>) {
    delivered_at = rig.sim.now();
    rig.rts[1]->publish([&] { visible_at = rig.sim.now(); });
  });
  rig.sim.at(0, [&] { ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1}))); });
  rig.sim.run();
  ASSERT_GE(delivered_at, 0);
  EXPECT_GE(visible_at - delivered_at, 50'000)
      << "completion must stay invisible through the hysteresis busy-wait";
}

TEST(Hal, HysteresisBatchesSubsequentPackets) {
  MachineConfig cfg;
  cfg.interrupt_hysteresis_ns = 200'000;
  Rig rig(cfg);
  rig.hals[1]->set_interrupt_mode(true);
  rig.hals[1]->set_hysteresis_enabled(true);
  int got = 0;
  rig.hals[1]->register_protocol(kProtoLapi, [&](int, std::span<const std::byte>) { ++got; });
  rig.sim.at(0, [&] { ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1}))); });
  // Arrives well inside the first hysteresis window.
  rig.sim.at(100'000, [&] { ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({2}))); });
  rig.sim.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(rig.hals[1]->interrupts_taken(), 1)
      << "second packet must be absorbed by the waiting handler, not a new interrupt";
}

TEST(Hal, ModeledBytesChargeTheWire) {
  MachineConfig cfg;
  cfg.adapter_packet_setup_ns = 0;
  cfg.adapter_ns_per_byte = 0.0;
  cfg.hal_per_packet_cpu_ns = 0;
  cfg.hop_latency_ns = 0;
  cfg.link_ns_per_byte = 10.0;
  Rig rig(cfg);
  std::vector<TimeNs> arrivals;
  rig.hals[1]->register_protocol(kProtoLapi,
                                 [&](int, std::span<const std::byte>) { arrivals.push_back(rig.sim.now()); });
  rig.sim.at(0, [&] {
    // Same real payload, but modeled as 100 bytes vs real (4 + header).
    ASSERT_TRUE(rig.hals[0]->send_packet(1, kProtoLapi, bytes({1, 2, 3, 4}), 100));
  });
  rig.sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], (100 + static_cast<TimeNs>(rig.cfg.hal_header_bytes)) * 10);
}

}  // namespace
}  // namespace sp::hal
