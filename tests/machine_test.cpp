// Machine-level tests: deadlock detection, error propagation, determinism,
// backend wiring (hysteresis only on the native stack) and statistics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

TEST(Machine, DetectsReceiveDeadlock) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  EXPECT_THROW(m.run([](Mpi& mpi) {
    if (mpi.world().rank() == 0) {
      int v;
      mpi.recv(&v, 1, Datatype::kInt, 1, 0, mpi.world());  // never sent
    }
  }),
               sim::DeadlockError);
}

TEST(Machine, DetectsCyclicSsendDeadlock) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kNativePipes);
  EXPECT_THROW(m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    // Both ranks ssend to each other first: classic head-to-head deadlock
    // (synchronous mode cannot complete without the matching receive).
    int v = 1, got = 0;
    mpi.ssend(&v, 1, Datatype::kInt, 1 - w.rank(), 0, w);
    mpi.recv(&got, 1, Datatype::kInt, 1 - w.rank(), 0, w);
  }),
               sim::DeadlockError);
}

TEST(Machine, PropagatesUserExceptions) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  EXPECT_THROW(m.run([](Mpi& mpi) {
    if (mpi.world().rank() == 1) throw std::runtime_error("user bug");
    // Rank 0 blocks forever; the user error must win over deadlock report.
    int v;
    mpi.recv(&v, 1, Datatype::kInt, 1, 0, mpi.world());
  }),
               std::runtime_error);
}

TEST(Machine, HysteresisOnlyOnNativeBackend) {
  MachineConfig cfg;
  double elapsed_us[2] = {0, 0};
  int idx = 0;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced}) {
    Machine m(cfg, 2, b);
    m.run([&](Mpi& mpi) {
      Comm& w = mpi.world();
      mpi.set_interrupt_mode(true);
      int v = 1;
      if (w.rank() == 0) {
        mpi.send(&v, 1, Datatype::kInt, 1, 0, w);
        mpi.recv(&v, 1, Datatype::kInt, 1, 0, w);
      } else {
        mpi.recv(&v, 1, Datatype::kInt, 0, 0, w);
        mpi.send(&v, 1, Datatype::kInt, 0, 0, w);
      }
    });
    elapsed_us[idx++] = sim::to_us(m.elapsed());
  }
  // At least a substantial fraction of one hysteresis window separates the
  // stacks (ack-opened windows absorb part of the penalty by design).
  EXPECT_GT(elapsed_us[0], elapsed_us[1] + 0.5 * sim::to_us(cfg.interrupt_hysteresis_ns))
      << "hysteresis must slow the native stack's interrupt path";
}

TEST(Machine, ElapsedIsZeroBeforeAndMonotoneAfterRuns) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  EXPECT_EQ(m.elapsed(), 0);
  m.run([](Mpi& mpi) { mpi.barrier(mpi.world()); });
  const auto t1 = m.elapsed();
  EXPECT_GT(t1, 0);
  m.run([](Mpi& mpi) { mpi.barrier(mpi.world()); });
  EXPECT_GT(m.elapsed(), t1) << "a second run continues simulated time";
}

TEST(Machine, SingleTaskMachineWorks) {
  MachineConfig cfg;
  Machine m(cfg, 1, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    EXPECT_EQ(w.size(), 1);
    mpi.barrier(w);
    long v = 42, out = 0;
    mpi.allreduce(&v, &out, 1, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(out, 42);
    // Self-send through the loopback fabric path.
    int x = 7, y = 0;
    Request r = mpi.irecv(&y, 1, Datatype::kInt, 0, 0, w);
    mpi.send(&x, 1, Datatype::kInt, 0, 0, w);
    mpi.wait(r);
    EXPECT_EQ(y, 7);
  });
}

TEST(Machine, LargeMachineSixteenTasks) {
  MachineConfig cfg;
  Machine m(cfg, 16, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    long mine = w.rank(), sum = 0;
    mpi.allreduce(&mine, &sum, 1, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(sum, 16 * 15 / 2);
  });
}

TEST(Machine, StatisticsAreExposed) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<char> v(100);
    if (w.rank() == 0) {
      mpi.send(v.data(), v.size(), Datatype::kByte, 1, 0, w);
    } else {
      mpi.recv(v.data(), v.size(), Datatype::kByte, 0, 0, w);
    }
  });
  EXPECT_GT(m.hal(0).packets_sent(), 0);
  EXPECT_GT(m.hal(1).packets_received(), 0);
  EXPECT_GE(m.channel(0).eager_sends(), 1);
  EXPECT_GT(m.fabric().packets_delivered(), 0);
  EXPECT_GT(m.lapi(0).messages_sent(), 0);
  EXPECT_GT(m.lapi(1).header_handlers_run(), 0);
}

TEST(Machine, TestbedPresetsDiffer) {
  // The TB3/P2SC generation has a faster adapter path than TBMX (§1 lists
  // both node types); bandwidth must reflect it.
  auto bw = [](const MachineConfig& cfg) {
    Machine m(cfg, 2, Backend::kLapiEnhanced);
    m.run([](Mpi& mpi) {
      Comm& w = mpi.world();
      std::vector<std::byte> buf(1 << 16);
      if (w.rank() == 0) {
        for (int i = 0; i < 8; ++i) {
          mpi.send(buf.data(), buf.size(), Datatype::kByte, 1, 0, w);
        }
      } else {
        for (int i = 0; i < 8; ++i) {
          mpi.recv(buf.data(), buf.size(), Datatype::kByte, 0, 0, w);
        }
      }
    });
    return sim::to_us(m.elapsed());
  };
  const double tbmx = bw(MachineConfig::tbmx_332());
  const double tb3 = bw(MachineConfig::tb3_p2sc());
  EXPECT_LT(tb3, tbmx * 0.8) << "TB3 must move bulk data distinctly faster";
}

TEST(Machine, ConfigIsHonoured) {
  MachineConfig cfg;
  cfg.eager_limit = 128;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<char> v(1024);
    if (w.rank() == 0) {
      mpi.send(v.data(), v.size(), Datatype::kByte, 1, 0, w);
    } else {
      mpi.recv(v.data(), v.size(), Datatype::kByte, 0, 0, w);
    }
  });
  EXPECT_EQ(m.channel(0).rendezvous_sends(), 1)
      << "1 KiB with a 128 B eager limit must rendezvous";
  EXPECT_EQ(m.config().eager_limit, 128u);
}

}  // namespace
}  // namespace sp::mpi
