// Telemetry subsystem tests (DESIGN.md §10): ring-buffer bounds, histogram
// bucketing, exporter output, live snapshots — and the two determinism
// contracts: an enabled-telemetry run is bit-reproducible (digest-pinned),
// and enabling telemetry does not perturb the legacy trace timeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "sim/telemetry.hpp"
#include "test_harness.hpp"

namespace {

using sp::mpi::Backend;
using sp::mpi::Machine;
using sp::mpi::Mpi;
using sp::sim::Ev;
using sp::sim::Hist;
using sp::sim::MachineConfig;
using sp::sim::Telemetry;
using sp::sim::TraceRecord;

// --- ring buffer ----------------------------------------------------------

TEST(TelemetryRing, WrapsOverwritingOldestAndCountsDrops) {
  // 64 bytes = room for exactly two 32-byte records.
  Telemetry t(1, 64);
  ASSERT_EQ(t.ring_capacity(), 2u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    t.emit(static_cast<sp::sim::TimeNs>(i * 10), 0, Ev::kPacketInject, i, 0);
  }
  EXPECT_EQ(t.records_emitted(), 5u);
  EXPECT_EQ(t.records_dropped(), 3u);
  EXPECT_EQ(t.ring_bytes_in_use(), 64u);

  // The two newest records survive, oldest first.
  const std::vector<TraceRecord> recs = t.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].a0, 3u);
  EXPECT_EQ(recs[1].a0, 4u);
  EXPECT_LT(recs[0].t, recs[1].t);

  // Counters see every emission, dropped or not.
  EXPECT_EQ(t.counter(0, Ev::kPacketInject), 5u);
  EXPECT_EQ(t.counter_total(Ev::kPacketInject), 5u);
}

TEST(TelemetryRing, TinyByteBudgetStillHoldsOneRecord) {
  Telemetry t(1, 1);  // sub-record budget rounds up to one slot
  ASSERT_EQ(t.ring_capacity(), 1u);
  t.emit(1, 0, Ev::kMatch, 7, 1);
  t.emit(2, 0, Ev::kMatch, 8, 0);
  EXPECT_EQ(t.records_dropped(), 1u);
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].a0, 8u);
}

// --- histograms -----------------------------------------------------------

TEST(TelemetryHist, BucketBoundaries) {
  using sp::sim::hist_bucket;
  using sp::sim::hist_bucket_floor;
  EXPECT_EQ(hist_bucket(0), 0);
  EXPECT_EQ(hist_bucket(1), 1);
  EXPECT_EQ(hist_bucket(2), 2);
  EXPECT_EQ(hist_bucket(3), 2);
  EXPECT_EQ(hist_bucket(4), 3);
  EXPECT_EQ(hist_bucket(1023), 10);
  EXPECT_EQ(hist_bucket(1024), 11);
  // Saturation: everything >= 2^46 lands in the last bucket.
  EXPECT_EQ(hist_bucket(std::uint64_t{1} << 46), sp::sim::kHistBuckets - 1);
  EXPECT_EQ(hist_bucket(~std::uint64_t{0}), sp::sim::kHistBuckets - 1);

  EXPECT_EQ(hist_bucket_floor(0), 0u);
  EXPECT_EQ(hist_bucket_floor(1), 1u);
  EXPECT_EQ(hist_bucket_floor(11), 1024u);
  // Floors and buckets agree: every floor maps into its own bucket.
  for (int b = 0; b < sp::sim::kHistBuckets; ++b) {
    EXPECT_EQ(hist_bucket(hist_bucket_floor(b)), b) << "bucket " << b;
  }
}

TEST(TelemetryHist, RecordAccumulatesPerNode) {
  Telemetry t(2, 1024);
  t.record_hist(Hist::kMsgBytes, 0, 100);  // bucket 7 ([64, 128))
  t.record_hist(Hist::kMsgBytes, 0, 100);
  t.record_hist(Hist::kMsgBytes, 1, 100);
  EXPECT_EQ(t.hist_count(0, Hist::kMsgBytes, 7), 2u);
  EXPECT_EQ(t.hist_count(1, Hist::kMsgBytes, 7), 1u);
  EXPECT_EQ(t.hist_count(0, Hist::kMsgBytes, 8), 0u);
}

// --- full-machine runs ----------------------------------------------------

/// Fig. 11-style ping-pong with telemetry (and legacy tracing) enabled.
std::unique_ptr<Machine> traced_pingpong(bool telemetry) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  cfg.telemetry_enabled = telemetry;
  return sp::test::run_pingpong(cfg, Backend::kLapiEnhanced, 16, 8 * 1024);
}

/// FNV-1a over the legacy trace (shared with determinism_test.cpp).
using sp::test::trace_digest;

// Golden digest of the enabled-telemetry ping-pong timeline. Re-capture via
// --gtest_filter=TelemetryDeterminism.* if a cost-model change legitimately
// moves timestamps (the failure message logs the measured value).
constexpr std::uint64_t kGoldenTelemetryPingPong = 0x8bcf28eca28982e2ULL;

TEST(TelemetryDeterminism, TracedRunIsReproducible) {
  auto m1 = traced_pingpong(true);
  auto m2 = traced_pingpong(true);
  const std::uint64_t first = m1->telemetry()->digest();
  const std::uint64_t second = m2->telemetry()->digest();
  SCOPED_TRACE(testing::Message() << "digest=0x" << std::hex << first);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, kGoldenTelemetryPingPong)
      << "telemetry timeline changed: 0x" << std::hex << first;
}

TEST(TelemetryDeterminism, EnablingTelemetryDoesNotPerturbLegacyTrace) {
  // The whole point of the one-branch discipline: the simulated event order
  // (observed through the legacy tracer) is identical with telemetry on/off.
  auto traced = traced_pingpong(true);
  auto untraced = traced_pingpong(false);
  EXPECT_EQ(untraced->telemetry(), nullptr);
  EXPECT_EQ(trace_digest(*traced->trace()), trace_digest(*untraced->trace()));
  EXPECT_EQ(traced->elapsed(), untraced->elapsed());
}

TEST(TelemetryMachine, CountersMatchMachineStats) {
  auto m = traced_pingpong(true);
  const Telemetry& t = *m->telemetry();
  const auto s = m->stats();
  // Adapter sends and eager sends are counted by both systems.
  EXPECT_EQ(t.counter_total(Ev::kDmaStart),
            static_cast<std::uint64_t>(s.packets_sent));
  EXPECT_EQ(t.counter_total(Ev::kEagerSend),
            static_cast<std::uint64_t>(s.eager_sends));
  // 16 blocking sends + 16 blocking recvs per rank -> 64 enter/exit pairs.
  EXPECT_EQ(t.counter_total(Ev::kMpiEnter), 64u);
  EXPECT_EQ(t.counter_total(Ev::kMpiEnter), t.counter_total(Ev::kMpiExit));
  EXPECT_EQ(t.counter_total(Ev::kRankStart), 2u);
  EXPECT_EQ(t.counter_total(Ev::kRankFinish), 2u);
}

// --- exporters ------------------------------------------------------------

std::string export_to_string(const Telemetry& t, void (Telemetry::*fn)(std::FILE*) const) {
  std::FILE* f = std::tmpfile();
  (t.*fn)(f);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::rewind(f);
  std::string s(static_cast<std::size_t>(len), '\0');
  EXPECT_EQ(std::fread(s.data(), 1, s.size(), f), s.size());
  std::fclose(f);
  return s;
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TelemetryExport, ChromeJsonShape) {
  auto m = traced_pingpong(true);
  const std::string json = export_to_string(*m->telemetry(), &Telemetry::export_chrome_json);

  // Envelope and required metadata.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  ASSERT_GE(json.size(), 3u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"node0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"node1\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"mpi\"}"), std::string::npos);

  // MPI calls become balanced B/E span pairs named after the call.
  EXPECT_NE(json.find("\"name\":\"MPI_Send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"MPI_Recv\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_GT(count_occurrences(json, "\"ph\":\"i\""), 0u);

  // No dangling comma before the closing bracket, and braces balance.
  EXPECT_EQ(json.find(",\n]"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
}

TEST(TelemetryExport, CsvHeaderAndWidth) {
  auto m = traced_pingpong(true);
  const std::string csv = export_to_string(*m->telemetry(), &Telemetry::export_csv);
  EXPECT_EQ(csv.rfind("t_ns,node,layer,event,a0,a1\n", 0), 0u);
  // Every line has exactly five commas.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < csv.size()) {
    const std::size_t end = csv.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(count_occurrences(csv.substr(start, end - start), ","), 5u);
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, m->telemetry()->records().size() + 1);
}

// --- live sampling --------------------------------------------------------

TEST(TelemetrySnapshot, DeltaAttributesPhaseActivity) {
  MachineConfig cfg;
  cfg.telemetry_enabled = true;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  Telemetry::Snapshot mid;
  m.run([&](Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(1024);
    const int peer = 1 - w.rank();
    // Phase 1: four exchanges.
    for (int i = 0; i < 4; ++i) {
      if (w.rank() == 0) {
        mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
        mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
      } else {
        mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
        mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
      }
    }
    if (w.rank() == 0) mid = m.telemetry()->snapshot();
    // Phase 2: twelve more exchanges.
    for (int i = 0; i < 12; ++i) {
      if (w.rank() == 0) {
        mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
        mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
      } else {
        mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
        mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
      }
    }
  });
  const Telemetry::Snapshot end = m.telemetry()->snapshot();
  const Telemetry::Snapshot phase2 = Telemetry::delta(end, mid);

  const auto send_idx = static_cast<std::size_t>(Ev::kEagerSend);
  auto sends = [&](const Telemetry::Snapshot& s, int node) {
    return s.counters[static_cast<std::size_t>(node) * sp::sim::kNumEvents + send_idx];
  };
  // Each rank did 4 sends before the snapshot and 12 after.
  EXPECT_EQ(sends(mid, 0), 4u);
  EXPECT_EQ(sends(phase2, 0), 12u);
  EXPECT_EQ(sends(phase2, 0) + sends(phase2, 1), 24u);
  EXPECT_EQ(phase2.emitted, end.emitted - mid.emitted);
}

TEST(TelemetrySnapshot, MachineStatsDelta) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  Machine::Stats mid{};
  m.run([&](Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(1024);
    const int peer = 1 - w.rank();
    if (w.rank() == 0) {
      mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
    } else {
      mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
    }
    mpi.barrier(w);
    if (w.rank() == 0) mid = m.stats();
    for (int i = 0; i < 3; ++i) {
      if (w.rank() == 0) {
        mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
      } else {
        mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, peer, 0, w);
      }
    }
  });
  const Machine::Stats total = m.stats();
  const Machine::Stats phase2 = m.stats_since(mid);
  EXPECT_EQ(phase2.eager_sends, 3);
  EXPECT_EQ(phase2.eager_sends + mid.eager_sends, total.eager_sends);
  EXPECT_GT(phase2.packets_sent, 0);
  EXPECT_EQ(Machine::stats_delta(total, total).packets_sent, 0);
}

// --- bounded memory under load --------------------------------------------

TEST(TelemetryRing, ByteCapHoldsUnderMachineTraffic) {
  MachineConfig cfg;
  cfg.telemetry_enabled = true;
  cfg.telemetry_ring_bytes = 4096;  // 128 records — far fewer than emitted
  cfg.telemetry_ring_bytes_per_node = 0;  // exact cap: no node-count floor
  Machine m(cfg, 4, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    std::vector<double> src(64 * n, 1.0), dst(64 * n, 0.0);
    for (int r = 0; r < 8; ++r) {
      mpi.alltoall(src.data(), 64, dst.data(), sp::mpi::Datatype::kDouble, w);
    }
  });
  const Telemetry& t = *m.telemetry();
  EXPECT_LE(t.ring_bytes_in_use(), cfg.telemetry_ring_bytes);
  EXPECT_EQ(t.ring_capacity(), cfg.telemetry_ring_bytes / sizeof(TraceRecord));
  EXPECT_GT(t.records_dropped(), 0u);
  EXPECT_EQ(t.records_emitted(),
            t.records_dropped() + t.records().size());
}

// --- legacy trace cap (the unbounded-growth bugfix) -------------------------

TEST(LegacyTraceCap, MachineHonorsConfiguredCap) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_max_events = 16;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(4096);
    for (int i = 0; i < 8; ++i) {
      if (w.rank() == 0) {
        mpi.send(buf.data(), buf.size(), sp::mpi::Datatype::kByte, 1, 0, w);
      } else {
        mpi.recv(buf.data(), buf.size(), sp::mpi::Datatype::kByte, 0, 0, w);
      }
    }
  });
  EXPECT_EQ(m.trace()->events().size(), 16u);
  EXPECT_GT(m.trace()->dropped(), 0u);
}

}  // namespace
