// Topology zoo tests (DESIGN.md §13): routing invariants of every fabric,
// spray coverage, per-topology determinism, delivery batching, and the
// topology-keyed collective selection table.
//
// Routing invariants checked for each topology x node count:
//  * every (src, dst, r) expansion is a chain through the link graph — the
//    first link leaves src, consecutive links share a vertex, the last link
//    enters dst — and uses each link at most once (loop-free);
//  * paths are minimal, or one of the topology's allowed non-minimal shapes
//    (dragonfly Valiant detours);
//  * the round-robin spray visits every advertised route of a pair.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "mpi/coll.hpp"
#include "mpi/machine.hpp"
#include "net/switch_fabric.hpp"
#include "net/topology.hpp"
#include "test_harness.hpp"

namespace sp::net {
namespace {

using mpi::Backend;
using mpi::Machine;
using mpi::Mpi;
using sim::MachineConfig;
using sim::Simulator;
using sim::TopologyKind;

constexpr TopologyKind kAllKinds[] = {TopologyKind::kSpMultistage, TopologyKind::kFatTree,
                                      TopologyKind::kTorus2d, TopologyKind::kTorus3d,
                                      TopologyKind::kDragonfly};

MachineConfig config_for(TopologyKind kind) {
  MachineConfig cfg;
  cfg.topology = kind;
  return cfg;
}

/// Explicit torus dims per test size so minimality checks know the shape
/// (the auto-factorizer would pick the same values; pinning decouples the
/// test from it).
std::array<int, 3> torus_dims(TopologyKind kind, int nodes) {
  if (kind == TopologyKind::kTorus2d) return nodes == 8 ? std::array{4, 2, 1}
                                                        : std::array{8, 8, 1};
  return nodes == 8 ? std::array{2, 2, 2} : std::array{4, 4, 4};
}

MachineConfig config_for(TopologyKind kind, int nodes) {
  MachineConfig cfg = config_for(kind);
  if (kind == TopologyKind::kTorus2d || kind == TopologyKind::kTorus3d) {
    const auto d = torus_dims(kind, nodes);
    cfg.torus_x = d[0];
    cfg.torus_y = d[1];
    cfg.torus_z = d[2];
  }
  return cfg;
}

/// Walk every route of (src, dst) and check the chain/loop-free invariants.
/// Returns the hop counts seen (for per-topology minimality checks).
std::vector<int> check_pair_routes(const Topology& topo, int src, int dst) {
  std::vector<int> hop_counts;
  const int nroutes = topo.route_count(src, dst);
  EXPECT_GE(nroutes, 1);
  for (int r = 0; r < nroutes; ++r) {
    RouteBuf rb;
    topo.route(src, dst, r, rb);
    EXPECT_GE(rb.n, 1) << topo.name() << " (" << src << "," << dst << ") r=" << r;
    EXPECT_LE(rb.n, RouteBuf::kMaxHops);
    std::set<std::uint32_t> used;
    int at = src;
    for (int i = 0; i < rb.n; ++i) {
      const std::uint32_t link = rb.hops[i].link;
      EXPECT_LT(link, static_cast<std::uint32_t>(topo.num_links()))
          << topo.name() << " (" << src << "," << dst << ") r=" << r << " hop " << i;
      if (link >= static_cast<std::uint32_t>(topo.num_links())) break;
      EXPECT_TRUE(used.insert(link).second)
          << topo.name() << " reuses link " << link << " on (" << src << "," << dst
          << ") r=" << r;
      const LinkEnds ends = topo.link_ends(link);
      EXPECT_EQ(ends.from, at) << topo.name() << " (" << src << "," << dst << ") r=" << r
                               << " hop " << i << " does not chain";
      EXPECT_GE(ends.to, 0);
      EXPECT_LT(ends.to, topo.num_vertices());
      at = ends.to;
    }
    EXPECT_EQ(at, dst) << topo.name() << " (" << src << "," << dst << ") r=" << r
                       << " does not terminate at the destination";
    hop_counts.push_back(rb.n);
  }
  return hop_counts;
}

/// Minimal torus hop count: per-dimension shortest wrap distances (plus
/// nothing else — torus nodes are their own routers).
int torus_min_hops(int src, int dst, int dx, int dy, int dz) {
  const int cs[3] = {src % dx, (src / dx) % dy, src / (dx * dy)};
  const int cd[3] = {dst % dx, (dst / dx) % dy, dst / (dx * dy)};
  const int dims[3] = {dx, dy, dz};
  int hops = 0;
  for (int d = 0; d < 3; ++d) {
    const int fwd = ((cd[d] - cs[d]) % dims[d] + dims[d]) % dims[d];
    hops += std::min(fwd, dims[d] - fwd);
  }
  return hops;
}

class TopologyRouting : public ::testing::TestWithParam<std::tuple<TopologyKind, int>> {};

TEST_P(TopologyRouting, RoutesAreValidChains) {
  const auto [kind, nodes] = GetParam();
  const MachineConfig cfg = config_for(kind);
  const auto topo = make_topology(cfg, nodes);
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->kind(), kind);
  EXPECT_EQ(topo->num_nodes(), nodes);
  // All pairs at 8 nodes; a stride-derived sample at 64 keeps it fast while
  // still crossing every leaf/pod/group boundary.
  const int stride = nodes <= 8 ? 1 : 7;
  for (int s = 0; s < nodes; ++s) {
    for (int d = (s + 1) % stride; d < nodes; d += stride) {
      if (s == d) continue;
      check_pair_routes(*topo, s, d);
    }
  }
}

TEST_P(TopologyRouting, PathsAreMinimalOrAllowedDetours) {
  const auto [kind, nodes] = GetParam();
  const MachineConfig cfg = config_for(kind, nodes);
  const auto topo = make_topology(cfg, nodes);
  for (int s = 0; s < nodes; ++s) {
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      const std::vector<int> hops = check_pair_routes(*topo, s, d);
      switch (kind) {
        case TopologyKind::kSpMultistage:
          // Always node-leaf-spine-leaf-node, even within a leaf (the SP
          // switch has no leaf turnaround).
          for (int h : hops) EXPECT_EQ(h, 4);
          break;
        case TopologyKind::kFatTree:
          // Host up/down (2), + leaf turnaround (2), + core crossing (2).
          for (int h : hops) {
            EXPECT_TRUE(h == 2 || h == 4 || h == 6) << "fattree hops=" << h;
          }
          break;
        case TopologyKind::kTorus2d:
        case TopologyKind::kTorus3d: {
          // Every route is a minimal dimension-order path: hop count equals
          // the sum of per-dimension shortest wrap distances.
          const auto dims = torus_dims(kind, nodes);
          for (int h : hops) EXPECT_EQ(h, torus_min_hops(s, d, dims[0], dims[1], dims[2]));
          break;
        }
        case TopologyKind::kDragonfly:
          // Route 0 minimal (host-local-global-local-host at most); Valiant
          // detours add one extra group crossing.
          EXPECT_LE(hops[0], 5);
          for (std::size_t i = 1; i < hops.size(); ++i) EXPECT_LE(hops[i], 7);
          break;
      }
    }
  }
}

TEST_P(TopologyRouting, SprayVisitsAllRoutes) {
  const auto [kind, nodes] = GetParam();
  Simulator sim;
  const MachineConfig cfg = config_for(kind);
  SwitchFabric fab(sim, cfg, nodes);
  std::set<int> seen;
  for (int i = 0; i < nodes; ++i) {
    fab.attach(i, [&seen](Packet&& p) { seen.insert(p.route); });
  }
  const int src = 0;
  const int dst = nodes - 1;
  const int nroutes = fab.route_count(src, dst);
  sim.at(0, [&] {
    for (int i = 0; i < 2 * nroutes; ++i) {
      Packet p;
      p.src = src;
      p.dst = dst;
      p.frame.assign(64, std::byte{0x5a});
      fab.inject(std::move(p));
    }
  });
  sim.run();
  EXPECT_EQ(static_cast<int>(seen.size()), nroutes)
      << topology_name(kind) << " spray must use every advertised route";
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, TopologyRouting,
    ::testing::Combine(::testing::ValuesIn(kAllKinds), ::testing::Values(8, 64)),
    [](const auto& info) {
      return std::string(topology_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// --- fabric behavior on non-SP topologies ----------------------------------

TEST(TopologyFabric, BatchingDefaultsPerTopology) {
  Simulator sim;
  MachineConfig cfg;
  EXPECT_FALSE(SwitchFabric(sim, cfg, 4).delivery_batching())
      << "SP multistage must keep unbatched delivery (golden digests)";
  cfg.topology = TopologyKind::kFatTree;
  EXPECT_TRUE(SwitchFabric(sim, cfg, 4).delivery_batching());
  cfg.fabric_delivery_batching = 0;
  EXPECT_FALSE(SwitchFabric(sim, cfg, 4).delivery_batching());
  cfg.topology = TopologyKind::kSpMultistage;
  cfg.fabric_delivery_batching = 1;
  EXPECT_TRUE(SwitchFabric(sim, cfg, 4).delivery_batching());
}

TEST(TopologyFabric, BatchedDeliveryMatchesDirectOrderPerDestination) {
  // The per-destination heap must deliver in exactly the (time, inject seq)
  // order the direct mode produces for that destination.
  auto arrivals = [](int batching) {
    Simulator sim;
    MachineConfig cfg;
    cfg.topology = TopologyKind::kTorus2d;
    cfg.fabric_delivery_batching = batching;
    cfg.route_skew_ns = 700;  // force cross-route reordering
    SwitchFabric fab(sim, cfg, 8);
    std::vector<std::pair<sim::TimeNs, int>> got;
    for (int i = 0; i < 8; ++i) {
      fab.attach(i, [&got, &sim](Packet&& p) {
        got.emplace_back(sim.now(), static_cast<int>(p.frame[0]));
      });
    }
    sim.at(0, [&] {
      for (int i = 0; i < 24; ++i) {
        Packet p;
        p.src = i % 3;
        p.dst = 5;
        p.frame.assign(256, std::byte{0});
        p.frame[0] = static_cast<std::byte>(i);
        fab.inject(std::move(p));
      }
    });
    sim.run();
    return got;
  };
  const auto direct = arrivals(0);
  const auto batched = arrivals(1);
  ASSERT_EQ(direct.size(), 24u);
  EXPECT_EQ(direct, batched);
}

TEST(TopologyFabric, GlobalLinkKnobsChargeExtraCost) {
  // Two dragonfly nodes in different groups must see the configured extra
  // global-link latency relative to an unscaled run.
  auto arrival = [](sim::TimeNs extra) {
    Simulator sim;
    MachineConfig cfg;
    cfg.topology = TopologyKind::kDragonfly;
    cfg.topo_global_extra_latency_ns = extra;
    SwitchFabric fab(sim, cfg, 32);  // two groups of 16
    sim::TimeNs at = -1;
    for (int i = 0; i < 32; ++i) {
      fab.attach(i, [&at, &sim](Packet&&) { at = sim.now(); });
    }
    sim.at(0, [&] {
      Packet p;
      p.src = 0;
      p.dst = 31;  // other group: exactly one global hop on the minimal route
      p.frame.assign(128, std::byte{0x11});
      fab.inject(std::move(p));
    });
    sim.run();
    return at;
  };
  EXPECT_EQ(arrival(10'000) - arrival(0), 10'000);
}

// --- per-topology determinism ----------------------------------------------

/// Run the alltoall storm twice on one topology and digest the telemetry
/// stream; both runs must agree bit-for-bit, and results must verify.
std::uint64_t storm_digest(TopologyKind kind, int nodes) {
  MachineConfig cfg = config_for(kind);
  cfg.telemetry_enabled = true;
  Machine m(cfg, nodes, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    std::vector<double> src(32 * n, 0.5), dst(32 * n, 0.0);
    for (int r = 0; r < 4; ++r) {
      mpi.alltoall(src.data(), 32, dst.data(), sp::mpi::Datatype::kDouble, w);
      for (double v : dst) {
        if (v != 0.5) std::abort();
      }
    }
  });
  return m.telemetry()->digest();
}

class TopologyDeterminism : public ::testing::TestWithParam<std::tuple<TopologyKind, int>> {};

TEST_P(TopologyDeterminism, RunTwiceDigestsAgree) {
  const auto [kind, nodes] = GetParam();
  const std::uint64_t first = storm_digest(kind, nodes);
  SCOPED_TRACE(testing::Message() << topology_name(kind) << " digest=0x" << std::hex << first);
  EXPECT_EQ(first, storm_digest(kind, nodes));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, TopologyDeterminism,
    ::testing::Combine(::testing::ValuesIn(kAllKinds), ::testing::Values(8, 64)),
    [](const auto& info) {
      return std::string(topology_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(TopologyMpi, ResultsIdenticalAcrossTopologies) {
  // Topology choice perturbs schedules, never results: an allreduce checksum
  // must match on every fabric.
  std::vector<double> ref;
  for (TopologyKind kind : kAllKinds) {
    MachineConfig cfg = config_for(kind);
    Machine m(cfg, 16, Backend::kLapiEnhanced);
    std::vector<double> out(256, 0.0);
    m.run([&out](Mpi& mpi) {
      auto& w = mpi.world();
      std::vector<double> in(256);
      for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = static_cast<double>(w.rank() + 1) * static_cast<double>(i % 17);
      }
      std::vector<double> local(256, 0.0);
      mpi.allreduce(in.data(), local.data(), 256, sp::mpi::Datatype::kDouble,
                    sp::mpi::Op::kSum, w);
      if (w.rank() == 0) out = local;
    });
    if (ref.empty()) {
      ref = out;
    } else {
      EXPECT_EQ(ref, out) << "allreduce result changed on " << topology_name(kind);
    }
  }
}

// --- topology-keyed collective selection -----------------------------------

TEST(TopologySelection, TorusPrefersPipelinedBcastEarlier) {
  MachineConfig sp_cfg;
  MachineConfig torus = config_for(TopologyKind::kTorus3d);
  // 48 KiB at 16 ranks: scatter-allgather on the crossbar, but the torus
  // halves the pipeline cutover and always streams the neighbor chain.
  EXPECT_EQ(mpi::coll::select_bcast(sp_cfg, 48 * 1024, 16),
            mpi::coll::BcastAlgo::kScatterAllgather);
  EXPECT_EQ(mpi::coll::select_bcast(torus, 48 * 1024, 16), mpi::coll::BcastAlgo::kPipelined);
  // 20 KiB sits under the SP cutover but above the torus's halved one.
  EXPECT_EQ(mpi::coll::select_bcast(sp_cfg, 20 * 1024, 16), mpi::coll::BcastAlgo::kBinomial);
  EXPECT_EQ(mpi::coll::select_bcast(torus, 20 * 1024, 16), mpi::coll::BcastAlgo::kPipelined);
}

TEST(TopologySelection, FatTreeLowersRabenseifnerCutover) {
  MachineConfig sp_cfg;
  MachineConfig ft = config_for(TopologyKind::kFatTree);
  EXPECT_EQ(mpi::coll::select_allreduce(sp_cfg, 12 * 1024, 16),
            mpi::coll::AllreduceAlgo::kRecursiveDoubling);
  EXPECT_EQ(mpi::coll::select_allreduce(ft, 12 * 1024, 16),
            mpi::coll::AllreduceAlgo::kRabenseifner);
}

TEST(TopologySelection, DragonflyRaisesBruckBlockCeiling) {
  MachineConfig sp_cfg;
  MachineConfig df = config_for(TopologyKind::kDragonfly);
  EXPECT_EQ(mpi::coll::select_alltoall(sp_cfg, 2 * 1024, 16),
            mpi::coll::AlltoallAlgo::kPairwise);
  EXPECT_EQ(mpi::coll::select_alltoall(df, 2 * 1024, 16), mpi::coll::AlltoallAlgo::kBruck);
}

TEST(TopologySelection, PinsOverrideTopologyRules) {
  MachineConfig torus = config_for(TopologyKind::kTorus2d);
  torus.coll_bcast_algo = static_cast<int>(mpi::coll::BcastAlgo::kBinomial);
  EXPECT_EQ(mpi::coll::select_bcast(torus, 1 << 20, 16), mpi::coll::BcastAlgo::kBinomial);
}

TEST(TopologySelection, CutoverDifferenceExercisedEndToEnd) {
  // The 48 KiB bcast must produce identical bytes on both fabrics even
  // though the selection table picks different algorithms.
  auto run = [](TopologyKind kind) {
    MachineConfig cfg = config_for(kind);
    Machine m(cfg, 16, Backend::kLapiEnhanced);
    std::vector<std::uint8_t> got(48 * 1024, 0);
    m.run([&got](Mpi& mpi) {
      auto& w = mpi.world();
      std::vector<std::uint8_t> buf(48 * 1024);
      if (w.rank() == 0) {
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = static_cast<std::uint8_t>(i * 7 + 3);
        }
      }
      mpi.bcast(buf.data(), buf.size(), sp::mpi::Datatype::kByte, 0, w);
      if (w.rank() == 5) got = buf;
    });
    return got;
  };
  EXPECT_EQ(run(TopologyKind::kSpMultistage), run(TopologyKind::kTorus3d));
}

}  // namespace
}  // namespace sp::net
