// Shape regression tests: the qualitative claims of the paper's figures and
// table, asserted as invariants on the calibrated default machine. If a
// protocol or cost-model change breaks one of these, the reproduction itself
// has regressed — these are the project's golden-master checks.
#include <gtest/gtest.h>

#include "common.hpp"

namespace sp {
namespace {

using bench::mpi_bandwidth_mbs;
using bench::mpi_interrupt_pingpong_us;
using bench::mpi_pingpong_us;
using bench::raw_lapi_pingpong_us;
using mpi::Backend;
using sim::MachineConfig;

TEST(Fig10Shape, BaseCarriesTheContextSwitchAtAllSizes) {
  MachineConfig cfg;
  for (std::size_t s : {4ul, 512ul, 16384ul}) {
    const double raw = raw_lapi_pingpong_us(cfg, s, 8);
    const double base = mpi_pingpong_us(cfg, Backend::kLapiBase, s, 8);
    EXPECT_GT(base - raw, sim::to_us(cfg.completion_thread_switch_ns) * 0.7)
        << "size " << s << ": Base must pay roughly the thread switch";
  }
}

TEST(Fig10Shape, EnhancedTracksRawLapiClosely) {
  MachineConfig cfg;
  // Eager sizes: the residue is matching + locking, a few microseconds.
  for (std::size_t s : {4ul, 512ul}) {
    const double raw = raw_lapi_pingpong_us(cfg, s, 8);
    const double enh = mpi_pingpong_us(cfg, Backend::kLapiEnhanced, s, 8);
    EXPECT_LT(enh - raw, 8.0) << "size " << s
                              << ": Enhanced residue is only matching+locking";
    EXPECT_GT(enh, raw) << "MPI semantics cannot be free";
  }
  // Rendezvous sizes additionally carry the RTS/CTS round trip, but stay
  // within ~15% of the one-sided put.
  const double raw = raw_lapi_pingpong_us(cfg, 16384, 8);
  const double enh = mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 16384, 8);
  EXPECT_LT(enh / raw, 1.15) << "Enhanced must stay close to raw LAPI at 16 KiB";
}

TEST(Fig10Shape, CountersFixEagerButNotRendezvous) {
  MachineConfig cfg;
  const double cntr_small = mpi_pingpong_us(cfg, Backend::kLapiCounters, 256, 8);
  const double enh_small = mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 256, 8);
  EXPECT_NEAR(cntr_small, enh_small, 2.0) << "eager path: Counters ~ Enhanced";

  const double cntr_big = mpi_pingpong_us(cfg, Backend::kLapiCounters, 8192, 8);
  const double enh_big = mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 8192, 8);
  EXPECT_GT(cntr_big - enh_big, sim::to_us(cfg.completion_thread_switch_ns) * 0.5)
      << "rendezvous control still pays the handler thread in Counters";
}

TEST(Fig11Shape, NativeWinsTinyLapiWinsBig) {
  MachineConfig cfg;
  const double native_1 = mpi_pingpong_us(cfg, Backend::kNativePipes, 1, 16);
  const double lapi_1 = mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 1, 16);
  EXPECT_LT(native_1, lapi_1) << "paper: native slightly faster for very short messages";
  EXPECT_LT(lapi_1 / native_1, 1.35) << "but only slightly";

  const double native_4k = mpi_pingpong_us(cfg, Backend::kNativePipes, 4096, 16);
  const double lapi_4k = mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 4096, 16);
  EXPECT_GT(native_4k / lapi_4k, 1.10) << "paper: clear MPI-LAPI win past the crossover";
}

TEST(Fig12Shape, LapiBandwidthHigherMidRange) {
  MachineConfig cfg;
  const double native = mpi_bandwidth_mbs(cfg, Backend::kNativePipes, 16384, 24);
  const double lapi = mpi_bandwidth_mbs(cfg, Backend::kLapiEnhanced, 16384, 24);
  EXPECT_GT(lapi / native, 1.10) << "the pipe staging copies must cost bandwidth";
  EXPECT_LT(lapi, 150.0) << "nothing may beat the wire";
}

TEST(Fig13Shape, InterruptModeStronglyFavoursLapi) {
  MachineConfig cfg;
  const double native = mpi_interrupt_pingpong_us(cfg, Backend::kNativePipes, 64, 6);
  const double lapi = mpi_interrupt_pingpong_us(cfg, Backend::kLapiEnhanced, 64, 6);
  EXPECT_GT(native / lapi, 2.0) << "the hysteresis busy-wait dominates native";
}

TEST(PollingVsInterrupt, InterruptCostsLatencyOnBothStacks) {
  MachineConfig cfg;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiEnhanced}) {
    const double poll = mpi_pingpong_us(cfg, b, 256, 8);
    const double intr = mpi_interrupt_pingpong_us(cfg, b, 256, 8);
    EXPECT_GT(intr, poll) << mpi::backend_name(b);
  }
}

}  // namespace
}  // namespace sp
