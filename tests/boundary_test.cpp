// Boundary-value sweep: message sizes at the edges of every protocol
// threshold (zero bytes, one byte, the packet MTU, the first-packet capacity
// after the envelope, the eager limit, multi-packet sizes) across every
// backend — the classic home of off-by-one reassembly bugs.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

struct BoundaryParam {
  std::size_t size;
  Backend backend;
};

class BoundarySizes : public ::testing::TestWithParam<BoundaryParam> {};

TEST_P(BoundarySizes, RoundTripIntact) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam().backend);
  const std::size_t n = GetParam().size;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::uint8_t> buf(n + 1, 0xEE);  // +1 sentinel
    if (w.rank() == 0) {
      for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<std::uint8_t>(i * 131 + 17);
      mpi.send(buf.data(), n, Datatype::kByte, 1, 0, w);
      mpi.recv(buf.data(), n, Datatype::kByte, 1, 1, w);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>((i * 131 + 17) ^ 0xFF)) << "offset " << i;
      }
    } else {
      Status st;
      mpi.recv(buf.data(), n, Datatype::kByte, 0, 0, w, &st);
      EXPECT_EQ(st.len, n);
      EXPECT_EQ(buf[n], 0xEE) << "receive must not write past the message";
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 131 + 17)) << "offset " << i;
      }
      for (std::size_t i = 0; i < n; ++i) buf[i] ^= 0xFF;
      mpi.send(buf.data(), n, Datatype::kByte, 0, 1, w);
    }
  });
}

std::vector<BoundaryParam> boundary_params() {
  const MachineConfig cfg;
  const std::size_t mtu = cfg.packet_mtu;
  const std::size_t first_cap = mtu - 32;  // first-packet payload after the envelope
  const std::size_t eager = cfg.eager_limit;
  std::vector<std::size_t> sizes = {
      0,         1,          2,          first_cap - 1, first_cap, first_cap + 1,
      mtu - 1,   mtu,        mtu + 1,    2 * mtu - 1,   2 * mtu,   2 * mtu + 1,
      eager - 1, eager,      eager + 1,  3 * mtu + 7,   8 * mtu + 1};
  std::vector<BoundaryParam> out;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiBase, Backend::kLapiCounters,
                    Backend::kLapiEnhanced, Backend::kRdma}) {
    for (std::size_t s : sizes) out.push_back({s, b});
  }
  return out;
}

std::string boundary_name(const ::testing::TestParamInfo<BoundaryParam>& info) {
  const char* b = info.param.backend == Backend::kNativePipes   ? "Native"
                  : info.param.backend == Backend::kLapiBase    ? "Base"
                  : info.param.backend == Backend::kLapiCounters ? "Counters"
                  : info.param.backend == Backend::kRdma         ? "Rdma"
                                                                 : "Enhanced";
  return std::string(b) + "_" + std::to_string(info.param.size) + "B";
}

INSTANTIATE_TEST_SUITE_P(Edges, BoundarySizes, ::testing::ValuesIn(boundary_params()),
                         boundary_name);

}  // namespace
}  // namespace sp::mpi
