// Boundary-value sweep: message sizes at the edges of every protocol
// threshold (zero bytes, one byte, the packet MTU, the first-packet capacity
// after the envelope, the eager limit, multi-packet sizes) across every
// backend — the classic home of off-by-one reassembly bugs.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/coll.hpp"
#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

struct BoundaryParam {
  std::size_t size;
  Backend backend;
};

class BoundarySizes : public ::testing::TestWithParam<BoundaryParam> {};

TEST_P(BoundarySizes, RoundTripIntact) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam().backend);
  const std::size_t n = GetParam().size;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::uint8_t> buf(n + 1, 0xEE);  // +1 sentinel
    if (w.rank() == 0) {
      for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<std::uint8_t>(i * 131 + 17);
      mpi.send(buf.data(), n, Datatype::kByte, 1, 0, w);
      mpi.recv(buf.data(), n, Datatype::kByte, 1, 1, w);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>((i * 131 + 17) ^ 0xFF)) << "offset " << i;
      }
    } else {
      Status st;
      mpi.recv(buf.data(), n, Datatype::kByte, 0, 0, w, &st);
      EXPECT_EQ(st.len, n);
      EXPECT_EQ(buf[n], 0xEE) << "receive must not write past the message";
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 131 + 17)) << "offset " << i;
      }
      for (std::size_t i = 0; i < n; ++i) buf[i] ^= 0xFF;
      mpi.send(buf.data(), n, Datatype::kByte, 0, 1, w);
    }
  });
}

std::vector<BoundaryParam> boundary_params() {
  const MachineConfig cfg;
  const std::size_t mtu = cfg.packet_mtu;
  const std::size_t first_cap = mtu - 32;  // first-packet payload after the envelope
  const std::size_t eager = cfg.eager_limit;
  std::vector<std::size_t> sizes = {
      0,         1,          2,          first_cap - 1, first_cap, first_cap + 1,
      mtu - 1,   mtu,        mtu + 1,    2 * mtu - 1,   2 * mtu,   2 * mtu + 1,
      eager - 1, eager,      eager + 1,  3 * mtu + 7,   8 * mtu + 1};
  std::vector<BoundaryParam> out;
  for (Backend b : {Backend::kNativePipes, Backend::kLapiBase, Backend::kLapiCounters,
                    Backend::kLapiEnhanced, Backend::kRdma}) {
    for (std::size_t s : sizes) out.push_back({s, b});
  }
  return out;
}

std::string boundary_name(const ::testing::TestParamInfo<BoundaryParam>& info) {
  const char* b = info.param.backend == Backend::kNativePipes   ? "Native"
                  : info.param.backend == Backend::kLapiBase    ? "Base"
                  : info.param.backend == Backend::kLapiCounters ? "Counters"
                  : info.param.backend == Backend::kRdma         ? "Rdma"
                                                                 : "Enhanced";
  return std::string(b) + "_" + std::to_string(info.param.size) + "B";
}

INSTANTIATE_TEST_SUITE_P(Edges, BoundarySizes, ::testing::ValuesIn(boundary_params()),
                         boundary_name);

// ---------------------------------------------------------------------------
// Collective edge cases for the in-network combining engine (DESIGN.md §16):
// zero counts, size-1 communicators, self-only sub-comms, and sizes
// straddling the combining-table byte cap. Each reuses the PR 5 tag-hoist
// audit: every call must consume exactly one collective tag on every rank,
// so mixed comm sizes stay in lockstep.
// ---------------------------------------------------------------------------

sim::MachineConfig innet_cfg() {
  sim::MachineConfig cfg;
  std::string err;
  EXPECT_TRUE(coll::apply_algo_spec(
      cfg, "bcast=in_network,allreduce=in_network,barrier=in_network", &err))
      << err;
  return cfg;
}

TEST(CollEdge, InNetworkZeroCountIsWellDefined) {
  Machine m(innet_cfg(), 4, Backend::kLapiEnhanced);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    // count == 0 (null buffers) through the combining tables: must neither
    // crash nor desync, and the machine stays healthy afterwards.
    mpi.bcast(nullptr, 0, Datatype::kInt, 0, w);
    mpi.allreduce(nullptr, nullptr, 0, Datatype::kLong, Op::kSum, w);
    mpi.barrier(w);
    long mine = w.rank() + 1, sum = 0;
    mpi.allreduce(&mine, &sum, 1, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(sum, static_cast<long>(w.size()) * (w.size() + 1) / 2);
  });
  EXPECT_GT(m.stats().innet_collectives, 0);
}

TEST(CollEdge, InNetworkSizeOneComm) {
  Machine m(innet_cfg(), 1, Backend::kLapiEnhanced);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    mpi.barrier(w);
    long v = 41;
    mpi.bcast(&v, 1, Datatype::kLong, 0, w);
    EXPECT_EQ(v, 41);
    long out = -1;
    mpi.allreduce(&v, &out, 1, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(out, 41);
  });
}

TEST(CollEdge, InNetworkSelfCommKeepsTagsAligned) {
  // Rank 0 sits alone in its split colour: its size-1 sub-comm collectives
  // must consume the same number of tags as the size-(n-1) ones, and the
  // world-wide in-network allreduce afterwards must still line up.
  Machine m(innet_cfg(), 5, Backend::kLapiEnhanced);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    Comm sub = mpi.split(w, w.rank() == 0 ? 0 : 1, w.rank());
    mpi.barrier(sub);
    std::vector<long> b(4, sub.rank() == 0 ? 19 : -1);
    mpi.bcast(b.data(), 4, Datatype::kLong, 0, sub);
    for (long x : b) EXPECT_EQ(x, 19);
    long mine = w.rank(), total = -1;
    mpi.allreduce(&mine, &total, 1, Datatype::kLong, Op::kSum, sub);
    long world_total = -1;
    mpi.allreduce(&mine, &world_total, 1, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(world_total, static_cast<long>(w.size()) * (w.size() - 1) / 2);
  });
  EXPECT_GT(m.stats().innet_collectives, 0);
}

TEST(CollEdge, InNetworkCapStraddleFallsBackCleanly) {
  // Vectors one element under, at, and over in_network_coll_max_bytes: the
  // over-cap call must fall back to the host engine on every rank (no rank
  // may disagree about the path) and all three must reduce correctly.
  sim::MachineConfig cfg = innet_cfg();
  const std::size_t cap = cfg.in_network_coll_max_bytes / sizeof(long);
  Machine m(cfg, 4, Backend::kLapiEnhanced);
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    const int n = w.size();
    for (const std::size_t count : {cap - 1, cap, cap + 1}) {
      std::vector<long> in(count), out(count, -1);
      for (std::size_t i = 0; i < count; ++i) {
        in[i] = static_cast<long>(i) + w.rank() + 1;
      }
      mpi.allreduce(in.data(), out.data(), count, Datatype::kLong, Op::kSum, w);
      std::size_t bad = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const long want = static_cast<long>(n) * (static_cast<long>(i) + 1) +
                          static_cast<long>(n) * (n - 1) / 2;
        if (out[i] != want) ++bad;
      }
      EXPECT_EQ(bad, 0u) << "count=" << count << " rank=" << w.rank();
    }
  });
  const auto s = m.stats();
  EXPECT_GT(s.innet_collectives, 0);  // the two in-cap calls went in-network
}

}  // namespace
}  // namespace sp::mpi
