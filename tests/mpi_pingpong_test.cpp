// End-to-end smoke tests: MPI ping-pong across all four backends, message
// integrity, and basic latency-ordering sanity between the stacks.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

class PingPongAllBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(PingPongAllBackends, SmallMessageIntact) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::byte> buf(64);
    if (w.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i);
      mpi.send(buf.data(), buf.size(), Datatype::kByte, 1, 7, w);
      mpi.recv(buf.data(), buf.size(), Datatype::kByte, 1, 8, w);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], static_cast<std::byte>(255 - i));
      }
    } else {
      Status st;
      mpi.recv(buf.data(), buf.size(), Datatype::kByte, 0, 7, w, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.len, 64u);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], static_cast<std::byte>(i));
      }
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(255 - i);
      mpi.send(buf.data(), buf.size(), Datatype::kByte, 0, 8, w);
    }
  });
  EXPECT_GT(m.elapsed(), 0);
}

TEST_P(PingPongAllBackends, LargeMessageIntactRendezvous) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  constexpr std::size_t kLen = 256 * 1024;  // well past the eager limit
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::uint8_t> buf(kLen);
    if (w.rank() == 0) {
      for (std::size_t i = 0; i < kLen; ++i) buf[i] = static_cast<std::uint8_t>(i * 31 + 7);
      mpi.send(buf.data(), kLen, Datatype::kByte, 1, 1, w);
    } else {
      mpi.recv(buf.data(), kLen, Datatype::kByte, 0, 1, w);
      for (std::size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 31 + 7)) << "at offset " << i;
      }
    }
  });
}

TEST_P(PingPongAllBackends, UnexpectedMessageGoesThroughEarlyArrival) {
  MachineConfig cfg;
  Machine m(cfg, 2, GetParam());
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<int> v(16);
    if (w.rank() == 0) {
      std::iota(v.begin(), v.end(), 100);
      mpi.send(v.data(), v.size(), Datatype::kInt, 1, 3, w);
    } else {
      // Delay posting the receive so the message is an early arrival.
      mpi.compute(2 * sim::kMs);
      mpi.recv(v.data(), v.size(), Datatype::kInt, 0, 3, w);
      for (int i = 0; i < 16; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], 100 + i);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PingPongAllBackends,
                         ::testing::Values(Backend::kNativePipes, Backend::kLapiBase,
                                           Backend::kLapiCounters, Backend::kLapiEnhanced,
                                           Backend::kRdma),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kNativePipes: return "NativePipes";
                             case Backend::kLapiBase: return "LapiBase";
                             case Backend::kLapiCounters: return "LapiCounters";
                             case Backend::kLapiEnhanced: return "LapiEnhanced";
                             case Backend::kRdma: return "Rdma";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace sp::mpi
