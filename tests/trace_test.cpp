// Tests for the event-timeline tracer.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi {
namespace {

using sim::MachineConfig;

TEST(Trace, DisabledByDefault) {
  MachineConfig cfg;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  EXPECT_EQ(m.trace(), nullptr);
}

TEST(Trace, RecordsProtocolEventsInTimeOrder) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<char> buf(512);
    if (w.rank() == 0) {
      mpi.send(buf.data(), buf.size(), Datatype::kByte, 1, 0, w);
    } else {
      mpi.recv(buf.data(), buf.size(), Datatype::kByte, 0, 0, w);
    }
  });
  auto* tr = m.trace();
  ASSERT_NE(tr, nullptr);
  EXPECT_GE(tr->count("hal.send"), 1u);
  EXPECT_GE(tr->count("hal.deliver"), 1u);
  EXPECT_GE(tr->count("lapi.amsend"), 1u);
  EXPECT_GE(tr->count("lapi.header_handler"), 1u);
  EXPECT_GE(tr->count("lapi.completion.inline"), 1u);
  EXPECT_EQ(tr->count("hal.interrupt"), 0u) << "polling mode takes no interrupts";

  sim::TimeNs last = -1;
  for (const auto& e : tr->events()) {
    EXPECT_GE(e.t, last) << "trace must be time-ordered";
    last = e.t;
  }
}

TEST(Trace, BaseVariantShowsThreadCompletions) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  Machine m(cfg, 2, Backend::kLapiBase);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    int v = 1;
    if (w.rank() == 0) {
      mpi.send(&v, 1, Datatype::kInt, 1, 0, w);
    } else {
      mpi.recv(&v, 1, Datatype::kInt, 0, 0, w);
    }
  });
  EXPECT_GE(m.trace()->count("lapi.completion.thread"), 1u);
  EXPECT_EQ(m.trace()->count("lapi.completion.inline"), 0u);
}

TEST(Trace, InterruptModeShowsInterrupts) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) {
    Comm& w = mpi.world();
    mpi.set_interrupt_mode(true);
    int v = 1;
    if (w.rank() == 0) {
      mpi.send(&v, 1, Datatype::kInt, 1, 0, w);
    } else {
      mpi.recv(&v, 1, Datatype::kInt, 0, 0, w);
    }
  });
  EXPECT_GE(m.trace()->count("hal.interrupt"), 1u);
}

TEST(Trace, DumpIsWellFormed) {
  MachineConfig cfg;
  cfg.trace_enabled = true;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([](Mpi& mpi) { mpi.barrier(mpi.world()); });
  // Dump into a memory stream and sanity-check the format.
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  ASSERT_NE(mem, nullptr);
  m.trace()->dump(mem);
  std::fclose(mem);
  ASSERT_NE(buf, nullptr);
  EXPECT_GT(len, 0u);
  EXPECT_NE(std::string(buf, len).find("hal.send"), std::string::npos);
  free(buf);
}

TEST(Trace, ClearEmptiesTheLog) {
  sim::Trace tr;
  tr.emit(1, 0, "x", "a");
  tr.emit(2, 1, "y", "b");
  EXPECT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.count("x"), 1u);
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
}

}  // namespace
}  // namespace sp::mpi
