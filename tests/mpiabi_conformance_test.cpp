// ABI conformance suite for the C MPI_* veneer (DESIGN.md §17).
//
// Every veneer entry point is exercised through the generated mpi.h, on all
// three channels (native pipes, LAPI enhanced, RDMA offload), and checked
// against either a locally recomputed expectation or a native sp::mpi golden
// run — the NAS parity tests require bit-identical checksums between the C
// ports and the C++ kernels.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "mpiabi/apps/apps.h"
#include "mpiabi/include/mpi.h"
#include "mpiabi/mpiabi.hpp"
#include "nas/kernels.hpp"

namespace sp {
namespace {

class AbiConformance : public ::testing::TestWithParam<mpi::Backend> {
 protected:
  static sim::MachineConfig config() { return sim::MachineConfig::tbmx_332(); }

  /// Runs `body(rank)` on 4 ranks through the ABI binding; the body returns
  /// the number of failed in-body checks, so ok() doubles as the assertion.
  void run4(const std::function<int(int)>& body) {
    mpi::Machine m(config(), 4, GetParam());
    const mpiabi::RunResult rr = mpiabi::run_with_abi(m, body);
    EXPECT_TRUE(rr.ok());
    for (const auto& r : rr.ranks) EXPECT_EQ(r.exit_code, 0);
  }
};

TEST_P(AbiConformance, InitRankSizeFinalize) {
  run4([](int rank) {
    int fails = 0;
    int flag = -1;
    if (MPI_Initialized(&flag) != MPI_SUCCESS || flag != 0) ++fails;
    if (MPI_Init(nullptr, nullptr) != MPI_SUCCESS) ++fails;
    if (MPI_Initialized(&flag) != MPI_SUCCESS || flag != 1) ++fails;
    int r = -1, n = -1;
    if (MPI_Comm_rank(MPI_COMM_WORLD, &r) != MPI_SUCCESS || r != rank) ++fails;
    if (MPI_Comm_size(MPI_COMM_WORLD, &n) != MPI_SUCCESS || n != 4) ++fails;
    if (MPI_Finalize() != MPI_SUCCESS) ++fails;
    if (MPI_Finalized(&flag) != MPI_SUCCESS || flag != 1) ++fails;
    return fails;
  });
}

TEST_P(AbiConformance, SendRecvStatusAndGetCount) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    long payload[8];
    if (rank == 0) {
      for (int i = 0; i < 8; ++i) payload[i] = 100 + i;
      if (MPI_Send(payload, 8, MPI_LONG, 1, 42, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    } else if (rank == 1) {
      std::memset(payload, 0, sizeof payload);
      MPI_Status st;
      if (MPI_Recv(payload, 8, MPI_LONG, 0, 42, MPI_COMM_WORLD, &st) != MPI_SUCCESS) ++fails;
      if (st.MPI_SOURCE != 0 || st.MPI_TAG != 42 || st.MPI_ERROR != MPI_SUCCESS) ++fails;
      int count = -1;
      if (MPI_Get_count(&st, MPI_LONG, &count) != MPI_SUCCESS || count != 8) ++fails;
      for (int i = 0; i < 8; ++i) {
        if (payload[i] != 100 + i) ++fails;
      }
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, SendrecvRing) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    int n = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &n);
    long token = rank;
    for (int hop = 0; hop < n; ++hop) {
      long in = -1;
      MPI_Status st;
      if (MPI_Sendrecv(&token, 1, MPI_LONG, (rank + 1) % n, 3, &in, 1, MPI_LONG,
                       (rank - 1 + n) % n, 3, MPI_COMM_WORLD, &st) != MPI_SUCCESS) {
        ++fails;
      }
      token = in;
    }
    if (token != rank) ++fails;  // travelled the whole ring
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, WildcardSourceAndTag) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      for (int got = 0; got < 3; ++got) {
        int v = -1;
        MPI_Status st;
        if (MPI_Recv(&v, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD, &st) !=
            MPI_SUCCESS) {
          ++fails;
        }
        // The concrete match must be self-consistent: payload encodes sender.
        if (st.MPI_SOURCE < 1 || st.MPI_SOURCE > 3) ++fails;
        if (v != st.MPI_SOURCE * 10 || st.MPI_TAG != st.MPI_SOURCE) ++fails;
      }
    } else {
      const int v = rank * 10;
      if (MPI_Send(&v, 1, MPI_INT, 0, rank, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, NonblockingWaitall) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    int n = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &n);
    std::vector<int> out(static_cast<std::size_t>(n), rank);
    std::vector<int> in(static_cast<std::size_t>(n), -1);
    std::vector<MPI_Request> reqs;
    for (int p = 0; p < n; ++p) {
      if (p == rank) continue;
      MPI_Request r;
      if (MPI_Irecv(&in[p], 1, MPI_INT, p, 5, MPI_COMM_WORLD, &r) != MPI_SUCCESS) ++fails;
      reqs.push_back(r);
      if (MPI_Isend(&out[p], 1, MPI_INT, p, 5, MPI_COMM_WORLD, &r) != MPI_SUCCESS) ++fails;
      reqs.push_back(r);
    }
    std::vector<MPI_Status> sts(reqs.size());
    if (MPI_Waitall(static_cast<int>(reqs.size()), reqs.data(), sts.data()) != MPI_SUCCESS) {
      ++fails;
    }
    for (MPI_Request r : reqs) {
      if (r != MPI_REQUEST_NULL) ++fails;  // Waitall nulls completed requests
    }
    for (int p = 0; p < n; ++p) {
      if (p != rank && in[p] != p) ++fails;
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, TestPollingCompletes) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      double v = -1.0;
      MPI_Request r;
      MPI_Irecv(&v, 1, MPI_DOUBLE, 1, 8, MPI_COMM_WORLD, &r);
      int flag = 0;
      MPI_Status st;
      while (flag == 0) {
        if (MPI_Test(&r, &flag, &st) != MPI_SUCCESS) {
          ++fails;
          break;
        }
      }
      if (r != MPI_REQUEST_NULL || v != 2.5 || st.MPI_SOURCE != 1) ++fails;
    } else if (rank == 1) {
      const double v = 2.5;
      MPI_Send(&v, 1, MPI_DOUBLE, 0, 8, MPI_COMM_WORLD);
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, WaitanyDrainsAll) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      int vals[3] = {-1, -1, -1};
      MPI_Request reqs[3];
      for (int i = 0; i < 3; ++i) {
        MPI_Irecv(&vals[i], 1, MPI_INT, i + 1, i, MPI_COMM_WORLD, &reqs[i]);
      }
      bool seen[3] = {false, false, false};
      for (int k = 0; k < 3; ++k) {
        int idx = -1;
        MPI_Status st;
        if (MPI_Waitany(3, reqs, &idx, &st) != MPI_SUCCESS) ++fails;
        if (idx < 0 || idx > 2 || seen[idx]) {
          ++fails;
          continue;
        }
        seen[idx] = true;
        if (vals[idx] != (idx + 1) * 7 || st.MPI_SOURCE != idx + 1) ++fails;
      }
    } else {
      const int v = rank * 7;
      MPI_Send(&v, 1, MPI_INT, 0, rank - 1, MPI_COMM_WORLD);
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, SendModesSsendBsendRsend) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      int v = 11;
      if (MPI_Ssend(&v, 1, MPI_INT, 1, 0, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
      static char pool[4096];
      if (MPI_Buffer_attach(pool, sizeof pool) != MPI_SUCCESS) ++fails;
      v = 22;
      if (MPI_Bsend(&v, 1, MPI_INT, 1, 1, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
      void* addr = nullptr;
      int sz = 0;
      if (MPI_Buffer_detach(&addr, &sz) != MPI_SUCCESS || sz != sizeof pool) ++fails;
      // Ready mode: rank 1 posted the receive before replying on tag 2.
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 1, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      v = 33;
      if (MPI_Rsend(&v, 1, MPI_INT, 1, 2, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    } else if (rank == 1) {
      int v = -1;
      MPI_Recv(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      if (v != 11) ++fails;
      MPI_Recv(&v, 1, MPI_INT, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      if (v != 22) ++fails;
      int ready = -1;
      MPI_Request r;
      MPI_Irecv(&ready, 1, MPI_INT, 0, 2, MPI_COMM_WORLD, &r);
      const int go = 1;
      MPI_Send(&go, 1, MPI_INT, 0, 9, MPI_COMM_WORLD);
      MPI_Wait(&r, MPI_STATUS_IGNORE);
      if (ready != 33) ++fails;
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, PersistentStartall) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    int n = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &n);
    const int to = (rank + 1) % n;
    const int from = (rank - 1 + n) % n;
    int out = 0, in = -1;
    MPI_Request reqs[2];
    if (MPI_Recv_init(&in, 1, MPI_INT, from, 4, MPI_COMM_WORLD, &reqs[0]) != MPI_SUCCESS) {
      ++fails;
    }
    if (MPI_Send_init(&out, 1, MPI_INT, to, 4, MPI_COMM_WORLD, &reqs[1]) != MPI_SUCCESS) {
      ++fails;
    }
    for (int iter = 0; iter < 3; ++iter) {
      out = rank * 100 + iter;
      if (MPI_Startall(2, reqs) != MPI_SUCCESS) ++fails;
      if (MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE) != MPI_SUCCESS) ++fails;
      if (in != from * 100 + iter) ++fails;
      if (reqs[0] == MPI_REQUEST_NULL || reqs[1] == MPI_REQUEST_NULL) ++fails;
    }
    if (MPI_Request_free(&reqs[0]) != MPI_SUCCESS || reqs[0] != MPI_REQUEST_NULL) ++fails;
    if (MPI_Request_free(&reqs[1]) != MPI_SUCCESS) ++fails;
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, ProbeIprobeMatch) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      MPI_Status st;
      if (MPI_Probe(1, MPI_ANY_TAG, MPI_COMM_WORLD, &st) != MPI_SUCCESS) ++fails;
      if (st.MPI_SOURCE != 1 || st.MPI_TAG != 6) ++fails;
      int count = -1;
      if (MPI_Get_count(&st, MPI_INT, &count) != MPI_SUCCESS || count != 5) ++fails;
      int flag = 0;
      MPI_Status st2;
      if (MPI_Iprobe(1, 6, MPI_COMM_WORLD, &flag, &st2) != MPI_SUCCESS || flag != 1) ++fails;
      int buf[5];
      MPI_Recv(buf, 5, MPI_INT, st.MPI_SOURCE, st.MPI_TAG, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
      for (int i = 0; i < 5; ++i) {
        if (buf[i] != i * i) ++fails;
      }
    } else if (rank == 1) {
      int buf[5];
      for (int i = 0; i < 5; ++i) buf[i] = i * i;
      MPI_Send(buf, 5, MPI_INT, 0, 6, MPI_COMM_WORLD);
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, CommDupSplitFree) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    MPI_Comm dup = MPI_COMM_NULL;
    if (MPI_Comm_dup(MPI_COMM_WORLD, &dup) != MPI_SUCCESS || dup == MPI_COMM_NULL) ++fails;
    int r = -1, n = -1;
    MPI_Comm_rank(dup, &r);
    MPI_Comm_size(dup, &n);
    if (r != rank || n != 4) ++fails;
    MPI_Comm half = MPI_COMM_NULL;
    // Reverse ranks inside each half via a descending key.
    if (MPI_Comm_split(MPI_COMM_WORLD, rank % 2, -rank, &half) != MPI_SUCCESS) ++fails;
    int hr = -1, hn = -1;
    MPI_Comm_rank(half, &hr);
    MPI_Comm_size(half, &hn);
    if (hn != 2 || hr != (rank < 2 ? 1 : 0)) ++fails;
    long sum = 0;
    const long mine = rank + 1;
    if (MPI_Allreduce(&mine, &sum, 1, MPI_LONG, MPI_SUM, half) != MPI_SUCCESS) ++fails;
    const long expect = (rank % 2 == 0) ? (1 + 3) : (2 + 4);
    if (sum != expect) ++fails;
    if (MPI_Comm_free(&half) != MPI_SUCCESS || half != MPI_COMM_NULL) ++fails;
    if (MPI_Comm_free(&dup) != MPI_SUCCESS) ++fails;
    MPI_Comm world = MPI_COMM_WORLD;
    if (MPI_Comm_free(&world) != MPI_ERR_COMM) ++fails;  // world is not freeable
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, BarrierBcastReduceAllreduce) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    if (MPI_Barrier(MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    double x = rank == 2 ? 3.25 : 0.0;
    if (MPI_Bcast(&x, 1, MPI_DOUBLE, 2, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    if (x != 3.25) ++fails;
    const long mine[2] = {rank + 1, 10 * (rank + 1)};
    long red[2] = {0, 0};
    if (MPI_Reduce(mine, red, 2, MPI_LONG, MPI_SUM, 0, MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    if (rank == 0 && (red[0] != 10 || red[1] != 100)) ++fails;
    long mx = 0;
    if (MPI_Allreduce(&mine[0], &mx, 1, MPI_LONG, MPI_MAX, MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    if (mx != 4) ++fails;
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, GatherScatterAllgather) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    const int mine = rank * rank + 1;
    int all[4] = {-1, -1, -1, -1};
    if (MPI_Gather(&mine, 1, MPI_INT, all, 1, MPI_INT, 3, MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    if (rank == 3) {
      for (int i = 0; i < 4; ++i) {
        if (all[i] != i * i + 1) ++fails;
      }
    }
    int spread[4] = {0, 0, 0, 0};
    if (rank == 1) {
      for (int i = 0; i < 4; ++i) spread[i] = 50 + i;
    }
    int got = -1;
    if (MPI_Scatter(spread, 1, MPI_INT, &got, 1, MPI_INT, 1, MPI_COMM_WORLD) !=
        MPI_SUCCESS) {
      ++fails;
    }
    if (got != 50 + rank) ++fails;
    int ag[4] = {-1, -1, -1, -1};
    if (MPI_Allgather(&mine, 1, MPI_INT, ag, 1, MPI_INT, MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    for (int i = 0; i < 4; ++i) {
      if (ag[i] != i * i + 1) ++fails;
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, AlltoallAndV) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    int out[4], in[4];
    for (int i = 0; i < 4; ++i) out[i] = rank * 10 + i;
    if (MPI_Alltoall(out, 1, MPI_INT, in, 1, MPI_INT, MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    for (int i = 0; i < 4; ++i) {
      if (in[i] != i * 10 + rank) ++fails;
    }
    // Variable flavor: rank r sends r+1 copies of its rank to everyone.
    int scounts[4], sdispls[4], rcounts[4], rdispls[4];
    int sbuf[16], rbuf[16];
    int soff = 0, roff = 0;
    for (int p = 0; p < 4; ++p) {
      scounts[p] = rank + 1;
      sdispls[p] = soff;
      for (int k = 0; k < scounts[p]; ++k) sbuf[soff + k] = rank;
      soff += scounts[p];
      rcounts[p] = p + 1;
      rdispls[p] = roff;
      roff += rcounts[p];
    }
    if (MPI_Alltoallv(sbuf, scounts, sdispls, MPI_INT, rbuf, rcounts, rdispls, MPI_INT,
                      MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    for (int p = 0; p < 4; ++p) {
      for (int k = 0; k < rcounts[p]; ++k) {
        if (rbuf[rdispls[p] + k] != p) ++fails;
      }
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, GathervScatterv) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    // Rank r contributes r+1 elements, all equal to r.
    int mine[4];
    for (int i = 0; i <= rank; ++i) mine[i] = rank;
    int rcounts[4] = {1, 2, 3, 4};
    int displs[4] = {0, 1, 3, 6};
    int gathered[10];
    if (MPI_Gatherv(mine, rank + 1, MPI_INT, gathered, rcounts, displs, MPI_INT, 0,
                    MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    if (rank == 0) {
      for (int p = 0; p < 4; ++p) {
        for (int k = 0; k < rcounts[p]; ++k) {
          if (gathered[displs[p] + k] != p) ++fails;
        }
      }
    }
    int seed[10];
    if (rank == 0) {
      for (int p = 0; p < 4; ++p) {
        for (int k = 0; k < rcounts[p]; ++k) seed[displs[p] + k] = 1000 + p;
      }
    }
    int back[4] = {-1, -1, -1, -1};
    if (MPI_Scatterv(seed, rcounts, displs, MPI_INT, back, rank + 1, MPI_INT, 0,
                     MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    for (int k = 0; k <= rank; ++k) {
      if (back[k] != 1000 + rank) ++fails;
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, ScanExscanReduceScatterBlock) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    const long mine = rank + 1;
    long pre = -1;
    if (MPI_Scan(&mine, &pre, 1, MPI_LONG, MPI_SUM, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    if (pre != (rank + 1) * (rank + 2) / 2) ++fails;
    long ex = -1;
    if (MPI_Exscan(&mine, &ex, 1, MPI_LONG, MPI_SUM, MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    if (rank > 0 && ex != rank * (rank + 1) / 2) ++fails;
    long contrib[4], got = 0;
    for (int i = 0; i < 4; ++i) contrib[i] = (rank + 1) * (i + 1);
    if (MPI_Reduce_scatter_block(contrib, &got, 1, MPI_LONG, MPI_SUM, MPI_COMM_WORLD) !=
        MPI_SUCCESS) {
      ++fails;
    }
    if (got != 10L * (rank + 1)) ++fails;  // (1+2+3+4) * (rank+1)
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, NoncommutativeMat2x2MatchesNative) {
  // The simulator's non-commutative reduction through the C ABI must equal a
  // native sp::mpi golden run: order sensitivity makes this a sharp probe of
  // the veneer's argument plumbing.
  long native_out[4] = {0, 0, 0, 0};
  {
    mpi::Machine m(config(), 4, GetParam());
    m.run([&](mpi::Mpi& mpi) {
      auto& w = mpi.world();
      const long r = w.rank() + 1;
      const std::int64_t mat[4] = {r, r + 1, 0, 1};
      std::int64_t out[4] = {0, 0, 0, 0};
      mpi.allreduce(mat, out, 4, mpi::Datatype::kLong, mpi::Op::kMat2x2, w);
      if (w.rank() == 0) {
        for (int i = 0; i < 4; ++i) native_out[i] = out[i];
      }
    });
  }
  mpi::Machine m(config(), 4, GetParam());
  long abi_out[4] = {0, 0, 0, 0};
  const mpiabi::RunResult rr = mpiabi::run_with_abi(m, [&](int rank) {
    MPI_Init(nullptr, nullptr);
    const long r = rank + 1;
    const long mat[4] = {r, r + 1, 0, 1};
    long out[4] = {0, 0, 0, 0};
    int fails = 0;
    if (MPI_Allreduce(mat, out, 4, MPI_LONG, MPIX_MAT2X2, MPI_COMM_WORLD) != MPI_SUCCESS) {
      ++fails;
    }
    if (MPI_Allreduce(mat, out, 3, MPI_LONG, MPIX_MAT2X2, MPI_COMM_WORLD) !=
        MPI_ERR_COUNT) {
      ++fails;  // group size must be a multiple of 4
    }
    if (rank == 0) {
      for (int i = 0; i < 4; ++i) abi_out[i] = out[i];
    }
    MPI_Finalize();
    return fails;
  });
  EXPECT_TRUE(rr.ok());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(abi_out[i], native_out[i]) << "element " << i;
}

TEST_P(AbiConformance, DerivedDatatypes) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    MPI_Datatype pair = MPI_DATATYPE_NULL;
    if (MPI_Type_contiguous(2, MPI_INT, &pair) != MPI_SUCCESS) ++fails;
    if (MPI_Type_commit(&pair) != MPI_SUCCESS) ++fails;
    int sz = 0;
    if (MPI_Type_size(pair, &sz) != MPI_SUCCESS || sz != 8) ++fails;
    if (rank == 0) {
      const int buf[6] = {1, 2, 3, 4, 5, 6};
      if (MPI_Send(buf, 3, pair, 1, 0, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    } else if (rank == 1) {
      int buf[6] = {0};
      MPI_Status st;
      if (MPI_Recv(buf, 3, pair, 0, 0, MPI_COMM_WORLD, &st) != MPI_SUCCESS) ++fails;
      int count = -1;
      if (MPI_Get_count(&st, pair, &count) != MPI_SUCCESS || count != 3) ++fails;
      for (int i = 0; i < 6; ++i) {
        if (buf[i] != i + 1) ++fails;
      }
    }
    // Strided vector: send column 0 of a 3x2 row-major matrix.
    MPI_Datatype col = MPI_DATATYPE_NULL;
    if (MPI_Type_vector(3, 1, 2, MPI_INT, &col) != MPI_SUCCESS) ++fails;
    if (MPI_Type_commit(&col) != MPI_SUCCESS) ++fails;
    if (rank == 0) {
      const int mat[6] = {10, 11, 20, 21, 30, 31};
      if (MPI_Send(mat, 1, col, 1, 1, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    } else if (rank == 1) {
      int colv[3] = {0, 0, 0};
      if (MPI_Recv(colv, 3, MPI_INT, 0, 1, MPI_COMM_WORLD, MPI_STATUS_IGNORE) !=
          MPI_SUCCESS) {
        ++fails;
      }
      if (colv[0] != 10 || colv[1] != 20 || colv[2] != 30) ++fails;
    }
    if (MPI_Type_free(&col) != MPI_SUCCESS || col != MPI_DATATYPE_NULL) ++fails;
    if (MPI_Type_free(&pair) != MPI_SUCCESS) ++fails;
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, TruncationReportsErrTruncate) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    if (rank == 0) {
      const int buf[4] = {1, 2, 3, 4};
      MPI_Send(buf, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } else if (rank == 1) {
      int small[2] = {0, 0};
      MPI_Status st;
      const int rc = MPI_Recv(small, 2, MPI_INT, 0, 0, MPI_COMM_WORLD, &st);
      if (rc != MPI_ERR_TRUNCATE) ++fails;
      if (st.MPI_ERROR != MPI_ERR_TRUNCATE || st.sp_truncated != 1) ++fails;
      if (small[0] != 1 || small[1] != 2) ++fails;  // prefix still delivered
    }
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, ErrorReturnsAndStrings) {
  run4([](int) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    int v = 0;
    if (MPI_Send(&v, 1, MPI_INT, 99, 0, MPI_COMM_WORLD) != MPI_ERR_RANK) ++fails;
    if (MPI_Send(&v, -1, MPI_INT, 0, 0, MPI_COMM_WORLD) != MPI_ERR_COUNT) ++fails;
    if (MPI_Send(&v, 1, MPI_INT, 0, 0, (MPI_Comm)77) != MPI_ERR_COMM) ++fails;
    char msg[MPI_MAX_ERROR_STRING];
    int len = 0;
    if (MPI_Error_string(MPI_ERR_RANK, msg, &len) != MPI_SUCCESS || len <= 0) ++fails;
    if (std::string(msg).find("rank") == std::string::npos) ++fails;
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, WtimeAdvancesWithCompute) {
  run4([](int) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    const double t0 = MPI_Wtime();
    if (MPIX_Compute(1'000'000) != MPI_SUCCESS) ++fails;  // 1 ms of modelled work
    const double t1 = MPI_Wtime();
    if (t1 - t0 < 0.0009) ++fails;  // simulated clock must have moved ~1 ms
    if (MPI_Wtick() <= 0.0) ++fails;
    MPI_Finalize();
    return fails;
  });
}

TEST_P(AbiConformance, ProcNullIsNoop) {
  run4([](int rank) {
    int fails = 0;
    MPI_Init(nullptr, nullptr);
    int v = 5;
    if (MPI_Send(&v, 1, MPI_INT, MPI_PROC_NULL, 0, MPI_COMM_WORLD) != MPI_SUCCESS) ++fails;
    MPI_Status st;
    int got = 123;
    if (MPI_Recv(&got, 1, MPI_INT, MPI_PROC_NULL, 0, MPI_COMM_WORLD, &st) != MPI_SUCCESS) {
      ++fails;
    }
    if (got != 123) ++fails;  // buffer untouched
    (void)rank;
    MPI_Finalize();
    return fails;
  });
}

/// The tentpole acceptance check: the ported C NAS kernels must produce
/// bit-identical checksums to the native C++ kernels, per channel.
TEST_P(AbiConformance, NasEpParity) {
  unsigned long long native_sum = 0;
  {
    mpi::Machine m(config(), 4, GetParam());
    m.run([&](mpi::Mpi& mpi) {
      const auto r = nas::run_ep(mpi, 1);
      EXPECT_TRUE(r.verified);
      if (mpi.world().rank() == 0) native_sum = r.checksum;
    });
  }
  mpi::Machine m(config(), 4, GetParam());
  const mpiabi::RunResult rr = mpiabi::run_program(m, sp_abi_nas_ep_main, {"1"});
  ASSERT_TRUE(rr.ok());
  ASSERT_EQ(rr.ranks.size(), 4u);
  EXPECT_TRUE(rr.ranks[0].reported);
  EXPECT_EQ(rr.ranks[0].checksum, native_sum);
}

TEST_P(AbiConformance, NasIsParity) {
  unsigned long long native_sum = 0;
  {
    mpi::Machine m(config(), 4, GetParam());
    m.run([&](mpi::Mpi& mpi) {
      const auto r = nas::run_is(mpi, 1);
      EXPECT_TRUE(r.verified);
      if (mpi.world().rank() == 0) native_sum = r.checksum;
    });
  }
  mpi::Machine m(config(), 4, GetParam());
  const mpiabi::RunResult rr = mpiabi::run_program(m, sp_abi_nas_is_main, {"1"});
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr.ranks[0].checksum, native_sum);
}

INSTANTIATE_TEST_SUITE_P(AllChannels, AbiConformance,
                         ::testing::Values(mpi::Backend::kNativePipes,
                                           mpi::Backend::kLapiEnhanced,
                                           mpi::Backend::kRdma),
                         [](const ::testing::TestParamInfo<mpi::Backend>& info) {
                           switch (info.param) {
                             case mpi::Backend::kNativePipes: return "native";
                             case mpi::Backend::kLapiEnhanced: return "enhanced";
                             default: return "rdma";
                           }
                         });

TEST(AbiHarness, ArgvPlumbing) {
  mpi::Machine m(sim::MachineConfig::tbmx_332(), 2, mpi::Backend::kLapiEnhanced);
  const mpiabi::RunResult rr = mpiabi::run_with_abi(m, [](int) {
    MPI_Init(nullptr, nullptr);
    MPI_Finalize();
    return 0;
  });
  EXPECT_TRUE(rr.ok());
  EXPECT_EQ(rr.ranks.size(), 2u);
}

TEST(AbiHarness, NonzeroExitCodeFailsRun) {
  mpi::Machine m(sim::MachineConfig::tbmx_332(), 2, mpi::Backend::kLapiEnhanced);
  const mpiabi::RunResult rr =
      mpiabi::run_with_abi(m, [](int rank) { return rank == 1 ? 3 : 0; });
  EXPECT_FALSE(rr.ok());
  EXPECT_EQ(rr.ranks[1].exit_code, 3);
}

}  // namespace
}  // namespace sp
