// NAS mini-kernel tests: every kernel verifies its internal invariant on
// every backend, produces bit-identical checksums across backends, and runs
// on several node counts.
#include <gtest/gtest.h>

#include <map>

#include "mpi/machine.hpp"
#include "nas/kernels.hpp"

namespace sp::nas {
namespace {

using mpi::Backend;
using mpi::Machine;
using sim::MachineConfig;

struct NasParam {
  std::string kernel;
  Backend backend;
};

KernelResult run_kernel(const std::string& name, Backend backend, int nodes, int scale) {
  MachineConfig cfg;
  Machine m(cfg, nodes, backend);
  KernelResult out;
  for (auto& [kname, fn] : all_kernels()) {
    if (kname != name) continue;
    m.run([&, f = fn](mpi::Mpi& mpi) {
      auto r = f(mpi, scale);
      if (mpi.world().rank() == 0) out = r;
    });
    return out;
  }
  ADD_FAILURE() << "unknown kernel " << name;
  return out;
}

class NasKernels : public ::testing::TestWithParam<NasParam> {};

TEST_P(NasKernels, VerifiesOnFourNodes) {
  const auto res = run_kernel(GetParam().kernel, GetParam().backend, 4, 1);
  EXPECT_TRUE(res.verified) << GetParam().kernel;
  EXPECT_NE(res.checksum, 0u);
}

std::vector<NasParam> all_params() {
  std::vector<NasParam> ps;
  for (auto& [name, fn] : all_kernels()) {
    (void)fn;
    for (Backend b : {Backend::kNativePipes, Backend::kLapiBase, Backend::kLapiCounters,
                      Backend::kLapiEnhanced}) {
      ps.push_back({name, b});
    }
  }
  return ps;
}

std::string nas_name(const ::testing::TestParamInfo<NasParam>& info) {
  std::string b = info.param.backend == Backend::kNativePipes ? "Native"
                  : info.param.backend == Backend::kLapiBase  ? "Base"
                  : info.param.backend == Backend::kLapiCounters ? "Counters"
                                                                 : "Enhanced";
  return info.param.kernel + "_" + b;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllBackends, NasKernels, ::testing::ValuesIn(all_params()),
                         nas_name);

TEST(NasCrossBackend, ChecksumsIdenticalAcrossBackends) {
  for (auto& [name, fn] : all_kernels()) {
    (void)fn;
    std::map<Backend, std::uint64_t> sums;
    for (Backend b : {Backend::kNativePipes, Backend::kLapiBase, Backend::kLapiCounters,
                      Backend::kLapiEnhanced}) {
      sums[b] = run_kernel(name, b, 4, 1).checksum;
    }
    for (auto& [b, c] : sums) {
      EXPECT_EQ(c, sums[Backend::kNativePipes])
          << name << ": backend changes the numerical result";
    }
  }
}

TEST(NasNodeCounts, KernelsRunOnOddAndLargerMachines) {
  for (int nodes : {1, 2, 3, 8}) {
    for (auto& [name, fn] : all_kernels()) {
      (void)fn;
      const auto res = run_kernel(name, Backend::kLapiEnhanced, nodes, 1);
      EXPECT_TRUE(res.verified) << name << " on " << nodes << " nodes";
    }
  }
}

TEST(NasTiming, FasterMpiNeverSlowsAKernelMuch) {
  // MPI-LAPI Enhanced should be within a hair of native on every kernel
  // (and typically ahead); a large regression flags a protocol bug.
  for (auto& [name, fn] : all_kernels()) {
    (void)fn;
    MachineConfig cfg;
    Machine mn(cfg, 4, Backend::kNativePipes);
    mn.run([&, f = fn](mpi::Mpi& mpi) { (void)f(mpi, 1); });
    Machine ml(cfg, 4, Backend::kLapiEnhanced);
    ml.run([&, f = fn](mpi::Mpi& mpi) { (void)f(mpi, 1); });
    EXPECT_LT(sim::to_us(ml.elapsed()), sim::to_us(mn.elapsed()) * 1.06)
        << name << ": MPI-LAPI more than 6% slower than native";
  }
}

}  // namespace
}  // namespace sp::nas
