// spsim: command-line driver for the simulated SP machine.
//
// Runs the standard experiments with configurable machine parameters and
// prints CSV-friendly output plus (optionally) the per-machine statistics.
//
//   spsim latency   [options]          ping-pong latency sweep
//   spsim bandwidth [options]          streaming bandwidth sweep
//   spsim interrupt [options]          interrupt-mode latency sweep
//   spsim nas       [options]          NAS mini-kernel table
//   spsim stats     [options]          one ping-pong with full statistics
//   spsim trace     [options]          dump a protocol-event timeline
//   spsim metrics   [options]          telemetry counters + histograms
//   spsim explore   [options]          differential Pipes<->LAPI conformance fuzzing
//   spsim record    [options]          record a per-rank MPI op trace
//   spsim replay    [options]          replay a trace under a what-if config
//   spsim sweep     [options]          sharded (workload x config x seed) batch run
//
// Options:
//   --backend native|base|counters|enhanced|rdma   (default enhanced;
//                                              --channel is an alias)
//   --nodes N          machine size (default 2; nas default 4)
//   --size BYTES       single message size instead of the sweep
//   --iters N          iterations per measurement (default 24)
//   --eager BYTES      eager limit (default 4096)
//   --drop P           packet drop probability (default 0)
//   --dup P            packet duplication probability (default 0)
//   --jitter NS        max extra per-delivery jitter in ns (default 0)
//   --burst N          drop N consecutive packets per loss event (default 1)
//   --seed S           fabric fault-injection seed
//   --scale N          NAS problem scale (default 2)
//   --testbed tbmx|tb3 node/adapter generation (default tbmx)
//   --coll-algo SPEC   pin collective algorithms, e.g.
//                      "allreduce=rabenseifner,bcast=pipelined" ("all=auto"
//                      clears every pin; explore ignores this — its
//                      perturbation vectors carry their own pins)
//   --topology T       interconnect: sp (default), fattree, torus2d, torus3d,
//                      dragonfly (DESIGN.md §13)
//   --trace-ring BYTES telemetry ring size; overrides the per-node auto-scaling
//   --csv              machine-readable output
//   --format text|json|csv   trace export format (default text)
//   --out FILE         write the trace there instead of stdout
//   --abi              nas: also run the C MPI_* ABI ports and require
//                      bit-identical checksums against the native kernels
//
// Record/replay options:
//   --workload ep|is|mix  what to record (default mix; ep/is use --scale)
//   --out FILE         record: trace file (default stdout)
//   --in FILE          replay: trace file (required)
//                      replay re-reads --backend/--eager/--drop/--coll-algo/
//                      --topology as the what-if config; the digest must match
//                      the recording run's digest for a conformant simulator
//
// Sweep options:
//   --quick            the CI matrix: 7 workloads x 3 channels x 2 eager
//                      limits x {lossless, 1%% drop} x --seeds seeds
//   --seeds N          seeds per cell (default 3; 252 jobs)
//   --workers N        host worker threads (default: cores, capped at 8)
//   --out FILE         JSON-lines stream, completion order (default stdout)
//   --json FILE        write the aggregate BENCH_sweep.json there
//
// Explore options:
//   --seeds N          master seeds to sweep (default 256)
//   --budget N         machine-execution budget incl. shrinking (default seeds*8)
//   --msgs N           soup messages per rank (default 12)
//   --seed-base S      first master seed (default 1)
//   --repro TOKEN      replay one shrunken vector instead of sweeping
//   --trace-out FILE   Perfetto/Chrome-JSON trace of the failing (or repro) run
//
// Explore --systematic options (DESIGN.md §15):
//   --systematic       enumerate ALL non-equivalent interleavings (DFS with
//                      sleep sets) of a wildcard workload instead of sampling
//   --ranks N          machine size (default 2; --nodes wins when given)
//   --depth D          max recorded choice points per run (default 64)
//   --window NS        candidate-window width in ns (default 0 = same-time)
//   --interleavings N  stop after N interleavings (default 0 = exhaustive)
//   --msg-bytes B      payload length (default 24; > eager limit = rendezvous)
//   --msgs N           messages per rank per peer (default 1 in this mode)
//   --cert-out FILE    write the certificate JSON there (jq-gated in CI)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "mpi/coll.hpp"
#include "mpi/optrace.hpp"
#include "mpiabi/apps/apps.h"
#include "mpiabi/mpiabi.hpp"
#include "net/topology.hpp"
#include "nas/kernels.hpp"
#include "sim/explorer.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace sp;

struct Options {
  std::string cmd = "latency";
  mpi::Backend backend = mpi::Backend::kLapiEnhanced;
  int nodes = 0;  // 0 = command default
  std::size_t size = 0;
  int iters = 24;
  std::size_t eager = 4096;
  double drop = 0.0;
  double dup = 0.0;
  long long jitter = 0;
  int burst = 1;
  unsigned long long seed = 0x5eed;
  int scale = 2;
  bool tb3 = false;
  bool csv = false;
  std::string coll_algo;
  std::string topology;
  long long trace_ring = 0;  // bytes; 0 = config default / node-count auto
  std::string format = "text";
  std::string out;
  // explore
  int explore_seeds = 256;
  int budget = 0;  // 0 = seeds * 8
  int msgs = 12;
  bool msgs_set = false;  // --systematic defaults to 1 msg/rank unless --msgs given
  unsigned long long seed_base = 1;
  std::string repro;
  std::string trace_out;
  bool inject_reack_bug = false;  // hidden: re-introduce the PR 2 ack storm
  // explore --systematic
  bool systematic = false;
  int ranks = 2;
  int depth = 64;
  long long window = 0;
  long long interleavings = 0;  // 0 = unlimited
  long long msg_bytes = 24;
  std::string cert_out;
  // nas / record / replay / sweep
  bool abi = false;
  std::string workload = "mix";
  std::string in;
  bool quick = false;
  int sweep_seeds = 3;
  int workers = 0;
  std::string json_out;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: spsim latency|bandwidth|interrupt|nas|stats|trace|metrics|explore|"
               "record|replay|sweep "
               "[--backend native|base|counters|enhanced|rdma] [--nodes N] [--size B] [--iters N] "
               "[--eager B] [--drop P] [--dup P] [--jitter NS] [--burst N] "
               "[--seed S] [--scale N] [--coll-algo SPEC] "
               "[--topology sp|fattree|torus2d|torus3d|dragonfly] [--trace-ring BYTES] [--csv] "
               "[--format text|json|csv] [--out FILE] "
               "[--seeds N] [--budget N] [--msgs N] [--seed-base S] [--repro TOKEN] "
               "[--trace-out FILE] [--systematic] [--ranks N] [--depth D] [--window NS] "
               "[--interleavings N] [--msg-bytes B] [--cert-out FILE] [--abi] "
               "[--workload ep|is|mix] [--in FILE] [--quick] [--workers N] [--json FILE]\n");
  std::exit(2);
}

mpi::Backend parse_backend(const std::string& s) {
  if (s == "native") return mpi::Backend::kNativePipes;
  if (s == "base") return mpi::Backend::kLapiBase;
  if (s == "counters") return mpi::Backend::kLapiCounters;
  if (s == "enhanced") return mpi::Backend::kLapiEnhanced;
  if (s == "rdma") return mpi::Backend::kRdma;
  usage();
}

Options parse(int argc, char** argv) {
  Options o;
  if (argc < 2) usage();
  o.cmd = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--opt value" and "--opt=value".
    std::string inline_val;
    bool has_inline = false;
    if (const auto eq = a.find('='); eq != std::string::npos) {
      inline_val = a.substr(eq + 1);
      a.erase(eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_val.c_str();
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--backend" || a == "--channel") {
      o.backend = parse_backend(next());
    } else if (a == "--nodes") {
      o.nodes = std::atoi(next());
    } else if (a == "--size") {
      o.size = std::strtoull(next(), nullptr, 10);
    } else if (a == "--iters") {
      o.iters = std::atoi(next());
    } else if (a == "--eager") {
      o.eager = std::strtoull(next(), nullptr, 10);
    } else if (a == "--drop") {
      o.drop = std::atof(next());
    } else if (a == "--dup") {
      o.dup = std::atof(next());
    } else if (a == "--jitter") {
      o.jitter = std::atoll(next());
    } else if (a == "--burst") {
      o.burst = std::atoi(next());
    } else if (a == "--seed") {
      o.seed = std::strtoull(next(), nullptr, 0);
    } else if (a == "--scale") {
      o.scale = std::atoi(next());
    } else if (a == "--testbed") {
      const std::string t = next();
      if (t == "tb3") o.tb3 = true;
      else if (t != "tbmx") usage();
    } else if (a == "--coll-algo") {
      o.coll_algo = next();
    } else if (a == "--topology") {
      o.topology = next();
    } else if (a == "--trace-ring") {
      o.trace_ring = std::atoll(next());
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--format") {
      o.format = next();
      if (o.format != "text" && o.format != "json" && o.format != "csv") usage();
    } else if (a == "--out") {
      o.out = next();
    } else if (a == "--seeds") {
      o.explore_seeds = std::atoi(next());
      o.sweep_seeds = o.explore_seeds;
    } else if (a == "--budget") {
      o.budget = std::atoi(next());
    } else if (a == "--msgs") {
      o.msgs = std::atoi(next());
      o.msgs_set = true;
    } else if (a == "--seed-base") {
      o.seed_base = std::strtoull(next(), nullptr, 0);
    } else if (a == "--repro") {
      o.repro = next();
    } else if (a == "--trace-out") {
      o.trace_out = next();
    } else if (a == "--inject-reack-bug") {
      o.inject_reack_bug = true;
    } else if (a == "--systematic") {
      o.systematic = true;
    } else if (a == "--ranks") {
      o.ranks = std::atoi(next());
    } else if (a == "--depth") {
      o.depth = std::atoi(next());
    } else if (a == "--window") {
      o.window = std::atoll(next());
    } else if (a == "--interleavings") {
      o.interleavings = std::atoll(next());
    } else if (a == "--msg-bytes") {
      o.msg_bytes = std::atoll(next());
    } else if (a == "--cert-out") {
      o.cert_out = next();
    } else if (a == "--abi") {
      o.abi = true;
    } else if (a == "--workload") {
      o.workload = next();
    } else if (a == "--in") {
      o.in = next();
    } else if (a == "--quick") {
      o.quick = true;
    } else if (a == "--workers") {
      o.workers = std::atoi(next());
    } else if (a == "--json") {
      o.json_out = next();
    } else {
      usage();
    }
  }
  return o;
}

sim::MachineConfig make_config(const Options& o) {
  sim::MachineConfig cfg = o.tb3 ? sim::MachineConfig::tb3_p2sc() : sim::MachineConfig::tbmx_332();
  cfg.eager_limit = o.eager;
  cfg.packet_drop_rate = o.drop;
  cfg.packet_dup_rate = o.dup;
  cfg.packet_jitter_ns = o.jitter;
  cfg.burst_drop_len = o.burst;
  cfg.fabric_seed = o.seed;
  if (o.drop > 0) cfg.retransmit_timeout_ns = 400'000;
  if (!o.topology.empty()) {
    if (!net::topology_from_name(o.topology, &cfg.topology)) {
      std::fprintf(stderr, "spsim: bad --topology: %s\n", o.topology.c_str());
      std::exit(2);
    }
  }
  if (o.trace_ring > 0) {
    // An explicit ring size wins over the per-node auto-scaling.
    cfg.telemetry_ring_bytes = static_cast<std::size_t>(o.trace_ring);
    cfg.telemetry_ring_bytes_per_node = 0;
  }
  if (!o.coll_algo.empty()) {
    std::string err;
    if (!mpi::coll::apply_algo_spec(cfg, o.coll_algo, &err)) {
      std::fprintf(stderr, "spsim: bad --coll-algo: %s\n", err.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

std::vector<std::size_t> sizes_for(const Options& o, std::size_t sweep_max) {
  if (o.size > 0) return {o.size};
  return bench::size_sweep(sweep_max);
}

int cmd_latency(const Options& o) {
  const auto cfg = make_config(o);
  if (!o.csv) std::printf("# one-way latency (us), %s\n", mpi::backend_name(o.backend));
  std::printf(o.csv ? "size,latency_us\n" : "%-10s %12s\n", "size", "latency_us");
  for (std::size_t s : sizes_for(o, 1 << 16)) {
    const double us = bench::mpi_pingpong_us(cfg, o.backend, s, o.iters);
    std::printf(o.csv ? "%zu,%.3f\n" : "%-10zu %12.2f\n", s, us);
  }
  return 0;
}

int cmd_bandwidth(const Options& o) {
  const auto cfg = make_config(o);
  if (!o.csv) std::printf("# streaming bandwidth (MB/s), %s\n", mpi::backend_name(o.backend));
  std::printf(o.csv ? "size,mb_per_s\n" : "%-10s %12s\n", "size", "MB/s");
  for (std::size_t s : sizes_for(o, 1 << 20)) {
    const double mbs = bench::mpi_bandwidth_mbs(cfg, o.backend, s, o.iters);
    std::printf(o.csv ? "%zu,%.3f\n" : "%-10zu %12.2f\n", s, mbs);
  }
  return 0;
}

int cmd_interrupt(const Options& o) {
  const auto cfg = make_config(o);
  if (!o.csv) {
    std::printf("# interrupt-mode one-way latency (us), %s\n", mpi::backend_name(o.backend));
  }
  std::printf(o.csv ? "size,latency_us\n" : "%-10s %12s\n", "size", "latency_us");
  for (std::size_t s : sizes_for(o, 1 << 16)) {
    const double us = bench::mpi_interrupt_pingpong_us(cfg, o.backend, s, o.iters / 2 + 1);
    std::printf(o.csv ? "%zu,%.3f\n" : "%-10zu %12.2f\n", s, us);
  }
  return 0;
}

/// nas --abi: every ported kernel, run natively and again through the C MPI_*
/// veneer, must report bit-identical checksums on the selected channel.
int cmd_nas_abi(const Options& o) {
  const auto cfg = make_config(o);
  const int nodes = o.nodes > 0 ? o.nodes : 4;
  struct AbiKernel {
    const char* name;
    nas::KernelResult (*native)(mpi::Mpi&, int);
    mpiabi::MainFn abi_main;
  };
  const AbiKernel kernels[] = {{"ep", nas::run_ep, sp_abi_nas_ep_main},
                               {"is", nas::run_is, sp_abi_nas_is_main}};
  std::printf(o.csv ? "kernel,native_ms,abi_ms,match\n" : "%-8s %12s %12s %8s\n", "kernel",
              "native_ms", "abi_ms", "match");
  bool all_match = true;
  for (const AbiKernel& k : kernels) {
    mpi::Machine native(cfg, nodes, o.backend);
    std::uint64_t native_sum = 0;
    bool native_ok = true;
    native.run([&](mpi::Mpi& mpi) {
      const auto r = k.native(mpi, o.scale);
      if (!r.verified) native_ok = false;
      if (mpi.world().rank() == 0) native_sum = r.checksum;
    });
    mpi::Machine abi(cfg, nodes, o.backend);
    const mpiabi::RunResult rr =
        mpiabi::run_program(abi, k.abi_main, {std::to_string(o.scale)});
    const std::uint64_t abi_sum = rr.ranks.empty() ? 0 : rr.ranks[0].checksum;
    const bool match = native_ok && rr.ok() && native_sum == abi_sum;
    all_match = all_match && match;
    const double native_ms = sim::to_us(native.elapsed()) / 1000.0;
    const double abi_ms = sim::to_us(rr.elapsed) / 1000.0;
    if (o.csv) {
      std::printf("%s,%.3f,%.3f,%d\n", k.name, native_ms, abi_ms, match ? 1 : 0);
    } else {
      std::printf("%-8s %12.2f %12.2f %8s\n", k.name, native_ms, abi_ms,
                  match ? "yes" : "NO");
    }
    if (!match) {
      std::fprintf(stderr, "spsim: %s checksum mismatch: native %016llx abi %016llx\n",
                   k.name, static_cast<unsigned long long>(native_sum),
                   static_cast<unsigned long long>(abi_sum));
    }
  }
  return all_match ? 0 : 1;
}

int cmd_nas(const Options& o) {
  if (o.abi) return cmd_nas_abi(o);
  const auto cfg = make_config(o);
  const int nodes = o.nodes > 0 ? o.nodes : 4;
  std::printf(o.csv ? "kernel,ms,verified\n" : "%-8s %12s %10s\n", "kernel", "ms", "verified");
  for (auto& [name, fn] : nas::all_kernels()) {
    mpi::Machine m(cfg, nodes, o.backend);
    bool ok = true;
    m.run([&, f = fn](mpi::Mpi& mpi) {
      const auto r = f(mpi, o.scale);
      if (!r.verified) ok = false;
    });
    const double ms = sim::to_us(m.elapsed()) / 1000.0;
    if (o.csv) {
      std::printf("%s,%.3f,%d\n", name.c_str(), ms, ok ? 1 : 0);
    } else {
      std::printf("%-8s %12.2f %10s\n", name.c_str(), ms, ok ? "yes" : "NO");
    }
  }
  return 0;
}

/// record --workload mix: a deliberately gnarly body — nonblocking p2p,
/// wildcard receives, communicator dup/split, collectives on a subcomm, and
/// compute phases — so a recorded trace exercises most of the op vocabulary.
void mix_workload(mpi::Mpi& mpi) {
  auto& w = mpi.world();
  const int n = w.size();
  const int me = w.rank();
  const int to = (me + 1) % n;
  const int from = (me - 1 + n) % n;
  std::vector<std::int64_t> pay(32, me + 1);
  std::vector<std::int64_t> in(32, 0);
  mpi::Request r = mpi.irecv(in.data(), in.size(), mpi::Datatype::kLong, mpi::kAnySource,
                             mpi::kAnyTag, w);
  mpi.send(pay.data(), pay.size(), mpi::Datatype::kLong, to, 7, w);
  mpi.wait(r);
  mpi.compute(5'000 * (me + 1));
  mpi::Comm dup = mpi.dup(w);
  std::vector<std::int64_t> sum(32, 0);
  mpi.allreduce(pay.data(), sum.data(), pay.size(), mpi::Datatype::kLong, mpi::Op::kSum, dup);
  mpi::Comm half = mpi.split(w, me % 2, me);
  mpi.bcast(sum.data(), sum.size(), mpi::Datatype::kLong, 0, half);
  mpi.sendrecv(sum.data(), 8, to, 9, in.data(), 8, from, 9, mpi::Datatype::kLong, w);
  mpi.barrier(w);
}

int cmd_record(const Options& o) {
  const auto cfg = make_config(o);
  const int nodes = o.nodes > 0 ? o.nodes : 4;
  mpi::Machine m(cfg, nodes, o.backend);
  mpi::optrace::Recorder rec(nodes);
  mpi::optrace::attach(m, &rec);
  bool verified = true;
  if (o.workload == "ep" || o.workload == "is") {
    const bool is_is = o.workload == "is";
    m.run([&](mpi::Mpi& mpi) {
      const auto r = is_is ? nas::run_is(mpi, o.scale) : nas::run_ep(mpi, o.scale);
      if (!r.verified) verified = false;
    });
  } else if (o.workload == "mix") {
    m.run(mix_workload);
  } else {
    std::fprintf(stderr, "spsim: bad --workload: %s (want ep|is|mix)\n", o.workload.c_str());
    return 2;
  }
  if (!verified) {
    std::fprintf(stderr, "spsim: %s failed verification during recording\n",
                 o.workload.c_str());
    return 1;
  }
  const mpi::optrace::Trace t = rec.take(o.workload, o.scale);
  if (o.out.empty()) {
    mpi::optrace::save_text(t, std::cout);
  } else {
    std::ofstream os(o.out);
    if (!os) {
      std::fprintf(stderr, "spsim: cannot open %s\n", o.out.c_str());
      return 1;
    }
    mpi::optrace::save_text(t, os);
  }
  std::size_t total = 0;
  for (const auto& ops : t.per_rank) total += ops.size();
  std::fprintf(stderr, "recorded %s: %d ranks, %zu ops\n", t.workload.c_str(), t.ranks,
               total);
  return 0;
}

int cmd_replay(const Options& o) {
  if (o.in.empty()) {
    std::fprintf(stderr, "spsim: replay needs --in FILE\n");
    return 2;
  }
  std::ifstream is(o.in);
  if (!is) {
    std::fprintf(stderr, "spsim: cannot open %s\n", o.in.c_str());
    return 1;
  }
  mpi::optrace::Trace t;
  std::string err;
  if (!mpi::optrace::load_text(is, &t, &err)) {
    std::fprintf(stderr, "spsim: bad trace %s: %s\n", o.in.c_str(), err.c_str());
    return 1;
  }
  const auto cfg = make_config(o);
  const auto r = mpi::optrace::replay(t, cfg, o.backend);
  if (!r.ok) {
    std::fprintf(stderr, "spsim: replay failed: %s\n", r.error.c_str());
    return 1;
  }
  if (o.csv) {
    std::printf("workload,backend,digest,elapsed_ns,sim_events\n%s,%s,%016llx,%lld,%llu\n",
                t.workload.c_str(), mpi::backend_name(o.backend),
                static_cast<unsigned long long>(r.digest),
                static_cast<long long>(r.elapsed),
                static_cast<unsigned long long>(r.sim_events));
  } else {
    std::printf("replayed %s (%d ranks) on %s: digest %016llx, %.3f ms, %llu events\n",
                t.workload.c_str(), t.ranks, mpi::backend_name(o.backend),
                static_cast<unsigned long long>(r.digest), sim::to_us(r.elapsed) / 1000.0,
                static_cast<unsigned long long>(r.sim_events));
  }
  return 0;
}

int cmd_sweep(const Options& o) {
  std::vector<sweep::SweepJob> jobs = sweep::quick_matrix(o.quick ? o.sweep_seeds : 1);
  sweep::SweepOptions so;
  so.workers = o.workers;
  std::FILE* stream = stdout;
  if (!o.out.empty()) {
    stream = std::fopen(o.out.c_str(), "w");
    if (stream == nullptr) {
      std::fprintf(stderr, "spsim: cannot open %s\n", o.out.c_str());
      return 1;
    }
  }
  so.stream = stream;
  std::fprintf(stderr, "# sweep: %zu jobs\n", jobs.size());
  const sweep::SweepReport rep = sweep::run_sweep(jobs, so);
  if (stream != stdout) std::fclose(stream);
  if (!o.json_out.empty() && !sweep::write_bench_json(rep, o.json_out)) {
    std::fprintf(stderr, "spsim: cannot write %s\n", o.json_out.c_str());
    return 1;
  }
  int ok_jobs = 0;
  for (const auto& r : rep.results) ok_jobs += r.ok ? 1 : 0;
  std::fprintf(stderr, "# sweep: %d/%zu ok, %d workers, %llu steals, verified=%s\n",
               ok_jobs, rep.results.size(), rep.workers,
               static_cast<unsigned long long>(rep.steals),
               rep.all_verified() ? "yes" : "NO");
  for (const auto& row : rep.rows) {
    std::fprintf(stderr, "#   %-10s %-8s n=%-3d p50=%.3fms p90=%.3fms p99=%.3fms\n",
                 row.workload.c_str(), row.backend.c_str(), row.jobs, row.p50_ms, row.p90_ms,
                 row.p99_ms);
  }
  return rep.all_ok() && rep.all_verified() ? 0 : 1;
}

// Shared by trace/metrics: one message exchange with both trace systems on.
std::unique_ptr<mpi::Machine> traced_run(const Options& o) {
  auto cfg = make_config(o);
  cfg.trace_enabled = true;
  cfg.telemetry_enabled = true;
  const int nodes = o.nodes > 0 ? o.nodes : 2;
  const std::size_t size = o.size > 0 ? o.size : 1024;
  auto m = std::make_unique<mpi::Machine>(cfg, nodes, o.backend);
  m->run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(size);
    if (w.rank() == 0) {
      mpi.send(buf.data(), size, mpi::Datatype::kByte, 1 % w.size(), 0, w);
    } else if (w.rank() == 1) {
      mpi.recv(buf.data(), size, mpi::Datatype::kByte, 0, 0, w);
    }
  });
  return m;
}

int cmd_trace(const Options& o) {
  auto m = traced_run(o);
  std::FILE* out = stdout;
  if (!o.out.empty()) {
    out = std::fopen(o.out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "spsim: cannot open %s\n", o.out.c_str());
      return 1;
    }
  }
  if (o.format == "json") {
    m->telemetry()->export_chrome_json(out);
  } else if (o.format == "csv") {
    m->telemetry()->export_csv(out);
  } else {
    m->trace()->dump(out);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}

int cmd_metrics(const Options& o) {
  auto m = traced_run(o);
  m->telemetry()->print_metrics(stdout);
  m->print_stats(stdout);
  return 0;
}

int cmd_stats(const Options& o) {
  const auto cfg = make_config(o);
  const int nodes = o.nodes > 0 ? o.nodes : 2;
  const std::size_t size = o.size > 0 ? o.size : 4096;
  mpi::Machine m(cfg, nodes, o.backend);
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(size);
    const int peer = (w.rank() + 1) % w.size();
    const int from = (w.rank() - 1 + w.size()) % w.size();
    for (int i = 0; i < o.iters; ++i) {
      mpi::Request r = mpi.irecv(buf.data(), size, mpi::Datatype::kByte, from, 0, w);
      mpi.send(buf.data(), size, mpi::Datatype::kByte, peer, 0, w);
      mpi.wait(r);
    }
    mpi.barrier(w);
  });
  m.print_stats(stdout);
  return 0;
}

/// Certificate JSON for the systematic mode: machine-readable enough for the
/// nightly jq gate (interleavings > 0, mismatches == 0), human-readable
/// enough to paste into a bug report. Empty path = stdout only (skipped).
bool write_certificate(const sim::SystematicReport& rep, const sim::SystematicOptions& so,
                       const std::string& path) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"systematic\",\n");
  std::fprintf(f, "  \"backend\": \"%s\",\n", mpi::backend_name(so.backend));
  std::fprintf(f, "  \"ranks\": %d,\n", so.ranks);
  std::fprintf(f, "  \"msgs_per_rank\": %d,\n", so.msgs_per_rank);
  std::fprintf(f, "  \"msg_bytes\": %u,\n", so.msg_bytes);
  std::fprintf(f, "  \"depth\": %d,\n", so.depth);
  std::fprintf(f, "  \"window_ns\": %lld,\n", static_cast<long long>(so.window_ns));
  std::fprintf(f, "  \"coll_spec\": \"%s\",\n", so.coll_spec.c_str());
  std::fprintf(f, "  \"complete\": %s,\n", rep.complete ? "true" : "false");
  std::fprintf(f, "  \"depth_limited\": %s,\n", rep.depth_limited ? "true" : "false");
  std::fprintf(f, "  \"interleavings\": %ld,\n", rep.interleavings);
  std::fprintf(f, "  \"redundant\": %ld,\n", rep.redundant);
  std::fprintf(f, "  \"runs\": %ld,\n", rep.runs);
  std::fprintf(f, "  \"choice_points\": %ld,\n", rep.choice_points);
  std::fprintf(f, "  \"max_fanout\": %d,\n", rep.max_fanout);
  std::fprintf(f, "  \"fanout_capped\": %ld,\n", rep.fanout_capped);
  std::fprintf(f, "  \"distinct_outcomes\": %zu,\n", rep.distinct_outcomes);
  std::fprintf(f, "  \"certificate_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(rep.certificate_digest));
  std::fprintf(f, "  \"invariant_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(rep.invariant_digest));
  std::fprintf(f, "  \"mismatches\": %zu,\n", rep.mismatches.size());
  std::fprintf(f, "  \"repro_tokens\": [");
  for (std::size_t i = 0; i < rep.mismatches.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", rep.mismatches[i].token.c_str());
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  return true;
}

int cmd_explore(const Options& o) {
  sim::Explorer::Options eo;
  eo.nodes = o.nodes > 0 ? o.nodes : 4;
  eo.msgs_per_rank = o.msgs;
  eo.base_seed = o.seed_base;
  eo.seeds = o.explore_seeds;
  eo.max_runs = o.budget;
  eo.lapi_backend = o.backend == mpi::Backend::kNativePipes ? mpi::Backend::kLapiEnhanced
                                                            : o.backend;
  eo.inject_reack_bug = o.inject_reack_bug;
  eo.log = stdout;
  eo.base_config = o.tb3 ? sim::MachineConfig::tb3_p2sc() : sim::MachineConfig::tbmx_332();
  eo.base_config.eager_limit = o.eager;
  if (!o.topology.empty() &&
      !net::topology_from_name(o.topology, &eo.base_config.topology)) {
    std::fprintf(stderr, "spsim: bad --topology: %s\n", o.topology.c_str());
    return 2;
  }
  sim::Explorer ex(eo);

  if (!o.repro.empty()) {
    // Replay a single shrunken vector found by an earlier sweep.
    const auto p = sim::Perturbation::parse(o.repro);
    if (!p) {
      std::fprintf(stderr, "spsim: malformed repro token '%s'\n", o.repro.c_str());
      return 2;
    }
    const auto failure = ex.check(*p);
    std::printf("repro %s: %s\n", o.repro.c_str(),
                failure ? failure->c_str() : "conformant (no divergence)");
    const bool sys_token = (p->flags & sim::Perturbation::kFlagSystematic) != 0;
    if (!o.trace_out.empty() && sys_token) {
      std::fprintf(stderr,
                   "spsim: --trace-out is not supported for systematic (x5) tokens\n");
    } else if (!o.trace_out.empty() &&
               !ex.export_trace(*p, eo.lapi_backend, o.trace_out)) {
      std::fprintf(stderr, "spsim: trace export to %s failed\n", o.trace_out.c_str());
    }
    return failure ? 1 : 0;
  }

  if (o.systematic) {
    sim::SystematicOptions so;
    so.ranks = o.nodes > 0 ? o.nodes : o.ranks;
    so.msgs_per_rank = o.msgs_set ? o.msgs : 1;
    so.msg_bytes = static_cast<std::uint32_t>(o.msg_bytes);
    so.depth = o.depth;
    so.window_ns = o.window;
    so.backend = o.backend;
    so.max_interleavings = o.interleavings;
    so.canonical_check = false;
    so.coll_spec = o.coll_algo;  // pinned collective phase checked per interleaving
    so.log = stdout;
    std::printf("# explore --systematic: %d ranks, %d msgs/rank, %lld-byte payloads, %s%s%s\n",
                so.ranks, so.msgs_per_rank, o.msg_bytes, mpi::backend_name(so.backend),
                so.coll_spec.empty() ? "" : ", coll ", so.coll_spec.c_str());
    const sim::SystematicReport rep = ex.explore_systematic(so);
    if (!write_certificate(rep, so, o.cert_out)) {
      std::fprintf(stderr, "spsim: writing certificate to %s failed\n", o.cert_out.c_str());
      return 2;
    }
    if (!rep.mismatches.empty()) {
      for (const auto& mm : rep.mismatches) {
        std::printf("MISMATCH: %s\n  repro: spsim explore --repro=%s\n", mm.reason.c_str(),
                    mm.token.c_str());
      }
      return 1;
    }
    std::printf("%s: %ld interleavings, %ld pruned, %zu distinct outcomes, "
                "certificate %016llx\n",
                rep.complete ? "certificate complete" : "enumeration INCOMPLETE",
                rep.interleavings, rep.redundant, rep.distinct_outcomes,
                static_cast<unsigned long long>(rep.certificate_digest));
    return 0;
  }

  std::printf("# explore: %d seeds from %llu, %d nodes, %d msgs/rank, pipes vs %s\n",
              eo.seeds, o.seed_base, eo.nodes, eo.msgs_per_rank,
              mpi::backend_name(eo.lapi_backend));
  const sim::Explorer::Report rep = ex.explore();
  std::printf("# %d seeds checked, %d machine runs\n", rep.seeds_run, rep.runs);
  if (rep.mismatches.empty()) {
    std::printf("conformant: no divergence between channels\n");
    return 0;
  }
  for (const auto& mm : rep.mismatches) {
    std::printf("MISMATCH (seed %llu): %s\n",
                static_cast<unsigned long long>(mm.original.seed), mm.reason.c_str());
    std::printf("  shrunk token: %s\n  repro: spsim explore --repro=%s\n", mm.token.c_str(),
                mm.token.c_str());
    if (!o.trace_out.empty() &&
        !ex.export_trace(mm.shrunk, eo.lapi_backend, o.trace_out)) {
      std::fprintf(stderr, "spsim: trace export to %s failed\n", o.trace_out.c_str());
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.cmd == "latency") return cmd_latency(o);
  if (o.cmd == "bandwidth") return cmd_bandwidth(o);
  if (o.cmd == "interrupt") return cmd_interrupt(o);
  if (o.cmd == "nas") return cmd_nas(o);
  if (o.cmd == "stats") return cmd_stats(o);
  if (o.cmd == "trace") return cmd_trace(o);
  if (o.cmd == "metrics") return cmd_metrics(o);
  if (o.cmd == "explore") return cmd_explore(o);
  if (o.cmd == "record") return cmd_record(o);
  if (o.cmd == "replay") return cmd_replay(o);
  if (o.cmd == "sweep") return cmd_sweep(o);
  usage();
}
