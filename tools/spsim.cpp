// spsim: command-line driver for the simulated SP machine.
//
// Runs the standard experiments with configurable machine parameters and
// prints CSV-friendly output plus (optionally) the per-machine statistics.
//
//   spsim latency   [options]          ping-pong latency sweep
//   spsim bandwidth [options]          streaming bandwidth sweep
//   spsim interrupt [options]          interrupt-mode latency sweep
//   spsim nas       [options]          NAS mini-kernel table
//   spsim stats     [options]          one ping-pong with full statistics
//   spsim trace     [options]          dump a protocol-event timeline
//   spsim metrics   [options]          telemetry counters + histograms
//   spsim explore   [options]          differential Pipes<->LAPI conformance fuzzing
//
// Options:
//   --backend native|base|counters|enhanced|rdma   (default enhanced;
//                                              --channel is an alias)
//   --nodes N          machine size (default 2; nas default 4)
//   --size BYTES       single message size instead of the sweep
//   --iters N          iterations per measurement (default 24)
//   --eager BYTES      eager limit (default 4096)
//   --drop P           packet drop probability (default 0)
//   --dup P            packet duplication probability (default 0)
//   --jitter NS        max extra per-delivery jitter in ns (default 0)
//   --burst N          drop N consecutive packets per loss event (default 1)
//   --seed S           fabric fault-injection seed
//   --scale N          NAS problem scale (default 2)
//   --testbed tbmx|tb3 node/adapter generation (default tbmx)
//   --coll-algo SPEC   pin collective algorithms, e.g.
//                      "allreduce=rabenseifner,bcast=pipelined" ("all=auto"
//                      clears every pin; explore ignores this — its
//                      perturbation vectors carry their own pins)
//   --topology T       interconnect: sp (default), fattree, torus2d, torus3d,
//                      dragonfly (DESIGN.md §13)
//   --trace-ring BYTES telemetry ring size; overrides the per-node auto-scaling
//   --csv              machine-readable output
//   --format text|json|csv   trace export format (default text)
//   --out FILE         write the trace there instead of stdout
//
// Explore options:
//   --seeds N          master seeds to sweep (default 256)
//   --budget N         machine-execution budget incl. shrinking (default seeds*8)
//   --msgs N           soup messages per rank (default 12)
//   --seed-base S      first master seed (default 1)
//   --repro TOKEN      replay one shrunken vector instead of sweeping
//   --trace-out FILE   Perfetto/Chrome-JSON trace of the failing (or repro) run
//
// Explore --systematic options (DESIGN.md §15):
//   --systematic       enumerate ALL non-equivalent interleavings (DFS with
//                      sleep sets) of a wildcard workload instead of sampling
//   --ranks N          machine size (default 2; --nodes wins when given)
//   --depth D          max recorded choice points per run (default 64)
//   --window NS        candidate-window width in ns (default 0 = same-time)
//   --interleavings N  stop after N interleavings (default 0 = exhaustive)
//   --msg-bytes B      payload length (default 24; > eager limit = rendezvous)
//   --msgs N           messages per rank per peer (default 1 in this mode)
//   --cert-out FILE    write the certificate JSON there (jq-gated in CI)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "mpi/coll.hpp"
#include "net/topology.hpp"
#include "nas/kernels.hpp"
#include "sim/explorer.hpp"

namespace {

using namespace sp;

struct Options {
  std::string cmd = "latency";
  mpi::Backend backend = mpi::Backend::kLapiEnhanced;
  int nodes = 0;  // 0 = command default
  std::size_t size = 0;
  int iters = 24;
  std::size_t eager = 4096;
  double drop = 0.0;
  double dup = 0.0;
  long long jitter = 0;
  int burst = 1;
  unsigned long long seed = 0x5eed;
  int scale = 2;
  bool tb3 = false;
  bool csv = false;
  std::string coll_algo;
  std::string topology;
  long long trace_ring = 0;  // bytes; 0 = config default / node-count auto
  std::string format = "text";
  std::string out;
  // explore
  int explore_seeds = 256;
  int budget = 0;  // 0 = seeds * 8
  int msgs = 12;
  bool msgs_set = false;  // --systematic defaults to 1 msg/rank unless --msgs given
  unsigned long long seed_base = 1;
  std::string repro;
  std::string trace_out;
  bool inject_reack_bug = false;  // hidden: re-introduce the PR 2 ack storm
  // explore --systematic
  bool systematic = false;
  int ranks = 2;
  int depth = 64;
  long long window = 0;
  long long interleavings = 0;  // 0 = unlimited
  long long msg_bytes = 24;
  std::string cert_out;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: spsim latency|bandwidth|interrupt|nas|stats|trace|metrics|explore "
               "[--backend native|base|counters|enhanced|rdma] [--nodes N] [--size B] [--iters N] "
               "[--eager B] [--drop P] [--dup P] [--jitter NS] [--burst N] "
               "[--seed S] [--scale N] [--coll-algo SPEC] "
               "[--topology sp|fattree|torus2d|torus3d|dragonfly] [--trace-ring BYTES] [--csv] "
               "[--format text|json|csv] [--out FILE] "
               "[--seeds N] [--budget N] [--msgs N] [--seed-base S] [--repro TOKEN] "
               "[--trace-out FILE] [--systematic] [--ranks N] [--depth D] [--window NS] "
               "[--interleavings N] [--msg-bytes B] [--cert-out FILE]\n");
  std::exit(2);
}

mpi::Backend parse_backend(const std::string& s) {
  if (s == "native") return mpi::Backend::kNativePipes;
  if (s == "base") return mpi::Backend::kLapiBase;
  if (s == "counters") return mpi::Backend::kLapiCounters;
  if (s == "enhanced") return mpi::Backend::kLapiEnhanced;
  if (s == "rdma") return mpi::Backend::kRdma;
  usage();
}

Options parse(int argc, char** argv) {
  Options o;
  if (argc < 2) usage();
  o.cmd = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--opt value" and "--opt=value".
    std::string inline_val;
    bool has_inline = false;
    if (const auto eq = a.find('='); eq != std::string::npos) {
      inline_val = a.substr(eq + 1);
      a.erase(eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_val.c_str();
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--backend" || a == "--channel") {
      o.backend = parse_backend(next());
    } else if (a == "--nodes") {
      o.nodes = std::atoi(next());
    } else if (a == "--size") {
      o.size = std::strtoull(next(), nullptr, 10);
    } else if (a == "--iters") {
      o.iters = std::atoi(next());
    } else if (a == "--eager") {
      o.eager = std::strtoull(next(), nullptr, 10);
    } else if (a == "--drop") {
      o.drop = std::atof(next());
    } else if (a == "--dup") {
      o.dup = std::atof(next());
    } else if (a == "--jitter") {
      o.jitter = std::atoll(next());
    } else if (a == "--burst") {
      o.burst = std::atoi(next());
    } else if (a == "--seed") {
      o.seed = std::strtoull(next(), nullptr, 0);
    } else if (a == "--scale") {
      o.scale = std::atoi(next());
    } else if (a == "--testbed") {
      const std::string t = next();
      if (t == "tb3") o.tb3 = true;
      else if (t != "tbmx") usage();
    } else if (a == "--coll-algo") {
      o.coll_algo = next();
    } else if (a == "--topology") {
      o.topology = next();
    } else if (a == "--trace-ring") {
      o.trace_ring = std::atoll(next());
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--format") {
      o.format = next();
      if (o.format != "text" && o.format != "json" && o.format != "csv") usage();
    } else if (a == "--out") {
      o.out = next();
    } else if (a == "--seeds") {
      o.explore_seeds = std::atoi(next());
    } else if (a == "--budget") {
      o.budget = std::atoi(next());
    } else if (a == "--msgs") {
      o.msgs = std::atoi(next());
      o.msgs_set = true;
    } else if (a == "--seed-base") {
      o.seed_base = std::strtoull(next(), nullptr, 0);
    } else if (a == "--repro") {
      o.repro = next();
    } else if (a == "--trace-out") {
      o.trace_out = next();
    } else if (a == "--inject-reack-bug") {
      o.inject_reack_bug = true;
    } else if (a == "--systematic") {
      o.systematic = true;
    } else if (a == "--ranks") {
      o.ranks = std::atoi(next());
    } else if (a == "--depth") {
      o.depth = std::atoi(next());
    } else if (a == "--window") {
      o.window = std::atoll(next());
    } else if (a == "--interleavings") {
      o.interleavings = std::atoll(next());
    } else if (a == "--msg-bytes") {
      o.msg_bytes = std::atoll(next());
    } else if (a == "--cert-out") {
      o.cert_out = next();
    } else {
      usage();
    }
  }
  return o;
}

sim::MachineConfig make_config(const Options& o) {
  sim::MachineConfig cfg = o.tb3 ? sim::MachineConfig::tb3_p2sc() : sim::MachineConfig::tbmx_332();
  cfg.eager_limit = o.eager;
  cfg.packet_drop_rate = o.drop;
  cfg.packet_dup_rate = o.dup;
  cfg.packet_jitter_ns = o.jitter;
  cfg.burst_drop_len = o.burst;
  cfg.fabric_seed = o.seed;
  if (o.drop > 0) cfg.retransmit_timeout_ns = 400'000;
  if (!o.topology.empty()) {
    if (!net::topology_from_name(o.topology, &cfg.topology)) {
      std::fprintf(stderr, "spsim: bad --topology: %s\n", o.topology.c_str());
      std::exit(2);
    }
  }
  if (o.trace_ring > 0) {
    // An explicit ring size wins over the per-node auto-scaling.
    cfg.telemetry_ring_bytes = static_cast<std::size_t>(o.trace_ring);
    cfg.telemetry_ring_bytes_per_node = 0;
  }
  if (!o.coll_algo.empty()) {
    std::string err;
    if (!mpi::coll::apply_algo_spec(cfg, o.coll_algo, &err)) {
      std::fprintf(stderr, "spsim: bad --coll-algo: %s\n", err.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

std::vector<std::size_t> sizes_for(const Options& o, std::size_t sweep_max) {
  if (o.size > 0) return {o.size};
  return bench::size_sweep(sweep_max);
}

int cmd_latency(const Options& o) {
  const auto cfg = make_config(o);
  if (!o.csv) std::printf("# one-way latency (us), %s\n", mpi::backend_name(o.backend));
  std::printf(o.csv ? "size,latency_us\n" : "%-10s %12s\n", "size", "latency_us");
  for (std::size_t s : sizes_for(o, 1 << 16)) {
    const double us = bench::mpi_pingpong_us(cfg, o.backend, s, o.iters);
    std::printf(o.csv ? "%zu,%.3f\n" : "%-10zu %12.2f\n", s, us);
  }
  return 0;
}

int cmd_bandwidth(const Options& o) {
  const auto cfg = make_config(o);
  if (!o.csv) std::printf("# streaming bandwidth (MB/s), %s\n", mpi::backend_name(o.backend));
  std::printf(o.csv ? "size,mb_per_s\n" : "%-10s %12s\n", "size", "MB/s");
  for (std::size_t s : sizes_for(o, 1 << 20)) {
    const double mbs = bench::mpi_bandwidth_mbs(cfg, o.backend, s, o.iters);
    std::printf(o.csv ? "%zu,%.3f\n" : "%-10zu %12.2f\n", s, mbs);
  }
  return 0;
}

int cmd_interrupt(const Options& o) {
  const auto cfg = make_config(o);
  if (!o.csv) {
    std::printf("# interrupt-mode one-way latency (us), %s\n", mpi::backend_name(o.backend));
  }
  std::printf(o.csv ? "size,latency_us\n" : "%-10s %12s\n", "size", "latency_us");
  for (std::size_t s : sizes_for(o, 1 << 16)) {
    const double us = bench::mpi_interrupt_pingpong_us(cfg, o.backend, s, o.iters / 2 + 1);
    std::printf(o.csv ? "%zu,%.3f\n" : "%-10zu %12.2f\n", s, us);
  }
  return 0;
}

int cmd_nas(const Options& o) {
  const auto cfg = make_config(o);
  const int nodes = o.nodes > 0 ? o.nodes : 4;
  std::printf(o.csv ? "kernel,ms,verified\n" : "%-8s %12s %10s\n", "kernel", "ms", "verified");
  for (auto& [name, fn] : nas::all_kernels()) {
    mpi::Machine m(cfg, nodes, o.backend);
    bool ok = true;
    m.run([&, f = fn](mpi::Mpi& mpi) {
      const auto r = f(mpi, o.scale);
      if (!r.verified) ok = false;
    });
    const double ms = sim::to_us(m.elapsed()) / 1000.0;
    if (o.csv) {
      std::printf("%s,%.3f,%d\n", name.c_str(), ms, ok ? 1 : 0);
    } else {
      std::printf("%-8s %12.2f %10s\n", name.c_str(), ms, ok ? "yes" : "NO");
    }
  }
  return 0;
}

// Shared by trace/metrics: one message exchange with both trace systems on.
std::unique_ptr<mpi::Machine> traced_run(const Options& o) {
  auto cfg = make_config(o);
  cfg.trace_enabled = true;
  cfg.telemetry_enabled = true;
  const int nodes = o.nodes > 0 ? o.nodes : 2;
  const std::size_t size = o.size > 0 ? o.size : 1024;
  auto m = std::make_unique<mpi::Machine>(cfg, nodes, o.backend);
  m->run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(size);
    if (w.rank() == 0) {
      mpi.send(buf.data(), size, mpi::Datatype::kByte, 1 % w.size(), 0, w);
    } else if (w.rank() == 1) {
      mpi.recv(buf.data(), size, mpi::Datatype::kByte, 0, 0, w);
    }
  });
  return m;
}

int cmd_trace(const Options& o) {
  auto m = traced_run(o);
  std::FILE* out = stdout;
  if (!o.out.empty()) {
    out = std::fopen(o.out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "spsim: cannot open %s\n", o.out.c_str());
      return 1;
    }
  }
  if (o.format == "json") {
    m->telemetry()->export_chrome_json(out);
  } else if (o.format == "csv") {
    m->telemetry()->export_csv(out);
  } else {
    m->trace()->dump(out);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}

int cmd_metrics(const Options& o) {
  auto m = traced_run(o);
  m->telemetry()->print_metrics(stdout);
  m->print_stats(stdout);
  return 0;
}

int cmd_stats(const Options& o) {
  const auto cfg = make_config(o);
  const int nodes = o.nodes > 0 ? o.nodes : 2;
  const std::size_t size = o.size > 0 ? o.size : 4096;
  mpi::Machine m(cfg, nodes, o.backend);
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(size);
    const int peer = (w.rank() + 1) % w.size();
    const int from = (w.rank() - 1 + w.size()) % w.size();
    for (int i = 0; i < o.iters; ++i) {
      mpi::Request r = mpi.irecv(buf.data(), size, mpi::Datatype::kByte, from, 0, w);
      mpi.send(buf.data(), size, mpi::Datatype::kByte, peer, 0, w);
      mpi.wait(r);
    }
    mpi.barrier(w);
  });
  m.print_stats(stdout);
  return 0;
}

/// Certificate JSON for the systematic mode: machine-readable enough for the
/// nightly jq gate (interleavings > 0, mismatches == 0), human-readable
/// enough to paste into a bug report. Empty path = stdout only (skipped).
bool write_certificate(const sim::SystematicReport& rep, const sim::SystematicOptions& so,
                       const std::string& path) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"systematic\",\n");
  std::fprintf(f, "  \"backend\": \"%s\",\n", mpi::backend_name(so.backend));
  std::fprintf(f, "  \"ranks\": %d,\n", so.ranks);
  std::fprintf(f, "  \"msgs_per_rank\": %d,\n", so.msgs_per_rank);
  std::fprintf(f, "  \"msg_bytes\": %u,\n", so.msg_bytes);
  std::fprintf(f, "  \"depth\": %d,\n", so.depth);
  std::fprintf(f, "  \"window_ns\": %lld,\n", static_cast<long long>(so.window_ns));
  std::fprintf(f, "  \"coll_spec\": \"%s\",\n", so.coll_spec.c_str());
  std::fprintf(f, "  \"complete\": %s,\n", rep.complete ? "true" : "false");
  std::fprintf(f, "  \"depth_limited\": %s,\n", rep.depth_limited ? "true" : "false");
  std::fprintf(f, "  \"interleavings\": %ld,\n", rep.interleavings);
  std::fprintf(f, "  \"redundant\": %ld,\n", rep.redundant);
  std::fprintf(f, "  \"runs\": %ld,\n", rep.runs);
  std::fprintf(f, "  \"choice_points\": %ld,\n", rep.choice_points);
  std::fprintf(f, "  \"max_fanout\": %d,\n", rep.max_fanout);
  std::fprintf(f, "  \"fanout_capped\": %ld,\n", rep.fanout_capped);
  std::fprintf(f, "  \"distinct_outcomes\": %zu,\n", rep.distinct_outcomes);
  std::fprintf(f, "  \"certificate_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(rep.certificate_digest));
  std::fprintf(f, "  \"invariant_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(rep.invariant_digest));
  std::fprintf(f, "  \"mismatches\": %zu,\n", rep.mismatches.size());
  std::fprintf(f, "  \"repro_tokens\": [");
  for (std::size_t i = 0; i < rep.mismatches.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", rep.mismatches[i].token.c_str());
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  return true;
}

int cmd_explore(const Options& o) {
  sim::Explorer::Options eo;
  eo.nodes = o.nodes > 0 ? o.nodes : 4;
  eo.msgs_per_rank = o.msgs;
  eo.base_seed = o.seed_base;
  eo.seeds = o.explore_seeds;
  eo.max_runs = o.budget;
  eo.lapi_backend = o.backend == mpi::Backend::kNativePipes ? mpi::Backend::kLapiEnhanced
                                                            : o.backend;
  eo.inject_reack_bug = o.inject_reack_bug;
  eo.log = stdout;
  eo.base_config = o.tb3 ? sim::MachineConfig::tb3_p2sc() : sim::MachineConfig::tbmx_332();
  eo.base_config.eager_limit = o.eager;
  if (!o.topology.empty() &&
      !net::topology_from_name(o.topology, &eo.base_config.topology)) {
    std::fprintf(stderr, "spsim: bad --topology: %s\n", o.topology.c_str());
    return 2;
  }
  sim::Explorer ex(eo);

  if (!o.repro.empty()) {
    // Replay a single shrunken vector found by an earlier sweep.
    const auto p = sim::Perturbation::parse(o.repro);
    if (!p) {
      std::fprintf(stderr, "spsim: malformed repro token '%s'\n", o.repro.c_str());
      return 2;
    }
    const auto failure = ex.check(*p);
    std::printf("repro %s: %s\n", o.repro.c_str(),
                failure ? failure->c_str() : "conformant (no divergence)");
    const bool sys_token = (p->flags & sim::Perturbation::kFlagSystematic) != 0;
    if (!o.trace_out.empty() && sys_token) {
      std::fprintf(stderr,
                   "spsim: --trace-out is not supported for systematic (x5) tokens\n");
    } else if (!o.trace_out.empty() &&
               !ex.export_trace(*p, eo.lapi_backend, o.trace_out)) {
      std::fprintf(stderr, "spsim: trace export to %s failed\n", o.trace_out.c_str());
    }
    return failure ? 1 : 0;
  }

  if (o.systematic) {
    sim::SystematicOptions so;
    so.ranks = o.nodes > 0 ? o.nodes : o.ranks;
    so.msgs_per_rank = o.msgs_set ? o.msgs : 1;
    so.msg_bytes = static_cast<std::uint32_t>(o.msg_bytes);
    so.depth = o.depth;
    so.window_ns = o.window;
    so.backend = o.backend;
    so.max_interleavings = o.interleavings;
    so.canonical_check = false;
    so.coll_spec = o.coll_algo;  // pinned collective phase checked per interleaving
    so.log = stdout;
    std::printf("# explore --systematic: %d ranks, %d msgs/rank, %lld-byte payloads, %s%s%s\n",
                so.ranks, so.msgs_per_rank, o.msg_bytes, mpi::backend_name(so.backend),
                so.coll_spec.empty() ? "" : ", coll ", so.coll_spec.c_str());
    const sim::SystematicReport rep = ex.explore_systematic(so);
    if (!write_certificate(rep, so, o.cert_out)) {
      std::fprintf(stderr, "spsim: writing certificate to %s failed\n", o.cert_out.c_str());
      return 2;
    }
    if (!rep.mismatches.empty()) {
      for (const auto& mm : rep.mismatches) {
        std::printf("MISMATCH: %s\n  repro: spsim explore --repro=%s\n", mm.reason.c_str(),
                    mm.token.c_str());
      }
      return 1;
    }
    std::printf("%s: %ld interleavings, %ld pruned, %zu distinct outcomes, "
                "certificate %016llx\n",
                rep.complete ? "certificate complete" : "enumeration INCOMPLETE",
                rep.interleavings, rep.redundant, rep.distinct_outcomes,
                static_cast<unsigned long long>(rep.certificate_digest));
    return 0;
  }

  std::printf("# explore: %d seeds from %llu, %d nodes, %d msgs/rank, pipes vs %s\n",
              eo.seeds, o.seed_base, eo.nodes, eo.msgs_per_rank,
              mpi::backend_name(eo.lapi_backend));
  const sim::Explorer::Report rep = ex.explore();
  std::printf("# %d seeds checked, %d machine runs\n", rep.seeds_run, rep.runs);
  if (rep.mismatches.empty()) {
    std::printf("conformant: no divergence between channels\n");
    return 0;
  }
  for (const auto& mm : rep.mismatches) {
    std::printf("MISMATCH (seed %llu): %s\n",
                static_cast<unsigned long long>(mm.original.seed), mm.reason.c_str());
    std::printf("  shrunk token: %s\n  repro: spsim explore --repro=%s\n", mm.token.c_str(),
                mm.token.c_str());
    if (!o.trace_out.empty() &&
        !ex.export_trace(mm.shrunk, eo.lapi_backend, o.trace_out)) {
      std::fprintf(stderr, "spsim: trace export to %s failed\n", o.trace_out.c_str());
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.cmd == "latency") return cmd_latency(o);
  if (o.cmd == "bandwidth") return cmd_bandwidth(o);
  if (o.cmd == "interrupt") return cmd_interrupt(o);
  if (o.cmd == "nas") return cmd_nas(o);
  if (o.cmd == "stats") return cmd_stats(o);
  if (o.cmd == "trace") return cmd_trace(o);
  if (o.cmd == "metrics") return cmd_metrics(o);
  if (o.cmd == "explore") return cmd_explore(o);
  usage();
}
