file(REMOVE_RECURSE
  "CMakeFiles/spsim.dir/spsim.cpp.o"
  "CMakeFiles/spsim.dir/spsim.cpp.o.d"
  "spsim"
  "spsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
