# Empty dependencies file for spsim.
# This may be replaced when dependencies are built.
