
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/spsim.cpp" "tools/CMakeFiles/spsim.dir/spsim.cpp.o" "gcc" "tools/CMakeFiles/spsim.dir/spsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/bench/CMakeFiles/sp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nas/CMakeFiles/sp_nas.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mpi/CMakeFiles/sp_mpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mpci/CMakeFiles/sp_mpci.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pipes/CMakeFiles/sp_pipes.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lapi/CMakeFiles/sp_lapi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hal/CMakeFiles/sp_hal.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/sp_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/sp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
