file(REMOVE_RECURSE
  "CMakeFiles/sp_hal.dir/hal.cpp.o"
  "CMakeFiles/sp_hal.dir/hal.cpp.o.d"
  "libsp_hal.a"
  "libsp_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
