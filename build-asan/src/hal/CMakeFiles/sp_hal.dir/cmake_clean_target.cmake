file(REMOVE_RECURSE
  "libsp_hal.a"
)
