# Empty dependencies file for sp_hal.
# This may be replaced when dependencies are built.
