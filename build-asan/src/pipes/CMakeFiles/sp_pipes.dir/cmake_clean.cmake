file(REMOVE_RECURSE
  "CMakeFiles/sp_pipes.dir/pipes.cpp.o"
  "CMakeFiles/sp_pipes.dir/pipes.cpp.o.d"
  "libsp_pipes.a"
  "libsp_pipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_pipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
