# Empty dependencies file for sp_pipes.
# This may be replaced when dependencies are built.
