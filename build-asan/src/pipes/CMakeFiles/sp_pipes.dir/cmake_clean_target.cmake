file(REMOVE_RECURSE
  "libsp_pipes.a"
)
