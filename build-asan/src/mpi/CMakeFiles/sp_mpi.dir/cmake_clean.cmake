file(REMOVE_RECURSE
  "CMakeFiles/sp_mpi.dir/machine.cpp.o"
  "CMakeFiles/sp_mpi.dir/machine.cpp.o.d"
  "CMakeFiles/sp_mpi.dir/mpi.cpp.o"
  "CMakeFiles/sp_mpi.dir/mpi.cpp.o.d"
  "libsp_mpi.a"
  "libsp_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
