file(REMOVE_RECURSE
  "libsp_mpi.a"
)
