# Empty dependencies file for sp_mpi.
# This may be replaced when dependencies are built.
