# Empty dependencies file for sp_lapi.
# This may be replaced when dependencies are built.
