file(REMOVE_RECURSE
  "libsp_lapi.a"
)
