file(REMOVE_RECURSE
  "CMakeFiles/sp_lapi.dir/lapi.cpp.o"
  "CMakeFiles/sp_lapi.dir/lapi.cpp.o.d"
  "CMakeFiles/sp_lapi.dir/reliable_link.cpp.o"
  "CMakeFiles/sp_lapi.dir/reliable_link.cpp.o.d"
  "libsp_lapi.a"
  "libsp_lapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_lapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
