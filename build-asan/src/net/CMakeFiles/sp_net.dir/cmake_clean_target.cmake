file(REMOVE_RECURSE
  "libsp_net.a"
)
