# Empty dependencies file for sp_net.
# This may be replaced when dependencies are built.
