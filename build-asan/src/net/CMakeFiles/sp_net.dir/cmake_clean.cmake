file(REMOVE_RECURSE
  "CMakeFiles/sp_net.dir/switch_fabric.cpp.o"
  "CMakeFiles/sp_net.dir/switch_fabric.cpp.o.d"
  "libsp_net.a"
  "libsp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
