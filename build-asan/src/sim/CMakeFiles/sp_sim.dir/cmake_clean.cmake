file(REMOVE_RECURSE
  "CMakeFiles/sp_sim.dir/rank_thread.cpp.o"
  "CMakeFiles/sp_sim.dir/rank_thread.cpp.o.d"
  "libsp_sim.a"
  "libsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
