# Empty dependencies file for sp_sim.
# This may be replaced when dependencies are built.
