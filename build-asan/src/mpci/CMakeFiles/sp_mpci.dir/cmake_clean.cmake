file(REMOVE_RECURSE
  "CMakeFiles/sp_mpci.dir/lapi_channel.cpp.o"
  "CMakeFiles/sp_mpci.dir/lapi_channel.cpp.o.d"
  "CMakeFiles/sp_mpci.dir/pipes_channel.cpp.o"
  "CMakeFiles/sp_mpci.dir/pipes_channel.cpp.o.d"
  "libsp_mpci.a"
  "libsp_mpci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_mpci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
