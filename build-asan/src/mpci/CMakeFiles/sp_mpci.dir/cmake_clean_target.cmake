file(REMOVE_RECURSE
  "libsp_mpci.a"
)
