# Empty dependencies file for sp_mpci.
# This may be replaced when dependencies are built.
