file(REMOVE_RECURSE
  "libsp_nas.a"
)
