# Empty dependencies file for sp_nas.
# This may be replaced when dependencies are built.
