file(REMOVE_RECURSE
  "CMakeFiles/sp_nas.dir/bt_sp.cpp.o"
  "CMakeFiles/sp_nas.dir/bt_sp.cpp.o.d"
  "CMakeFiles/sp_nas.dir/cg_mg.cpp.o"
  "CMakeFiles/sp_nas.dir/cg_mg.cpp.o.d"
  "CMakeFiles/sp_nas.dir/ep_is.cpp.o"
  "CMakeFiles/sp_nas.dir/ep_is.cpp.o.d"
  "CMakeFiles/sp_nas.dir/ft_lu.cpp.o"
  "CMakeFiles/sp_nas.dir/ft_lu.cpp.o.d"
  "CMakeFiles/sp_nas.dir/kernels.cpp.o"
  "CMakeFiles/sp_nas.dir/kernels.cpp.o.d"
  "libsp_nas.a"
  "libsp_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
