file(REMOVE_RECURSE
  "libsp_bench_common.a"
)
