file(REMOVE_RECURSE
  "CMakeFiles/sp_bench_common.dir/common.cpp.o"
  "CMakeFiles/sp_bench_common.dir/common.cpp.o.d"
  "libsp_bench_common.a"
  "libsp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
