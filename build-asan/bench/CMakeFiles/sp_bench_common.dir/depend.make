# Empty dependencies file for sp_bench_common.
# This may be replaced when dependencies are built.
