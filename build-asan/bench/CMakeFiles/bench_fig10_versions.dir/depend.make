# Empty dependencies file for bench_fig10_versions.
# This may be replaced when dependencies are built.
