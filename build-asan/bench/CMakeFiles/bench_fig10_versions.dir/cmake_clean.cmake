file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_versions.dir/bench_fig10_versions.cpp.o"
  "CMakeFiles/bench_fig10_versions.dir/bench_fig10_versions.cpp.o.d"
  "bench_fig10_versions"
  "bench_fig10_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
