file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_modes.dir/bench_table2_modes.cpp.o"
  "CMakeFiles/bench_table2_modes.dir/bench_table2_modes.cpp.o.d"
  "bench_table2_modes"
  "bench_table2_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
