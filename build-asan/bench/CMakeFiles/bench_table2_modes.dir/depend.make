# Empty dependencies file for bench_table2_modes.
# This may be replaced when dependencies are built.
