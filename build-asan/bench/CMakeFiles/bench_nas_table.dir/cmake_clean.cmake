file(REMOVE_RECURSE
  "CMakeFiles/bench_nas_table.dir/bench_nas_table.cpp.o"
  "CMakeFiles/bench_nas_table.dir/bench_nas_table.cpp.o.d"
  "bench_nas_table"
  "bench_nas_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nas_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
