# Empty dependencies file for bench_nas_table.
# This may be replaced when dependencies are built.
