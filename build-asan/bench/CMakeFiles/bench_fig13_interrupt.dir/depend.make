# Empty dependencies file for bench_fig13_interrupt.
# This may be replaced when dependencies are built.
