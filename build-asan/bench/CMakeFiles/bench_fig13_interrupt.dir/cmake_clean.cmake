file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_interrupt.dir/bench_fig13_interrupt.cpp.o"
  "CMakeFiles/bench_fig13_interrupt.dir/bench_fig13_interrupt.cpp.o.d"
  "bench_fig13_interrupt"
  "bench_fig13_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
