# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpi_pingpong_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fabric_test[1]_include.cmake")
include("/root/repo/build-asan/tests/hal_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pipes_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lapi_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpi_modes_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpi_collectives_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpi_property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/machine_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpi_extensions_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpci_units_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stress_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpl_test[1]_include.cmake")
include("/root/repo/build-asan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-asan/tests/boundary_test[1]_include.cmake")
include("/root/repo/build-asan/tests/determinism_test[1]_include.cmake")
include("/root/repo/build-asan/tests/nas_test[1]_include.cmake")
include("/root/repo/build-asan/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build-asan/tests/torture_test[1]_include.cmake")
