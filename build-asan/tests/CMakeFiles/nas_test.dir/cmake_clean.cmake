file(REMOVE_RECURSE
  "CMakeFiles/nas_test.dir/nas_test.cpp.o"
  "CMakeFiles/nas_test.dir/nas_test.cpp.o.d"
  "nas_test"
  "nas_test.pdb"
  "nas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
