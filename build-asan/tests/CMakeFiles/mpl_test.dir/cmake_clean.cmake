file(REMOVE_RECURSE
  "CMakeFiles/mpl_test.dir/mpl_test.cpp.o"
  "CMakeFiles/mpl_test.dir/mpl_test.cpp.o.d"
  "mpl_test"
  "mpl_test.pdb"
  "mpl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
