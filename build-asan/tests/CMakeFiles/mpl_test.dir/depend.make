# Empty dependencies file for mpl_test.
# This may be replaced when dependencies are built.
