# Empty dependencies file for mpci_units_test.
# This may be replaced when dependencies are built.
