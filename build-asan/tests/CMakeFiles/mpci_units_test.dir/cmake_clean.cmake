file(REMOVE_RECURSE
  "CMakeFiles/mpci_units_test.dir/mpci_units_test.cpp.o"
  "CMakeFiles/mpci_units_test.dir/mpci_units_test.cpp.o.d"
  "mpci_units_test"
  "mpci_units_test.pdb"
  "mpci_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpci_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
