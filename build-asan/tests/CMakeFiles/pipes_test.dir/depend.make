# Empty dependencies file for pipes_test.
# This may be replaced when dependencies are built.
