file(REMOVE_RECURSE
  "CMakeFiles/pipes_test.dir/pipes_test.cpp.o"
  "CMakeFiles/pipes_test.dir/pipes_test.cpp.o.d"
  "pipes_test"
  "pipes_test.pdb"
  "pipes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
