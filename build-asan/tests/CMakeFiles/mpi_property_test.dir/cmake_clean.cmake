file(REMOVE_RECURSE
  "CMakeFiles/mpi_property_test.dir/mpi_property_test.cpp.o"
  "CMakeFiles/mpi_property_test.dir/mpi_property_test.cpp.o.d"
  "mpi_property_test"
  "mpi_property_test.pdb"
  "mpi_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
