# Empty dependencies file for mpi_property_test.
# This may be replaced when dependencies are built.
