file(REMOVE_RECURSE
  "CMakeFiles/mpi_pingpong_test.dir/mpi_pingpong_test.cpp.o"
  "CMakeFiles/mpi_pingpong_test.dir/mpi_pingpong_test.cpp.o.d"
  "mpi_pingpong_test"
  "mpi_pingpong_test.pdb"
  "mpi_pingpong_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_pingpong_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
