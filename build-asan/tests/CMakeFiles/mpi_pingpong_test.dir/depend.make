# Empty dependencies file for mpi_pingpong_test.
# This may be replaced when dependencies are built.
