# Empty dependencies file for mpi_modes_test.
# This may be replaced when dependencies are built.
