file(REMOVE_RECURSE
  "CMakeFiles/mpi_modes_test.dir/mpi_modes_test.cpp.o"
  "CMakeFiles/mpi_modes_test.dir/mpi_modes_test.cpp.o.d"
  "mpi_modes_test"
  "mpi_modes_test.pdb"
  "mpi_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
