file(REMOVE_RECURSE
  "CMakeFiles/hal_test.dir/hal_test.cpp.o"
  "CMakeFiles/hal_test.dir/hal_test.cpp.o.d"
  "hal_test"
  "hal_test.pdb"
  "hal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
