# Empty dependencies file for hal_test.
# This may be replaced when dependencies are built.
