file(REMOVE_RECURSE
  "CMakeFiles/mpi_extensions_test.dir/mpi_extensions_test.cpp.o"
  "CMakeFiles/mpi_extensions_test.dir/mpi_extensions_test.cpp.o.d"
  "mpi_extensions_test"
  "mpi_extensions_test.pdb"
  "mpi_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
