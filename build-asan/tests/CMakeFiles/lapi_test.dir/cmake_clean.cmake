file(REMOVE_RECURSE
  "CMakeFiles/lapi_test.dir/lapi_test.cpp.o"
  "CMakeFiles/lapi_test.dir/lapi_test.cpp.o.d"
  "lapi_test"
  "lapi_test.pdb"
  "lapi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
