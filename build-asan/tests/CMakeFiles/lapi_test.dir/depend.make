# Empty dependencies file for lapi_test.
# This may be replaced when dependencies are built.
