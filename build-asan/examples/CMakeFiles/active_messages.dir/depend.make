# Empty dependencies file for active_messages.
# This may be replaced when dependencies are built.
