file(REMOVE_RECURSE
  "CMakeFiles/active_messages.dir/active_messages.cpp.o"
  "CMakeFiles/active_messages.dir/active_messages.cpp.o.d"
  "active_messages"
  "active_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
