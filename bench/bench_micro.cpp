// Google-benchmark microbenchmarks of the simulator's own hot paths: event
// queue throughput, fabric routing, whole-machine construction, and simulated
// message rates. These measure REAL (host) time — they keep the simulator
// fast enough that the paper-scale experiments run in seconds.
#include <benchmark/benchmark.h>

#include "mpi/machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace sp;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Pcg32 rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(static_cast<sim::TimeNs>(rng.next()), [] {});
    }
    while (!q.empty()) {
      auto [t, a] = q.pop();
      benchmark::DoNotOptimize(t);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int hops = 0;
    std::function<void()> hop = [&] {
      if (++hops < 10000) sim.after(10, hop);
    };
    sim.after(0, hop);
    sim.run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_FabricInjectDeliver(benchmark::State& state) {
  sim::MachineConfig cfg;
  for (auto _ : state) {
    sim::Simulator sim;
    net::SwitchFabric fab(sim, cfg, 8);
    for (int i = 0; i < 8; ++i) fab.attach(i, [](net::Packet&&) {});
    sim.at(0, [&] {
      for (int i = 0; i < 1000; ++i) {
        net::Packet p;
        p.src = i % 8;
        p.dst = (i + 3) % 8;
        p.frame.assign(1024, std::byte{1});
        fab.inject(std::move(p));
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FabricInjectDeliver);

void BM_MachineConstruction(benchmark::State& state) {
  sim::MachineConfig cfg;
  for (auto _ : state) {
    mpi::Machine m(cfg, static_cast<int>(state.range(0)), mpi::Backend::kLapiEnhanced);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_MachineConstruction)->Arg(4)->Arg(16);

void BM_SimulatedPingPong(benchmark::State& state) {
  // Host-time cost of simulating one full 2-node ping-pong machine run.
  sim::MachineConfig cfg;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mpi::Machine m(cfg, 2, mpi::Backend::kLapiEnhanced);
    m.run([&](mpi::Mpi& mpi) {
      auto& w = mpi.world();
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < 10; ++i) {
        if (w.rank() == 0) {
          mpi.send(buf.data(), bytes, mpi::Datatype::kByte, 1, 0, w);
          mpi.recv(buf.data(), bytes, mpi::Datatype::kByte, 1, 0, w);
        } else {
          mpi.recv(buf.data(), bytes, mpi::Datatype::kByte, 0, 0, w);
          mpi.send(buf.data(), bytes, mpi::Datatype::kByte, 0, 0, w);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_SimulatedPingPong)->Arg(64)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
