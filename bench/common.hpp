// Shared measurement harness for the paper-reproduction benches.
//
// Measurements follow the paper's §5.1/§6.1 methodology:
//  - latency: messages bounced between two nodes (MPI_Send/MPI_Recv, or
//    LAPI_Put + LAPI_Waitcntr for the raw-LAPI curve); time per one-way
//    transfer = round-trip / 2, averaged over many iterations.
//  - bandwidth: a back-to-back stream of MPI_Isend, stopping the clock when
//    the last message is acknowledged by a zero-byte reply.
//  - interrupt-mode latency: the receiver pre-posts MPI_Irecv and spins on
//    completion *outside* the MPI library, so delivery needs an interrupt.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::bench {

/// One-way MPI latency in microseconds (polling mode).
double mpi_pingpong_us(const sim::MachineConfig& cfg, mpi::Backend backend, std::size_t bytes,
                       int iters);

/// One-way MPI latency in microseconds, interrupt-mode delivery (Fig. 13).
double mpi_interrupt_pingpong_us(const sim::MachineConfig& cfg, mpi::Backend backend,
                                 std::size_t bytes, int iters);

/// Streaming bandwidth in MB/s using MPI_Isend/MPI_Irecv (Fig. 12).
double mpi_bandwidth_mbs(const sim::MachineConfig& cfg, mpi::Backend backend, std::size_t bytes,
                         int iters);

/// One-way raw-LAPI latency in microseconds (LAPI_Put + LAPI_Waitcntr).
double raw_lapi_pingpong_us(const sim::MachineConfig& cfg, std::size_t bytes, int iters);

/// Message-size sweep used by the figures (1 B .. `max`).
[[nodiscard]] std::vector<std::size_t> size_sweep(std::size_t max);

/// Print a aligned table row of doubles.
void print_row(const std::string& label, const std::vector<double>& values);

}  // namespace sp::bench
