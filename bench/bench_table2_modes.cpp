// Table 2: translation of MPI communication modes to internal protocols,
// demonstrated behaviourally — each mode/size combination is sent on a live
// machine and the channel statistics show which protocol actually ran.
#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace sp;

const char* run_mode(mpi::Backend backend, char mode, std::size_t bytes) {
  sim::MachineConfig cfg;
  mpi::Machine m(cfg, 2, backend);
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<char> buf(bytes > 0 ? bytes : 1);
    if (w.rank() == 0) {
      switch (mode) {
        case 'S': mpi.send(buf.data(), bytes, mpi::Datatype::kByte, 1, 0, w); break;
        case 'R':
          mpi.compute(2 * sim::kMs);
          mpi.rsend(buf.data(), bytes, mpi::Datatype::kByte, 1, 0, w);
          break;
        case 'Y': mpi.ssend(buf.data(), bytes, mpi::Datatype::kByte, 1, 0, w); break;
        case 'B': {
          std::vector<char> pool(2 * bytes + 4096);
          mpi.buffer_attach(pool.data(), pool.size());
          mpi.bsend(buf.data(), bytes, mpi::Datatype::kByte, 1, 0, w);
          mpi.buffer_detach();
          break;
        }
        default: break;
      }
    } else {
      if (mode == 'R') {
        mpi::Request r = mpi.irecv(buf.data(), bytes, mpi::Datatype::kByte, 0, 0, w);
        mpi.wait(r);
      } else {
        mpi.recv(buf.data(), bytes, mpi::Datatype::kByte, 0, 0, w);
      }
    }
  });
  const bool rdv = m.channel(0).rendezvous_sends() > 0;
  return rdv ? "rendezvous" : "eager";
}

}  // namespace

int main() {
  using namespace sp;
  sim::MachineConfig cfg;
  const std::size_t small = 1024;             // below the 4 KiB eager limit
  const std::size_t large = 64 * 1024;        // above it

  std::printf("Table 2: MPI communication mode -> internal protocol (observed)\n");
  std::printf("%-14s %-22s %-22s\n", "mode", "size<=EagerLimit", "size>EagerLimit");
  struct Row {
    const char* name;
    char code;
  } rows[] = {{"Standard", 'S'}, {"Ready", 'R'}, {"Synchronous", 'Y'}, {"Buffered", 'B'}};
  for (const auto& r : rows) {
    const char* lo = run_mode(mpi::Backend::kLapiEnhanced, r.code, small);
    const char* hi = run_mode(mpi::Backend::kLapiEnhanced, r.code, large);
    std::printf("%-14s %-22s %-22s\n", r.name, lo, hi);
  }
  std::printf("\n(paper: Standard/Buffered switch at the eager limit; Ready always eager;\n"
              " Synchronous always rendezvous)\n");
  return 0;
}
