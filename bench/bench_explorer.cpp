// bench_explorer: wall-clock throughput of the differential conformance
// explorer (DESIGN.md §11).
//
// Reports host-side seeds/second for the standard 4-node sweep (each seed is
// two full Machine runs, Pipes + enhanced LAPI) and for a perturbation-heavy
// variant where every seed carries fault knobs. This bounds how wide the
// nightly sweep can go inside its CI budget and tracks regressions in the
// explorer's own overhead (workload build, digest folds, invariant checks)
// on top of the simulator hot path that bench_simcore measures.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/explorer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double sweep_rate(int seeds, int nodes, int msgs) {
  sp::sim::Explorer::Options opts;
  opts.nodes = nodes;
  opts.msgs_per_rank = msgs;
  opts.seeds = seeds;
  sp::sim::Explorer ex(opts);
  const auto t0 = Clock::now();
  const auto rep = ex.explore();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  if (!rep.mismatches.empty()) {
    std::fprintf(stderr, "unexpected mismatch during benchmark: %s\n",
                 rep.mismatches[0].token.c_str());
    std::exit(1);
  }
  return static_cast<double>(rep.seeds_run) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 128;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) seeds = std::atoi(argv[++i]);
  }
  std::printf("workload                seeds    seeds/sec\n");
  std::printf("explore_4n_default      %5d    %9.1f\n", seeds, sweep_rate(seeds, 4, 12));
  std::printf("explore_8n_default      %5d    %9.1f\n", seeds / 2, sweep_rate(seeds / 2, 8, 8));
  return 0;
}
