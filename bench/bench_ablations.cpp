// Ablation benches for the design choices DESIGN.md calls out:
//   1. eager-limit sweep        — where should eager/rendezvous switch?
//   2. context-switch cost      — how does the Base/Enhanced gap scale?
//   3. hysteresis window        — native interrupt latency vs window size
//   4. packet loss              — latency degradation under drops
//   5. route count              — 1 vs 4 switch routes under streaming load
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace sp;
  using mpi::Backend;

  std::printf("Ablation 1: eager limit vs one-way latency (us), MPI-LAPI Enhanced\n");
  std::printf("%-12s %12s %12s %12s\n", "limit(B)", "1KiB msg", "4KiB msg", "16KiB msg");
  for (std::size_t limit : {0ul, 256ul, 1024ul, 4096ul, 16384ul, 65536ul}) {
    sim::MachineConfig cfg;
    cfg.eager_limit = limit;
    bench::print_row(std::to_string(limit),
                     {bench::mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 1024, 16),
                      bench::mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 4096, 16),
                      bench::mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 16384, 16)});
  }

  std::printf("\nAblation 2: completion-handler thread switch cost vs Base/Enhanced gap\n");
  std::printf("%-12s %12s %12s %12s\n", "switch(us)", "Base(us)", "Enhanced(us)", "gap");
  for (sim::TimeNs sw : {0L, 5'000L, 13'000L, 26'000L, 52'000L, 104'000L}) {
    sim::MachineConfig cfg;
    cfg.completion_thread_switch_ns = sw;
    const double base = bench::mpi_pingpong_us(cfg, Backend::kLapiBase, 256, 16);
    const double enh = bench::mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 256, 16);
    bench::print_row(std::to_string(sw / 1000), {base, enh, base - enh});
  }

  std::printf("\nAblation 3: native interrupt hysteresis window vs latency (1 KiB)\n");
  std::printf("%-12s %12s\n", "window(us)", "latency(us)");
  for (sim::TimeNs wnd : {0L, 15'000L, 30'000L, 60'000L, 120'000L}) {
    sim::MachineConfig cfg;
    cfg.interrupt_hysteresis_ns = wnd;
    bench::print_row(std::to_string(wnd / 1000),
                     {bench::mpi_interrupt_pingpong_us(cfg, Backend::kNativePipes, 1024, 8)});
  }

  std::printf("\nAblation 4: packet drop rate vs latency (us), 4 KiB messages\n");
  std::printf("%-12s %12s %12s\n", "drop", "Native", "MPI-LAPI");
  for (double p : {0.0, 0.01, 0.05, 0.10}) {
    sim::MachineConfig cfg;
    cfg.packet_drop_rate = p;
    cfg.retransmit_timeout_ns = 400'000;
    char label[16];
    std::snprintf(label, sizeof label, "%.2f", p);
    bench::print_row(label, {bench::mpi_pingpong_us(cfg, Backend::kNativePipes, 4096, 12),
                             bench::mpi_pingpong_us(cfg, Backend::kLapiEnhanced, 4096, 12)});
  }

  std::printf("\nAblation 5: switch routes vs streaming bandwidth (MB/s), 64 KiB\n");
  std::printf("%-12s %12s\n", "routes", "bandwidth");
  for (int routes : {1, 2, 4, 8}) {
    sim::MachineConfig cfg;
    cfg.num_routes = routes;
    bench::print_row(std::to_string(routes),
                     {bench::mpi_bandwidth_mbs(cfg, Backend::kLapiEnhanced, 65536, 24)});
  }
  return 0;
}
