// Fabric-level bench: hotspot (all->one) vs uniform (all-to-all) traffic on
// the multistage switch, and the effect of multipathing under contention.
// This exercises the substrate the paper's machine runs on: per-link
// serialization, spine contention and route spraying.
#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace sp;

/// Aggregate delivered bandwidth (MB/s) for a traffic pattern on N nodes.
double pattern_mbs(int nodes, bool hotspot, int routes, std::size_t bytes_per_node) {
  sim::MachineConfig cfg;
  cfg.num_routes = routes;
  mpi::Machine m(cfg, nodes, mpi::Backend::kLapiEnhanced);
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    const int me = w.rank();
    std::vector<std::byte> buf(bytes_per_node);
    if (hotspot) {
      if (me == 0) {
        for (int s = 1; s < w.size(); ++s) {
          mpi.recv(buf.data(), bytes_per_node, mpi::Datatype::kByte, s, 0, w);
        }
      } else {
        mpi.send(buf.data(), bytes_per_node, mpi::Datatype::kByte, 0, 0, w);
      }
    } else {
      // Uniform shift pattern: everyone sends to (me+1), receives from (me-1).
      mpi::Request r = mpi.irecv(buf.data(), bytes_per_node, mpi::Datatype::kByte,
                                 (me - 1 + w.size()) % w.size(), 0, w);
      mpi.send(buf.data(), bytes_per_node, mpi::Datatype::kByte, (me + 1) % w.size(), 0, w);
      mpi.wait(r);
    }
  });
  const double total_bytes = static_cast<double>(bytes_per_node) * (m.num_tasks() - (hotspot ? 1 : 0));
  return (total_bytes / 1e6) / sim::to_sec(m.elapsed());
}

}  // namespace

int main() {
  using namespace sp;
  const std::size_t per_node = 256 * 1024;

  std::printf("Fabric traffic patterns: aggregate delivered bandwidth (MB/s)\n");
  std::printf("%-8s %14s %14s\n", "nodes", "hotspot->n0", "uniform-shift");
  for (int nodes : {4, 8, 16, 32}) {
    const double hs = pattern_mbs(nodes, true, 4, per_node);
    const double un = pattern_mbs(nodes, false, 4, per_node);
    std::printf("%-8d %14.1f %14.1f\n", nodes, hs, un);
  }

  std::printf("\nMultipathing under uniform load (16 nodes): routes vs bandwidth\n");
  std::printf("%-8s %14s\n", "routes", "MB/s");
  for (int routes : {1, 2, 4, 8}) {
    std::printf("%-8d %14.1f\n", routes, pattern_mbs(16, false, routes, per_node));
  }
  return 0;
}
