// Figure 13: interrupt-mode latency, native MPI vs MPI-LAPI Enhanced (§6.1).
//
// Method (paper): the receiver posts MPI_Irecv and busy-checks completion
// outside the library, so message delivery requires the interrupt path.
//
// Expected shape (paper): MPI-LAPI is consistently and considerably better;
// the native stack's interrupt handler employs a hysteresis scheme (it
// busy-waits for further packets before returning, growing the window when
// they arrive), which delays the wakeup of the spinning receiver. LAPI's
// interrupt handler has no such hysteresis.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace sp;
  sim::MachineConfig cfg;

  std::printf("Figure 13: one-way latency (us), interrupt mode\n");
  std::printf("%-24s %10s %10s %10s\n", "size(B)", "Native", "MPI-LAPI", "ratio");
  for (std::size_t s : bench::size_sweep(1 << 16)) {
    const int iters = 12;
    const double native =
        bench::mpi_interrupt_pingpong_us(cfg, mpi::Backend::kNativePipes, s, iters);
    const double enh =
        bench::mpi_interrupt_pingpong_us(cfg, mpi::Backend::kLapiEnhanced, s, iters);
    bench::print_row(std::to_string(s), {native, enh, native / enh});
  }
  return 0;
}
