// Collective-engine cutover sweep: every algorithm of every primitive, pinned
// via the MachineConfig knobs, across message sizes straddling the auto
// cutovers, on a 16-node enhanced-LAPI machine. Simulated time per operation
// is the metric (the cost model is deterministic, so one rep suffices); the
// per-primitive speedup rows compare the best non-seed algorithm against the
// seed algorithm at each size.
//
//   bench_collectives [--nodes N] [--iters N] [--quick] [--json FILE]
//
// Two RDMA-channel sections ride along (DESIGN.md §14): a barrier sweep
// comparing the NIC-resident barrier against the host dissemination barrier
// on the Pipes and LAPI channels across node counts, and a rendezvous
// crossover sweep comparing large-message ping-pong on the RDMA-read
// rendezvous against the LAPI-enhanced channel.
//
// A third section (DESIGN.md §16) scales a fat-tree machine to 128 nodes and
// compares the in-network combining allreduce/barrier against every host
// algorithm at a small payload, feeding the "in_network" JSON array.
//
// --quick keeps only the largest (acceptance) size per primitive, for the
// per-PR CI smoke. --json writes BENCH_collectives.json (see
// scripts/bench_json.sh), validated by CI with jq: at >= 256 KiB at least two
// primitives must show >= 1.3x over their seed algorithm, the NIC barrier
// must beat every host barrier at every node count, the RDMA rendezvous
// must beat LAPI-enhanced at >= 256 KiB, and the in-network allreduce and
// barrier must beat the best host algorithm at 128 nodes on the fat tree.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "mpi/coll.hpp"

namespace {

using namespace sp;

struct Case {
  const char* primitive;                     ///< apply_algo_spec key.
  std::vector<const char*> algorithms;       ///< First entry is the seed algorithm.
  std::vector<std::size_t> bytes;            ///< Last entry is the acceptance size.
};

struct Sample {
  const char* primitive;
  const char* algorithm;
  std::size_t bytes;
  double sim_us;
};

/// One barrier measurement: a (channel, algorithm) pair at one node count.
struct BarrierSample {
  int nodes;
  const char* channel;    ///< "pipes" | "enhanced" | "rdma".
  const char* algorithm;  ///< "dissemination" (host) or "nic" (adapter).
  double sim_us;
};

/// One large-message ping-pong measurement: rendezvous on one channel.
struct RdvSample {
  std::size_t bytes;
  const char* backend;  ///< "enhanced" | "rdma".
  double sim_us;
};

/// One at-scale measurement on the fat-tree fabric: the in-network combining
/// tables (DESIGN.md §16) against the host algorithms and the NIC offload.
struct ScaleSample {
  const char* primitive;  ///< "allreduce" | "barrier".
  const char* algorithm;
  int nodes;
  std::size_t bytes;  ///< 0 for barrier.
  double sim_us;
};

/// Simulated microseconds per operation with one algorithm pinned.
double run_case(const std::string& primitive, const std::string& algorithm, std::size_t bytes,
                int nodes, int iters) {
  sim::MachineConfig cfg;
  std::string err;
  if (!mpi::coll::apply_algo_spec(cfg, primitive + "=" + algorithm, &err)) {
    std::fprintf(stderr, "bench_collectives: %s\n", err.c_str());
    std::exit(2);
  }
  mpi::Machine m(cfg, nodes, mpi::Backend::kLapiEnhanced);
  double out = 0.0;
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    const std::size_t count = bytes / sizeof(double);
    std::vector<double> a(std::max<std::size_t>(count, 1), w.rank() + 1.0);
    std::vector<double> b(std::max<std::size_t>(count, 1), 0.0);
    std::vector<double> av(std::max<std::size_t>(count, 1) * n, w.rank() + 1.0);
    std::vector<double> bv(std::max<std::size_t>(count, 1) * n, 0.0);
    mpi.barrier(w);
    const double t0 = mpi.wtime();
    for (int i = 0; i < iters; ++i) {
      if (primitive == "bcast") {
        mpi.bcast(a.data(), count, mpi::Datatype::kDouble, 0, w);
      } else if (primitive == "allreduce") {
        mpi.allreduce(a.data(), b.data(), count, mpi::Datatype::kDouble, mpi::Op::kSum, w);
      } else if (primitive == "alltoall") {
        // `bytes` is the per-destination block here.
        mpi.alltoall(av.data(), count, bv.data(), mpi::Datatype::kDouble, w);
      } else if (primitive == "reduce_scatter") {
        // `bytes` is the total vector; each rank keeps bytes/n.
        mpi.reduce_scatter_block(av.data(), bv.data(), count / n, mpi::Datatype::kDouble,
                                 mpi::Op::kSum, w);
      } else if (primitive == "scan") {
        mpi.scan(a.data(), b.data(), count, mpi::Datatype::kDouble, mpi::Op::kSum, w);
      }
    }
    // Makespan, not rank 0's view: a rooted or chain algorithm lets early
    // ranks run ahead, so fold the slowest rank's elapsed time.
    double mine = mpi.wtime() - t0;
    double slowest = 0.0;
    mpi.allreduce(&mine, &slowest, 1, mpi::Datatype::kDouble, mpi::Op::kMax, w);
    if (w.rank() == 0) out = slowest * 1e6 / iters;
  });
  return out;
}

/// Simulated microseconds per barrier with one algorithm pinned on one
/// channel. The trailing max-allreduce folds the slowest rank's elapsed time
/// so a skewed release order cannot flatter the result.
double run_barrier(mpi::Backend backend, const std::string& algorithm, int nodes, int iters) {
  sim::MachineConfig cfg;
  std::string err;
  if (!mpi::coll::apply_algo_spec(cfg, "barrier=" + algorithm, &err)) {
    std::fprintf(stderr, "bench_collectives: %s\n", err.c_str());
    std::exit(2);
  }
  mpi::Machine m(cfg, nodes, backend);
  double out = 0.0;
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    mpi.barrier(w);
    const double t0 = mpi.wtime();
    for (int i = 0; i < iters; ++i) mpi.barrier(w);
    double mine = mpi.wtime() - t0;
    double slowest = 0.0;
    mpi.allreduce(&mine, &slowest, 1, mpi::Datatype::kDouble, mpi::Op::kMax, w);
    if (w.rank() == 0) out = slowest * 1e6 / iters;
  });
  return out;
}

/// Simulated microseconds per operation at scale on the fat-tree fabric with
/// one algorithm pinned. Used for the 128-node in-network cutover: the
/// combining tables finish in O(tree depth) switch hops while every host
/// algorithm pays O(log n) end-to-end message latencies.
double run_scale(mpi::Backend backend, const std::string& spec, const std::string& primitive,
                 std::size_t bytes, int nodes, int iters) {
  sim::MachineConfig cfg;
  cfg.topology = sim::TopologyKind::kFatTree;
  std::string err;
  if (!mpi::coll::apply_algo_spec(cfg, spec, &err)) {
    std::fprintf(stderr, "bench_collectives: %s\n", err.c_str());
    std::exit(2);
  }
  mpi::Machine m(cfg, nodes, backend);
  double out = 0.0;
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    const std::size_t count = std::max<std::size_t>(bytes / sizeof(double), 1);
    std::vector<double> a(count, w.rank() + 1.0);
    std::vector<double> b(count, 0.0);
    mpi.barrier(w);
    const double t0 = mpi.wtime();
    for (int i = 0; i < iters; ++i) {
      if (primitive == "allreduce") {
        mpi.allreduce(a.data(), b.data(), bytes / sizeof(double), mpi::Datatype::kDouble,
                      mpi::Op::kSum, w);
      } else {
        mpi.barrier(w);
      }
    }
    double mine = mpi.wtime() - t0;
    double slowest = 0.0;
    mpi.allreduce(&mine, &slowest, 1, mpi::Datatype::kDouble, mpi::Op::kMax, w);
    if (w.rank() == 0) out = slowest * 1e6 / iters;
  });
  return out;
}

/// Simulated microseconds per one-way message in a two-node ping-pong. Above
/// the eager limit this is a pure rendezvous measurement: LAPI-enhanced pays
/// the host RTS/CTS/data phases, the RDMA channel pulls with an RDMA read.
double run_pingpong(mpi::Backend backend, std::size_t bytes, int iters) {
  sim::MachineConfig cfg;
  mpi::Machine m(cfg, 2, backend);
  double out = 0.0;
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<char> buf(bytes, static_cast<char>(w.rank()));
    mpi.barrier(w);
    const double t0 = mpi.wtime();
    for (int i = 0; i < iters; ++i) {
      if (w.rank() == 0) {
        mpi.send(buf.data(), buf.size(), mpi::Datatype::kByte, 1, i, w);
        mpi.recv(buf.data(), buf.size(), mpi::Datatype::kByte, 1, i, w);
      } else {
        mpi.recv(buf.data(), buf.size(), mpi::Datatype::kByte, 0, i, w);
        mpi.send(buf.data(), buf.size(), mpi::Datatype::kByte, 0, i, w);
      }
    }
    if (w.rank() == 0) out = (mpi.wtime() - t0) * 1e6 / (2.0 * iters);
  });
  return out;
}

void write_json(const char* path, int nodes, const std::vector<Sample>& samples,
                const std::vector<Case>& cases, const std::vector<BarrierSample>& barriers,
                const std::vector<RdvSample>& rendezvous,
                const std::vector<ScaleSample>& innet) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_collectives: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"collectives\",\n  \"nodes\": %d,\n", nodes);
  std::fprintf(f, "  \"backend\": \"enhanced\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"primitive\": \"%s\", \"algorithm\": \"%s\", \"bytes\": %zu, "
                 "\"sim_us\": %.3f}%s\n",
                 s.primitive, s.algorithm, s.bytes, s.sim_us,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": [\n");
  // One row per (primitive, size): seed algorithm vs the best alternative.
  std::string rows;
  for (const Case& c : cases) {
    for (std::size_t bytes : c.bytes) {
      const Sample* seed = nullptr;
      const Sample* best = nullptr;
      for (const Sample& s : samples) {
        if (std::strcmp(s.primitive, c.primitive) != 0 || s.bytes != bytes) continue;
        if (std::strcmp(s.algorithm, c.algorithms[0]) == 0) {
          seed = &s;
        } else if (best == nullptr || s.sim_us < best->sim_us) {
          best = &s;
        }
      }
      if (seed == nullptr || best == nullptr) continue;
      char row[256];
      std::snprintf(row, sizeof(row),
                    "    {\"primitive\": \"%s\", \"bytes\": %zu, \"baseline\": \"%s\", "
                    "\"best\": \"%s\", \"speedup\": %.3f},\n",
                    c.primitive, bytes, seed->algorithm, best->algorithm,
                    seed->sim_us / best->sim_us);
      rows += row;
    }
  }
  if (!rows.empty()) rows.erase(rows.size() - 2, 1);  // drop the trailing comma
  std::fputs(rows.c_str(), f);
  std::fprintf(f, "  ],\n  \"barrier\": [\n");
  for (std::size_t i = 0; i < barriers.size(); ++i) {
    const BarrierSample& s = barriers[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"channel\": \"%s\", \"algorithm\": \"%s\", "
                 "\"sim_us\": %.3f}%s\n",
                 s.nodes, s.channel, s.algorithm, s.sim_us,
                 i + 1 < barriers.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"rendezvous\": [\n");
  for (std::size_t i = 0; i < rendezvous.size(); ++i) {
    const RdvSample& s = rendezvous[i];
    std::fprintf(f, "    {\"bytes\": %zu, \"backend\": \"%s\", \"sim_us\": %.3f}%s\n",
                 s.bytes, s.backend, s.sim_us, i + 1 < rendezvous.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"in_network\": [\n");
  for (std::size_t i = 0; i < innet.size(); ++i) {
    const ScaleSample& s = innet[i];
    std::fprintf(f,
                 "    {\"primitive\": \"%s\", \"algorithm\": \"%s\", \"nodes\": %d, "
                 "\"bytes\": %zu, \"topology\": \"fattree\", \"sim_us\": %.3f}%s\n",
                 s.primitive, s.algorithm, s.nodes, s.bytes, s.sim_us,
                 i + 1 < innet.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 16;
  int iters = 8;
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_collectives [--nodes N] [--iters N] [--quick] [--json FILE]\n");
      return 2;
    }
  }
  if (quick) iters = std::min(iters, 2);

  std::vector<Case> cases = {
      // Sizes straddle the cutovers (bcast pipeline >= 32 KiB, Rabenseifner
      // >= 16 KiB, Bruck <= 1 KiB blocks, halving >= 8 KiB total); the last
      // size is the acceptance point.
      {"bcast", {"binomial", "pipelined", "scatter_allgather"},
       {8 * 1024, 32 * 1024, 64 * 1024, 256 * 1024}},
      // in_network serves sizes up to in_network_coll_max_bytes (2 KiB) from
      // the switch combining tables and falls back to the host auto table
      // above it — 1/2/16 KiB straddle that cap.
      {"allreduce", {"reduce_bcast", "recursive_doubling", "rabenseifner", "in_network"},
       {1 * 1024, 2 * 1024, 16 * 1024, 64 * 1024, 256 * 1024}},
      {"alltoall", {"pairwise", "bruck"}, {128, 512, 2 * 1024}},
      {"reduce_scatter", {"reduce_scatter", "recursive_halving"},
       {8 * 1024, 64 * 1024, 256 * 1024}},
      {"scan", {"linear", "binomial"}, {1 * 1024, 16 * 1024}},
  };
  if (quick) {
    for (Case& c : cases) c.bytes = {c.bytes.back()};
  }

  std::vector<Sample> samples;
  std::printf("Collective cutover sweep: %d nodes, enhanced LAPI, simulated us/op\n", nodes);
  for (const Case& c : cases) {
    std::printf("\n%s (bytes%s):\n%-12s", c.primitive,
                std::strcmp(c.primitive, "alltoall") == 0      ? " per block"
                : std::strcmp(c.primitive, "reduce_scatter") == 0 ? " total"
                                                                  : "",
                "bytes");
    for (const char* algo : c.algorithms) std::printf(" %20s", algo);
    std::printf("\n");
    for (std::size_t bytes : c.bytes) {
      std::printf("%-12zu", bytes);
      for (const char* algo : c.algorithms) {
        const double us = run_case(c.primitive, algo, bytes, nodes, iters);
        samples.push_back({c.primitive, algo, bytes, us});
        std::printf(" %20.1f", us);
      }
      std::printf("\n");
    }
  }

  std::printf("\nSpeedup at the acceptance size (seed algorithm / best alternative):\n");
  for (const Case& c : cases) {
    const std::size_t bytes = c.bytes.back();
    double seed_us = 0.0, best_us = 0.0;
    const char* best_name = "";
    for (const Sample& s : samples) {
      if (std::strcmp(s.primitive, c.primitive) != 0 || s.bytes != bytes) continue;
      if (std::strcmp(s.algorithm, c.algorithms[0]) == 0) {
        seed_us = s.sim_us;
      } else if (best_us == 0.0 || s.sim_us < best_us) {
        best_us = s.sim_us;
        best_name = s.algorithm;
      }
    }
    std::printf("%-16s %8zu B  %-20s %6.2fx\n", c.primitive, bytes, best_name,
                best_us > 0 ? seed_us / best_us : 0.0);
  }

  // Barrier: the NIC-resident barrier against host dissemination on every
  // channel, across node counts straddling powers of two. The CI gate asserts
  // the adapter wins at every size.
  struct BarrierCfg {
    const char* channel;
    mpi::Backend backend;
    const char* algorithm;
  };
  const std::vector<BarrierCfg> barrier_cfgs = {
      {"pipes", mpi::Backend::kNativePipes, "dissemination"},
      {"enhanced", mpi::Backend::kLapiEnhanced, "dissemination"},
      {"rdma", mpi::Backend::kRdma, "dissemination"},
      {"rdma", mpi::Backend::kRdma, "nic"},
  };
  std::vector<int> barrier_nodes = {4, 8, 16, 32};
  if (quick) barrier_nodes = {8, 16};
  std::vector<BarrierSample> barriers;
  std::printf("\nbarrier (us/op by channel/algorithm):\n%-12s", "nodes");
  for (const BarrierCfg& bc : barrier_cfgs) {
    std::printf(" %14s/%-4s", bc.channel, bc.algorithm[0] == 'n' ? "nic" : "diss");
  }
  std::printf("\n");
  for (int bn : barrier_nodes) {
    std::printf("%-12d", bn);
    for (const BarrierCfg& bc : barrier_cfgs) {
      const double us = run_barrier(bc.backend, bc.algorithm, bn, iters);
      barriers.push_back({bn, bc.channel, bc.algorithm, us});
      std::printf(" %19.1f", us);
    }
    std::printf("\n");
  }

  // In-network combining at scale (DESIGN.md §16): a 128-node fat-tree, the
  // switch-resident allreduce and barrier against every host algorithm and
  // the NIC-offload barrier. The CI gate asserts the combining tables beat
  // the best host algorithm on both primitives at this node count.
  const int scale_nodes = 128;
  const std::size_t scale_bytes = 1024;  // under the 2 KiB combining cap
  std::vector<ScaleSample> innet;
  {
    const std::vector<const char*> ar_algos = {"reduce_bcast", "recursive_doubling",
                                               "rabenseifner", "in_network"};
    std::printf("\nin-network cutover: %d-node fat-tree, allreduce %zu B (us/op):\n",
                scale_nodes, scale_bytes);
    for (const char* algo : ar_algos) {
      const double us = run_scale(mpi::Backend::kLapiEnhanced,
                                  std::string("allreduce=") + algo, "allreduce", scale_bytes,
                                  scale_nodes, iters);
      innet.push_back({"allreduce", algo, scale_nodes, scale_bytes, us});
      std::printf("  %-20s %10.1f\n", algo, us);
    }
    const std::vector<const char*> bar_algos = {"dissemination", "nic", "in_network"};
    std::printf("in-network cutover: %d-node fat-tree, barrier (us/op):\n", scale_nodes);
    for (const char* algo : bar_algos) {
      // The RDMA channel so the NIC-resident barrier is available too; the
      // combining tables do not depend on the channel.
      const double us = run_scale(mpi::Backend::kRdma, std::string("barrier=") + algo,
                                  "barrier", 0, scale_nodes, iters);
      innet.push_back({"barrier", algo, scale_nodes, 0, us});
      std::printf("  %-20s %10.1f\n", algo, us);
    }
  }

  // Rendezvous crossover: one-way large-message latency, LAPI-enhanced host
  // rendezvous vs the RDMA-read pull. The CI gate asserts the RDMA channel
  // wins at >= 256 KiB (the paper's host-copy elimination payoff).
  std::vector<std::size_t> rdv_bytes = {64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024,
                                        1024 * 1024};
  if (quick) rdv_bytes = {256 * 1024, 1024 * 1024};
  std::vector<RdvSample> rendezvous;
  std::printf("\nrendezvous ping-pong (one-way us):\n%-12s %14s %14s\n", "bytes", "enhanced",
              "rdma");
  for (std::size_t bytes : rdv_bytes) {
    const double enh = run_pingpong(mpi::Backend::kLapiEnhanced, bytes, iters);
    const double rdm = run_pingpong(mpi::Backend::kRdma, bytes, iters);
    rendezvous.push_back({bytes, "enhanced", enh});
    rendezvous.push_back({bytes, "rdma", rdm});
    std::printf("%-12zu %14.1f %14.1f\n", bytes, enh, rdm);
  }

  if (json_path != nullptr) {
    write_json(json_path, nodes, samples, cases, barriers, rendezvous, innet);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
