// Beyond-paper bench: collective operation scaling with machine size, native
// MPI vs MPI-LAPI Enhanced. The paper's MPI layer decomposes collectives into
// point-to-point calls, so per-message savings compound with log(n) (trees)
// or n (exchanges) message counts.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common.hpp"

namespace {

using namespace sp;

double coll_us(mpi::Backend b, int nodes, const char* which, std::size_t count) {
  sim::MachineConfig cfg;
  mpi::Machine m(cfg, nodes, b);
  const int iters = 10;
  double out = 0.0;
  std::string sel(which);
  m.run([&](mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<double> buf(count, w.rank());
    std::vector<double> res(count * static_cast<std::size_t>(w.size()), 0.0);
    mpi.barrier(w);
    const double t0 = mpi.wtime();
    for (int i = 0; i < iters; ++i) {
      if (sel == "barrier") {
        mpi.barrier(w);
      } else if (sel == "bcast") {
        mpi.bcast(buf.data(), count, mpi::Datatype::kDouble, 0, w);
      } else if (sel == "allreduce") {
        mpi.allreduce(buf.data(), res.data(), count, mpi::Datatype::kDouble, mpi::Op::kSum, w);
      } else if (sel == "alltoall") {
        std::vector<double> src(count * static_cast<std::size_t>(w.size()), w.rank());
        mpi.alltoall(src.data(), count, res.data(), mpi::Datatype::kDouble, w);
      }
    }
    if (w.rank() == 0) out = (mpi.wtime() - t0) * 1e6 / iters;
  });
  return out;
}

}  // namespace

int main() {
  using namespace sp;
  const std::size_t count = 256;  // 2 KiB payloads
  std::printf("Collective scaling (us per op, %zu doubles), native vs MPI-LAPI\n", count);
  for (const char* which : {"barrier", "bcast", "allreduce", "alltoall"}) {
    std::printf("\n%s:\n%-8s %12s %12s %10s\n", which, "nodes", "Native", "MPI-LAPI", "gain");
    for (int nodes : {2, 4, 8, 16}) {
      const double n = coll_us(mpi::Backend::kNativePipes, nodes, which, count);
      const double l = coll_us(mpi::Backend::kLapiEnhanced, nodes, which, count);
      std::printf("%-8d %12.1f %12.1f %9.2fx\n", nodes, n, l, n / l);
    }
  }
  return 0;
}
