// bench_simcore: wall-clock macro-benchmark of the simulator hot path.
//
// Unlike the figure benches (which report *simulated* time), this one reports
// how fast the simulator itself runs on the host: events per host-second and
// simulated microseconds per host-millisecond, over three representative
// workloads:
//   fig12_bw   two-node 64 KiB streaming bandwidth (the Fig. 12 method)
//   fig12_bw_traced  the same workload with telemetry enabled, so the cost of
//              enabled tracing shows up as a wall-clock delta against fig12_bw
//   alltoall8  eight ranks exchanging 8 KiB blocks in repeated MPI_Alltoall
//   nas_cg     the mini-NAS CG kernel on eight ranks
// Each workload runs `reps` times; the best (minimum) wall time is reported.
// With --json PATH the results are also written as BENCH_simcore.json so the
// repo keeps a wall-clock perf trajectory across PRs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "nas/kernels.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using sp::mpi::Backend;
using sp::mpi::Machine;
using sp::sim::MachineConfig;

struct Result {
  std::string name;
  std::uint64_t events = 0;   ///< Simulator events processed in one run.
  double sim_us = 0.0;        ///< Simulated time covered by one run.
  double wall_ms = 0.0;       ///< Best host wall time over all reps.
  // Telemetry counters (traced workloads only; all zero otherwise).
  bool traced = false;
  std::uint64_t telem_emitted = 0;
  std::uint64_t telem_dropped = 0;
  std::uint64_t telem_mpi_calls = 0;
  std::uint64_t telem_eager_sends = 0;
};

/// Telemetry counters sampled from one traced run.
struct TelemCounts {
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t mpi_calls = 0;
  std::uint64_t eager_sends = 0;
};

/// One complete simulation; returns (events processed, simulated ns).
template <typename RunFn>
Result measure(const char* name, int reps, RunFn&& one_run) {
  Result r;
  r.name = name;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    const auto [events, sim_ns] = one_run();
    const auto t1 = Clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < r.wall_ms) r.wall_ms = ms;
    r.events = events;
    r.sim_us = sp::sim::to_us(sim_ns);
  }
  return r;
}

std::pair<std::uint64_t, sp::sim::TimeNs> run_fig12_bw(std::size_t bytes, int iters,
                                                       TelemCounts* telem = nullptr) {
  MachineConfig cfg;
  cfg.telemetry_enabled = telem != nullptr;
  // The traced run emits ~177k records (~5.7 MiB); the legacy 4 MiB ring
  // dropped a quarter of them. Size it to hold the whole stream — the CI
  // smoke asserts records_dropped == 0.
  cfg.telemetry_ring_bytes = 8 * 1024 * 1024;
  Machine m(cfg, 2, Backend::kLapiEnhanced);
  m.run([&](sp::mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(bytes);
    std::byte token{};
    std::vector<sp::mpi::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(iters));
    if (w.rank() == 0) {
      for (int i = 0; i < iters; ++i) {
        reqs.push_back(mpi.isend(buf.data(), bytes, sp::mpi::Datatype::kByte, 1, 0, w));
      }
      mpi.waitall(reqs.data(), reqs.size());
      mpi.recv(&token, 0, sp::mpi::Datatype::kByte, 1, 1, w);
    } else {
      for (int i = 0; i < iters; ++i) {
        reqs.push_back(mpi.irecv(buf.data(), bytes, sp::mpi::Datatype::kByte, 0, 0, w));
      }
      mpi.waitall(reqs.data(), reqs.size());
      mpi.send(&token, 0, sp::mpi::Datatype::kByte, 0, 1, w);
    }
  });
  if (telem != nullptr) {
    const sp::sim::Telemetry& t = *m.telemetry();
    telem->emitted = t.records_emitted();
    telem->dropped = t.records_dropped();
    telem->mpi_calls = t.counter_total(sp::sim::Ev::kMpiEnter);
    telem->eager_sends = t.counter_total(sp::sim::Ev::kEagerSend);
  }
  return {m.sim().events_processed(), m.elapsed()};
}

std::pair<std::uint64_t, sp::sim::TimeNs> run_alltoall8(std::size_t count, int rounds) {
  MachineConfig cfg;
  Machine m(cfg, 8, Backend::kLapiEnhanced);
  m.run([&](sp::mpi::Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    std::vector<double> src(count * n, 1.0), dst(count * n, 0.0);
    for (int r = 0; r < rounds; ++r) {
      mpi.alltoall(src.data(), count, dst.data(), sp::mpi::Datatype::kDouble, w);
    }
  });
  return {m.sim().events_processed(), m.elapsed()};
}

std::pair<std::uint64_t, sp::sim::TimeNs> run_nas_cg(int scale) {
  MachineConfig cfg;
  Machine m(cfg, 8, Backend::kLapiEnhanced);
  m.run([&](sp::mpi::Mpi& mpi) {
    auto r = sp::nas::run_cg(mpi, scale);
    if (!r.verified) std::fprintf(stderr, "nas_cg: verification FAILED\n");
  });
  return {m.sim().events_processed(), m.elapsed()};
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_simcore [--reps N] [--json FILE]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  std::vector<Result> results;
  results.push_back(measure("fig12_bw", reps, [] { return run_fig12_bw(64 * 1024, 400); }));
  TelemCounts telem;
  results.push_back(measure("fig12_bw_traced", reps,
                            [&telem] { return run_fig12_bw(64 * 1024, 400, &telem); }));
  results.back().traced = true;
  results.back().telem_emitted = telem.emitted;
  results.back().telem_dropped = telem.dropped;
  results.back().telem_mpi_calls = telem.mpi_calls;
  results.back().telem_eager_sends = telem.eager_sends;
  results.push_back(measure("alltoall8", reps, [] { return run_alltoall8(1024, 48); }));
  results.push_back(measure("nas_cg", reps, [] { return run_nas_cg(3); }));

  std::printf("%-12s %12s %10s %14s %16s\n", "workload", "events", "wall_ms", "events/sec",
              "sim_us/host_ms");
  for (const auto& r : results) {
    std::printf("%-12s %12llu %10.2f %14.0f %16.1f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.wall_ms,
                static_cast<double>(r.events) / (r.wall_ms / 1e3), r.sim_us / r.wall_ms);
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_simcore\",\n  \"workloads\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"events\": %llu, \"wall_ms\": %.3f, "
                   "\"events_per_sec\": %.0f, \"sim_us\": %.1f, \"sim_us_per_host_ms\": %.1f",
                   r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_ms,
                   static_cast<double>(r.events) / (r.wall_ms / 1e3), r.sim_us,
                   r.sim_us / r.wall_ms);
      if (r.traced) {
        std::fprintf(f,
                     ", \"telemetry\": {\"records_emitted\": %llu, \"records_dropped\": %llu, "
                     "\"mpi_calls\": %llu, \"eager_sends\": %llu}",
                     static_cast<unsigned long long>(r.telem_emitted),
                     static_cast<unsigned long long>(r.telem_dropped),
                     static_cast<unsigned long long>(r.telem_mpi_calls),
                     static_cast<unsigned long long>(r.telem_eager_sends));
      }
      std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}
