// bench_scale: wall-clock scaling sweep of the simulator across the topology
// zoo. Where bench_simcore pins the 2–8 node hot path, this one answers "how
// fast does the simulator run at 128–1024 nodes?" for each topology:
//
//   grid     nodes ∈ {16, 64, 128, 256, 512, 1024} × {sp, fattree, torus3d,
//            dragonfly}
//   workloads  bcast (64 KiB), allreduce (1024 doubles), alltoall (64 B
//            blocks, capped at 256 nodes to bound the O(N^2) message count)
//            and the mini-NAS CG kernel (capped at 256 nodes).
//
// `--quick` shrinks the grid to {16, 64} nodes × {fattree, torus3d} for the
// per-PR CI gate; the full sweep feeds BENCH_scale.json so the repo keeps a
// scaling trajectory across PRs. Events/s at 16 nodes is comparable to the
// BENCH_simcore baseline (same hot path, different fan-out).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "nas/kernels.hpp"
#include "net/topology.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using sp::mpi::Backend;
using sp::mpi::Machine;
using sp::sim::MachineConfig;
using sp::sim::TopologyKind;

struct Result {
  std::string topology;
  int nodes = 0;
  std::string workload;
  std::uint64_t events = 0;  ///< Simulator events processed in one run.
  double sim_us = 0.0;       ///< Simulated time covered by one run.
  double wall_ms = 0.0;      ///< Best host wall time over all reps.
};

/// A machine config for `kind` at `nodes`, leaving shape parameters on their
/// auto defaults (fat-tree picks 2 or 3 levels from N; torus factorizes N).
MachineConfig config_for(TopologyKind kind, int nodes) {
  MachineConfig cfg;
  cfg.topology = kind;
  if (kind == TopologyKind::kFatTree && nodes > 64) {
    cfg.fattree_levels = 3;
  }
  (void)nodes;
  return cfg;
}

template <typename RunFn>
Result measure(TopologyKind kind, int nodes, const char* workload, int reps, RunFn&& one_run) {
  Result r;
  r.topology = sp::net::topology_name(kind);
  r.nodes = nodes;
  r.workload = workload;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    const auto [events, sim_ns] = one_run();
    const auto t1 = Clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < r.wall_ms) r.wall_ms = ms;
    r.events = events;
    r.sim_us = sp::sim::to_us(sim_ns);
  }
  return r;
}

std::pair<std::uint64_t, sp::sim::TimeNs> run_bcast(TopologyKind kind, int nodes,
                                                    std::size_t bytes, int rounds) {
  Machine m(config_for(kind, nodes), nodes, Backend::kLapiEnhanced);
  m.run([&](sp::mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<std::byte> buf(bytes);
    for (int r = 0; r < rounds; ++r) {
      mpi.bcast(buf.data(), bytes, sp::mpi::Datatype::kByte, 0, w);
    }
  });
  return {m.sim().events_processed(), m.elapsed()};
}

std::pair<std::uint64_t, sp::sim::TimeNs> run_allreduce(TopologyKind kind, int nodes,
                                                        std::size_t count, int rounds) {
  Machine m(config_for(kind, nodes), nodes, Backend::kLapiEnhanced);
  m.run([&](sp::mpi::Mpi& mpi) {
    auto& w = mpi.world();
    std::vector<double> src(count, 1.0), dst(count, 0.0);
    for (int r = 0; r < rounds; ++r) {
      mpi.allreduce(src.data(), dst.data(), count, sp::mpi::Datatype::kDouble,
                    sp::mpi::Op::kSum, w);
    }
  });
  return {m.sim().events_processed(), m.elapsed()};
}

std::pair<std::uint64_t, sp::sim::TimeNs> run_alltoall(TopologyKind kind, int nodes,
                                                       std::size_t count, int rounds) {
  Machine m(config_for(kind, nodes), nodes, Backend::kLapiEnhanced);
  m.run([&](sp::mpi::Mpi& mpi) {
    auto& w = mpi.world();
    const auto n = static_cast<std::size_t>(w.size());
    std::vector<double> src(count * n, 1.0), dst(count * n, 0.0);
    for (int r = 0; r < rounds; ++r) {
      mpi.alltoall(src.data(), count, dst.data(), sp::mpi::Datatype::kDouble, w);
    }
  });
  return {m.sim().events_processed(), m.elapsed()};
}

std::pair<std::uint64_t, sp::sim::TimeNs> run_nas_cg(TopologyKind kind, int nodes, int scale) {
  Machine m(config_for(kind, nodes), nodes, Backend::kLapiEnhanced);
  m.run([&](sp::mpi::Mpi& mpi) {
    auto r = sp::nas::run_cg(mpi, scale);
    if (!r.verified) std::fprintf(stderr, "nas_cg: verification FAILED\n");
  });
  return {m.sim().events_processed(), m.elapsed()};
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int reps = 1;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: bench_scale [--quick] [--reps N] [--json FILE]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  std::vector<TopologyKind> kinds;
  std::vector<int> node_counts;
  if (quick) {
    kinds = {TopologyKind::kFatTree, TopologyKind::kTorus3d};
    node_counts = {16, 64};
  } else {
    kinds = {TopologyKind::kSpMultistage, TopologyKind::kFatTree, TopologyKind::kTorus3d,
             TopologyKind::kDragonfly};
    node_counts = {16, 64, 128, 256, 512, 1024};
  }

  // One discarded run absorbs cold-start effects (page cache, frequency
  // ramp) that would otherwise land entirely on the grid's first cell.
  (void)run_bcast(TopologyKind::kSpMultistage, 16, 64 * 1024, 2);

  std::vector<Result> results;
  for (TopologyKind kind : kinds) {
    for (int nodes : node_counts) {
      const int rounds = nodes >= 512 ? 1 : 2;
      results.push_back(measure(kind, nodes, "bcast", reps, [&] {
        return run_bcast(kind, nodes, 64 * 1024, rounds);
      }));
      results.push_back(measure(kind, nodes, "allreduce", reps, [&] {
        return run_allreduce(kind, nodes, 1024, rounds);
      }));
      // Alltoall traffic is O(N^2) point messages; beyond 256 nodes it would
      // dominate the sweep's wall time without adding scaling signal.
      if (nodes <= 256) {
        results.push_back(measure(kind, nodes, "alltoall", reps, [&] {
          return run_alltoall(kind, nodes, 8, 1);
        }));
        results.push_back(measure(kind, nodes, "nas_cg", reps, [&] {
          return run_nas_cg(kind, nodes, 2);
        }));
      }
      std::fprintf(stderr, "done: %s %d nodes\n", sp::net::topology_name(kind), nodes);
    }
  }

  std::printf("%-10s %6s %-10s %12s %10s %14s\n", "topology", "nodes", "workload", "events",
              "wall_ms", "events/sec");
  for (const auto& r : results) {
    std::printf("%-10s %6d %-10s %12llu %10.2f %14.0f\n", r.topology.c_str(), r.nodes,
                r.workload.c_str(), static_cast<unsigned long long>(r.events), r.wall_ms,
                static_cast<double>(r.events) / (r.wall_ms / 1e3));
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_scale\",\n  \"quick\": %s,\n  \"results\": [\n",
                 quick ? "true" : "false");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"topology\": \"%s\", \"nodes\": %d, \"workload\": \"%s\", "
                   "\"events\": %llu, \"wall_ms\": %.3f, \"events_per_sec\": %.0f, "
                   "\"sim_us\": %.1f}%s\n",
                   r.topology.c_str(), r.nodes, r.workload.c_str(),
                   static_cast<unsigned long long>(r.events), r.wall_ms,
                   static_cast<double>(r.events) / (r.wall_ms / 1e3), r.sim_us,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}
