#include "common.hpp"

#include <cstdio>

namespace sp::bench {

using mpi::Backend;
using mpi::Comm;
using mpi::Datatype;
using mpi::Machine;
using mpi::Mpi;
using sim::MachineConfig;

double mpi_pingpong_us(const MachineConfig& cfg, Backend backend, std::size_t bytes,
                       int iters) {
  Machine m(cfg, 2, backend);
  double result = 0.0;
  const int warmup = 4;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
    if (w.rank() == 0) {
      double t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = mpi.wtime();
        mpi.send(buf.data(), bytes, Datatype::kByte, 1, 0, w);
        mpi.recv(buf.data(), bytes, Datatype::kByte, 1, 0, w);
      }
      result = (mpi.wtime() - t0) * 1e6 / (2.0 * iters);
    } else {
      for (int i = 0; i < warmup + iters; ++i) {
        mpi.recv(buf.data(), bytes, Datatype::kByte, 0, 0, w);
        mpi.send(buf.data(), bytes, Datatype::kByte, 0, 0, w);
      }
    }
  });
  return result;
}

double mpi_interrupt_pingpong_us(const MachineConfig& cfg, Backend backend, std::size_t bytes,
                                 int iters) {
  Machine m(cfg, 2, backend);
  double result = 0.0;
  const int warmup = 2;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    mpi.set_interrupt_mode(true);
    std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
    auto spin_recv = [&](int peer) {
      // Post the receive, then busy-check completion outside the library —
      // progress requires the interrupt path (the paper's §6.1 method).
      mpi::Request r = mpi.irecv(buf.data(), bytes, Datatype::kByte, peer, 0, w);
      while (!mpi.test(r)) {
        mpi.compute(cfg.spin_check_ns);
      }
    };
    if (w.rank() == 0) {
      double t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = mpi.wtime();
        mpi.send(buf.data(), bytes, Datatype::kByte, 1, 0, w);
        spin_recv(1);
      }
      result = (mpi.wtime() - t0) * 1e6 / (2.0 * iters);
    } else {
      for (int i = 0; i < warmup + iters; ++i) {
        spin_recv(0);
        mpi.send(buf.data(), bytes, Datatype::kByte, 0, 0, w);
      }
    }
  });
  return result;
}

double mpi_bandwidth_mbs(const MachineConfig& cfg, Backend backend, std::size_t bytes,
                         int iters) {
  Machine m(cfg, 2, backend);
  double result = 0.0;
  m.run([&](Mpi& mpi) {
    Comm& w = mpi.world();
    std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
    std::byte token{};
    if (w.rank() == 0) {
      const double t0 = mpi.wtime();
      std::vector<mpi::Request> reqs;
      reqs.reserve(static_cast<std::size_t>(iters));
      for (int i = 0; i < iters; ++i) {
        reqs.push_back(mpi.isend(buf.data(), bytes, Datatype::kByte, 1, 0, w));
      }
      mpi.waitall(reqs.data(), reqs.size());
      // Stop the clock when the final zero-byte acknowledgement arrives.
      mpi.recv(&token, 0, Datatype::kByte, 1, 1, w);
      const double dt = mpi.wtime() - t0;
      result = (static_cast<double>(bytes) * iters / 1e6) / dt;
    } else {
      std::vector<mpi::Request> reqs;
      reqs.reserve(static_cast<std::size_t>(iters));
      for (int i = 0; i < iters; ++i) {
        reqs.push_back(mpi.irecv(buf.data(), bytes, Datatype::kByte, 0, 0, w));
      }
      mpi.waitall(reqs.data(), reqs.size());
      mpi.send(&token, 0, Datatype::kByte, 0, 1, w);
    }
  });
  return result;
}

double raw_lapi_pingpong_us(const MachineConfig& cfg, std::size_t bytes, int iters) {
  Machine m(cfg, 2, mpi::Backend::kLapiEnhanced);
  double result = 0.0;
  const int warmup = 4;
  m.run_lapi([&](lapi::Lapi& l) {
    const int me = l.task_id();
    const int peer = 1 - me;
    std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
    lapi::Cntr arrival;  // bumped when the peer's Put lands here
    lapi::Cntr org;
    // Exchange buffer and counter addresses (LAPI_Address_init).
    auto bufs = l.address_init(1, lapi::Lapi::token_of(buf.data()));
    auto cntrs = l.address_init(2, lapi::Lapi::token_of(&arrival));

    auto put_to_peer = [&] {
      l.put(peer, bufs[static_cast<std::size_t>(peer)], buf.data(), bytes,
            cntrs[static_cast<std::size_t>(peer)], &org, nullptr);
    };
    if (me == 0) {
      sim::TimeNs t0 = 0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) t0 = l.runtime().sim.now();
        put_to_peer();
        l.waitcntr(arrival, 1);
      }
      result = sim::to_us(l.runtime().sim.now() - t0) / (2.0 * iters);
    } else {
      for (int i = 0; i < warmup + iters; ++i) {
        l.waitcntr(arrival, 1);
        put_to_peer();
      }
    }
    // LAPI semantics: the origin buffer may not be reused (or freed) until
    // the origin counter says every Put has been copied out.
    l.waitcntr(org, warmup + iters);
  });
  return result;
}

std::vector<std::size_t> size_sweep(std::size_t max) {
  std::vector<std::size_t> sizes{1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  for (std::size_t s = 1024; s <= max; s *= 2) sizes.push_back(s);
  return sizes;
}

void print_row(const std::string& label, const std::vector<double>& values) {
  std::printf("%-24s", label.c_str());
  for (double v : values) std::printf(" %10.2f", v);
  std::printf("\n");
}

}  // namespace sp::bench
