// Figure 12: obtainable bandwidth, native MPI vs MPI-LAPI Enhanced (§6.1).
//
// Method: a stream of back-to-back MPI_Isend from node 0 to node 1; the clock
// stops when the last message's zero-byte acknowledgement returns.
//
// Expected shape (paper): MPI-LAPI's bandwidth is higher than native over a
// wide range of sizes (the native stack's receive path pays an extra copy per
// byte through the pipe buffers).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace sp;
  sim::MachineConfig cfg;

  std::printf("Figure 12: streaming bandwidth (MB/s)\n");
  std::printf("%-24s %10s %10s %10s\n", "size(B)", "Native", "MPI-LAPI", "gain");
  for (std::size_t s : bench::size_sweep(1 << 20)) {
    const int iters = s >= (1 << 18) ? 16 : 40;
    const double native = bench::mpi_bandwidth_mbs(cfg, mpi::Backend::kNativePipes, s, iters);
    const double enh = bench::mpi_bandwidth_mbs(cfg, mpi::Backend::kLapiEnhanced, s, iters);
    bench::print_row(std::to_string(s), {native, enh, enh / native});
  }
  return 0;
}
