// Figure 11: polling-mode latency, native MPI vs MPI-LAPI Enhanced (§6.1).
//
// Expected shape (paper): native MPI slightly faster for very short messages
// (LAPI's exposed-interface parameter checking and larger headers); MPI-LAPI
// wins past a few hundred bytes because it avoids the pipe-buffer copies.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace sp;
  sim::MachineConfig cfg;

  std::printf("Figure 11: one-way latency (us), polling mode\n");
  std::printf("%-24s %10s %10s %10s\n", "size(B)", "Native", "MPI-LAPI", "ratio");
  for (std::size_t s : bench::size_sweep(1 << 16)) {
    const int iters = 24;
    const double native = bench::mpi_pingpong_us(cfg, mpi::Backend::kNativePipes, s, iters);
    const double enh = bench::mpi_pingpong_us(cfg, mpi::Backend::kLapiEnhanced, s, iters);
    bench::print_row(std::to_string(s), {native, enh, native / enh});
  }
  return 0;
}
