// Figure 10: message transfer time of raw LAPI vs the three MPI-LAPI
// versions (Base, Counters, Enhanced), ping-pong between two nodes,
// message sizes 1 B .. 1 MiB (§5).
//
// Expected shape (paper): Base is far above raw LAPI for all sizes (the
// completion-handler thread context switch); Counters recovers most of the
// gap for short (eager) messages only; Enhanced comes very close to raw
// LAPI across the range, the residue being MPI matching + locking.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace sp;
  using bench::print_row;
  sim::MachineConfig cfg;

  std::printf("Figure 10: raw LAPI vs MPI-LAPI versions, one-way time (us)\n");
  std::printf("%-24s %10s %10s %10s %10s\n", "size(B)", "RAW-LAPI", "Base", "Counters",
              "Enhanced");
  for (std::size_t s : bench::size_sweep(1 << 20)) {
    const int iters = s >= (1 << 16) ? 8 : 24;
    const double raw = bench::raw_lapi_pingpong_us(cfg, s, iters);
    const double base = bench::mpi_pingpong_us(cfg, mpi::Backend::kLapiBase, s, iters);
    const double cntr = bench::mpi_pingpong_us(cfg, mpi::Backend::kLapiCounters, s, iters);
    const double enh = bench::mpi_pingpong_us(cfg, mpi::Backend::kLapiEnhanced, s, iters);
    print_row(std::to_string(s), {raw, base, cntr, enh});
  }
  return 0;
}
