// §6.2 table: NAS Parallel Benchmark execution times on a four-node SP,
// native MPI vs MPI-LAPI (Enhanced), best of several runs, plus the
// percentage improvement — the paper's final evaluation.
//
// Expected shape (paper): MPI-LAPI consistently at least as fast; clear
// improvements for LU (largest — its wavefront is a flood of small,
// latency-bound messages), IS, CG, BT and FT; EP, MG and SP essentially
// unchanged (compute-dominated).
#include <cstdio>

#include "common.hpp"
#include "nas/kernels.hpp"

namespace {

double kernel_time_ms(const sp::sim::MachineConfig& cfg, sp::mpi::Backend backend,
                      sp::nas::KernelFn fn, int scale, int nodes, int runs,
                      bool* verified) {
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    sp::mpi::Machine m(cfg, nodes, backend);
    bool ok = true;
    m.run([&](sp::mpi::Mpi& mpi) {
      auto res = fn(mpi, scale);
      if (!res.verified) ok = false;
    });
    const double ms = sp::sim::to_us(m.elapsed()) / 1000.0;
    if (r == 0 || ms < best) best = ms;
    *verified = ok;
  }
  return best;
}

}  // namespace

int main() {
  using namespace sp;
  sim::MachineConfig cfg;
  const int nodes = 4;
  const int scale = 2;
  const int runs = 1;  // the simulation is deterministic; one run is exact

  std::printf("NAS Parallel Benchmarks (mini), %d nodes: execution time (ms)\n", nodes);
  std::printf("%-8s %12s %12s %12s  %s\n", "kernel", "Native", "MPI-LAPI", "improve%",
              "verified");
  for (auto& [name, fn] : nas::all_kernels()) {
    bool v_native = false, v_lapi = false;
    const double t_native =
        kernel_time_ms(cfg, mpi::Backend::kNativePipes, fn, scale, nodes, runs, &v_native);
    const double t_lapi =
        kernel_time_ms(cfg, mpi::Backend::kLapiEnhanced, fn, scale, nodes, runs, &v_lapi);
    std::printf("%-8s %12.2f %12.2f %11.1f%%  %s\n", name.c_str(), t_native, t_lapi,
                100.0 * (t_native - t_lapi) / t_native,
                (v_native && v_lapi) ? "yes" : "NO");
  }
  return 0;
}
