#include "sim/rank_thread.hpp"

#include <utility>

namespace sp::sim {

RankThread::RankThread(Simulator& sim, int id, std::function<void()> body)
    : sim_(sim), id_(id), body_(std::move(body)), thread_([this] {
        {
          std::unique_lock lk(mu_);
          cv_.wait(lk, [this] { return turn_ == Turn::App || aborting_; });
          if (aborting_) {
            finished_ = true;
            turn_ = Turn::Sim;
            cv_.notify_all();
            return;
          }
        }
        try {
          body_();
        } catch (const AbortSimulation&) {
          // Expected during early teardown.
        } catch (...) {
          std::lock_guard lk(mu_);
          error_ = std::current_exception();
        }
        std::lock_guard lk(mu_);
        finished_ = true;
        turn_ = Turn::Sim;
        cv_.notify_all();
      }) {}

RankThread::~RankThread() { abort_and_join(); }

void RankThread::abort_and_join() {
  {
    std::lock_guard lk(mu_);
    if (!finished_) {
      aborting_ = true;
      turn_ = Turn::App;  // let the body observe the abort at its yield point
      cv_.notify_all();
    }
  }
  if (thread_.joinable()) {
    // Wait until the body unwinds (AbortSimulation) or finishes normally.
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return finished_; });
    }
    thread_.join();
  }
}

void RankThread::resume_from_sim() {
  std::unique_lock lk(mu_);
  if (finished_) return;
  turn_ = Turn::App;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::Sim; });
}

void RankThread::yield_to_sim() {
  std::unique_lock lk(mu_);
  turn_ = Turn::Sim;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::App || aborting_; });
  if (aborting_) {
    lk.unlock();
    throw AbortSimulation{};
  }
}

void RankThread::advance(TimeNs dt) {
  sim_.after(dt, [this] { resume_from_sim(); });
  yield_to_sim();
}

bool RankThread::finished() const {
  std::lock_guard lk(mu_);
  return finished_;
}

std::exception_ptr RankThread::error() const {
  std::lock_guard lk(mu_);
  return error_;
}

}  // namespace sp::sim
