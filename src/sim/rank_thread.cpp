#include "sim/rank_thread.hpp"

#include <cstdint>
#include <utility>

// AddressSanitizer must be told about every stack switch, or it poisons the
// fiber stacks and reports false positives. These hooks compile to nothing
// when ASan is off.
#if defined(__SANITIZE_ADDRESS__)
#define SP_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SP_ASAN_FIBERS 1
#endif
#endif

#ifdef SP_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace sp::sim {
namespace {

inline void asan_start_switch(void** fake_stack_save, const void* bottom, std::size_t size) {
#ifdef SP_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                               std::size_t* size_old) {
#ifdef SP_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}

}  // namespace

RankThread::RankThread(Simulator& sim, int id, std::function<void()> body)
    : sim_(sim), id_(id), body_(std::move(body)), stack_(new std::byte[kStackBytes]) {
  getcontext(&app_ctx_);
  app_ctx_.uc_stack.ss_sp = stack_.get();
  app_ctx_.uc_stack.ss_size = kStackBytes;
  // Returning from the trampoline resumes whoever last swapped us in.
  app_ctx_.uc_link = &sim_ctx_;
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&app_ctx_, reinterpret_cast<void (*)()>(&RankThread::trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xffffffffu));
}

RankThread::~RankThread() {
  if (!finished_) {
    // Swap in one last time; the body observes aborting_ at its yield point
    // (or before it ever starts), unwinds via AbortSimulation, and the
    // trampoline's return hands control straight back here through uc_link.
    aborting_ = true;
    resume_from_sim();
  }
}

void RankThread::trampoline(unsigned int hi, unsigned int lo) {
  const auto bits = (static_cast<std::uintptr_t>(hi) << 32) | lo;
  reinterpret_cast<RankThread*>(bits)->fiber_main();
}

void RankThread::fiber_main() {
  // First entry onto the fiber stack: complete the switch the resuming side
  // started, learning the main stack's bounds for yields back.
  asan_finish_switch(nullptr, &main_stack_bottom_, &main_stack_size_);
  if (!aborting_) {
    try {
      body_();
    } catch (const AbortSimulation&) {
      // Expected during early teardown.
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  finished_ = true;
  finished_at_ = sim_.now();
  // The fiber is done for good: a null save pointer tells ASan to free its
  // fake stack. Control returns to sim_ctx_ via uc_link.
  asan_start_switch(nullptr, main_stack_bottom_, main_stack_size_);
}

thread_local RankThread* RankThread::current_ = nullptr;

void RankThread::resume_from_sim() {
  if (finished_) return;
  // Save/restore rather than set/clear: resume_from_sim can be reached from
  // another fiber's stack (rank A completing rank B's condition), and the
  // restore must hand current() back to A, not to nullptr.
  RankThread* prev = current_;
  current_ = this;
  asan_start_switch(&sim_fake_stack_, stack_.get(), kStackBytes);
  swapcontext(&sim_ctx_, &app_ctx_);
  // finish's out-params would report the stack we came *from* (the fiber);
  // the main-stack bounds were captured once at first fiber entry.
  asan_finish_switch(sim_fake_stack_, nullptr, nullptr);
  current_ = prev;
}

void RankThread::yield_to_sim() {
  asan_start_switch(&app_fake_stack_, main_stack_bottom_, main_stack_size_);
  swapcontext(&app_ctx_, &sim_ctx_);
  asan_finish_switch(app_fake_stack_, nullptr, nullptr);
  if (aborting_) throw AbortSimulation{};
}

void RankThread::advance(TimeNs dt) {
  sim_.after(dt, sched_node_key(id_), [this] { resume_from_sim(); });
  yield_to_sim();
}

}  // namespace sp::sim
