// MachineConfig: the calibrated cost model of the simulated RS/6000 SP.
//
// Every constant a protocol layer charges lives here so experiments can sweep
// them (the ablation benches do). Defaults are calibrated to be plausible for
// the paper's testbed — 332 MHz Power-PC 604e SMP nodes with the TBMX switch
// adapter, August 1998 software levels — and to reproduce the *shapes* of the
// paper's figures (see EXPERIMENTS.md for the calibration notes).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace sp::sim {

class ScheduleController;  // sim/sched.hpp

/// Interconnect selector (DESIGN.md §13). kSpMultistage is the paper's switch
/// and the default; the others are the scale-study topology zoo.
enum class TopologyKind : int {
  kSpMultistage = 0,
  kFatTree = 1,
  kTorus2d = 2,
  kTorus3d = 3,
  kDragonfly = 4,
};
inline constexpr int kTopologyKinds = 5;

struct MachineConfig {
  // --- Switch fabric -------------------------------------------------------
  /// Per-link serialization cost. 150 MB/s links give the ~160 MB/s
  /// bi-directional node-pair figure the paper quotes.
  double link_ns_per_byte = 1e3 / 150.0;  // ~6.67 ns/B = 150 MB/s
  /// Latency through one switch element / cable hop.
  TimeNs hop_latency_ns = 150;
  /// Number of spine switch elements = distinct routes per node pair.
  int num_routes = 4;
  /// Probability that the fabric drops a packet (fault injection; 0 = none).
  double packet_drop_rate = 0.0;
  /// Probability that the fabric delivers a second copy of a packet (fault
  /// injection; models adapter-level re-delivery after a spurious CRC retry).
  double packet_dup_rate = 0.0;
  /// Maximum extra per-delivery delay drawn uniformly from [0, jitter)
  /// (fault injection; widens cross-route reordering windows). 0 = none.
  TimeNs packet_jitter_ns = 0;
  /// When a random drop fires, drop this many *consecutive* packets of the
  /// same (src, dst) pair (per-link burst loss). 1 = independent drops.
  int burst_drop_len = 1;
  /// RNG seed for the fabric (route perturbation, drops, dup, jitter).
  std::uint64_t fabric_seed = 0x5eed;
  /// Extra latency added per route index (route r adds r * route_skew_ns).
  /// 0 on the real machine; tests raise it to force out-of-order arrival
  /// deterministically even without cross-traffic.
  TimeNs route_skew_ns = 0;
  /// Probability that a packet abandons the round-robin route choice and
  /// takes a seeded random route instead (schedule-space exploration; skews
  /// per-route load so some routes congest and reorder harder). 0 = pure
  /// round-robin, and no randomness is drawn.
  double route_bias = 0.0;
  /// Salt for the event-queue tie-break among same-timestamp events. 0 keeps
  /// strict insertion order (the default, pinned by the golden digests); any
  /// other value applies a seeded bijective permutation to the insertion
  /// sequence, exploring alternative handler-dispatch interleavings while
  /// remaining a deterministic total order per salt.
  std::uint64_t event_tie_break_salt = 0;
  /// Systematic-exploration hook (DESIGN.md §15): when non-null, installed on
  /// the event queue so this controller picks among same-window ready events.
  /// Not owned; must outlive the Machine. Normal runs leave it null.
  ScheduleController* sched_controller = nullptr;
  /// Candidate-window width for the controller (events with
  /// at <= min_at + window form one choice point). 0 = same-timestamp only.
  TimeNs sched_window_ns = 0;

  // --- Topology zoo (DESIGN.md §13) ----------------------------------------
  /// Which interconnect the fabric models. The SP multistage default is
  /// bit-exact with the pre-topology fabric (golden digests pin it).
  TopologyKind topology = TopologyKind::kSpMultistage;
  /// Fat-tree shape: levels (0 = auto: 2 up to 64 nodes, else 3), and
  /// per-level {down children, up parents, up-link multiplicity}. Index 0 is
  /// the leaf level, index 1 the aggregation level (3-level only).
  int fattree_levels = 0;
  std::array<int, 2> fattree_down = {8, 4};
  std::array<int, 2> fattree_up = {4, 4};
  std::array<int, 2> fattree_mult = {1, 1};
  /// Torus shape; 0 = auto (near-cubic factorization of the node count).
  int torus_x = 0;
  int torus_y = 0;
  int torus_z = 0;
  /// Dragonfly shape: a routers per group, h hosts per router (groups =
  /// ceil(N / (a*h))), and how many Valiant detour routes augment the
  /// minimal route for inter-group spray.
  int df_routers_per_group = 4;
  int df_hosts_per_router = 4;
  int df_valiant_routes = 3;
  /// Per-link-class cost scaling: local (leaf/agg/torus/intra-group) and
  /// global (core/inter-group) links relative to the host-link baseline
  /// (link_ns_per_byte / hop_latency_ns). Global cables also add a fixed
  /// latency (long optical runs). 1.0 / 0 keep all classes identical — the
  /// SP multistage path requires that for digest stability.
  double topo_local_bw_scale = 1.0;
  double topo_global_bw_scale = 1.0;
  TimeNs topo_global_extra_latency_ns = 0;
  /// Per-destination delivery batching (one outstanding wake event per dst
  /// draining a pending min-heap, instead of one queue entry per in-flight
  /// packet): -1 = auto (on for every topology except SP multistage, whose
  /// event order the golden digests pin), 0 = off, 1 = on.
  int fabric_delivery_batching = -1;

  // --- Adapter (TB3/TBMX) --------------------------------------------------
  /// Fixed cost to DMA one packet descriptor between host and adapter.
  TimeNs adapter_packet_setup_ns = 700;
  /// Per-byte DMA cost host memory <-> adapter SRAM. The TBMX adapter, not
  /// the 150 MB/s link, bounds achievable node-pair bandwidth (~90 MB/s).
  double adapter_ns_per_byte = 10.0;
  /// Wire-level packet payload capacity (the SP switch uses 1 KiB packets).
  std::size_t packet_mtu = 1024;
  /// HAL header prepended to every wire packet.
  std::size_t hal_header_bytes = 16;
  /// Number of pinned HAL send buffers (outstanding packets) per node.
  int hal_send_buffers = 64;
  /// Host CPU cost of the HAL <-> microcode handshake per packet.
  TimeNs hal_per_packet_cpu_ns = 500;

  // --- Host memory ---------------------------------------------------------
  /// Per-byte cost of a protocol memcpy (~250 MB/s on a 604e).
  double copy_ns_per_byte = 4.0;
  /// Fixed cost per protocol memcpy call.
  TimeNs copy_call_ns = 200;

  // --- Interrupts ----------------------------------------------------------
  /// Dispatch latency from packet arrival to interrupt handler entry.
  TimeNs interrupt_latency_ns = 12'000;
  /// CPU cost of taking + retiring one interrupt.
  TimeNs interrupt_service_ns = 6'000;
  /// Native-MPI hysteresis: after servicing packets the handler busy-waits
  /// this long for more packets before returning (0 disables; LAPI uses 0).
  TimeNs interrupt_hysteresis_ns = 60'000;
  /// Hysteresis growth factor applied when more packets do arrive in-window.
  double interrupt_hysteresis_growth = 2.0;
  /// Cap on the grown hysteresis window.
  TimeNs interrupt_hysteresis_max_ns = 240'000;

  // --- Reliability (both Pipes and LAPI transports) -------------------------
  TimeNs retransmit_timeout_ns = 2 * kMs;
  int sliding_window_packets = 32;
  /// CPU cost to generate or process an ack packet.
  TimeNs ack_processing_ns = 400;
  /// Acks are piggybacked/coalesced: send an explicit ack after this many
  /// unacknowledged packets (or on timeout).
  int ack_every_packets = 8;
  /// Delayed-ack flush: send a pending ack at most this long after the first
  /// unacknowledged packet.
  TimeNs ack_delay_ns = 100'000;

  // --- LAPI ----------------------------------------------------------------
  /// Fixed software overhead of one LAPI API call (parameter checking of the
  /// exposed interface — the paper blames this for the short-message gap).
  TimeNs lapi_call_overhead_ns = 1'800;
  /// Cost of running a header handler (dispatcher context).
  TimeNs header_handler_ns = 900;
  /// Cost of running a *predefined* completion handler inline in the
  /// dispatcher (the paper's "Enhanced LAPI").
  TimeNs completion_inline_ns = 350;
  /// Cost of dispatching a completion handler to the separate completion
  /// handler thread and switching back (two thread context switches plus
  /// scheduler latency) — the dominant overhead of the Base MPI-LAPI.
  TimeNs completion_thread_switch_ns = 26'000;
  /// Dispatcher cost per received packet (reassembly bookkeeping).
  TimeNs lapi_dispatch_packet_ns = 450;
  /// LAPI message header (carried in the first packet of each message).
  std::size_t lapi_header_bytes = 40;

  // --- RDMA adapter (NIC-offload third channel, DESIGN.md §14) --------------
  /// Host CPU cost of ringing the adapter doorbell (posting one work request
  /// from the rank fiber). The only host charge on the RDMA fast path.
  TimeNs rdma_doorbell_ns = 600;
  /// NIC-side per-packet descriptor cost. Replaces adapter_packet_setup_ns on
  /// NIC-originated sends: descriptors are pre-posted and the engine cuts
  /// through, so the per-packet setup is a fraction of the host-driven path.
  TimeNs rdma_nic_pkt_ns = 150;
  /// Host CPU cost of reaping one completion-queue entry (polled; the RDMA
  /// channel has no header-handler dispatch and no interrupt path).
  TimeNs rdma_cq_ns = 300;
  /// NIC processor cost per offloaded-collective message (Elan/Quadrics-style
  /// thread on the adapter; charged as event latency, never host CPU).
  TimeNs rdma_nic_msg_ns = 200;
  /// Pre-posted eager ring-buffer slots per (source, destination) pair.
  /// Senders consume one slot per eager write and fall back to rendezvous
  /// when the ring is exhausted (credit-based flow control).
  int rdma_ring_slots = 64;
  /// RDMA message header (smaller than LAPI's: no AM dispatch block).
  std::size_t rdma_header_bytes = 28;
  /// Largest payload the NIC-resident collectives accept; bigger vectors fall
  /// back to the host-side algorithm engine.
  std::size_t rdma_nic_coll_max_bytes = 2048;

  // --- In-network combining collectives (sp::net, DESIGN.md §16) -----------
  /// Largest payload the switch combining tables accept; bigger vectors fall
  /// back to the host-side algorithm engine (table SRAM is scarce on real
  /// combining switches, so the cap mirrors rdma_nic_coll_max_bytes).
  std::size_t in_network_coll_max_bytes = 2048;
  /// Per-topology auto-selection enablement: bit (1 << TopologyKind) allows
  /// the selection engine to pick in_network on that fabric when unpinned.
  /// Default 0: auto never selects it (every pinned digest predates the
  /// engine); an explicit pin (coll id 5 / --coll-algo in_network) always
  /// works regardless of the mask.
  unsigned in_network_topology_mask = 0;
  /// Per-level pipeline latency through one combining element (cut-through:
  /// paid per level, but the payload is serialized only once end-to-end).
  TimeNs innet_hop_ns = 120;
  /// Fixed cost of folding one child contribution into an element's
  /// accumulator, plus a per-byte term for the vector ALU.
  TimeNs innet_combine_ns = 80;
  double innet_combine_ns_per_byte = 0.5;
  /// Host-side cost of posting one combining-collective descriptor (doorbell
  /// + table-entry install) and of reaping its completion.
  TimeNs innet_post_ns = 300;
  /// Link-level retry interval when fault injection drops a combining-tree
  /// hop (the table entry persists; the retransmit re-offers the same
  /// contribution and the element's seen-flag makes re-combining impossible).
  TimeNs innet_retry_ns = 2'000;

  // --- Early-arrival flow control (all channels) ----------------------------
  /// Sender-side cap on eager bytes in flight per destination before the
  /// sender falls back to rendezvous (counted in Machine::stats.ea_fallbacks).
  /// 0 = auto: early_arrival_bytes / max(1, num_tasks - 1), which provably
  /// cannot overflow the receiver's early-arrival buffer. A nonzero override
  /// can oversubscribe it; in-flight eagers that find the buffer full are
  /// then NACKed back into the rendezvous path instead of dying.
  std::size_t ea_sender_limit_bytes = 0;

  // --- Pipes (native MPI byte-stream transport) ------------------------------
  /// Fixed software overhead of one internal Pipes call (not an exposed
  /// interface; cheaper than a LAPI call).
  TimeNs pipe_call_overhead_ns = 900;
  /// Pipe buffer size per destination.
  std::size_t pipe_buffer_bytes = 64 * 1024;
  /// The native stack copies only the first and last `pipe_copy_span_bytes`
  /// of each message through the pipe buffers (Snir et al.; §2 of the paper);
  /// the middle of large messages is fed to HAL directly.
  std::size_t pipe_copy_span_bytes = 16 * 1024;
  /// Per-packet CPU cost of pipe seq/ack bookkeeping.
  TimeNs pipe_packet_ns = 350;
  /// Pipe wire header per packet (smaller than LAPI's: internal interface).
  std::size_t pipe_header_bytes = 24;

  // --- MPCI / MPI ----------------------------------------------------------
  /// Base cost of attempting to match one envelope against a queue.
  TimeNs match_base_ns = 450;
  /// Additional matching cost per queue entry scanned.
  TimeNs match_per_entry_ns = 60;
  /// Cost of one lock/unlock pair on MPI-level shared structures.
  TimeNs lock_pair_ns = 250;
  /// Fixed software overhead of one MPI call.
  TimeNs mpi_call_overhead_ns = 1'200;
  /// Eager/rendezvous switchover (MP_EAGER_LIMIT; paper default).
  std::size_t eager_limit = 4096;
  /// Counter-ring slots per (source, destination) pair for the MPI-LAPI
  /// "Counters" version (§5.2). Must greatly exceed the transport window.
  int counter_ring_slots = 1024;
  /// Early-arrival buffer capacity per task.
  std::size_t early_arrival_bytes = 1 * 1024 * 1024;

  // --- Collective algorithm engine (sp::mpi::coll, DESIGN.md §12) -----------
  // Per-primitive algorithm pins. 0 = auto (size/topology selection below);
  // nonzero values index the primitive's algorithm enum in src/mpi/coll.hpp
  // (e.g. bcast: 1=binomial, 2=pipelined, 3=scatter_allgather). Benchmarks
  // and the conformance matrix pin concrete algorithms through these.
  int coll_bcast_algo = 0;
  int coll_allreduce_algo = 0;
  /// Barrier: 0 = auto (NIC-offloaded when the channel has an adapter-
  /// resident barrier, else host dissemination), 1 = host dissemination,
  /// 4 = NIC offload (falls back to dissemination off the RDMA channel),
  /// 5 = in-network switch combining (DESIGN.md §16).
  int coll_barrier_algo = 0;
  int coll_alltoall_algo = 0;
  int coll_reduce_scatter_algo = 0;
  int coll_scan_algo = 0;
  /// Auto-selection cutovers. A bcast at least this large uses the pipelined
  /// segmented binomial tree (latency ~ T + (log2 n - 1) * T_seg instead of
  /// log2 n * T).
  std::size_t coll_bcast_pipeline_min_bytes = 32 * 1024;
  /// Segment size for pipelined collectives; a few packets per segment keeps
  /// per-segment overhead amortized while segments still overlap tree hops.
  std::size_t coll_segment_bytes = 16 * 1024;
  /// An allreduce at least this large uses Rabenseifner (reduce-scatter +
  /// allgather, ~2 * (n-1)/n vector volume per node instead of the reduce +
  /// bcast tree's log2 n full-vector hops); below it, recursive doubling
  /// (log2 n rounds, one message each) beats the two-phase tree.
  std::size_t coll_allreduce_rabenseifner_min_bytes = 16 * 1024;
  /// An alltoall with per-block payload at most this uses Bruck (log2 n
  /// rounds of aggregated blocks instead of n-1 pairwise exchanges). The
  /// default stays below the 2 KiB blocks of the pinned determinism workload
  /// so seed schedules keep the pairwise exchange.
  std::size_t coll_alltoall_bruck_max_bytes = 1024;
  /// A reduce_scatter_block whose full input vector is at least this large
  /// uses recursive halving instead of reduce + scatter through rank 0.
  std::size_t coll_reduce_scatter_halving_min_bytes = 8 * 1024;

  // --- Simulation ----------------------------------------------------------
  /// Quantum a spinning rank thread advances between memory probes.
  TimeNs spin_check_ns = 500;
  /// Record a protocol-event timeline (Machine::trace()); off by default.
  bool trace_enabled = false;
  /// Cap on retained legacy-trace events; the excess is counted as dropped
  /// (Trace::dropped()) instead of growing the host heap without bound.
  std::size_t trace_max_events = std::size_t{1} << 20;
  /// Record structured telemetry (Machine::telemetry()); off by default.
  /// Costs one branch per emission site when off and draws no randomness
  /// either way, so simulated timelines are identical on or off.
  bool telemetry_enabled = false;
  /// Byte cap for the telemetry ring buffer (32-byte records; oldest records
  /// are overwritten beyond the cap and counted as dropped).
  std::size_t telemetry_ring_bytes = 4 * 1024 * 1024;
  /// Per-node floor for the telemetry ring: the effective ring is
  /// max(telemetry_ring_bytes, num_tasks * telemetry_ring_bytes_per_node),
  /// capped at 128 MiB, so traced runs at scale keep zero drops without
  /// hand-tuning. The default leaves 2-node runs at the 4 MiB legacy size
  /// (pinned traced digests depend on the ring capacity).
  std::size_t telemetry_ring_bytes_per_node = 2 * 1024 * 1024;

  // --- Debug / fault re-introduction -----------------------------------------
  /// Re-introduce the PR 2 ack-storm bug: every duplicate delivery answers
  /// with an immediate re-ack instead of coalescing a burst into one. Exists
  /// only so the conformance explorer can prove it catches the regression
  /// (tests/explorer_test.cpp); never enable outside tests.
  bool debug_disable_reack_coalescing = false;

  // --- Testbed presets (§1: the two SP node/adapter generations) -----------
  /// 332 MHz Power-PC SMP nodes with the TBMX adapter — the paper's
  /// evaluation testbed. This is the default configuration.
  [[nodiscard]] static MachineConfig tbmx_332() { return MachineConfig{}; }

  /// Power2-Super (P2SC) uniprocessor nodes with the TB3 adapter: slower
  /// clock but a stronger memory system and a faster adapter, so copies cost
  /// less and the adapter ceiling sits higher (~2x the TBMX path).
  [[nodiscard]] static MachineConfig tb3_p2sc() {
    MachineConfig cfg;
    cfg.adapter_ns_per_byte = 6.0;    // TB3 DMA ~2x TBMX
    cfg.adapter_packet_setup_ns = 550;
    cfg.copy_ns_per_byte = 3.0;       // P2SC memory pipes
    cfg.copy_call_ns = 180;
    cfg.interrupt_latency_ns = 15'000;  // slower clock, pricier kernel entry
    cfg.interrupt_service_ns = 8'000;
    return cfg;
  }
};

}  // namespace sp::sim
