// Trace: an optional, per-machine event timeline.
//
// When enabled (MachineConfig::trace_enabled), every protocol layer emits
// timestamped events at its interesting points (packet send/receive,
// interrupts, header/completion handlers, matching decisions). The timeline
// is invaluable for debugging protocol interleavings and doubles as teaching
// output (`spsim` can dump it). Disabled tracing costs one pointer test per
// call site.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace sp::sim {

class Trace {
 public:
  /// Retained-event cap when none is given (MachineConfig::trace_max_events
  /// overrides). A traced fault soak or long NAS run would otherwise grow the
  /// timeline without bound and exhaust host memory.
  static constexpr std::size_t kDefaultMaxEvents = std::size_t{1} << 20;

  struct Event {
    TimeNs t;
    int node;
    const char* category;  ///< Static string, e.g. "lapi.header_handler".
    std::string detail;
  };

  explicit Trace(std::size_t max_events = kDefaultMaxEvents) : max_events_(max_events) {}

  void emit(TimeNs t, int node, const char* category, std::string detail) {
    if (events_.size() >= max_events_) {
      ++dropped_;  // Bounded: keep the run's prefix, count what we shed.
      return;
    }
    events_.push_back(Event{t, node, category, std::move(detail)});
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }

  [[nodiscard]] std::size_t max_events() const noexcept { return max_events_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] std::size_t count(std::string_view category) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (category == e.category) ++n;
    }
    return n;
  }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// One line per event: "<time_us> n<node> <category> <detail>".
  void dump(std::FILE* out) const {
    for (const auto& e : events_) {
      std::fprintf(out, "%12.3f  n%-3d %-24s %s\n", to_us(e.t), e.node, e.category,
                   e.detail.c_str());
    }
  }

 private:
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
};

}  // namespace sp::sim
