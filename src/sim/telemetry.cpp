#include "sim/telemetry.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>

namespace sp::sim {
namespace {

struct EvInfo {
  const char* name;
  Layer layer;
};

constexpr std::array<EvInfo, kNumEvents> kEvInfo = {{
    {"sim.rank_start", Layer::kSim},
    {"sim.rank_finish", Layer::kSim},
    {"net.inject", Layer::kNet},
    {"net.drop", Layer::kNet},
    {"net.dup", Layer::kNet},
    {"hal.dma_start", Layer::kHal},
    {"hal.dma_end", Layer::kHal},
    {"hal.recv_dma", Layer::kHal},
    {"hal.deliver", Layer::kHal},
    {"hal.irq_enter", Layer::kHal},
    {"hal.irq_exit", Layer::kHal},
    {"pipes.send", Layer::kPipes},
    {"pipes.deliver", Layer::kPipes},
    {"pipes.retransmit", Layer::kPipes},
    {"pipes.ack", Layer::kPipes},
    {"pipes.dup_recv", Layer::kPipes},
    {"lapi.amsend", Layer::kLapi},
    {"lapi.header_handler", Layer::kLapi},
    {"lapi.completion.inline", Layer::kLapi},
    {"lapi.completion.thread", Layer::kLapi},
    {"lapi.retransmit", Layer::kLapi},
    {"lapi.ack", Layer::kLapi},
    {"lapi.dup_recv", Layer::kLapi},
    {"mpci.match", Layer::kMpci},
    {"mpci.early_arrival", Layer::kMpci},
    {"mpci.eager_send", Layer::kMpci},
    {"mpci.rendezvous_send", Layer::kMpci},
    {"mpi.enter", Layer::kMpi},
    {"mpi.exit", Layer::kMpi},
    {"nas.kernel_begin", Layer::kNas},
    {"nas.kernel_end", Layer::kNas},
    {"mpi.coll_begin", Layer::kMpi},
    {"mpi.coll_end", Layer::kMpi},
    {"net.innet_combine", Layer::kNet},
    {"net.innet_replicate", Layer::kNet},
}};

constexpr std::array<const char*, kNumLayers> kLayerNames = {
    "sim", "net", "hal", "pipes", "lapi", "mpci", "mpi", "nas"};

constexpr std::array<const char*, kNumMpiCalls> kMpiCallNames = {
    "MPI_Send",     "MPI_Ssend",    "MPI_Rsend",    "MPI_Bsend",   "MPI_Recv",
    "MPI_Sendrecv", "MPI_Isend",    "MPI_Issend",   "MPI_Irsend",  "MPI_Ibsend",
    "MPI_Irecv",    "MPI_Wait",     "MPI_Test",     "MPI_Waitall", "MPI_Waitany",
    "MPI_Testall",  "MPI_Probe",    "MPI_Iprobe",   "MPI_Barrier", "MPI_Bcast",
    "MPI_Reduce",   "MPI_Allreduce", "MPI_Gather",  "MPI_Scatter", "MPI_Allgather",
    "MPI_Alltoall", "MPI_Alltoallv", "MPI_Scan",    "MPI_Exscan",  "MPI_Gatherv",
    "MPI_Scatterv", "MPI_Reduce_scatter", "MPI_Start"};

constexpr std::array<const char*, 8> kNasKernelNames = {"EP", "IS", "CG", "MG",
                                                        "FT", "LU", "BT", "SP"};

constexpr std::array<const char*, kNumCollAlgos> kCollAlgoNames = {
    "bcast/binomial",          "bcast/pipelined",         "bcast/scatter_allgather",
    "allreduce/reduce_bcast",  "allreduce/recursive_doubling", "allreduce/rabenseifner",
    "alltoall/pairwise",       "alltoall/bruck",
    "reduce_scatter/reduce_scatter", "reduce_scatter/recursive_halving",
    "scan/linear",             "scan/binomial",
    "exscan/linear",           "exscan/binomial",
    "bcast/nic_offload",       "allreduce/nic_offload",   "barrier/nic_offload",
    "bcast/in_network",        "allreduce/in_network",    "barrier/in_network"};

constexpr std::array<const char*, kNumHists> kHistNames = {
    "mpi_call_ns", "irq_service_ns", "match_scanned", "msg_bytes"};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xffU;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

/// Span-style events become B/E pairs in the Chrome exporter; everything else
/// is an instant event.
bool is_begin(Ev e) noexcept {
  return e == Ev::kMpiEnter || e == Ev::kKernelBegin || e == Ev::kCollBegin;
}
bool is_end(Ev e) noexcept {
  return e == Ev::kMpiExit || e == Ev::kKernelEnd || e == Ev::kCollEnd;
}

/// Chrome span name for a B/E record: the MPI call, NAS kernel or collective
/// algorithm in a0.
const char* span_name(const TraceRecord& r) noexcept {
  const Ev e = static_cast<Ev>(r.event);
  if (e == Ev::kMpiEnter || e == Ev::kMpiExit) {
    return r.a0 < static_cast<std::uint64_t>(kNumMpiCalls)
               ? kMpiCallNames[static_cast<std::size_t>(r.a0)]
               : "MPI_?";
  }
  if (e == Ev::kCollBegin || e == Ev::kCollEnd) {
    return r.a0 < kCollAlgoNames.size() ? kCollAlgoNames[static_cast<std::size_t>(r.a0)]
                                        : "coll/?";
  }
  return r.a0 < kNasKernelNames.size() ? kNasKernelNames[static_cast<std::size_t>(r.a0)]
                                       : "NAS_?";
}

}  // namespace

const char* layer_name(Layer l) noexcept {
  return kLayerNames[static_cast<std::size_t>(l)];
}

const char* event_name(Ev e) noexcept {
  return kEvInfo[static_cast<std::size_t>(e)].name;
}

Layer event_layer(Ev e) noexcept {
  return kEvInfo[static_cast<std::size_t>(e)].layer;
}

const char* mpi_call_name(MpiCall c) noexcept {
  return kMpiCallNames[static_cast<std::size_t>(c)];
}

const char* nas_kernel_name(NasKernel k) noexcept {
  return kNasKernelNames[static_cast<std::size_t>(k)];
}

const char* coll_algo_name(CollAlgo a) noexcept {
  return kCollAlgoNames[static_cast<std::size_t>(a)];
}

const char* hist_name(Hist h) noexcept {
  return kHistNames[static_cast<std::size_t>(h)];
}

Telemetry::Telemetry(int num_nodes, std::size_t ring_bytes)
    : num_nodes_(num_nodes),
      ring_(std::max<std::size_t>(1, ring_bytes / sizeof(TraceRecord))),
      counters_(static_cast<std::size_t>(num_nodes) * kNumEvents, 0),
      hist_(static_cast<std::size_t>(num_nodes) * kNumHists * kHistBuckets, 0),
      coll_counters_(static_cast<std::size_t>(num_nodes) * kNumCollAlgos, 0) {}

std::uint64_t Telemetry::counter_total(Ev e) const noexcept {
  std::uint64_t total = 0;
  for (int n = 0; n < num_nodes_; ++n) total += counters_[counter_index(n, e)];
  return total;
}

std::uint64_t Telemetry::coll_count_total(CollAlgo a) const noexcept {
  std::uint64_t total = 0;
  for (int n = 0; n < num_nodes_; ++n) total += coll_counters_[coll_index(n, a)];
  return total;
}

std::vector<TraceRecord> Telemetry::records() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t idx = start + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    out.push_back(ring_[idx]);
  }
  return out;
}

std::uint64_t Telemetry::digest() const noexcept {
  std::uint64_t h = kFnvOffset;
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t idx = start + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    const TraceRecord& r = ring_[idx];
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.t));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.node));
    h = fnv1a_u64(h, r.event);
    h = fnv1a_u64(h, r.a0);
    h = fnv1a_u64(h, r.a1);
  }
  return fnv1a_u64(h, dropped_);
}

Telemetry::Snapshot Telemetry::snapshot() const {
  Snapshot s;
  s.emitted = emitted_;
  s.dropped = dropped_;
  s.counters = counters_;
  s.hist = hist_;
  return s;
}

Telemetry::Snapshot Telemetry::delta(const Snapshot& later, const Snapshot& earlier) {
  Snapshot d;
  d.emitted = later.emitted - earlier.emitted;
  d.dropped = later.dropped - earlier.dropped;
  d.counters.resize(later.counters.size());
  for (std::size_t i = 0; i < later.counters.size(); ++i) {
    d.counters[i] = later.counters[i] - (i < earlier.counters.size() ? earlier.counters[i] : 0);
  }
  d.hist.resize(later.hist.size());
  for (std::size_t i = 0; i < later.hist.size(); ++i) {
    d.hist[i] = later.hist[i] - (i < earlier.hist.size() ? earlier.hist[i] : 0);
  }
  return d;
}

void Telemetry::export_chrome_json(std::FILE* out) const {
  std::fprintf(out, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;
  const auto sep = [&] {
    if (!first) std::fputc(',', out);
    first = false;
    std::fputc('\n', out);
  };
  // Metadata: name the processes (nodes) and threads (layers).
  for (int n = 0; n < num_nodes_; ++n) {
    sep();
    std::fprintf(out,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                 "\"args\":{\"name\":\"node%d\"}}",
                 n, n);
    for (int l = 0; l < kNumLayers; ++l) {
      sep();
      std::fprintf(out,
                   "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                   "\"args\":{\"name\":\"%s\"}}",
                   n, l, kLayerNames[static_cast<std::size_t>(l)]);
    }
  }
  // Timestamps are microseconds (Chrome's unit); %.3f keeps ns resolution.
  for (const TraceRecord& r : records()) {
    const Ev e = static_cast<Ev>(r.event);
    const double ts_us = static_cast<double>(r.t) / 1000.0;
    sep();
    if (is_begin(e) || is_end(e)) {
      std::fprintf(out,
                   "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                   "\"args\":{\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}}",
                   span_name(r), is_begin(e) ? 'B' : 'E', ts_us, r.node, r.layer, r.a0,
                   r.a1);
    } else {
      std::fprintf(out,
                   "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,"
                   "\"tid\":%d,\"args\":{\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}}",
                   event_name(e), ts_us, r.node, r.layer, r.a0, r.a1);
    }
  }
  std::fprintf(out, "\n]}\n");
}

void Telemetry::export_csv(std::FILE* out) const {
  std::fprintf(out, "t_ns,node,layer,event,a0,a1\n");
  for (const TraceRecord& r : records()) {
    std::fprintf(out, "%" PRId64 ",%d,%s,%s,%" PRIu64 ",%" PRIu64 "\n",
                 static_cast<std::int64_t>(r.t), r.node,
                 kLayerNames[static_cast<std::size_t>(r.layer)],
                 event_name(static_cast<Ev>(r.event)), r.a0, r.a1);
  }
}

void Telemetry::export_text(std::FILE* out) const {
  for (const TraceRecord& r : records()) {
    std::fprintf(out, "%12.3f  n%-3d %-24s a0=%" PRIu64 " a1=%" PRIu64 "\n", to_us(r.t),
                 r.node, event_name(static_cast<Ev>(r.event)), r.a0, r.a1);
  }
  if (dropped_ > 0) {
    std::fprintf(out, "(%" PRIu64 " older records dropped by the ring buffer)\n",
                 dropped_);
  }
}

void Telemetry::print_metrics(std::FILE* out) const {
  std::fprintf(out,
               "telemetry: %" PRIu64 " records emitted, %" PRIu64
               " dropped (ring %zu records / %zu bytes)\n",
               emitted_, dropped_, ring_.size(), ring_.size() * sizeof(TraceRecord));
  std::fprintf(out, "\n%-24s %12s", "counter", "total");
  for (int n = 0; n < num_nodes_; ++n) std::fprintf(out, " %10s%d", "n", n);
  std::fputc('\n', out);
  for (int e = 0; e < kNumEvents; ++e) {
    const Ev ev = static_cast<Ev>(e);
    if (counter_total(ev) == 0) continue;
    std::fprintf(out, "%-24s %12" PRIu64, event_name(ev), counter_total(ev));
    for (int n = 0; n < num_nodes_; ++n) {
      std::fprintf(out, " %11" PRIu64, counter(n, ev));
    }
    std::fputc('\n', out);
  }
  bool coll_header = false;
  for (int a = 0; a < kNumCollAlgos; ++a) {
    const CollAlgo algo = static_cast<CollAlgo>(a);
    if (coll_count_total(algo) == 0) continue;
    if (!coll_header) {
      std::fprintf(out, "\n%-34s %12s", "collective algorithm", "calls");
      for (int n = 0; n < num_nodes_; ++n) std::fprintf(out, " %10s%d", "n", n);
      std::fputc('\n', out);
      coll_header = true;
    }
    std::fprintf(out, "%-34s %12" PRIu64, coll_algo_name(algo), coll_count_total(algo));
    for (int n = 0; n < num_nodes_; ++n) {
      std::fprintf(out, " %11" PRIu64, coll_count(n, algo));
    }
    std::fputc('\n', out);
  }
  for (int h = 0; h < kNumHists; ++h) {
    const Hist hist = static_cast<Hist>(h);
    // Aggregate across nodes; print occupied buckets only.
    std::array<std::uint64_t, kHistBuckets> agg{};
    std::uint64_t total = 0;
    for (int n = 0; n < num_nodes_; ++n) {
      for (int b = 0; b < kHistBuckets; ++b) {
        agg[static_cast<std::size_t>(b)] += hist_count(n, hist, b);
        total += hist_count(n, hist, b);
      }
    }
    if (total == 0) continue;
    std::fprintf(out, "\nhist %s (%" PRIu64 " samples, bucket floor: count)\n",
                 hist_name(hist), total);
    for (int b = 0; b < kHistBuckets; ++b) {
      if (agg[static_cast<std::size_t>(b)] == 0) continue;
      std::fprintf(out, "  >=%-12" PRIu64 " %" PRIu64 "\n", hist_bucket_floor(b),
                   agg[static_cast<std::size_t>(b)]);
    }
  }
}

}  // namespace sp::sim
