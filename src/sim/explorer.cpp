#include "sim/explorer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <sstream>
#include <tuple>

#include "mpci/channel.hpp"
#include "sim/rng.hpp"
#include "sim/telemetry.hpp"

namespace sp::sim {

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] constexpr std::uint64_t fnv(std::uint64_t h, std::uint64_t v) noexcept {
  // Word-at-a-time FNV-1a variant: enough mixing for equality digests.
  return (h ^ v) * kFnvPrime;
}

/// One message of the conformance soup, derived identically on every rank.
struct SoupMsg {
  int src = 0, dst = 0, tag = 0;
  std::uint32_t len = 0;
};

/// The deterministic mixed eager/rendezvous schedule for a perturbation.
[[nodiscard]] std::vector<SoupMsg> build_schedule(const Perturbation& p) {
  Pcg32 g(p.workload_seed, /*stream=*/0x5c4edc1eULL);
  std::vector<SoupMsg> schedule;
  schedule.reserve(static_cast<std::size_t>(p.nodes) *
                   static_cast<std::size_t>(p.msgs_per_rank));
  for (int s = 0; s < p.nodes; ++s) {
    for (int k = 0; k < p.msgs_per_rank; ++k) {
      SoupMsg m;
      m.src = s;
      m.dst = static_cast<int>(g.next_below(static_cast<std::uint32_t>(p.nodes)));
      m.tag = static_cast<int>(g.next_below(3));
      // Mix of eager (<= 4096) and rendezvous sizes.
      const std::uint32_t cls = g.next_below(4);
      m.len = cls == 0   ? 1 + g.next_below(64)
              : cls == 1 ? 64 + g.next_below(2048)
              : cls == 2 ? 2048 + g.next_below(6144)
                         : 8192 + g.next_below(24576);
      schedule.push_back(m);
    }
  }
  return schedule;
}

/// Payload byte `i` of schedule entry `idx` — both sides compute it.
[[nodiscard]] constexpr std::uint8_t payload_byte(const SoupMsg& m, int idx, std::size_t i) {
  return static_cast<std::uint8_t>(m.src * 7 + m.dst * 13 + m.tag * 3 + idx * 31 +
                                   static_cast<int>(i));
}

constexpr int kWildcardTag = 77;

/// Per-rank observables collected on the rank fiber during the run.
struct RankObs {
  std::uint64_t payload = kFnvBasis;
  std::uint64_t status = kFnvBasis;
  std::uint64_t wildcard = 0;  ///< Commutative (summed) fold.
  std::uint64_t coll = kFnvBasis;
  std::uint64_t checksum = 0;
  bool payload_ok = true;
  bool coll_ok = true;
};

void conformance_workload(const Perturbation& p, const std::vector<SoupMsg>& schedule,
                          mpi::Mpi& mpi, std::vector<RankObs>& obs) {
  using mpi::Datatype;
  using mpi::Request;
  using mpi::Status;
  auto& w = mpi.world();
  const int me = w.rank();
  RankObs& o = obs[static_cast<std::size_t>(me)];
  if ((p.flags & Perturbation::kFlagInterruptMode) != 0) mpi.set_interrupt_mode(true);

  // Phase A: message soup. Receives are posted in global schedule order,
  // which per (src, tag) is exactly send order — the posted-recv sequence is
  // therefore channel-invariant and so are the folds below.
  std::vector<Request> recvs;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> rbufs;
  std::vector<int> ridx;
  for (int i = 0; i < static_cast<int>(schedule.size()); ++i) {
    const SoupMsg& m = schedule[static_cast<std::size_t>(i)];
    if (m.dst != me) continue;
    rbufs.push_back(std::make_unique<std::vector<std::uint8_t>>(m.len, 0));
    recvs.push_back(mpi.irecv(rbufs.back()->data(), m.len, Datatype::kByte, m.src, m.tag, w));
    ridx.push_back(i);
  }
  std::vector<Request> sends;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> sbufs;
  for (int i = 0; i < static_cast<int>(schedule.size()); ++i) {
    const SoupMsg& m = schedule[static_cast<std::size_t>(i)];
    if (m.src != me) continue;
    auto buf = std::make_unique<std::vector<std::uint8_t>>(m.len);
    for (std::size_t b = 0; b < buf->size(); ++b) (*buf)[b] = payload_byte(m, i, b);
    sbufs.push_back(std::move(buf));
    sends.push_back(mpi.isend(sbufs.back()->data(), m.len, Datatype::kByte, m.dst, m.tag, w));
  }
  std::vector<Status> rsts(recvs.size());
  mpi.waitall(recvs.data(), recvs.size(), rsts.data());
  mpi.waitall(sends.data(), sends.size());

  for (std::size_t k = 0; k < ridx.size(); ++k) {
    const SoupMsg& m = schedule[static_cast<std::size_t>(ridx[k])];
    const Status& st = rsts[k];
    o.status = fnv(o.status, static_cast<std::uint64_t>(st.source));
    o.status = fnv(o.status, static_cast<std::uint64_t>(st.tag));
    o.status = fnv(o.status, st.len);
    for (std::size_t b = 0; b < rbufs[k]->size(); ++b) {
      const std::uint8_t got = (*rbufs[k])[b];
      if (got != payload_byte(m, ridx[k], b)) o.payload_ok = false;
      o.payload = fnv(o.payload, got);
    }
  }

  // Phase B: wildcard receives. Arrival order across sources is legitimately
  // channel-dependent, so fold order-insensitively (commutative sum).
  // A wildcard recv matches whichever tag-77 message arrives next, so every
  // buffer must have capacity for the largest sender; verify Status::len bytes.
  std::vector<Request> wrecvs;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> wbufs;
  const std::size_t wcap = 32 + static_cast<std::size_t>(p.nodes);
  for (int s = 0; s < p.nodes; ++s) {
    if (s == me) continue;
    wbufs.push_back(std::make_unique<std::vector<std::uint8_t>>(wcap, 0));
    wrecvs.push_back(
        mpi.irecv(wbufs.back()->data(), wcap, Datatype::kByte, mpi::kAnySource, kWildcardTag, w));
  }
  std::vector<Request> wsends;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> wsbufs;
  for (int d = 0; d < p.nodes; ++d) {
    if (d == me) continue;
    const std::size_t len = 32 + static_cast<std::size_t>(me);
    auto buf = std::make_unique<std::vector<std::uint8_t>>(len);
    for (std::size_t b = 0; b < len; ++b) {
      (*buf)[b] = static_cast<std::uint8_t>(me * 29 + d * 11 + static_cast<int>(b));
    }
    wsbufs.push_back(std::move(buf));
    wsends.push_back(
        mpi.isend(wsbufs.back()->data(), len, Datatype::kByte, d, kWildcardTag, w));
  }
  std::vector<Status> wsts(wrecvs.size());
  mpi.waitall(wrecvs.data(), wrecvs.size(), wsts.data());
  mpi.waitall(wsends.data(), wsends.size());
  for (std::size_t k = 0; k < wrecvs.size(); ++k) {
    const int src = wsts[k].source;
    const std::size_t got = wsts[k].len;
    std::uint64_t h = kFnvBasis;
    h = fnv(h, static_cast<std::uint64_t>(src));
    h = fnv(h, got);
    if (got != 32 + static_cast<std::size_t>(src) || got > wcap) o.payload_ok = false;
    for (std::size_t b = 0; b < got && b < wcap; ++b) {
      const std::uint8_t byte = (*wbufs[k])[b];
      h = fnv(h, byte);
      if (byte != static_cast<std::uint8_t>(src * 29 + me * 11 + static_cast<int>(b))) {
        o.payload_ok = false;
      }
    }
    o.wildcard += h;  // commutative
  }

  // Phase C: collectives under the vector's algorithm pins. Every input is a
  // pure function of (rank, workload_seed), so each rank also computes the
  // exact wrapping-integer sequential reference locally and verifies against
  // it in place — no extra machine runs. The folded results feed the
  // conformance digest: algorithm choice must never change what the user
  // sees, and Pipes and LAPI must agree bit-for-bit.
  {
    using mpi::Op;
    const int n = p.nodes;
    Pcg32 cg(p.workload_seed, /*stream=*/0xc0117ULL);
    // Sizes straddle the engine's cutovers (small stays on the latency
    // algorithms; large crosses the 16 KiB Rabenseifner threshold) and are
    // granule-4 so Op::kMat2x2 is always legal.
    const std::size_t small = 4 * (1 + cg.next_below(4));
    const std::size_t large = 4 * (256 + cg.next_below(512));
    const int root = static_cast<int>(cg.next_below(static_cast<std::uint32_t>(n)));
    const auto val = [&](int r, std::size_t i) {
      return (static_cast<std::uint64_t>(r) + 1) * 0x9e3779b97f4a7c15ULL + i * 1000003 +
             p.workload_seed;
    };
    const auto fold = [&](const std::uint64_t* v, std::size_t cnt) {
      for (std::size_t i = 0; i < cnt; ++i) o.coll = fnv(o.coll, v[i]);
    };
    std::vector<std::uint64_t> in(large), out(large), ref(large);

    // Wrapping-sum allreduce at the large size.
    for (std::size_t i = 0; i < large; ++i) {
      in[i] = val(me, i);
      ref[i] = 0;
      for (int r = 0; r < n; ++r) ref[i] += val(r, i);
    }
    mpi.allreduce(in.data(), out.data(), large, Datatype::kLong, Op::kSum, w);
    if (std::memcmp(out.data(), ref.data(), large * 8) != 0) o.coll_ok = false;
    fold(out.data(), large);

    // Non-commutative 2x2 matrix product: whichever allreduce algorithm the
    // vector pinned must preserve rank order exactly.
    std::vector<std::uint64_t> mat(small), mref(small), tmp(small);
    for (std::size_t i = 0; i < small; ++i) mat[i] = val(me, i) | 1;
    for (std::size_t i = 0; i < small; ++i) mref[i] = val(0, i) | 1;
    for (int r = 1; r < n; ++r) {
      for (std::size_t i = 0; i < small; ++i) tmp[i] = val(r, i) | 1;
      mpi::reduce_apply(Op::kMat2x2, Datatype::kLong, tmp.data(), mref.data(), small);
    }
    mpi.allreduce(mat.data(), out.data(), small, Datatype::kLong, Op::kMat2x2, w);
    if (std::memcmp(out.data(), mref.data(), small * 8) != 0) o.coll_ok = false;
    fold(out.data(), small);

    // Inclusive prefix sum; each rank checks its own prefix.
    for (std::size_t i = 0; i < small; ++i) in[i] = val(me, i);
    mpi.scan(in.data(), out.data(), small, Datatype::kLong, Op::kSum, w);
    for (std::size_t i = 0; i < small; ++i) {
      std::uint64_t want = 0;
      for (int r = 0; r <= me; ++r) want += val(r, i);
      if (out[i] != want) o.coll_ok = false;
    }
    fold(out.data(), small);

    // Large bcast from a seed-chosen root.
    if (me == root) {
      for (std::size_t i = 0; i < large; ++i) out[i] = val(root, i) * 3 + 1;
    } else {
      std::fill(out.begin(), out.end(), 0);
    }
    mpi.bcast(out.data(), large, Datatype::kLong, root, w);
    for (std::size_t i = 0; i < large; ++i) {
      if (out[i] != val(root, i) * 3 + 1) o.coll_ok = false;
    }
    fold(out.data(), large);

    // Alltoall with per-(src,dst) payloads.
    std::vector<std::uint64_t> a2a_in(small * static_cast<std::size_t>(n));
    std::vector<std::uint64_t> a2a_out(small * static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      for (std::size_t i = 0; i < small; ++i) {
        a2a_in[static_cast<std::size_t>(d) * small + i] =
            val(me, i + static_cast<std::size_t>(d) * 131);
      }
    }
    mpi.alltoall(a2a_in.data(), small * 8, a2a_out.data(), Datatype::kByte, w);
    for (int s = 0; s < n; ++s) {
      for (std::size_t i = 0; i < small; ++i) {
        if (a2a_out[static_cast<std::size_t>(s) * small + i] !=
            val(s, i + static_cast<std::size_t>(me) * 131)) {
          o.coll_ok = false;
        }
      }
    }
    fold(a2a_out.data(), a2a_out.size());

    // Reduce-scatter-block: each rank checks its own sum block.
    std::vector<std::uint64_t> rs_in(small * static_cast<std::size_t>(n));
    std::vector<std::uint64_t> rs_out(small);
    for (std::size_t i = 0; i < rs_in.size(); ++i) rs_in[i] = val(me, i);
    mpi.reduce_scatter_block(rs_in.data(), rs_out.data(), small, Datatype::kLong, Op::kSum, w);
    for (std::size_t i = 0; i < small; ++i) {
      std::uint64_t want = 0;
      for (int r = 0; r < n; ++r) want += val(r, static_cast<std::size_t>(me) * small + i);
      if (rs_out[i] != want) o.coll_ok = false;
    }
    fold(rs_out.data(), small);
  }

  // Phase D: a reduction over the per-rank folds — every rank must agree on
  // the total, and the total must match across channels.
  std::uint64_t local = o.payload ^ o.wildcard ^ o.coll;
  std::uint64_t total = 0;
  mpi.allreduce(&local, &total, 1, Datatype::kLong, mpi::Op::kSum, w);
  o.checksum = total;
  mpi.barrier(w);
}

/// Fold the per-node match logs into a channel-invariant digest: group by
/// (ctx, src, tag), order each group by envelope seq (the matching order MPI
/// non-overtaking mandates), and fold groups in sorted-key order.
///
/// Two channel-specific details are deliberately excluded. Collective-internal
/// matches (tags >= mpi::kCollTagBase) are dropped: NIC offload completes
/// collectives without any channel messages, so their envelopes are a
/// scheduling artifact of the host algorithms, not an MPI observable
/// (collective *results* are covered by coll_digest / checksum). And raw seq
/// values are folded as within-group positions, not values: offloaded
/// collectives no longer advance the per-peer seq counters, shifting the
/// absolute seqs of later user messages while leaving their relative order —
/// the thing non-overtaking constrains — intact.
[[nodiscard]] std::uint64_t fold_match_logs(
    const std::vector<std::vector<mpci::Channel::MatchRecord>>& logs) {
  std::uint64_t total = kFnvBasis;
  for (std::size_t r = 0; r < logs.size(); ++r) {
    std::map<std::tuple<std::uint16_t, std::uint16_t, std::int32_t>,
             std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        groups;
    for (const auto& rec : logs[r]) {
      if (rec.tag >= mpi::kCollTagBase) continue;
      groups[{rec.ctx, rec.src, rec.tag}].emplace_back(rec.seq, rec.len);
    }
    total = fnv(total, r);
    for (auto& [key, v] : groups) {
      std::sort(v.begin(), v.end());
      total = fnv(total, std::get<0>(key));
      total = fnv(total, std::get<1>(key));
      total = fnv(total, static_cast<std::uint64_t>(static_cast<std::uint32_t>(std::get<2>(key))));
      for (std::size_t i = 0; i < v.size(); ++i) {
        total = fnv(total, i);
        total = fnv(total, v[i].second);
      }
    }
  }
  return total;
}

/// The transport the backend actually exercises; the other must stay silent.
struct TransportCounters {
  std::int64_t retransmits = 0;
  std::int64_t duplicates = 0;
  std::int64_t acks = 0;
  std::int64_t reacks_coalesced = 0;
};

[[nodiscard]] TransportCounters pipes_transport(const mpi::Machine::Stats& s) {
  return {s.pipes_retransmits, s.pipes_duplicate_deliveries, s.pipes_acks,
          s.pipes_reacks_coalesced};
}
[[nodiscard]] TransportCounters lapi_transport(const mpi::Machine::Stats& s) {
  return {s.lapi_retransmits, s.lapi_duplicate_deliveries, s.lapi_acks,
          s.lapi_reacks_coalesced};
}
[[nodiscard]] TransportCounters rdma_transport(const mpi::Machine::Stats& s) {
  return {s.rdma_retransmits, s.rdma_duplicate_deliveries, s.rdma_acks,
          s.rdma_reacks_coalesced};
}

[[nodiscard]] TransportCounters active_transport(mpi::Backend b, const mpi::Machine::Stats& s) {
  if (b == mpi::Backend::kNativePipes) return pipes_transport(s);
  if (b == mpi::Backend::kRdma) return rdma_transport(s);
  return lapi_transport(s);
}

/// Sum of the transports the backend does NOT use (all must stay silent).
[[nodiscard]] TransportCounters idle_transport(mpi::Backend b, const mpi::Machine::Stats& s) {
  TransportCounters t;
  auto add = [&t](const TransportCounters& o) {
    t.retransmits += o.retransmits;
    t.duplicates += o.duplicates;
    t.acks += o.acks;
    t.reacks_coalesced += o.reacks_coalesced;
  };
  if (b != mpi::Backend::kNativePipes) add(pipes_transport(s));
  if (b == mpi::Backend::kNativePipes || b == mpi::Backend::kRdma) add(lapi_transport(s));
  if (b != mpi::Backend::kRdma) add(rdma_transport(s));
  return t;
}

void check_invariants(mpi::Backend backend, const mpi::Machine& machine,
                      Explorer::RunOutcome& out) {
  auto violate = [&](const std::string& what) { out.invariant_violations.push_back(what); };
  std::ostringstream os;
  const mpi::Machine::Stats& s = out.stats;
  const TransportCounters act = active_transport(backend, s);
  const TransportCounters idle = idle_transport(backend, s);

  // The transport the backend does not use must carry no traffic at all.
  if (idle.retransmits != 0 || idle.duplicates != 0 || idle.acks != 0) {
    os.str("");
    os << "idle transport shows traffic: retx=" << idle.retransmits
       << " dups=" << idle.duplicates << " acks=" << idle.acks;
    violate(os.str());
  }

  // Retransmit runaway bound, derived from the protocol: per pair, a timeout
  // expiry resends at most one window and expiries are >= one timeout apart,
  // so legitimate timeout-driven retransmits (acks can stall behind bulk data
  // for >2 ms while a receiver is CPU-busy copying) never exceed
  // window * pairs * ceil(elapsed / timeout). Injected faults add go-back-N
  // trains on top. Anything past the sum is a retransmit-timer bug.
  const MachineConfig& cfg = machine.config();
  const std::int64_t faults = s.fabric_dropped + s.fabric_duplicated;
  const std::int64_t pairs =
      static_cast<std::int64_t>(machine.num_tasks()) * machine.num_tasks();
  const std::int64_t windows =
      1 + static_cast<std::int64_t>(out.elapsed / cfg.retransmit_timeout_ns);
  const std::int64_t timeout_bound = windows * cfg.sliding_window_packets * pairs;
  if (act.retransmits > (faults + 1) * 64 + timeout_bound) {
    os.str("");
    os << "retransmit runaway: " << act.retransmits << " retx for " << faults
       << " injected faults (timeout budget " << timeout_bound << ", elapsed_ns="
       << out.elapsed << ")";
    violate(os.str());
  }

  // The PR 2 re-ack coalescing invariant: duplicate deliveries arrive mostly
  // in go-back-N bursts, so most of them must fold into delayed flushes (one
  // immediate re-ack per ack_delay window; measured healthy ratio is ~25-30%
  // immediate). An ack storm (the re-introduced bug) answers every duplicate
  // immediately — immediate == dups — so a 50% threshold separates the two
  // with margin on both sides.
  if (act.duplicates >= 48) {
    const std::int64_t immediate = act.duplicates - act.reacks_coalesced;
    if (immediate > act.duplicates / 2 + 16) {
      os.str("");
      os << "re-ack storm: " << immediate << " immediate re-acks for " << act.duplicates
         << " duplicate deliveries (" << act.reacks_coalesced << " coalesced)";
      violate(os.str());
    }
  }

  // Telemetry ring accounting: overwrite-oldest must retain exactly
  // min(emitted, capacity) records and count the rest as dropped.
  if (const Telemetry* t = machine.telemetry()) {
    const std::uint64_t cap = t->ring_capacity();
    const std::uint64_t retained = t->ring_bytes_in_use() / sizeof(TraceRecord);
    const std::uint64_t expect_retained = std::min<std::uint64_t>(t->records_emitted(), cap);
    if (retained != expect_retained ||
        t->records_dropped() != t->records_emitted() - retained) {
      os.str("");
      os << "telemetry ring accounting broken: emitted=" << t->records_emitted()
         << " retained=" << retained << " dropped=" << t->records_dropped()
         << " cap=" << cap;
      violate(os.str());
    }
  }
}

/// Rebuild a --coll-algo spec from a vector's pin nibbles (the reverse of
/// apply_algo_spec's name lists) so a systematic token replays its collective
/// phase under the same pinned algorithms standalone.
[[nodiscard]] std::string sys_coll_spec(std::uint32_t coll_algos, std::uint32_t coll_ext) {
  static const char* const kBcast[] = {"auto",              "binomial", "pipelined",
                                       "scatter_allgather", "nic",      "in_network"};
  static const char* const kAllreduce[] = {"auto",         "reduce_bcast", "recursive_doubling",
                                           "rabenseifner", "nic",          "in_network"};
  static const char* const kAlltoall[] = {"auto", "pairwise", "bruck"};
  static const char* const kReduceScatter[] = {"auto", "reduce_scatter", "recursive_halving"};
  static const char* const kScan[] = {"auto", "linear", "binomial"};
  std::string s;
  const auto add = [&s](const char* prim, const char* name) {
    if (!s.empty()) s += ',';
    s += prim;
    s += '=';
    s += name;
  };
  if (const std::uint32_t x = coll_algos & 0xF; x >= 1 && x <= 5) add("bcast", kBcast[x]);
  if (const std::uint32_t x = (coll_algos >> 4) & 0xF; x >= 1 && x <= 5) {
    add("allreduce", kAllreduce[x]);
  }
  if (const std::uint32_t x = (coll_algos >> 8) & 0xF; x >= 1 && x <= 2) {
    add("alltoall", kAlltoall[x]);
  }
  if (const std::uint32_t x = (coll_algos >> 12) & 0xF; x >= 1 && x <= 2) {
    add("reduce_scatter", kReduceScatter[x]);
  }
  if (const std::uint32_t x = (coll_algos >> 16) & 0xF; x >= 1 && x <= 2) add("scan", kScan[x]);
  const std::uint32_t bar = coll_ext & 0xF;
  if (bar == 1) {
    add("barrier", "dissemination");
  } else if (bar == 4) {
    add("barrier", "nic");
  } else if (bar == 5) {
    add("barrier", "in_network");
  }
  return s;
}

}  // namespace

MachineConfig Perturbation::apply(MachineConfig cfg) const {
  cfg.packet_drop_rate = static_cast<double>(drop_ppm) * 1e-6;
  cfg.packet_dup_rate = static_cast<double>(dup_ppm) * 1e-6;
  cfg.route_bias = static_cast<double>(route_bias_ppm) * 1e-6;
  cfg.packet_jitter_ns = jitter_ns;
  cfg.route_skew_ns = route_skew_ns;
  cfg.burst_drop_len = burst;
  cfg.fabric_seed = fabric_seed;
  cfg.event_tie_break_salt = tie_break_salt;
  cfg.debug_disable_reack_coalescing = (flags & kFlagReackStormBug) != 0;
  // Collective algorithm pins, one nibble per primitive (0 keeps auto).
  cfg.coll_bcast_algo = static_cast<int>(coll_algos & 0xF);
  cfg.coll_allreduce_algo = static_cast<int>((coll_algos >> 4) & 0xF);
  cfg.coll_alltoall_algo = static_cast<int>((coll_algos >> 8) & 0xF);
  cfg.coll_reduce_scatter_algo = static_cast<int>((coll_algos >> 12) & 0xF);
  cfg.coll_scan_algo = static_cast<int>((coll_algos >> 16) & 0xF);
  cfg.coll_barrier_algo = static_cast<int>(coll_ext & 0xF);
  cfg.topology = static_cast<TopologyKind>(topology);
  // Lossy runs use the soak timeout so go-back-N recovery happens promptly.
  if (drop_ppm > 0) cfg.retransmit_timeout_ns = 400'000;
  // Telemetry feeds the determinism digest, the ring invariant and the
  // failing-run trace export.
  cfg.telemetry_enabled = true;
  return cfg;
}

std::string Perturbation::token() const {
  // Systematic vectors append three fields ("x5"); a barrier pin appends one
  // more ("x6", which always carries the systematic fields too — versions
  // stay append-only even when the vector is not systematic). Everything
  // else keeps the "x4" form so pre-existing pinned tokens stay
  // byte-identical.
  const bool sys = (flags & kFlagSystematic) != 0;
  const bool ext = coll_ext != 0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s-%" PRIx64 "-%x-%x-%" PRIx64 "-%" PRIx64 "-%x-%x-%x-%" PRIx64 "-%" PRIx64
                "-%x-%" PRIx64 "-%x-%x-%x-%x",
                ext ? "x6" : (sys ? "x5" : "x4"), seed, static_cast<unsigned>(nodes),
                static_cast<unsigned>(msgs_per_rank), workload_seed, fabric_seed, drop_ppm,
                dup_ppm, route_bias_ppm, static_cast<std::uint64_t>(jitter_ns),
                static_cast<std::uint64_t>(route_skew_ns), static_cast<unsigned>(burst),
                tie_break_salt, flags, coll_algos, topology, channels);
  std::string t = buf;
  if (sys || ext) {
    std::snprintf(buf, sizeof(buf), "-%" PRIx64 "-%x-s",
                  static_cast<std::uint64_t>(sched_window_ns), sys_msg_bytes);
    t += buf;
    t += sched;  // lowercase hex decision digits (possibly empty)
  }
  if (ext) {
    std::snprintf(buf, sizeof(buf), "-%x", coll_ext);
    t += buf;
  }
  return t;
}

std::optional<Perturbation> Perturbation::parse(const std::string& token) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : token) {
    if (c == '-') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  // Version history, append-only so old tokens stay replayable: "x2" is the
  // pre-topology token (14 fields), "x3" appends topology (default 0 = SP
  // multistage), "x4" appends the channel-pairing field (default 0 = the
  // legacy Pipes <-> LAPI pair), "x5" appends the systematic-mode fields
  // (candidate window, payload length, "s"-prefixed decision digits), "x6"
  // appends the barrier-pin field (and therefore always carries the
  // systematic fields, neutral when the vector is not systematic).
  const bool ext = parts[0] == "x6";
  const bool sys = parts[0] == "x5" || ext;
  if (!(ext && parts.size() == 21) && !(parts[0] == "x5" && parts.size() == 20) &&
      !(parts[0] == "x4" && parts.size() == 17) && !(parts[0] == "x3" && parts.size() == 16) &&
      !(parts[0] == "x2" && parts.size() == 15)) {
    return std::nullopt;
  }
  // Strict lowercase-hex fields only. strtoull would silently accept leading
  // whitespace, '+'/'-', "0x" prefixes and wrap values past 16 digits — all
  // of which turn a corrupted token into a plausible-looking different
  // vector instead of a parse error.
  auto u64 = [](const std::string& s, std::uint64_t& out) {
    if (s.empty() || s.size() > 16) return false;
    std::uint64_t v = 0;
    for (char c : s) {
      std::uint64_t d;
      if (c >= '0' && c <= '9') {
        d = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
      v = (v << 4) | d;
    }
    out = v;
    return true;
  };
  std::uint64_t v[18] = {};
  // Numeric fields are parts[1..numeric]; x5/x6 tokens carry the "s..."
  // decision part at index 19 (x6 appends one more numeric field after it),
  // everything before it (after the version) is numeric.
  const std::size_t numeric = sys ? 18 : parts.size() - 1;
  for (std::size_t i = 0; i < numeric; ++i) {
    if (!u64(parts[i + 1], v[i])) return std::nullopt;
  }
  Perturbation p;
  p.seed = v[0];
  p.nodes = static_cast<int>(v[1]);
  p.msgs_per_rank = static_cast<int>(v[2]);
  p.workload_seed = v[3];
  p.fabric_seed = v[4];
  p.drop_ppm = static_cast<std::uint32_t>(v[5]);
  p.dup_ppm = static_cast<std::uint32_t>(v[6]);
  p.route_bias_ppm = static_cast<std::uint32_t>(v[7]);
  p.jitter_ns = static_cast<TimeNs>(v[8]);
  p.route_skew_ns = static_cast<TimeNs>(v[9]);
  p.burst = static_cast<int>(v[10]);
  p.tie_break_salt = v[11];
  p.flags = static_cast<std::uint32_t>(v[12]);
  p.coll_algos = static_cast<std::uint32_t>(v[13]);
  p.topology = static_cast<std::uint32_t>(v[14]);
  p.channels = static_cast<std::uint32_t>(v[15]);
  if (sys) {
    p.sched_window_ns = static_cast<TimeNs>(v[16]);
    p.sys_msg_bytes = static_cast<std::uint32_t>(v[17]);
    const std::string& s = parts[19];
    if (s.empty() || s[0] != 's') return std::nullopt;
    p.sched = s.substr(1);
    for (char c : p.sched) {
      if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return std::nullopt;
    }
    if ((p.flags & kFlagSystematic) != 0) {
      // The backend nibble must name a real backend; systematic workloads
      // are bounded (k rides in one byte).
      const std::uint32_t backend = (p.flags & kBackendMask) >> kBackendShift;
      if (backend > 4 || p.msgs_per_rank > 255 || p.sys_msg_bytes < 1 ||
          p.sys_msg_bytes > 65536 || p.sched.size() > 4096) {
        return std::nullopt;
      }
    } else if (ext) {
      // Non-systematic x6 vectors carry the systematic fields inert; a
      // decision string without the flag is a corrupted token, not a vector.
      if (!p.sched.empty() || p.sched_window_ns != 0) return std::nullopt;
    } else {
      return std::nullopt;  // x5 requires the systematic flag
    }
  } else if ((p.flags & kFlagSystematic) != 0) {
    return std::nullopt;  // pre-x5 tokens cannot carry the systematic flag
  }
  if (ext) {
    std::uint64_t ce = 0;
    if (!u64(parts[20], ce)) return std::nullopt;
    // Barrier pins only (one nibble); ids 2-3 do not exist for barrier.
    if (ce > 5 || ce == 2 || ce == 3) return std::nullopt;
    p.coll_ext = static_cast<std::uint32_t>(ce);
  }
  if (p.nodes < 2 || p.nodes > 64 || p.msgs_per_rank < 1 || p.msgs_per_rank > 4096 ||
      p.burst < 1 || p.burst > 64 || p.drop_ppm > 500'000 || p.dup_ppm > 500'000 ||
      p.route_bias_ppm > 1'000'000 || p.topology >= static_cast<std::uint32_t>(kTopologyKinds) ||
      p.channels > 3) {
    return std::nullopt;
  }
  // Per-primitive pin bounds: bcast/allreduce have 3 host algorithms + the
  // NIC offload (4) + the in-network combining tables (5) + auto,
  // alltoall/reduce_scatter/scan have 2 + auto; nothing above the scan
  // nibble.
  const std::uint32_t a = p.coll_algos;
  if ((a >> 20) != 0 || (a & 0xF) > 5 || ((a >> 4) & 0xF) > 5 || ((a >> 8) & 0xF) > 2 ||
      ((a >> 12) & 0xF) > 2 || ((a >> 16) & 0xF) > 2) {
    return std::nullopt;
  }
  return p;
}

Perturbation Explorer::perturbation_for(std::uint64_t seed) const {
  Pcg32 g(seed, /*stream=*/0xe17015ULL);
  auto u64 = [&g] { return (static_cast<std::uint64_t>(g.next()) << 32) | g.next(); };

  Perturbation p;
  p.seed = seed;
  p.nodes = opts_.nodes;
  p.msgs_per_rank = opts_.msgs_per_rank;
  p.workload_seed = u64();
  p.fabric_seed = u64();

  // Fault profile classes keep a quarter of the space clean-ish so schedule
  // perturbations (salt/bias/jitter) are also explored without loss noise.
  const std::uint32_t profile = g.next_below(4);
  if (profile == 1 || profile == 3) {
    p.drop_ppm = 2'000 + g.next_below(38'000);  // 0.2% .. 4%
    p.burst = 1 + static_cast<int>(g.next_below(3));
  }
  if (profile == 2 || profile == 3) {
    p.dup_ppm = 2'000 + g.next_below(28'000);  // 0.2% .. 3%
  }
  if (g.next_below(2) != 0) p.jitter_ns = static_cast<TimeNs>(g.next_below(120'000));
  if (g.next_below(2) != 0) p.route_bias_ppm = 100'000 + g.next_below(700'000);
  if (g.next_below(2) != 0) p.route_skew_ns = static_cast<TimeNs>(g.next_below(4'000));
  if (g.next_below(2) != 0) p.tie_break_salt = u64() | 1;  // never 0 when on
  if (g.next_below(4) == 0) p.flags |= Perturbation::kFlagInterruptMode;
  // Half the space pins collective algorithms (one nibble per primitive,
  // 0 = auto within each draw too) so the sweep differentials every
  // algorithm pairing against both channels and the sequential references.
  // Bcast/allreduce draw from 5 values: 4 = NIC offload, which host-only
  // channels resolve to the host auto table (the pin must stay conformant
  // on every channel either way).
  if (g.next_below(2) != 0) {
    p.coll_algos = g.next_below(5) | (g.next_below(5) << 4) | (g.next_below(3) << 8) |
                   (g.next_below(3) << 12) | (g.next_below(3) << 16);
  }
  // Half the space runs on a non-SP fabric (drawn last so older fields stay
  // seed-stable); topology must never change MPI results, only schedules.
  // A non-default base-config topology (spsim explore --topology) becomes the
  // other half's default, so nightly sweeps can soak one fabric directly.
  p.topology = static_cast<std::uint32_t>(opts_.base_config.topology);
  if (g.next_below(2) != 0) {
    p.topology = 1 + g.next_below(static_cast<std::uint32_t>(kTopologyKinds - 1));
  }
  // Half the space brings the RDMA channel into the differential set (drawn
  // after topology so earlier fields stay seed-stable): evenly split between
  // pipes<->rdma, lapi<->rdma and the full trio.
  if (g.next_below(2) != 0) p.channels = 1 + g.next_below(3);
  // In-network draws, kept last so every earlier field stays seed-stable:
  // when collectives are pinned, an eighth of the space upgrades the bcast
  // and/or allreduce nibble to the switch-combining id (5), and a quarter of
  // the whole space pins the barrier algorithm (the x6 token field; barrier
  // ids are 1/4/5 — there is no host-algorithm choice beyond dissemination).
  if (p.coll_algos != 0) {
    if (g.next_below(8) == 0) p.coll_algos = (p.coll_algos & ~0xFu) | 5u;
    if (g.next_below(8) == 0) p.coll_algos = (p.coll_algos & ~0xF0u) | (5u << 4);
  }
  if (g.next_below(4) == 0) {
    static constexpr std::uint32_t kBarrierIds[] = {1, 4, 5};
    p.coll_ext = kBarrierIds[g.next_below(3)];
  }
  if (opts_.inject_reack_bug) p.flags |= Perturbation::kFlagReackStormBug;
  return p;
}

Explorer::RunOutcome Explorer::run_channel(const Perturbation& p, mpi::Backend backend) const {
  RunOutcome out;
  const MachineConfig cfg = p.apply(opts_.base_config);
  const std::vector<SoupMsg> schedule = build_schedule(p);
  std::vector<std::vector<mpci::Channel::MatchRecord>> logs(
      static_cast<std::size_t>(p.nodes));
  std::vector<RankObs> obs(static_cast<std::size_t>(p.nodes));
  try {
    mpi::Machine m(cfg, p.nodes, backend);
    for (int t = 0; t < p.nodes; ++t) {
      m.channel(t).set_match_log(&logs[static_cast<std::size_t>(t)]);
    }
    m.run([&](mpi::Mpi& mpi) { conformance_workload(p, schedule, mpi, obs); });
    out.completed = true;
    out.stats = m.stats();
    out.elapsed = m.elapsed();
    if (m.telemetry() != nullptr) out.telemetry_digest = m.telemetry()->digest();
    check_invariants(backend, m, out);
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }

  out.payload_digest = kFnvBasis;
  out.status_digest = kFnvBasis;
  out.wildcard_digest = 0;
  out.coll_digest = kFnvBasis;
  bool payload_ok = true;
  bool coll_ok = true;
  for (const RankObs& o : obs) {
    out.payload_digest = fnv(out.payload_digest, o.payload);
    out.status_digest = fnv(out.status_digest, o.status);
    out.wildcard_digest += o.wildcard;
    out.coll_digest = fnv(out.coll_digest, o.coll);
    payload_ok = payload_ok && o.payload_ok;
    coll_ok = coll_ok && o.coll_ok;
  }
  out.checksum = obs.empty() ? 0 : obs[0].checksum;
  for (const RankObs& o : obs) {
    if (o.checksum != out.checksum) {
      out.invariant_violations.push_back("allreduce totals disagree across ranks");
      break;
    }
  }
  if (!payload_ok) out.invariant_violations.push_back("received payload bytes corrupted");
  if (!coll_ok) {
    out.invariant_violations.push_back(
        "collective results diverge from the sequential reference");
  }
  out.match_digest = fold_match_logs(logs);
  std::uint64_t d = kFnvBasis;
  d = fnv(d, out.payload_digest);
  d = fnv(d, out.status_digest);
  d = fnv(d, out.match_digest);
  d = fnv(d, out.wildcard_digest);
  d = fnv(d, out.coll_digest);
  d = fnv(d, out.checksum);
  out.conformance_digest = d;
  return out;
}

std::optional<std::string> Explorer::check(const Perturbation& p) {
  // Systematic vectors replay one enumerated interleaving: conformance is
  // absolute (MPI invariants + the analytic schedule-invariant digest), not
  // differential, so the check costs exactly one machine execution.
  if ((p.flags & Perturbation::kFlagSystematic) != 0) {
    SystematicOptions sopts;
    sopts.ranks = p.nodes;
    sopts.msgs_per_rank = p.msgs_per_rank;
    sopts.msg_bytes = p.sys_msg_bytes;
    sopts.window_ns = p.sched_window_ns;
    sopts.backend = static_cast<mpi::Backend>((p.flags & Perturbation::kBackendMask) >>
                                              Perturbation::kBackendShift);
    sopts.base_config = opts_.base_config;
    sopts.coll_spec = sys_coll_spec(p.coll_algos, p.coll_ext);
    std::vector<std::uint8_t> decisions;
    decisions.reserve(p.sched.size());
    for (char c : p.sched) {
      decisions.push_back(
          static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10));
    }
    const SystematicRunResult r = systematic_replay(sopts, decisions);
    ++runs_;
    if (!r.completed) return "systematic replay failed: " + r.error;
    if (!r.violations.empty()) return "MPI invariant violated: " + r.violations[0];
    const std::uint64_t expect =
        systematic_expected_invariant(sopts.ranks, sopts.msgs_per_rank, sopts.msg_bytes);
    if (r.invariant_digest != expect) {
      std::ostringstream os;
      os << "schedule-invariant digest diverged: got " << std::hex << r.invariant_digest
         << " want " << expect;
      return os.str();
    }
    return std::nullopt;
  }

  // The channels field picks the differential set; every member must agree
  // with the first on every channel-invariant observable.
  struct Side {
    const char* name;
    mpi::Backend backend;
  };
  std::vector<Side> sides;
  const Side pipes_side{"pipes", mpi::Backend::kNativePipes};
  const Side rdma_side{"rdma", mpi::Backend::kRdma};
  // `spsim explore --backend rdma` points the configured side at the RDMA
  // channel; pairings that need a genuine LAPI side then use Enhanced so no
  // seed degenerates into comparing the RDMA channel with itself.
  const bool lapi_is_rdma = opts_.lapi_backend == mpi::Backend::kRdma;
  const Side cfg_side{lapi_is_rdma ? "rdma" : "lapi", opts_.lapi_backend};
  const Side lapi_side{"lapi",
                       lapi_is_rdma ? mpi::Backend::kLapiEnhanced : opts_.lapi_backend};
  switch (p.channels) {
    case 1: sides = {pipes_side, rdma_side}; break;
    case 2: sides = {lapi_side, rdma_side}; break;
    case 3: sides = {pipes_side, lapi_side, rdma_side}; break;
    default: sides = {pipes_side, cfg_side}; break;
  }

  std::vector<RunOutcome> outs;
  outs.reserve(sides.size());
  for (const Side& s : sides) {
    outs.push_back(run_channel(p, s.backend));
    ++runs_;
  }

  for (std::size_t i = 0; i < sides.size(); ++i) {
    const RunOutcome& o = outs[i];
    if (!o.completed) return std::string(sides[i].name) + " channel run failed: " + o.error;
    if (!o.invariant_violations.empty()) {
      return std::string(sides[i].name) +
             " channel invariant violated: " + o.invariant_violations[0];
    }
  }

  for (std::size_t i = 1; i < sides.size(); ++i) {
    auto diff = [&](const char* what, std::uint64_t a,
                    std::uint64_t b) -> std::optional<std::string> {
      if (a == b) return std::nullopt;
      std::ostringstream os;
      os << "conformance mismatch in " << what << ": " << sides[0].name << "=" << std::hex << a
         << " " << sides[i].name << "=" << b;
      return os.str();
    };
    const RunOutcome& a = outs[0];
    const RunOutcome& b = outs[i];
    if (auto f = diff("payload digest", a.payload_digest, b.payload_digest)) return f;
    if (auto f = diff("status fields", a.status_digest, b.status_digest)) return f;
    if (auto f = diff("match order", a.match_digest, b.match_digest)) return f;
    if (auto f = diff("wildcard fold", a.wildcard_digest, b.wildcard_digest)) return f;
    if (auto f = diff("collective results", a.coll_digest, b.coll_digest)) return f;
    if (auto f = diff("allreduce checksum", a.checksum, b.checksum)) return f;
  }
  return std::nullopt;
}

Perturbation Explorer::shrink(Perturbation p) {
  auto fails = [this](const Perturbation& q) { return check(q).has_value(); };
  // Exact per-candidate cost (1 systematic / 2 pair / 3 trio) so shrinking a
  // trio cannot overspend the budget and shrinking a pair doesn't stop a run
  // early.
  auto budget_left = [this](const Perturbation& q) {
    return runs_ + runs_for(q) <= max_runs();
  };

  // Systematic vectors shrink along one axis only: drop trailing schedule
  // decisions while the replay still fails (the remaining prefix plus the
  // canonical continuation reproduces the divergence).
  if ((p.flags & Perturbation::kFlagSystematic) != 0) {
    while (!p.sched.empty()) {
      Perturbation q = p;
      q.sched.pop_back();
      if (!budget_left(q) || !fails(q)) break;
      p = q;
    }
    return p;
  }

  // Phase 1: ablate knobs to neutral, iterating to a fixpoint — failures
  // often depend on one or two knobs only.
  bool changed = true;
  while (changed) {
    changed = false;
    const auto ablations = [&]() {
      std::vector<Perturbation> c;
      auto with = [&](auto mut) {
        Perturbation q = p;
        mut(q);
        if (!(q == p)) c.push_back(q);
      };
      with([](Perturbation& q) { q.topology = 0; });
      // A trio failure that survives on a pair is a smaller repro; one that
      // survives on the legacy pair doesn't involve the RDMA channel at all.
      with([](Perturbation& q) { q.channels = 0; });
      with([](Perturbation& q) { if (q.channels == 3) q.channels = 1; });
      with([](Perturbation& q) { q.drop_ppm = 0; q.burst = 1; });
      with([](Perturbation& q) { q.dup_ppm = 0; });
      with([](Perturbation& q) { q.jitter_ns = 0; });
      with([](Perturbation& q) { q.route_bias_ppm = 0; });
      with([](Perturbation& q) { q.route_skew_ns = 0; });
      with([](Perturbation& q) { q.tie_break_salt = 0; });
      with([](Perturbation& q) { q.flags &= ~Perturbation::kFlagInterruptMode; });
      with([](Perturbation& q) { q.coll_algos = 0; });
      with([](Perturbation& q) { q.coll_ext = 0; });
      return c;
    }();
    for (const Perturbation& q : ablations) {
      if (!budget_left(q)) continue;
      if (fails(q)) {
        p = q;
        changed = true;
        break;  // re-derive the candidate list from the smaller vector
      }
    }
  }

  // Phase 2: halve surviving magnitudes while the failure persists.
  auto halve = [&](auto get, auto set, std::uint64_t floor) {
    while (true) {
      const std::uint64_t cur = get(p);
      if (cur <= floor) break;
      Perturbation q = p;
      set(q, std::max<std::uint64_t>(floor, cur / 2));
      if (q == p || !budget_left(q) || !fails(q)) break;
      p = q;
    }
  };
  halve([](const Perturbation& q) { return static_cast<std::uint64_t>(q.drop_ppm); },
        [](Perturbation& q, std::uint64_t v) { q.drop_ppm = static_cast<std::uint32_t>(v); }, 0);
  halve([](const Perturbation& q) { return static_cast<std::uint64_t>(q.dup_ppm); },
        [](Perturbation& q, std::uint64_t v) { q.dup_ppm = static_cast<std::uint32_t>(v); }, 0);
  halve([](const Perturbation& q) { return static_cast<std::uint64_t>(q.route_bias_ppm); },
        [](Perturbation& q, std::uint64_t v) { q.route_bias_ppm = static_cast<std::uint32_t>(v); },
        0);
  halve([](const Perturbation& q) { return static_cast<std::uint64_t>(q.jitter_ns); },
        [](Perturbation& q, std::uint64_t v) { q.jitter_ns = static_cast<TimeNs>(v); }, 0);
  halve([](const Perturbation& q) { return static_cast<std::uint64_t>(q.route_skew_ns); },
        [](Perturbation& q, std::uint64_t v) { q.route_skew_ns = static_cast<TimeNs>(v); }, 0);

  // Phase 3: shrink the workload itself (fewer messages, then fewer nodes).
  halve([](const Perturbation& q) { return static_cast<std::uint64_t>(q.msgs_per_rank); },
        [](Perturbation& q, std::uint64_t v) { q.msgs_per_rank = static_cast<int>(v); }, 1);
  halve([](const Perturbation& q) { return static_cast<std::uint64_t>(q.nodes); },
        [](Perturbation& q, std::uint64_t v) { q.nodes = static_cast<int>(v); }, 2);
  return p;
}

Explorer::Report Explorer::explore() {
  Report rep;
  for (int i = 0; i < opts_.seeds; ++i) {
    const std::uint64_t seed = opts_.base_seed + static_cast<std::uint64_t>(i);
    const Perturbation p = perturbation_for(seed);
    // Exact admission: a trio vector needs 3 executions, not the historic
    // flat 2, so the budget can no longer be overspent by one run.
    if (runs_ + runs_for(p) > max_runs()) break;
    const std::optional<std::string> failure = check(p);
    ++rep.seeds_run;
    if (opts_.log != nullptr && (rep.seeds_run % 32 == 0 || failure)) {
      std::fprintf(opts_.log, "explore: seed %" PRIu64 " (%d/%d, %d runs)%s%s\n", seed,
                   rep.seeds_run, opts_.seeds, runs_, failure ? " FAILED: " : " ok",
                   failure ? failure->c_str() : "");
    }
    if (failure) {
      Mismatch mm;
      mm.original = p;
      mm.reason = *failure;
      mm.shrunk = shrink(p);
      mm.token = mm.shrunk.token();
      if (opts_.log != nullptr) {
        std::fprintf(opts_.log, "explore: shrunk to %s after %d runs\n  repro: spsim explore --repro=%s\n",
                     mm.token.c_str(), runs_, mm.token.c_str());
      }
      rep.mismatches.push_back(std::move(mm));
      break;  // one shrunken repro is the deliverable; stop the sweep
    }
  }
  rep.runs = runs_;
  return rep;
}

SystematicReport Explorer::explore_systematic(SystematicOptions sopts) {
  if (sopts.log == nullptr) sopts.log = opts_.log;
  sopts.base_config = opts_.base_config;
  // The explorer's budget is authoritative unless the caller set a tighter
  // one; runs() stays exact across both exploration modes.
  const long remaining = static_cast<long>(max_runs()) - runs_;
  if (remaining <= 0) return SystematicReport{};  // budget already spent
  if (sopts.max_runs == 0 || sopts.max_runs > remaining) sopts.max_runs = remaining;
  SystematicReport rep = systematic_explore(sopts);
  runs_ += static_cast<int>(rep.runs);
  return rep;
}

bool Explorer::export_trace(const Perturbation& p, mpi::Backend backend,
                            const std::string& path) const {
  const MachineConfig cfg = p.apply(opts_.base_config);
  const std::vector<SoupMsg> schedule = build_schedule(p);
  std::vector<RankObs> obs(static_cast<std::size_t>(p.nodes));
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  bool ok = true;
  try {
    mpi::Machine m(cfg, p.nodes, backend);
    try {
      m.run([&](mpi::Mpi& mpi) { conformance_workload(p, schedule, mpi, obs); });
    } catch (const std::exception&) {
      // A failing run is exactly what we want a trace of; export what the
      // ring retained up to the failure.
    }
    if (m.telemetry() != nullptr) {
      m.telemetry()->export_chrome_json(out);
    } else {
      ok = false;
    }
  } catch (const std::exception&) {
    ok = false;
  }
  std::fclose(out);
  return ok;
}

}  // namespace sp::sim
