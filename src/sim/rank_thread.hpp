// Process-oriented simulation: rank programs on baton-passing OS threads.
//
// Each simulated MPI task runs its program body on a dedicated std::thread,
// but a strict baton handshake guarantees that at most one thread executes at
// any instant: the simulator event loop resumes a rank thread, then blocks
// until that thread yields back (by advancing time, waiting on a
// SimCondition, or finishing). Rank code therefore needs no locking and the
// simulation stays deterministic.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"

namespace sp::sim {

class RankThread {
 public:
  /// Create the thread. The body does not start running until the first
  /// resume_from_sim() call (typically scheduled as the machine's first event).
  RankThread(Simulator& sim, int id, std::function<void()> body);

  /// Tears the thread down; if the body has not finished, it is aborted
  /// (AbortSimulation is thrown at its next yield point).
  ~RankThread();

  RankThread(const RankThread&) = delete;
  RankThread& operator=(const RankThread&) = delete;

  /// Hand the baton to the rank thread; returns when it yields or finishes.
  /// Must be called from the simulator (event) context. No-op if finished.
  void resume_from_sim();

  /// Hand the baton back to the simulator and block until resumed again.
  /// Must be called from the rank thread itself.
  void yield_to_sim();

  /// Block the rank thread until `dt` of simulated time has passed.
  void advance(TimeNs dt);

  [[nodiscard]] bool finished() const;
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] Simulator& sim() noexcept { return sim_; }

  /// Exception (other than AbortSimulation) that escaped the body, if any.
  [[nodiscard]] std::exception_ptr error() const;

 private:
  enum class Turn { Sim, App };

  void abort_and_join();

  Simulator& sim_;
  int id_;
  std::function<void()> body_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::Sim;
  bool finished_ = false;
  bool aborting_ = false;
  std::exception_ptr error_;

  std::thread thread_;  // last member: starts after state is ready
};

/// A condition in simulated time. Rank threads wait on it; protocol events
/// (or other rank threads) notify it, which schedules the waiters to resume
/// at the current simulated time. Wakeups can be spurious — callers must
/// re-check their predicate in a loop, exactly like std::condition_variable.
class SimCondition {
 public:
  /// Called from a rank thread: register and yield until notified.
  void wait(RankThread& self) {
    waiters_.push_back(&self);
    self.yield_to_sim();
  }

  /// Register a waiter without yielding — for waiting on *several*
  /// conditions at once (register on each, then yield once). Stale
  /// registrations cause only spurious wakeups.
  void add_waiter(RankThread* t) { waiters_.push_back(t); }

  /// Convenience: wait until `pred()` is true.
  template <typename Pred>
  void wait_until(RankThread& self, Pred&& pred) {
    while (!pred()) wait(self);
  }

  /// Wake all current waiters (they resume at the current simulated time).
  /// Callable from event context or from a rank thread.
  void notify_all(Simulator& sim) {
    if (waiters_.empty()) return;
    auto woken = std::move(waiters_);
    waiters_.clear();
    for (RankThread* w : woken) {
      sim.after(0, [w] { w->resume_from_sim(); });
    }
  }

  [[nodiscard]] bool has_waiters() const noexcept { return !waiters_.empty(); }

 private:
  std::vector<RankThread*> waiters_;
};

}  // namespace sp::sim
