// Process-oriented simulation: rank programs on cooperatively-scheduled
// fibers.
//
// Each simulated MPI task runs its program body on a ucontext fiber with its
// own stack. The simulator event loop resumes a fiber with a plain user-space
// context switch and regains control when the fiber yields back (by advancing
// time, waiting on a SimCondition, or finishing). Only one flow of control
// ever runs — rank code needs no locking and the simulation is deterministic
// by construction. Fibers replace the earlier std::thread + condvar baton:
// the handshake semantics (and hence event order) are identical, but a
// handoff is two swapcontext calls instead of two OS thread wakeups, which
// removes the dominant host-side cost of fine-grained rank/simulator
// interleaving.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace sp::sim {

class RankThread {
 public:
  /// Create the fiber. The body does not start running until the first
  /// resume_from_sim() call (typically scheduled as the machine's first event).
  RankThread(Simulator& sim, int id, std::function<void()> body);

  /// Tears the fiber down; if the body has not finished, it is aborted
  /// (AbortSimulation is thrown at its next yield point).
  ~RankThread();

  RankThread(const RankThread&) = delete;
  RankThread& operator=(const RankThread&) = delete;

  /// Hand control to the rank fiber; returns when it yields or finishes.
  /// Must be called from the simulator (event) context. No-op if finished.
  void resume_from_sim();

  /// Hand control back to the simulator until resumed again.
  /// Must be called from the rank fiber itself.
  void yield_to_sim();

  /// Block the rank fiber until `dt` of simulated time has passed.
  void advance(TimeNs dt);

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Simulated time at which the body completed (meaningful once finished()).
  /// Lets callers report when the *program* ended, independent of housekeeping
  /// events (ack flushes, retransmit timers) still draining from the queue.
  [[nodiscard]] TimeNs finished_at() const noexcept { return finished_at_; }

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] Simulator& sim() noexcept { return sim_; }

  /// The fiber whose body is executing on this host thread right now, or
  /// nullptr when control is in the simulator (event context). Maintained
  /// across every swapcontext by resume_from_sim(), so it stays correct even
  /// when rank code blocks mid-call and another fiber interleaves — this is
  /// what lets a C ABI veneer (src/mpiabi) with no per-call context argument
  /// find its calling rank. thread_local so concurrent Machines on separate
  /// host threads (the sweep driver) never see each other's fibers.
  [[nodiscard]] static RankThread* current() noexcept { return current_; }

  /// Exception (other than AbortSimulation) that escaped the body, if any.
  [[nodiscard]] std::exception_ptr error() const noexcept { return error_; }

 private:
  static constexpr std::size_t kStackBytes = 512 * 1024;

  static void trampoline(unsigned int hi, unsigned int lo);
  void fiber_main();

  static thread_local RankThread* current_;

  Simulator& sim_;
  int id_;
  std::function<void()> body_;

  bool finished_ = false;
  TimeNs finished_at_ = 0;
  bool aborting_ = false;
  std::exception_ptr error_;

  std::unique_ptr<std::byte[]> stack_;
  ucontext_t app_ctx_{};  ///< Saved rank-fiber context.
  ucontext_t sim_ctx_{};  ///< Saved simulator-side context (also uc_link).

  // AddressSanitizer fiber bookkeeping (no-ops in non-ASan builds): each side
  // of a switch saves its fake-stack handle before swapping and restores it
  // when control returns.
  void* sim_fake_stack_ = nullptr;
  void* app_fake_stack_ = nullptr;
  const void* main_stack_bottom_ = nullptr;
  std::size_t main_stack_size_ = 0;
};

/// A condition in simulated time. Rank threads wait on it; protocol events
/// (or other rank threads) notify it, which schedules the waiters to resume
/// at the current simulated time. Wakeups can be spurious — callers must
/// re-check their predicate in a loop, exactly like std::condition_variable.
class SimCondition {
 public:
  /// Called from a rank thread: register and yield until notified.
  void wait(RankThread& self) {
    waiters_.push_back(&self);
    self.yield_to_sim();
  }

  /// Register a waiter without yielding — for waiting on *several*
  /// conditions at once (register on each, then yield once). Stale
  /// registrations cause only spurious wakeups.
  void add_waiter(RankThread* t) { waiters_.push_back(t); }

  /// Convenience: wait until `pred()` is true.
  template <typename Pred>
  void wait_until(RankThread& self, Pred&& pred) {
    while (!pred()) wait(self);
  }

  /// Wake all current waiters (they resume at the current simulated time).
  /// Callable from event context or from a rank thread.
  void notify_all(Simulator& sim) {
    if (waiters_.empty()) return;
    auto woken = std::move(waiters_);
    waiters_.clear();
    for (RankThread* w : woken) {
      sim.after(0, sched_node_key(w->id()), [w] { w->resume_from_sim(); });
    }
  }

  [[nodiscard]] bool has_waiters() const noexcept { return !waiters_.empty(); }

 private:
  std::vector<RankThread*> waiters_;
};

}  // namespace sp::sim
