#include "sim/systematic.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "mpi/coll.hpp"
#include "sim/explorer.hpp"
#include "sim/sched.hpp"

namespace sp::sim {

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] constexpr std::uint64_t fnv(std::uint64_t h, std::uint64_t v) noexcept {
  return (h ^ v) * kFnvPrime;
}

constexpr int kSysTag = 5;
/// Widest choice point the x5 token can encode (one hex digit per decision).
constexpr std::size_t kMaxFanout = 16;

/// Expected payload of message #k from src to dst. Byte 0 carries k so the
/// receiver of a wildcard match can recover which message it got.
[[nodiscard]] constexpr std::uint8_t sys_payload_byte(int src, int dst, int k, std::size_t b) {
  if (b == 0) return static_cast<std::uint8_t>(k);
  return static_cast<std::uint8_t>(src * 31 + dst * 17 + k * 7 + static_cast<int>(b) * 3 + 5);
}

/// Commutative per-message term of the schedule-invariant digest.
[[nodiscard]] std::uint64_t sys_msg_hash(int src, int dst, int k, std::size_t len) {
  std::uint64_t h = kFnvBasis;
  h = fnv(h, static_cast<std::uint64_t>(src));
  h = fnv(h, static_cast<std::uint64_t>(k));
  for (std::size_t b = 0; b < len; ++b) h = fnv(h, sys_payload_byte(src, dst, k, b));
  return h;
}

/// The DFS worker installed on one Machine's event queue: replays a forced
/// decision prefix, then extends it (first non-sleeping candidate) while
/// recording every choice point, its candidates and the sleep set at entry,
/// so the driver can expand unexplored siblings after the run.
///
/// Sleep sets (Godefroid): a transition is "asleep" when every continuation
/// that starts with it is trace-equivalent to a run explored from an earlier
/// sibling branch. Entering branch j of a point puts the point's earlier
/// non-sleeping siblings (explored first, left-to-right) to sleep; executing
/// any event wakes (removes) every sleeping transition that is *dependent*
/// on it, because the executed event invalidates the commutation argument.
/// Executing a transition that is still asleep proves the rest of the run
/// redundant.
class DfsController final : public ScheduleController {
 public:
  struct Point {
    std::vector<Choice> cands;                   ///< Canonical (at, seq) order.
    std::vector<std::uint64_t> sleep_at_entry;   ///< Seqs asleep on entry.
    std::size_t chosen = 0;
  };

  DfsController(std::vector<std::uint8_t> forced, int depth, bool record_trace)
      : forced_(std::move(forced)), depth_(depth), record_trace_(record_trace) {}

  std::size_t choose(const std::vector<Choice>& cands) override {
    if (cands.size() > max_fanout_) max_fanout_ = cands.size();
    const std::size_t i = points_.size();
    std::size_t j;
    if (i < forced_.size()) {
      j = forced_[i];
      if (j >= cands.size()) {
        // A hand-edited token can force an index the schedule never offers;
        // surface it as a failed run rather than asserting.
        forced_out_of_range_ = true;
        j = 0;
      }
    } else if (static_cast<int>(i) >= depth_) {
      depth_limited_ = true;
      return first_awake(cands);  // run on canonically, unrecorded
    } else {
      j = first_awake(cands);
      if (asleep(cands[j].seq)) return j;  // all asleep: redundant, unrecorded
    }
    Point pt;
    pt.cands = cands;
    pt.sleep_at_entry.reserve(sleep_.size());
    for (const Choice& s : sleep_) pt.sleep_at_entry.push_back(s.seq);
    pt.chosen = j;
    // Left-to-right sibling order: branches k < j are explored before this
    // one, so their first transitions join the sleep set for the subtree.
    for (std::size_t k = 0; k < j; ++k) {
      if (!asleep(cands[k].seq)) sleep_.push_back(cands[k]);
    }
    points_.push_back(std::move(pt));
    return j;
  }

  void on_execute(const Choice& e) override {
    if (record_trace_) trace_.push_back(e);
    if (asleep(e.seq) && !redundant_) {
      redundant_ = true;
      redundant_boundary_ = points_.size();
    }
    // Wake every sleeping transition dependent on the executed event (the
    // executed transition itself is dependent on itself and always leaves).
    sleep_.erase(std::remove_if(sleep_.begin(), sleep_.end(),
                                [&](const Choice& s) {
                                  return !sched_independent(s.at, s.key, e.at, e.key);
                                }),
                 sleep_.end());
  }

  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }
  [[nodiscard]] bool redundant() const noexcept { return redundant_; }
  [[nodiscard]] std::size_t redundant_boundary() const noexcept { return redundant_boundary_; }
  [[nodiscard]] bool depth_limited() const noexcept { return depth_limited_; }
  [[nodiscard]] bool forced_out_of_range() const noexcept { return forced_out_of_range_; }
  [[nodiscard]] std::size_t max_fanout() const noexcept { return max_fanout_; }

  /// Canonical (trace-equivalence-invariant) digest of the executed event
  /// sequence: greedy minimum-label linearization of the dependence DAG.
  /// Same-(at, key) events get an occurrence index assigned in *push* (seq)
  /// order, not execution order: same-key events are only ever pushed from a
  /// mutually dependent chain (same node stream, or an opaque event), so
  /// their push order is invariant across a trace-equivalence class — while
  /// execution order is not. Indexing by execution order would relabel a
  /// genuine dependent swap (two packets on the same src→dst stream) so both
  /// orders collapsed to one digest; seq-order indexing keeps each event's
  /// label stable, so equivalent interleavings agree and dependent
  /// reorderings differ.
  [[nodiscard]] std::uint64_t canonical_trace_digest() const {
    const std::size_t n = trace_.size();
    std::vector<std::uint32_t> occ(n);
    {
      // Group trace positions by (at, key); within a group, rank by seq.
      std::map<std::pair<TimeNs, SchedKey>, std::vector<std::size_t>> groups;
      for (std::size_t i = 0; i < n; ++i) groups[{trace_[i].at, trace_[i].key}].push_back(i);
      for (auto& [label, members] : groups) {
        std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
          return trace_[a].seq < trace_[b].seq;
        });
        for (std::size_t r = 0; r < members.size(); ++r) {
          occ[members[r]] = static_cast<std::uint32_t>(r);
        }
      }
    }
    std::vector<std::uint32_t> indeg(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (!sched_independent(trace_[i].at, trace_[i].key, trace_[j].at, trace_[j].key)) {
          ++indeg[j];
        }
      }
    }
    using Label = std::tuple<TimeNs, SchedKey, std::uint32_t, std::size_t>;
    std::priority_queue<Label, std::vector<Label>, std::greater<Label>> ready;
    for (std::size_t j = 0; j < n; ++j) {
      if (indeg[j] == 0) ready.push({trace_[j].at, trace_[j].key, occ[j], j});
    }
    std::uint64_t d = kFnvBasis;
    while (!ready.empty()) {
      const auto [at, key, o, i] = ready.top();
      ready.pop();
      d = fnv(fnv(fnv(d, static_cast<std::uint64_t>(at)), key), o);
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!sched_independent(trace_[i].at, trace_[i].key, trace_[j].at, trace_[j].key)) {
          if (--indeg[j] == 0) ready.push({trace_[j].at, trace_[j].key, occ[j], j});
        }
      }
    }
    return d;
  }

 private:
  [[nodiscard]] bool asleep(std::uint64_t seq) const {
    for (const Choice& s : sleep_) {
      if (s.seq == seq) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t first_awake(const std::vector<Choice>& cands) const {
    for (std::size_t k = 0; k < cands.size(); ++k) {
      if (!asleep(cands[k].seq)) return k;
    }
    return 0;
  }

  std::vector<std::uint8_t> forced_;
  int depth_;
  bool record_trace_;
  std::vector<Point> points_;
  std::vector<Choice> sleep_;
  std::vector<Choice> trace_;
  std::size_t redundant_boundary_ = 0;
  std::size_t max_fanout_ = 0;
  bool redundant_ = false;
  bool depth_limited_ = false;
  bool forced_out_of_range_ = false;
};

/// Per-rank observables, collected on the rank fiber.
struct SysObs {
  std::uint64_t outcome = kFnvBasis;  ///< Ordered (match-order) fold.
  std::uint64_t invariant = 0;        ///< Commutative message-set fold.
  bool status_ok = true;
  bool payload_ok = true;
  bool order_ok = true;  ///< Per-source non-overtaking.
  bool coll_ok = true;   ///< Collective-phase results == sequential reference.
};

/// Wildcard-heavy workload: every receive is MPI_ANY_SOURCE, so which sender
/// each posted receive matches is exactly the scheduling decision the DFS
/// enumerates. Senders post message k to every peer before k+1, so per
/// (source, tag) the matched k sequence must be 0..m-1 in order.
void systematic_workload(const SystematicOptions& o, mpi::Mpi& mpi, std::vector<SysObs>& obs) {
  using mpi::Datatype;
  using mpi::Request;
  using mpi::Status;
  auto& w = mpi.world();
  const int me = w.rank();
  const int n = o.ranks;
  const int m = o.msgs_per_rank;
  const std::size_t len = o.msg_bytes;
  SysObs& so = obs[static_cast<std::size_t>(me)];

  const int nrecv = (n - 1) * m;
  std::vector<Request> recvs;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> rbufs;
  for (int i = 0; i < nrecv; ++i) {
    rbufs.push_back(std::make_unique<std::vector<std::uint8_t>>(len, 0));
    recvs.push_back(
        mpi.irecv(rbufs.back()->data(), len, Datatype::kByte, mpi::kAnySource, kSysTag, w));
  }
  std::vector<Request> sends;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> sbufs;
  for (int k = 0; k < m; ++k) {
    for (int d = 0; d < n; ++d) {
      if (d == me) continue;
      auto buf = std::make_unique<std::vector<std::uint8_t>>(len);
      for (std::size_t b = 0; b < len; ++b) (*buf)[b] = sys_payload_byte(me, d, k, b);
      sbufs.push_back(std::move(buf));
      sends.push_back(mpi.isend(sbufs.back()->data(), len, Datatype::kByte, d, kSysTag, w));
    }
  }
  std::vector<Status> rsts(recvs.size());
  mpi.waitall(recvs.data(), recvs.size(), rsts.data());
  mpi.waitall(sends.data(), sends.size());

  // Identical wildcards match in posting order, so rsts is the match order.
  std::vector<int> next_k(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < rsts.size(); ++i) {
    const Status& st = rsts[i];
    const int src = st.source;
    if (st.tag != kSysTag || st.len != len || src < 0 || src >= n || src == me) {
      so.status_ok = false;
      continue;
    }
    const int k = (*rbufs[i])[0];
    for (std::size_t b = 0; b < len; ++b) {
      if ((*rbufs[i])[b] != sys_payload_byte(src, me, k, b)) so.payload_ok = false;
    }
    if (k == next_k[static_cast<std::size_t>(src)]) {
      ++next_k[static_cast<std::size_t>(src)];
    } else {
      so.order_ok = false;
    }
    so.outcome = fnv(fnv(so.outcome, static_cast<std::uint64_t>(src)),
                     static_cast<std::uint64_t>(k));
    so.invariant += sys_msg_hash(src, me, k, len);
  }
  for (int s = 0; s < n; ++s) {
    if (s != me && next_k[static_cast<std::size_t>(s)] != m) so.order_ok = false;
  }

  // Optional pinned-collective phase (SystematicOptions::coll_spec): barrier +
  // non-commutative allreduce + bcast after the wildcard storm, each checked
  // in-fiber against the exact sequential reference. Because the check runs on
  // EVERY enumerated interleaving, any schedule-dependence in the pinned
  // algorithm (e.g. an in-network combining table folding children in arrival
  // order instead of port order) surfaces as a coll_ok violation with a
  // shrunk repro token.
  if (!o.coll_spec.empty()) {
    mpi.barrier(w);
    // kMat2x2 is associative but not commutative: operand-order mistakes
    // cannot cancel the way they can under kSum.
    std::int64_t in4[4], out4[4] = {0, 0, 0, 0};
    for (int j = 0; j < 4; ++j) in4[j] = static_cast<std::int64_t>(me * 4 + j + 2);
    mpi.allreduce(in4, out4, 4, Datatype::kLong, mpi::Op::kMat2x2, w);
    std::int64_t ref4[4] = {0, 0, 0, 0};
    for (int r = 0; r < n; ++r) {
      std::int64_t contrib[4];
      for (int j = 0; j < 4; ++j) contrib[j] = static_cast<std::int64_t>(r * 4 + j + 2);
      if (r == 0) {
        std::memcpy(ref4, contrib, sizeof ref4);
      } else {
        mpi::reduce_apply(mpi::Op::kMat2x2, Datatype::kLong, contrib, ref4, 4);
      }
    }
    for (int j = 0; j < 4; ++j) {
      if (out4[j] != ref4[j]) so.coll_ok = false;
      so.outcome = fnv(so.outcome, static_cast<std::uint64_t>(out4[j]));
    }
    std::int64_t b4[4];
    for (int j = 0; j < 4; ++j) b4[j] = me == 0 ? 1000 + j * 37 : -1;
    mpi.bcast(b4, 4, Datatype::kLong, 0, w);
    for (int j = 0; j < 4; ++j) {
      if (b4[j] != 1000 + j * 37) so.coll_ok = false;
      so.outcome = fnv(so.outcome, static_cast<std::uint64_t>(b4[j]));
    }
  }
}

[[nodiscard]] MachineConfig clean_config(const SystematicOptions& opts,
                                         DfsController* ctrl) {
  MachineConfig cfg = opts.base_config;
  // Enumeration demands a noise-free machine: with all fault knobs neutral
  // the fabric draws no randomness, so (config, decisions) fully determines
  // the execution and replayed prefixes reproduce exactly.
  cfg.packet_drop_rate = 0;
  cfg.packet_dup_rate = 0;
  cfg.packet_jitter_ns = 0;
  cfg.route_bias = 0;
  cfg.route_skew_ns = 0;
  cfg.burst_drop_len = 1;
  cfg.event_tie_break_salt = 0;
  cfg.telemetry_enabled = false;
  cfg.trace_enabled = false;
  cfg.sched_controller = ctrl;
  cfg.sched_window_ns = opts.window_ns;
  if (!opts.coll_spec.empty()) {
    std::string err;
    if (!mpi::coll::apply_algo_spec(cfg, opts.coll_spec, &err)) {
      throw std::invalid_argument("systematic coll_spec: " + err);
    }
  }
  return cfg;
}

[[nodiscard]] SystematicRunResult run_one(const SystematicOptions& opts, DfsController& ctrl) {
  SystematicRunResult r;
  const MachineConfig cfg = clean_config(opts, &ctrl);
  std::vector<SysObs> obs(static_cast<std::size_t>(opts.ranks));
  try {
    mpi::Machine m(cfg, opts.ranks, opts.backend);
    m.run([&](mpi::Mpi& mpi) { systematic_workload(opts, mpi, obs); });
    r.completed = true;
  } catch (const std::exception& e) {
    r.error = e.what();
    return r;
  }
  if (ctrl.forced_out_of_range()) {
    r.completed = false;
    r.error = "forced decision index exceeds the candidate count at its choice point";
    return r;
  }
  r.outcome_digest = kFnvBasis;
  r.invariant_digest = kFnvBasis;
  bool status_ok = true, payload_ok = true, order_ok = true, coll_ok = true;
  for (const SysObs& o : obs) {
    r.outcome_digest = fnv(r.outcome_digest, o.outcome);
    r.invariant_digest = fnv(r.invariant_digest, o.invariant);
    status_ok = status_ok && o.status_ok;
    payload_ok = payload_ok && o.payload_ok;
    order_ok = order_ok && o.order_ok;
    coll_ok = coll_ok && o.coll_ok;
  }
  if (!status_ok) r.violations.push_back("wildcard status fields corrupt (tag/len/source)");
  if (!payload_ok) r.violations.push_back("received payload bytes corrupted");
  if (!order_ok) {
    r.violations.push_back("per-source non-overtaking violated (k sequence out of order)");
  }
  if (!coll_ok) {
    r.violations.push_back("pinned collective result diverged from the sequential reference");
  }
  r.redundant = ctrl.redundant();
  r.depth_limited = ctrl.depth_limited();
  r.choice_points = static_cast<int>(ctrl.points().size());
  return r;
}

[[nodiscard]] std::string decisions_to_hex(const std::vector<std::uint8_t>& d) {
  static const char* hex = "0123456789abcdef";
  std::string s;
  s.reserve(d.size());
  for (std::uint8_t x : d) s.push_back(hex[x & 0xF]);
  return s;
}

[[nodiscard]] std::string sys_token(const SystematicOptions& opts,
                                    const std::vector<std::uint8_t>& decisions) {
  Perturbation p;
  p.seed = 0;
  p.nodes = opts.ranks;
  p.msgs_per_rank = opts.msgs_per_rank;
  p.flags = Perturbation::kFlagSystematic |
            ((static_cast<std::uint32_t>(opts.backend) & 0xF) << Perturbation::kBackendShift);
  p.sched_window_ns = opts.window_ns;
  p.sys_msg_bytes = opts.msg_bytes;
  p.sched = decisions_to_hex(decisions);
  // A collective-phase spec rides in the pin nibbles (x6 when the barrier is
  // pinned) so the token replays the same pinned algorithms standalone.
  if (!opts.coll_spec.empty()) {
    MachineConfig c;
    std::string err;
    if (mpi::coll::apply_algo_spec(c, opts.coll_spec, &err)) {
      p.coll_algos = static_cast<std::uint32_t>(c.coll_bcast_algo & 0xF) |
                     (static_cast<std::uint32_t>(c.coll_allreduce_algo & 0xF) << 4) |
                     (static_cast<std::uint32_t>(c.coll_alltoall_algo & 0xF) << 8) |
                     (static_cast<std::uint32_t>(c.coll_reduce_scatter_algo & 0xF) << 12) |
                     (static_cast<std::uint32_t>(c.coll_scan_algo & 0xF) << 16);
      p.coll_ext = static_cast<std::uint32_t>(c.coll_barrier_algo & 0xF);
    }
  }
  return p.token();
}

}  // namespace

std::uint64_t systematic_expected_invariant(int ranks, int msgs_per_rank,
                                            std::uint32_t msg_bytes) {
  std::uint64_t d = kFnvBasis;
  for (int me = 0; me < ranks; ++me) {
    std::uint64_t sum = 0;
    for (int src = 0; src < ranks; ++src) {
      if (src == me) continue;
      for (int k = 0; k < msgs_per_rank; ++k) sum += sys_msg_hash(src, me, k, msg_bytes);
    }
    d = fnv(d, sum);
  }
  return d;
}

SystematicRunResult systematic_replay(const SystematicOptions& opts,
                                      const std::vector<std::uint8_t>& decisions) {
  DfsController ctrl(decisions, opts.depth, /*record_trace=*/false);
  return run_one(opts, ctrl);
}

SystematicReport systematic_explore(const SystematicOptions& opts) {
  SystematicReport rep;
  const std::uint64_t expect =
      systematic_expected_invariant(opts.ranks, opts.msgs_per_rank, opts.msg_bytes);
  rep.invariant_digest = expect;
  std::set<std::uint64_t> outcomes;
  std::set<std::uint64_t> traces;
  std::vector<std::vector<std::uint8_t>> stack;
  stack.push_back({});
  bool truncated = false;

  const auto verdict = [&](const SystematicRunResult& r) -> std::string {
    if (!r.completed) return "run failed: " + r.error;
    if (!r.violations.empty()) return "MPI invariant violated: " + r.violations[0];
    if (r.invariant_digest != expect) {
      std::ostringstream os;
      os << "schedule-invariant digest diverged: got " << std::hex << r.invariant_digest
         << " want " << expect;
      return os.str();
    }
    return {};
  };

  while (!stack.empty()) {
    if ((opts.max_runs > 0 && rep.runs >= opts.max_runs) ||
        (opts.max_interleavings > 0 && rep.interleavings >= opts.max_interleavings)) {
      truncated = true;
      break;
    }
    std::vector<std::uint8_t> decisions = std::move(stack.back());
    stack.pop_back();
    DfsController ctrl(decisions, opts.depth, opts.canonical_check);
    const SystematicRunResult r = run_one(opts, ctrl);
    ++rep.runs;
    if (static_cast<int>(ctrl.max_fanout()) > rep.max_fanout) {
      rep.max_fanout = static_cast<int>(ctrl.max_fanout());
    }

    const std::string fail = verdict(r);
    if (!fail.empty()) {
      // Full decision record reproduces this exact run; shrink by dropping
      // trailing decisions while the replay still fails the same way.
      std::vector<std::uint8_t> full;
      full.reserve(ctrl.points().size());
      for (const DfsController::Point& pt : ctrl.points()) {
        full.push_back(static_cast<std::uint8_t>(pt.chosen));
      }
      SystematicReport::Mismatch mm;
      mm.reason = fail;
      mm.original_token = sys_token(opts, full);
      std::vector<std::uint8_t> cur = full;
      while (!cur.empty() && (opts.max_runs == 0 || rep.runs < opts.max_runs)) {
        std::vector<std::uint8_t> cand(cur.begin(), cur.end() - 1);
        const SystematicRunResult rr = systematic_replay(opts, cand);
        ++rep.runs;
        if (verdict(rr).empty()) break;
        cur = std::move(cand);
      }
      mm.token = sys_token(opts, cur);
      if (opts.log != nullptr) {
        std::fprintf(opts.log,
                     "systematic: FAILED after %ld runs: %s\n  repro: spsim explore --repro=%s\n",
                     rep.runs, mm.reason.c_str(), mm.token.c_str());
      }
      rep.mismatches.push_back(std::move(mm));
      break;  // the certificate is void; one shrunk repro is the deliverable
    }

    if (r.redundant) {
      ++rep.redundant;
    } else {
      ++rep.interleavings;
      rep.choice_points += r.choice_points;
      outcomes.insert(r.outcome_digest);
      if (r.depth_limited) rep.depth_limited = true;
      if (opts.canonical_check && !r.depth_limited) {
        if (!traces.insert(ctrl.canonical_trace_digest()).second) ++rep.duplicate_traces;
      }
    }

    // Expand unexplored siblings of every fresh choice point (the forced
    // prefix's alternatives were queued by ancestor runs). Points at or past
    // a sleep-block are inside a subtree already covered elsewhere.
    const std::vector<DfsController::Point>& pts = ctrl.points();
    const std::size_t lo = decisions.size();
    std::size_t hi = pts.size();
    if (ctrl.redundant() && ctrl.redundant_boundary() < hi) hi = ctrl.redundant_boundary();
    for (std::size_t i = lo; i < hi; ++i) {
      const DfsController::Point& pt = pts[i];
      std::size_t fan = pt.cands.size();
      if (fan > kMaxFanout) {
        ++rep.fanout_capped;
        fan = kMaxFanout;
      }
      // Reverse order: the stack then pops deepest-point, smallest-index
      // branches first — depth-first, left-to-right.
      for (std::size_t j = fan; j-- > pt.chosen + 1;) {
        const std::uint64_t seq = pt.cands[j].seq;
        if (std::find(pt.sleep_at_entry.begin(), pt.sleep_at_entry.end(), seq) !=
            pt.sleep_at_entry.end()) {
          continue;
        }
        std::vector<std::uint8_t> child;
        child.reserve(i + 1);
        for (std::size_t k = 0; k < i; ++k) {
          child.push_back(static_cast<std::uint8_t>(pts[k].chosen));
        }
        child.push_back(static_cast<std::uint8_t>(j));
        stack.push_back(std::move(child));
      }
    }

    if (opts.log != nullptr && rep.runs % 256 == 0) {
      std::fprintf(opts.log,
                   "systematic: %ld runs, %ld interleavings, %ld redundant, frontier %zu\n",
                   rep.runs, rep.interleavings, rep.redundant, stack.size());
    }
  }

  rep.distinct_outcomes = outcomes.size();
  std::uint64_t d = kFnvBasis;
  d = fnv(d, static_cast<std::uint64_t>(rep.interleavings));
  for (std::uint64_t o : outcomes) d = fnv(d, o);  // std::set: ascending
  rep.certificate_digest = d;
  rep.complete = stack.empty() && !truncated && !rep.depth_limited && rep.fanout_capped == 0 &&
                 rep.mismatches.empty();
  if (opts.log != nullptr) {
    std::fprintf(opts.log,
                 "systematic: %s — %ld interleavings (%ld redundant pruned, %ld runs), "
                 "%zu distinct outcomes, certificate %016llx\n",
                 rep.complete ? "complete" : "INCOMPLETE", rep.interleavings, rep.redundant,
                 rep.runs, rep.distinct_outcomes,
                 static_cast<unsigned long long>(rep.certificate_digest));
  }
  return rep;
}

}  // namespace sp::sim
