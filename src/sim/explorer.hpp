// Schedule-space explorer: differential Pipes <-> LAPI <-> RDMA conformance
// fuzzing.
//
// The paper's central claim is that MPI-LAPI preserves MPI two-sided
// semantics while replacing every layer underneath. The explorer tests that
// claim systematically: one master seed expands into a perturbation vector
// (fault knobs, route bias, delivery jitter, event tie-break salt, interrupt
// mode); the same deterministic mixed eager/rendezvous workload then runs on
// two or three of the channels (native Pipes, a LAPI channel, the RDMA
// channel — the vector's `channels` field picks the pairing) and the
// channel-invariant observables — received payloads, match order per
// (ctx, src, tag), MPI status fields, collective results under the vector's
// pinned algorithms, final rank buffers — must agree, while
// channel-specific transport counters must satisfy declared invariants
// (retransmit bounds, re-ack coalescing, telemetry ring accounting).
//
// On a failure the explorer shrinks: perturbation knobs are ablated to their
// neutral values and the survivors halved, then the workload itself is
// shrunk, yielding a minimal failing vector encoded as a repro token that
// `spsim explore --repro=<token>` replays standalone.
//
// Everything is deterministic: the same seed always produces the same
// perturbation, machine schedule, digests and shrink result (asserted by
// tests/explorer_test.cpp), so a token found by the nightly sweep reproduces
// anywhere.
//
// Lives in sp::sim but is compiled into the sp_mpi library: the explorer
// drives whole Machines, which sit at the top of the layer stack.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "sim/config.hpp"
#include "sim/systematic.hpp"

namespace sp::sim {

/// One point in schedule space: every knob the explorer varies, in exactly
/// round-trippable integer form (rates are parts-per-million so tokens encode
/// losslessly). Derived from a master seed by Explorer::perturbation_for and
/// mutated only by shrinking.
struct Perturbation {
  std::uint64_t seed = 0;  ///< Master seed (identity; kept through shrinking).

  // Workload shape.
  int nodes = 4;
  int msgs_per_rank = 12;
  std::uint64_t workload_seed = 1;

  // Fabric fault + schedule knobs (neutral values = a clean machine).
  std::uint32_t drop_ppm = 0;        ///< packet_drop_rate * 1e6
  std::uint32_t dup_ppm = 0;         ///< packet_dup_rate * 1e6
  std::uint32_t route_bias_ppm = 0;  ///< route_bias * 1e6
  TimeNs jitter_ns = 0;
  TimeNs route_skew_ns = 0;
  int burst = 1;
  std::uint64_t fabric_seed = 0x5eed;
  std::uint64_t tie_break_salt = 0;  ///< Event-queue tie-break permutation.

  std::uint32_t flags = 0;
  /// Re-introduce the PR 2 re-ack coalescing bug (explorer self-test only).
  static constexpr std::uint32_t kFlagReackStormBug = 1u << 0;
  /// Run the workload in interrupt (rather than polling) mode.
  static constexpr std::uint32_t kFlagInterruptMode = 1u << 1;
  /// Systematic-mode vector (DESIGN.md §15): `sched` replays one enumerated
  /// interleaving of the wildcard workload on the backend encoded in bits
  /// [kBackendShift, kBackendShift+4); fabric knobs must stay neutral.
  static constexpr std::uint32_t kFlagSystematic = 1u << 2;
  static constexpr std::uint32_t kBackendShift = 4;
  static constexpr std::uint32_t kBackendMask = 0xFu << kBackendShift;

  /// Collective algorithm pins, one nibble per primitive (0 = auto): bits
  /// [0,4) bcast, [4,8) allreduce, [8,12) alltoall, [12,16) reduce_scatter,
  /// [16,20) scan. Values are the MachineConfig coll_*_algo enums; parse()
  /// rejects out-of-range nibbles. Algorithm choice must never change the
  /// user-visible results, so the pins perturb schedules, not digests of
  /// collective outputs.
  std::uint32_t coll_algos = 0;

  /// Interconnect topology (TopologyKind as an integer; 0 = SP multistage).
  /// Topology choice perturbs packet schedules only — MPI results and
  /// collective output digests must be identical on every fabric, which the
  /// differential check enforces as an observable. Encoded as the
  /// second-to-last token field ("x3-" tokens); "x2-" tokens parse with
  /// topology 0.
  std::uint32_t topology = 0;

  /// Which channels the differential check runs: 0 = the legacy pair (Pipes
  /// vs the configured LAPI backend), 1 = Pipes vs RDMA, 2 = LAPI vs RDMA,
  /// 3 = the full trio. Every pairing must produce identical conformance
  /// digests. Final field of "x4-" tokens; "x2-"/"x3-" tokens parse as 0.
  std::uint32_t channels = 0;

  // Systematic-mode fields (kFlagSystematic vectors only; encoded by "x5-"
  // tokens, which append them after the x4 fields — versions stay
  // append-only). Non-systematic vectors keep emitting "x4-" tokens.
  TimeNs sched_window_ns = 0;       ///< Candidate-window width for choice points.
  std::uint32_t sys_msg_bytes = 24; ///< Wildcard payload length (> eager limit = rendezvous).
  /// Decision sequence, one lowercase hex digit per choice point (candidate
  /// index in canonical (at, seq) order); "" replays the canonical schedule.
  std::string sched;

  /// Barrier-algorithm pin in bits [0,4): MachineConfig::coll_barrier_algo
  /// values (0 auto, 1 dissemination, 4 NIC offload, 5 in-network combining).
  /// Final field of "x6-" tokens, appended after the systematic fields per
  /// the append-only rule; token() emits x6 only when this is non-zero, so
  /// every pre-existing pinned x2/x3/x4/x5 token stays byte-identical.
  std::uint32_t coll_ext = 0;

  bool operator==(const Perturbation&) const = default;

  /// Overlay this vector on a base config (also enables telemetry: the
  /// explorer uses its digest and ring accounting as observables).
  [[nodiscard]] MachineConfig apply(MachineConfig base) const;

  /// Compact repro token ("x4-..." hex fields); parse() round-trips it.
  [[nodiscard]] std::string token() const;
  [[nodiscard]] static std::optional<Perturbation> parse(const std::string& token);
};

class Explorer {
 public:
  struct Options {
    int nodes = 4;
    int msgs_per_rank = 12;
    std::uint64_t base_seed = 1;  ///< Seeds run are base_seed .. base_seed+seeds-1.
    int seeds = 256;
    /// Machine-execution budget across exploration + shrinking (2 per seed
    /// checked). 0 = seeds * 8, leaving room for the shrink loop.
    int max_runs = 0;
    /// LAPI side of the differential pair (the Pipes side is fixed).
    mpi::Backend lapi_backend = mpi::Backend::kLapiEnhanced;
    /// Force Perturbation::kFlagReackStormBug on every seed (self-test).
    bool inject_reack_bug = false;
    /// Progress/diagnostic log (null = silent).
    std::FILE* log = nullptr;
    /// Cost model the perturbations overlay.
    MachineConfig base_config{};
  };

  /// Everything observed from one (perturbation, channel) execution.
  struct RunOutcome {
    bool completed = false;  ///< run() returned without throwing.
    std::string error;       ///< Exception text when !completed.

    // Channel-invariant observables (must match across channels).
    std::uint64_t payload_digest = 0;   ///< Received bytes, posted-recv order.
    std::uint64_t status_digest = 0;    ///< waitall Status fields, posted order.
    std::uint64_t match_digest = 0;     ///< Per-(ctx,src,tag) match order.
    std::uint64_t wildcard_digest = 0;  ///< Order-insensitive wildcard fold.
    std::uint64_t coll_digest = 0;      ///< Collective results, folded in rank order.
    std::uint64_t checksum = 0;         ///< Allreduce total (same on all ranks).
    std::uint64_t conformance_digest = 0;  ///< Fold of all of the above.

    // Channel-specific observables (checked against invariants, not diffed).
    mpi::Machine::Stats stats{};
    std::uint64_t telemetry_digest = 0;
    TimeNs elapsed = 0;
    std::vector<std::string> invariant_violations;

    [[nodiscard]] bool ok() const noexcept {
      return completed && invariant_violations.empty();
    }
  };

  struct Mismatch {
    Perturbation original;  ///< As derived from the failing master seed.
    Perturbation shrunk;    ///< Minimal failing vector.
    std::string reason;     ///< First divergence / violation found.
    std::string token;      ///< shrunk.token(), for `spsim explore --repro=`.
  };

  struct Report {
    int seeds_run = 0;
    int runs = 0;  ///< Machine executions, including shrinking.
    std::vector<Mismatch> mismatches;
  };

  explicit Explorer(Options opts) : opts_(std::move(opts)) {}

  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  /// Expand a master seed into its perturbation vector (pure function of the
  /// seed and the workload-shape options).
  [[nodiscard]] Perturbation perturbation_for(std::uint64_t seed) const;

  /// Execute the conformance workload under `p` on one channel and collect
  /// observables + invariant verdicts. Deterministic per (p, backend).
  [[nodiscard]] RunOutcome run_channel(const Perturbation& p, mpi::Backend backend) const;

  /// Differential check: run `p` on the channel set its `channels` field
  /// selects; nullopt when conformant, otherwise a human-readable failure
  /// reason. Counts one run per channel toward runs().
  [[nodiscard]] std::optional<std::string> check(const Perturbation& p);

  /// Shrink a failing vector to a minimal one that still fails (any failure
  /// reason counts). Bounded by the remaining run budget.
  [[nodiscard]] Perturbation shrink(Perturbation p);

  /// Sweep seeds until the budget or seed count is exhausted; shrink the
  /// first failure found and stop.
  [[nodiscard]] Report explore();

  /// Systematic mode (DESIGN.md §15): enumerate all non-equivalent
  /// interleavings of the wildcard workload by DFS with sleep sets. The
  /// explorer's run budget (max_runs) caps the enumeration unless `sopts`
  /// sets a tighter one; every machine execution counts toward runs().
  [[nodiscard]] SystematicReport explore_systematic(SystematicOptions sopts);

  /// Re-run `p` on `backend` with telemetry and write a Perfetto-loadable
  /// Chrome-JSON trace of the (deterministically reproduced) run.
  bool export_trace(const Perturbation& p, mpi::Backend backend, const std::string& path) const;

  /// Machine executions so far (exploration + shrinking).
  [[nodiscard]] int runs() const noexcept { return runs_; }

  /// Exact machine-execution cost of check(p): 1 for a systematic replay,
  /// 3 for a trio differential, otherwise 2. The explore/shrink loops admit
  /// a candidate only when this fits the remaining budget.
  [[nodiscard]] static int runs_for(const Perturbation& p) noexcept {
    if ((p.flags & Perturbation::kFlagSystematic) != 0) return 1;
    return p.channels == 3 ? 3 : 2;
  }

 private:
  [[nodiscard]] int max_runs() const noexcept {
    return opts_.max_runs > 0 ? opts_.max_runs : opts_.seeds * 8;
  }

  Options opts_;
  int runs_ = 0;
};

}  // namespace sp::sim
