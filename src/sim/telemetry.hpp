// Telemetry: the structured observability subsystem (DESIGN.md §10).
//
// Replaces ad-hoc string tracing on the hot path with fixed-size binary
// records (timestamp, node, layer, event id, two u64 args) appended to a
// bounded ring buffer, plus per-node/per-event counter and log2-bucket
// latency-histogram registries that can be snapshotted live. Exporters
// (Chrome trace-event JSON, CSV, human-readable text) turn the ring into the
// protocol timelines the paper reads its argument off (Figs. 10-13).
//
// Cost discipline: with telemetry disabled every emission site pays exactly
// one pointer test (see SP_TELEM); enabled emission allocates nothing and
// consumes no randomness, so the simulated event order — and the golden
// determinism digests — are identical with telemetry on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "sim/time.hpp"

namespace sp::sim {

/// The eight libraries of the stack (Fig. 1), lowest first.
enum class Layer : std::uint8_t { kSim, kNet, kHal, kPipes, kLapi, kMpci, kMpi, kNas };
inline constexpr int kNumLayers = 8;

[[nodiscard]] const char* layer_name(Layer l) noexcept;

/// Every instrumented protocol point. Names (see event_name) keep the legacy
/// "layer.point" category convention so timelines read the same as the old
/// string tracer.
enum class Ev : std::uint16_t {
  // sim
  kRankStart,        ///< a0 = rank
  kRankFinish,       ///< a0 = rank
  // net (switch fabric)
  kPacketInject,     ///< a0 = dst, a1 = wire bytes
  kPacketDrop,       ///< a0 = dst, a1 = wire bytes
  kPacketDup,        ///< a0 = dst, a1 = wire bytes
  // hal (adapter)
  kDmaStart,         ///< send descriptor posted; a0 = dst, a1 = wire bytes
  kDmaEnd,           ///< frame injected into the fabric; a0 = dst, a1 = wire bytes
  kRecvDma,          ///< frame DMA'd into a pinned host buffer; a0 = src, a1 = wire bytes
  kHalDeliver,       ///< dispatch to the protocol layer; a0 = src, a1 = proto id
  kIrqEnter,         ///< a0 = packets pending
  kIrqExit,          ///< a0 = service ns (also recorded in Hist::kIrqServiceNs)
  // pipes (native byte-stream transport)
  kPipeSend,         ///< a0 = dst, a1 = payload bytes
  kPipeDeliver,      ///< a0 = src, a1 = payload bytes
  kPipeRetransmit,   ///< a0 = dst, a1 = stream offset
  kPipeAck,          ///< a0 = peer, a1 = cumulative offset
  kPipeDupRecv,      ///< a0 = src, a1 = stream offset
  // lapi (reliable active-message transport)
  kAmSend,           ///< a0 = tgt, a1 = udata bytes
  kHeaderHandler,    ///< a0 = origin, a1 = message bytes
  kCompletionInline, ///< Enhanced LAPI: predefined handler in dispatcher context
  kCompletionThread, ///< Base LAPI: dispatch to the completion-handler thread
  kLapiRetransmit,   ///< a0 = peer, a1 = packet seq
  kLapiAck,          ///< a0 = peer, a1 = cumulative seq
  kLapiDupRecv,      ///< a0 = peer, a1 = packet seq
  // mpci (matching layer)
  kMatch,            ///< a0 = queue entries scanned, a1 = 1 if matched
  kEarlyArrival,     ///< a0 = buffered bytes
  kEagerSend,        ///< a0 = dst, a1 = bytes
  kRendezvousSend,   ///< a0 = dst, a1 = bytes
  // mpi (semantics layer)
  kMpiEnter,         ///< a0 = MpiCall
  kMpiExit,          ///< a0 = MpiCall, a1 = call duration ns
  // nas (workloads)
  kKernelBegin,      ///< a0 = NasKernel, a1 = scale
  kKernelEnd,        ///< a0 = NasKernel, a1 = 1 if verified
  // mpi collective algorithm engine (appended so earlier event ids — and the
  // pinned telemetry digests of runs that emit none of these — stay stable)
  kCollBegin,        ///< a0 = CollAlgo, a1 = payload bytes
  kCollEnd,          ///< a0 = CollAlgo, a1 = span duration ns
  // in-network combining engine (appended; same digest-stability rule)
  kInnetCombine,     ///< a0 = children folded, a1 = payload bytes
  kInnetReplicate,   ///< a0 = replication fan-out, a1 = payload bytes
};
inline constexpr int kNumEvents = static_cast<int>(Ev::kInnetReplicate) + 1;

[[nodiscard]] const char* event_name(Ev e) noexcept;
[[nodiscard]] Layer event_layer(Ev e) noexcept;

/// MPI public entry points, carried in a0 of kMpiEnter/kMpiExit.
enum class MpiCall : std::uint8_t {
  kSend, kSsend, kRsend, kBsend, kRecv, kSendrecv,
  kIsend, kIssend, kIrsend, kIbsend, kIrecv,
  kWait, kTest, kWaitall, kWaitany, kTestall,
  kProbe, kIprobe,
  kBarrier, kBcast, kReduce, kAllreduce, kGather, kScatter, kAllgather,
  kAlltoall, kAlltoallv, kScan, kExscan, kGatherv, kScatterv,
  kReduceScatter, kStart,
};
inline constexpr int kNumMpiCalls = static_cast<int>(MpiCall::kStart) + 1;
[[nodiscard]] const char* mpi_call_name(MpiCall c) noexcept;

/// NAS mini-kernels, carried in a0 of kKernelBegin/kKernelEnd.
enum class NasKernel : std::uint8_t { kEp, kIs, kCg, kMg, kFt, kLu, kBt, kSp };
[[nodiscard]] const char* nas_kernel_name(NasKernel k) noexcept;

/// Every (collective, algorithm) pair of the sp::mpi::coll engine, carried in
/// a0 of kCollBegin/kCollEnd and counted per node by Telemetry::record_coll.
/// Lives in the sim layer (like MpiCall) so exporters can name the spans.
enum class CollAlgo : std::uint8_t {
  kBcastBinomial, kBcastPipelined, kBcastScatterAllgather,
  kAllreduceReduceBcast, kAllreduceRecursiveDoubling, kAllreduceRabenseifner,
  kAlltoallPairwise, kAlltoallBruck,
  kReduceScatterReduceScatter, kReduceScatterRecursiveHalving,
  kScanLinear, kScanBinomial,
  kExscanLinear, kExscanBinomial,
  // NIC-offloaded variants (appended so runs that emit none of these keep
  // their pinned digests — same append-only rule as Ev).
  kBcastNicOffload, kAllreduceNicOffload, kBarrierNicOffload,
  // In-network switch-combining variants (appended; same rule).
  kBcastInNetwork, kAllreduceInNetwork, kBarrierInNetwork,
};
inline constexpr int kNumCollAlgos = static_cast<int>(CollAlgo::kBarrierInNetwork) + 1;
[[nodiscard]] const char* coll_algo_name(CollAlgo a) noexcept;

/// Live latency/size distributions, log2-bucketed (HDR style).
enum class Hist : std::uint8_t {
  kMpiCallNs,    ///< duration of each MPI public call
  kIrqServiceNs, ///< interrupt entry -> handler return
  kMatchScanned, ///< queue entries scanned per matching attempt
  kMsgBytes,     ///< MPCI message sizes (eager + rendezvous)
};
inline constexpr int kNumHists = 4;
inline constexpr int kHistBuckets = 48;
[[nodiscard]] const char* hist_name(Hist h) noexcept;

/// Bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b).
[[nodiscard]] constexpr int hist_bucket(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const int b = 64 - __builtin_clzll(v);  // floor(log2(v)) + 1
  return b < kHistBuckets ? b : kHistBuckets - 1;
}
/// Inclusive lower bound of bucket `b` (upper bound is lower_bound(b+1) - 1).
[[nodiscard]] constexpr std::uint64_t hist_bucket_floor(int b) noexcept {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

/// One timeline entry: 32 bytes, fixed layout, no indirection.
struct TraceRecord {
  TimeNs t = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::int32_t node = 0;
  std::uint16_t event = 0;  ///< Ev
  std::uint8_t layer = 0;   ///< Layer (redundant with event; kept for exporters)
  std::uint8_t reserved = 0;
};
static_assert(sizeof(TraceRecord) == 32, "trace records must stay fixed-size");

class Telemetry {
 public:
  /// `ring_bytes` bounds the timeline buffer; counters/histograms are O(nodes).
  Telemetry(int num_nodes, std::size_t ring_bytes);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Append a record (overwriting the oldest when full) and bump the
  /// per-(node, event) counter. Allocation-free.
  void emit(TimeNs t, int node, Ev e, std::uint64_t a0 = 0, std::uint64_t a1 = 0) noexcept {
    ++counters_[counter_index(node, e)];
    ++emitted_;
    if (full()) ++dropped_;
    ring_[head_] = TraceRecord{t, a0, a1, node, static_cast<std::uint16_t>(e),
                               static_cast<std::uint8_t>(event_layer(e)), 0};
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) ++size_;
  }

  /// Record a value in a per-node log2 histogram. Allocation-free.
  void record_hist(Hist h, int node, std::uint64_t value) noexcept {
    ++hist_[hist_index(node, h, hist_bucket(value))];
  }

  /// Bump the per-(node, collective-algorithm) counter. Allocation-free;
  /// emitted by the collective engine alongside its kCollBegin span.
  void record_coll(int node, CollAlgo a) noexcept {
    ++coll_counters_[coll_index(node, a)];
  }

  // --- queries -------------------------------------------------------------
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t ring_capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t ring_bytes_in_use() const noexcept {
    return size_ * sizeof(TraceRecord);
  }
  [[nodiscard]] std::uint64_t records_emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t records_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t counter(int node, Ev e) const noexcept {
    return counters_[counter_index(node, e)];
  }
  [[nodiscard]] std::uint64_t counter_total(Ev e) const noexcept;
  [[nodiscard]] std::uint64_t hist_count(int node, Hist h, int bucket) const noexcept {
    return hist_[hist_index(node, h, bucket)];
  }
  [[nodiscard]] std::uint64_t coll_count(int node, CollAlgo a) const noexcept {
    return coll_counters_[coll_index(node, a)];
  }
  [[nodiscard]] std::uint64_t coll_count_total(CollAlgo a) const noexcept;

  /// The retained timeline, oldest record first.
  [[nodiscard]] std::vector<TraceRecord> records() const;

  /// FNV-1a over the retained records plus the drop count — the determinism
  /// digest for traced runs.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  // --- live sampling -------------------------------------------------------
  /// A copyable point-in-time view of every counter and histogram. Two
  /// snapshots bracket a phase; delta() attributes activity to it.
  struct Snapshot {
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    std::vector<std::uint64_t> counters;  ///< [node * kNumEvents + event]
    std::vector<std::uint64_t> hist;      ///< [(node * kNumHists + h) * kHistBuckets + b]
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Element-wise `later - earlier`; both must come from the same Telemetry.
  [[nodiscard]] static Snapshot delta(const Snapshot& later, const Snapshot& earlier);

  // --- exporters -----------------------------------------------------------
  /// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
  /// pid = node, tid = layer; MPI calls and NAS kernels become B/E spans,
  /// everything else instant events.
  void export_chrome_json(std::FILE* out) const;
  /// One record per line: t_ns,node,layer,event,a0,a1.
  void export_csv(std::FILE* out) const;
  /// Human dump in the legacy tracer's column format.
  void export_text(std::FILE* out) const;
  /// Counter + histogram tables (aggregated and per node).
  void print_metrics(std::FILE* out) const;

 private:
  [[nodiscard]] bool full() const noexcept { return size_ == ring_.size(); }
  [[nodiscard]] std::size_t counter_index(int node, Ev e) const noexcept {
    return static_cast<std::size_t>(node) * kNumEvents + static_cast<std::size_t>(e);
  }
  [[nodiscard]] std::size_t hist_index(int node, Hist h, int bucket) const noexcept {
    return (static_cast<std::size_t>(node) * kNumHists + static_cast<std::size_t>(h)) *
               kHistBuckets +
           static_cast<std::size_t>(bucket);
  }
  [[nodiscard]] std::size_t coll_index(int node, CollAlgo a) const noexcept {
    return static_cast<std::size_t>(node) * kNumCollAlgos + static_cast<std::size_t>(a);
  }

  int num_nodes_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< Next write position.
  std::size_t size_ = 0;  ///< Records currently retained.
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::uint64_t> counters_;
  std::vector<std::uint64_t> hist_;
  std::vector<std::uint64_t> coll_counters_;
};

}  // namespace sp::sim

/// Emission macro: `rt` is a NodeRuntime(-like) object exposing `.telemetry`
/// (Telemetry*), `.sim` and `.node`. Disabled telemetry costs exactly the one
/// null test; arguments are not evaluated when disabled beyond what the call
/// site already computed.
#define SP_TELEM(rt, ev, ...)                                                \
  do {                                                                       \
    if ((rt).telemetry != nullptr)                                           \
      (rt).telemetry->emit((rt).sim.now(), (rt).node, (ev), ##__VA_ARGS__);  \
  } while (0)

/// Histogram variant of SP_TELEM.
#define SP_TELEM_HIST(rt, h, value)                                     \
  do {                                                                  \
    if ((rt).telemetry != nullptr)                                      \
      (rt).telemetry->record_hist((h), (rt).node, (value));             \
  } while (0)
