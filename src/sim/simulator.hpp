// The discrete-event simulator core.
//
// One Simulator owns simulated time for one simulated SP machine. Events are
// closures executed at their scheduled time; rank application programs run on
// cooperatively-scheduled fibers (see rank_thread.hpp) interleaved with event
// processing, so at every instant exactly one flow of control — the event
// loop or one rank fiber — is running. That makes whole-machine simulations
// deterministic and data-race-free even though rank programs are written as
// ordinary blocking code.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sp::sim {

/// Thrown (by the driver) when the event queue drains while rank threads are
/// still blocked — i.e. the simulated program deadlocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown inside rank threads when the simulation is being torn down early
/// (e.g. another rank raised an error). Never escapes to user code.
struct AbortSimulation {};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Schedule `action` at absolute simulated time `t` (clamped to now()).
  template <typename F>
  void at(TimeNs t, F&& action) {
    queue_.push(t < now_ ? now_ : t, std::forward<F>(action));
  }

  /// Same, carrying a schedule-class key for the systematic explorer's
  /// independence relation (sched.hpp; ignored outside controlled runs).
  template <typename F>
  void at(TimeNs t, SchedKey key, F&& action) {
    queue_.push(t < now_ ? now_ : t, key, std::forward<F>(action));
  }

  /// Schedule `action` `dt` nanoseconds from now (dt clamped to >= 0).
  template <typename F>
  void after(TimeNs dt, F&& action) {
    at(now_ + (dt < 0 ? 0 : dt), std::forward<F>(action));
  }

  template <typename F>
  void after(TimeNs dt, SchedKey key, F&& action) {
    at(now_ + (dt < 0 ? 0 : dt), key, std::forward<F>(action));
  }

  /// Execute the earliest pending event. Returns false if none is pending.
  bool step() {
    if (queue_.empty()) return false;
    auto [t, action] = queue_.pop();
    // max(): a ScheduleController with a nonzero window may run an event
    // whose timestamp precedes an already-executed one; time never rewinds.
    if (t > now_) now_ = t;
    ++events_processed_;
    action();
    return true;
  }

  /// Run until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Run until no events remain or simulated time would exceed `deadline`.
  /// Events scheduled beyond the deadline stay queued.
  void run_until(TimeNs deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      (void)step();
    }
  }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Perturb the same-timestamp event tie-break (see EventQueue); call before
  /// any event is scheduled. 0 (the default) keeps strict insertion order.
  void set_tie_break_salt(std::uint64_t salt) noexcept { queue_.set_tie_break_salt(salt); }

  /// Install a ScheduleController (systematic exploration; see sched.hpp).
  /// Call before any event is scheduled. nullptr restores normal pops.
  void set_schedule_controller(ScheduleController* c, TimeNs window_ns) {
    queue_.set_controller(c, window_ns);
  }

  /// Read-only view of the queue's host-side perf counters.
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  std::uint64_t events_processed_ = 0;
};

/// Serializes protocol processing on one node's CPU: header handlers, packet
/// dispatch, matching and interrupt service all compete for the same host
/// processor, which is what bounds small-packet throughput on the real SP.
class NodeCpu {
 public:
  /// Occupy the CPU for `cost` starting no earlier than now, then run `fn`
  /// (in event context) at the completion time. Returns that time.
  template <typename F>
  TimeNs run(Simulator& sim, TimeNs cost, F&& fn) {
    const TimeNs start = sim.now() > free_at_ ? sim.now() : free_at_;
    const TimeNs done = start + (cost < 0 ? 0 : cost);
    free_at_ = done;
    sim.at(done, sched_key_, std::forward<F>(fn));
    return done;
  }

  /// Schedule class for this CPU's completions (sched_node_key of the owning
  /// node; set once by NodeRuntime). Everything a NodeCpu runs touches only
  /// that node's protocol state.
  void set_sched_key(SchedKey key) noexcept { sched_key_ = key; }

  /// Occupy the CPU without a continuation (pure cost accounting).
  TimeNs charge(Simulator& sim, TimeNs cost) {
    const TimeNs start = sim.now() > free_at_ ? sim.now() : free_at_;
    free_at_ = start + (cost < 0 ? 0 : cost);
    return free_at_;
  }

  [[nodiscard]] TimeNs free_at() const noexcept { return free_at_; }

  /// Mark the CPU busy until `t` (used when the *application thread* occupies
  /// it: on a single-CPU SP node, protocol processing and user computation
  /// contend for the same processor).
  void occupy_until(TimeNs t) noexcept {
    if (t > free_at_) free_at_ = t;
  }

 private:
  TimeNs free_at_ = 0;
  SchedKey sched_key_ = kSchedOpaque;
};

}  // namespace sp::sim
