// Deterministic PCG32 random number generator.
//
// The simulator must be bit-reproducible across runs, so every stochastic
// choice (route spraying perturbation, fault injection, workload generation)
// draws from an explicitly seeded Pcg32 owned by the component that needs it.
// <random> engines are avoided because their distributions are not guaranteed
// identical across standard library implementations.
#pragma once

#include <cstdint>

namespace sp::sim {

/// Minimal PCG-XSH-RR 32-bit generator (O'Neill, 2014).
class Pcg32 {
 public:
  constexpr explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                           std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
      : state_(0), inc_((stream << 1u) | 1u) {
    next();
    state_ += seed;
    next();
  }

  /// Uniform 32-bit value.
  constexpr std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform value in [0, bound). bound == 0 returns 0.
  constexpr std::uint32_t next_below(std::uint32_t bound) noexcept {
    if (bound == 0) return 0;
    // Debiased modulo (Lemire-style rejection kept simple).
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1) with 32 bits of precision.
  constexpr double next_double() noexcept {
    return static_cast<double>(next()) * (1.0 / 4294967296.0);
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) noexcept { return next_double() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace sp::sim
