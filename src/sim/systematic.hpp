// Systematic schedule exploration: stateless DFS with sleep-set pruning over
// the event queue's same-window scheduling choices (DESIGN.md §15).
//
// Where the seeded explorer samples schedule space (one tie-break salt per
// seed), the systematic engine *enumerates* it for small machines: every
// point where two or more ready events could run next becomes a recorded
// decision, runs are replayed from decision prefixes (the simulator is
// deterministic, so a prefix reproduces exactly), and the independence
// relation from sim/sched.hpp prunes interleavings that only reorder
// commuting events. A complete enumeration yields a certificate — "all N
// non-equivalent interleavings conformant" — with a pinned digest; any run
// that breaks an MPI invariant is encoded as an `x5-` repro token that
// `spsim explore --repro=` replays standalone.
//
// The engine runs a wildcard-heavy workload (every receive is
// MPI_ANY_SOURCE, so the matching order genuinely depends on the schedule)
// and checks, per interleaving: status/payload integrity, per-source
// non-overtaking, and a schedule-invariant commutative fold of the received
// message set that must equal an analytically computed constant on every
// interleaving of every channel.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "sim/config.hpp"

namespace sp::sim {

struct SystematicOptions {
  int ranks = 2;
  int msgs_per_rank = 1;
  /// Message payload length; > the eager limit forces the rendezvous path.
  std::uint32_t msg_bytes = 24;
  /// Maximum recorded choice points per run; deeper choices run canonically
  /// and mark the certificate depth-limited (incomplete).
  int depth = 64;
  /// Candidate-window width (see MachineConfig::sched_window_ns).
  TimeNs window_ns = 0;
  mpi::Backend backend = mpi::Backend::kNativePipes;
  /// Machine-execution budget for the DFS (0 = unlimited).
  long max_runs = 200'000;
  /// Stop after this many non-redundant interleavings (0 = unlimited).
  long max_interleavings = 0;
  /// Also compute a canonical trace digest per interleaving and count
  /// duplicates — the sleep-set non-redundancy check (O(events^2) per run,
  /// test-sized configs only).
  bool canonical_check = false;
  /// Optional collective phase: a --coll-algo spec (e.g.
  /// "allreduce=in_network,bcast=in_network,barrier=in_network") applied to
  /// the machine config; the workload then appends a barrier + non-commutative
  /// allreduce + bcast after the wildcard phase, each checked in-fiber
  /// against the exact sequential reference on EVERY interleaving — pinning
  /// that the pinned algorithm is schedule-invariant. Empty = off (the
  /// pre-existing certificates are enumerated over the unchanged workload).
  std::string coll_spec{};
  std::FILE* log = nullptr;
  MachineConfig base_config{};
};

/// One machine execution under a forced decision prefix.
struct SystematicRunResult {
  bool completed = false;  ///< run() returned without throwing.
  std::string error;
  std::vector<std::string> violations;  ///< MPI-invariant breaks in this run.
  /// Ordered fold of each rank's wildcard match sequence — legitimately
  /// differs across interleavings; the certificate covers the *set*.
  std::uint64_t outcome_digest = 0;
  /// Commutative fold of the received message set — must equal
  /// systematic_expected_invariant() on every interleaving of every channel.
  std::uint64_t invariant_digest = 0;
  bool redundant = false;      ///< Sleep-set-blocked (covered elsewhere).
  bool depth_limited = false;  ///< Hit SystematicOptions::depth.
  int choice_points = 0;       ///< Decision points recorded in this run.
};

struct SystematicReport {
  /// Frontier drained with no depth/fanout truncation and no mismatch: the
  /// interleaving count and certificate digest are exhaustive.
  bool complete = false;
  bool depth_limited = false;
  long interleavings = 0;  ///< Non-redundant executions (the certificate N).
  long redundant = 0;      ///< Sleep-set-pruned executions.
  long runs = 0;           ///< Total machine executions.
  long choice_points = 0;  ///< choose() invocations across non-redundant runs.
  int max_fanout = 0;      ///< Widest choice point seen.
  long fanout_capped = 0;  ///< Points wider than the 16-way token encoding.
  /// Interleavings whose canonical trace digest was already seen; sleep-set
  /// pruning is non-redundant iff this stays 0 (canonical_check runs only).
  long duplicate_traces = 0;
  std::size_t distinct_outcomes = 0;
  /// Fold of (interleavings, sorted distinct outcome digests): the pinned
  /// certificate value.
  std::uint64_t certificate_digest = 0;
  std::uint64_t invariant_digest = 0;

  struct Mismatch {
    std::string reason;
    std::string token;           ///< Shrunk x5 repro token.
    std::string original_token;  ///< Pre-shrink token of the failing run.
  };
  std::vector<Mismatch> mismatches;
};

/// The schedule-invariant digest every interleaving must produce, computed
/// analytically (no machine run) from the workload shape.
[[nodiscard]] std::uint64_t systematic_expected_invariant(int ranks, int msgs_per_rank,
                                                          std::uint32_t msg_bytes);

/// Replay one decision sequence (each entry indexes the sorted candidate list
/// at that choice point; past the end, the first non-sleeping candidate is
/// taken). One machine execution. Deterministic per (opts, decisions).
[[nodiscard]] SystematicRunResult systematic_replay(const SystematicOptions& opts,
                                                    const std::vector<std::uint8_t>& decisions);

/// Enumerate all non-equivalent interleavings by DFS with sleep sets.
/// Stops early on budget exhaustion or the first mismatch (complete=false).
[[nodiscard]] SystematicReport systematic_explore(const SystematicOptions& opts);

}  // namespace sp::sim
