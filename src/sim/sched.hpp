// Schedule-class keys and the ScheduleController hook (DESIGN.md §15).
//
// The systematic explorer needs two things from the event core: a way to
// *classify* events so an independence relation can be computed, and a way to
// *choose* which of several ready events runs next. Both live here.
//
// Every queued event carries a SchedKey describing the protocol state it
// touches:
//   - kOpaque (0): unknown footprint — conservatively dependent on everything.
//     This is the default for every push that does not pass a key, so an
//     untagged call site can never make the exploration unsound, only larger.
//   - node(n): runs protocol/handler/application code of node n only
//     (handler dispatch, interrupt service, rank-fiber resume, ack timers).
//   - deliver(src, dst): a fabric delivery into node dst's adapter.
//
// Two events are *independent* (they commute, and exploring both orders is
// redundant) iff they are scheduled at the same timestamp and their touched
// node sets are disjoint and known. Same-timestamp is required because the
// controller may only reorder events inside a candidate window; events at
// different times never form a choice point, so treating them as dependent is
// free and keeps the relation sound under the clamped-time execution model.
//
// The relation is computed at the *protocol* level: events on disjoint nodes
// may still contend for shared fabric links when both inject packets, so two
// "independent" orders can differ in packet timing. MPI-visible observables
// must not depend on such timing — which is exactly the conformance property
// the explorer checks — and the seeded-vs-systematic subset test plus the
// pruning-on/off outcome-set cross-check validate the approximation
// empirically (tests/systematic_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace sp::sim {

/// Packed schedule-class key: kind in bits [56,64), operands below. 0 = opaque.
using SchedKey = std::uint64_t;

inline constexpr SchedKey kSchedOpaque = 0;

/// Event that touches only node `node`'s protocol state.
[[nodiscard]] constexpr SchedKey sched_node_key(int node) noexcept {
  return (SchedKey{1} << 56) | (static_cast<SchedKey>(node) & 0xfffffffULL);
}

/// Fabric delivery from `src` into node `dst` (touches dst's receive state).
[[nodiscard]] constexpr SchedKey sched_deliver_key(int src, int dst) noexcept {
  return (SchedKey{2} << 56) | ((static_cast<SchedKey>(src) & 0xfffffffULL) << 28) |
         (static_cast<SchedKey>(dst) & 0xfffffffULL);
}

/// The one node whose state the event mutates; -1 for opaque keys.
[[nodiscard]] constexpr int sched_touched_node(SchedKey k) noexcept {
  if ((k >> 56) == 0) return -1;
  return static_cast<int>(k & 0xfffffffULL);  // node for node-keys, dst for delivers
}

/// True iff executing the two events in either order reaches the same
/// protocol state (see the header comment for the exact approximation).
[[nodiscard]] constexpr bool sched_independent(TimeNs at_a, SchedKey a, TimeNs at_b,
                                               SchedKey b) noexcept {
  if (at_a != at_b) return false;
  const int na = sched_touched_node(a);
  const int nb = sched_touched_node(b);
  return na >= 0 && nb >= 0 && na != nb;
}

/// Installed on an EventQueue to decide which of several ready events runs
/// next. `choose` is invoked whenever two or more events are pending within
/// the candidate window (all events with `at <= min_at + window`); candidates
/// arrive in canonical (at, insertion-seq) order — independent of any
/// tie-break salt — and the returned index picks the one to execute.
/// `on_execute` fires for *every* executed event (choice point or not), in
/// execution order, which sleep-set pruning needs to track dependence wakeups
/// between choice points.
class ScheduleController {
 public:
  struct Choice {
    TimeNs at = 0;
    std::uint64_t seq = 0;  ///< Insertion sequence (stable across identical replays).
    SchedKey key = kSchedOpaque;
  };

  virtual ~ScheduleController() = default;

  /// Pick the next event among >= 2 candidates. Must return < candidates.size().
  [[nodiscard]] virtual std::size_t choose(const std::vector<Choice>& candidates) = 0;

  /// Observe every executed event (including sole candidates).
  virtual void on_execute(const Choice& executed) = 0;
};

}  // namespace sp::sim
