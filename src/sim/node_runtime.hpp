// Per-node runtime shared by every protocol layer on one simulated node.
#pragma once

#include <cassert>

#include "sim/config.hpp"
#include "sim/rank_thread.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "sim/wake_gate.hpp"

namespace sp::sim {

struct NodeRuntime {
  NodeRuntime(Simulator& s, const MachineConfig& c, int node_id)
      : sim(s), cfg(c), node(node_id) {
    cpu.set_sched_key(sched_node_key(node_id));
  }

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  Simulator& sim;
  const MachineConfig& cfg;
  int node;
  /// Serializes protocol processing charged to this node's host CPU.
  NodeCpu cpu;
  /// Interrupt-handler completion-visibility gate (see wake_gate.hpp).
  WakeGate gate;
  /// The task's application thread; bound by the Machine before it starts.
  RankThread* thread = nullptr;
  /// Optional event timeline (shared across the machine); null = disabled.
  Trace* trace = nullptr;
  /// Optional structured telemetry (shared across the machine); null =
  /// disabled. Emit through SP_TELEM/SP_TELEM_HIST (telemetry.hpp).
  Telemetry* telemetry = nullptr;

  /// Emit a trace event if tracing is enabled. `make_detail` is only invoked
  /// when it is, so call sites pay nothing otherwise.
  template <typename MakeDetail>
  void trace_event(const char* category, MakeDetail&& make_detail) {
    if (trace != nullptr) trace->emit(sim.now(), node, category, make_detail());
  }

  /// Charge API-call overhead or computation to the calling application
  /// thread. Public LAPI/MPI entry points call this; they may only be
  /// invoked from the task's own rank thread (completion handlers use
  /// internal paths). The work occupies the node CPU: it queues behind any
  /// in-flight protocol processing (copies, matching, interrupt service) and
  /// protocol work queues behind it — one processor per node, as on the SP.
  void app_charge(TimeNs cost) {
    assert(thread != nullptr && "public API requires a bound rank thread");
    if (cost <= 0) return;
    const TimeNs now = sim.now();
    const TimeNs start = cpu.free_at() > now ? cpu.free_at() : now;
    const TimeNs until = start + cost;
    cpu.occupy_until(until);
    thread->advance(until - now);
  }

  /// Publish a completion through the gate.
  void publish(std::function<void()> visible) { gate.apply(std::move(visible)); }
};

}  // namespace sp::sim
