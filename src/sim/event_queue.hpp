// Time-ordered event queue for the discrete-event simulator.
//
// Ties on timestamp are broken by insertion sequence number, which makes the
// processing order a total order independent of heap implementation details —
// a requirement for bit-reproducible simulations (guarded by
// tests/determinism_test.cpp).
//
// Hot-path design: the simulator pushes and pops millions of closures per
// host-second, so the steady state must be allocation-free.
//   - Action is a move-only small-buffer callable: captures up to
//     kInlineBytes live inline; larger captures go to a size-classed block
//     pool (EventPool) that recycles freed blocks instead of returning them
//     to the heap.
//   - Entries live in recycled slots; the priority queue is a 4-ary min-heap
//     over slot *indices*, so sift operations swap 4-byte ids and no Action
//     ever moves through the heap.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/sched.hpp"
#include "sim/time.hpp"

namespace sp::sim {

/// Size-classed recycling allocator for Action captures that exceed the
/// inline buffer. Freed blocks are kept on intrusive free lists and reused;
/// captures beyond the largest class fall back to plain new/delete (counted).
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  ~EventPool() {
    for (std::size_t c = 0; c < kClasses.size(); ++c) {
      void* p = free_[c];
      while (p != nullptr) {
        void* next = *static_cast<void**>(p);
        ::operator delete(p, std::align_val_t{kBlockAlign});
        p = next;
      }
    }
  }

  [[nodiscard]] void* allocate(std::size_t n) {
    const int c = class_of(n);
    if (c < 0) {
      ++fallback_allocs_;
      return ::operator new(n, std::align_val_t{kBlockAlign});
    }
    if (free_[static_cast<std::size_t>(c)] != nullptr) {
      ++pool_hits_;
      void* p = free_[static_cast<std::size_t>(c)];
      free_[static_cast<std::size_t>(c)] = *static_cast<void**>(p);
      return p;
    }
    ++pool_misses_;
    return ::operator new(kClasses[static_cast<std::size_t>(c)], std::align_val_t{kBlockAlign});
  }

  void deallocate(void* p, std::size_t n) noexcept {
    const int c = class_of(n);
    if (c < 0) {
      ::operator delete(p, std::align_val_t{kBlockAlign});
      return;
    }
    *static_cast<void**>(p) = free_[static_cast<std::size_t>(c)];
    free_[static_cast<std::size_t>(c)] = p;
  }

  /// Oversize-capture allocations recycled from a free list.
  [[nodiscard]] std::uint64_t pool_hits() const noexcept { return pool_hits_; }
  /// Oversize-capture allocations that had to grow the pool.
  [[nodiscard]] std::uint64_t pool_misses() const noexcept { return pool_misses_; }
  /// Captures larger than the biggest size class (plain heap alloc).
  [[nodiscard]] std::uint64_t fallback_allocs() const noexcept { return fallback_allocs_; }

 private:
  static constexpr std::array<std::size_t, 5> kClasses = {64, 128, 256, 512, 1024};
  static constexpr std::size_t kBlockAlign = 16;

  [[nodiscard]] static int class_of(std::size_t n) noexcept {
    for (std::size_t c = 0; c < kClasses.size(); ++c) {
      if (n <= kClasses[c]) return static_cast<int>(c);
    }
    return -1;
  }

  std::array<void*, kClasses.size()> free_ = {};
  std::uint64_t pool_hits_ = 0;
  std::uint64_t pool_misses_ = 0;
  std::uint64_t fallback_allocs_ = 0;
};

class EventQueue {
 public:
  /// Move-only callable with small-buffer optimization. Captures up to
  /// kInlineBytes (and nothrow-movable) are stored inline; anything larger
  /// lives in a pool-recycled block.
  class Action {
   public:
    static constexpr std::size_t kInlineBytes = 48;
    static constexpr std::size_t kInlineAlign = 16;

    Action() noexcept = default;

    template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Action>>>
    Action(F&& f, EventPool& pool) {
      using T = std::decay_t<F>;
      if constexpr (sizeof(T) <= kInlineBytes && alignof(T) <= kInlineAlign &&
                    std::is_nothrow_move_constructible_v<T>) {
        ::new (static_cast<void*>(inline_)) T(std::forward<F>(f));
        ops_ = ops_for<T>();
      } else {
        heap_ = pool.allocate(sizeof(T));
        ::new (heap_) T(std::forward<F>(f));
        ops_ = ops_for<T>();
        pool_ = &pool;
      }
    }

    Action(Action&& o) noexcept : ops_(o.ops_), pool_(o.pool_) {
      if (ops_ == nullptr) return;
      if (pool_ != nullptr) {
        heap_ = o.heap_;
      } else {
        ops_->relocate(inline_, o.inline_);
      }
      o.ops_ = nullptr;
      o.pool_ = nullptr;
    }

    Action& operator=(Action&& o) noexcept {
      if (this != &o) {
        reset();
        ops_ = o.ops_;
        pool_ = o.pool_;
        if (ops_ != nullptr) {
          if (pool_ != nullptr) {
            heap_ = o.heap_;
          } else {
            ops_->relocate(inline_, o.inline_);
          }
        }
        o.ops_ = nullptr;
        o.pool_ = nullptr;
      }
      return *this;
    }

    Action(const Action&) = delete;
    Action& operator=(const Action&) = delete;

    ~Action() { reset(); }

    void operator()() {
      assert(ops_ != nullptr && "invoking an empty Action");
      ops_->invoke(pool_ != nullptr ? heap_ : static_cast<void*>(inline_));
    }

    [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

   private:
    struct Ops {
      void (*invoke)(void*);
      void (*destroy)(void*);
      /// Move-construct at dst from src, then destroy src (inline storage).
      void (*relocate)(void* dst, void* src);
      std::size_t size;
    };

    template <typename T>
    [[nodiscard]] static const Ops* ops_for() noexcept {
      static constexpr Ops ops{
          [](void* p) { (*static_cast<T*>(p))(); },
          [](void* p) { static_cast<T*>(p)->~T(); },
          [](void* dst, void* src) {
            T* s = static_cast<T*>(src);
            ::new (dst) T(std::move(*s));
            s->~T();
          },
          sizeof(T)};
      return &ops;
    }

    void reset() noexcept {
      if (ops_ == nullptr) return;
      if (pool_ != nullptr) {
        ops_->destroy(heap_);
        pool_->deallocate(heap_, ops_->size);
      } else {
        ops_->destroy(inline_);
      }
      ops_ = nullptr;
      pool_ = nullptr;
    }

    const Ops* ops_ = nullptr;
    EventPool* pool_ = nullptr;  ///< Non-null iff the capture lives in heap_.
    union {
      alignas(kInlineAlign) std::byte inline_[kInlineBytes];
      void* heap_;
    };
  };

  /// Enqueue a callable to run at absolute time `at` (opaque schedule class).
  template <typename F>
  void push(TimeNs at, F&& f) {
    push(at, kSchedOpaque, std::forward<F>(f));
  }

  /// Enqueue a callable with an explicit schedule-class key (see sched.hpp).
  /// The key never changes *when* the event runs under normal operation; it
  /// only informs an installed ScheduleController's independence relation.
  template <typename F>
  void push(TimeNs at, SchedKey key, F&& f) {
    std::uint32_t id;
    if (free_head_ != kNone) {
      id = free_head_;
      Slot& s = slots_[id];
      free_head_ = s.next_free;
      s.at = at;
      s.seq = next_seq_++;
      s.key = key;
      s.action = Action(std::forward<F>(f), pool_);
    } else {
      id = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back(at, next_seq_++, key, Action(std::forward<F>(f), pool_));
    }
    heap_.push_back(id);
    sift_up(heap_.size() - 1);
    ++pushed_;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] TimeNs next_time() const { return slots_[heap_.front()].at; }

  /// Remove and return the earliest pending event. Precondition: !empty().
  /// With a ScheduleController installed, the controller picks among all
  /// events ready within the candidate window instead (see set_controller).
  [[nodiscard]] std::pair<TimeNs, Action> pop() {
    if (controller_ != nullptr) return pop_controlled();
    const std::uint32_t id = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return take(id);
  }

  /// Perturb the tie-break among same-timestamp events: with a non-zero salt,
  /// ties are ordered by a seeded bijective mix of the insertion sequence
  /// instead of the sequence itself. The mix is a permutation of the 64-bit
  /// sequence space, so the order stays strict and total (deterministic per
  /// salt); salt 0 restores exact insertion order, which the golden-digest
  /// tests pin. Must be set while the queue is empty: changing the comparator
  /// under a populated heap would break the heap invariant.
  void set_tie_break_salt(std::uint64_t salt) noexcept {
    assert(heap_.empty() && "tie-break salt must be set before events are queued");
    tie_salt_ = salt;
  }
  [[nodiscard]] std::uint64_t tie_break_salt() const noexcept { return tie_salt_; }

  /// Install a ScheduleController: every pop gathers the events ready within
  /// `window_ns` of the minimum pending timestamp (in canonical (at, seq)
  /// order, unaffected by the tie-break salt) and, when there are two or
  /// more, asks the controller which to run. Must be installed while the
  /// queue is empty. Null restores normal heap-order pops. The controlled pop
  /// is O(pending) per event — systematic exploration only, never the
  /// simulation hot path (which keeps the branch-free controller==null test).
  void set_controller(ScheduleController* c, TimeNs window_ns) noexcept {
    assert(heap_.empty() && "controller must be installed before events are queued");
    controller_ = c;
    window_ = window_ns < 0 ? 0 : window_ns;
  }
  [[nodiscard]] ScheduleController* controller() const noexcept { return controller_; }

  // --- host-side perf counters ---
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }
  [[nodiscard]] std::uint64_t popped() const noexcept { return popped_; }
  [[nodiscard]] const EventPool& pool() const noexcept { return pool_; }
  /// Actions whose captures fit the inline buffer (no allocation at all).
  [[nodiscard]] std::uint64_t inline_actions() const noexcept {
    return pushed_ - pool_.pool_hits() - pool_.pool_misses() - pool_.fallback_allocs();
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Slot {
    Slot(TimeNs t, std::uint64_t s, SchedKey k, Action a)
        : at(t), seq(s), key(k), action(std::move(a)) {}
    TimeNs at;
    std::uint64_t seq;
    SchedKey key;
    Action action;
    std::uint32_t next_free = kNone;
  };

  /// Recycle slot `id` and hand its payload out; notifies the controller.
  [[nodiscard]] std::pair<TimeNs, Action> take(std::uint32_t id) {
    Slot& s = slots_[id];
    std::pair<TimeNs, Action> out{s.at, std::move(s.action)};
    if (controller_ != nullptr) {
      controller_->on_execute(ScheduleController::Choice{s.at, s.seq, s.key});
    }
    s.next_free = free_head_;
    free_head_ = id;
    ++popped_;
    return out;
  }

  [[nodiscard]] std::pair<TimeNs, Action> pop_controlled() {
    // Candidates: everything ready within the window of the minimum pending
    // timestamp, in canonical (at, seq) order. The heap front holds the
    // minimum time regardless of the tie-break salt (time dominates the
    // comparator), so min_at is exact.
    const TimeNs min_at = slots_[heap_.front()].at;
    const TimeNs limit = min_at + window_;
    cand_ids_.clear();
    for (std::uint32_t id : heap_) {
      if (slots_[id].at <= limit) cand_ids_.push_back(id);
    }
    std::sort(cand_ids_.begin(), cand_ids_.end(), [this](std::uint32_t a, std::uint32_t b) {
      const Slot& sa = slots_[a];
      const Slot& sb = slots_[b];
      if (sa.at != sb.at) return sa.at < sb.at;
      return sa.seq < sb.seq;
    });
    std::uint32_t chosen = cand_ids_.front();
    if (cand_ids_.size() >= 2) {
      cands_.clear();
      for (std::uint32_t id : cand_ids_) {
        const Slot& s = slots_[id];
        cands_.push_back(ScheduleController::Choice{s.at, s.seq, s.key});
      }
      const std::size_t idx = controller_->choose(cands_);
      assert(idx < cand_ids_.size() && "controller chose past the candidate list");
      chosen = cand_ids_[idx < cand_ids_.size() ? idx : 0];
    }
    // Remove `chosen` from an arbitrary heap position.
    std::size_t pos = 0;
    while (heap_[pos] != chosen) ++pos;
    heap_[pos] = heap_.back();
    heap_.pop_back();
    if (pos < heap_.size()) {
      const std::uint32_t moved = heap_[pos];
      sift_up(pos);
      if (pos < heap_.size() && heap_[pos] == moved) sift_down(pos);
    }
    return take(chosen);
  }

  /// Bijective tie key: identity when unperturbed, otherwise the SplitMix64
  /// finalizer over seq ^ salt. Each step is invertible, so distinct
  /// sequences map to distinct keys and the tie-break stays a total order.
  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const noexcept {
    if (tie_salt_ == 0) return seq;
    std::uint64_t x = seq ^ tie_salt_;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  /// Strict (time, tie_key(seq)) "earlier-than" over slot ids: a total order,
  /// since sequence numbers are unique and the tie key is bijective.
  [[nodiscard]] bool earlier(std::uint32_t a, std::uint32_t b) const noexcept {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return tie_key(sa.seq) < tie_key(sb.seq);
  }

  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  // pool_ must outlive slots_: Slot actions return their overflow blocks to
  // the pool on destruction (members destroy in reverse declaration order).
  EventPool pool_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;
  ScheduleController* controller_ = nullptr;
  TimeNs window_ = 0;
  /// Scratch for pop_controlled (avoids per-pop allocation).
  std::vector<std::uint32_t> cand_ids_;
  std::vector<ScheduleController::Choice> cands_;
  std::uint32_t free_head_ = kNone;
  std::uint64_t tie_salt_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace sp::sim
