// Time-ordered event queue for the discrete-event simulator.
//
// Ties on timestamp are broken by insertion sequence number, which makes the
// processing order a total order independent of heap implementation details —
// a requirement for bit-reproducible simulations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace sp::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Enqueue an action to run at absolute time `at`.
  void push(TimeNs at, Action action) {
    heap_.push_back(Entry{at, next_seq_++, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] TimeNs next_time() const { return heap_.front().at; }

  /// Remove and return the earliest pending event. Precondition: !empty().
  [[nodiscard]] std::pair<TimeNs, Action> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    return {e.at, std::move(e.action)};
  }

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq;
    Action action;
  };
  // Max-heap comparator inverted so the *earliest* entry is on top.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sp::sim
