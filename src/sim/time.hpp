// Simulated-time type and unit helpers.
//
// All simulated time in this project is kept as signed 64-bit integral
// nanoseconds.  Integer time keeps the discrete-event simulation exactly
// deterministic (no floating-point drift between runs or platforms), and
// nanosecond granularity is fine enough for every cost the 1998-era SP cost
// model charges (the smallest are ~tens of ns).
#pragma once

#include <cstdint>

namespace sp::sim {

/// Simulated time / duration in nanoseconds.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNs = 1;
inline constexpr TimeNs kUs = 1000;
inline constexpr TimeNs kMs = 1000 * kUs;
inline constexpr TimeNs kSec = 1000 * kMs;

/// Convert a simulated duration to (double) microseconds, the unit the paper
/// reports latencies in.
[[nodiscard]] constexpr double to_us(TimeNs t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kUs);
}

/// Convert a simulated duration to (double) seconds.
[[nodiscard]] constexpr double to_sec(TimeNs t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSec);
}

/// Bytes over a duration -> MB/s (decimal MB, as the paper uses).
[[nodiscard]] constexpr double to_mb_per_sec(std::int64_t bytes, TimeNs t) noexcept {
  if (t <= 0) return 0.0;
  return (static_cast<double>(bytes) / 1.0e6) / to_sec(t);
}

}  // namespace sp::sim
