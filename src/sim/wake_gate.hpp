// WakeGate: defers completion *visibility* while an interrupt handler runs.
//
// On the real SP, the interrupt handler (including the native stack's
// hysteresis busy-wait) occupies the node CPU, so a user thread spinning on a
// receive flag — or blocked in a wait — cannot observe message completion
// until the handler returns. Transports therefore publish completions
// (marking requests complete, bumping counters, notifying SimConditions)
// through their node's WakeGate: immediately when the gate is open (polling
// mode, or no handler active), or at handler exit when it is closed.
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace sp::sim {

class WakeGate {
 public:
  /// Run `visible` now if the gate is open, otherwise defer it to open().
  void apply(std::function<void()> visible) {
    if (depth_ == 0) {
      visible();
    } else {
      deferred_.push_back(std::move(visible));
    }
  }

  /// Close the gate (nestable).
  void close() noexcept { ++depth_; }

  /// Open the gate; when the outermost close is released, all deferred
  /// actions run in publication order.
  void open() {
    if (depth_ > 0) --depth_;
    if (depth_ == 0 && !deferred_.empty()) {
      // Deferred actions may publish further completions; those run
      // immediately since the gate is now open.
      auto run = std::move(deferred_);
      deferred_.clear();
      for (auto& fn : run) fn();
    }
  }

  [[nodiscard]] bool is_open() const noexcept { return depth_ == 0; }

 private:
  int depth_ = 0;
  std::vector<std::function<void()>> deferred_;
};

}  // namespace sp::sim
