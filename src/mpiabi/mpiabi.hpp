// sp::mpiabi — host-side harness for the C MPI_* ABI veneer (DESIGN.md §17).
//
// The generated include/mpi.h declares a plain-C MPI subset; this module
// implements those entry points over sp::mpi and provides the embedding API
// that runs a C program (a standard `main` compiled against the generated
// header, renamed via -Dmain=<sym>) as an SPMD job: one invocation per rank
// fiber of a Machine, on any channel/topology.
//
// Context resolution: C MPI_* calls carry no per-call context argument, so
// the veneer finds its calling rank through sim::RankThread::current() — the
// fiber-tracking hook maintained across every context switch — and a
// thread_local pointer to the active per-rank handle tables installed by
// run_with_abi(). Both are thread_local, so independent Machines may run
// concurrently on separate host threads (the sweep driver does).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpiabi {

/// A C program entry point: `int main(int, char**)` renamed at compile time.
using MainFn = int (*)(int, char**);

struct RankReport {
  int exit_code = 0;
  /// Set by the MPIX_Report extension, if the program called it.
  bool reported = false;
  unsigned long long checksum = 0;
  bool verified = false;
};

struct RunResult {
  sim::TimeNs elapsed = 0;
  std::vector<RankReport> ranks;

  /// Every rank returned 0 and every MPIX_Report verdict was positive.
  [[nodiscard]] bool ok() const noexcept {
    for (const auto& r : ranks) {
      if (r.exit_code != 0) return false;
      if (r.reported && !r.verified) return false;
    }
    return !ranks.empty();
  }
};

/// Run `program_main` on every rank fiber of `m`. Each rank receives
/// argv = {"mpiapp", args...}. Blocks until the simulated program completes;
/// rank errors (including MPI_Abort) propagate as exceptions from Machine.
RunResult run_program(mpi::Machine& m, MainFn program_main,
                      const std::vector<std::string>& args = {});

/// Embedding hook for tests: binds the C ABI to `m` and runs `body(rank)` on
/// every rank fiber. MPI_* calls made inside `body` resolve to the calling
/// rank exactly as they would from a C program.
RunResult run_with_abi(mpi::Machine& m, const std::function<int(int)>& body);

}  // namespace sp::mpiabi
