/* Entry points of the bundled C proxy apps. Each file is a standard MPI C
 * program with an ordinary `main`; the build renames it to the symbol below
 * via -Dmain=<sym> so several programs can link into one binary (the same
 * trick SMPI-style simulators use). */
#ifndef SP_MPIABI_APPS_H
#define SP_MPIABI_APPS_H

#ifdef __cplusplus
extern "C" {
#endif

int sp_abi_nas_ep_main(int argc, char** argv);
int sp_abi_nas_is_main(int argc, char** argv);

#ifdef __cplusplus
}
#endif

#endif /* SP_MPIABI_APPS_H */
