/* NAS IS (integer sort) mini-kernel as a plain MPI C program.
 *
 * Parallel bucket sort: histogram exchange (MPI_Alltoall), key exchange
 * (MPI_Alltoallv), local sort, then global verification reductions. The RNG,
 * bucketing and checksum match the native C++ port bit for bit.
 *
 * Usage: nas_is [scale]   (default scale 2; 8192*scale keys per rank)
 */
#include <mpi.h>
#include <stdint.h>
#include <stdlib.h>

typedef struct {
  uint64_t state;
  uint64_t inc;
} pcg32_t;

static uint32_t pcg32_next(pcg32_t* g) {
  const uint64_t old = g->state;
  uint32_t xorshifted, rot;
  g->state = old * 6364136223846793005ULL + g->inc;
  xorshifted = (uint32_t)(((old >> 18) ^ old) >> 27);
  rot = (uint32_t)(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

static void pcg32_seed(pcg32_t* g, uint64_t seed) {
  g->state = 0;
  g->inc = (0xda3e39cb94b95bdbULL << 1) | 1u;
  (void)pcg32_next(g);
  g->state += seed;
  (void)pcg32_next(g);
}

/* Debiased modulo draw in [0, bound), matching sim::Pcg32::next_below. */
static uint32_t pcg32_below(pcg32_t* g, uint32_t bound) {
  uint32_t threshold, r;
  if (bound == 0) return 0;
  threshold = (0u - bound) % bound;
  for (;;) {
    r = pcg32_next(g);
    if (r >= threshold) return r % bound;
  }
}

static int cmp_i32(const void* a, const void* b) {
  const int32_t x = *(const int32_t*)a;
  const int32_t y = *(const int32_t*)b;
  return x < y ? -1 : (x > y ? 1 : 0);
}

int main(int argc, char** argv) {
  int rank, nranks, r, ok;
  long long scale, i;
  uint32_t key_range = 1u << 20;
  uint32_t bucket_width;
  long long keys_per_rank, total_recv;
  int32_t* keys;
  int32_t* bucketed;
  int32_t* mine;
  unsigned long long* scounts64;
  unsigned long long* rcounts64;
  int *scounts, *sdispls, *rcounts, *rdispls, *cursor;
  unsigned long long local_sum = 0, moved_sum = 0, moved_total = 0;
  unsigned long long sums[2], totals[2];
  pcg32_t rng;

  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &nranks);

  scale = argc > 1 ? atoll(argv[1]) : 2;
  if (scale < 1) scale = 1;
  keys_per_rank = 8192LL * scale;
  bucket_width = key_range / (uint32_t)nranks + 1;

  keys = (int32_t*)malloc((size_t)keys_per_rank * sizeof(int32_t));
  bucketed = (int32_t*)malloc((size_t)keys_per_rank * sizeof(int32_t));
  scounts64 = (unsigned long long*)calloc((size_t)nranks, sizeof(unsigned long long));
  rcounts64 = (unsigned long long*)calloc((size_t)nranks, sizeof(unsigned long long));
  scounts = (int*)calloc((size_t)nranks, sizeof(int));
  sdispls = (int*)calloc((size_t)nranks, sizeof(int));
  rcounts = (int*)calloc((size_t)nranks, sizeof(int));
  rdispls = (int*)calloc((size_t)nranks, sizeof(int));
  cursor = (int*)calloc((size_t)nranks, sizeof(int));
  if (!keys || !bucketed || !scounts64 || !rcounts64 || !scounts || !sdispls || !rcounts ||
      !rdispls || !cursor) {
    MPI_Abort(MPI_COMM_WORLD, 1);
  }

  pcg32_seed(&rng, 0xabcdef12u + (uint64_t)rank);
  for (i = 0; i < keys_per_rank; ++i) {
    keys[i] = (int32_t)pcg32_below(&rng, key_range);
    local_sum += (unsigned long long)keys[i];
  }

  /* Bucketise locally: counting pass + permute. */
  for (i = 0; i < keys_per_rank; ++i) ++scounts[(uint32_t)keys[i] / bucket_width];
  for (r = 1; r < nranks; ++r) sdispls[r] = sdispls[r - 1] + scounts[r - 1];
  for (r = 0; r < nranks; ++r) cursor[r] = sdispls[r];
  for (i = 0; i < keys_per_rank; ++i) {
    const int b = (int)((uint32_t)keys[i] / bucket_width);
    bucketed[cursor[b]++] = keys[i];
  }
  MPIX_Compute(keys_per_rank * 60);

  /* Exchange bucket sizes (8-byte counts, as the native port sends size_t),
   * then the keys themselves. */
  for (r = 0; r < nranks; ++r) scounts64[r] = (unsigned long long)scounts[r];
  MPI_Alltoall(scounts64, 1, MPI_UNSIGNED_LONG_LONG, rcounts64, 1, MPI_UNSIGNED_LONG_LONG,
               MPI_COMM_WORLD);
  for (r = 0; r < nranks; ++r) rcounts[r] = (int)rcounts64[r];
  total_recv = rcounts[0];
  for (r = 1; r < nranks; ++r) {
    rdispls[r] = rdispls[r - 1] + rcounts[r - 1];
    total_recv += rcounts[r];
  }
  mine = (int32_t*)malloc((size_t)(total_recv > 0 ? total_recv : 1) * sizeof(int32_t));
  if (!mine) MPI_Abort(MPI_COMM_WORLD, 1);
  MPI_Alltoallv(bucketed, scounts, sdispls, MPI_INT, mine, rcounts, rdispls, MPI_INT,
                MPI_COMM_WORLD);

  qsort(mine, (size_t)total_recv, sizeof(int32_t), cmp_i32);
  MPIX_Compute(total_recv * 80);

  /* Verify: locally sorted, in my bucket range, nothing lost globally. */
  ok = 1;
  for (i = 1; i < total_recv; ++i) ok = ok && mine[i - 1] <= mine[i];
  for (i = 0; i < total_recv; ++i) {
    ok = ok && (int)((uint32_t)mine[i] / bucket_width) == rank;
  }
  sums[0] = local_sum;
  sums[1] = (unsigned long long)total_recv;
  MPI_Allreduce(sums, totals, 2, MPI_UNSIGNED_LONG_LONG, MPI_SUM, MPI_COMM_WORLD);
  ok = ok && totals[1] == (unsigned long long)keys_per_rank * (unsigned long long)nranks;
  /* Checksum: the global key sum is invariant under the exchange. */
  for (i = 0; i < total_recv; ++i) moved_sum += (unsigned long long)mine[i];
  MPI_Allreduce(&moved_sum, &moved_total, 1, MPI_UNSIGNED_LONG_LONG, MPI_SUM, MPI_COMM_WORLD);
  ok = ok && moved_total == totals[0];

  MPIX_Report(moved_total, ok);

  free(mine);
  free(cursor);
  free(rdispls);
  free(rcounts);
  free(sdispls);
  free(scounts);
  free(rcounts64);
  free(scounts64);
  free(bucketed);
  free(keys);
  MPI_Finalize();
  return 0;
}
