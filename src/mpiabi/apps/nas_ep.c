/* NAS EP (embarrassingly parallel) mini-kernel as a plain MPI C program.
 *
 * This file compiles unmodified against any MPI: it includes only <mpi.h>
 * and uses the standard API (the MPIX_* calls are the simulator's documented
 * extensions and are the only non-standard lines). The algorithm and RNG
 * match the native C++ port bit for bit, so the final checksum must equal
 * the native kernel's on any channel/topology -- that equality is the ABI
 * conformance criterion.
 *
 * Usage: nas_ep [scale]   (default scale 2; 8192*scale samples per rank)
 */
#include <mpi.h>
#include <stdint.h>
#include <stdlib.h>

/* PCG-XSH-RR 32-bit (O'Neill, 2014), bit-identical to the simulator's
 * seeding sequence: zero state, advance, add seed, advance. */
typedef struct {
  uint64_t state;
  uint64_t inc;
} pcg32_t;

static uint32_t pcg32_next(pcg32_t* g) {
  const uint64_t old = g->state;
  uint32_t xorshifted, rot;
  g->state = old * 6364136223846793005ULL + g->inc;
  xorshifted = (uint32_t)(((old >> 18) ^ old) >> 27);
  rot = (uint32_t)(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

static void pcg32_seed(pcg32_t* g, uint64_t seed) {
  g->state = 0;
  g->inc = (0xda3e39cb94b95bdbULL << 1) | 1u;
  (void)pcg32_next(g);
  g->state += seed;
  (void)pcg32_next(g);
}

int main(int argc, char** argv) {
  int rank, nranks, i;
  long long scale, samples, s;
  long long q[4] = {0, 0, 0, 0};
  long long total[4];
  long long sum = 0;
  unsigned long long chk = 0;
  pcg32_t rng;

  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &nranks);

  scale = argc > 1 ? atoll(argv[1]) : 2;
  if (scale < 1) scale = 1;
  samples = 8192LL * scale;

  pcg32_seed(&rng, 0x9e3779b9u + (uint64_t)rank);
  for (s = 0; s < samples; ++s) {
    const uint32_t x = pcg32_next(&rng);
    const uint32_t y = pcg32_next(&rng);
    const uint64_t r2 = (((uint64_t)x * x) >> 34) + (((uint64_t)y * y) >> 34);
    uint64_t bin = r2 >> 28;
    if (bin > 3) bin = 3;
    ++q[bin];
  }
  MPIX_Compute(samples * 900);

  MPI_Allreduce(q, total, 4, MPI_LONG_LONG, MPI_SUM, MPI_COMM_WORLD);

  for (i = 0; i < 4; ++i) {
    sum += total[i];
    chk = chk * 1000003u + (unsigned long long)total[i];
  }
  MPIX_Report(chk, sum == samples * nranks);

  MPI_Finalize();
  return 0;
}
