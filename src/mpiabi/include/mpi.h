/* mpi.h — generated C ABI header for the simulated SP machine (sp::mpiabi).
 *
 * This header is what an external MPI program compiles against so it can run
 * unmodified inside the simulator's rank fibers (DESIGN.md §17), in the style
 * of SimGrid's SMPI: the MPI_* entry points below are a thin C veneer over
 * the C++ sp::mpi layer, resolved per-call to the rank fiber that is
 * currently executing. Handles are plain ints into per-rank tables, so the
 * ABI is trivially stable; MPI_Status is a POD mirroring mpci::Status.
 *
 * Generated from the sp::mpi public surface (src/mpi/mpi.hpp) — keep the two
 * in sync by regenerating rather than hand-editing call lists.
 *
 * Error handling follows MPI_ERRORS_RETURN: every call returns MPI_SUCCESS
 * or an MPI_ERR_* code instead of aborting. Unrecoverable simulator errors
 * (e.g. a ready-mode send with no posted receive) still terminate the run,
 * exactly as MPI_ERRORS_ARE_FATAL would.
 *
 * Extensions (prefixed MPIX_) model what a real machine provides outside
 * MPI: MPIX_Compute charges local computation time to the simulated clock,
 * and MPIX_Report hands a checksum/verdict back to the embedding harness.
 */
#ifndef SP_MPIABI_MPI_H
#define SP_MPIABI_MPI_H

#ifdef __cplusplus
extern "C" {
#endif

/* ---- handles ---------------------------------------------------------- */

typedef int MPI_Comm;
typedef int MPI_Datatype;
typedef int MPI_Op;
typedef int MPI_Request;
typedef long MPI_Aint;

#define MPI_COMM_NULL ((MPI_Comm)0)
#define MPI_COMM_WORLD ((MPI_Comm)1)

#define MPI_REQUEST_NULL ((MPI_Request)0)

/* Predefined datatypes (mapped onto the simulator's element types; all
 * integer types are LP64 widths). */
#define MPI_DATATYPE_NULL ((MPI_Datatype)0)
#define MPI_BYTE ((MPI_Datatype)1)
#define MPI_CHAR ((MPI_Datatype)2)
#define MPI_UNSIGNED_CHAR ((MPI_Datatype)3)
#define MPI_INT ((MPI_Datatype)4)
#define MPI_UNSIGNED ((MPI_Datatype)5)
#define MPI_LONG ((MPI_Datatype)6)
#define MPI_UNSIGNED_LONG ((MPI_Datatype)7)
#define MPI_LONG_LONG ((MPI_Datatype)8)
#define MPI_LONG_LONG_INT MPI_LONG_LONG
#define MPI_UNSIGNED_LONG_LONG ((MPI_Datatype)9)
#define MPI_FLOAT ((MPI_Datatype)10)
#define MPI_DOUBLE ((MPI_Datatype)11)
#define MPI_INT32_T MPI_INT
#define MPI_INT64_T MPI_LONG_LONG
#define MPI_UINT64_T MPI_UNSIGNED_LONG_LONG

/* Predefined reduction operations. MPIX_MAT2X2 is the simulator's
 * non-commutative 2x2 integer matrix product (groups of 4 elements). */
#define MPI_OP_NULL ((MPI_Op)0)
#define MPI_SUM ((MPI_Op)1)
#define MPI_PROD ((MPI_Op)2)
#define MPI_MAX ((MPI_Op)3)
#define MPI_MIN ((MPI_Op)4)
#define MPI_LAND ((MPI_Op)5)
#define MPI_LOR ((MPI_Op)6)
#define MPI_BOR ((MPI_Op)7)
#define MPIX_MAT2X2 ((MPI_Op)8)

/* ---- special values --------------------------------------------------- */

#define MPI_ANY_SOURCE (-1)
#define MPI_ANY_TAG (-1)
#define MPI_PROC_NULL (-2)
#define MPI_UNDEFINED (-32766)
#define MPI_IN_PLACE ((void*)-1)
#define MPI_BSEND_OVERHEAD 32
#define MPI_MAX_ERROR_STRING 64

typedef struct MPI_Status {
  int MPI_SOURCE;
  int MPI_TAG;
  int MPI_ERROR;
  /* Implementation fields (read via MPI_Get_count, not directly). */
  int sp_count_bytes;
  int sp_truncated;
} MPI_Status;

#define MPI_STATUS_IGNORE ((MPI_Status*)0)
#define MPI_STATUSES_IGNORE ((MPI_Status*)0)

/* ---- error codes ------------------------------------------------------ */

#define MPI_SUCCESS 0
#define MPI_ERR_BUFFER 1
#define MPI_ERR_COUNT 2
#define MPI_ERR_TYPE 3
#define MPI_ERR_TAG 4
#define MPI_ERR_COMM 5
#define MPI_ERR_RANK 6
#define MPI_ERR_REQUEST 7
#define MPI_ERR_ROOT 8
#define MPI_ERR_OP 9
#define MPI_ERR_ARG 12
#define MPI_ERR_TRUNCATE 14
#define MPI_ERR_OTHER 15
#define MPI_ERR_IN_STATUS 17
#define MPI_ERR_PENDING 18
#define MPI_ERR_LASTCODE 63

/* ---- environment ------------------------------------------------------ */

int MPI_Init(int* argc, char*** argv);
int MPI_Finalize(void);
int MPI_Initialized(int* flag);
int MPI_Finalized(int* flag);
int MPI_Abort(MPI_Comm comm, int errorcode);
int MPI_Error_string(int errorcode, char* string, int* resultlen);
double MPI_Wtime(void);
double MPI_Wtick(void);

/* ---- communicators ---------------------------------------------------- */

int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
int MPI_Comm_free(MPI_Comm* comm);

/* ---- point-to-point --------------------------------------------------- */

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
             MPI_Comm comm);
int MPI_Ssend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm);
int MPI_Rsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm);
int MPI_Bsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
             MPI_Status* status);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest,
                 int sendtag, void* recvbuf, int recvcount, MPI_Datatype recvtype, int source,
                 int recvtag, MPI_Comm comm, MPI_Status* status);
int MPI_Buffer_attach(void* buffer, int size);
int MPI_Buffer_detach(void* buffer_addr, int* size);

int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Issend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
               MPI_Comm comm, MPI_Request* request);
int MPI_Irsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
               MPI_Comm comm, MPI_Request* request);
int MPI_Ibsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
               MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
              MPI_Request* request);

int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request requests[], MPI_Status statuses[]);
int MPI_Waitany(int count, MPI_Request requests[], int* index, MPI_Status* status);
int MPI_Testall(int count, MPI_Request requests[], int* flag, MPI_Status statuses[]);

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count);

/* Persistent requests. */
int MPI_Send_init(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
                  MPI_Comm comm, MPI_Request* request);
int MPI_Recv_init(void* buf, int count, MPI_Datatype datatype, int source, int tag,
                  MPI_Comm comm, MPI_Request* request);
int MPI_Start(MPI_Request* request);
int MPI_Startall(int count, MPI_Request requests[]);
int MPI_Request_free(MPI_Request* request);

/* ---- derived datatypes ------------------------------------------------ */

int MPI_Type_contiguous(int count, MPI_Datatype oldtype, MPI_Datatype* newtype);
int MPI_Type_vector(int count, int blocklength, int stride, MPI_Datatype oldtype,
                    MPI_Datatype* newtype);
int MPI_Type_create_struct(int count, const int blocklengths[], const MPI_Aint displacements[],
                           const MPI_Datatype types[], MPI_Datatype* newtype);
int MPI_Type_commit(MPI_Datatype* datatype);
int MPI_Type_free(MPI_Datatype* datatype);
int MPI_Type_size(MPI_Datatype datatype, int* size);

/* ---- collectives ------------------------------------------------------ */

int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                  MPI_Op op, MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Gatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                const int recvcounts[], const int displs[], MPI_Datatype recvtype, int root,
                MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Scatterv(const void* sendbuf, const int sendcounts[], const int displs[],
                 MPI_Datatype sendtype, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 int root, MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                 int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Alltoallv(const void* sendbuf, const int sendcounts[], const int sdispls[],
                  MPI_Datatype sendtype, void* recvbuf, const int recvcounts[],
                  const int rdispls[], MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Reduce_scatter_block(const void* sendbuf, void* recvbuf, int recvcount,
                             MPI_Datatype datatype, MPI_Op op, MPI_Comm comm);
int MPI_Scan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
             MPI_Comm comm);
int MPI_Exscan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               MPI_Comm comm);

/* ---- simulator extensions -------------------------------------------- */

/* Charge `nanoseconds` of modelled local computation to the simulated clock
 * (the NAS kernels use this the way real codes burn FLOPs). */
int MPIX_Compute(long long nanoseconds);
/* Report a result checksum + verification verdict to the embedding harness
 * (collected per rank by sp::mpiabi::run_program). */
int MPIX_Report(unsigned long long checksum, int verified);

#ifdef __cplusplus
}
#endif

#endif /* SP_MPIABI_MPI_H */
