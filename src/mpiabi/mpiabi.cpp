// The C MPI_* ABI veneer over sp::mpi, plus the embedding harness
// (DESIGN.md §17). Entry points resolve their calling rank through
// sim::RankThread::current() and the thread_local Process installed by
// run_with_abi(); handles index per-rank tables, so nothing here needs
// locking even though rank fibers interleave mid-call.
#include "mpiabi/mpiabi.hpp"

#include <mpi.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include "mpci/request.hpp"
#include "mpi/derived_datatype.hpp"
#include "sim/rank_thread.hpp"

namespace sp::mpiabi {
namespace {

/// Derived-datatype handles start here; predefined ones are small macros.
constexpr int kDerivedBase = 0x100;
constexpr MPI_Datatype kLastPredefined = MPI_DOUBLE;

struct TypeInfo {
  bool live = false;
  std::shared_ptr<mpi::DerivedDatatype> dd;
  std::size_t elem_bytes = 0;  ///< Packed bytes per element.
};

struct ReqSlot {
  mpi::Request r;
  bool live = false;
  /// MPI_PROC_NULL pseudo-requests complete immediately; no sp request.
  bool pnull = false;
  bool pnull_send = false;
  bool pnull_persistent = false;
  bool pnull_armed = false;
};

struct RankCtx {
  mpi::Mpi* mpi = nullptr;
  bool initialized = false;
  bool finalized = false;
  std::vector<mpi::Comm> comms;  ///< [0] null, [1] world, then dup/split order.
  std::vector<char> comm_live;
  std::vector<ReqSlot> reqs;  ///< [0] reserved for MPI_REQUEST_NULL.
  std::vector<int> req_free;
  std::vector<TypeInfo> dtypes;  ///< Derived types; handle = kDerivedBase + index.
  void* bsend_buf = nullptr;
  int bsend_len = 0;
  RankReport report;
};

struct Process {
  std::vector<RankCtx> ranks;
};

thread_local Process* g_proc = nullptr;

RankCtx* cur() {
  if (g_proc == nullptr) return nullptr;
  sim::RankThread* t = sim::RankThread::current();
  if (t == nullptr) return nullptr;
  const auto id = static_cast<std::size_t>(t->id());
  if (id >= g_proc->ranks.size()) return nullptr;
  return &g_proc->ranks[id];
}

/// Every MPI call (except the query trio) must come from an initialized,
/// not-yet-finalized rank fiber.
RankCtx* enter() {
  RankCtx* c = cur();
  if (c == nullptr || !c->initialized || c->finalized) return nullptr;
  return c;
}

bool base_datatype(MPI_Datatype h, mpi::Datatype* out) {
  switch (h) {
    case MPI_BYTE:
    case MPI_CHAR:
    case MPI_UNSIGNED_CHAR: *out = mpi::Datatype::kByte; return true;
    case MPI_INT:
    case MPI_UNSIGNED: *out = mpi::Datatype::kInt; return true;
    case MPI_LONG:
    case MPI_UNSIGNED_LONG:
    case MPI_LONG_LONG:
    case MPI_UNSIGNED_LONG_LONG: *out = mpi::Datatype::kLong; return true;
    case MPI_FLOAT: *out = mpi::Datatype::kFloat; return true;
    case MPI_DOUBLE: *out = mpi::Datatype::kDouble; return true;
    default: return false;
  }
}

/// Resolve a datatype handle: predefined -> base element type, derived ->
/// the committed DerivedDatatype. Returns false for invalid handles.
struct ResolvedType {
  bool derived = false;
  mpi::Datatype base = mpi::Datatype::kByte;
  const mpi::DerivedDatatype* dd = nullptr;
  std::size_t elem_bytes = 0;
};

bool resolve_type(RankCtx& c, MPI_Datatype h, ResolvedType* out) {
  if (h >= MPI_BYTE && h <= kLastPredefined) {
    if (!base_datatype(h, &out->base)) return false;
    out->derived = false;
    out->elem_bytes = mpi::datatype_size(out->base);
    return true;
  }
  const int idx = h - kDerivedBase;
  if (idx < 0 || static_cast<std::size_t>(idx) >= c.dtypes.size()) return false;
  const TypeInfo& t = c.dtypes[static_cast<std::size_t>(idx)];
  if (!t.live) return false;
  out->derived = true;
  out->dd = t.dd.get();
  out->elem_bytes = t.elem_bytes;
  return true;
}

bool op_of(MPI_Op h, mpi::Op* out) {
  switch (h) {
    case MPI_SUM: *out = mpi::Op::kSum; return true;
    case MPI_PROD: *out = mpi::Op::kProd; return true;
    case MPI_MAX: *out = mpi::Op::kMax; return true;
    case MPI_MIN: *out = mpi::Op::kMin; return true;
    case MPI_LAND: *out = mpi::Op::kLand; return true;
    case MPI_LOR: *out = mpi::Op::kLor; return true;
    case MPI_BOR: *out = mpi::Op::kBor; return true;
    case MPIX_MAT2X2: *out = mpi::Op::kMat2x2; return true;
    default: return false;
  }
}

mpi::Comm* comm_of(RankCtx& c, MPI_Comm h) {
  if (h <= MPI_COMM_NULL || static_cast<std::size_t>(h) >= c.comms.size()) return nullptr;
  if (!c.comm_live[static_cast<std::size_t>(h)]) return nullptr;
  return &c.comms[static_cast<std::size_t>(h)];
}

int check_peer(const mpi::Comm& cm, int peer, bool allow_any) {
  if (peer == MPI_PROC_NULL) return MPI_SUCCESS;
  if (allow_any && peer == MPI_ANY_SOURCE) return MPI_SUCCESS;
  if (peer < 0 || peer >= cm.size()) return MPI_ERR_RANK;
  return MPI_SUCCESS;
}

int check_tag(int tag, bool allow_any) {
  if (allow_any && tag == MPI_ANY_TAG) return MPI_SUCCESS;
  if (tag < 0 || tag >= mpi::kCollTagBase) return MPI_ERR_TAG;
  return MPI_SUCCESS;
}

void fill_status(MPI_Status* out, const mpi::Status& st) {
  if (out == MPI_STATUS_IGNORE) return;
  out->MPI_SOURCE = st.source;
  out->MPI_TAG = st.tag;
  out->sp_count_bytes = static_cast<int>(st.len);
  out->sp_truncated = st.truncated ? 1 : 0;
  out->MPI_ERROR = st.truncated ? MPI_ERR_TRUNCATE : MPI_SUCCESS;
}

void fill_empty_status(MPI_Status* out) { fill_status(out, mpi::Status{}); }

void fill_pnull_status(MPI_Status* out) {
  if (out == MPI_STATUS_IGNORE) return;
  out->MPI_SOURCE = MPI_PROC_NULL;
  out->MPI_TAG = MPI_ANY_TAG;
  out->sp_count_bytes = 0;
  out->sp_truncated = 0;
  out->MPI_ERROR = MPI_SUCCESS;
}

int alloc_slot(RankCtx& c) {
  if (!c.req_free.empty()) {
    const int h = c.req_free.back();
    c.req_free.pop_back();
    return h;
  }
  c.reqs.emplace_back();
  return static_cast<int>(c.reqs.size()) - 1;
}

void free_slot(RankCtx& c, int h) {
  ReqSlot& s = c.reqs[static_cast<std::size_t>(h)];
  s = ReqSlot{};
  c.req_free.push_back(h);
}

ReqSlot* slot_of(RankCtx& c, MPI_Request h) {
  if (h <= MPI_REQUEST_NULL || static_cast<std::size_t>(h) >= c.reqs.size()) return nullptr;
  ReqSlot& s = c.reqs[static_cast<std::size_t>(h)];
  return s.live ? &s : nullptr;
}

int make_pnull_slot(RankCtx& c, bool is_send, bool persistent, MPI_Request* request) {
  const int h = alloc_slot(c);
  ReqSlot& s = c.reqs[static_cast<std::size_t>(h)];
  s.live = true;
  s.pnull = true;
  s.pnull_send = is_send;
  s.pnull_persistent = persistent;
  s.pnull_armed = !persistent;
  *request = h;
  return MPI_SUCCESS;
}

/// Simulator errors that a conforming program can observe (e.g. bsend pool
/// exhaustion) surface as return codes; everything else stays fatal.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const mpci::FatalMpiError&) {
    return MPI_ERR_OTHER;
  } catch (const std::invalid_argument&) {
    return MPI_ERR_ARG;
  }
}

/// Shared validation + dispatch for the four blocking send modes.
int do_send(mpci::Mode mode, const void* buf, int count, MPI_Datatype datatype, int dest,
            int tag, MPI_Comm comm) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  if (int e = check_peer(*cm, dest, /*allow_any=*/false); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/false); e != MPI_SUCCESS) return e;
  if (dest == MPI_PROC_NULL) return MPI_SUCCESS;
  if (rt.derived && mode != mpci::Mode::kStandard) return MPI_ERR_TYPE;
  return guarded([&] {
    const auto n = static_cast<std::size_t>(count);
    if (rt.derived) {
      c->mpi->send(buf, n, *rt.dd, dest, tag, *cm);
      return MPI_SUCCESS;
    }
    switch (mode) {
      case mpci::Mode::kStandard: c->mpi->send(buf, n, rt.base, dest, tag, *cm); break;
      case mpci::Mode::kSync: c->mpi->ssend(buf, n, rt.base, dest, tag, *cm); break;
      case mpci::Mode::kReady: c->mpi->rsend(buf, n, rt.base, dest, tag, *cm); break;
      case mpci::Mode::kBuffered: c->mpi->bsend(buf, n, rt.base, dest, tag, *cm); break;
    }
    return MPI_SUCCESS;
  });
}

/// Shared validation + dispatch for the nonblocking send modes.
int do_isend(mpci::Mode mode, const void* buf, int count, MPI_Datatype datatype, int dest,
             int tag, MPI_Comm comm, MPI_Request* request) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr) return MPI_ERR_REQUEST;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  if (int e = check_peer(*cm, dest, /*allow_any=*/false); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/false); e != MPI_SUCCESS) return e;
  if (dest == MPI_PROC_NULL) {
    return make_pnull_slot(*c, /*is_send=*/true, /*persistent=*/false, request);
  }
  if (rt.derived && mode != mpci::Mode::kStandard) return MPI_ERR_TYPE;
  return guarded([&] {
    const auto n = static_cast<std::size_t>(count);
    const int h = alloc_slot(*c);
    ReqSlot& s = c->reqs[static_cast<std::size_t>(h)];
    if (rt.derived) {
      s.r = c->mpi->isend(buf, n, *rt.dd, dest, tag, *cm);
    } else {
      switch (mode) {
        case mpci::Mode::kStandard: s.r = c->mpi->isend(buf, n, rt.base, dest, tag, *cm); break;
        case mpci::Mode::kSync: s.r = c->mpi->issend(buf, n, rt.base, dest, tag, *cm); break;
        case mpci::Mode::kReady: s.r = c->mpi->irsend(buf, n, rt.base, dest, tag, *cm); break;
        case mpci::Mode::kBuffered:
          s.r = c->mpi->ibsend(buf, n, rt.base, dest, tag, *cm);
          break;
      }
    }
    s.live = true;
    *request = h;
    return MPI_SUCCESS;
  });
}

/// Completes one live slot via Mpi::wait(); fills status, retires the handle
/// (persistent handles stay allocated, per MPI).
int wait_slot(RankCtx& c, MPI_Request* request, MPI_Status* status) {
  ReqSlot* s = slot_of(c, *request);
  if (s == nullptr) return MPI_ERR_REQUEST;
  if (s->pnull) {
    if (s->pnull_send) {
      fill_empty_status(status);
    } else {
      fill_pnull_status(status);
    }
    if (s->pnull_persistent) {
      s->pnull_armed = false;
    } else {
      free_slot(c, *request);
      *request = MPI_REQUEST_NULL;
    }
    return MPI_SUCCESS;
  }
  return guarded([&] {
    mpi::Status st;
    c.mpi->wait(s->r, &st);
    fill_status(status, st);
    const bool truncated = st.truncated;
    if (!s->r.persistent()) {
      free_slot(c, *request);
      *request = MPI_REQUEST_NULL;
    }
    return truncated ? MPI_ERR_TRUNCATE : MPI_SUCCESS;
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Embedding harness
// ---------------------------------------------------------------------------

RunResult run_with_abi(mpi::Machine& m, const std::function<int(int)>& body) {
  Process p;
  p.ranks.resize(static_cast<std::size_t>(m.num_tasks()));
  for (int t = 0; t < m.num_tasks(); ++t) {
    RankCtx& c = p.ranks[static_cast<std::size_t>(t)];
    c.mpi = &m.mpi(t);
    c.comms.resize(2);
    c.comms[1] = c.mpi->world();
    c.comm_live = {0, 1};
    c.reqs.resize(1);  // slot 0 == MPI_REQUEST_NULL
  }
  Process* prev = g_proc;
  g_proc = &p;
  try {
    m.run([&](mpi::Mpi& mpi) {
      const int rank = mpi.world().rank();
      p.ranks[static_cast<std::size_t>(rank)].report.exit_code = body(rank);
    });
  } catch (...) {
    g_proc = prev;
    throw;
  }
  g_proc = prev;
  RunResult res;
  res.elapsed = m.elapsed();
  res.ranks.reserve(p.ranks.size());
  for (auto& c : p.ranks) res.ranks.push_back(c.report);
  return res;
}

RunResult run_program(mpi::Machine& m, MainFn program_main,
                      const std::vector<std::string>& args) {
  return run_with_abi(m, [program_main, &args](int) {
    // Per-rank mutable argv on the fiber stack, as a real main expects.
    std::vector<std::string> store;
    store.reserve(args.size() + 1);
    store.emplace_back("mpiapp");
    for (const auto& a : args) store.push_back(a);
    std::vector<char*> argv;
    argv.reserve(store.size() + 1);
    for (auto& s : store) argv.push_back(s.data());
    argv.push_back(nullptr);
    return program_main(static_cast<int>(store.size()), argv.data());
  });
}

}  // namespace sp::mpiabi

// ---------------------------------------------------------------------------
// C ABI entry points
// ---------------------------------------------------------------------------

using namespace sp;
using namespace sp::mpiabi;
// The anonymous-namespace helpers above are visible to these definitions
// because they share this translation unit.

extern "C" {

// ---- environment ----------------------------------------------------------

int MPI_Init(int* argc, char*** argv) {
  (void)argc;
  (void)argv;
  RankCtx* c = cur();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (c->initialized) return MPI_ERR_OTHER;
  c->initialized = true;
  return MPI_SUCCESS;
}

int MPI_Finalize(void) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  c->finalized = true;
  return MPI_SUCCESS;
}

int MPI_Initialized(int* flag) {
  if (flag == nullptr) return MPI_ERR_ARG;
  RankCtx* c = cur();
  *flag = (c != nullptr && c->initialized) ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Finalized(int* flag) {
  if (flag == nullptr) return MPI_ERR_ARG;
  RankCtx* c = cur();
  *flag = (c != nullptr && c->finalized) ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Abort(MPI_Comm comm, int errorcode) {
  (void)comm;
  // Terminates the whole simulated job: the exception unwinds this rank's
  // fiber and Machine::run() rethrows it to the embedding caller.
  char msg[64];
  std::snprintf(msg, sizeof msg, "MPI_Abort(%d)", errorcode);
  throw mpci::FatalMpiError(msg);
}

int MPI_Error_string(int errorcode, char* string, int* resultlen) {
  if (string == nullptr || resultlen == nullptr) return MPI_ERR_ARG;
  const char* s = "unknown MPI error";
  switch (errorcode) {
    case MPI_SUCCESS: s = "no error"; break;
    case MPI_ERR_BUFFER: s = "invalid buffer"; break;
    case MPI_ERR_COUNT: s = "invalid count"; break;
    case MPI_ERR_TYPE: s = "invalid datatype"; break;
    case MPI_ERR_TAG: s = "invalid tag"; break;
    case MPI_ERR_COMM: s = "invalid communicator"; break;
    case MPI_ERR_RANK: s = "invalid rank"; break;
    case MPI_ERR_REQUEST: s = "invalid request"; break;
    case MPI_ERR_ROOT: s = "invalid root"; break;
    case MPI_ERR_OP: s = "invalid reduction operation"; break;
    case MPI_ERR_ARG: s = "invalid argument"; break;
    case MPI_ERR_TRUNCATE: s = "message truncated on receive"; break;
    case MPI_ERR_OTHER: s = "other MPI error"; break;
    case MPI_ERR_IN_STATUS: s = "error code in status"; break;
    default: break;
  }
  std::snprintf(string, MPI_MAX_ERROR_STRING, "%s", s);
  *resultlen = static_cast<int>(std::strlen(string));
  return MPI_SUCCESS;
}

double MPI_Wtime(void) {
  RankCtx* c = cur();
  return c == nullptr ? 0.0 : c->mpi->wtime();
}

double MPI_Wtick(void) { return 1e-9; }

// ---- communicators --------------------------------------------------------

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (rank == nullptr) return MPI_ERR_ARG;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  *rank = cm->rank();
  return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (size == nullptr) return MPI_ERR_ARG;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  *size = cm->size();
  return MPI_SUCCESS;
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (newcomm == nullptr) return MPI_ERR_ARG;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  return guarded([&] {
    c->comms.push_back(c->mpi->dup(*cm));
    c->comm_live.push_back(1);
    *newcomm = static_cast<MPI_Comm>(c->comms.size()) - 1;
    return MPI_SUCCESS;
  });
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (newcomm == nullptr) return MPI_ERR_ARG;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (color < 0 && color != MPI_UNDEFINED) return MPI_ERR_ARG;
  return guarded([&] {
    // MPI_UNDEFINED ranks still participate in the underlying allgather (the
    // split is collective) but discard the resulting group.
    mpi::Comm split = c->mpi->split(*cm, color, key);
    if (color == MPI_UNDEFINED) {
      *newcomm = MPI_COMM_NULL;
      return MPI_SUCCESS;
    }
    c->comms.push_back(std::move(split));
    c->comm_live.push_back(1);
    *newcomm = static_cast<MPI_Comm>(c->comms.size()) - 1;
    return MPI_SUCCESS;
  });
}

int MPI_Comm_free(MPI_Comm* comm) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (comm == nullptr) return MPI_ERR_ARG;
  if (*comm == MPI_COMM_WORLD || comm_of(*c, *comm) == nullptr) return MPI_ERR_COMM;
  c->comm_live[static_cast<std::size_t>(*comm)] = 0;
  *comm = MPI_COMM_NULL;
  return MPI_SUCCESS;
}

// ---- blocking point-to-point ----------------------------------------------

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
             MPI_Comm comm) {
  return do_send(mpci::Mode::kStandard, buf, count, datatype, dest, tag, comm);
}

int MPI_Ssend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm) {
  return do_send(mpci::Mode::kSync, buf, count, datatype, dest, tag, comm);
}

int MPI_Rsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm) {
  return do_send(mpci::Mode::kReady, buf, count, datatype, dest, tag, comm);
}

int MPI_Bsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm) {
  return do_send(mpci::Mode::kBuffered, buf, count, datatype, dest, tag, comm);
}

int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
             MPI_Status* status) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  if (int e = check_peer(*cm, source, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (source == MPI_PROC_NULL) {
    fill_pnull_status(status);
    return MPI_SUCCESS;
  }
  return guarded([&] {
    const auto n = static_cast<std::size_t>(count);
    mpi::Status st;
    if (rt.derived) {
      c->mpi->recv(buf, n, *rt.dd, source, tag, *cm, &st);
    } else {
      c->mpi->recv(buf, n, rt.base, source, tag, *cm, &st);
    }
    fill_status(status, st);
    return st.truncated ? MPI_ERR_TRUNCATE : MPI_SUCCESS;
  });
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest,
                 int sendtag, void* recvbuf, int recvcount, MPI_Datatype recvtype, int source,
                 int recvtag, MPI_Comm comm, MPI_Status* status) {
  // Composed from the veneer's own nonblocking pieces so mixed datatypes and
  // MPI_PROC_NULL on either side fall out naturally.
  MPI_Request r = MPI_REQUEST_NULL;
  int e = MPI_Irecv(recvbuf, recvcount, recvtype, source, recvtag, comm, &r);
  if (e != MPI_SUCCESS) return e;
  e = MPI_Send(sendbuf, sendcount, sendtype, dest, sendtag, comm);
  if (e != MPI_SUCCESS) return e;
  return MPI_Wait(&r, status);
}

int MPI_Buffer_attach(void* buffer, int size) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (buffer == nullptr || size < 0) return MPI_ERR_BUFFER;
  return guarded([&] {
    c->mpi->buffer_attach(buffer, static_cast<std::size_t>(size));
    c->bsend_buf = buffer;
    c->bsend_len = size;
    return MPI_SUCCESS;
  });
}

int MPI_Buffer_detach(void* buffer_addr, int* size) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  return guarded([&] {
    void* buf = c->mpi->buffer_detach();
    if (buffer_addr != nullptr) *static_cast<void**>(buffer_addr) = buf;
    if (size != nullptr) *size = c->bsend_len;
    c->bsend_buf = nullptr;
    c->bsend_len = 0;
    return MPI_SUCCESS;
  });
}

// ---- nonblocking point-to-point -------------------------------------------

int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm, MPI_Request* request) {
  return do_isend(mpci::Mode::kStandard, buf, count, datatype, dest, tag, comm, request);
}

int MPI_Issend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
               MPI_Comm comm, MPI_Request* request) {
  return do_isend(mpci::Mode::kSync, buf, count, datatype, dest, tag, comm, request);
}

int MPI_Irsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
               MPI_Comm comm, MPI_Request* request) {
  return do_isend(mpci::Mode::kReady, buf, count, datatype, dest, tag, comm, request);
}

int MPI_Ibsend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
               MPI_Comm comm, MPI_Request* request) {
  return do_isend(mpci::Mode::kBuffered, buf, count, datatype, dest, tag, comm, request);
}

int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
              MPI_Request* request) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr) return MPI_ERR_REQUEST;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  if (int e = check_peer(*cm, source, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (source == MPI_PROC_NULL) {
    return make_pnull_slot(*c, /*is_send=*/false, /*persistent=*/false, request);
  }
  return guarded([&] {
    const auto n = static_cast<std::size_t>(count);
    const int h = alloc_slot(*c);
    ReqSlot& s = c->reqs[static_cast<std::size_t>(h)];
    if (rt.derived) {
      s.r = c->mpi->irecv(buf, n, *rt.dd, source, tag, *cm);
    } else {
      s.r = c->mpi->irecv(buf, n, rt.base, source, tag, *cm);
    }
    s.live = true;
    *request = h;
    return MPI_SUCCESS;
  });
}

// ---- completion -----------------------------------------------------------

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr) return MPI_ERR_REQUEST;
  if (*request == MPI_REQUEST_NULL) {
    fill_empty_status(status);
    return MPI_SUCCESS;
  }
  return wait_slot(*c, request, status);
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr || flag == nullptr) return MPI_ERR_REQUEST;
  if (*request == MPI_REQUEST_NULL) {
    *flag = 1;
    fill_empty_status(status);
    return MPI_SUCCESS;
  }
  ReqSlot* s = slot_of(*c, *request);
  if (s == nullptr) return MPI_ERR_REQUEST;
  if (s->pnull) {
    *flag = 1;
    return wait_slot(*c, request, status);
  }
  return guarded([&] {
    mpi::Status st;
    if (!c->mpi->test(s->r, &st)) {
      *flag = 0;
      return MPI_SUCCESS;
    }
    *flag = 1;
    fill_status(status, st);
    const bool truncated = st.truncated;
    if (!s->r.persistent()) {
      free_slot(*c, *request);
      *request = MPI_REQUEST_NULL;
    }
    return truncated ? MPI_ERR_TRUNCATE : MPI_SUCCESS;
  });
}

int MPI_Waitall(int count, MPI_Request requests[], MPI_Status statuses[]) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (count < 0) return MPI_ERR_COUNT;
  if (count > 0 && requests == nullptr) return MPI_ERR_REQUEST;
  bool any_error = false;
  for (int i = 0; i < count; ++i) {
    MPI_Status* st = statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[i];
    const int e = MPI_Wait(&requests[i], st);
    if (e != MPI_SUCCESS) {
      any_error = true;
      if (st != MPI_STATUS_IGNORE) st->MPI_ERROR = e;
    }
  }
  return any_error ? MPI_ERR_IN_STATUS : MPI_SUCCESS;
}

int MPI_Waitany(int count, MPI_Request requests[], int* index, MPI_Status* status) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (count < 0) return MPI_ERR_COUNT;
  if (index == nullptr) return MPI_ERR_ARG;
  if (count > 0 && requests == nullptr) return MPI_ERR_REQUEST;
  // PROC_NULL pseudo-requests are already complete.
  for (int i = 0; i < count; ++i) {
    if (requests[i] == MPI_REQUEST_NULL) continue;
    ReqSlot* s = slot_of(*c, requests[i]);
    if (s == nullptr) return MPI_ERR_REQUEST;
    if (s->pnull && (!s->pnull_persistent || s->pnull_armed)) {
      *index = i;
      return wait_slot(*c, &requests[i], status);
    }
  }
  // Move the live sp requests into a dense array for Mpi::waitany; moved-from
  // slots keep their handles, and the underlying Send/RecvReqs are heap-owned
  // so channel pointers stay valid across the moves.
  std::vector<mpi::Request> tmp(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (requests[i] == MPI_REQUEST_NULL) continue;
    ReqSlot* s = slot_of(*c, requests[i]);
    if (s != nullptr && !s->pnull) tmp[static_cast<std::size_t>(i)] = std::move(s->r);
  }
  return guarded([&] {
    mpi::Status st;
    const std::size_t done = c->mpi->waitany(tmp.data(), static_cast<std::size_t>(count), &st);
    for (int i = 0; i < count; ++i) {
      if (requests[i] == MPI_REQUEST_NULL) continue;
      ReqSlot* s = slot_of(*c, requests[i]);
      if (s != nullptr && !s->pnull) s->r = std::move(tmp[static_cast<std::size_t>(i)]);
    }
    if (done == static_cast<std::size_t>(count)) {
      *index = MPI_UNDEFINED;
      fill_empty_status(status);
      return MPI_SUCCESS;
    }
    const int i = static_cast<int>(done);
    *index = i;
    fill_status(status, st);
    const bool truncated = st.truncated;
    ReqSlot* s = slot_of(*c, requests[i]);
    if (s != nullptr && !s->r.persistent()) {
      free_slot(*c, requests[i]);
      requests[i] = MPI_REQUEST_NULL;
    }
    return truncated ? MPI_ERR_TRUNCATE : MPI_SUCCESS;
  });
}

int MPI_Testall(int count, MPI_Request requests[], int* flag, MPI_Status statuses[]) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (count < 0) return MPI_ERR_COUNT;
  if (flag == nullptr) return MPI_ERR_ARG;
  if (count > 0 && requests == nullptr) return MPI_ERR_REQUEST;
  std::vector<mpi::Request> tmp(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (requests[i] == MPI_REQUEST_NULL) continue;
    ReqSlot* s = slot_of(*c, requests[i]);
    if (s == nullptr) return MPI_ERR_REQUEST;
    if (!s->pnull) tmp[static_cast<std::size_t>(i)] = std::move(s->r);
  }
  auto restore = [&] {
    for (int i = 0; i < count; ++i) {
      if (requests[i] == MPI_REQUEST_NULL) continue;
      ReqSlot* s = slot_of(*c, requests[i]);
      if (s != nullptr && !s->pnull) s->r = std::move(tmp[static_cast<std::size_t>(i)]);
    }
  };
  return guarded([&] {
    std::vector<mpi::Status> sts(static_cast<std::size_t>(count));
    if (!c->mpi->testall(tmp.data(), static_cast<std::size_t>(count), sts.data())) {
      restore();
      *flag = 0;
      return MPI_SUCCESS;
    }
    restore();
    *flag = 1;
    bool any_error = false;
    for (int i = 0; i < count; ++i) {
      MPI_Status* st = statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[i];
      if (requests[i] == MPI_REQUEST_NULL) {
        fill_empty_status(st);
        continue;
      }
      ReqSlot* s = slot_of(*c, requests[i]);
      if (s == nullptr) continue;
      if (s->pnull) {
        wait_slot(*c, &requests[i], st);
        continue;
      }
      fill_status(st, sts[static_cast<std::size_t>(i)]);
      if (sts[static_cast<std::size_t>(i)].truncated) any_error = true;
      if (!s->r.persistent()) {
        free_slot(*c, requests[i]);
        requests[i] = MPI_REQUEST_NULL;
      }
    }
    return any_error ? MPI_ERR_IN_STATUS : MPI_SUCCESS;
  });
}

// ---- probe ----------------------------------------------------------------

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (int e = check_peer(*cm, source, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (source == MPI_PROC_NULL) {
    fill_pnull_status(status);
    return MPI_SUCCESS;
  }
  return guarded([&] {
    mpi::Status st;
    c->mpi->probe(source, tag, *cm, &st);
    fill_status(status, st);
    return MPI_SUCCESS;
  });
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (flag == nullptr) return MPI_ERR_ARG;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (int e = check_peer(*cm, source, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (source == MPI_PROC_NULL) {
    *flag = 1;
    fill_pnull_status(status);
    return MPI_SUCCESS;
  }
  return guarded([&] {
    mpi::Status st;
    *flag = c->mpi->iprobe(source, tag, *cm, &st) ? 1 : 0;
    if (*flag != 0) fill_status(status, st);
    return MPI_SUCCESS;
  });
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (status == nullptr || count == nullptr) return MPI_ERR_ARG;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  const auto bytes = static_cast<std::size_t>(status->sp_count_bytes);
  const std::size_t esz = rt.derived ? rt.elem_bytes : mpi::datatype_size(rt.base);
  if (esz == 0 || bytes % esz != 0) {
    *count = MPI_UNDEFINED;  // not a whole number of elements
    return MPI_SUCCESS;
  }
  *count = static_cast<int>(bytes / esz);
  return MPI_SUCCESS;
}

// ---- persistent requests ---------------------------------------------------

int MPI_Send_init(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
                  MPI_Comm comm, MPI_Request* request) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr) return MPI_ERR_REQUEST;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  if (rt.derived) return MPI_ERR_TYPE;
  if (int e = check_peer(*cm, dest, /*allow_any=*/false); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/false); e != MPI_SUCCESS) return e;
  if (dest == MPI_PROC_NULL) {
    return make_pnull_slot(*c, /*is_send=*/true, /*persistent=*/true, request);
  }
  const int h = alloc_slot(*c);
  ReqSlot& s = c->reqs[static_cast<std::size_t>(h)];
  s.r = c->mpi->send_init(buf, static_cast<std::size_t>(count), rt.base, dest, tag, *cm);
  s.live = true;
  *request = h;
  return MPI_SUCCESS;
}

int MPI_Recv_init(void* buf, int count, MPI_Datatype datatype, int source, int tag,
                  MPI_Comm comm, MPI_Request* request) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr) return MPI_ERR_REQUEST;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  if (rt.derived) return MPI_ERR_TYPE;
  if (int e = check_peer(*cm, source, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (int e = check_tag(tag, /*allow_any=*/true); e != MPI_SUCCESS) return e;
  if (source == MPI_PROC_NULL) {
    return make_pnull_slot(*c, /*is_send=*/false, /*persistent=*/true, request);
  }
  const int h = alloc_slot(*c);
  ReqSlot& s = c->reqs[static_cast<std::size_t>(h)];
  s.r = c->mpi->recv_init(buf, static_cast<std::size_t>(count), rt.base, source, tag, *cm);
  s.live = true;
  *request = h;
  return MPI_SUCCESS;
}

int MPI_Start(MPI_Request* request) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr) return MPI_ERR_REQUEST;
  ReqSlot* s = slot_of(*c, *request);
  if (s == nullptr) return MPI_ERR_REQUEST;
  if (s->pnull) {
    if (!s->pnull_persistent || s->pnull_armed) return MPI_ERR_REQUEST;
    s->pnull_armed = true;
    return MPI_SUCCESS;
  }
  if (!s->r.persistent()) return MPI_ERR_REQUEST;
  return guarded([&] {
    c->mpi->start(s->r);
    return MPI_SUCCESS;
  });
}

int MPI_Startall(int count, MPI_Request requests[]) {
  if (count < 0) return MPI_ERR_COUNT;
  if (count > 0 && requests == nullptr) return MPI_ERR_REQUEST;
  for (int i = 0; i < count; ++i) {
    if (const int e = MPI_Start(&requests[i]); e != MPI_SUCCESS) return e;
  }
  return MPI_SUCCESS;
}

int MPI_Request_free(MPI_Request* request) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (request == nullptr) return MPI_ERR_REQUEST;
  if (*request == MPI_REQUEST_NULL) return MPI_SUCCESS;
  ReqSlot* s = slot_of(*c, *request);
  if (s == nullptr) return MPI_ERR_REQUEST;
  // Only inactive requests may be freed here (freeing in-flight operations
  // is legal MPI but not supported by the simulator's request model).
  if (!s->pnull && s->r.valid()) return MPI_ERR_REQUEST;
  if (s->pnull && s->pnull_armed && !s->pnull_persistent) return MPI_ERR_REQUEST;
  free_slot(*c, *request);
  *request = MPI_REQUEST_NULL;
  return MPI_SUCCESS;
}

// ---- derived datatypes ------------------------------------------------------

}  // extern "C"

namespace {

int install_type(RankCtx& c, mpi::DerivedDatatype dd, std::size_t elem_bytes,
                 MPI_Datatype* newtype) {
  TypeInfo t;
  t.live = true;
  t.dd = std::make_shared<mpi::DerivedDatatype>(std::move(dd));
  t.elem_bytes = elem_bytes;
  c.dtypes.push_back(std::move(t));
  *newtype = kDerivedBase + static_cast<int>(c.dtypes.size()) - 1;
  return MPI_SUCCESS;
}

}  // namespace

extern "C" {

int MPI_Type_contiguous(int count, MPI_Datatype oldtype, MPI_Datatype* newtype) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (newtype == nullptr) return MPI_ERR_ARG;
  if (count < 0) return MPI_ERR_COUNT;
  mpi::Datatype base;
  if (!base_datatype(oldtype, &base)) return MPI_ERR_TYPE;
  auto dd = mpi::DerivedDatatype::contiguous(static_cast<std::size_t>(count), base);
  const std::size_t bytes = dd.packed_bytes();
  return install_type(*c, std::move(dd), bytes, newtype);
}

int MPI_Type_vector(int count, int blocklength, int stride, MPI_Datatype oldtype,
                    MPI_Datatype* newtype) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (newtype == nullptr) return MPI_ERR_ARG;
  if (count < 0 || blocklength < 0) return MPI_ERR_COUNT;
  if (stride < 0) return MPI_ERR_ARG;  // negative strides unsupported
  mpi::Datatype base;
  if (!base_datatype(oldtype, &base)) return MPI_ERR_TYPE;
  auto dd = mpi::DerivedDatatype::vector(static_cast<std::size_t>(count),
                                         static_cast<std::size_t>(blocklength),
                                         static_cast<std::size_t>(stride), base);
  const std::size_t bytes = dd.packed_bytes();
  return install_type(*c, std::move(dd), bytes, newtype);
}

int MPI_Type_create_struct(int count, const int blocklengths[], const MPI_Aint displacements[],
                           const MPI_Datatype types[], MPI_Datatype* newtype) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (newtype == nullptr) return MPI_ERR_ARG;
  if (count < 0) return MPI_ERR_COUNT;
  if (count > 0 && (blocklengths == nullptr || displacements == nullptr || types == nullptr)) {
    return MPI_ERR_ARG;
  }
  // Flatten to byte runs: pack/unpack only move bytes, so heterogeneous
  // member types reduce to (byte displacement, byte length) pairs.
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  runs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (blocklengths[i] < 0) return MPI_ERR_COUNT;
    if (displacements[i] < 0) return MPI_ERR_ARG;
    mpi::Datatype base;
    if (!base_datatype(types[i], &base)) return MPI_ERR_TYPE;
    runs.emplace_back(static_cast<std::size_t>(displacements[i]),
                      static_cast<std::size_t>(blocklengths[i]) * mpi::datatype_size(base));
  }
  auto dd = mpi::DerivedDatatype::indexed(runs, mpi::Datatype::kByte);
  const std::size_t bytes = dd.packed_bytes();
  return install_type(*c, std::move(dd), bytes, newtype);
}

int MPI_Type_commit(MPI_Datatype* datatype) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (datatype == nullptr) return MPI_ERR_ARG;
  ResolvedType rt;
  if (!resolve_type(*c, *datatype, &rt)) return MPI_ERR_TYPE;
  return MPI_SUCCESS;  // types are usable from construction
}

int MPI_Type_free(MPI_Datatype* datatype) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (datatype == nullptr) return MPI_ERR_ARG;
  const int idx = *datatype - kDerivedBase;
  if (idx < 0 || static_cast<std::size_t>(idx) >= c->dtypes.size() ||
      !c->dtypes[static_cast<std::size_t>(idx)].live) {
    return MPI_ERR_TYPE;
  }
  c->dtypes[static_cast<std::size_t>(idx)].live = false;
  c->dtypes[static_cast<std::size_t>(idx)].dd.reset();
  *datatype = MPI_DATATYPE_NULL;
  return MPI_SUCCESS;
}

int MPI_Type_size(MPI_Datatype datatype, int* size) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (size == nullptr) return MPI_ERR_ARG;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  *size = static_cast<int>(rt.derived ? rt.elem_bytes : mpi::datatype_size(rt.base));
  return MPI_SUCCESS;
}

// ---- collectives ------------------------------------------------------------

}  // extern "C"

namespace {

/// Common validation for the collectives: live comm, predefined datatype,
/// non-negative count. Derived types are only supported on MPI_Bcast.
int coll_enter(RankCtx** c, MPI_Comm comm, mpi::Comm** cm, MPI_Datatype datatype,
               mpi::Datatype* d, int count) {
  *c = enter();
  if (*c == nullptr) return MPI_ERR_OTHER;
  *cm = comm_of(**c, comm);
  if (*cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  if (!base_datatype(datatype, d)) return MPI_ERR_TYPE;
  return MPI_SUCCESS;
}

int check_root(const mpi::Comm& cm, int root) {
  return (root < 0 || root >= cm.size()) ? MPI_ERR_ROOT : MPI_SUCCESS;
}

int check_op(MPI_Op op, int count, mpi::Op* out) {
  if (!op_of(op, out)) return MPI_ERR_OP;
  if (*out == mpi::Op::kMat2x2 && count % 4 != 0) return MPI_ERR_COUNT;
  return MPI_SUCCESS;
}

/// The fixed-count collectives require matching type signatures on both
/// sides; the veneer enforces handle + count equality, which is what every
/// conforming SPMD kernel passes anyway.
int check_symmetric(MPI_Datatype sendtype, int sendcount, MPI_Datatype recvtype,
                    int recvcount) {
  if (sendtype != recvtype) return MPI_ERR_TYPE;
  if (sendcount != recvcount) return MPI_ERR_COUNT;
  return MPI_SUCCESS;
}

}  // namespace

extern "C" {

int MPI_Barrier(MPI_Comm comm) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  return guarded([&] {
    c->mpi->barrier(*cm);
    return MPI_SUCCESS;
  });
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  mpi::Comm* cm = comm_of(*c, comm);
  if (cm == nullptr) return MPI_ERR_COMM;
  if (count < 0) return MPI_ERR_COUNT;
  ResolvedType rt;
  if (!resolve_type(*c, datatype, &rt)) return MPI_ERR_TYPE;
  if (int e = check_root(*cm, root); e != MPI_SUCCESS) return e;
  return guarded([&] {
    if (rt.derived) {
      c->mpi->bcast(buffer, static_cast<std::size_t>(count), *rt.dd, root, *cm);
    } else {
      c->mpi->bcast(buffer, static_cast<std::size_t>(count), rt.base, root, *cm);
    }
    return MPI_SUCCESS;
  });
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               int root, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, datatype, &d, count); e != MPI_SUCCESS) return e;
  if (int e = check_root(*cm, root); e != MPI_SUCCESS) return e;
  mpi::Op o;
  if (int e = check_op(op, count, &o); e != MPI_SUCCESS) return e;
  return guarded([&] {
    const auto n = static_cast<std::size_t>(count);
    if (sendbuf == MPI_IN_PLACE) {
      std::vector<std::byte> tmp(n * mpi::datatype_size(d));
      if (!tmp.empty()) std::memcpy(tmp.data(), recvbuf, tmp.size());
      c->mpi->reduce(tmp.data(), recvbuf, n, d, o, root, *cm);
    } else {
      c->mpi->reduce(sendbuf, recvbuf, n, d, o, root, *cm);
    }
    return MPI_SUCCESS;
  });
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                  MPI_Op op, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, datatype, &d, count); e != MPI_SUCCESS) return e;
  mpi::Op o;
  if (int e = check_op(op, count, &o); e != MPI_SUCCESS) return e;
  return guarded([&] {
    const auto n = static_cast<std::size_t>(count);
    if (sendbuf == MPI_IN_PLACE) {
      std::vector<std::byte> tmp(n * mpi::datatype_size(d));
      if (!tmp.empty()) std::memcpy(tmp.data(), recvbuf, tmp.size());
      c->mpi->allreduce(tmp.data(), recvbuf, n, d, o, *cm);
    } else {
      c->mpi->allreduce(sendbuf, recvbuf, n, d, o, *cm);
    }
    return MPI_SUCCESS;
  });
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, sendtype, &d, sendcount); e != MPI_SUCCESS) return e;
  if (int e = check_root(*cm, root); e != MPI_SUCCESS) return e;
  if (int e = check_symmetric(sendtype, sendcount, recvtype, recvcount); e != MPI_SUCCESS) {
    return e;
  }
  return guarded([&] {
    c->mpi->gather(sendbuf, static_cast<std::size_t>(sendcount), recvbuf, d, root, *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Gatherv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                const int recvcounts[], const int displs[], MPI_Datatype recvtype, int root,
                MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, sendtype, &d, sendcount); e != MPI_SUCCESS) return e;
  if (int e = check_root(*cm, root); e != MPI_SUCCESS) return e;
  if (sendtype != recvtype) return MPI_ERR_TYPE;
  const int n = cm->size();
  std::vector<std::size_t> rc(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> dp(static_cast<std::size_t>(n), 0);
  if (cm->rank() == root) {
    if (recvcounts == nullptr || displs == nullptr) return MPI_ERR_ARG;
    for (int i = 0; i < n; ++i) {
      if (recvcounts[i] < 0 || displs[i] < 0) return MPI_ERR_COUNT;
      rc[static_cast<std::size_t>(i)] = static_cast<std::size_t>(recvcounts[i]);
      dp[static_cast<std::size_t>(i)] = static_cast<std::size_t>(displs[i]);
    }
  }
  return guarded([&] {
    c->mpi->gatherv(sendbuf, static_cast<std::size_t>(sendcount), recvbuf, rc.data(),
                    dp.data(), d, root, *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, recvtype, &d, recvcount); e != MPI_SUCCESS) return e;
  if (int e = check_root(*cm, root); e != MPI_SUCCESS) return e;
  if (int e = check_symmetric(sendtype, sendcount, recvtype, recvcount); e != MPI_SUCCESS) {
    return e;
  }
  return guarded([&] {
    c->mpi->scatter(sendbuf, static_cast<std::size_t>(recvcount), recvbuf, d, root, *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Scatterv(const void* sendbuf, const int sendcounts[], const int displs[],
                 MPI_Datatype sendtype, void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 int root, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, recvtype, &d, recvcount); e != MPI_SUCCESS) return e;
  if (int e = check_root(*cm, root); e != MPI_SUCCESS) return e;
  if (sendtype != recvtype) return MPI_ERR_TYPE;
  const int n = cm->size();
  std::vector<std::size_t> sc(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> dp(static_cast<std::size_t>(n), 0);
  if (cm->rank() == root) {
    if (sendcounts == nullptr || displs == nullptr) return MPI_ERR_ARG;
    for (int i = 0; i < n; ++i) {
      if (sendcounts[i] < 0 || displs[i] < 0) return MPI_ERR_COUNT;
      sc[static_cast<std::size_t>(i)] = static_cast<std::size_t>(sendcounts[i]);
      dp[static_cast<std::size_t>(i)] = static_cast<std::size_t>(displs[i]);
    }
  }
  return guarded([&] {
    c->mpi->scatterv(sendbuf, sc.data(), dp.data(), recvbuf,
                     static_cast<std::size_t>(recvcount), d, root, *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, recvtype, &d, recvcount); e != MPI_SUCCESS) return e;
  const bool in_place = sendbuf == MPI_IN_PLACE;
  if (!in_place) {
    if (int e = check_symmetric(sendtype, sendcount, recvtype, recvcount); e != MPI_SUCCESS) {
      return e;
    }
  }
  return guarded([&] {
    const auto n = static_cast<std::size_t>(recvcount);
    if (in_place) {
      // My contribution already sits in my block of recvbuf.
      const std::size_t bytes = n * mpi::datatype_size(d);
      std::vector<std::byte> tmp(bytes);
      const auto* mine =
          static_cast<const std::byte*>(recvbuf) + static_cast<std::size_t>(cm->rank()) * bytes;
      if (!tmp.empty()) std::memcpy(tmp.data(), mine, bytes);
      c->mpi->allgather(tmp.data(), n, recvbuf, d, *cm);
    } else {
      c->mpi->allgather(sendbuf, n, recvbuf, d, *cm);
    }
    return MPI_SUCCESS;
  });
}

int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                 int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, sendtype, &d, sendcount); e != MPI_SUCCESS) return e;
  if (int e = check_symmetric(sendtype, sendcount, recvtype, recvcount); e != MPI_SUCCESS) {
    return e;
  }
  return guarded([&] {
    c->mpi->alltoall(sendbuf, static_cast<std::size_t>(sendcount), recvbuf, d, *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Alltoallv(const void* sendbuf, const int sendcounts[], const int sdispls[],
                  MPI_Datatype sendtype, void* recvbuf, const int recvcounts[],
                  const int rdispls[], MPI_Datatype recvtype, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, sendtype, &d, 0); e != MPI_SUCCESS) return e;
  if (sendtype != recvtype) return MPI_ERR_TYPE;
  if (sendcounts == nullptr || sdispls == nullptr || recvcounts == nullptr ||
      rdispls == nullptr) {
    return MPI_ERR_ARG;
  }
  const int n = cm->size();
  std::vector<std::size_t> sc(static_cast<std::size_t>(n)), sd(static_cast<std::size_t>(n));
  std::vector<std::size_t> rc(static_cast<std::size_t>(n)), rd(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (sendcounts[i] < 0 || recvcounts[i] < 0 || sdispls[i] < 0 || rdispls[i] < 0) {
      return MPI_ERR_COUNT;
    }
    sc[static_cast<std::size_t>(i)] = static_cast<std::size_t>(sendcounts[i]);
    sd[static_cast<std::size_t>(i)] = static_cast<std::size_t>(sdispls[i]);
    rc[static_cast<std::size_t>(i)] = static_cast<std::size_t>(recvcounts[i]);
    rd[static_cast<std::size_t>(i)] = static_cast<std::size_t>(rdispls[i]);
  }
  return guarded([&] {
    c->mpi->alltoallv(sendbuf, sc.data(), sd.data(), recvbuf, rc.data(), rd.data(), d, *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Reduce_scatter_block(const void* sendbuf, void* recvbuf, int recvcount,
                             MPI_Datatype datatype, MPI_Op op, MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, datatype, &d, recvcount); e != MPI_SUCCESS) return e;
  mpi::Op o;
  if (int e = check_op(op, recvcount, &o); e != MPI_SUCCESS) return e;
  return guarded([&] {
    c->mpi->reduce_scatter_block(sendbuf, recvbuf, static_cast<std::size_t>(recvcount), d, o,
                                 *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Scan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
             MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, datatype, &d, count); e != MPI_SUCCESS) return e;
  mpi::Op o;
  if (int e = check_op(op, count, &o); e != MPI_SUCCESS) return e;
  return guarded([&] {
    c->mpi->scan(sendbuf, recvbuf, static_cast<std::size_t>(count), d, o, *cm);
    return MPI_SUCCESS;
  });
}

int MPI_Exscan(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               MPI_Comm comm) {
  RankCtx* c;
  mpi::Comm* cm;
  mpi::Datatype d;
  if (int e = coll_enter(&c, comm, &cm, datatype, &d, count); e != MPI_SUCCESS) return e;
  mpi::Op o;
  if (int e = check_op(op, count, &o); e != MPI_SUCCESS) return e;
  return guarded([&] {
    c->mpi->exscan(sendbuf, recvbuf, static_cast<std::size_t>(count), d, o, *cm);
    return MPI_SUCCESS;
  });
}

// ---- simulator extensions ---------------------------------------------------

int MPIX_Compute(long long nanoseconds) {
  RankCtx* c = enter();
  if (c == nullptr) return MPI_ERR_OTHER;
  if (nanoseconds < 0) return MPI_ERR_ARG;
  c->mpi->compute(nanoseconds);
  return MPI_SUCCESS;
}

int MPIX_Report(unsigned long long checksum, int verified) {
  RankCtx* c = cur();
  if (c == nullptr) return MPI_ERR_OTHER;
  c->report.reported = true;
  c->report.checksum = checksum;
  c->report.verified = verified != 0;
  return MPI_SUCCESS;
}

}  // extern "C"
