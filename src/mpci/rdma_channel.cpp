#include "mpci/rdma_channel.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace sp::mpci {

namespace {
[[nodiscard]] sim::TimeNs copy_cost(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.copy_call_ns +
         static_cast<sim::TimeNs>(std::llround(cfg.copy_ns_per_byte * static_cast<double>(bytes)));
}

/// RTS immediate: envelope + the sender's 8-byte region token.
[[nodiscard]] std::vector<std::byte> pack_rts(const Envelope& env, lapi::Token token) {
  std::vector<std::byte> imm(sizeof(Envelope) + sizeof(token));
  std::memcpy(imm.data(), &env, sizeof(Envelope));
  std::memcpy(imm.data() + sizeof(Envelope), &token, sizeof(token));
  return imm;
}
}  // namespace

RdmaChannel::RdmaChannel(sim::NodeRuntime& node, hal::RdmaNic& nic, int my_task, int num_tasks)
    : Channel(node, num_tasks),
      nic_(nic),
      my_task_(my_task),
      send_seq_(static_cast<std::size_t>(num_tasks), 0) {
  nic_.set_write_handler(
      [this](int src, std::span<const std::byte> imm, std::vector<std::byte>&& data) {
        on_write(src, imm, std::move(data));
      });
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

void RdmaChannel::start_send(SendReq& req) {
  node_.app_charge(node_.cfg.rdma_doorbell_ns);  // ring the doorbell
  req.proto = choose_protocol(req.mode, req.len, req.dst);
  if (req.proto == Protocol::kEager && req.mode != Mode::kReady && req.len > 0) {
    // Eager ring admission: one pre-posted slot per non-ready eager. Out of
    // slots -> the message travels as rendezvous instead (the receiver will
    // pull it; no retry traffic). Ready-mode bypasses the ring: its payload
    // lands straight in the posted receive buffer.
    auto [it, fresh] = ring_credits_.try_emplace(req.dst, node_.cfg.rdma_ring_slots);
    if (it->second == 0) {
      ++ea_fallbacks_;
      req.proto = Protocol::kRendezvous;
    } else {
      --it->second;
    }
  }
  req.id = next_sreq_++;

  Envelope env;
  env.ctx = static_cast<std::uint16_t>(req.ctx);
  env.src = static_cast<std::uint16_t>(req.src_in_comm);
  env.tag = req.tag;
  req.seq = send_seq_[static_cast<std::size_t>(req.dst)]++;
  env.seq = req.seq;
  env.len = static_cast<std::uint32_t>(req.len);
  env.sreq = req.id;
  if (req.mode == Mode::kReady) env.flags |= kFlagReady;
  if (req.bsend_slot >= 0) env.flags |= kFlagNotifyDone;

  if (req.proto == Protocol::kEager) {
    note_eager_send(req.dst, req.len);
    env.kind = static_cast<std::uint8_t>(EnvKind::kEager);
    ea_note_eager_departure(req.dst, env, req.buf);
    if (req.bsend_slot >= 0) sreqs_.emplace(req.id, &req);
    nic_.post_write(req.dst, pack(env), req.buf, req.len, [this, &req] {
      node_.publish([this, &req] {
        req.reusable = true;
        maybe_complete_send(req);
      });
    });
  } else {
    note_rendezvous_send(req.dst, req.len);
    sreqs_.emplace(req.id, &req);
    env.kind = static_cast<std::uint8_t>(EnvKind::kRts);
    lapi::Token token = 0;
    if (req.len > 0) {
      token = nic_.register_region(req.buf, req.len);
      send_regions_.emplace(req.id, token);
    }
    nic_.post_write(req.dst, pack_rts(env, token), nullptr, 0, nullptr);
  }

  if (req.bsend_slot >= 0) {
    // Buffered sends complete immediately: the payload lives in the attach
    // buffer (which RDMA reads can pull from); the slot is reclaimed when
    // the FIN / kRecvDone arrives.
    req.reusable = true;
    req.complete = true;
  }
}

void RdmaChannel::progress(SendReq&) {
  // Nothing for the application thread to push: the rendezvous data phase is
  // the *receiver's* RDMA read, and completion arrives with the FIN.
}

void RdmaChannel::maybe_complete_send(SendReq& req) {
  if (req.complete) {
    req.cond.notify_all(node_.sim);
    return;
  }
  const bool done = (req.proto == Protocol::kEager) ? req.reusable
                                                    : (req.data_sent && req.reusable);
  if (done) {
    req.complete = true;
    req.cond.notify_all(node_.sim);
  }
}

void RdmaChannel::send_control_env(int dst_task, const Envelope& env) {
  // Control envelopes are immediate-only RDMA writes: NIC context end to
  // end, no host charge (safe from both rank-fiber and event context).
  nic_.post_write(dst_task, pack(env), nullptr, 0, nullptr);
}

void RdmaChannel::serve_nacked(int dst_task, std::uint32_t sreq, std::uint32_t rreq) {
  const RetainedEager* ret = ea_retained(sreq);
  assert(ret != nullptr && "CTS for unknown send request (no retained NACK copy)");
  Envelope env = ret->env;
  env.kind = static_cast<std::uint8_t>(EnvKind::kRtsData);
  env.rreq = rreq;
  env.flags |= kFlagNackServed;
  // The retained vector lives until the receiver's credit retires it, which
  // is strictly after this data lands — safe to borrow.
  nic_.post_write(dst_task, pack(env), ret->data.data(), ret->data.size(), nullptr);
}

void RdmaChannel::ring_slot_freed(int src) {
  auto& freed = ring_freed_[src];
  ++freed;
  const std::size_t batch = std::max<std::size_t>(1, node_.cfg.rdma_ring_slots / 4);
  if (freed >= batch) {
    Envelope c;
    c.kind = static_cast<std::uint8_t>(EnvKind::kRingCredit);
    c.len = static_cast<std::uint32_t>(freed);
    send_control_env(src, c);
    freed = 0;
  }
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

RecvReq* RdmaChannel::match_posted(const Envelope& env) {
  int scanned = 0;
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    ++scanned;
    RecvReq* r = *it;
    if (r->ctx == env.ctx && (r->src_sel == kAnySource || r->src_sel == env.src) &&
        (r->tag_sel == kAnyTag || r->tag_sel == env.tag)) {
      posted_.erase(it);
      charge_match_event(scanned);
      return r;
    }
  }
  charge_match_event(scanned);
  return nullptr;
}

void RdmaChannel::on_write(int src, std::span<const std::byte> imm,
                           std::vector<std::byte>&& data) {
  assert(imm.size() >= sizeof(Envelope) && "RDMA write without an envelope immediate");
  const Envelope env = unpack(imm.data());
  // Reap one completion-queue entry per delivered message.
  node_.cpu.charge(node_.sim, node_.cfg.rdma_cq_ns);

  switch (static_cast<EnvKind>(env.kind)) {
    case EnvKind::kEager:
      handle_eager(src, env, std::move(data));
      return;

    case EnvKind::kRts: {
      lapi::Token token = 0;
      assert(imm.size() >= sizeof(Envelope) + sizeof(token));
      std::memcpy(&token, imm.data() + sizeof(Envelope), sizeof(token));
      RecvReq* r = match_posted(env);
      if (r != nullptr) {
        start_read(*r, env, src, token, /*app_context=*/false);
      } else {
        auto e = std::make_unique<EaEntry>();
        e->env = env;
        e->src_task = src;
        e->token = token;
        e->is_rts = true;
        ea_.push_back(std::move(e));
        publish_arrival();
      }
      return;
    }

    case EnvKind::kRtsData: {
      // Only NACK-served data travels this way (normal rendezvous is a read).
      auto it = rreqs_.find(env.rreq);
      assert(it != rreqs_.end() && "rendezvous data for unknown receive");
      RecvReq* r = it->second;
      rreqs_.erase(it);
      const std::size_t n = std::min<std::size_t>(env.len, r->cap);
      node_.cpu.charge(node_.sim, copy_cost(node_.cfg, n));
      if (n > 0) std::memcpy(r->buf, data.data(), n);
      publish_recv_complete(*r, env, env.len > r->cap);
      if ((env.flags & kFlagNackServed) != 0) ea_note_retired(src, env);
      if ((env.flags & kFlagNotifyDone) != 0) {
        Envelope d;
        d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
        d.sreq = env.sreq;
        send_control_env(src, d);
      }
      return;
    }

    case EnvKind::kCts: {
      // Normal rendezvous never sends a CTS here; this is the receiver
      // clearing a NACKed eager to be re-sent from the retained copy.
      serve_nacked(src, env.sreq, env.rreq);
      return;
    }

    case EnvKind::kRecvDone: {
      auto it = sreqs_.find(env.sreq);
      assert(it != sreqs_.end() && "RecvDone for unknown send request");
      SendReq* s = it->second;
      sreqs_.erase(it);
      if (s->proto == Protocol::kRendezvous) {
        auto rt = send_regions_.find(s->id);
        if (rt != send_regions_.end()) {
          nic_.deregister_region(rt->second);
          send_regions_.erase(rt);
        }
        s->data_sent = true;
      }
      node_.publish([this, s] {
        if (s->bsend_slot >= 0) bsend_.release(s->bsend_slot);
        s->bsend_released = true;
        s->reusable = true;
        maybe_complete_send(*s);
        s->cond.notify_all(node_.sim);
      });
      return;
    }

    case EnvKind::kEaCredit:
      ea_on_credit(src, env);
      return;

    case EnvKind::kEaNack:
      ea_on_nack(env);
      return;

    case EnvKind::kRingCredit: {
      auto [it, fresh] = ring_credits_.try_emplace(src, node_.cfg.rdma_ring_slots);
      if (!fresh) it->second += env.len;
      return;
    }
  }
  assert(false && "unknown envelope kind on the RDMA channel");
}

void RdmaChannel::handle_eager(int src, const Envelope& env, std::vector<std::byte>&& data) {
  // The payload just left the ring (moved to us): recycle the slot now,
  // regardless of what happens to the message.
  if ((env.flags & kFlagReady) == 0 && env.len > 0) ring_slot_freed(src);

  RecvReq* r = match_posted(env);
  if (r != nullptr) {
    const std::size_t n = std::min<std::size_t>(env.len, r->cap);
    node_.cpu.charge(node_.sim, copy_cost(node_.cfg, n));
    if (n > 0) std::memcpy(r->buf, data.data(), n);
    publish_recv_complete(*r, env, env.len > r->cap);
    ea_note_retired(src, env);
    if ((env.flags & kFlagNotifyDone) != 0) {
      Envelope d;
      d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
      d.sreq = env.sreq;
      send_control_env(src, d);
    }
    return;
  }

  if ((env.flags & kFlagReady) != 0) {
    throw FatalMpiError("ready-mode message arrived before its receive was posted");
  }

  if (!try_ea_reserve(env.len)) {
    // EA pool exhausted: drop the payload, NACK the sender, and leave the
    // envelope behind as a pseudo-RTS — once matched, a CTS clears the
    // sender to re-send from its retained copy (previously this was fatal).
    ea_issue_nack(src, env);
    auto e = std::make_unique<EaEntry>();
    e->env = env;
    e->src_task = src;
    e->is_rts = true;
    ea_.push_back(std::move(e));
    publish_arrival();
    return;
  }

  auto e = std::make_unique<EaEntry>();
  e->env = env;
  e->src_task = src;
  e->data = std::move(data);
  e->counted = true;
  ea_.push_back(std::move(e));
  publish_arrival();
  if ((env.flags & kFlagNotifyDone) != 0) {
    // The payload is safely buffered: the sender's attach slot can go.
    Envelope d;
    d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
    d.sreq = env.sreq;
    send_control_env(src, d);
  }
}

void RdmaChannel::start_read(RecvReq& req, const Envelope& env, int src, lapi::Token token,
                             bool app_context) {
  req.id = next_rreq_++;
  req.status = Status{env.src, env.tag, env.len};  // provisional
  const std::size_t n = std::min<std::size_t>(env.len, req.cap);
  const bool truncated = env.len > req.cap;
  if (n == 0) {
    publish_recv_complete(req, env, truncated);
    Envelope fin;
    fin.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
    fin.sreq = env.sreq;
    send_control_env(src, fin);
    return;
  }
  // Post the read descriptor (a host doorbell), then the NIC pulls the
  // payload straight into the user buffer — zero host copies on both sides.
  if (app_context) {
    node_.app_charge(node_.cfg.rdma_doorbell_ns);
  } else {
    node_.cpu.charge(node_.sim, node_.cfg.rdma_doorbell_ns);
  }
  nic_.post_read(src, token, req.buf, n, [this, &req, env, src, truncated] {
    node_.cpu.charge(node_.sim, node_.cfg.rdma_cq_ns);  // reap the read CQE
    publish_recv_complete(req, env, truncated);
    Envelope fin;
    fin.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
    fin.sreq = env.sreq;
    send_control_env(src, fin);
  });
}

void RdmaChannel::publish_recv_complete(RecvReq& req, const Envelope& env, bool truncated) {
  node_.publish([this, &req, env, truncated] {
    req.complete = true;
    req.truncated = truncated;
    req.status = Status{env.src, env.tag, std::min<std::size_t>(env.len, req.cap)};
    note_recv_complete(env.ctx, env.src, env.tag, env.seq, env.len);
    req.cond.notify_all(node_.sim);
  });
}

void RdmaChannel::deliver_from_ea(RecvReq& req, EaEntry& e, bool app_context) {
  const std::size_t n = std::min<std::size_t>(e.env.len, req.cap);
  const sim::TimeNs cost = copy_cost(node_.cfg, n);
  if (app_context) {
    node_.app_charge(cost);
  } else {
    node_.cpu.charge(node_.sim, cost);
  }
  if (n > 0) std::memcpy(req.buf, e.data.data(), n);
  const bool truncated = e.env.len > req.cap;
  publish_recv_complete(req, e.env, truncated);
  erase_ea(&e);
}

void RdmaChannel::erase_ea(EaEntry* e) {
  for (auto it = ea_.begin(); it != ea_.end(); ++it) {
    if (it->get() == e) {
      if (e->counted) ea_release(e->env.len);
      const bool eager = e->env.kind == static_cast<std::uint8_t>(EnvKind::kEager) && !e->is_rts;
      if (eager) ea_note_retired(e->src_task, e->env);
      ea_.erase(it);
      return;
    }
  }
  assert(false && "erase_ea: entry not found");
}

std::list<std::unique_ptr<RdmaChannel::EaEntry>>::iterator RdmaChannel::find_ea(
    const RecvReq& req) {
  for (auto it = ea_.begin(); it != ea_.end(); ++it) {
    EaEntry& e = **it;
    if (e.env.ctx == req.ctx && (req.src_sel == kAnySource || req.src_sel == e.env.src) &&
        (req.tag_sel == kAnyTag || req.tag_sel == e.env.tag)) {
      return it;
    }
  }
  return ea_.end();
}

bool RdmaChannel::iprobe(int ctx, int src_sel, int tag_sel, Status* st) {
  charge_match_app(static_cast<int>(ea_.size()));
  for (const auto& ep : ea_) {
    const EaEntry& e = *ep;
    if (e.env.ctx != ctx) continue;
    if (src_sel != kAnySource && src_sel != e.env.src) continue;
    if (tag_sel != kAnyTag && tag_sel != e.env.tag) continue;
    if (st != nullptr) *st = Status{static_cast<int>(e.env.src), e.env.tag, e.env.len};
    return true;
  }
  return false;
}

void RdmaChannel::post_recv(RecvReq& req) {
  charge_match_app(static_cast<int>(ea_.size()));
  auto it = find_ea(req);
  if (it == ea_.end()) {
    posted_.push_back(&req);
    return;
  }
  EaEntry& e = **it;
  if (e.is_rts) {
    if (e.env.kind == static_cast<std::uint8_t>(EnvKind::kRts)) {
      // Real RTS: pull the payload ourselves.
      const Envelope env = e.env;
      const int src = e.src_task;
      const lapi::Token token = e.token;
      ea_.erase(it);
      start_read(req, env, src, token, /*app_context=*/true);
    } else {
      // NACKed eager turned pseudo-RTS: clear the sender to re-send.
      req.id = next_rreq_++;
      rreqs_.emplace(req.id, &req);
      req.status = Status{e.env.src, e.env.tag, e.env.len};
      Envelope cts;
      cts.kind = static_cast<std::uint8_t>(EnvKind::kCts);
      cts.sreq = e.env.sreq;
      cts.rreq = req.id;
      const int src = e.src_task;
      ea_.erase(it);
      send_control_env(src, cts);
    }
    return;
  }
  deliver_from_ea(req, e, /*app_context=*/true);
}

// ---------------------------------------------------------------------------
// Adapter-resident collectives
// ---------------------------------------------------------------------------

bool RdmaChannel::run_nic_coll(hal::RdmaNic::CollOp&& op) {
  node_.app_charge(node_.cfg.rdma_doorbell_ns);  // post the descriptor
  bool done = false;
  sim::SimCondition cond;
  op.on_done = [this, &done, &cond] {
    node_.publish([this, &done, &cond] {
      done = true;
      cond.notify_all(node_.sim);
    });
  };
  nic_.coll_start(std::move(op));
  while (!done) cond.wait(*node_.thread);
  node_.app_charge(node_.cfg.rdma_cq_ns);  // reap the completion CQE
  return true;
}

bool RdmaChannel::nic_barrier(int ctx, std::uint32_t seq, int rank,
                              const std::vector<int>& tasks) {
  hal::RdmaNic::CollOp op;
  op.ctx = static_cast<std::uint32_t>(ctx);
  op.seq = seq;
  op.rank = rank;
  op.tasks = tasks;
  op.reduce_phase = true;
  return run_nic_coll(std::move(op));
}

bool RdmaChannel::nic_bcast(int ctx, std::uint32_t seq, int rank, int root,
                            const std::vector<int>& tasks, std::byte* buf, std::size_t len) {
  if (len > node_.cfg.rdma_nic_coll_max_bytes) return false;
  hal::RdmaNic::CollOp op;
  op.ctx = static_cast<std::uint32_t>(ctx);
  op.seq = seq;
  op.rank = rank;
  op.root = root;
  op.tasks = tasks;
  op.buf = buf;
  op.len = len;
  op.reduce_phase = false;
  return run_nic_coll(std::move(op));
}

bool RdmaChannel::nic_allreduce(int ctx, std::uint32_t seq, int rank,
                                const std::vector<int>& tasks, std::byte* buf, std::size_t len,
                                NicCombine combine) {
  if (len > node_.cfg.rdma_nic_coll_max_bytes) return false;
  hal::RdmaNic::CollOp op;
  op.ctx = static_cast<std::uint32_t>(ctx);
  op.seq = seq;
  op.rank = rank;
  op.tasks = tasks;
  op.buf = buf;
  op.len = len;
  op.reduce_phase = true;
  op.combine = std::move(combine);
  return run_nic_coll(std::move(op));
}

}  // namespace sp::mpci
