// MPCI channel interface: the point-to-point message layer with matching and
// early-arrival buffering. Two implementations exist, mirroring Fig. 1 of the
// paper: PipesChannel (the native stack, Fig. 1a) and LapiChannel (the new
// thin MPCI over LAPI, Fig. 1c, in its Base / Counters / Enhanced versions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpci/bsend_pool.hpp"
#include "mpci/request.hpp"
#include "sim/node_runtime.hpp"

namespace sp::mpci {

/// Raised for unrecoverable MPI errors (e.g. ready-mode send with no posted
/// receive — the paper's Error_handler(FATAL, "Recv not posted")).
class FatalMpiError : public std::runtime_error {
 public:
  explicit FatalMpiError(const std::string& what) : std::runtime_error(what) {}
};

class Channel {
 public:
  explicit Channel(sim::NodeRuntime& node) : node_(node) {}
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Begin a send; `req` must be pre-filled (dst/ctx/tag/buf/len/mode/...)
  /// and stay alive until complete.
  virtual void start_send(SendReq& req) = 0;

  /// Post a receive; `req` must be pre-filled and stay alive until complete.
  virtual void post_recv(RecvReq& req) = 0;

  /// Called from the waiting application thread to push work that the paper
  /// assigns to the blocking path (e.g. the rendezvous data phase after the
  /// CTS arrives, Fig. 6).
  virtual void progress(SendReq& req) = 0;

  /// Collective per-rank initialisation, run on the rank thread before user
  /// code (e.g. the Counters version's counter-ring address exchange).
  virtual void on_thread_start() {}

  /// Nonblocking probe: is a matchable unexpected message pending? Fills
  /// `st` (source, tag, length) without consuming the message.
  [[nodiscard]] virtual bool iprobe(int ctx, int src_sel, int tag_sel, Status* st) = 0;

  /// Notified (through the wake gate) whenever a new envelope becomes
  /// matchable — MPI_Probe blocks on this.
  [[nodiscard]] sim::SimCondition& arrival_cond() noexcept { return arrival_cond_; }

  /// One completed receive, as observed by the conformance explorer. The
  /// per-(ctx, src) envelope sequence identifies the message, so grouping
  /// records by (ctx, src, tag) and sorting by seq recovers the match order
  /// MPI non-overtaking mandates — a channel-invariant observable, unlike the
  /// global cross-source completion interleaving.
  struct MatchRecord {
    std::uint16_t ctx = 0;
    std::uint16_t src = 0;
    std::int32_t tag = 0;
    std::uint32_t seq = 0;
    std::uint32_t len = 0;
  };

  /// Record every receive completion into `log` (null disables; the default).
  /// The log must outlive the channel's traffic.
  void set_match_log(std::vector<MatchRecord>* log) noexcept { match_log_ = log; }

 protected:
  /// Channels call this when a new unexpected envelope becomes matchable.
  void publish_arrival() {
    node_.publish([this] { arrival_cond_.notify_all(node_.sim); });
  }

 public:

  [[nodiscard]] BsendPool& bsend_pool() noexcept { return bsend_; }
  [[nodiscard]] sim::NodeRuntime& node() noexcept { return node_; }

  // --- statistics ---
  [[nodiscard]] std::int64_t eager_sends() const noexcept { return eager_sends_; }
  [[nodiscard]] std::int64_t rendezvous_sends() const noexcept { return rendezvous_sends_; }
  [[nodiscard]] std::int64_t early_arrivals() const noexcept { return early_arrivals_; }
  [[nodiscard]] std::size_t early_arrival_bytes_in_use() const noexcept { return ea_bytes_; }

 protected:
  /// Charge the cost of scanning `entries` queue entries plus locking.
  void charge_match_event(int entries) {
    note_match(entries);
    node_.cpu.charge(node_.sim, node_.cfg.match_base_ns +
                                    node_.cfg.match_per_entry_ns * entries +
                                    node_.cfg.lock_pair_ns);
  }
  void charge_match_app(int entries) {
    note_match(entries);
    node_.app_charge(node_.cfg.match_base_ns + node_.cfg.match_per_entry_ns * entries +
                     node_.cfg.lock_pair_ns);
  }

  /// Telemetry for one matching attempt over `entries` queue entries.
  void note_match(int entries) {
    SP_TELEM(node_, sim::Ev::kMatch, static_cast<std::uint64_t>(entries));
    SP_TELEM_HIST(node_, sim::Hist::kMatchScanned, static_cast<std::uint64_t>(entries));
  }

  /// Count one eager/rendezvous send (statistics + telemetry).
  void note_eager_send(int dst, std::size_t bytes) {
    ++eager_sends_;
    SP_TELEM(node_, sim::Ev::kEagerSend, static_cast<std::uint64_t>(dst), bytes);
    SP_TELEM_HIST(node_, sim::Hist::kMsgBytes, bytes);
  }
  void note_rendezvous_send(int dst, std::size_t bytes) {
    ++rendezvous_sends_;
    SP_TELEM(node_, sim::Ev::kRendezvousSend, static_cast<std::uint64_t>(dst), bytes);
    SP_TELEM_HIST(node_, sim::Hist::kMsgBytes, bytes);
  }

  /// Channels call this as a receive completes (one call per completed recv).
  void note_recv_complete(std::uint16_t ctx, std::uint16_t src, std::int32_t tag,
                          std::uint32_t seq, std::uint32_t len) {
    if (match_log_ != nullptr) match_log_->push_back(MatchRecord{ctx, src, tag, seq, len});
  }

  /// Early-arrival buffer accounting; throws FatalMpiError on exhaustion.
  void ea_reserve(std::size_t bytes) {
    if (ea_bytes_ + bytes > node_.cfg.early_arrival_bytes) {
      throw FatalMpiError("early-arrival buffer exhausted (raise eager limit / EA size)");
    }
    ea_bytes_ += bytes;
    ++early_arrivals_;
    SP_TELEM(node_, sim::Ev::kEarlyArrival, bytes);
  }
  void ea_release(std::size_t bytes) noexcept { ea_bytes_ -= bytes; }

  sim::NodeRuntime& node_;
  BsendPool bsend_;
  sim::SimCondition arrival_cond_;
  std::vector<MatchRecord>* match_log_ = nullptr;
  std::int64_t eager_sends_ = 0;
  std::int64_t rendezvous_sends_ = 0;
  std::int64_t early_arrivals_ = 0;
  std::size_t ea_bytes_ = 0;
};

}  // namespace sp::mpci
