// MPCI channel interface: the point-to-point message layer with matching and
// early-arrival buffering. Two implementations exist, mirroring Fig. 1 of the
// paper: PipesChannel (the native stack, Fig. 1a) and LapiChannel (the new
// thin MPCI over LAPI, Fig. 1c, in its Base / Counters / Enhanced versions).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpci/bsend_pool.hpp"
#include "mpci/envelope.hpp"
#include "mpci/request.hpp"
#include "sim/node_runtime.hpp"

namespace sp::mpci {

/// Raised for unrecoverable MPI errors (e.g. ready-mode send with no posted
/// receive — the paper's Error_handler(FATAL, "Recv not posted")).
class FatalMpiError : public std::runtime_error {
 public:
  explicit FatalMpiError(const std::string& what) : std::runtime_error(what) {}
};

class Channel {
 public:
  Channel(sim::NodeRuntime& node, int num_tasks) : node_(node), num_tasks_(num_tasks) {}
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Begin a send; `req` must be pre-filled (dst/ctx/tag/buf/len/mode/...)
  /// and stay alive until complete.
  virtual void start_send(SendReq& req) = 0;

  /// Post a receive; `req` must be pre-filled and stay alive until complete.
  virtual void post_recv(RecvReq& req) = 0;

  /// Called from the waiting application thread to push work that the paper
  /// assigns to the blocking path (e.g. the rendezvous data phase after the
  /// CTS arrives, Fig. 6).
  virtual void progress(SendReq& req) = 0;

  /// Collective per-rank initialisation, run on the rank thread before user
  /// code (e.g. the Counters version's counter-ring address exchange).
  virtual void on_thread_start() {}

  /// Nonblocking probe: is a matchable unexpected message pending? Fills
  /// `st` (source, tag, length) without consuming the message.
  [[nodiscard]] virtual bool iprobe(int ctx, int src_sel, int tag_sel, Status* st) = 0;

  /// Rank-order combine for the NIC-resident allreduce: fold `from` (the
  /// higher-rank operand) into `into` (the lower-rank accumulator).
  using NicCombine = std::function<void(std::byte* into, const std::byte* from, std::size_t len)>;

  // Adapter-resident collectives (DESIGN.md §14.4). A channel backed by a
  // NIC with an offload engine runs the operation entirely on the adapter
  // and blocks the rank fiber until it completes, returning true; the
  // defaults return false and the caller falls back to a host algorithm.
  // All members of ctx must use the same per-context `seq` posting order.
  /// Capability probe: true when the nic_* hooks can succeed at all. The Mpi
  /// layer checks this before opening a NIC telemetry span so host-only
  /// channels never emit offload spans (pinned digests stay quiet).
  [[nodiscard]] virtual bool nic_offload() const noexcept { return false; }
  virtual bool nic_barrier(int /*ctx*/, std::uint32_t /*seq*/, int /*rank*/,
                           const std::vector<int>& /*tasks*/) {
    return false;
  }
  virtual bool nic_bcast(int /*ctx*/, std::uint32_t /*seq*/, int /*rank*/, int /*root*/,
                         const std::vector<int>& /*tasks*/, std::byte* /*buf*/,
                         std::size_t /*len*/) {
    return false;
  }
  virtual bool nic_allreduce(int /*ctx*/, std::uint32_t /*seq*/, int /*rank*/,
                             const std::vector<int>& /*tasks*/, std::byte* /*buf*/,
                             std::size_t /*len*/, NicCombine /*combine*/) {
    return false;
  }

  /// Notified (through the wake gate) whenever a new envelope becomes
  /// matchable — MPI_Probe blocks on this.
  [[nodiscard]] sim::SimCondition& arrival_cond() noexcept { return arrival_cond_; }

  /// One completed receive, as observed by the conformance explorer. The
  /// per-(ctx, src) envelope sequence identifies the message, so grouping
  /// records by (ctx, src, tag) and sorting by seq recovers the match order
  /// MPI non-overtaking mandates — a channel-invariant observable, unlike the
  /// global cross-source completion interleaving.
  struct MatchRecord {
    std::uint16_t ctx = 0;
    std::uint16_t src = 0;
    std::int32_t tag = 0;
    std::uint32_t seq = 0;
    std::uint32_t len = 0;
  };

  /// Record every receive completion into `log` (null disables; the default).
  /// The log must outlive the channel's traffic.
  void set_match_log(std::vector<MatchRecord>* log) noexcept { match_log_ = log; }

 protected:
  /// Channels call this when a new unexpected envelope becomes matchable.
  void publish_arrival() {
    node_.publish([this] { arrival_cond_.notify_all(node_.sim); });
  }

 public:

  [[nodiscard]] BsendPool& bsend_pool() noexcept { return bsend_; }
  [[nodiscard]] sim::NodeRuntime& node() noexcept { return node_; }

  // --- statistics ---
  [[nodiscard]] std::int64_t eager_sends() const noexcept { return eager_sends_; }
  [[nodiscard]] std::int64_t rendezvous_sends() const noexcept { return rendezvous_sends_; }
  [[nodiscard]] std::int64_t early_arrivals() const noexcept { return early_arrivals_; }
  [[nodiscard]] std::size_t early_arrival_bytes_in_use() const noexcept { return ea_bytes_; }
  /// Eager sends demoted to rendezvous by the sender-side EA credit check.
  [[nodiscard]] std::int64_t ea_fallbacks() const noexcept { return ea_fallbacks_; }
  /// Eagers refused by the receiver (EA pool full) and failed over to
  /// sender-served rendezvous; counted at the sender when the NACK arrives.
  [[nodiscard]] std::int64_t ea_nacks() const noexcept { return ea_nacks_; }

 protected:
  /// Charge the cost of scanning `entries` queue entries plus locking.
  void charge_match_event(int entries) {
    note_match(entries);
    node_.cpu.charge(node_.sim, node_.cfg.match_base_ns +
                                    node_.cfg.match_per_entry_ns * entries +
                                    node_.cfg.lock_pair_ns);
  }
  void charge_match_app(int entries) {
    note_match(entries);
    node_.app_charge(node_.cfg.match_base_ns + node_.cfg.match_per_entry_ns * entries +
                     node_.cfg.lock_pair_ns);
  }

  /// Telemetry for one matching attempt over `entries` queue entries.
  void note_match(int entries) {
    SP_TELEM(node_, sim::Ev::kMatch, static_cast<std::uint64_t>(entries));
    SP_TELEM_HIST(node_, sim::Hist::kMatchScanned, static_cast<std::uint64_t>(entries));
  }

  /// Count one eager/rendezvous send (statistics + telemetry).
  void note_eager_send(int dst, std::size_t bytes) {
    ++eager_sends_;
    SP_TELEM(node_, sim::Ev::kEagerSend, static_cast<std::uint64_t>(dst), bytes);
    SP_TELEM_HIST(node_, sim::Hist::kMsgBytes, bytes);
  }
  void note_rendezvous_send(int dst, std::size_t bytes) {
    ++rendezvous_sends_;
    SP_TELEM(node_, sim::Ev::kRendezvousSend, static_cast<std::uint64_t>(dst), bytes);
    SP_TELEM_HIST(node_, sim::Hist::kMsgBytes, bytes);
  }

  /// Channels call this as a receive completes (one call per completed recv).
  void note_recv_complete(std::uint16_t ctx, std::uint16_t src, std::int32_t tag,
                          std::uint32_t seq, std::uint32_t len) {
    if (match_log_ != nullptr) match_log_->push_back(MatchRecord{ctx, src, tag, seq, len});
  }

  /// Early-arrival buffer accounting. Returns false when the pool cannot
  /// admit `bytes`; the caller NACKs the eager back into a sender-served
  /// rendezvous (ea_issue_nack) instead of dying — the seed treated this as
  /// fatal, which a lossy soak could trigger at will.
  [[nodiscard]] bool try_ea_reserve(std::size_t bytes) {
    if (ea_bytes_ + bytes > node_.cfg.early_arrival_bytes) return false;
    ea_bytes_ += bytes;
    ++early_arrivals_;
    SP_TELEM(node_, sim::Ev::kEarlyArrival, bytes);
    return true;
  }
  void ea_release(std::size_t bytes) noexcept { ea_bytes_ -= bytes; }

  /// Send a control-only envelope (EA credit / NACK) to a peer task over
  /// whatever control path the transport has.
  virtual void send_control_env(int dst_task, const Envelope& env) = 0;

  // --- Early-arrival flow control -----------------------------------------
  //
  // Senders bound the eager bytes they may have uncredited toward each
  // destination (`ea_sender_limit`; the auto default is a fair share of the
  // peer's EA pool, under which try_ea_reserve provably cannot fail) and
  // demote further eagers to rendezvous. Receivers NACK eagers that lose the
  // admission race anyway — reachable only when ea_sender_limit_bytes
  // overrides the fair share — converting them to a pseudo-RTS served from a
  // sender-side retained copy.
  //
  // Uncredited bytes are decremented ONLY by returned credits: every
  // non-ready, non-empty eager eventually earns exactly one credit covering
  // its length. Credits are per-message (carrying the sreq, which also
  // garbage-collects the retained copy) in override mode, and batched deltas
  // gated on the kFlagWantCredit pressure signal in auto mode — a quiet run
  // exchanges no credit traffic at all, keeping digests stable.

  [[nodiscard]] std::size_t ea_sender_limit() const noexcept {
    if (node_.cfg.ea_sender_limit_bytes != 0) return node_.cfg.ea_sender_limit_bytes;
    return node_.cfg.early_arrival_bytes /
           static_cast<std::size_t>(std::max(1, num_tasks_ - 1));
  }
  /// Retained sender-side copies (for NACK service) exist only under the
  /// override; the auto fair share cannot NACK, so nothing is retained.
  [[nodiscard]] bool retention_active() const noexcept {
    return node_.cfg.ea_sender_limit_bytes != 0;
  }

  /// protocol_for plus the sender-side credit check: an eager that would push
  /// this destination's uncredited bytes past the limit falls back to
  /// rendezvous (counted in ea_fallbacks).
  [[nodiscard]] Protocol choose_protocol(Mode mode, std::size_t len, int dst) {
    Protocol p = protocol_for(mode, len, node_.cfg.eager_limit);
    if (p == Protocol::kEager && mode != Mode::kReady && len > 0 &&
        ea_inflight_[dst] + len > ea_sender_limit()) {
      ++ea_fallbacks_;
      p = Protocol::kRendezvous;
    }
    return p;
  }

  /// Sender-side accounting at eager departure. Must run after `env` is
  /// fully built and before it is packed: it raises kFlagWantCredit past
  /// half the share and, in override mode, retains a service copy.
  void ea_note_eager_departure(int dst, Envelope& env, const std::byte* buf) {
    if (env.len == 0 || (env.flags & kFlagReady) != 0) return;
    auto& inflight = ea_inflight_[dst];
    inflight += env.len;
    if (inflight * 2 >= ea_sender_limit()) env.flags |= kFlagWantCredit;
    if (retention_active()) {
      retained_.emplace(env.sreq,
                        RetainedEager{env, std::vector<std::byte>(buf, buf + env.len)});
    }
  }

  /// Receiver-side: one eager from `src_task` (or the rendezvous data
  /// serving its NACK) is fully consumed; return credit per the mode.
  void ea_note_retired(int src_task, const Envelope& env) {
    if (env.len == 0 || (env.flags & kFlagReady) != 0) return;
    Envelope c;
    c.kind = static_cast<std::uint8_t>(EnvKind::kEaCredit);
    if (retention_active()) {
      c.sreq = env.sreq;
      c.len = env.len;
      send_control_env(src_task, c);
      return;
    }
    auto& peer = ea_credit_owed_[src_task];
    peer.owed += env.len;
    if ((env.flags & kFlagWantCredit) != 0) peer.flagged = true;
    if (peer.flagged) {
      c.sreq = 0;
      c.len = static_cast<std::uint32_t>(peer.owed);
      send_control_env(src_task, c);
      peer.owed = 0;
      peer.flagged = false;
    }
  }

  /// Receiver-side: EA admission failed — tell the sender its eager was
  /// dropped and will be pulled as rendezvous data via the pseudo-RTS.
  void ea_issue_nack(int src_task, const Envelope& env) {
    Envelope n;
    n.kind = static_cast<std::uint8_t>(EnvKind::kEaNack);
    n.sreq = env.sreq;
    n.len = env.len;
    send_control_env(src_task, n);
  }

  // Sender-side handlers for the two control kinds.
  void ea_on_credit(int peer_task, const Envelope& env) {
    auto& inflight = ea_inflight_[peer_task];
    inflight -= std::min<std::size_t>(inflight, env.len);
    if (env.sreq != 0) retained_.erase(env.sreq);
  }
  void ea_on_nack(const Envelope&) { ++ea_nacks_; }

  /// The retained copy for a NACKed eager (null if unknown — a protocol
  /// error unless retention is off, which cannot NACK).
  struct RetainedEager {
    Envelope env;
    std::vector<std::byte> data;
  };
  [[nodiscard]] const RetainedEager* ea_retained(std::uint32_t sreq) const {
    auto it = retained_.find(sreq);
    return it == retained_.end() ? nullptr : &it->second;
  }

  sim::NodeRuntime& node_;
  int num_tasks_;
  BsendPool bsend_;
  sim::SimCondition arrival_cond_;
  std::vector<MatchRecord>* match_log_ = nullptr;
  std::int64_t eager_sends_ = 0;
  std::int64_t rendezvous_sends_ = 0;
  std::int64_t early_arrivals_ = 0;
  std::size_t ea_bytes_ = 0;

  // Early-arrival flow control state.
  std::map<int, std::size_t> ea_inflight_;  ///< dst task -> uncredited eager bytes.
  struct CreditPeer {
    std::size_t owed = 0;  ///< Bytes retired but not yet credited back.
    bool flagged = false;  ///< A kFlagWantCredit was seen since the last credit.
  };
  std::map<int, CreditPeer> ea_credit_owed_;          ///< Keyed by src task.
  std::map<std::uint32_t, RetainedEager> retained_;   ///< Keyed by sreq (override mode).
  std::int64_t ea_fallbacks_ = 0;
  std::int64_t ea_nacks_ = 0;
};

}  // namespace sp::mpci
