// MPCI over the RDMA/NIC-offload adapter (DESIGN.md §14) — the third channel
// beside PipesChannel and LapiChannel, modeling the post-LAPI generation of
// SP messaging hardware.
//
// Point-to-point protocols:
//  * Eager: RDMA write with immediate (imm = envelope) into the receiver's
//    pre-posted per-peer ring. Admission is credit based — each non-ready,
//    non-empty eager consumes one of `rdma_ring_slots` slots toward that
//    peer; slots are recycled when the message leaves the ring at CQ
//    dispatch and returned in batches as kRingCredit envelopes. A sender out
//    of slots demotes the message to rendezvous (counted in ea_fallbacks).
//  * Rendezvous: RDMA *read*. The RTS carries an 8-byte region token after
//    the envelope; the receiver, once matched, pulls the payload straight
//    into the user buffer (zero copies on either host) and FINs with
//    kRecvDone so the sender can deregister and complete. No CTS, no
//    sender-pushed data phase.
//
// The NIC delivers whole messages in per-source post order (RC-QP
// semantics), so the channel needs no stream parsing and no sequence
// parking. Host time is charged only for doorbells (rank-fiber entry
// points), completion-queue reaps, and the eager ring -> user-buffer copy.
//
// Collectives: nic_barrier / nic_bcast / nic_allreduce run entirely on the
// adapter (RdmaNic::coll_start); the rank fiber blocks on a condition until
// the NIC reports completion — the host never executes per-message work.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "hal/rdma_nic.hpp"
#include "mpci/channel.hpp"
#include "mpci/envelope.hpp"

namespace sp::mpci {

class RdmaChannel : public Channel {
 public:
  RdmaChannel(sim::NodeRuntime& node, hal::RdmaNic& nic, int my_task, int num_tasks);

  void start_send(SendReq& req) override;
  void post_recv(RecvReq& req) override;
  void progress(SendReq& req) override;
  [[nodiscard]] bool iprobe(int ctx, int src_sel, int tag_sel, Status* st) override;

  [[nodiscard]] bool nic_offload() const noexcept override { return true; }
  bool nic_barrier(int ctx, std::uint32_t seq, int rank, const std::vector<int>& tasks) override;
  bool nic_bcast(int ctx, std::uint32_t seq, int rank, int root, const std::vector<int>& tasks,
                 std::byte* buf, std::size_t len) override;
  bool nic_allreduce(int ctx, std::uint32_t seq, int rank, const std::vector<int>& tasks,
                     std::byte* buf, std::size_t len, NicCombine combine) override;

 private:
  /// An unexpected message. Writes arrive whole (the NIC reassembles), so
  /// unlike the other channels there is no partially-arrived state.
  struct EaEntry {
    Envelope env;
    int src_task = 0;
    std::vector<std::byte> data;  ///< Eager payload (moved off the ring).
    lapi::Token token = 0;        ///< Real RTS: sender's registered region.
    bool is_rts = false;          ///< RTS, or a NACKed eager turned pseudo-RTS.
    bool counted = false;         ///< Whether `data` is EA-accounted.
  };

  void on_write(int src, std::span<const std::byte> imm, std::vector<std::byte>&& data);
  void handle_eager(int src, const Envelope& env, std::vector<std::byte>&& data);
  /// Receiver side of the rendezvous: pull the payload via RDMA read, then
  /// complete the receive and FIN the sender.
  void start_read(RecvReq& req, const Envelope& env, int src, lapi::Token token,
                  bool app_context);
  /// Serve a NACKed eager's retained copy as rendezvous data (EA failover).
  void serve_nacked(int dst_task, std::uint32_t sreq, std::uint32_t rreq);
  void send_control_env(int dst_task, const Envelope& env) override;
  /// One eager left the ring: recycle the slot, batch a credit home.
  void ring_slot_freed(int src);
  /// Blocking driver shared by the three adapter-resident collectives.
  bool run_nic_coll(hal::RdmaNic::CollOp&& op);
  void maybe_complete_send(SendReq& req);
  void publish_recv_complete(RecvReq& req, const Envelope& env, bool truncated);
  void deliver_from_ea(RecvReq& req, EaEntry& e, bool app_context);
  [[nodiscard]] RecvReq* match_posted(const Envelope& env);
  [[nodiscard]] std::list<std::unique_ptr<EaEntry>>::iterator find_ea(const RecvReq& req);
  void erase_ea(EaEntry* e);

  hal::RdmaNic& nic_;
  int my_task_;

  std::list<RecvReq*> posted_;
  std::list<std::unique_ptr<EaEntry>> ea_;
  std::map<std::uint32_t, SendReq*> sreqs_;
  std::map<std::uint32_t, RecvReq*> rreqs_;  ///< NACK-service rendezvous only.
  std::map<std::uint32_t, lapi::Token> send_regions_;  ///< sreq -> RTS region.
  std::map<int, std::size_t> ring_credits_;  ///< dst -> free eager-ring slots.
  std::map<int, std::size_t> ring_freed_;    ///< src -> slots freed, uncredited.
  std::vector<std::uint32_t> send_seq_;
  std::uint32_t next_sreq_ = 1;
  std::uint32_t next_rreq_ = 1;
};

}  // namespace sp::mpci
