// MPCI message envelope: the wire-level header that rides in front of every
// point-to-point message (in the byte stream for the native stack; as the
// LAPI user header for MPI-LAPI).
//
// Packed to exactly 32 bytes. The total per-packet header asymmetry the
// paper notes (MPI-LAPI's headers are larger because LAPI is an exposed
// interface) comes from the transport headers: lapi_header_bytes (40) vs
// pipe_header_bytes (24) in MachineConfig.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace sp::mpci {

enum class EnvKind : std::uint8_t {
  kEager = 1,    ///< Eager-protocol message (payload follows / rides along).
  kRts = 2,      ///< Rendezvous request-to-send (no payload).
  kCts = 3,      ///< Rendezvous clear-to-send (receive got posted).
  kRtsData = 4,  ///< Rendezvous data (routed by rreq, no matching).
  kRecvDone = 5, ///< Receiver-side completion notification (buffered mode).
  kEaCredit = 6, ///< EA flow control: receiver returns early-arrival credit.
  kEaNack = 7,   ///< EA flow control: eager refused (EA full); fail over to RTS.
  kRingCredit = 8, ///< RDMA: receiver returns `len` freed eager-ring slots.
};

enum EnvFlags : std::uint8_t {
  kFlagReady = 1,       ///< Ready-mode: fatal if no receive is posted.
  kFlagNotifyDone = 2,  ///< Sender wants a kRecvDone when fully received.
  kFlagWantCredit = 4,  ///< Sender is above half its EA share; credit it back.
  kFlagNackServed = 8,  ///< kRtsData serving a NACKed eager (credit on arrival).
};

struct Envelope {
  std::uint16_t ctx = 0;       ///< Communicator context id.
  std::uint16_t src = 0;       ///< Sender rank (within ctx == task id here).
  std::int32_t tag = 0;
  std::uint32_t seq = 0;       ///< Per-(src,ctx) matching order (non-overtaking).
  std::uint32_t len = 0;       ///< Message payload length.
  std::uint32_t sreq = 0;      ///< Sender-side request id (for CTS / RecvDone).
  std::uint32_t rreq = 0;      ///< Receiver-side request id (for RtsData).
  std::uint16_t cntr_slot = 0; ///< Counter-ring slot (MPI-LAPI "Counters" version).
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(Envelope) == 32, "envelope must pack to 32 bytes");

[[nodiscard]] inline std::vector<std::byte> pack(const Envelope& e) {
  std::vector<std::byte> out(sizeof(Envelope));
  std::memcpy(out.data(), &e, sizeof(Envelope));
  return out;
}

[[nodiscard]] inline Envelope unpack(const std::byte* p) {
  Envelope e;
  std::memcpy(&e, p, sizeof(Envelope));
  return e;
}

}  // namespace sp::mpci
