// Buffered-mode (MPI_Bsend) attach-buffer pool.
//
// MPI_Buffer_attach hands MPCI a user-provided region; buffered sends copy
// their payload into it and return immediately. A slot is released when the
// receiver reports full reception (§4.2, Fig. 8).
#pragma once

#include <cstddef>
#include <list>
#include <stdexcept>
#include <vector>

#include "sim/rank_thread.hpp"

namespace sp::mpci {

class BsendPool {
 public:
  /// Attach a region of `len` bytes (replaces any previous region).
  void attach(std::byte* base, std::size_t len) {
    base_ = base;
    len_ = len;
    allocs_.clear();
    next_slot_ = 0;
  }

  /// Detach; returns the base pointer (caller blocks until drained upstream).
  std::byte* detach() {
    std::byte* b = base_;
    base_ = nullptr;
    len_ = 0;
    return b;
  }

  [[nodiscard]] bool attached() const noexcept { return base_ != nullptr; }
  [[nodiscard]] std::size_t capacity() const noexcept { return len_; }
  [[nodiscard]] std::size_t in_use() const noexcept {
    std::size_t sum = 0;
    for (const auto& a : allocs_) sum += a.len;
    return sum;
  }
  [[nodiscard]] bool empty() const noexcept { return allocs_.empty(); }

  /// Allocate `len` bytes; returns slot id, or -1 if no space (MPI_ERR_BUFFER).
  [[nodiscard]] int alloc(std::size_t len, std::byte** out) {
    if (base_ == nullptr || in_use() + len > len_) return -1;
    // First-fit over the gaps (the list is kept sorted by offset).
    std::size_t off = 0;
    auto it = allocs_.begin();
    for (; it != allocs_.end(); ++it) {
      if (it->off - off >= len) break;
      off = it->off + it->len;
    }
    if (off + len > len_) return -1;
    const int slot = next_slot_++;
    allocs_.insert(it, Alloc{slot, off, len});
    *out = base_ + off;
    return slot;
  }

  /// Release the slot (receiver confirmed delivery).
  void release(int slot) {
    for (auto it = allocs_.begin(); it != allocs_.end(); ++it) {
      if (it->slot == slot) {
        allocs_.erase(it);
        drained.notify_all_pending();
        return;
      }
    }
    throw std::logic_error("BsendPool: releasing unknown slot");
  }

  /// Notified whenever a slot is released (MPI_Buffer_detach waits on this).
  struct DrainCond {
    sim::SimCondition cond;
    sim::Simulator* sim = nullptr;
    void notify_all_pending() {
      if (sim != nullptr) cond.notify_all(*sim);
    }
  } drained;

 private:
  struct Alloc {
    int slot;
    std::size_t off;
    std::size_t len;
  };

  std::byte* base_ = nullptr;
  std::size_t len_ = 0;
  std::list<Alloc> allocs_;
  int next_slot_ = 0;
};

}  // namespace sp::mpci
