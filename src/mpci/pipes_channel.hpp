// The native MPCI: point-to-point messaging over the Pipes byte stream
// (Fig. 1a). Messages are framed as [Envelope][payload] on the ordered
// stream; matching, early-arrival buffering and the eager/rendezvous
// protocols live here.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "mpci/channel.hpp"
#include "mpci/envelope.hpp"
#include "pipes/pipes.hpp"

namespace sp::mpci {

class PipesChannel : public Channel {
 public:
  PipesChannel(sim::NodeRuntime& node, pipes::Pipes& pipes, int my_task, int num_tasks);

  void start_send(SendReq& req) override;
  void post_recv(RecvReq& req) override;
  void progress(SendReq& req) override;
  [[nodiscard]] bool iprobe(int ctx, int src_sel, int tag_sel, Status* st) override;

 private:
  /// An unexpected (early-arrival) message, or a matched-but-detoured one
  /// (truncation / matched mid-arrival).
  struct EaEntry {
    Envelope env;
    int src_task = 0;             ///< Sender's task id (transport address).
    std::vector<std::byte> data;  ///< Early-arrival buffer (eager payload).
    bool arrived = false;         ///< Payload fully received.
    bool is_rts = false;
    RecvReq* bound = nullptr;     ///< Receive that matched while arriving.
    bool counted = false;         ///< Whether `data` is EA-accounted.
  };

  /// Per-source stream parser state.
  struct Parser {
    bool in_payload = false;
    std::size_t remaining = 0;
    std::byte* sink = nullptr;
    std::function<void()> on_complete;
  };

  void on_data(int src);
  void dispatch_envelope(int src, const Envelope& env, Parser& p);
  void send_data_phase(SendReq& req, std::uint32_t rreq);
  /// Serve a NACKed eager's retained copy as rendezvous data (EA failover).
  void serve_nacked(int dst_task, std::uint32_t sreq, std::uint32_t rreq);
  void maybe_complete_send(SendReq& req);
  void publish_recv_complete(RecvReq& req, const Envelope& env, bool truncated);
  void deliver_from_ea(RecvReq& req, EaEntry& e, bool app_context);
  void send_control(int dst_task, const Envelope& env);
  void send_control_env(int dst_task, const Envelope& env) override { send_control(dst_task, env); }
  [[nodiscard]] RecvReq* match_posted(const Envelope& env);
  [[nodiscard]] std::list<std::unique_ptr<EaEntry>>::iterator find_ea(const RecvReq& req);
  void erase_ea(EaEntry* e);

  pipes::Pipes& pipes_;
  int my_task_;

  std::list<RecvReq*> posted_;
  std::list<std::unique_ptr<EaEntry>> ea_;
  std::map<std::uint32_t, SendReq*> sreqs_;
  std::map<std::uint32_t, RecvReq*> rreqs_;
  std::vector<Parser> parsers_;
  std::vector<std::uint32_t> send_seq_;
  std::uint32_t next_sreq_ = 1;
  std::uint32_t next_rreq_ = 1;
};

}  // namespace sp::mpci
