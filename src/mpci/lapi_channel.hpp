// The new, thin MPCI over LAPI — the paper's contribution (Fig. 1c, §4-5).
//
// Point-to-point MPI messages ride on LAPI_Amsend: the MPCI envelope travels
// as the LAPI user header; the registered header handlers perform matching
// and early-arrival handling at the target, returning the user (or EA)
// buffer for LAPI to reassemble into — no receive-side staging copy.
//
// Three versions reproduce §5:
//  * kBase     — completion handlers (on the LAPI completion-handler thread)
//                mark receives complete / send control messages. The two
//                thread context switches dominate latency (§5.1).
//  * kCounters — eager-protocol completions are signalled through a
//                pre-exchanged ring of target counters (LAPI_Address_init at
//                startup); no completion handler for eager traffic (§5.2).
//                Rendezvous control still pays the handler thread.
//  * kEnhanced — the paper's LAPI enhancement: predefined completion handlers
//                run inline in dispatcher context for all traffic (§5.3).
//
// MPI non-overtaking over the out-of-order transport: matching envelopes
// (kEager/kRts) carry a per-(source task) sequence number; an envelope whose
// predecessors have not yet been seen is parked in the early-arrival queue
// (its payload still reassembles concurrently) and becomes matchable only in
// sequence order.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "lapi/lapi.hpp"
#include "mpci/channel.hpp"
#include "mpci/envelope.hpp"

namespace sp::mpci {

enum class LapiVariant : std::uint8_t { kBase, kCounters, kEnhanced };

class LapiChannel : public Channel {
 public:
  LapiChannel(sim::NodeRuntime& node, lapi::Lapi& lapi, LapiVariant variant, int my_task,
              int num_tasks);

  void start_send(SendReq& req) override;
  void post_recv(RecvReq& req) override;
  void progress(SendReq& req) override;
  void on_thread_start() override;
  [[nodiscard]] bool iprobe(int ctx, int src_sel, int tag_sel, Status* st) override;

  [[nodiscard]] LapiVariant variant() const noexcept { return variant_; }

 private:
  /// Sender-side per-request LAPI counters (org / cmpl) with bump hooks.
  struct SReqState {
    lapi::Cntr org;
    lapi::Cntr cmpl;
  };

  struct EaEntry {
    Envelope env;
    int src_task = 0;
    std::vector<std::byte> data;
    bool arrived = false;
    bool is_rts = false;
    bool matchable = true;       ///< False while parked for sequence order.
    bool counted = false;
    RecvReq* bound = nullptr;
    lapi::Cntr* watch = nullptr; ///< Counters version: arrival signal.
  };

  // Header handlers (registered in construction order; ids must agree across
  // tasks, which the Machine guarantees by building channels identically).
  lapi::Lapi::HeaderHandlerResult hh_eager(int origin, const std::byte* uhdr,
                                           std::size_t uhdr_len, std::size_t total);
  lapi::Lapi::HeaderHandlerResult hh_cts(int origin, const std::byte* uhdr,
                                         std::size_t uhdr_len, std::size_t total);
  lapi::Lapi::HeaderHandlerResult hh_rtsdata(int origin, const std::byte* uhdr,
                                             std::size_t uhdr_len, std::size_t total);

  /// In-order processing of a matching envelope (eager or RTS).
  lapi::Lapi::HeaderHandlerResult process_in_order(const Envelope& env, int origin,
                                                   std::size_t total);
  /// Drain parked envelopes that have become in-order (runs outside the
  /// header handler so it may make LAPI calls).
  void drain_parked(int origin);
  void match_parked_entry(EaEntry& e);

  void send_data_phase(SendReq& req);
  void send_cts(int dst_task, std::uint32_t sreq, RecvReq& r);
  /// Serve a NACKed eager's retained copy as rendezvous data (EA failover).
  void serve_nacked(int dst_task, std::uint32_t sreq, std::uint32_t rreq);
  /// Control envelopes (EA credits / NACKs) ride the CTS header handler.
  void send_control_env(int dst_task, const Envelope& env) override;
  /// Credit the sender back when an eager (or NACK-served data) retires.
  void maybe_retire(int origin, const Envelope& env);
  /// Counters variant: absorb the stale ring-slot bump of a refused eager.
  void absorb_ring_bump(int origin, std::uint16_t slot_idx);
  /// Header-handler result for a refused eager: scratch reassembly + NACK.
  [[nodiscard]] lapi::Lapi::HeaderHandlerResult nack_result(int origin, const Envelope& env,
                                                            std::size_t total);
  void maybe_complete_send(SendReq& req);
  void publish_recv_complete(RecvReq& req, const Envelope& env);
  void deliver_from_ea(RecvReq& req, EaEntry& e, bool app_context);
  void setup_counters_recv(RecvReq& req, int origin, const Envelope& env);
  void bind_counters_ea(RecvReq& req, EaEntry& e);
  void erase_ea(EaEntry* e);

  [[nodiscard]] RecvReq* match_posted(const Envelope& env);
  [[nodiscard]] lapi::Token ring_token(int dst, std::uint16_t slot) const;
  [[nodiscard]] lapi::Cntr* ring_slot(int src, std::uint16_t slot);
  [[nodiscard]] SReqState& sstate(SendReq& req);
  void gc_sstate(std::uint32_t id);

  lapi::Lapi& lapi_;
  LapiVariant variant_;
  int my_task_;

  int hh_eager_id_ = -1;
  int hh_cts_id_ = -1;
  int hh_rtsdata_id_ = -1;

  std::list<RecvReq*> posted_;
  std::list<std::unique_ptr<EaEntry>> ea_;
  std::map<std::uint32_t, SendReq*> sreqs_;
  std::map<std::uint32_t, RecvReq*> rreqs_;
  std::map<std::uint32_t, std::unique_ptr<SReqState>> sstates_;

  // Sequence gating (per source task / per destination task).
  std::vector<std::uint32_t> send_seq_;
  std::vector<std::uint32_t> expected_;
  std::vector<std::map<std::uint32_t, EaEntry*>> parked_;
  std::vector<bool> drain_scheduled_;

  // Counters version: per-source inbound counter rings and outbound tokens.
  std::vector<std::vector<lapi::Cntr>> ring_in_;
  std::vector<lapi::Token> ring_out_;
  std::vector<std::uint32_t> slot_next_;

  std::uint32_t next_sreq_ = 1;
  std::uint32_t next_rreq_ = 1;
};

}  // namespace sp::mpci
