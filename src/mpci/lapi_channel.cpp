#include "mpci/lapi_channel.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace sp::mpci {

namespace {
[[nodiscard]] sim::TimeNs copy_cost(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.copy_call_ns +
         static_cast<sim::TimeNs>(std::llround(cfg.copy_ns_per_byte * static_cast<double>(bytes)));
}

constexpr std::uint64_t kRingExchangeBase = 0xC0DE0000ULL;
}  // namespace

LapiChannel::LapiChannel(sim::NodeRuntime& node, lapi::Lapi& lapi, LapiVariant variant,
                         int my_task, int num_tasks)
    : Channel(node, num_tasks),
      lapi_(lapi),
      variant_(variant),
      my_task_(my_task),
      send_seq_(static_cast<std::size_t>(num_tasks), 0),
      expected_(static_cast<std::size_t>(num_tasks), 0),
      parked_(static_cast<std::size_t>(num_tasks)),
      drain_scheduled_(static_cast<std::size_t>(num_tasks), false),
      ring_out_(static_cast<std::size_t>(num_tasks), 0),
      slot_next_(static_cast<std::size_t>(num_tasks), 0) {
  // The paper's §5.3 enhancement is a property of the LAPI library itself.
  lapi_.set_inline_completion_allowed(variant_ == LapiVariant::kEnhanced);

  if (variant_ == LapiVariant::kCounters) {
    ring_in_.reserve(static_cast<std::size_t>(num_tasks));
    for (int s = 0; s < num_tasks; ++s) {
      ring_in_.emplace_back(static_cast<std::size_t>(node_.cfg.counter_ring_slots));
    }
  }

  hh_eager_id_ = lapi_.register_header_handler(
      [this](int origin, const std::byte* uhdr, std::size_t uhdr_len, std::size_t total) {
        return hh_eager(origin, uhdr, uhdr_len, total);
      });
  hh_cts_id_ = lapi_.register_header_handler(
      [this](int origin, const std::byte* uhdr, std::size_t uhdr_len, std::size_t total) {
        return hh_cts(origin, uhdr, uhdr_len, total);
      });
  hh_rtsdata_id_ = lapi_.register_header_handler(
      [this](int origin, const std::byte* uhdr, std::size_t uhdr_len, std::size_t total) {
        return hh_rtsdata(origin, uhdr, uhdr_len, total);
      });
}

void LapiChannel::on_thread_start() {
  if (variant_ != LapiVariant::kCounters) return;
  // §5.2: "a set of counters whose addresses are exchanged among the
  // participating MPI processes during initialization".
  for (int s = 0; s < num_tasks_; ++s) {
    auto table = lapi_.address_init(kRingExchangeBase + static_cast<std::uint64_t>(s),
                                    lapi::Lapi::token_of(ring_in_[static_cast<std::size_t>(s)].data()));
    if (s == my_task_) ring_out_ = table;
  }
}

lapi::Token LapiChannel::ring_token(int dst, std::uint16_t slot) const {
  return ring_out_[static_cast<std::size_t>(dst)] +
         static_cast<lapi::Token>(slot) * sizeof(lapi::Cntr);
}

lapi::Cntr* LapiChannel::ring_slot(int src, std::uint16_t slot) {
  return &ring_in_[static_cast<std::size_t>(src)][slot];
}

LapiChannel::SReqState& LapiChannel::sstate(SendReq& req) {
  auto it = sstates_.find(req.id);
  if (it == sstates_.end()) {
    it = sstates_.emplace(req.id, std::make_unique<SReqState>()).first;
  }
  return *it->second;
}

void LapiChannel::gc_sstate(std::uint32_t id) { sstates_.erase(id); }

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

void LapiChannel::start_send(SendReq& req) {
  req.proto = choose_protocol(req.mode, req.len, req.dst);
  req.id = next_sreq_++;

  Envelope env;
  env.ctx = static_cast<std::uint16_t>(req.ctx);
  env.src = static_cast<std::uint16_t>(req.src_in_comm);
  env.tag = req.tag;
  env.len = static_cast<std::uint32_t>(req.len);
  env.sreq = req.id;
  if (req.mode == Mode::kReady) env.flags |= kFlagReady;

  SReqState& st = sstate(req);
  st.org.on_bump = [this, &req] {
    req.reusable = true;
    maybe_complete_send(req);
  };
  lapi::Cntr* cmpl = nullptr;
  if (req.bsend_slot >= 0) {
    cmpl = &st.cmpl;
    st.cmpl.on_bump = [this, &req] {
      bsend_.release(req.bsend_slot);
      req.bsend_released = true;
      req.cond.notify_all(node_.sim);
      if (req.complete) {
        // Deferred: the counter whose hook is running lives in this state.
        node_.sim.after(0, sim::sched_node_key(node_.node),
                        [this, id = req.id] { gc_sstate(id); });
      }
    };
  }

  if (req.proto == Protocol::kEager) {
    note_eager_send(req.dst, req.len);
    env.kind = static_cast<std::uint8_t>(EnvKind::kEager);
    req.seq = send_seq_[static_cast<std::size_t>(req.dst)]++;
    env.seq = req.seq;
    lapi::Token tgt = 0;
    if (variant_ == LapiVariant::kCounters) {
      env.cntr_slot = static_cast<std::uint16_t>(
          slot_next_[static_cast<std::size_t>(req.dst)]++ %
          static_cast<std::uint32_t>(node_.cfg.counter_ring_slots));
      tgt = ring_token(req.dst, env.cntr_slot);
    }
    ea_note_eager_departure(req.dst, env, req.buf);
    auto uhdr = pack(env);
    lapi_.amsend(req.dst, hh_eager_id_, uhdr.data(), uhdr.size(), req.buf, req.len, tgt,
                 &st.org, cmpl);
  } else {
    note_rendezvous_send(req.dst, req.len);
    sreqs_.emplace(req.id, &req);
    env.kind = static_cast<std::uint8_t>(EnvKind::kRts);
    req.seq = send_seq_[static_cast<std::size_t>(req.dst)]++;
    env.seq = req.seq;
    auto uhdr = pack(env);
    // Fig. 4a: the request-to-send carries no data.
    lapi_.amsend(req.dst, hh_eager_id_, uhdr.data(), uhdr.size(), nullptr, 0, 0, nullptr,
                 nullptr);
  }

  if (req.bsend_slot >= 0) {
    req.reusable = true;
    req.complete = true;
  }
}

void LapiChannel::progress(SendReq& req) {
  if (req.proto == Protocol::kRendezvous && req.cts_received && !req.data_sent) {
    send_data_phase(req);
  }
}

void LapiChannel::send_data_phase(SendReq& req) {
  if (req.data_sent) return;  // progress() and the CTS handler can race
  req.data_sent = true;
  Envelope env;
  env.ctx = static_cast<std::uint16_t>(req.ctx);
  env.src = static_cast<std::uint16_t>(req.src_in_comm);
  env.tag = req.tag;
  env.seq = req.seq;
  env.len = static_cast<std::uint32_t>(req.len);
  env.kind = static_cast<std::uint8_t>(EnvKind::kRtsData);
  env.sreq = req.id;
  env.rreq = req.rreq_cache;

  SReqState& st = sstate(req);
  lapi::Token tgt = 0;
  if (variant_ == LapiVariant::kCounters) {
    env.cntr_slot = static_cast<std::uint16_t>(
        slot_next_[static_cast<std::size_t>(req.dst)]++ %
        static_cast<std::uint32_t>(node_.cfg.counter_ring_slots));
    tgt = ring_token(req.dst, env.cntr_slot);
  }
  lapi::Cntr* cmpl = req.bsend_slot >= 0 ? &st.cmpl : nullptr;
  auto uhdr = pack(env);
  lapi_.amsend(req.dst, hh_rtsdata_id_, uhdr.data(), uhdr.size(), req.buf, req.len, tgt,
               &st.org, cmpl);
  sreqs_.erase(req.id);
}

void LapiChannel::maybe_complete_send(SendReq& req) {
  if (req.complete) {
    req.cond.notify_all(node_.sim);
    return;
  }
  const bool done = (req.proto == Protocol::kEager) ? req.reusable
                                                    : (req.data_sent && req.reusable);
  if (done) {
    req.complete = true;
    req.cond.notify_all(node_.sim);
    if (req.bsend_slot < 0 || req.bsend_released) {
      // Deferred: this is called from the org counter's own bump hook.
      node_.sim.after(0, sim::sched_node_key(node_.node),
                      [this, id = req.id] { gc_sstate(id); });
    }
  }
}

void LapiChannel::send_cts(int dst_task, std::uint32_t sreq, RecvReq& r) {
  r.id = next_rreq_++;
  rreqs_.emplace(r.id, &r);
  Envelope cts;
  cts.kind = static_cast<std::uint8_t>(EnvKind::kCts);
  cts.sreq = sreq;
  cts.rreq = r.id;
  auto uhdr = pack(cts);
  lapi_.amsend(dst_task, hh_cts_id_, uhdr.data(), uhdr.size(), nullptr, 0, 0, nullptr,
               nullptr);
}

// ---------------------------------------------------------------------------
// Receive side: header handlers
// ---------------------------------------------------------------------------

RecvReq* LapiChannel::match_posted(const Envelope& env) {
  int scanned = 0;
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    ++scanned;
    RecvReq* r = *it;
    if (r->ctx == env.ctx && (r->src_sel == kAnySource || r->src_sel == env.src) &&
        (r->tag_sel == kAnyTag || r->tag_sel == env.tag)) {
      posted_.erase(it);
      charge_match_event(scanned);
      return r;
    }
  }
  charge_match_event(scanned);
  return nullptr;
}

lapi::Lapi::HeaderHandlerResult LapiChannel::hh_eager(int origin, const std::byte* uhdr,
                                                      std::size_t uhdr_len,
                                                      std::size_t total) {
  assert(uhdr != nullptr && uhdr_len >= sizeof(Envelope));
  (void)uhdr_len;
  const Envelope env = unpack(uhdr);
  auto& expected = expected_[static_cast<std::size_t>(origin)];

  if (env.seq == expected) {
    ++expected;
    auto res = process_in_order(env, origin, total);
    // Later-sequence envelopes may already be parked; make them matchable —
    // outside header-handler context, since matching an RTS sends a CTS.
    if (!parked_[static_cast<std::size_t>(origin)].empty() &&
        !drain_scheduled_[static_cast<std::size_t>(origin)]) {
      drain_scheduled_[static_cast<std::size_t>(origin)] = true;
      node_.sim.after(0, sim::sched_node_key(node_.node),
                      [this, origin] { drain_parked(origin); });
    }
    return res;
  }

  // Out of order: park. The payload still reassembles into an EA buffer; the
  // envelope becomes matchable only when its predecessors have been seen.
  auto e = std::make_unique<EaEntry>();
  e->env = env;
  e->src_task = origin;
  e->matchable = false;
  e->is_rts = env.kind == static_cast<std::uint8_t>(EnvKind::kRts);
  EaEntry* ep = e.get();
  if (!e->is_rts) {
    if (!try_ea_reserve(env.len)) {
      // EA pool exhausted: refuse the eager. It parks as a pseudo-RTS (the
      // sequence gate still applies); the payload reassembles into scratch
      // that is dropped, and the sender re-sends from its retained copy once
      // the pseudo-RTS matches (previously this was fatal).
      e->is_rts = true;
      e->arrived = true;
      parked_[static_cast<std::size_t>(origin)].emplace(env.seq, ep);
      ea_.push_back(std::move(e));
      return nack_result(origin, env, total);
    }
    e->counted = true;
    e->data.resize(env.len);
  } else {
    e->arrived = true;
  }
  parked_[static_cast<std::size_t>(origin)].emplace(env.seq, ep);
  ea_.push_back(std::move(e));

  lapi::Lapi::HeaderHandlerResult res;
  res.buffer = ep->data.data();
  if (ep->is_rts) return res;
  if (variant_ == LapiVariant::kCounters) {
    ep->watch = ring_slot(origin, env.cntr_slot);
  } else {
    res.inline_completion = variant_ == LapiVariant::kEnhanced;
    res.completion = [this, ep](void*) {
      node_.publish([this, ep] {
        ep->arrived = true;
        if (ep->bound != nullptr) deliver_from_ea(*ep->bound, *ep, /*app_context=*/false);
      });
    };
  }
  return res;
}

lapi::Lapi::HeaderHandlerResult LapiChannel::process_in_order(const Envelope& env,
                                                              int origin,
                                                              std::size_t total) {
  lapi::Lapi::HeaderHandlerResult res;

  if (env.kind == static_cast<std::uint8_t>(EnvKind::kRts)) {
    RecvReq* r = match_posted(env);
    if (r != nullptr) {
      r->status = Status{static_cast<int>(env.src), env.tag, env.len};
      // Fig. 4c: the CTS goes back from the completion handler (which may
      // make LAPI calls). Enhanced runs it inline; Base/Counters pay the
      // completion-handler thread switch.
      res.inline_completion = variant_ == LapiVariant::kEnhanced;
      res.completion = [this, origin, sreq = env.sreq, r](void*) { send_cts(origin, sreq, *r); };
    } else {
      auto e = std::make_unique<EaEntry>();
      e->env = env;
      e->src_task = origin;
      e->is_rts = true;
      e->arrived = true;
      ea_.push_back(std::move(e));
      publish_arrival();
    }
    return res;
  }

  // Eager message.
  assert(env.kind == static_cast<std::uint8_t>(EnvKind::kEager));
  RecvReq* r = match_posted(env);
  if (r != nullptr && env.len <= r->cap) {
    res.buffer = r->buf;
    if (variant_ == LapiVariant::kCounters) {
      setup_counters_recv(*r, origin, env);
    } else {
      res.inline_completion = variant_ == LapiVariant::kEnhanced;
      res.completion = [this, r, env, origin](void*) {
        publish_recv_complete(*r, env);
        maybe_retire(origin, env);
      };
    }
    return res;
  }
  if (r == nullptr && (env.flags & kFlagReady) != 0) {
    throw FatalMpiError("ready-mode message arrived before its receive was posted");
  }
  if (r == nullptr && !try_ea_reserve(env.len)) {
    // EA pool exhausted: refuse the eager — it stays behind as a matchable
    // pseudo-RTS served from the sender's retained copy (previously fatal).
    auto e = std::make_unique<EaEntry>();
    e->env = env;
    e->src_task = origin;
    e->is_rts = true;
    e->arrived = true;
    ea_.push_back(std::move(e));
    publish_arrival();
    return nack_result(origin, env, total);
  }

  // Early arrival (or truncation detour).
  auto e = std::make_unique<EaEntry>();
  e->env = env;
  e->src_task = origin;
  e->bound = r;  // non-null on truncation
  if (r == nullptr) e->counted = true;  // the try_ea_reserve above succeeded
  e->data.resize(total);
  EaEntry* ep = e.get();
  ea_.push_back(std::move(e));
  if (ep->bound == nullptr) publish_arrival();
  res.buffer = ep->data.data();
  if (variant_ == LapiVariant::kCounters) {
    ep->watch = ring_slot(origin, env.cntr_slot);
    if (ep->bound != nullptr) bind_counters_ea(*ep->bound, *ep);
  } else {
    res.inline_completion = variant_ == LapiVariant::kEnhanced;
    res.completion = [this, ep](void*) {
      node_.publish([this, ep] {
        ep->arrived = true;
        if (ep->bound != nullptr) deliver_from_ea(*ep->bound, *ep, /*app_context=*/false);
      });
    };
  }
  return res;
}

void LapiChannel::drain_parked(int origin) {
  // Runs as a simulator event: any LAPI call made while matching parked
  // envelopes (e.g. a CTS for a parked RTS) is dispatcher-context work.
  lapi::Lapi::CallbackScope scope(lapi_);
  drain_scheduled_[static_cast<std::size_t>(origin)] = false;
  auto& parked = parked_[static_cast<std::size_t>(origin)];
  auto& expected = expected_[static_cast<std::size_t>(origin)];
  while (true) {
    auto it = parked.find(expected);
    if (it == parked.end()) break;
    EaEntry* e = it->second;
    parked.erase(it);
    ++expected;
    e->matchable = true;
    match_parked_entry(*e);
  }
}

void LapiChannel::match_parked_entry(EaEntry& e) {
  RecvReq* r = match_posted(e.env);
  if (r == nullptr) {
    if (!e.is_rts && (e.env.flags & kFlagReady) != 0) {
      throw FatalMpiError("ready-mode message arrived before its receive was posted");
    }
    publish_arrival();
    return;  // stays in the EA queue, now matchable
  }
  if (e.is_rts) {
    r->status = Status{static_cast<int>(e.env.src), e.env.tag, e.env.len};
    send_cts(e.src_task, e.env.sreq, *r);
    erase_ea(&e);
    return;
  }
  if (variant_ == LapiVariant::kCounters) {
    bind_counters_ea(*r, e);
    return;
  }
  if (e.arrived) {
    deliver_from_ea(*r, e, /*app_context=*/false);
  } else {
    e.bound = r;
  }
}

lapi::Lapi::HeaderHandlerResult LapiChannel::hh_cts(int origin, const std::byte* uhdr,
                                                    std::size_t uhdr_len, std::size_t) {
  assert(uhdr != nullptr && uhdr_len >= sizeof(Envelope));
  (void)uhdr_len;
  const Envelope env = unpack(uhdr);
  lapi::Lapi::HeaderHandlerResult res;

  // EA flow-control traffic rides this handler too (header-only, no reply).
  if (env.kind == static_cast<std::uint8_t>(EnvKind::kEaCredit)) {
    ea_on_credit(origin, env);
    return res;
  }
  if (env.kind == static_cast<std::uint8_t>(EnvKind::kEaNack)) {
    ea_on_nack(env);
    return res;
  }

  auto it = sreqs_.find(env.sreq);
  if (it == sreqs_.end() || it->second->proto == Protocol::kEager) {
    // A CTS for an eager send: the receiver NACKed it into a pseudo-RTS and
    // is clearing us to re-send from the retained copy. (A plain eager isn't
    // in sreqs_; a buffered one still is, awaiting its kRecvDone.)
    res.inline_completion = variant_ == LapiVariant::kEnhanced;
    res.completion = [this, origin, env](void*) { serve_nacked(origin, env.sreq, env.rreq); };
    return res;
  }
  SendReq* s = it->second;
  s->cts_received = true;
  s->rreq_cache = env.rreq;

  if (s->blocking) {
    // Fig. 6: wake the blocked sender; it pushes the data from app context.
    node_.publish([this, s] { s->cond.notify_all(node_.sim); });
  } else {
    // Fig. 7: the data phase is issued from the completion handler. A
    // concurrent MPI_Wait/Test may push it first via progress(), after which
    // the request may already be gone — re-resolve it by id.
    res.inline_completion = variant_ == LapiVariant::kEnhanced;
    res.completion = [this, id = env.sreq](void*) {
      auto sit = sreqs_.find(id);
      if (sit != sreqs_.end()) send_data_phase(*sit->second);
    };
  }
  return res;
}

lapi::Lapi::HeaderHandlerResult LapiChannel::hh_rtsdata(int origin, const std::byte* uhdr,
                                                        std::size_t uhdr_len,
                                                        std::size_t total) {
  assert(uhdr != nullptr && uhdr_len >= sizeof(Envelope));
  (void)uhdr_len;
  const Envelope env = unpack(uhdr);
  auto it = rreqs_.find(env.rreq);
  assert(it != rreqs_.end() && "rendezvous data for unknown receive");
  RecvReq* r = it->second;
  rreqs_.erase(it);

  lapi::Lapi::HeaderHandlerResult res;
  if (env.len <= r->cap) {
    res.buffer = r->buf;
    if (variant_ == LapiVariant::kCounters) {
      setup_counters_recv(*r, origin, env);
    } else {
      res.inline_completion = variant_ == LapiVariant::kEnhanced;
      res.completion = [this, r, env, origin](void*) {
        publish_recv_complete(*r, env);
        maybe_retire(origin, env);
      };
    }
    return res;
  }
  // Truncation detour.
  auto e = std::make_unique<EaEntry>();
  e->env = env;
  e->src_task = origin;
  e->bound = r;
  e->data.resize(total);
  EaEntry* ep = e.get();
  ea_.push_back(std::move(e));
  res.buffer = ep->data.data();
  if (variant_ == LapiVariant::kCounters) {
    ep->watch = ring_slot(origin, env.cntr_slot);
    bind_counters_ea(*r, *ep);
  } else {
    res.inline_completion = variant_ == LapiVariant::kEnhanced;
    res.completion = [this, ep](void*) {
      node_.publish([this, ep] {
        ep->arrived = true;
        deliver_from_ea(*ep->bound, *ep, /*app_context=*/false);
      });
    };
  }
  return res;
}

// ---------------------------------------------------------------------------
// Completion plumbing
// ---------------------------------------------------------------------------

void LapiChannel::publish_recv_complete(RecvReq& req, const Envelope& env) {
  node_.publish([this, &req, env] {
    req.complete = true;
    req.truncated = env.len > req.cap;
    req.status = Status{static_cast<int>(env.src), env.tag,
                        std::min<std::size_t>(env.len, req.cap)};
    note_recv_complete(env.ctx, env.src, env.tag, env.seq, env.len);
    req.cond.notify_all(node_.sim);
  });
}

void LapiChannel::setup_counters_recv(RecvReq& req, int origin, const Envelope& env) {
  req.watch = ring_slot(origin, env.cntr_slot);
  req.status = Status{static_cast<int>(env.src), env.tag, env.len};  // provisional
  // A waiter may already be blocked on req.cond; wake it so it re-evaluates
  // and switches to waiting on the counter.
  node_.publish([this, &req] { req.cond.notify_all(node_.sim); });
  req.poll = [this, &req, env, origin]() {
    if (req.watch->value <= 0) return false;
    --req.watch->value;
    req.complete = true;
    req.truncated = env.len > req.cap;
    req.status = Status{static_cast<int>(env.src), env.tag,
                        std::min<std::size_t>(env.len, req.cap)};
    note_recv_complete(env.ctx, env.src, env.tag, env.seq, env.len);
    maybe_retire(origin, env);
    return true;
  };
}

void LapiChannel::bind_counters_ea(RecvReq& req, EaEntry& e) {
  req.watch = e.watch;
  e.bound = &req;
  node_.publish([this, &req] { req.cond.notify_all(node_.sim); });
  EaEntry* ep = &e;
  req.poll = [this, &req, ep]() {
    if (req.watch->value <= 0) return false;
    --req.watch->value;
    deliver_from_ea(req, *ep, /*app_context=*/true);
    return true;
  };
}

void LapiChannel::deliver_from_ea(RecvReq& req, EaEntry& e, bool app_context) {
  const std::size_t n = std::min<std::size_t>(e.env.len, req.cap);
  const sim::TimeNs cost = copy_cost(node_.cfg, n);
  if (app_context) {
    node_.app_charge(cost);
  } else {
    node_.cpu.charge(node_.sim, cost);
  }
  if (n > 0) std::memcpy(req.buf, e.data.data(), n);
  publish_recv_complete(req, e.env);
  erase_ea(&e);
}

void LapiChannel::erase_ea(EaEntry* e) {
  for (auto it = ea_.begin(); it != ea_.end(); ++it) {
    if (it->get() == e) {
      if (e->counted) ea_release(e->env.len);
      // Credit the sender for a consumed eager (a pseudo-RTS — kind kEager
      // but is_rts — is credited later, when its rendezvous data lands).
      const bool eager = e->env.kind == static_cast<std::uint8_t>(EnvKind::kEager) && !e->is_rts;
      const bool nack_served = e->env.kind == static_cast<std::uint8_t>(EnvKind::kRtsData) &&
                               (e->env.flags & kFlagNackServed) != 0;
      if (eager || nack_served) ea_note_retired(e->src_task, e->env);
      ea_.erase(it);
      return;
    }
  }
  assert(false && "erase_ea: entry not found");
}

void LapiChannel::maybe_retire(int origin, const Envelope& env) {
  const bool eager = env.kind == static_cast<std::uint8_t>(EnvKind::kEager);
  const bool nack_served = (env.flags & kFlagNackServed) != 0;
  if (eager || nack_served) ea_note_retired(origin, env);
}

void LapiChannel::send_control_env(int dst_task, const Envelope& env) {
  // Credits and NACKs are dispatcher-context control traffic: no app-side
  // LAPI call charge regardless of which context retired the message.
  lapi::Lapi::CallbackScope scope(lapi_);
  auto uhdr = pack(env);
  lapi_.amsend(dst_task, hh_cts_id_, uhdr.data(), uhdr.size(), nullptr, 0, 0, nullptr,
               nullptr);
}

void LapiChannel::serve_nacked(int dst_task, std::uint32_t sreq, std::uint32_t rreq) {
  const RetainedEager* ret = ea_retained(sreq);
  assert(ret != nullptr && "CTS for unknown send request (no retained NACK copy)");
  Envelope env = ret->env;
  env.kind = static_cast<std::uint8_t>(EnvKind::kRtsData);
  env.rreq = rreq;
  env.flags |= kFlagNackServed;
  lapi::Token tgt = 0;
  if (variant_ == LapiVariant::kCounters) {
    env.cntr_slot = static_cast<std::uint16_t>(
        slot_next_[static_cast<std::size_t>(dst_task)]++ %
        static_cast<std::uint32_t>(node_.cfg.counter_ring_slots));
    tgt = ring_token(dst_task, env.cntr_slot);
  }
  // The retained vector stays alive until the receiver's credit retires it,
  // strictly after this data lands — safe to borrow.
  auto uhdr = pack(env);
  lapi_.amsend(dst_task, hh_rtsdata_id_, uhdr.data(), uhdr.size(), ret->data.data(),
               ret->data.size(), tgt, nullptr, nullptr);
}

lapi::Lapi::HeaderHandlerResult LapiChannel::nack_result(int origin, const Envelope& env,
                                                         std::size_t total) {
  // The refused payload still reassembles — into scratch owned by the
  // completion closure, which then issues the NACK (completion context may
  // make LAPI calls) and drops the bytes.
  auto scratch = std::make_shared<std::vector<std::byte>>(std::max<std::size_t>(total, 1));
  lapi::Lapi::HeaderHandlerResult res;
  res.buffer = scratch->data();
  res.inline_completion = variant_ == LapiVariant::kEnhanced;
  res.completion = [this, origin, env, scratch](void*) {
    if (variant_ == LapiVariant::kCounters) absorb_ring_bump(origin, env.cntr_slot);
    ea_issue_nack(origin, env);
  };
  return res;
}

void LapiChannel::absorb_ring_bump(int origin, std::uint16_t slot_idx) {
  lapi::Cntr* slot = ring_slot(origin, slot_idx);
  // The refused eager's target-counter bump is still in flight (completion
  // handlers run before the bump publishes). Chain a one-shot hook that
  // swallows exactly one bump so a later receive reusing this ring slot
  // doesn't complete before its own data. Counter values are fungible: if
  // the hook fires on a different message's bump first, the stale bump
  // repays that debt when it lands.
  auto done = std::make_shared<bool>(false);
  slot->on_bump = [slot, done, prev = std::move(slot->on_bump)] {
    if (*done) {
      if (prev) prev();
      return;
    }
    *done = true;
    --slot->value;
  };
}

// ---------------------------------------------------------------------------
// post_recv
// ---------------------------------------------------------------------------

bool LapiChannel::iprobe(int ctx, int src_sel, int tag_sel, Status* st) {
  charge_match_app(static_cast<int>(ea_.size()));
  // Same non-overtaking selection rule as post_recv: a candidate counts only
  // if no earlier-sequence matchable candidate from the same source exists.
  const EaEntry* chosen = nullptr;
  for (const auto& ep : ea_) {
    const EaEntry& e = *ep;
    if (!e.matchable || e.bound != nullptr) continue;
    if (e.env.ctx != ctx) continue;
    if (src_sel != kAnySource && src_sel != e.env.src) continue;
    if (tag_sel != kAnyTag && tag_sel != e.env.tag) continue;
    if (chosen == nullptr ||
        (e.src_task == chosen->src_task && e.env.seq < chosen->env.seq)) {
      chosen = &e;
    }
  }
  if (chosen == nullptr) return false;
  if (st != nullptr) {
    *st = Status{static_cast<int>(chosen->env.src), chosen->env.tag, chosen->env.len};
  }
  return true;
}

void LapiChannel::post_recv(RecvReq& req) {
  charge_match_app(static_cast<int>(ea_.size()));
  // MPI non-overtaking: among matchable early arrivals, a candidate may only
  // be taken if no earlier-sequence candidate from the same source also
  // matches (arrival order != send order on the multipath switch). Among the
  // per-source front-runners, earliest arrival wins (wildcard sources).
  auto chosen = ea_.end();
  for (auto it = ea_.begin(); it != ea_.end(); ++it) {
    EaEntry& e = **it;
    if (!e.matchable || e.bound != nullptr) continue;
    if (e.env.ctx != req.ctx) continue;
    if (req.src_sel != kAnySource && req.src_sel != e.env.src) continue;
    if (req.tag_sel != kAnyTag && req.tag_sel != e.env.tag) continue;
    if (chosen == ea_.end()) {
      chosen = it;
    } else if ((*it)->src_task == (*chosen)->src_task &&
               (*it)->env.seq < (*chosen)->env.seq) {
      chosen = it;
    }
  }
  if (chosen != ea_.end()) {
    auto it = chosen;
    EaEntry& e = **it;
    if (e.is_rts) {
      req.status = Status{static_cast<int>(e.env.src), e.env.tag, e.env.len};
      send_cts(e.src_task, e.env.sreq, req);
      ea_.erase(it);
      return;
    }
    if (variant_ == LapiVariant::kCounters) {
      bind_counters_ea(req, e);
      return;
    }
    if (e.arrived) {
      deliver_from_ea(req, e, /*app_context=*/true);
    } else {
      e.bound = &req;
    }
    return;
  }
  posted_.push_back(&req);
}

}  // namespace sp::mpci
