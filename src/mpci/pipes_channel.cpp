#include "mpci/pipes_channel.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace sp::mpci {

namespace {
[[nodiscard]] sim::TimeNs copy_cost(const sim::MachineConfig& cfg, std::size_t bytes) {
  return cfg.copy_call_ns +
         static_cast<sim::TimeNs>(std::llround(cfg.copy_ns_per_byte * static_cast<double>(bytes)));
}
}  // namespace

PipesChannel::PipesChannel(sim::NodeRuntime& node, pipes::Pipes& pipes, int my_task,
                           int num_tasks)
    : Channel(node, num_tasks),
      pipes_(pipes),
      my_task_(my_task),
      parsers_(static_cast<std::size_t>(num_tasks)),
      send_seq_(static_cast<std::size_t>(num_tasks), 0) {
  pipes_.set_on_data([this](int src) { on_data(src); });
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

void PipesChannel::start_send(SendReq& req) {
  req.proto = choose_protocol(req.mode, req.len, req.dst);
  req.id = next_sreq_++;

  Envelope env;
  env.ctx = static_cast<std::uint16_t>(req.ctx);
  env.src = static_cast<std::uint16_t>(req.src_in_comm);
  env.tag = req.tag;
  req.seq = send_seq_[static_cast<std::size_t>(req.dst)]++;
  env.seq = req.seq;
  env.len = static_cast<std::uint32_t>(req.len);
  env.sreq = req.id;
  if (req.mode == Mode::kReady) env.flags |= kFlagReady;
  if (req.bsend_slot >= 0) env.flags |= kFlagNotifyDone;

  if (req.proto == Protocol::kEager) {
    note_eager_send(req.dst, req.len);
    env.kind = static_cast<std::uint8_t>(EnvKind::kEager);
    ea_note_eager_departure(req.dst, env, req.buf);
    const bool needs_done = req.bsend_slot >= 0;
    if (needs_done) sreqs_.emplace(req.id, &req);
    pipes_.write(req.dst, pack(env), req.buf, req.len, [this, &req] {
      node_.publish([this, &req] {
        req.reusable = true;
        maybe_complete_send(req);
      });
    });
  } else {
    note_rendezvous_send(req.dst, req.len);
    sreqs_.emplace(req.id, &req);
    env.kind = static_cast<std::uint8_t>(EnvKind::kRts);
    pipes_.write(req.dst, pack(env), nullptr, 0, nullptr);
  }

  if (req.bsend_slot >= 0) {
    // Buffered sends complete immediately: the payload already lives in the
    // attach buffer; the slot is reclaimed when kRecvDone arrives.
    req.reusable = true;
    req.complete = true;
  }
}

void PipesChannel::progress(SendReq& req) {
  // The blocking rendezvous path (Fig. 6): the application thread, woken by
  // the CTS, pushes the data phase itself.
  if (req.proto == Protocol::kRendezvous && req.cts_received && !req.data_sent) {
    send_data_phase(req, req.rreq_cache);
  }
}

void PipesChannel::send_data_phase(SendReq& req, std::uint32_t rreq) {
  if (req.data_sent) return;  // progress() and the CTS path can race
  req.data_sent = true;
  Envelope env;
  env.ctx = static_cast<std::uint16_t>(req.ctx);
  env.src = static_cast<std::uint16_t>(req.src_in_comm);
  env.tag = req.tag;
  env.seq = req.seq;
  env.len = static_cast<std::uint32_t>(req.len);
  env.kind = static_cast<std::uint8_t>(EnvKind::kRtsData);
  env.sreq = req.id;
  env.rreq = rreq;
  if (req.bsend_slot >= 0) env.flags |= kFlagNotifyDone;
  pipes_.write(req.dst, pack(env), req.buf, req.len, [this, &req] {
    node_.publish([this, &req] {
      req.reusable = true;
      maybe_complete_send(req);
    });
  });
  if (req.bsend_slot < 0) sreqs_.erase(req.id);
}

void PipesChannel::maybe_complete_send(SendReq& req) {
  if (req.complete) {
    req.cond.notify_all(node_.sim);
    return;
  }
  const bool done = (req.proto == Protocol::kEager) ? req.reusable
                                                    : (req.data_sent && req.reusable);
  if (done) {
    req.complete = true;
    req.cond.notify_all(node_.sim);
  }
}

void PipesChannel::send_control(int dst_task, const Envelope& env) {
  pipes_.write(dst_task, pack(env), nullptr, 0, nullptr);
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

RecvReq* PipesChannel::match_posted(const Envelope& env) {
  int scanned = 0;
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    ++scanned;
    RecvReq* r = *it;
    if (r->ctx == env.ctx && (r->src_sel == kAnySource || r->src_sel == env.src) &&
        (r->tag_sel == kAnyTag || r->tag_sel == env.tag)) {
      posted_.erase(it);
      charge_match_event(scanned);
      return r;
    }
  }
  charge_match_event(scanned);
  return nullptr;
}

void PipesChannel::on_data(int src) {
  Parser& p = parsers_[static_cast<std::size_t>(src)];
  for (;;) {
    if (p.in_payload) {
      const std::size_t n = std::min(p.remaining, pipes_.available(src));
      if (n == 0) return;
      pipes_.consume(src, p.sink, n);
      p.sink += n;
      p.remaining -= n;
      if (p.remaining > 0) return;
      p.in_payload = false;
      auto done = std::move(p.on_complete);
      if (done) done();
    } else {
      if (pipes_.available(src) < sizeof(Envelope)) return;
      std::byte raw[sizeof(Envelope)];
      pipes_.consume(src, raw, sizeof(Envelope));
      dispatch_envelope(src, unpack(raw), p);
    }
  }
}

void PipesChannel::dispatch_envelope(int src, const Envelope& env, Parser& p) {
  switch (static_cast<EnvKind>(env.kind)) {
    case EnvKind::kEager: {
      RecvReq* r = match_posted(env);
      if (r != nullptr && env.len <= r->cap) {
        // Direct path: pipe buffer -> user buffer as bytes arrive.
        if (env.len == 0) {
          publish_recv_complete(*r, env, false);
          if ((env.flags & kFlagNotifyDone) != 0) {
            Envelope d;
            d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
            d.sreq = env.sreq;
            send_control(src, d);
          }
          return;
        }
        p.in_payload = true;
        p.remaining = env.len;
        p.sink = r->buf;
        p.on_complete = [this, r, env, src] {
          publish_recv_complete(*r, env, false);
          ea_note_retired(src, env);
          if ((env.flags & kFlagNotifyDone) != 0) {
            Envelope d;
            d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
            d.sreq = env.sreq;
            send_control(src, d);
          }
        };
        return;
      }
      if (r == nullptr && (env.flags & kFlagReady) != 0) {
        throw FatalMpiError("ready-mode message arrived before its receive was posted");
      }
      if (r == nullptr && !try_ea_reserve(env.len)) {
        // EA pool exhausted: refuse the eager and fail it over to rendezvous.
        // The in-flight payload drains to scratch; the envelope stays behind
        // as a pseudo-RTS that, once matched, clears the *sender* to re-send
        // the data from its retained copy (previously this was fatal).
        ea_issue_nack(src, env);
        auto e = std::make_unique<EaEntry>();
        e->env = env;
        e->src_task = src;
        e->is_rts = true;
        e->arrived = true;
        ea_.push_back(std::move(e));
        publish_arrival();
        if (env.len > 0) {
          auto scratch = std::make_shared<std::vector<std::byte>>(env.len);
          p.in_payload = true;
          p.remaining = env.len;
          p.sink = scratch->data();
          p.on_complete = [scratch] {};  // scratch outlives the drain, then drops
        }
        return;
      }
      // Early arrival (or truncation detour): stream into an EA buffer.
      auto e = std::make_unique<EaEntry>();
      e->env = env;
      e->src_task = src;
      e->bound = r;     // non-null on the truncation detour
      if (r == nullptr) e->counted = true;  // the try_ea_reserve above succeeded
      e->data.resize(env.len);
      EaEntry* ep = e.get();
      ea_.push_back(std::move(e));
      if (ep->bound == nullptr) publish_arrival();
      if (env.len == 0) {
        ep->arrived = true;
        if (ep->bound != nullptr) deliver_from_ea(*ep->bound, *ep, /*app_context=*/false);
        return;
      }
      p.in_payload = true;
      p.remaining = env.len;
      p.sink = ep->data.data();
      p.on_complete = [this, ep, src] {
        node_.publish([this, ep, src] {
          ep->arrived = true;
          if ((ep->env.flags & kFlagNotifyDone) != 0) {
            Envelope d;
            d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
            d.sreq = ep->env.sreq;
            send_control(src, d);
          }
          if (ep->bound != nullptr) deliver_from_ea(*ep->bound, *ep, /*app_context=*/false);
        });
      };
      return;
    }

    case EnvKind::kRts: {
      RecvReq* r = match_posted(env);
      if (r != nullptr) {
        r->id = next_rreq_++;
        rreqs_.emplace(r->id, r);
        r->status = Status{env.src, env.tag, env.len};  // provisional
        Envelope cts;
        cts.kind = static_cast<std::uint8_t>(EnvKind::kCts);
        cts.sreq = env.sreq;
        cts.rreq = r->id;
        send_control(src, cts);
      } else {
        auto e = std::make_unique<EaEntry>();
        e->env = env;
        e->src_task = src;
        e->is_rts = true;
        e->arrived = true;  // an RTS carries no payload
        ea_.push_back(std::move(e));
        publish_arrival();
      }
      return;
    }

    case EnvKind::kCts: {
      auto it = sreqs_.find(env.sreq);
      if (it == sreqs_.end() || it->second->proto == Protocol::kEager) {
        // A CTS for an eager send: the receiver NACKed it into a pseudo-RTS
        // and is now clearing us to re-send from the retained copy. (A plain
        // eager isn't in sreqs_ at all; a buffered one still is, waiting for
        // its kRecvDone, which the rendezvous completion will trigger.)
        serve_nacked(src, env.sreq, env.rreq);
        return;
      }
      SendReq* s = it->second;
      s->cts_received = true;
      s->rreq_cache = env.rreq;
      if (s->blocking) {
        // Wake the blocked sender; it pushes the data phase (Fig. 6).
        node_.publish([this, s] { s->cond.notify_all(node_.sim); });
      } else {
        send_data_phase(*s, env.rreq);
      }
      return;
    }

    case EnvKind::kRtsData: {
      auto it = rreqs_.find(env.rreq);
      assert(it != rreqs_.end() && "rendezvous data for unknown receive");
      RecvReq* r = it->second;
      rreqs_.erase(it);
      const bool truncated = env.len > r->cap;
      if (env.len == 0) {
        publish_recv_complete(*r, env, false);
        return;
      }
      if (!truncated) {
        p.in_payload = true;
        p.remaining = env.len;
        p.sink = r->buf;
        p.on_complete = [this, r, env, src] {
          publish_recv_complete(*r, env, false);
          if ((env.flags & kFlagNackServed) != 0) ea_note_retired(src, env);
          if ((env.flags & kFlagNotifyDone) != 0) {
            Envelope d;
            d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
            d.sreq = env.sreq;
            send_control(src, d);
          }
        };
      } else {
        auto e = std::make_unique<EaEntry>();
        e->env = env;
        e->src_task = src;
        e->bound = r;
        e->data.resize(env.len);
        EaEntry* ep = e.get();
        ea_.push_back(std::move(e));
        p.in_payload = true;
        p.remaining = env.len;
        p.sink = ep->data.data();
        p.on_complete = [this, ep, src] {
          node_.publish([this, ep, src] {
            ep->arrived = true;
            if ((ep->env.flags & kFlagNotifyDone) != 0) {
              Envelope d;
              d.kind = static_cast<std::uint8_t>(EnvKind::kRecvDone);
              d.sreq = ep->env.sreq;
              send_control(src, d);
            }
            deliver_from_ea(*ep->bound, *ep, /*app_context=*/false);
          });
        };
      }
      return;
    }

    case EnvKind::kRecvDone: {
      auto it = sreqs_.find(env.sreq);
      assert(it != sreqs_.end() && "RecvDone for unknown send request");
      SendReq* s = it->second;
      sreqs_.erase(it);
      node_.publish([this, s] {
        if (s->bsend_slot >= 0) bsend_.release(s->bsend_slot);
        s->bsend_released = true;
        s->cond.notify_all(node_.sim);
      });
      return;
    }

    case EnvKind::kEaCredit:
      ea_on_credit(src, env);
      return;

    case EnvKind::kEaNack:
      ea_on_nack(env);
      return;

    case EnvKind::kRingCredit:
      assert(false && "ring credits are RDMA-channel traffic");
      return;
  }
}

void PipesChannel::serve_nacked(int dst_task, std::uint32_t sreq, std::uint32_t rreq) {
  const RetainedEager* ret = ea_retained(sreq);
  assert(ret != nullptr && "CTS for unknown send request (no retained NACK copy)");
  Envelope env = ret->env;
  env.kind = static_cast<std::uint8_t>(EnvKind::kRtsData);
  env.rreq = rreq;
  env.flags |= kFlagNackServed;
  // The retained vector stays alive until the receiver's credit retires it,
  // which is strictly after this data lands — safe to borrow.
  pipes_.write(dst_task, pack(env), ret->data.data(), ret->data.size(), nullptr);
}

void PipesChannel::publish_recv_complete(RecvReq& req, const Envelope& env, bool truncated) {
  node_.publish([this, &req, env, truncated] {
    req.complete = true;
    req.truncated = truncated;
    req.status = Status{env.src, env.tag,
                        std::min<std::size_t>(env.len, req.cap)};
    note_recv_complete(env.ctx, env.src, env.tag, env.seq, env.len);
    req.cond.notify_all(node_.sim);
  });
}

void PipesChannel::deliver_from_ea(RecvReq& req, EaEntry& e, bool app_context) {
  const std::size_t n = std::min<std::size_t>(e.env.len, req.cap);
  const sim::TimeNs cost = copy_cost(node_.cfg, n);
  if (app_context) {
    node_.app_charge(cost);
  } else {
    node_.cpu.charge(node_.sim, cost);
  }
  if (n > 0) std::memcpy(req.buf, e.data.data(), n);
  const bool truncated = e.env.len > req.cap;
  publish_recv_complete(req, e.env, truncated);
  erase_ea(&e);
}

void PipesChannel::erase_ea(EaEntry* e) {
  for (auto it = ea_.begin(); it != ea_.end(); ++it) {
    if (it->get() == e) {
      if (e->counted) ea_release(e->env.len);
      // Credit the sender for a consumed eager (a pseudo-RTS — kind kEager
      // but is_rts — is credited later, when its rendezvous data lands).
      const bool eager = e->env.kind == static_cast<std::uint8_t>(EnvKind::kEager) && !e->is_rts;
      const bool nack_served = e->env.kind == static_cast<std::uint8_t>(EnvKind::kRtsData) &&
                               (e->env.flags & kFlagNackServed) != 0;
      if (eager || nack_served) ea_note_retired(e->src_task, e->env);
      ea_.erase(it);
      return;
    }
  }
  assert(false && "erase_ea: entry not found");
}

std::list<std::unique_ptr<PipesChannel::EaEntry>>::iterator PipesChannel::find_ea(
    const RecvReq& req) {
  for (auto it = ea_.begin(); it != ea_.end(); ++it) {
    EaEntry& e = **it;
    if (e.bound == nullptr && e.env.ctx == req.ctx &&
        (req.src_sel == kAnySource || req.src_sel == e.env.src) &&
        (req.tag_sel == kAnyTag || req.tag_sel == e.env.tag)) {
      return it;
    }
  }
  return ea_.end();
}

bool PipesChannel::iprobe(int ctx, int src_sel, int tag_sel, Status* st) {
  charge_match_app(static_cast<int>(ea_.size()));
  for (const auto& ep : ea_) {
    const EaEntry& e = *ep;
    if (e.bound != nullptr) continue;
    if (e.env.ctx != ctx) continue;
    if (src_sel != kAnySource && src_sel != e.env.src) continue;
    if (tag_sel != kAnyTag && tag_sel != e.env.tag) continue;
    if (st != nullptr) *st = Status{static_cast<int>(e.env.src), e.env.tag, e.env.len};
    return true;
  }
  return false;
}

void PipesChannel::post_recv(RecvReq& req) {
  charge_match_app(static_cast<int>(ea_.size()));
  auto it = find_ea(req);
  if (it == ea_.end()) {
    posted_.push_back(&req);
    return;
  }
  EaEntry& e = **it;
  if (e.is_rts) {
    // The sender is waiting for us: clear it to send (Fig. 9).
    req.id = next_rreq_++;
    rreqs_.emplace(req.id, &req);
    req.status = Status{e.env.src, e.env.tag, e.env.len};
    Envelope cts;
    cts.kind = static_cast<std::uint8_t>(EnvKind::kCts);
    cts.sreq = e.env.sreq;
    cts.rreq = req.id;
    send_control(e.src_task, cts);
    ea_.erase(it);
    return;
  }
  if (e.arrived) {
    deliver_from_ea(req, e, /*app_context=*/true);
  } else {
    e.bound = &req;  // complete (and copy) when the payload finishes arriving
  }
}

}  // namespace sp::mpci
