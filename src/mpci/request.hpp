// MPCI request objects and the MPI-mode -> internal-protocol translation
// (Table 2 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "lapi/counter.hpp"
#include "sim/rank_thread.hpp"

namespace sp::mpci {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// The four MPI communication modes (§4).
enum class Mode : std::uint8_t { kStandard, kSync, kReady, kBuffered };

/// The two internal protocols (§4).
enum class Protocol : std::uint8_t { kEager, kRendezvous };

/// Table 2: translation of MPI communication modes to internal protocols.
[[nodiscard]] constexpr Protocol protocol_for(Mode mode, std::size_t len,
                                              std::size_t eager_limit) noexcept {
  switch (mode) {
    case Mode::kReady:
      return Protocol::kEager;
    case Mode::kSync:
      return Protocol::kRendezvous;
    case Mode::kStandard:
    case Mode::kBuffered:
      return len <= eager_limit ? Protocol::kEager : Protocol::kRendezvous;
  }
  return Protocol::kEager;  // unreachable
}

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t len = 0;
  /// The matched message was longer than the posted buffer and was cut to
  /// fit (MPI_ERR_TRUNCATE at the MPI level). Channels have always tracked
  /// this on the RecvReq; the MPI layer folds it into the status it hands
  /// back so callers — notably the C ABI veneer — can observe it.
  bool truncated = false;
};

struct SendReq {
  // Filled by the MPI layer before Channel::start_send().
  int dst = 0;          ///< Destination *task* id (transport address).
  int src_in_comm = 0;  ///< Sender's rank within the communicator (envelope).
  int ctx = 0;
  int tag = 0;
  const std::byte* buf = nullptr;
  std::size_t len = 0;
  Mode mode = Mode::kStandard;
  bool blocking = false;
  int bsend_slot = -1;  ///< Buffered mode: attach-pool slot to release.

  // Channel state.
  Protocol proto = Protocol::kEager;
  std::uint32_t id = 0;
  std::uint32_t rreq_cache = 0;  ///< Remote receive id from the CTS.
  /// Envelope seq stamped at start_send; the rendezvous data phase re-stamps
  /// it so receive-completion logging sees the true matching order (the
  /// kRtsData envelope is rebuilt from scratch and would otherwise carry 0).
  std::uint32_t seq = 0;
  bool reusable = false;      ///< User buffer safe to modify.
  bool cts_received = false;  ///< Rendezvous: receive has been posted remotely.
  bool data_sent = false;     ///< Rendezvous: data phase issued.
  bool complete = false;      ///< MPI completion semantics satisfied.
  bool bsend_released = false;///< Buffered mode: attach-pool slot returned.
  sim::SimCondition cond;

  SendReq() = default;
  SendReq(const SendReq&) = delete;
  SendReq& operator=(const SendReq&) = delete;
};

struct RecvReq {
  // Filled by the MPI layer before Channel::post_recv().
  int ctx = 0;
  int src_sel = kAnySource;
  int tag_sel = kAnyTag;
  std::byte* buf = nullptr;
  std::size_t cap = 0;

  // Channel state.
  std::uint32_t id = 0;
  bool complete = false;
  bool truncated = false;
  Status status;
  sim::SimCondition cond;

  /// MPI-LAPI "Counters" version: arrival is signalled by a counter-ring
  /// slot instead of a completion handler; the waiter polls this.
  lapi::Cntr* watch = nullptr;
  /// Deferred receiver-side work run from the waiting thread once `watch`
  /// fires (e.g. the early-arrival -> user copy). Returns true when done.
  std::function<bool()> poll;

  /// The condition a waiter should block on.
  [[nodiscard]] sim::SimCondition& wait_cond() noexcept {
    return watch != nullptr ? watch->cond : cond;
  }

  RecvReq() = default;
  RecvReq(const RecvReq&) = delete;
  RecvReq& operator=(const RecvReq&) = delete;
};

}  // namespace sp::mpci
