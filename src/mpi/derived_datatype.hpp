// Derived (non-contiguous) MPI datatypes — the paper's declared future work
// ("We plan to implement MPI data types which have not been implemented
// yet"), implemented here via pack/unpack at the MPI layer: typed sends pack
// into a contiguous staging buffer (charged as a protocol copy), ship the
// packed bytes, and unpack at the receiver. Supports the classic trio:
// contiguous, vector (strided) and indexed layouts, arbitrarily nested over
// the basic element types.
#pragma once

#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

#include "mpi/datatype.hpp"

namespace sp::mpi {

class DerivedDatatype {
 public:
  /// `count` consecutive elements.
  [[nodiscard]] static DerivedDatatype contiguous(std::size_t count, Datatype elem) {
    DerivedDatatype t(elem);
    const std::size_t esz = datatype_size(elem);
    t.blocks_.push_back(Block{0, count * esz});
    t.extent_ = count * esz;
    return t;
  }

  /// `count` blocks of `blocklen` elements, block starts `stride` elements
  /// apart (MPI_Type_vector).
  [[nodiscard]] static DerivedDatatype vector(std::size_t count, std::size_t blocklen,
                                              std::size_t stride, Datatype elem) {
    DerivedDatatype t(elem);
    const std::size_t esz = datatype_size(elem);
    for (std::size_t i = 0; i < count; ++i) {
      t.blocks_.push_back(Block{i * stride * esz, blocklen * esz});
    }
    t.extent_ = count == 0 ? 0 : ((count - 1) * stride + blocklen) * esz;
    return t;
  }

  /// Explicit (displacement, blocklen) pairs in elements (MPI_Type_indexed).
  [[nodiscard]] static DerivedDatatype indexed(
      const std::vector<std::pair<std::size_t, std::size_t>>& disp_len, Datatype elem) {
    DerivedDatatype t(elem);
    const std::size_t esz = datatype_size(elem);
    for (const auto& [disp, len] : disp_len) {
      t.blocks_.push_back(Block{disp * esz, len * esz});
      const std::size_t end = (disp + len) * esz;
      if (end > t.extent_) t.extent_ = end;
    }
    return t;
  }

  /// Bytes one instance occupies when packed contiguously.
  [[nodiscard]] std::size_t packed_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& b : blocks_) n += b.len;
    return n;
  }

  /// Span of one instance in the user's memory (to the end of the last byte).
  [[nodiscard]] std::size_t extent_bytes() const noexcept { return extent_; }

  [[nodiscard]] Datatype element() const noexcept { return elem_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Pack `count` instances starting at `src` into `dst` (contiguous).
  void pack(const void* src, std::byte* dst, std::size_t count = 1) const {
    const auto* s = static_cast<const std::byte*>(src);
    for (std::size_t c = 0; c < count; ++c) {
      for (const auto& b : blocks_) {
        std::memcpy(dst, s + b.off, b.len);
        dst += b.len;
      }
      s += extent_;
    }
  }

  /// Unpack `count` contiguous instances from `src` into the layout at `dst`.
  void unpack(const std::byte* src, void* dst, std::size_t count = 1) const {
    auto* d = static_cast<std::byte*>(dst);
    for (std::size_t c = 0; c < count; ++c) {
      for (const auto& b : blocks_) {
        std::memcpy(d + b.off, src, b.len);
        src += b.len;
      }
      d += extent_;
    }
  }

 private:
  struct Block {
    std::size_t off;  ///< Byte offset within one instance's extent.
    std::size_t len;  ///< Contiguous byte run.
  };

  explicit DerivedDatatype(Datatype elem) : elem_(elem) {}

  Datatype elem_;
  std::vector<Block> blocks_;
  std::size_t extent_ = 0;
};

}  // namespace sp::mpi
