// The MPI semantics layer (Fig. 1: "MPI - MPI semantics layer").
//
// One Mpi object per task provides the MPI-subset public API of this library:
// the four send modes (standard/synchronous/buffered/ready) in blocking and
// nonblocking versions, receive, wait/test, buffer attach/detach,
// communicator management (dup/split) and the collectives the NAS kernels
// need — all implemented over MPCI point-to-point messages, exactly as the
// paper describes ("It breaks down all collective communication calls into a
// series of point-to-point message passing calls in MPCI").
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "mpci/channel.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/derived_datatype.hpp"
#include "sim/node_runtime.hpp"

namespace sp::net {
class CombiningEngine;
}  // namespace sp::net

namespace sp::mpi {

namespace optrace {
class Recorder;
}  // namespace optrace

using Status = mpci::Status;

/// Reserved tag space for collective-internal traffic (user tags must stay
/// below this). Public so observers (the explorer's match-log digest) can
/// tell user point-to-point matches from collective plumbing, which NIC
/// offload legitimately elides from the channel.
constexpr int kCollTagBase = 1 << 20;

/// A nonblocking-operation handle. Move-only; must be waited/tested to
/// completion before destruction (as in MPI).
class Request {
 public:
  Request() = default;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;

  [[nodiscard]] bool valid() const noexcept { return send_ != nullptr || recv_ != nullptr; }
  /// Persistent request (MPI_Send_init/MPI_Recv_init) not currently started.
  [[nodiscard]] bool persistent() const noexcept { return persistent_ != nullptr; }

 private:
  friend class Mpi;
  /// Parameters of a persistent operation, re-armed by Mpi::start().
  struct PersistentSpec {
    bool is_send = false;
    const void* sbuf = nullptr;
    void* rbuf = nullptr;
    std::size_t bytes = 0;
    int peer = 0;  // dst or src selector
    int tag = 0;
    Comm comm;
    mpci::Mode mode = mpci::Mode::kStandard;
  };

  std::unique_ptr<mpci::SendReq> send_;
  std::unique_ptr<mpci::RecvReq> recv_;
  std::unique_ptr<PersistentSpec> persistent_;
  /// Index of this op in the attached optrace stream (-1 when not recorded).
  std::int64_t trace_idx_ = -1;
  /// Typed operations: staging buffer for packed bytes (lives until wait).
  std::unique_ptr<std::vector<std::byte>> staging_;
  /// Run at completion (e.g. unpack a derived datatype into the user layout).
  std::function<void()> on_complete_;
};

class Mpi {
 public:
  Mpi(sim::NodeRuntime& node, mpci::Channel& channel, int task_id, int num_tasks);

  Mpi(const Mpi&) = delete;
  Mpi& operator=(const Mpi&) = delete;

  [[nodiscard]] Comm& world() noexcept { return world_; }
  [[nodiscard]] int task_id() const noexcept { return task_id_; }

  // --- blocking point-to-point ---
  void send(const void* buf, std::size_t count, Datatype d, int dst, int tag, const Comm& c);
  void ssend(const void* buf, std::size_t count, Datatype d, int dst, int tag, const Comm& c);
  void rsend(const void* buf, std::size_t count, Datatype d, int dst, int tag, const Comm& c);
  void bsend(const void* buf, std::size_t count, Datatype d, int dst, int tag, const Comm& c);
  void recv(void* buf, std::size_t count, Datatype d, int src, int tag, const Comm& c,
            Status* st = nullptr);
  void sendrecv(const void* sbuf, std::size_t scount, int dst, int stag, void* rbuf,
                std::size_t rcount, int src, int rtag, Datatype d, const Comm& c,
                Status* st = nullptr);

  // --- nonblocking point-to-point ---
  [[nodiscard]] Request isend(const void* buf, std::size_t count, Datatype d, int dst, int tag,
                              const Comm& c);
  [[nodiscard]] Request issend(const void* buf, std::size_t count, Datatype d, int dst,
                               int tag, const Comm& c);
  [[nodiscard]] Request irsend(const void* buf, std::size_t count, Datatype d, int dst,
                               int tag, const Comm& c);
  [[nodiscard]] Request ibsend(const void* buf, std::size_t count, Datatype d, int dst,
                               int tag, const Comm& c);
  [[nodiscard]] Request irecv(void* buf, std::size_t count, Datatype d, int src, int tag,
                              const Comm& c);

  void wait(Request& r, Status* st = nullptr);
  [[nodiscard]] bool test(Request& r, Status* st = nullptr);
  void waitall(Request* reqs, std::size_t n);
  /// Status-array overload: `sts[i]` receives the completion status of
  /// `reqs[i]` (source/tag/count for receives, an empty status otherwise),
  /// matching waitany's per-request behaviour.
  void waitall(Request* reqs, std::size_t n, Status* sts);
  /// Blocks until one active request completes; returns its index.
  [[nodiscard]] std::size_t waitany(Request* reqs, std::size_t n, Status* st = nullptr);
  [[nodiscard]] bool testall(Request* reqs, std::size_t n);
  /// Status-array overload: on a true return, `sts[i]` receives the
  /// completion status of `reqs[i]`; on false nothing is consumed.
  [[nodiscard]] bool testall(Request* reqs, std::size_t n, Status* sts);

  // --- probe ---
  void probe(int src, int tag, const Comm& c, Status* st);
  [[nodiscard]] bool iprobe(int src, int tag, const Comm& c, Status* st);
  /// Element count held in a status for datatype `d` (MPI_Get_count).
  [[nodiscard]] static std::size_t get_count(const Status& st, Datatype d) {
    return st.len / datatype_size(d);
  }

  // --- derived (non-contiguous) datatypes: the paper's future work ---
  void send(const void* buf, std::size_t count, const DerivedDatatype& t, int dst, int tag,
            const Comm& c);
  void recv(void* buf, std::size_t count, const DerivedDatatype& t, int src, int tag,
            const Comm& c, Status* st = nullptr);
  [[nodiscard]] Request isend(const void* buf, std::size_t count, const DerivedDatatype& t,
                              int dst, int tag, const Comm& c);
  [[nodiscard]] Request irecv(void* buf, std::size_t count, const DerivedDatatype& t, int src,
                              int tag, const Comm& c);
  /// Collective over a derived layout: packs at the root, broadcasts the
  /// packed bytes through the algorithm engine, unpacks everywhere else.
  void bcast(void* buf, std::size_t count, const DerivedDatatype& t, int root, const Comm& c);

  // --- persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start) ---
  [[nodiscard]] Request send_init(const void* buf, std::size_t count, Datatype d, int dst,
                                  int tag, const Comm& c);
  [[nodiscard]] Request recv_init(void* buf, std::size_t count, Datatype d, int src, int tag,
                                  const Comm& c);
  void start(Request& r);
  void startall(Request* reqs, std::size_t n);

  // --- buffered mode ---
  void buffer_attach(void* buf, std::size_t len);
  /// Blocks until all buffered sends drain, then returns the buffer.
  void* buffer_detach();

  // --- collectives (pt-to-pt based) ---
  void barrier(const Comm& c);
  void bcast(void* buf, std::size_t count, Datatype d, int root, const Comm& c);
  void reduce(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op, int root,
              const Comm& c);
  void allreduce(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op,
                 const Comm& c);
  void gather(const void* sendb, std::size_t count, void* recvb, Datatype d, int root,
              const Comm& c);
  void scatter(const void* sendb, std::size_t count, void* recvb, Datatype d, int root,
               const Comm& c);
  void allgather(const void* sendb, std::size_t count, void* recvb, Datatype d, const Comm& c);
  void alltoall(const void* sendb, std::size_t count, void* recvb, Datatype d, const Comm& c);
  void alltoallv(const void* sendb, const std::size_t* scounts, const std::size_t* sdispls,
                 void* recvb, const std::size_t* rcounts, const std::size_t* rdispls,
                 Datatype d, const Comm& c);
  void reduce_scatter_block(const void* sendb, void* recvb, std::size_t count, Datatype d,
                            Op op, const Comm& c);
  /// Inclusive prefix reduction (MPI_Scan).
  void scan(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op,
            const Comm& c);
  /// Exclusive prefix reduction (MPI_Exscan; recvb undefined on rank 0).
  void exscan(const void* sendb, void* recvb, std::size_t count, Datatype d, Op op,
              const Comm& c);
  void gatherv(const void* sendb, std::size_t scount, void* recvb,
               const std::size_t* rcounts, const std::size_t* displs, Datatype d, int root,
               const Comm& c);
  void scatterv(const void* sendb, const std::size_t* scounts, const std::size_t* displs,
                void* recvb, std::size_t rcount, Datatype d, int root, const Comm& c);

  // --- communicator management ---
  [[nodiscard]] Comm dup(const Comm& c);
  [[nodiscard]] Comm split(const Comm& c, int color, int key);

  // --- environment / simulation hooks ---
  /// Simulated wall-clock (MPI_Wtime), in seconds.
  [[nodiscard]] double wtime() const;
  /// Model `ns` of local computation.
  void compute(sim::TimeNs ns);
  /// Toggle interrupt-mode message delivery (MP_CSS_INTERRUPT).
  void set_interrupt_mode(bool on);
  /// Wired by the Machine: flips the HAL delivery mode.
  void set_interrupt_hook(std::function<void(bool)> fn) { interrupt_hook_ = std::move(fn); }
  /// Wired by the Machine: the fabric's switch-side combining engine
  /// (DESIGN.md §16). Unlike the NIC offload this is a property of the
  /// interconnect, so every channel gets it; null leaves in_network pins
  /// falling back to the host algorithm table.
  void set_combining(net::CombiningEngine* engine) { combining_ = engine; }
  /// Attach (or detach, with null) an op-trace recorder. Only top-level calls
  /// record: collectives' internal point-to-point traffic is depth-suppressed.
  void set_recorder(optrace::Recorder* rec) noexcept {
    rec_ = rec;
    rec_depth_ = 0;
  }

  [[nodiscard]] mpci::Channel& channel() noexcept { return channel_; }
  [[nodiscard]] sim::NodeRuntime& node() noexcept { return node_; }

 private:
  /// Run one collective phase on the switch combining engine (blocking; the
  /// rank fiber parks on a SimCondition until the engine delivers). `buf` is
  /// contribution in / result out. Returns false when the engine is absent
  /// or declines (len > in_network_coll_max_bytes) — caller falls back.
  bool innet_coll(const Comm& c, std::uint32_t seq, int root, std::byte* buf,
                  std::size_t len, bool reduce_phase,
                  std::function<void(std::byte*, const std::byte*, std::size_t)> combine);

  void start_send_common(mpci::SendReq& req, const void* buf, std::size_t bytes, int dst,
                         int tag, const Comm& c, mpci::Mode mode, bool blocking);
  void start_bsend(mpci::SendReq& req, const void* buf, std::size_t bytes, int dst, int tag,
                   const Comm& c, bool blocking);
  void wait_send(mpci::SendReq& req);
  void wait_recv(mpci::RecvReq& req, Status* st);
  void finish_request(Request& r, Status* st);
  [[nodiscard]] bool check_complete(Request& r);
  void gc_orphans();
  [[nodiscard]] int coll_tag();

  sim::NodeRuntime& node_;
  mpci::Channel& channel_;
  int task_id_;
  Comm world_;
  int next_ctx_ = 1;
  std::uint32_t coll_seq_ = 0;
  /// Buffered sends without a user-visible request, kept until drained.
  std::list<std::unique_ptr<mpci::SendReq>> orphans_;
  std::function<void(bool)> interrupt_hook_;
  net::CombiningEngine* combining_ = nullptr;
  optrace::Recorder* rec_ = nullptr;
  /// Nesting depth of public Mpi calls; only depth-0 entries record.
  int rec_depth_ = 0;
};

}  // namespace sp::mpi
