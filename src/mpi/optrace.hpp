// Per-rank MPI operation trace record/replay (DESIGN.md §17).
//
// A Recorder attached to a Machine captures the ordered stream of top-level
// MPI calls each rank makes — peers, tags, datatypes, counts, and for
// receives the concretely matched (source, tag) — but no payload bytes. The
// resulting Trace replays against any MachineConfig/Backend: every send
// buffer is refilled from a deterministic per-(rank, op) PCG stream and every
// wildcard receive is re-posted with its recorded concrete match, so the
// bytes that flow are a pure function of the trace. The replay digest (FNV-1a
// over all delivered bytes, folded in rank order) is therefore invariant
// across eager limits, collective algorithms, topologies and loss rates —
// while the simulated elapsed time is exactly what the what-if config costs.
//
// Recording happens only for *top-level* calls: collectives internally issue
// sends and receives through the same public API, and a depth guard in the
// Mpi methods suppresses those (a replayed bcast re-runs whatever algorithm
// the replay config selects, which is the whole point of a what-if).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mpi/machine.hpp"

namespace sp::mpi::optrace {

/// Every kind of top-level operation a trace can carry. Appended-only: the
/// numeric values are the on-disk encoding.
enum class OpKind : std::uint8_t {
  kSend = 0,
  kSsend,
  kRsend,
  kBsend,
  kIsend,
  kIssend,
  kIrsend,
  kIbsend,
  kRecv,
  kIrecv,
  kWait,
  kCompute,
  kInterrupt,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kGatherv,
  kScatter,
  kScatterv,
  kAllgather,
  kAlltoall,
  kAlltoallv,
  kReduceScatterBlock,
  kScan,
  kExscan,
  kDup,
  kSplit,
};
inline constexpr int kNumOpKinds = 29;

struct Op {
  OpKind kind = OpKind::kSend;
  std::int32_t comm = 0;    ///< Dense per-rank communicator index (0 = world).
  std::int32_t peer = -1;   ///< dst / src selector / root / split key.
  std::int32_t tag = 0;     ///< Message tag, or split color.
  std::int32_t dtype = 0;   ///< Datatype (numeric enum value).
  std::int32_t redop = 0;   ///< Reduction Op (numeric enum value).
  std::int64_t count = 0;   ///< Element count; ns for kCompute; flag for kInterrupt.
  std::int64_t aux = 0;     ///< Matched byte length (receives).
  std::int32_t msrc = -1;   ///< Concrete matched source (receives).
  std::int32_t mtag = -1;   ///< Concrete matched tag (receives).
  std::int64_t target = -1; ///< kWait: index of the op it completes.
  std::vector<std::int64_t> vec;  ///< v-collective counts (send then recv).
};

struct Trace {
  int ranks = 0;
  std::string workload = "unknown";
  int scale = 0;
  std::vector<std::vector<Op>> per_rank;
};

/// Collects per-rank op streams. One Recorder per Machine; each rank fiber
/// writes only its own stream (all fibers of a Machine share one host
/// thread), so no locking is needed.
class Recorder {
 public:
  explicit Recorder(int ranks)
      : per_rank_(static_cast<std::size_t>(ranks)),
        ctxs_(static_cast<std::size_t>(ranks), std::vector<int>{0}) {}

  /// Appends and returns the op's index in the rank's stream.
  std::int64_t push(int rank, Op op) {
    auto& ops = per_rank_[static_cast<std::size_t>(rank)];
    ops.push_back(std::move(op));
    return static_cast<std::int64_t>(ops.size()) - 1;
  }

  /// Back-fills the concrete match of a nonblocking receive at completion.
  void set_matched(int rank, std::int64_t idx, const Status& st) {
    auto& ops = per_rank_[static_cast<std::size_t>(rank)];
    if (idx < 0 || idx >= static_cast<std::int64_t>(ops.size())) return;
    Op& op = ops[static_cast<std::size_t>(idx)];
    op.msrc = st.source;
    op.mtag = st.tag;
    op.aux = static_cast<std::int64_t>(st.len);
  }

  /// Dense communicator index for a context id, or -1 if never registered.
  [[nodiscard]] int comm_index(int rank, int ctx) const {
    const auto& v = ctxs_[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == ctx) return static_cast<int>(i);
    }
    return -1;
  }

  /// Registers a communicator created by dup/split, in creation order (the
  /// replayer recreates them in the same order, so indices line up).
  void register_comm(int rank, int ctx) {
    ctxs_[static_cast<std::size_t>(rank)].push_back(ctx);
  }

  [[nodiscard]] int ranks() const noexcept { return static_cast<int>(per_rank_.size()); }

  /// Moves the collected streams out into a Trace.
  [[nodiscard]] Trace take(std::string workload, int scale) {
    Trace t;
    t.ranks = ranks();
    t.workload = std::move(workload);
    t.scale = scale;
    t.per_rank = std::move(per_rank_);
    per_rank_.assign(static_cast<std::size_t>(t.ranks), {});
    ctxs_.assign(static_cast<std::size_t>(t.ranks), std::vector<int>{0});
    return t;
  }

 private:
  std::vector<std::vector<Op>> per_rank_;
  std::vector<std::vector<int>> ctxs_;
};

/// Wires `rec` (may be null, to detach) into every rank's Mpi.
void attach(Machine& m, Recorder* rec);

/// Text serialization: `sptrace 1` header, per-rank op lines, `end` footer.
void save_text(const Trace& t, std::ostream& os);

/// Strict parser: returns false (with a reason in *error) on a bad magic,
/// malformed or out-of-range fields, wrong op counts, or a missing `end`
/// footer — a truncated or corrupted file never yields a Trace.
[[nodiscard]] bool load_text(std::istream& is, Trace* out, std::string* error);

/// Structural validation applied by load_text and again before replay: op
/// kinds in range, comm indices within the rank's create-order window, wait
/// targets referencing earlier nonblocking ops, bounded counts.
[[nodiscard]] bool validate(const Trace& t, std::string* error);

struct ReplayResult {
  bool ok = false;
  std::string error;
  /// FNV-1a over every delivered payload byte, folded in rank order.
  /// Config-invariant for a conformant simulator.
  std::uint64_t digest = 0;
  sim::TimeNs elapsed = 0;
  std::uint64_t sim_events = 0;
};

/// Re-executes the trace under a what-if config/backend.
[[nodiscard]] ReplayResult replay(const Trace& t, const sim::MachineConfig& cfg,
                                  Backend backend);

}  // namespace sp::mpi::optrace
