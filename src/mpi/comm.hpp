// Communicators: a context id plus an ordered group of task ids.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace sp::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Comm {
 public:
  Comm() = default;
  Comm(int ctx, std::vector<int> tasks, int my_rank)
      : ctx_(ctx), tasks_(std::move(tasks)), rank_(my_rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] int ctx() const noexcept { return ctx_; }
  /// Task id (transport address) of communicator rank `r`.
  [[nodiscard]] int task_of(int r) const { return tasks_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] const std::vector<int>& tasks() const noexcept { return tasks_; }

 private:
  int ctx_ = 0;
  std::vector<int> tasks_;
  int rank_ = 0;
};

}  // namespace sp::mpi
