// Machine: one simulated RS/6000 SP system, fully wired.
//
// Owns the simulator, the switch fabric and, per node: the runtime, HAL,
// Pipes, LAPI, the selected MPCI channel and the MPI layer. Rank programs run
// on cooperative fibers (see sim/rank_thread.hpp); Machine::run() drives the
// event loop to completion, detecting deadlocks and propagating program
// errors.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hal/hal.hpp"
#include "hal/rdma_nic.hpp"
#include "lapi/lapi.hpp"
#include "mpci/lapi_channel.hpp"
#include "mpci/pipes_channel.hpp"
#include "mpci/rdma_channel.hpp"
#include "mpi/mpi.hpp"
#include "net/switch_fabric.hpp"
#include "pipes/pipes.hpp"
#include "sim/config.hpp"
#include "sim/node_runtime.hpp"
#include "sim/simulator.hpp"

namespace sp::mpi {

/// Which protocol stack the MPI layer runs on (Fig. 1 + §5 versions).
enum class Backend {
  kNativePipes,   ///< MPI -> MPCI -> Pipes -> HAL (Fig. 1a)
  kLapiBase,      ///< MPI -> new MPCI -> LAPI (completion-handler thread, §4)
  kLapiCounters,  ///< §5.2: eager completions through exchanged counters
  kLapiEnhanced,  ///< §5.3: inline predefined completion handlers
  kRdma,          ///< RDMA/NIC-offload adapter (DESIGN.md §14)
};

[[nodiscard]] constexpr const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kNativePipes: return "Native MPI (Pipes)";
    case Backend::kLapiBase: return "MPI-LAPI Base";
    case Backend::kLapiCounters: return "MPI-LAPI Counters";
    case Backend::kLapiEnhanced: return "MPI-LAPI Enhanced";
    case Backend::kRdma: return "MPI-RDMA Offload";
  }
  return "?";
}

class Machine {
 public:
  Machine(const sim::MachineConfig& cfg, int num_tasks, Backend backend);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Run an SPMD MPI program on every task to completion.
  void run(const std::function<void(Mpi&)>& program);

  /// Run an SPMD program against the raw LAPI interface.
  void run_lapi(const std::function<void(lapi::Lapi&)>& program);

  /// Simulated time when the last run() finished.
  [[nodiscard]] sim::TimeNs elapsed() const noexcept { return elapsed_; }

  /// Aggregate statistics over all nodes (diagnostics / the spsim tool).
  struct Stats {
    std::int64_t packets_sent = 0;
    std::int64_t packets_received = 0;
    std::int64_t interrupts = 0;
    std::int64_t fabric_packets = 0;
    std::int64_t fabric_bytes = 0;
    std::int64_t fabric_dropped = 0;
    std::int64_t fabric_duplicated = 0;  ///< Extra copies injected by the fabric.
    std::int64_t eager_sends = 0;
    std::int64_t rendezvous_sends = 0;
    std::int64_t early_arrivals = 0;
    std::int64_t ea_fallbacks = 0;  ///< Eagers demoted to rendezvous (credits/ring).
    std::int64_t ea_nacks = 0;      ///< Eagers refused at the receiver (EA full).
    std::int64_t rdma_writes = 0;
    std::int64_t rdma_reads = 0;
    std::int64_t nic_collectives = 0;  ///< Collectives completed on the adapter.
    std::int64_t innet_collectives = 0;    ///< Collectives combined in the switches.
    std::int64_t innet_combines = 0;       ///< Element-level child folds.
    std::int64_t innet_replications = 0;   ///< Downward replication fan-out.
    std::int64_t innet_dup_discards = 0;   ///< Duplicates stopped by the seen-flags.
    std::int64_t innet_retransmits = 0;    ///< Combining-tree hops retried after drops.
    std::int64_t innet_table_peak = 0;     ///< Peak live combining-table entries.
    std::int64_t rdma_retransmits = 0;
    std::int64_t rdma_acks = 0;
    std::int64_t rdma_duplicate_deliveries = 0;
    std::int64_t rdma_reacks_coalesced = 0;  ///< Dup re-acks folded into delayed flushes.
    std::int64_t lapi_messages = 0;
    std::int64_t lapi_retransmits = 0;
    std::int64_t lapi_duplicate_deliveries = 0;  ///< Dup packets filtered at LAPI targets.
    std::int64_t lapi_acks = 0;
    std::int64_t lapi_reacks_coalesced = 0;  ///< Dup re-acks folded into delayed flushes.
    std::int64_t pipes_retransmits = 0;
    std::int64_t pipes_duplicate_deliveries = 0;  ///< Dup packets filtered by Pipes.
    std::int64_t pipes_acks = 0;
    std::int64_t pipes_reacks_coalesced = 0;  ///< Dup re-acks folded into delayed flushes.
    std::int64_t completion_thread_dispatches = 0;
    std::int64_t completion_inline_runs = 0;
    std::uint64_t sim_events = 0;
    // Host-side perf counters: how well the simulator's own hot paths avoid
    // allocation. These measure the host implementation, not the SP model.
    std::uint64_t events_pushed = 0;
    std::uint64_t events_popped = 0;
    std::uint64_t actions_inline = 0;       ///< Event closures with inline captures.
    std::uint64_t action_pool_hits = 0;     ///< Oversize captures served from the pool.
    std::uint64_t action_pool_misses = 0;   ///< Oversize captures that grew the pool.
    std::uint64_t action_fallback_allocs = 0;  ///< Captures beyond the largest class.
    std::uint64_t frames_recycled = 0;      ///< Packet frames served from the arena.
    std::uint64_t frames_fresh = 0;         ///< Packet frames freshly allocated.
    std::int64_t hal_staged_bytes = 0;      ///< Un-modeled host memcpy into send frames.
  };
  [[nodiscard]] Stats stats() const;
  /// Field-wise `later - earlier`: attributes counter activity to the window
  /// between two stats() samples (e.g. retransmits during one soak phase).
  [[nodiscard]] static Stats stats_delta(const Stats& later, const Stats& earlier) noexcept;
  /// stats() relative to a baseline sampled earlier in the same run.
  [[nodiscard]] Stats stats_since(const Stats& baseline) const {
    return stats_delta(stats(), baseline);
  }
  /// Print a human-readable stats block to `out`.
  void print_stats(std::FILE* out) const;

  /// The machine-wide event timeline (null unless cfg.trace_enabled).
  [[nodiscard]] sim::Trace* trace() noexcept { return trace_.get(); }

  /// Structured telemetry (null unless cfg.telemetry_enabled).
  [[nodiscard]] sim::Telemetry* telemetry() noexcept { return telemetry_.get(); }
  [[nodiscard]] const sim::Telemetry* telemetry() const noexcept { return telemetry_.get(); }

  // --- component access (tests, benches) ---
  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const sim::MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int num_tasks() const noexcept { return num_tasks_; }
  [[nodiscard]] Backend backend() const noexcept { return backend_; }
  [[nodiscard]] net::SwitchFabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] hal::Hal& hal(int t) { return *nodes_[static_cast<std::size_t>(t)]->hal; }
  [[nodiscard]] pipes::Pipes& pipes(int t) { return *nodes_[static_cast<std::size_t>(t)]->pipes; }
  [[nodiscard]] lapi::Lapi& lapi(int t) { return *nodes_[static_cast<std::size_t>(t)]->lapi; }
  [[nodiscard]] mpci::Channel& channel(int t) {
    return *nodes_[static_cast<std::size_t>(t)]->channel;
  }
  /// The RDMA adapter (only wired on Backend::kRdma).
  [[nodiscard]] hal::RdmaNic& rdma(int t) { return *nodes_[static_cast<std::size_t>(t)]->rdma; }
  [[nodiscard]] Mpi& mpi(int t) { return *nodes_[static_cast<std::size_t>(t)]->mpi; }
  [[nodiscard]] sim::NodeRuntime& node(int t) {
    return *nodes_[static_cast<std::size_t>(t)]->runtime;
  }

 private:
  struct Node {
    std::unique_ptr<sim::NodeRuntime> runtime;
    std::unique_ptr<hal::Hal> hal;
    std::unique_ptr<pipes::Pipes> pipes;
    std::unique_ptr<lapi::Lapi> lapi;
    std::unique_ptr<hal::RdmaNic> rdma;  ///< Only on Backend::kRdma.
    std::unique_ptr<mpci::Channel> channel;
    std::unique_ptr<Mpi> mpi;
  };

  void run_threads(const std::function<void(int)>& body);

  sim::MachineConfig cfg_;
  int num_tasks_;
  Backend backend_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Trace> trace_;
  std::unique_ptr<sim::Telemetry> telemetry_;
  std::unique_ptr<net::SwitchFabric> fabric_;
  std::unique_ptr<lapi::LapiGroup> lapi_group_;
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::TimeNs elapsed_ = 0;
};

}  // namespace sp::mpi
