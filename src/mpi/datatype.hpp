// MPI datatypes (contiguous element types) and reduction operators.
//
// The paper's implementation deferred derived datatypes ("We plan to
// implement MPI data types"); like it, we support contiguous buffers of the
// basic element types, which is what reductions need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>

namespace sp::mpi {

enum class Datatype : std::uint8_t { kByte, kInt, kLong, kFloat, kDouble };

[[nodiscard]] constexpr std::size_t datatype_size(Datatype d) noexcept {
  switch (d) {
    case Datatype::kByte: return 1;
    case Datatype::kInt: return 4;
    case Datatype::kLong: return 8;
    case Datatype::kFloat: return 4;
    case Datatype::kDouble: return 8;
  }
  return 1;
}

/// kMat2x2 treats each consecutive group of 4 elements as a row-major 2x2
/// matrix and combines groups by matrix multiplication (left operand times
/// right operand, wrapping unsigned arithmetic on integral types). It is
/// associative but NOT commutative, which makes it the canonical probe for
/// reduction operand ordering: every collective algorithm must combine ranks
/// in communicator order or the product comes out different. Requires
/// count % 4 == 0.
enum class Op : std::uint8_t { kSum, kProd, kMax, kMin, kLand, kLor, kBor, kMat2x2 };

namespace detail {

/// inout = inout * in as row-major 2x2 matrices. Integral types multiply and
/// accumulate in unsigned so overflow wraps with defined behaviour (and
/// bit-identically across algorithms).
template <typename T>
void matmul2x2(const T* in, T* inout) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    const U a = static_cast<U>(inout[0]), b = static_cast<U>(inout[1]);
    const U c = static_cast<U>(inout[2]), d = static_cast<U>(inout[3]);
    const U e = static_cast<U>(in[0]), f = static_cast<U>(in[1]);
    const U g = static_cast<U>(in[2]), h = static_cast<U>(in[3]);
    inout[0] = static_cast<T>(a * e + b * g);
    inout[1] = static_cast<T>(a * f + b * h);
    inout[2] = static_cast<T>(c * e + d * g);
    inout[3] = static_cast<T>(c * f + d * h);
  } else {
    const T a = inout[0], b = inout[1], c = inout[2], d = inout[3];
    inout[0] = a * in[0] + b * in[2];
    inout[1] = a * in[1] + b * in[3];
    inout[2] = c * in[0] + d * in[2];
    inout[3] = c * in[1] + d * in[3];
  }
}

template <typename T>
void apply_typed(Op op, const T* in, T* inout, std::size_t count) {
  if (op == Op::kMat2x2) {
    if (count % 4 != 0) {
      throw std::invalid_argument("Op::kMat2x2 requires count % 4 == 0");
    }
    for (std::size_t g = 0; g < count; g += 4) matmul2x2(in + g, inout + g);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    switch (op) {
      // Sum/prod on signed integers compute in unsigned so overflow wraps
      // (bit-identical to the naive form, but defined behaviour — kernels
      // reduce deliberately-wrapping checksums).
      case Op::kSum:
        if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
          using U = std::make_unsigned_t<T>;
          inout[i] = static_cast<T>(static_cast<U>(inout[i]) + static_cast<U>(in[i]));
        } else {
          inout[i] = inout[i] + in[i];
        }
        break;
      case Op::kProd:
        if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
          using U = std::make_unsigned_t<T>;
          inout[i] = static_cast<T>(static_cast<U>(inout[i]) * static_cast<U>(in[i]));
        } else {
          inout[i] = inout[i] * in[i];
        }
        break;
      case Op::kMax: inout[i] = inout[i] > in[i] ? inout[i] : in[i]; break;
      case Op::kMin: inout[i] = inout[i] < in[i] ? inout[i] : in[i]; break;
      case Op::kLand: inout[i] = static_cast<T>((inout[i] != T{}) && (in[i] != T{})); break;
      case Op::kLor: inout[i] = static_cast<T>((inout[i] != T{}) || (in[i] != T{})); break;
      case Op::kBor:
        if constexpr (std::is_integral_v<T>) {
          inout[i] = inout[i] | in[i];
        } else {
          throw std::invalid_argument("bitwise OR on floating-point datatype");
        }
        break;
      case Op::kMat2x2: break;  // handled group-wise above
    }
  }
}

}  // namespace detail

/// inout[i] = inout[i] op in[i] for `count` elements of type `d`.
inline void reduce_apply(Op op, Datatype d, const void* in, void* inout, std::size_t count) {
  switch (d) {
    case Datatype::kByte:
      detail::apply_typed(op, static_cast<const std::uint8_t*>(in),
                          static_cast<std::uint8_t*>(inout), count);
      break;
    case Datatype::kInt:
      detail::apply_typed(op, static_cast<const std::int32_t*>(in),
                          static_cast<std::int32_t*>(inout), count);
      break;
    case Datatype::kLong:
      detail::apply_typed(op, static_cast<const std::int64_t*>(in),
                          static_cast<std::int64_t*>(inout), count);
      break;
    case Datatype::kFloat:
      detail::apply_typed(op, static_cast<const float*>(in), static_cast<float*>(inout), count);
      break;
    case Datatype::kDouble:
      detail::apply_typed(op, static_cast<const double*>(in), static_cast<double*>(inout),
                          count);
      break;
  }
}

}  // namespace sp::mpi
