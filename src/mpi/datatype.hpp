// MPI datatypes (contiguous element types) and reduction operators.
//
// The paper's implementation deferred derived datatypes ("We plan to
// implement MPI data types"); like it, we support contiguous buffers of the
// basic element types, which is what reductions need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>

namespace sp::mpi {

enum class Datatype : std::uint8_t { kByte, kInt, kLong, kFloat, kDouble };

[[nodiscard]] constexpr std::size_t datatype_size(Datatype d) noexcept {
  switch (d) {
    case Datatype::kByte: return 1;
    case Datatype::kInt: return 4;
    case Datatype::kLong: return 8;
    case Datatype::kFloat: return 4;
    case Datatype::kDouble: return 8;
  }
  return 1;
}

enum class Op : std::uint8_t { kSum, kProd, kMax, kMin, kLand, kLor, kBor };

namespace detail {

template <typename T>
void apply_typed(Op op, const T* in, T* inout, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    switch (op) {
      // Sum/prod on signed integers compute in unsigned so overflow wraps
      // (bit-identical to the naive form, but defined behaviour — kernels
      // reduce deliberately-wrapping checksums).
      case Op::kSum:
        if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
          using U = std::make_unsigned_t<T>;
          inout[i] = static_cast<T>(static_cast<U>(inout[i]) + static_cast<U>(in[i]));
        } else {
          inout[i] = inout[i] + in[i];
        }
        break;
      case Op::kProd:
        if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
          using U = std::make_unsigned_t<T>;
          inout[i] = static_cast<T>(static_cast<U>(inout[i]) * static_cast<U>(in[i]));
        } else {
          inout[i] = inout[i] * in[i];
        }
        break;
      case Op::kMax: inout[i] = inout[i] > in[i] ? inout[i] : in[i]; break;
      case Op::kMin: inout[i] = inout[i] < in[i] ? inout[i] : in[i]; break;
      case Op::kLand: inout[i] = static_cast<T>((inout[i] != T{}) && (in[i] != T{})); break;
      case Op::kLor: inout[i] = static_cast<T>((inout[i] != T{}) || (in[i] != T{})); break;
      case Op::kBor:
        if constexpr (std::is_integral_v<T>) {
          inout[i] = inout[i] | in[i];
        } else {
          throw std::invalid_argument("bitwise OR on floating-point datatype");
        }
        break;
    }
  }
}

}  // namespace detail

/// inout[i] = inout[i] op in[i] for `count` elements of type `d`.
inline void reduce_apply(Op op, Datatype d, const void* in, void* inout, std::size_t count) {
  switch (d) {
    case Datatype::kByte:
      detail::apply_typed(op, static_cast<const std::uint8_t*>(in),
                          static_cast<std::uint8_t*>(inout), count);
      break;
    case Datatype::kInt:
      detail::apply_typed(op, static_cast<const std::int32_t*>(in),
                          static_cast<std::int32_t*>(inout), count);
      break;
    case Datatype::kLong:
      detail::apply_typed(op, static_cast<const std::int64_t*>(in),
                          static_cast<std::int64_t*>(inout), count);
      break;
    case Datatype::kFloat:
      detail::apply_typed(op, static_cast<const float*>(in), static_cast<float*>(inout), count);
      break;
    case Datatype::kDouble:
      detail::apply_typed(op, static_cast<const double*>(in), static_cast<double*>(inout),
                          count);
      break;
  }
}

}  // namespace sp::mpi
