// Collective algorithm implementations (see coll.hpp for the contract).
//
// Ordering discipline: reduce_apply(op, d, in, inout, n) computes
// `inout = inout OP in` — inout is the LEFT operand. Whenever two partial
// results merge, the partial covering the lower communicator ranks must end
// up on the left, so every merge site below either calls reduce_apply
// directly (partial-for-lower-ranks already in the accumulator) or goes
// through combine_left (incoming partial covers lower ranks). The recursive
// doubling/halving algorithms additionally keep every merge group contiguous
// in rank order (masks ascend from 1), because a contiguous group is the only
// shape an associative-but-non-commutative fold can produce.
#include "mpi/coll.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/mpi.hpp"

namespace sp::mpi::coll {
namespace {

/// Largest power of two <= n (n >= 1).
[[nodiscard]] int pow2_below(int n) {
  int p = 1;
  while (p * 2 <= n) p <<= 1;
  return p;
}

/// acc = incoming OP acc, where `incoming` is the partial for the LOWER rank
/// group. scratch must hold count elements.
void combine_left(Op op, Datatype d, const std::byte* incoming, std::byte* acc,
                  std::byte* scratch, std::size_t count, std::size_t esz) {
  if (count == 0) return;
  std::memcpy(scratch, incoming, count * esz);
  reduce_apply(op, d, acc, scratch, count);
  std::memcpy(acc, scratch, count * esz);
}

/// Near-even split of `count` elements into `parts` chunks, aligned so no
/// chunk boundary cuts through an operator granule (Op::kMat2x2 groups).
struct Chunks {
  std::vector<std::size_t> off, len;  ///< In elements.
};

[[nodiscard]] Chunks split_granule(std::size_t count, int parts, std::size_t granule) {
  Chunks ch;
  ch.off.resize(static_cast<std::size_t>(parts));
  ch.len.resize(static_cast<std::size_t>(parts));
  const std::size_t groups = count / granule;
  const std::size_t base = groups / static_cast<std::size_t>(parts);
  const std::size_t extra = groups % static_cast<std::size_t>(parts);
  std::size_t o = 0;
  for (int i = 0; i < parts; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    ch.off[ii] = o;
    ch.len[ii] = granule * (base + (ii < extra ? 1 : 0));
    o += ch.len[ii];
  }
  // Elements past the last whole granule ride in the final chunk (only
  // reachable for granule > 1 with a count reduce_apply would reject anyway).
  ch.len[static_cast<std::size_t>(parts - 1)] += count - o;
  return ch;
}

[[nodiscard]] std::size_t chunk_elems(const Chunks& ch, const std::vector<int>& idx) {
  std::size_t n = 0;
  for (int i : idx) n += ch.len[static_cast<std::size_t>(i)];
  return n;
}

void pack_chunks(const std::byte* base, const Chunks& ch, const std::vector<int>& idx,
                 std::size_t esz, std::byte* dst) {
  for (int i : idx) {
    const auto ii = static_cast<std::size_t>(i);
    if (ch.len[ii] == 0) continue;
    std::memcpy(dst, base + ch.off[ii] * esz, ch.len[ii] * esz);
    dst += ch.len[ii] * esz;
  }
}

void unpack_chunks(const std::byte* src, const Chunks& ch, const std::vector<int>& idx,
                   std::size_t esz, std::byte* base) {
  for (int i : idx) {
    const auto ii = static_cast<std::size_t>(i);
    if (ch.len[ii] == 0) continue;
    std::memcpy(base + ch.off[ii] * esz, src, ch.len[ii] * esz);
    src += ch.len[ii] * esz;
  }
}

/// Map an active (relabelled) rank back to its communicator rank after the
/// non-power-of-two pre-fold: the first 2*rem ranks fold pairwise (even
/// survivor j represents original ranks {2j, 2j+1}), the rest shift by rem.
/// The map is strictly increasing, so relabelled order == rank order and
/// merge groups that are contiguous in newrank space cover contiguous
/// communicator rank ranges — the property the ordering discipline needs.
[[nodiscard]] constexpr int orig_rank(int newrank, int rem) noexcept {
  return newrank < rem ? newrank * 2 : newrank + rem;
}

/// Pre-fold for non-power-of-two communicators: odd ranks below 2*rem send
/// their full vector to their even neighbour and drop out (returns -1); the
/// survivor combines (lower rank on the left). Returns the relabelled rank.
int prefold(Mpi& mpi, std::vector<std::byte>& acc, std::size_t count, Datatype d, Op op,
            const Comm& c, int tag, int rem, std::vector<std::byte>& tmp) {
  const int me = c.rank();
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      mpi.send(acc.data(), count, d, me - 1, tag, c);
      return -1;
    }
    mpi.recv(tmp.data(), count, d, me + 1, tag, c);
    if (count > 0) reduce_apply(op, d, tmp.data(), acc.data(), count);
    return me / 2;
  }
  return me - rem;
}

/// Rank-ordered reduce-scatter over the pow2 active ranks: on return, acc
/// holds the fully reduced values for exactly chunk `newrank` (all other
/// chunk regions hold partial garbage). Masks ascend so merge groups stay
/// contiguous in rank order; the price is that each rank's held chunk set is
/// strided, so exchanged chunks are packed through scratch buffers.
/// Returns nothing; the caller knows the final chunk is `newrank`.
void ordered_reduce_scatter_pow2(Mpi& mpi, std::byte* acc, std::size_t /*count*/, Datatype d,
                                 Op op, const Comm& c, int tag, int pow2, int rem, int newrank,
                                 const Chunks& chunks, std::vector<std::byte>& sendpack,
                                 std::vector<std::byte>& recvpack,
                                 std::vector<std::byte>& scratch) {
  const std::size_t esz = datatype_size(d);
  std::vector<int> mine(static_cast<std::size_t>(pow2));
  std::iota(mine.begin(), mine.end(), 0);
  std::vector<int> keep, give;
  for (int bit = 1; bit < pow2; bit <<= 1) {
    const int pn = newrank ^ bit;
    const int partner = orig_rank(pn, rem);
    keep.clear();
    give.clear();
    for (int chk : mine) {
      ((chk & bit) == (newrank & bit) ? keep : give).push_back(chk);
    }
    const std::size_t give_n = chunk_elems(chunks, give);
    const std::size_t keep_n = chunk_elems(chunks, keep);
    pack_chunks(acc, chunks, give, esz, sendpack.data());
    mpi.sendrecv(sendpack.data(), give_n, partner, tag, recvpack.data(), keep_n, partner, tag,
                 d, c);
    // Partner's give set == my keep set, packed in ascending chunk order.
    const std::byte* p = recvpack.data();
    for (int chk : keep) {
      const auto ci = static_cast<std::size_t>(chk);
      if (chunks.len[ci] == 0) continue;
      std::byte* dst = acc + chunks.off[ci] * esz;
      if (pn < newrank) {
        combine_left(op, d, p, dst, scratch.data(), chunks.len[ci], esz);
      } else {
        reduce_apply(op, d, p, dst, chunks.len[ci]);
      }
      p += chunks.len[ci] * esz;
    }
    mine.swap(keep);
  }
}

/// Recursive-doubling allgather over the chunk space: inverse of the strided
/// reduce-scatter above. Pure data movement, so ordering is not a concern.
void chunk_allgather_pow2(Mpi& mpi, std::byte* acc, Datatype d, const Comm& c, int tag,
                          int pow2, int rem, int newrank, const Chunks& chunks,
                          std::vector<std::byte>& sendpack, std::vector<std::byte>& recvpack) {
  const std::size_t esz = datatype_size(d);
  std::vector<int> mine{newrank};
  std::vector<int> theirs;
  for (int bit = pow2 >> 1; bit >= 1; bit >>= 1) {
    const int pn = newrank ^ bit;
    const int partner = orig_rank(pn, rem);
    theirs.clear();
    for (int chk : mine) theirs.push_back(chk ^ bit);
    std::sort(theirs.begin(), theirs.end());
    const std::size_t mine_n = chunk_elems(chunks, mine);
    pack_chunks(acc, chunks, mine, esz, sendpack.data());
    // Symmetric sets: partner holds mine ^ bit, so counts match mine_n only
    // when chunk sizes agree across the XOR — they need not (uneven split),
    // so size the receive from the partner's actual set.
    const std::size_t theirs_n = chunk_elems(chunks, theirs);
    mpi.sendrecv(sendpack.data(), mine_n, partner, tag, recvpack.data(), theirs_n, partner,
                 tag, d, c);
    unpack_chunks(recvpack.data(), chunks, theirs, esz, acc);
    mine.insert(mine.end(), theirs.begin(), theirs.end());
    std::sort(mine.begin(), mine.end());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Selection table
//
// Keyed by message size, communicator size, AND topology (DESIGN.md §13):
// cutovers derived on the SP multistage crossbar shift on fabrics with a
// different diameter/bisection profile. Explicit algorithm pins always win —
// the conformance explorer relies on pins overriding every auto rule.
//  * torus: neighbor links are the only cheap links, so the chain pipeline
//    (rank r -> r+1 maps onto torus neighbors under the default row-major
//    node ids) earns its keep at half the usual size, and the
//    scatter-allgather butterfly (mostly non-neighbor pairs) is skipped.
//  * fat-tree: full-ish bisection makes the bandwidth-optimal Rabenseifner
//    reduce-scatter/allgather pay off at half the usual vector size.
//  * dragonfly: every non-minimal packet crosses a scarce global link, so
//    Bruck's log2(n) aggregated rounds beat n-1 pairwise exchanges up to 4x
//    the usual block size.
// ---------------------------------------------------------------------------

namespace {
[[nodiscard]] bool is_torus(const sim::MachineConfig& cfg) noexcept {
  return cfg.topology == sim::TopologyKind::kTorus2d ||
         cfg.topology == sim::TopologyKind::kTorus3d;
}

/// Auto-selection gate for the switch combining tables: the topology's bit
/// must be set in in_network_topology_mask AND the vector must fit the table
/// entry. Pins (coll id 5) bypass this — the Mpi layer still falls back to
/// the host table if the engine itself declines.
[[nodiscard]] bool in_network_auto(const sim::MachineConfig& cfg, std::size_t bytes,
                                   int n) noexcept {
  return n > 1 && bytes <= cfg.in_network_coll_max_bytes && in_network_enabled(cfg);
}
}  // namespace

bool in_network_enabled(const sim::MachineConfig& cfg) noexcept {
  return ((cfg.in_network_topology_mask >> static_cast<int>(cfg.topology)) & 1u) != 0;
}

BcastAlgo select_bcast(const sim::MachineConfig& cfg, std::size_t bytes, int n) {
  if (cfg.coll_bcast_algo != 0) return static_cast<BcastAlgo>(cfg.coll_bcast_algo);
  if (in_network_auto(cfg, bytes, n)) return BcastAlgo::kInNetwork;
  return select_bcast_host(cfg, bytes, n);
}

BcastAlgo select_bcast_host(const sim::MachineConfig& cfg, std::size_t bytes, int n) {
  std::size_t pipeline_min = cfg.coll_bcast_pipeline_min_bytes;
  if (is_torus(cfg)) pipeline_min /= 2;
  if (n <= 2 || bytes < pipeline_min) return BcastAlgo::kBinomial;
  if (is_torus(cfg)) return BcastAlgo::kPipelined;
  // Large messages: the root's injected volume dominates. Scatter-allgather
  // injects ~bytes at the root; the chain pipeline streams S = bytes/segment
  // segments through n-1 hops in ~(n - 2 + S) segment times, so it overtakes
  // scatter-allgather once the pipeline is deeper than the chain (S >= n).
  if (bytes >= static_cast<std::size_t>(n) * cfg.coll_segment_bytes) {
    return BcastAlgo::kPipelined;
  }
  return n >= 8 ? BcastAlgo::kScatterAllgather : BcastAlgo::kPipelined;
}

AllreduceAlgo select_allreduce(const sim::MachineConfig& cfg, std::size_t bytes, int n) {
  if (cfg.coll_allreduce_algo != 0) return static_cast<AllreduceAlgo>(cfg.coll_allreduce_algo);
  if (in_network_auto(cfg, bytes, n)) return AllreduceAlgo::kInNetwork;
  return select_allreduce_host(cfg, bytes, n);
}

AllreduceAlgo select_allreduce_host(const sim::MachineConfig& cfg, std::size_t bytes, int n) {
  std::size_t rab_min = cfg.coll_allreduce_rabenseifner_min_bytes;
  if (cfg.topology == sim::TopologyKind::kFatTree) rab_min /= 2;
  if (n <= 2 || bytes < rab_min) {
    return AllreduceAlgo::kRecursiveDoubling;
  }
  return AllreduceAlgo::kRabenseifner;
}

AlltoallAlgo select_alltoall(const sim::MachineConfig& cfg, std::size_t block_bytes, int n) {
  if (cfg.coll_alltoall_algo != 0) return static_cast<AlltoallAlgo>(cfg.coll_alltoall_algo);
  std::size_t bruck_max = cfg.coll_alltoall_bruck_max_bytes;
  if (cfg.topology == sim::TopologyKind::kDragonfly) bruck_max *= 4;
  if (n <= 2 || block_bytes > bruck_max) return AlltoallAlgo::kPairwise;
  return AlltoallAlgo::kBruck;
}

ReduceScatterAlgo select_reduce_scatter(const sim::MachineConfig& cfg, std::size_t total_bytes,
                                        int n) {
  if (cfg.coll_reduce_scatter_algo != 0) {
    return static_cast<ReduceScatterAlgo>(cfg.coll_reduce_scatter_algo);
  }
  if (n <= 1 || total_bytes < cfg.coll_reduce_scatter_halving_min_bytes) {
    return ReduceScatterAlgo::kReduceScatter;
  }
  return ReduceScatterAlgo::kRecursiveHalving;
}

ScanAlgo select_scan(const sim::MachineConfig& cfg, std::size_t /*bytes*/, int n) {
  if (cfg.coll_scan_algo != 0) return static_cast<ScanAlgo>(cfg.coll_scan_algo);
  return n > 2 ? ScanAlgo::kBinomial : ScanAlgo::kLinear;
}

sim::CollAlgo telem_id(BcastAlgo a) noexcept {
  switch (a) {
    case BcastAlgo::kPipelined: return sim::CollAlgo::kBcastPipelined;
    case BcastAlgo::kScatterAllgather: return sim::CollAlgo::kBcastScatterAllgather;
    case BcastAlgo::kNicOffload: return sim::CollAlgo::kBcastNicOffload;
    case BcastAlgo::kInNetwork: return sim::CollAlgo::kBcastInNetwork;
    default: return sim::CollAlgo::kBcastBinomial;
  }
}
sim::CollAlgo telem_id(AllreduceAlgo a) noexcept {
  switch (a) {
    case AllreduceAlgo::kRecursiveDoubling: return sim::CollAlgo::kAllreduceRecursiveDoubling;
    case AllreduceAlgo::kRabenseifner: return sim::CollAlgo::kAllreduceRabenseifner;
    case AllreduceAlgo::kNicOffload: return sim::CollAlgo::kAllreduceNicOffload;
    case AllreduceAlgo::kInNetwork: return sim::CollAlgo::kAllreduceInNetwork;
    default: return sim::CollAlgo::kAllreduceReduceBcast;
  }
}
sim::CollAlgo telem_id(AlltoallAlgo a) noexcept {
  return a == AlltoallAlgo::kBruck ? sim::CollAlgo::kAlltoallBruck
                                   : sim::CollAlgo::kAlltoallPairwise;
}
sim::CollAlgo telem_id(ReduceScatterAlgo a) noexcept {
  return a == ReduceScatterAlgo::kRecursiveHalving
             ? sim::CollAlgo::kReduceScatterRecursiveHalving
             : sim::CollAlgo::kReduceScatterReduceScatter;
}
sim::CollAlgo telem_id(ScanAlgo a, bool exclusive) noexcept {
  if (exclusive) {
    return a == ScanAlgo::kBinomial ? sim::CollAlgo::kExscanBinomial
                                    : sim::CollAlgo::kExscanLinear;
  }
  return a == ScanAlgo::kBinomial ? sim::CollAlgo::kScanBinomial : sim::CollAlgo::kScanLinear;
}

bool apply_algo_spec(sim::MachineConfig& cfg, const std::string& spec, std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) return fail("expected primitive=algorithm: " + entry);
    const std::string prim = entry.substr(0, eq);
    const std::string algo = entry.substr(eq + 1);
    auto pick = [&](std::initializer_list<const char*> names, int* out) {
      int v = 0;
      for (const char* name : names) {
        if (algo == name) {
          *out = v;
          return true;
        }
        ++v;
      }
      return false;
    };
    bool ok = false;
    if (prim == "all") {
      if (algo != "auto") return fail("all= accepts only 'auto'");
      cfg.coll_bcast_algo = cfg.coll_allreduce_algo = cfg.coll_alltoall_algo =
          cfg.coll_reduce_scatter_algo = cfg.coll_scan_algo = cfg.coll_barrier_algo = 0;
      ok = true;
    } else if (prim == "bcast") {
      ok = pick({"auto", "binomial", "pipelined", "scatter_allgather", "nic", "in_network"},
                &cfg.coll_bcast_algo);
    } else if (prim == "allreduce") {
      ok = pick({"auto", "reduce_bcast", "recursive_doubling", "rabenseifner", "nic",
                 "in_network"},
                &cfg.coll_allreduce_algo);
    } else if (prim == "barrier") {
      // "nic" is id 4 and "in_network" id 5 on every primitive; barrier has
      // no ids 2-3.
      ok = pick({"auto", "dissemination"}, &cfg.coll_barrier_algo);
      if (!ok && algo == "nic") {
        cfg.coll_barrier_algo = static_cast<int>(BarrierAlgo::kNicOffload);
        ok = true;
      } else if (!ok && algo == "in_network") {
        cfg.coll_barrier_algo = static_cast<int>(BarrierAlgo::kInNetwork);
        ok = true;
      }
    } else if (prim == "alltoall") {
      ok = pick({"auto", "pairwise", "bruck"}, &cfg.coll_alltoall_algo);
    } else if (prim == "reduce_scatter") {
      ok = pick({"auto", "reduce_scatter", "recursive_halving"}, &cfg.coll_reduce_scatter_algo);
    } else if (prim == "scan") {
      ok = pick({"auto", "linear", "binomial"}, &cfg.coll_scan_algo);
    } else {
      return fail("unknown primitive: " + prim);
    }
    if (!ok) return fail("unknown algorithm for " + prim + ": " + algo);
    if (comma == spec.size()) break;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void bcast_binomial(Mpi& mpi, void* buf, std::size_t count, Datatype d, int root,
                    const Comm& c, int tag) {
  const int n = c.size();
  if (n <= 1) return;
  // Binomial tree rooted at `root`; ranks are rotated so root becomes 0.
  // (Pure data movement — rotation cannot reorder anything user-visible.)
  const int vrank = (c.rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      const int vsrc = vrank - mask;
      mpi.recv(buf, count, d, (vsrc + root) % n, tag, c);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n && (vrank & (mask - 1)) == 0 && (vrank & mask) == 0) {
      const int vdst = vrank + mask;
      mpi.send(buf, count, d, (vdst + root) % n, tag, c);
    }
    mask >>= 1;
  }
}

void bcast_pipelined(Mpi& mpi, void* buf, std::size_t count, Datatype d, int root,
                     const Comm& c, int tag, std::size_t segment_bytes) {
  const int n = c.size();
  if (n <= 1 || count == 0) return;
  const std::size_t esz = datatype_size(d);
  const std::size_t seg = std::max<std::size_t>(1, segment_bytes / esz);

  // Chain pipeline in root-rotated rank order: root -> root+1 -> ... A tree
  // cannot beat plain binomial at large sizes (its root still sends the full
  // message once per child); the chain sends every byte exactly once per hop
  // and streams S segments through the n-1 hops in ~(n - 2 + S) segment
  // times instead of the tree's S * fan-out.
  const int vrank = (c.rank() - root + n) % n;
  const int parent = vrank == 0 ? -1 : (c.rank() - 1 + n) % n;
  const int child = vrank + 1 < n ? (c.rank() + 1) % n : -1;

  // Double-buffered: while segment k forwards downstream, segment k+1's
  // receive is already posted, so the hop latency overlaps the transfer.
  auto* bb = static_cast<std::byte*>(buf);
  Request next;
  Request fwd;
  if (parent >= 0) next = mpi.irecv(bb, std::min(seg, count), d, parent, tag, c);
  for (std::size_t off = 0; off < count; off += seg) {
    const std::size_t len = std::min(seg, count - off);
    if (parent >= 0) {
      mpi.wait(next);
      const std::size_t noff = off + len;
      if (noff < count) {
        next = mpi.irecv(bb + noff * esz, std::min(seg, count - noff), d, parent, tag, c);
      }
    }
    if (child >= 0) {
      if (fwd.valid()) mpi.wait(fwd);
      fwd = mpi.isend(bb + off * esz, len, d, child, tag, c);
    }
  }
  if (fwd.valid()) mpi.wait(fwd);
}

void bcast_scatter_allgather(Mpi& mpi, void* buf, std::size_t count, Datatype d, int root,
                             const Comm& c, int tag) {
  const int n = c.size();
  if (n <= 1) return;
  const std::size_t esz = datatype_size(d);
  const int me = c.rank();
  const Chunks ch = split_granule(count, n, 1);
  auto* bb = static_cast<std::byte*>(buf);
  const int t_ag = phase_tag(tag, 1);

  // Phase 0: root scatters chunk r to rank r (root's own chunk is in place).
  if (me == root) {
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      const auto ri = static_cast<std::size_t>(r);
      mpi.send(bb + ch.off[ri] * esz, ch.len[ri], d, r, tag, c);
    }
  } else {
    const auto mi = static_cast<std::size_t>(me);
    mpi.recv(bb + ch.off[mi] * esz, ch.len[mi], d, root, tag, c);
  }

  // Phase 1: ring allgather over the per-rank chunks (uneven lengths).
  for (int k = 0; k < n - 1; ++k) {
    const int to = (me + 1) % n;
    const int from = (me - 1 + n) % n;
    const auto sb = static_cast<std::size_t>((me - k + n) % n);
    const auto rb = static_cast<std::size_t>((me - k - 1 + n) % n);
    mpi.sendrecv(bb + ch.off[sb] * esz, ch.len[sb], to, t_ag, bb + ch.off[rb] * esz,
                 ch.len[rb], from, t_ag, d, c);
  }
}

// ---------------------------------------------------------------------------
// Reduce / Allreduce
// ---------------------------------------------------------------------------

void reduce_binomial(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                     Op op, int root, const Comm& c, int tag) {
  const int n = c.size();
  const int me = c.rank();
  const std::size_t bytes = count * datatype_size(d);
  std::vector<std::byte> acc(bytes);
  if (bytes > 0) std::memcpy(acc.data(), sendb, bytes);
  if (n > 1) {
    std::vector<std::byte> incoming(bytes);
    // Binomial tree toward rank 0 in true rank space: rank r merges the
    // partial of r + mask (covering [r+mask, r+2*mask)) onto the right of its
    // own (covering [r, r+mask)) — communicator rank order, any root.
    int mask = 1;
    while (mask < n) {
      if ((me & mask) != 0) {
        mpi.send(acc.data(), count, d, me - mask, tag, c);
        break;
      }
      const int src = me + mask;
      if (src < n) {
        mpi.recv(incoming.data(), count, d, src, tag, c);
        if (count > 0) reduce_apply(op, d, incoming.data(), acc.data(), count);
      }
      mask <<= 1;
    }
  }
  if (root == 0) {
    if (me == 0 && bytes > 0) std::memcpy(recvb, acc.data(), bytes);
  } else {
    // One extra hop delivers the rank-ordered result to the requested root.
    const int t1 = phase_tag(tag, 1);
    if (me == 0) {
      mpi.send(acc.data(), count, d, root, t1, c);
    } else if (me == root) {
      mpi.recv(recvb, count, d, 0, t1, c);
    }
  }
}

void allreduce_reduce_bcast(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                            Datatype d, Op op, const Comm& c, int tag) {
  reduce_binomial(mpi, sendb, recvb, count, d, op, 0, c, tag);
  bcast_binomial(mpi, recvb, count, d, 0, c, phase_tag(tag, 1));
}

void allreduce_recursive_doubling(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                                  Datatype d, Op op, const Comm& c, int tag) {
  const int n = c.size();
  const std::size_t esz = datatype_size(d);
  const std::size_t bytes = count * esz;
  std::vector<std::byte> acc(bytes);
  if (bytes > 0) std::memcpy(acc.data(), sendb, bytes);
  if (n > 1) {
    const int pow2 = pow2_below(n);
    const int rem = n - pow2;
    const int t_ex = phase_tag(tag, 1);
    const int t_unfold = phase_tag(tag, 2);
    std::vector<std::byte> tmp(bytes), scratch(bytes);
    const int newrank = prefold(mpi, acc, count, d, op, c, tag, rem, tmp);
    if (newrank >= 0) {
      for (int mask = 1; mask < pow2; mask <<= 1) {
        const int pn = newrank ^ mask;
        const int partner = orig_rank(pn, rem);
        mpi.sendrecv(acc.data(), count, partner, t_ex, tmp.data(), count, partner, t_ex, d, c);
        if (pn < newrank) {
          combine_left(op, d, tmp.data(), acc.data(), scratch.data(), count, esz);
        } else if (count > 0) {
          reduce_apply(op, d, tmp.data(), acc.data(), count);
        }
      }
    }
    const int me = c.rank();
    if (me < 2 * rem) {
      if (me % 2 == 0) {
        mpi.send(acc.data(), count, d, me + 1, t_unfold, c);
      } else {
        mpi.recv(acc.data(), count, d, me - 1, t_unfold, c);
      }
    }
  }
  if (bytes > 0) std::memcpy(recvb, acc.data(), bytes);
}

void allreduce_rabenseifner(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                            Datatype d, Op op, const Comm& c, int tag) {
  const int n = c.size();
  const std::size_t esz = datatype_size(d);
  const std::size_t bytes = count * esz;
  std::vector<std::byte> acc(bytes);
  if (bytes > 0) std::memcpy(acc.data(), sendb, bytes);
  if (n > 1) {
    const int pow2 = pow2_below(n);
    const int rem = n - pow2;
    const int t_rs = phase_tag(tag, 1);
    const int t_ag = phase_tag(tag, 2);
    const int t_unfold = phase_tag(tag, 3);
    std::vector<std::byte> tmp(bytes), scratch(bytes), sendpack(bytes), recvpack(bytes);
    const int newrank = prefold(mpi, acc, count, d, op, c, tag, rem, tmp);
    if (newrank >= 0) {
      const Chunks ch = split_granule(count, pow2, op_granule(op));
      ordered_reduce_scatter_pow2(mpi, acc.data(), count, d, op, c, t_rs, pow2, rem, newrank,
                                  ch, sendpack, recvpack, scratch);
      chunk_allgather_pow2(mpi, acc.data(), d, c, t_ag, pow2, rem, newrank, ch, sendpack,
                           recvpack);
    }
    const int me = c.rank();
    if (me < 2 * rem) {
      if (me % 2 == 0) {
        mpi.send(acc.data(), count, d, me + 1, t_unfold, c);
      } else {
        mpi.recv(acc.data(), count, d, me - 1, t_unfold, c);
      }
    }
  }
  if (bytes > 0) std::memcpy(recvb, acc.data(), bytes);
}

// ---------------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------------

void alltoall_pairwise(Mpi& mpi, const void* sendb, std::size_t count, void* recvb, Datatype d,
                       const Comm& c, int tag) {
  const int n = c.size();
  const std::size_t bytes = count * datatype_size(d);
  const auto* in = static_cast<const std::byte*>(sendb);
  auto* out = static_cast<std::byte*>(recvb);
  const int me = c.rank();
  if (bytes > 0) {
    std::memcpy(out + static_cast<std::size_t>(me) * bytes,
                in + static_cast<std::size_t>(me) * bytes, bytes);
  }
  // Pairwise exchange with a rotating partner schedule.
  for (int k = 1; k < n; ++k) {
    const int to = (me + k) % n;
    const int from = (me - k + n) % n;
    mpi.sendrecv(in + static_cast<std::size_t>(to) * bytes, count, to, tag,
                 out + static_cast<std::size_t>(from) * bytes, count, from, tag, d, c);
  }
}

void alltoall_bruck(Mpi& mpi, const void* sendb, std::size_t count, void* recvb, Datatype d,
                    const Comm& c, int tag) {
  const int n = c.size();
  const std::size_t esz = datatype_size(d);
  const std::size_t bytes = count * esz;
  const auto* in = static_cast<const std::byte*>(sendb);
  auto* out = static_cast<std::byte*>(recvb);
  const int me = c.rank();
  if (n <= 1) {
    if (bytes > 0) std::memcpy(out, in, bytes);
    return;
  }
  // Phase 1: local rotation — slot i holds the block destined for me+i.
  std::vector<std::byte> tmp(static_cast<std::size_t>(n) * bytes);
  for (int i = 0; i < n; ++i) {
    if (bytes == 0) break;
    std::memcpy(tmp.data() + static_cast<std::size_t>(i) * bytes,
                in + static_cast<std::size_t>((me + i) % n) * bytes, bytes);
  }
  // Phase 2: log2(n) rounds; round k ships every slot whose index has bit k.
  std::vector<std::byte> sendpack, recvpack;
  std::vector<int> marked;
  for (int k = 1; k < n; k <<= 1) {
    const int to = (me + k) % n;
    const int from = (me - k + n) % n;
    marked.clear();
    for (int i = 0; i < n; ++i) {
      if ((i & k) != 0) marked.push_back(i);
    }
    const std::size_t m = marked.size();
    sendpack.resize(m * bytes);
    recvpack.resize(m * bytes);
    for (std::size_t j = 0; j < m; ++j) {
      if (bytes == 0) break;
      std::memcpy(sendpack.data() + j * bytes,
                  tmp.data() + static_cast<std::size_t>(marked[j]) * bytes, bytes);
    }
    mpi.sendrecv(sendpack.data(), m * count, to, tag, recvpack.data(), m * count, from, tag, d,
                 c);
    for (std::size_t j = 0; j < m; ++j) {
      if (bytes == 0) break;
      std::memcpy(tmp.data() + static_cast<std::size_t>(marked[j]) * bytes,
                  recvpack.data() + j * bytes, bytes);
    }
  }
  // Phase 3: inverse rotation — slot i came from rank me-i.
  for (int i = 0; i < n; ++i) {
    if (bytes == 0) break;
    std::memcpy(out + static_cast<std::size_t>((me - i + n) % n) * bytes,
                tmp.data() + static_cast<std::size_t>(i) * bytes, bytes);
  }
}

// ---------------------------------------------------------------------------
// Reduce-scatter
// ---------------------------------------------------------------------------

void reduce_scatter_via_reduce(Mpi& mpi, const void* sendb, void* recvb, std::size_t count,
                               Datatype d, Op op, const Comm& c, int tag) {
  const int n = c.size();
  const std::size_t esz = datatype_size(d);
  const std::size_t total = count * static_cast<std::size_t>(n);
  std::vector<std::byte> full(total * esz);
  reduce_binomial(mpi, sendb, full.data(), total, d, op, 0, c, tag);
  // Scatter block r to rank r (seed shape, phase tag).
  const int t_sc = phase_tag(tag, 1);
  const std::size_t bytes = count * esz;
  if (c.rank() == 0) {
    for (int r = 1; r < n; ++r) {
      mpi.send(full.data() + static_cast<std::size_t>(r) * bytes, count, d, r, t_sc, c);
    }
    if (bytes > 0) std::memcpy(recvb, full.data(), bytes);
  } else {
    mpi.recv(recvb, count, d, 0, t_sc, c);
  }
}

void reduce_scatter_recursive_halving(Mpi& mpi, const void* sendb, void* recvb,
                                      std::size_t count, Datatype d, Op op, const Comm& c,
                                      int tag) {
  const int n = c.size();
  const std::size_t esz = datatype_size(d);
  const std::size_t total = count * static_cast<std::size_t>(n);
  const std::size_t total_bytes = total * esz;
  const std::size_t bytes = count * esz;
  std::vector<std::byte> acc(total_bytes);
  if (total_bytes > 0) std::memcpy(acc.data(), sendb, total_bytes);
  if (n == 1) {
    if (bytes > 0) std::memcpy(recvb, acc.data(), bytes);
    return;
  }
  const int pow2 = pow2_below(n);
  const int rem = n - pow2;
  const int t_rs = phase_tag(tag, 1);
  const int t_redist = phase_tag(tag, 2);
  std::vector<std::byte> tmp(total_bytes), scratch(total_bytes), sendpack(total_bytes),
      recvpack(total_bytes);
  const int newrank = prefold(mpi, acc, total, d, op, c, tag, rem, tmp);
  const int me = c.rank();
  if (newrank >= 0) {
    // Chunk j = the contiguous block range active rank j represents: folded
    // survivors j < rem own blocks {2j, 2j+1}, the rest own block {j + rem}.
    Chunks ch;
    ch.off.resize(static_cast<std::size_t>(pow2));
    ch.len.resize(static_cast<std::size_t>(pow2));
    for (int j = 0; j < pow2; ++j) {
      const auto ji = static_cast<std::size_t>(j);
      ch.off[ji] = static_cast<std::size_t>(orig_rank(j, rem)) * count;
      ch.len[ji] = (j < rem ? 2 : 1) * count;
    }
    ordered_reduce_scatter_pow2(mpi, acc.data(), total, d, op, c, t_rs, pow2, rem, newrank, ch,
                                sendpack, recvpack, scratch);
    // Redistribute: survivor j < rem holds blocks {2j, 2j+1}; block 2j+1
    // belongs to the folded odd rank.
    if (newrank < rem) {
      if (bytes > 0) {
        std::memcpy(recvb, acc.data() + static_cast<std::size_t>(2 * newrank) * bytes, bytes);
      }
      mpi.send(acc.data() + static_cast<std::size_t>(2 * newrank + 1) * bytes, count, d,
               me + 1, t_redist, c);
    } else if (bytes > 0) {
      std::memcpy(recvb, acc.data() + static_cast<std::size_t>(me) * bytes, bytes);
    }
  } else {
    mpi.recv(recvb, count, d, me - 1, t_redist, c);
  }
}

// ---------------------------------------------------------------------------
// Scan / Exscan
// ---------------------------------------------------------------------------

void scan_linear(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                 Op op, const Comm& c, int tag) {
  const std::size_t bytes = count * datatype_size(d);
  const int me = c.rank();
  // Linear chain: result_r = v_0 op ... op v_r, accumulated left to right.
  if (bytes > 0) std::memcpy(recvb, sendb, bytes);
  if (me > 0) {
    std::vector<std::byte> acc(bytes), mine(bytes);
    mpi.recv(acc.data(), count, d, me - 1, tag, c);
    // recvb = acc op mine (operand order matters for non-commutative ops).
    if (bytes > 0) {
      std::memcpy(mine.data(), recvb, bytes);
      std::memcpy(recvb, acc.data(), bytes);
      reduce_apply(op, d, mine.data(), recvb, count);
    }
  }
  if (me + 1 < c.size()) {
    mpi.send(recvb, count, d, me + 1, tag, c);
  }
}

void scan_binomial(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                   Op op, const Comm& c, int tag) {
  const int n = c.size();
  const int me = c.rank();
  const std::size_t esz = datatype_size(d);
  const std::size_t bytes = count * esz;
  // Inclusive binomial (Hillis-Steele) scan: log2(n) rounds; in round `mask`
  // each rank ships its running partial to me+mask and folds the partial from
  // me-mask onto the LEFT of both its result and its forwarded partial (the
  // incoming partial covers a contiguous range of strictly lower ranks).
  std::vector<std::byte> partial(bytes), sendcopy(bytes), tmp(bytes), scratch(bytes);
  if (bytes > 0) {
    std::memcpy(partial.data(), sendb, bytes);
    std::memcpy(recvb, sendb, bytes);
  }
  for (int mask = 1; mask < n; mask <<= 1) {
    Request sreq;
    const bool sending = me + mask < n;
    if (sending) {
      if (bytes > 0) std::memcpy(sendcopy.data(), partial.data(), bytes);
      sreq = mpi.isend(sendcopy.data(), count, d, me + mask, tag, c);
    }
    if (me - mask >= 0) {
      mpi.recv(tmp.data(), count, d, me - mask, tag, c);
      combine_left(op, d, tmp.data(), static_cast<std::byte*>(recvb), scratch.data(), count,
                   esz);
      combine_left(op, d, tmp.data(), partial.data(), scratch.data(), count, esz);
    }
    if (sending) mpi.wait(sreq);
  }
}

void exscan_linear(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                   Op op, const Comm& c, int tag) {
  const std::size_t bytes = count * datatype_size(d);
  const int me = c.rank();
  std::vector<std::byte> carry(bytes);  // v_0 op ... op v_me (to forward)
  if (bytes > 0) std::memcpy(carry.data(), sendb, bytes);
  if (me > 0) {
    std::vector<std::byte> acc(bytes);
    mpi.recv(acc.data(), count, d, me - 1, tag, c);
    if (bytes > 0) {
      std::memcpy(recvb, acc.data(), bytes);  // exclusive prefix
      reduce_apply(op, d, sendb, acc.data(), count);
    }
    carry = std::move(acc);
  }
  if (me + 1 < c.size()) {
    mpi.send(carry.data(), count, d, me + 1, tag, c);
  }
}

void exscan_binomial(Mpi& mpi, const void* sendb, void* recvb, std::size_t count, Datatype d,
                     Op op, const Comm& c, int tag) {
  const int n = c.size();
  const int me = c.rank();
  const std::size_t esz = datatype_size(d);
  const std::size_t bytes = count * esz;
  // Exclusive variant of the binomial scan: the result accumulates only
  // received partials (recvb stays undefined on rank 0, as MPI specifies).
  std::vector<std::byte> partial(bytes), sendcopy(bytes), tmp(bytes), scratch(bytes);
  if (bytes > 0) std::memcpy(partial.data(), sendb, bytes);
  bool have_result = false;
  for (int mask = 1; mask < n; mask <<= 1) {
    Request sreq;
    const bool sending = me + mask < n;
    if (sending) {
      if (bytes > 0) std::memcpy(sendcopy.data(), partial.data(), bytes);
      sreq = mpi.isend(sendcopy.data(), count, d, me + mask, tag, c);
    }
    if (me - mask >= 0) {
      mpi.recv(tmp.data(), count, d, me - mask, tag, c);
      if (have_result) {
        combine_left(op, d, tmp.data(), static_cast<std::byte*>(recvb), scratch.data(), count,
                     esz);
      } else if (bytes > 0) {
        std::memcpy(recvb, tmp.data(), bytes);
      }
      have_result = true;
      combine_left(op, d, tmp.data(), partial.data(), scratch.data(), count, esz);
    }
    if (sending) mpi.wait(sreq);
  }
}

}  // namespace sp::mpi::coll
