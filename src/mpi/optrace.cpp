#include "mpi/optrace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "sim/rng.hpp"

namespace sp::mpi::optrace {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// Sanity bounds the strict parser enforces. Far above anything a recorded
// workload produces, far below anything that could wedge the loader.
constexpr int kMaxRanks = 4096;
constexpr std::int64_t kMaxOpsPerRank = 10'000'000;
constexpr std::int64_t kMaxCount = std::int64_t{1} << 26;
constexpr std::int64_t kMaxAux = std::int64_t{1} << 32;
constexpr std::int64_t kMaxMagnitude = std::int64_t{1} << 30;

/// Deterministic buffer fill for replayed sends and collective contributions.
/// Keyed on (rank, op index) only, so the bytes are identical under every
/// what-if config. Values stay small so floating-point reductions are exact
/// (sums of small integers associate bit-identically under any algorithm).
void fill_buffer(std::byte* buf, std::size_t count, Datatype d, int rank,
                 std::int64_t op_idx) {
  sim::Pcg32 rng(static_cast<std::uint64_t>(op_idx) + 1,
                 static_cast<std::uint64_t>(rank) + 1);
  switch (d) {
    case Datatype::kByte: {
      auto* p = reinterpret_cast<std::uint8_t*>(buf);
      for (std::size_t i = 0; i < count; ++i) p[i] = static_cast<std::uint8_t>(rng.next());
      break;
    }
    case Datatype::kInt: {
      auto* p = reinterpret_cast<std::int32_t*>(buf);
      for (std::size_t i = 0; i < count; ++i) {
        p[i] = static_cast<std::int32_t>(rng.next() % 1024u);
      }
      break;
    }
    case Datatype::kLong: {
      auto* p = reinterpret_cast<std::int64_t*>(buf);
      for (std::size_t i = 0; i < count; ++i) {
        p[i] = static_cast<std::int64_t>(rng.next() % 1024u);
      }
      break;
    }
    case Datatype::kFloat: {
      auto* p = reinterpret_cast<float*>(buf);
      for (std::size_t i = 0; i < count; ++i) p[i] = static_cast<float>(rng.next() % 16u);
      break;
    }
    case Datatype::kDouble: {
      auto* p = reinterpret_cast<double*>(buf);
      for (std::size_t i = 0; i < count; ++i) p[i] = static_cast<double>(rng.next() % 16u);
      break;
    }
  }
}

[[nodiscard]] bool is_nonblocking(OpKind k) {
  switch (k) {
    case OpKind::kIsend:
    case OpKind::kIssend:
    case OpKind::kIrsend:
    case OpKind::kIbsend:
    case OpKind::kIrecv: return true;
    default: return false;
  }
}

std::string sanitize_token(const std::string& s) {
  std::string out = s.empty() ? "unknown" : s;
  for (char& ch : out) {
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') ch = '_';
  }
  return out;
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

void attach(Machine& m, Recorder* rec) {
  for (int t = 0; t < m.num_tasks(); ++t) m.mpi(t).set_recorder(rec);
}

void save_text(const Trace& t, std::ostream& os) {
  os << "sptrace 1\n";
  os << "ranks " << t.ranks << "\n";
  os << "workload " << sanitize_token(t.workload) << "\n";
  os << "scale " << t.scale << "\n";
  for (int r = 0; r < t.ranks; ++r) {
    const auto& ops = t.per_rank[static_cast<std::size_t>(r)];
    os << "rank " << r << " ops " << ops.size() << "\n";
    for (const Op& op : ops) {
      os << "op " << static_cast<int>(op.kind) << ' ' << op.comm << ' ' << op.peer << ' '
         << op.tag << ' ' << op.dtype << ' ' << op.redop << ' ' << op.count << ' ' << op.aux
         << ' ' << op.msrc << ' ' << op.mtag << ' ' << op.target << ' ' << op.vec.size();
      for (const std::int64_t v : op.vec) os << ' ' << v;
      os << "\n";
    }
  }
  os << "end\n";
}

bool load_text(std::istream& is, Trace* out, std::string* error) {
  std::string tok;
  int version = 0;
  if (!(is >> tok) || tok != "sptrace") return fail(error, "bad magic (not an sptrace file)");
  if (!(is >> version) || version != 1) return fail(error, "unsupported sptrace version");

  Trace t;
  if (!(is >> tok) || tok != "ranks") return fail(error, "missing ranks header");
  if (!(is >> t.ranks) || t.ranks < 1 || t.ranks > kMaxRanks) {
    return fail(error, "ranks out of range");
  }
  if (!(is >> tok) || tok != "workload") return fail(error, "missing workload header");
  if (!(is >> t.workload)) return fail(error, "missing workload name");
  if (!(is >> tok) || tok != "scale") return fail(error, "missing scale header");
  if (!(is >> t.scale) || t.scale < 0 || t.scale > 1'000'000) {
    return fail(error, "scale out of range");
  }

  t.per_rank.resize(static_cast<std::size_t>(t.ranks));
  for (int r = 0; r < t.ranks; ++r) {
    int rank_id = -1;
    std::int64_t nops = -1;
    if (!(is >> tok) || tok != "rank") return fail(error, "missing rank section");
    if (!(is >> rank_id) || rank_id != r) return fail(error, "rank sections out of order");
    if (!(is >> tok) || tok != "ops") return fail(error, "missing ops count");
    if (!(is >> nops) || nops < 0 || nops > kMaxOpsPerRank) {
      return fail(error, "ops count out of range");
    }
    auto& ops = t.per_rank[static_cast<std::size_t>(r)];
    ops.reserve(static_cast<std::size_t>(nops));
    for (std::int64_t i = 0; i < nops; ++i) {
      if (!(is >> tok) || tok != "op") return fail(error, "truncated op stream");
      Op op;
      int kind = -1;
      std::int64_t vlen = -1;
      if (!(is >> kind >> op.comm >> op.peer >> op.tag >> op.dtype >> op.redop >> op.count >>
            op.aux >> op.msrc >> op.mtag >> op.target >> vlen)) {
        return fail(error, "malformed op line");
      }
      if (kind < 0 || kind >= kNumOpKinds) return fail(error, "op kind out of range");
      op.kind = static_cast<OpKind>(kind);
      if (vlen < 0 || vlen > 2 * static_cast<std::int64_t>(t.ranks)) {
        return fail(error, "op vector length out of range");
      }
      op.vec.resize(static_cast<std::size_t>(vlen));
      for (auto& v : op.vec) {
        if (!(is >> v)) return fail(error, "truncated op vector");
        if (v < 0 || v > kMaxCount) return fail(error, "op vector entry out of range");
      }
      ops.push_back(std::move(op));
    }
  }
  if (!(is >> tok) || tok != "end") return fail(error, "missing end footer (truncated file)");
  if (is >> tok) return fail(error, "trailing garbage after end footer");

  if (!validate(t, error)) return false;
  *out = std::move(t);
  return true;
}

bool validate(const Trace& t, std::string* error) {
  if (t.ranks < 1 || t.ranks > kMaxRanks) return fail(error, "ranks out of range");
  if (t.per_rank.size() != static_cast<std::size_t>(t.ranks)) {
    return fail(error, "per-rank stream count mismatch");
  }
  for (int r = 0; r < t.ranks; ++r) {
    const auto& ops = t.per_rank[static_cast<std::size_t>(r)];
    // Communicators exist in creation order: index 0 is world, each dup/split
    // widens the window by one.
    std::int64_t comm_window = 1;
    std::unordered_set<std::int64_t> waited;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      if (static_cast<int>(op.kind) < 0 || static_cast<int>(op.kind) >= kNumOpKinds) {
        return fail(error, "op kind out of range");
      }
      if (op.comm < 0 || op.comm >= comm_window) {
        return fail(error, "op references a communicator not yet created");
      }
      if (op.dtype < 0 || op.dtype > 4) return fail(error, "datatype out of range");
      if (op.redop < 0 || op.redop > 7) return fail(error, "reduction op out of range");
      if (op.count < 0 || op.count > kMaxCount) return fail(error, "count out of range");
      if (op.aux < 0 || op.aux > kMaxAux) return fail(error, "aux out of range");
      if (op.peer < -2 || op.peer > kMaxMagnitude) return fail(error, "peer out of range");
      if (op.tag < -1 || op.tag > kMaxMagnitude) return fail(error, "tag out of range");
      if (op.msrc < -1 || op.msrc >= t.ranks) return fail(error, "matched source out of range");
      if (op.mtag < -1 || op.mtag > kMaxMagnitude) {
        return fail(error, "matched tag out of range");
      }
      switch (op.kind) {
        case OpKind::kWait: {
          if (op.target < 0 || op.target >= static_cast<std::int64_t>(i)) {
            return fail(error, "wait target out of range");
          }
          if (!is_nonblocking(ops[static_cast<std::size_t>(op.target)].kind)) {
            return fail(error, "wait target is not a nonblocking op");
          }
          if (!waited.insert(op.target).second) {
            return fail(error, "request waited twice");
          }
          break;
        }
        case OpKind::kAlltoallv:
          if (op.vec.size() % 2 != 0) return fail(error, "alltoallv counts not paired");
          break;
        case OpKind::kDup:
        case OpKind::kSplit: ++comm_window; break;
        case OpKind::kCompute:
          // ns charge: allow large values (the count bound still applies).
          break;
        default: break;
      }
    }
  }
  return true;
}

namespace {

/// A nonblocking op in flight during replay: the request plus the buffer it
/// reads/writes (kept alive until the matching kWait).
struct Pending {
  Request r;
  std::vector<std::byte> buf;
  bool is_recv = false;
};

class RankReplayer {
 public:
  RankReplayer(Mpi& mpi, const Trace& t, int rank)
      : mpi_(mpi), ops_(t.per_rank[static_cast<std::size_t>(rank)]), rank_(rank) {
    comms_.push_back(mpi_.world());
  }

  std::uint64_t run() {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      step(static_cast<std::int64_t>(i), ops_[i]);
    }
    // Drain anything never explicitly waited (buffered sends, requests the
    // recorded program freed while active).
    for (auto& kv : pending_) mpi_.wait(kv.second.r);
    pending_.clear();
    return digest_;
  }

 private:
  [[noreturn]] void die(const char* why) const {
    throw mpci::FatalMpiError(std::string("replay: ") + why);
  }

  Comm& comm(std::int32_t ci) {
    if (ci < 0 || static_cast<std::size_t>(ci) >= comms_.size()) die("bad communicator");
    return comms_[static_cast<std::size_t>(ci)];
  }

  void fold(const void* data, std::size_t len) { digest_ = fnv(digest_, data, len); }

  /// Heap buffer holding `count` freshly filled elements for this op.
  std::vector<std::byte> filled(const Op& op, std::size_t count, std::int64_t idx) const {
    const auto d = static_cast<Datatype>(op.dtype);
    std::vector<std::byte> buf(count * datatype_size(d));
    fill_buffer(buf.data(), count, d, rank_, idx);
    return buf;
  }

  void step(std::int64_t idx, const Op& op) {
    const auto d = static_cast<Datatype>(op.dtype);
    const auto ro = static_cast<Op_>(op.redop);
    const auto n = static_cast<std::size_t>(op.count);
    switch (op.kind) {
      case OpKind::kSend:
      case OpKind::kRsend: {
        // Ready mode replays as standard: the data flow is identical and
        // standard mode is safe under any what-if timing.
        auto buf = filled(op, n, idx);
        mpi_.send(buf.data(), n, d, op.peer, op.tag, comm(op.comm));
        break;
      }
      case OpKind::kBsend: {
        // A buffered send never blocks the caller, so a blocking standard
        // send could deadlock where the original program didn't. Replay as a
        // nonblocking send drained at the end of the stream (no wait op was
        // recorded for it).
        Pending p;
        p.buf = filled(op, n, idx);
        p.r = mpi_.isend(p.buf.data(), n, d, op.peer, op.tag, comm(op.comm));
        pending_.emplace(idx, std::move(p));
        break;
      }
      case OpKind::kSsend: {
        auto buf = filled(op, n, idx);
        mpi_.ssend(buf.data(), n, d, op.peer, op.tag, comm(op.comm));
        break;
      }
      case OpKind::kIsend:
      case OpKind::kIrsend:
      case OpKind::kIbsend:
      case OpKind::kIssend: {
        Pending p;
        p.buf = filled(op, n, idx);
        p.r = op.kind == OpKind::kIssend
                  ? mpi_.issend(p.buf.data(), n, d, op.peer, op.tag, comm(op.comm))
                  : mpi_.isend(p.buf.data(), n, d, op.peer, op.tag, comm(op.comm));
        pending_.emplace(idx, std::move(p));
        break;
      }
      case OpKind::kRecv: {
        // Wildcards are re-posted with the concrete recorded match so the
        // data flow is preserved under any replay timing.
        const int src = op.msrc >= 0 ? op.msrc : op.peer;
        const int tag = op.mtag >= 0 ? op.mtag : op.tag;
        std::vector<std::byte> buf(n * datatype_size(d));
        Status st;
        mpi_.recv(buf.data(), n, d, src, tag, comm(op.comm), &st);
        fold(buf.data(), std::min(st.len, buf.size()));
        break;
      }
      case OpKind::kIrecv: {
        const int src = op.msrc >= 0 ? op.msrc : op.peer;
        const int tag = op.mtag >= 0 ? op.mtag : op.tag;
        Pending p;
        p.buf.resize(n * datatype_size(d));
        p.is_recv = true;
        p.r = mpi_.irecv(p.buf.data(), n, d, src, tag, comm(op.comm));
        pending_.emplace(idx, std::move(p));
        break;
      }
      case OpKind::kWait: {
        auto it = pending_.find(op.target);
        if (it == pending_.end()) die("wait on unknown request");
        Status st;
        mpi_.wait(it->second.r, &st);
        if (it->second.is_recv) {
          fold(it->second.buf.data(), std::min(st.len, it->second.buf.size()));
        }
        pending_.erase(it);
        break;
      }
      case OpKind::kCompute: mpi_.compute(op.count); break;
      case OpKind::kInterrupt: mpi_.set_interrupt_mode(op.count != 0); break;
      case OpKind::kBarrier: mpi_.barrier(comm(op.comm)); break;
      case OpKind::kBcast: {
        std::vector<std::byte> buf(n * datatype_size(d));
        if (comm(op.comm).rank() == op.peer) fill_buffer(buf.data(), n, d, rank_, idx);
        mpi_.bcast(buf.data(), n, d, op.peer, comm(op.comm));
        fold(buf.data(), buf.size());
        break;
      }
      case OpKind::kReduce: {
        auto in = filled(op, n, idx);
        std::vector<std::byte> out(in.size());
        mpi_.reduce(in.data(), out.data(), n, d, ro, op.peer, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kAllreduce: {
        auto in = filled(op, n, idx);
        std::vector<std::byte> out(in.size());
        mpi_.allreduce(in.data(), out.data(), n, d, ro, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kGather: {
        auto in = filled(op, n, idx);
        std::vector<std::byte> out(in.size() * static_cast<std::size_t>(comm(op.comm).size()));
        mpi_.gather(in.data(), n, out.data(), d, op.peer, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kScatter: {
        std::vector<std::byte> in(n * datatype_size(d) *
                                  static_cast<std::size_t>(comm(op.comm).size()));
        if (comm(op.comm).rank() == op.peer) {
          fill_buffer(in.data(), n * static_cast<std::size_t>(comm(op.comm).size()), d, rank_,
                      idx);
        }
        std::vector<std::byte> out(n * datatype_size(d));
        mpi_.scatter(in.data(), n, out.data(), d, op.peer, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kAllgather: {
        auto in = filled(op, n, idx);
        std::vector<std::byte> out(in.size() * static_cast<std::size_t>(comm(op.comm).size()));
        mpi_.allgather(in.data(), n, out.data(), d, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kAlltoall: {
        const auto cn = static_cast<std::size_t>(comm(op.comm).size());
        std::vector<std::byte> in(n * datatype_size(d) * cn);
        fill_buffer(in.data(), n * cn, d, rank_, idx);
        std::vector<std::byte> out(in.size());
        mpi_.alltoall(in.data(), n, out.data(), d, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kAlltoallv: {
        const auto cn = static_cast<std::size_t>(comm(op.comm).size());
        if (op.vec.size() != 2 * cn) die("alltoallv counts do not match communicator");
        std::vector<std::size_t> sc(cn), sd(cn), rc(cn), rd(cn);
        std::size_t stot = 0, rtot = 0;
        for (std::size_t k = 0; k < cn; ++k) {
          sc[k] = static_cast<std::size_t>(op.vec[k]);
          rc[k] = static_cast<std::size_t>(op.vec[cn + k]);
          sd[k] = stot;
          rd[k] = rtot;
          stot += sc[k];
          rtot += rc[k];
        }
        std::vector<std::byte> in(stot * datatype_size(d));
        fill_buffer(in.data(), stot, d, rank_, idx);
        std::vector<std::byte> out(rtot * datatype_size(d));
        mpi_.alltoallv(in.data(), sc.data(), sd.data(), out.data(), rc.data(), rd.data(), d,
                       comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kGatherv: {
        const auto cn = static_cast<std::size_t>(comm(op.comm).size());
        const bool root = comm(op.comm).rank() == op.peer;
        if (root && op.vec.size() != cn) die("gatherv counts do not match communicator");
        std::vector<std::size_t> rc(cn, 0), dp(cn, 0);
        std::size_t total = 0;
        if (root) {
          for (std::size_t k = 0; k < cn; ++k) {
            rc[k] = static_cast<std::size_t>(op.vec[k]);
            dp[k] = total;
            total += rc[k];
          }
        }
        auto in = filled(op, n, idx);
        std::vector<std::byte> out(std::max<std::size_t>(total * datatype_size(d), 1));
        mpi_.gatherv(in.data(), n, out.data(), rc.data(), dp.data(), d, op.peer,
                     comm(op.comm));
        if (root) fold(out.data(), total * datatype_size(d));
        break;
      }
      case OpKind::kScatterv: {
        const auto cn = static_cast<std::size_t>(comm(op.comm).size());
        const bool root = comm(op.comm).rank() == op.peer;
        if (root && op.vec.size() != cn) die("scatterv counts do not match communicator");
        std::vector<std::size_t> sc(cn, 0), dp(cn, 0);
        std::size_t total = 0;
        if (root) {
          for (std::size_t k = 0; k < cn; ++k) {
            sc[k] = static_cast<std::size_t>(op.vec[k]);
            dp[k] = total;
            total += sc[k];
          }
        }
        std::vector<std::byte> in(std::max<std::size_t>(total * datatype_size(d), 1));
        if (root) fill_buffer(in.data(), total, d, rank_, idx);
        std::vector<std::byte> out(n * datatype_size(d));
        mpi_.scatterv(in.data(), sc.data(), dp.data(), out.data(), n, d, op.peer,
                      comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kReduceScatterBlock: {
        const auto cn = static_cast<std::size_t>(comm(op.comm).size());
        std::vector<std::byte> in(n * datatype_size(d) * cn);
        fill_buffer(in.data(), n * cn, d, rank_, idx);
        std::vector<std::byte> out(n * datatype_size(d));
        mpi_.reduce_scatter_block(in.data(), out.data(), n, d, ro, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kScan: {
        auto in = filled(op, n, idx);
        std::vector<std::byte> out(in.size());
        mpi_.scan(in.data(), out.data(), n, d, ro, comm(op.comm));
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kExscan: {
        auto in = filled(op, n, idx);
        std::vector<std::byte> out(in.size());
        mpi_.exscan(in.data(), out.data(), n, d, ro, comm(op.comm));
        // Rank 0's exscan result is undefined by MPI; the zero-initialized
        // buffer keeps the fold deterministic anyway.
        fold(out.data(), out.size());
        break;
      }
      case OpKind::kDup: comms_.push_back(mpi_.dup(comm(op.comm))); break;
      case OpKind::kSplit:
        comms_.push_back(mpi_.split(comm(op.comm), /*color=*/op.tag, /*key=*/op.peer));
        break;
    }
  }

  using Op_ = sp::mpi::Op;  // reduction operator (Op is the trace record here)

  Mpi& mpi_;
  const std::vector<Op>& ops_;
  int rank_;
  std::vector<Comm> comms_;
  std::unordered_map<std::int64_t, Pending> pending_;
  std::uint64_t digest_ = kFnvOffset;
};

}  // namespace

ReplayResult replay(const Trace& t, const sim::MachineConfig& cfg, Backend backend) {
  ReplayResult res;
  if (!validate(t, &res.error)) return res;
  try {
    Machine m(cfg, t.ranks, backend);
    std::vector<std::uint64_t> rank_digests(static_cast<std::size_t>(t.ranks), 0);
    m.run([&](Mpi& mpi) {
      const int rank = mpi.world().rank();
      RankReplayer rr(mpi, t, rank);
      rank_digests[static_cast<std::size_t>(rank)] = rr.run();
    });
    std::uint64_t digest = kFnvOffset;
    for (const std::uint64_t dr : rank_digests) digest = fnv(digest, &dr, sizeof dr);
    res.digest = digest;
    res.elapsed = m.elapsed();
    res.sim_events = m.stats().sim_events;
    res.ok = true;
  } catch (const std::exception& e) {
    res.ok = false;
    res.error = e.what();
  }
  return res;
}

}  // namespace sp::mpi::optrace
